(* Unit tests for the reuse conditions (paper §3.1) and the
   measure-and-reset circuit transform. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module B = Quantum.Circuit.Builder
module G = Quantum.Gate

let bv5 () = Benchmarks.Bv.circuit 5

(* Paper Fig. 7: g(q4, q2); g(q2, q1); g(q3, q1) — wait, the figure's
   essence: reusing q1 for q4 is invalid because a gate on q1 depends
   transitively on a gate on q4. Reconstruct that shape. *)
let fig7 () =
  let b = B.create ~num_qubits:4 ~num_clbits:0 in
  B.cx b 3 1;  (* g(q4, q2) in paper numbering *)
  B.cx b 1 2;  (* chain through the middle *)
  B.cx b 2 0;  (* gate on q1 depends on everything above *)
  B.build b

let test_condition1_blocks_shared_gate () =
  let a = Caqr.Reuse.analyze (bv5 ()) in
  (* Data qubit and ancilla share a CX. *)
  check bool "0->4 fails c1" false
    (Caqr.Reuse.condition1 a { Caqr.Reuse.src = 0; dst = 4 });
  check bool "0->1 passes c1" true
    (Caqr.Reuse.condition1 a { Caqr.Reuse.src = 0; dst = 1 })

let test_condition2_fig7 () =
  let a = Caqr.Reuse.analyze (fig7 ()) in
  (* q0's gate depends transitively on q3's gate: (q0 -> q3) invalid. *)
  check bool "q0 reused by q3 invalid" false
    (Caqr.Reuse.condition2 a { Caqr.Reuse.src = 0; dst = 3 });
  (* The reverse direction is fine. *)
  check bool "q3 reused by q0 valid" true
    (Caqr.Reuse.condition2 a { Caqr.Reuse.src = 3; dst = 0 })

let test_valid_requires_active () =
  let b = B.create ~num_qubits:3 ~num_clbits:0 in
  B.h b 0;
  B.h b 1;
  let a = Caqr.Reuse.analyze (B.build b) in
  check bool "inactive dst" false (Caqr.Reuse.valid a { Caqr.Reuse.src = 0; dst = 2 });
  check bool "self pair" false (Caqr.Reuse.valid a { Caqr.Reuse.src = 0; dst = 0 });
  check bool "active pair" true (Caqr.Reuse.valid a { Caqr.Reuse.src = 0; dst = 1 })

let test_valid_pairs_bv () =
  let a = Caqr.Reuse.analyze (bv5 ()) in
  let pairs = Caqr.Reuse.valid_pairs a in
  (* Only forward data-qubit pairs are valid: q_i's CX precedes q_j's CX
     on the ancilla wire, so the reverse direction violates Condition 2. *)
  check int "forward data pairs" 6 (List.length pairs);
  check bool "no ancilla" true
    (List.for_all (fun p -> p.Caqr.Reuse.src <> 4 && p.Caqr.Reuse.dst <> 4) pairs);
  check bool "all forward" true
    (List.for_all (fun p -> p.Caqr.Reuse.src < p.Caqr.Reuse.dst) pairs)

let test_predict_depth_matches_apply () =
  let c = bv5 () in
  let a = Caqr.Reuse.analyze c in
  List.iter
    (fun p ->
      let predicted = Caqr.Reuse.predict_depth a p in
      let actual = Quantum.Circuit.depth (Caqr.Reuse.apply c p) in
      check int
        (Printf.sprintf "pair %d->%d" p.Caqr.Reuse.src p.Caqr.Reuse.dst)
        predicted actual)
    (Caqr.Reuse.valid_pairs a)

let test_predict_duration_matches_apply () =
  let c = bv5 () in
  let a = Caqr.Reuse.analyze c in
  let model = Quantum.Duration.default in
  List.iter
    (fun p ->
      let predicted = Caqr.Reuse.predict_duration a p in
      let actual = Quantum.Circuit.duration model (Caqr.Reuse.apply c p) in
      check int "duration prediction" predicted actual)
    (Caqr.Reuse.valid_pairs a)

let test_apply_reduces_usage () =
  let c = bv5 () in
  let c' = Caqr.Reuse.apply c { Caqr.Reuse.src = 0; dst = 1 } in
  check int "usage drops" 4 (Caqr.Reuse.qubit_usage c');
  check int "width unchanged" 5 c'.Quantum.Circuit.num_qubits;
  check int "one mid-circuit measure" 1 (Quantum.Circuit.mid_circuit_measurements c')

let test_apply_reuses_existing_measure () =
  (* BV data qubits end in a measurement, so the reset is driven by the
     existing clbit: no new clbits allocated. *)
  let c = bv5 () in
  let c' = Caqr.Reuse.apply c { Caqr.Reuse.src = 0; dst = 1 } in
  check int "clbits unchanged" c.Quantum.Circuit.num_clbits c'.Quantum.Circuit.num_clbits

let test_apply_shared_clbit_not_reused () =
  (* src ends in a measure, but its clbit is written again by q1's later
     measure. Kahn emission favors small gate ids, so that second writer
     lands between src's measure and the conditional X — driving the
     reset off the shared clbit would read q1's outcome, not src's. The
     transform must fall back to a fresh scratch clbit (fuzzer-found). *)
  let b = B.create ~num_qubits:3 ~num_clbits:2 in
  B.h b 0;
  B.measure b 0 0;
  B.x b 1;
  B.measure b 1 0;
  B.x b 2;
  B.measure b 2 1;
  let c = B.build b in
  let c' = Caqr.Reuse.apply c { Caqr.Reuse.src = 0; dst = 2 } in
  check int "scratch clbit added" (c.Quantum.Circuit.num_clbits + 1)
    c'.Quantum.Circuit.num_clbits;
  let scratch = c.Quantum.Circuit.num_clbits in
  check bool "reset driven by the scratch clbit" true
    (Array.exists
       (fun g -> match g.G.kind with G.If_x (cb, _) -> cb = scratch | _ -> false)
       c'.Quantum.Circuit.gates)

let test_apply_unmeasured_src_allocates_scratch () =
  (* src without a trailing measure needs Measure + If_x on a new clbit. *)
  let b = B.create ~num_qubits:3 ~num_clbits:0 in
  B.h b 0;
  B.cx b 0 1;
  B.h b 2;
  let c = B.build b in
  let c' = Caqr.Reuse.apply c { Caqr.Reuse.src = 0; dst = 2 } in
  check int "scratch clbit" 1 c'.Quantum.Circuit.num_clbits;
  let kinds = Array.map (fun g -> g.G.kind) c'.Quantum.Circuit.gates in
  check bool "has measure" true
    (Array.exists (function G.Measure _ -> true | _ -> false) kinds);
  check bool "has conditional reset" true
    (Array.exists (function G.If_x _ -> true | _ -> false) kinds)

let test_apply_invalid_raises () =
  let c = bv5 () in
  Alcotest.check_raises "invalid" (Invalid_argument "Reuse.apply: invalid pair")
    (fun () -> ignore (Caqr.Reuse.apply c { Caqr.Reuse.src = 0; dst = 4 }))

let test_apply_preserves_semantics_bv () =
  let c = bv5 () in
  let c' = Caqr.Reuse.apply c { Caqr.Reuse.src = 1; dst = 3 } in
  let d0 = Sim.Executor.run ~seed:1 ~shots:128 c in
  let d1 = Sim.Executor.run ~seed:9 ~shots:128 c' in
  check (Alcotest.float 1e-9) "identical distribution" 0. (Sim.Counts.tvd d0 d1)

let test_apply_preserves_semantics_entangled () =
  (* GHZ-producing circuit where q0 finishes early: reuse must preserve
     the entangled output distribution. *)
  let b = B.create ~num_qubits:4 ~num_clbits:4 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 0 0;
  B.h b 3;
  B.cx b 3 2;
  B.measure b 1 1;
  B.measure b 2 2;
  B.measure b 3 3;
  let c = B.build b in
  let a = Caqr.Reuse.analyze c in
  let p = { Caqr.Reuse.src = 0; dst = 3 } in
  check bool "pair valid" true (Caqr.Reuse.valid a p);
  let c' = Caqr.Reuse.apply c p in
  check int "3 wires" 3 (Caqr.Reuse.qubit_usage c');
  let d0 = Sim.Executor.run ~seed:2 ~shots:3000 c in
  let d1 = Sim.Executor.run ~seed:3 ~shots:3000 c' in
  check bool "distribution close" true (Sim.Counts.tvd d0 d1 < 0.06)

let test_chained_reuse () =
  (* Apply two reuses onto the same wire; the wire hosts three qubits. *)
  let c = bv5 () in
  let c1 = Caqr.Reuse.apply c { Caqr.Reuse.src = 0; dst = 1 } in
  let a1 = Caqr.Reuse.analyze c1 in
  check bool "chain extension valid" true
    (Caqr.Reuse.valid a1 { Caqr.Reuse.src = 0; dst = 2 });
  let c2 = Caqr.Reuse.apply c1 { Caqr.Reuse.src = 0; dst = 2 } in
  check int "usage 3" 3 (Caqr.Reuse.qubit_usage c2);
  let d0 = Sim.Executor.run ~seed:4 ~shots:64 c in
  let d2 = Sim.Executor.run ~seed:5 ~shots:64 c2 in
  check (Alcotest.float 1e-9) "still the secret" 0. (Sim.Counts.tvd d0 d2)

let test_src_finish_and_dst_start () =
  let a = Caqr.Reuse.analyze (bv5 ()) in
  let p = { Caqr.Reuse.src = 0; dst = 3 } in
  check bool "src finishes before dst could" true
    (Caqr.Reuse.src_finish_depth a p > 0);
  check bool "dst starts at depth >= 1" true (Caqr.Reuse.dst_start_depth a p >= 1)

let () =
  Alcotest.run "reuse"
    [
      ( "conditions",
        [
          Alcotest.test_case "condition 1" `Quick test_condition1_blocks_shared_gate;
          Alcotest.test_case "condition 2 (fig 7)" `Quick test_condition2_fig7;
          Alcotest.test_case "active qubits" `Quick test_valid_requires_active;
          Alcotest.test_case "valid pairs BV" `Quick test_valid_pairs_bv;
        ] );
      ( "prediction",
        [
          Alcotest.test_case "depth exact" `Quick test_predict_depth_matches_apply;
          Alcotest.test_case "duration exact" `Quick test_predict_duration_matches_apply;
          Alcotest.test_case "finish/start keys" `Quick test_src_finish_and_dst_start;
        ] );
      ( "transform",
        [
          Alcotest.test_case "reduces usage" `Quick test_apply_reduces_usage;
          Alcotest.test_case "reuses existing measure" `Quick test_apply_reuses_existing_measure;
          Alcotest.test_case "scratch clbit" `Quick test_apply_unmeasured_src_allocates_scratch;
          Alcotest.test_case "shared clbit not reused" `Quick
            test_apply_shared_clbit_not_reused;
          Alcotest.test_case "invalid raises" `Quick test_apply_invalid_raises;
          Alcotest.test_case "semantics BV" `Quick test_apply_preserves_semantics_bv;
          Alcotest.test_case "semantics entangled" `Quick test_apply_preserves_semantics_entangled;
          Alcotest.test_case "chained reuse" `Quick test_chained_reuse;
        ] );
    ]
