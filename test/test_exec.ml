(* The execution pool's determinism contract: byte-identical results for
   any jobs value, submission-ordered merge, first-failure exception
   semantics — plus the three hot paths threaded through it
   (Pipeline.compile, Fuzz.Driver, Sim.Executor). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let jobs_grid = [ 1; 2; 4 ]

(* ---- pool semantics ---- *)

let test_map_matches_sequential () =
  let xs = List.init 37 Fun.id in
  let expect = List.map (fun x -> (x * x) + 1) xs in
  List.iter
    (fun jobs ->
      check (Alcotest.list int)
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Exec.Pool.map ~jobs (fun x -> (x * x) + 1) xs))
    jobs_grid

let test_empty_task_list () =
  List.iter
    (fun jobs ->
      check (Alcotest.list int)
        (Printf.sprintf "empty at jobs=%d" jobs)
        []
        (Exec.Pool.map ~jobs (fun x -> x) []))
    jobs_grid

let test_jobs_exceed_tasks () =
  check (Alcotest.list int) "3 tasks, 16 jobs" [ 0; 2; 4 ]
    (Exec.Pool.map ~jobs:16 (fun x -> 2 * x) [ 0; 1; 2 ]);
  check (Alcotest.list int) "1 task, 4 jobs" [ 7 ]
    (Exec.Pool.map ~jobs:4 (fun x -> x) [ 7 ])

let test_jobs_clamped () =
  (* Nonsensical values degrade to 1 rather than raising. *)
  check (Alcotest.list int) "jobs=0" [ 1; 2 ]
    (Exec.Pool.map ~jobs:0 (fun x -> x) [ 1; 2 ]);
  check (Alcotest.list int) "jobs=-3" [ 1; 2 ]
    (Exec.Pool.map ~jobs:(-3) (fun x -> x) [ 1; 2 ])

let test_exception_mid_batch () =
  (* Every task runs; the FIRST failing task in submission order wins,
     regardless of which domain hit its exception first. The re-raise
     is a structured Guard_error carrying the failing task's index. *)
  List.iter
    (fun jobs ->
      match
        Exec.Pool.map ~jobs
          (fun x -> if x >= 5 then failwith "boom" else x)
          (List.init 12 Fun.id)
      with
      | _ -> Alcotest.failf "jobs=%d: expected a failure" jobs
      | exception Guard.Error.Guard_error e ->
        check Alcotest.string
          (Printf.sprintf "stage at jobs=%d" jobs)
          "exec.pool" e.Guard.Error.stage;
        check Alcotest.string
          (Printf.sprintf "site at jobs=%d" jobs)
          "pool.task" e.Guard.Error.site;
        check Alcotest.string
          (Printf.sprintf "first failure at jobs=%d" jobs)
          "task 5: boom" e.Guard.Error.detail;
        check bool
          (Printf.sprintf "not recoverable at jobs=%d" jobs)
          false e.Guard.Error.recoverable)
    jobs_grid

let test_poisoned_task_index_stable () =
  (* A task poisoned through a (non-transient) injection site fails with
     the site's name preserved; jobs=1 and jobs=4 report the SAME task
     index. *)
  let detail_at jobs =
    Guard.Inject.arm "route.swap";
    Fun.protect ~finally:Guard.Inject.disarm @@ fun () ->
    match
      Exec.Pool.map ~jobs
        (fun x ->
          if x = 5 then Guard.Inject.hit "route.swap";
          x)
        (List.init 12 Fun.id)
    with
    | _ -> Alcotest.failf "jobs=%d: expected the armed fault to fire" jobs
    | exception Guard.Error.Guard_error e ->
      check Alcotest.string
        (Printf.sprintf "inner site kept at jobs=%d" jobs)
        "route.swap" e.Guard.Error.site;
      e.Guard.Error.detail
  in
  let reference = detail_at 1 in
  check bool "detail names a task" true
    (String.length reference > 7 && String.sub reference 0 7 = "task 5:");
  check Alcotest.string "same index at jobs=4" reference (detail_at 4)

let test_transient_fault_retried () =
  (* The pool.task site is transient: an armed fault fires once, the
     bounded retry re-runs the task, and the batch still succeeds. *)
  List.iter
    (fun jobs ->
      Guard.Inject.arm ~at_hit:6 "pool.task";
      Fun.protect ~finally:Guard.Inject.disarm @@ fun () ->
      let xs = List.init 12 Fun.id in
      check (Alcotest.list int)
        (Printf.sprintf "recovered at jobs=%d" jobs)
        xs
        (Exec.Pool.map ~jobs Fun.id xs);
      check int
        (Printf.sprintf "fault fired once at jobs=%d" jobs)
        1 (Guard.Inject.fired ()))
    jobs_grid

let test_mapi_indices () =
  let xs = [ "a"; "b"; "c"; "d"; "e" ] in
  let expect = List.mapi (fun i s -> Printf.sprintf "%d%s" i s) xs in
  List.iter
    (fun jobs ->
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "mapi jobs=%d" jobs)
        expect
        (Exec.Pool.mapi ~jobs (fun i s -> Printf.sprintf "%d%s" i s) xs))
    jobs_grid

let test_seeded_streams_stable () =
  (* Task i's stream depends on (seed, i) only — not on jobs. *)
  let draw prng _ = Exec.Prng.int prng 1_000_000 in
  let xs = List.init 23 Fun.id in
  let reference = Exec.Pool.map_seeded ~jobs:1 ~seed:99 draw xs in
  List.iter
    (fun jobs ->
      check (Alcotest.list int)
        (Printf.sprintf "seeded jobs=%d" jobs)
        reference
        (Exec.Pool.map_seeded ~jobs ~seed:99 draw xs))
    jobs_grid;
  (* ... and a different seed gives a different stream. *)
  Alcotest.check bool "seed matters" false
    (reference = Exec.Pool.map_seeded ~jobs:1 ~seed:100 draw xs)

(* ---- hot path 1: Pipeline.compile ---- *)

let entry name = Benchmarks.Suite.find name

let report_fingerprint (r : Caqr.Pipeline.report) =
  ( Quantum.Qasm.to_string
      (fst (Quantum.Circuit.compact_qubits r.Caqr.Pipeline.physical)),
    r.Caqr.Pipeline.stats,
    r.Caqr.Pipeline.reuse_pairs )

let test_pipeline_determinism () =
  let e = entry "BV_10" in
  let input = Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit in
  let device =
    Hardware.Device.heavy_hex_for
      e.Benchmarks.Suite.circuit.Quantum.Circuit.num_qubits
  in
  List.iter
    (fun strategy ->
      let run jobs =
        report_fingerprint
          (Caqr.Pipeline.compile
             ~options:{ Caqr.Pipeline.default with jobs }
             device strategy input)
      in
      let reference = run 1 in
      List.iter
        (fun jobs ->
          Alcotest.check bool
            (Printf.sprintf "%s jobs=%d byte-identical"
               (Caqr.Pipeline.strategy_name strategy)
               jobs)
            true
            (run jobs = reference))
        jobs_grid)
    [ Caqr.Pipeline.Qs_min_depth; Caqr.Pipeline.Qs_best_fidelity ]

let test_compile_all_matches_sequential () =
  let e = entry "XOR_5" in
  let input = Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit in
  let device =
    Hardware.Device.heavy_hex_for
      e.Benchmarks.Suite.circuit.Quantum.Circuit.num_qubits
  in
  let strategies =
    [ Caqr.Pipeline.Baseline; Caqr.Pipeline.Qs_max_reuse; Caqr.Pipeline.Sr ]
  in
  let sequential =
    List.map
      (fun s ->
        report_fingerprint (Caqr.Pipeline.compile device s input))
      strategies
  in
  List.iter
    (fun jobs ->
      let fanned =
        List.map report_fingerprint
          (Caqr.Pipeline.compile_all
             ~options:{ Caqr.Pipeline.default with jobs }
             device strategies input)
      in
      Alcotest.check bool
        (Printf.sprintf "fan-out jobs=%d" jobs)
        true (fanned = sequential))
    jobs_grid

let test_sweep_stats_determinism () =
  let e = entry "CC_10" in
  let device =
    Hardware.Device.heavy_hex_for
      e.Benchmarks.Suite.circuit.Quantum.Circuit.num_qubits
  in
  let input = Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit in
  let reference = Caqr.Pipeline.sweep_stats ~jobs:1 device input in
  Alcotest.check bool "sweep is non-trivial" true (List.length reference > 1);
  List.iter
    (fun jobs ->
      Alcotest.check bool
        (Printf.sprintf "sweep jobs=%d" jobs)
        true
        (Caqr.Pipeline.sweep_stats ~jobs device input = reference))
    jobs_grid

(* ---- hot path 2: Fuzz.Driver ---- *)

let test_fuzz_driver_determinism () =
  let config =
    { Fuzz.Gen.default with Fuzz.Gen.max_qubits = 5; max_gates = 24 }
  in
  let summary jobs =
    Format.asprintf "%a" Fuzz.Driver.pp_summary
      (Fuzz.Driver.run ~config ~jobs ~seed:7 ~cases:24 ())
  in
  let reference = summary 1 in
  List.iter
    (fun jobs ->
      Alcotest.check Alcotest.string
        (Printf.sprintf "fuzz summary jobs=%d" jobs)
        reference (summary jobs))
    jobs_grid

(* ---- hot path 3: Sim.Executor shot-splitting ---- *)

let test_executor_determinism () =
  let module B = Quantum.Circuit.Builder in
  let b = B.create ~num_qubits:3 ~num_clbits:3 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 0 0;
  B.if_x b 0 2;
  B.measure b 1 1;
  B.measure b 2 2;
  let c = B.build b in
  (* 1300 shots spans several 256-shot batches plus a ragged tail. *)
  let run jobs = Sim.Counts.to_list (Sim.Executor.run ~jobs ~seed:5 ~shots:1300 c) in
  let reference = run 1 in
  Alcotest.check bool "sampled something" true (reference <> []);
  List.iter
    (fun jobs ->
      Alcotest.check
        (Alcotest.list (Alcotest.pair int int))
        (Printf.sprintf "counts jobs=%d" jobs)
        reference (run jobs))
    jobs_grid;
  check int "totals preserved" 1300
    (List.fold_left (fun acc (_, n) -> acc + n) 0 reference)

(* ---- Exec.Crew: long-running workers over a closable queue ---- *)

let test_crew_processes_all_jobs () =
  let processed = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let crew =
    Exec.Crew.create ~domains:3 (fun n ->
        Atomic.incr processed;
        ignore (Atomic.fetch_and_add sum n))
  in
  let jobs = List.init 50 (fun i -> i + 1) in
  List.iter (fun n -> Alcotest.check bool "accepted" true (Exec.Crew.submit crew n)) jobs;
  Exec.Crew.join crew;
  check int "every job handled exactly once" 50 (Atomic.get processed);
  check int "no job lost or duplicated" (50 * 51 / 2) (Atomic.get sum)

let test_crew_close_stops_intake () =
  let crew = Exec.Crew.create ~domains:1 (fun () -> ()) in
  Exec.Crew.close crew;
  Exec.Crew.close crew;
  Alcotest.check bool "submit after close refused" false
    (Exec.Crew.submit crew ());
  Exec.Crew.join crew

let test_crew_survives_handler_exception () =
  let processed = Atomic.make 0 in
  let crew =
    Exec.Crew.create ~domains:2 (fun n ->
        if n = 13 then failwith "poisoned job";
        Atomic.incr processed)
  in
  List.iter (fun n -> ignore (Exec.Crew.submit crew n)) (List.init 20 Fun.id);
  Exec.Crew.join crew;
  (* One job raised; the other 19 must still be handled. *)
  check int "workers outlive a handler exception" 19 (Atomic.get processed)

(* ---- supervision: dead workers respawn under a bounded budget ---- *)

let rec await_respawns crew target k =
  if Exec.Crew.respawns_left crew = target then ()
  else if k = 0 then
    Alcotest.failf "respawn budget stuck at %d (wanted %d)"
      (Exec.Crew.respawns_left crew) target
  else begin
    Unix.sleepf 0.01;
    await_respawns crew target (k - 1)
  end

let test_crew_respawn_restores_capacity () =
  let processed = Atomic.make 0 in
  let respawns_before = Obs.Metrics.count "exec.crew.respawns" in
  let crew =
    Exec.Crew.create ~domains:1 ~respawns:2 (fun n ->
        if n < 0 then failwith "poison";
        Atomic.incr processed)
  in
  check int "budget as configured" 2 (Exec.Crew.respawns_left crew);
  ignore (Exec.Crew.submit crew (-1));
  await_respawns crew 1 500;
  (* The sole worker died; its replacement must keep draining the
     queue, under the same handler. *)
  List.iter (fun n -> ignore (Exec.Crew.submit crew n)) (List.init 10 Fun.id);
  Exec.Crew.join crew;
  check int "jobs after a death still processed" 10 (Atomic.get processed);
  check int "one respawn spent" 1 (Exec.Crew.respawns_left crew);
  check bool "respawn counted" true
    (Obs.Metrics.count "exec.crew.respawns" >= respawns_before + 1)

let test_crew_respawn_budget_exhausts () =
  let crew =
    Exec.Crew.create ~domains:1 ~respawns:1 (fun n ->
        if n < 0 then failwith "poison")
  in
  ignore (Exec.Crew.submit crew (-1));
  await_respawns crew 0 500;
  (* Budget spent: the next death degrades capacity to zero instead of
     spinning — and join must still return, not deadlock. *)
  ignore (Exec.Crew.submit crew (-1));
  Exec.Crew.join crew;
  check int "budget exhausted" 0 (Exec.Crew.respawns_left crew)

let test_crew_no_respawn_when_disabled () =
  let deaths_before = Obs.Metrics.count "exec.crew.deaths" in
  let crew =
    Exec.Crew.create ~domains:1 ~respawns:0 (fun () -> failwith "die")
  in
  ignore (Exec.Crew.submit crew ());
  Exec.Crew.join crew;
  check int "supervision disabled leaves no budget" 0
    (Exec.Crew.respawns_left crew);
  check bool "death still counted" true
    (Obs.Metrics.count "exec.crew.deaths" >= deaths_before + 1)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "empty task list" `Quick test_empty_task_list;
          Alcotest.test_case "jobs > tasks" `Quick test_jobs_exceed_tasks;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "exception mid-batch" `Quick test_exception_mid_batch;
          Alcotest.test_case "poisoned task index stable" `Quick test_poisoned_task_index_stable;
          Alcotest.test_case "transient fault retried" `Quick test_transient_fault_retried;
          Alcotest.test_case "mapi indices" `Quick test_mapi_indices;
          Alcotest.test_case "seeded streams stable" `Quick test_seeded_streams_stable;
        ] );
      ( "crew",
        [
          Alcotest.test_case "all jobs processed" `Quick
            test_crew_processes_all_jobs;
          Alcotest.test_case "close stops intake" `Quick
            test_crew_close_stops_intake;
          Alcotest.test_case "survives handler exception" `Quick
            test_crew_survives_handler_exception;
          Alcotest.test_case "respawn restores capacity" `Quick
            test_crew_respawn_restores_capacity;
          Alcotest.test_case "respawn budget exhausts" `Quick
            test_crew_respawn_budget_exhausts;
          Alcotest.test_case "respawns:0 disables supervision" `Quick
            test_crew_no_respawn_when_disabled;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pipeline jobs 1/2/4" `Quick test_pipeline_determinism;
          Alcotest.test_case "compile_all fan-out" `Quick test_compile_all_matches_sequential;
          Alcotest.test_case "sweep_stats jobs 1/2/4" `Quick test_sweep_stats_determinism;
          Alcotest.test_case "fuzz driver jobs 1/2/4" `Quick test_fuzz_driver_determinism;
          Alcotest.test_case "executor jobs 1/2/4" `Quick test_executor_determinism;
        ] );
    ]
