(* The incremental analysis engine must be invisible from the outside:
   [Reuse.apply_incremental] has to agree with a fresh [Reuse.analyze]
   of the transformed circuit on every observable, and the Incremental
   search engine has to reproduce the Fresh engine's sweeps exactly. *)

(* Per-property seeded state, as in test_properties.ml: seeding from the
   name keeps runs reproducible without correlating the properties. *)
let to_alcotest t =
  let (QCheck2.Test.Test cell) = t in
  let name = QCheck2.Test.get_name cell in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xca9; Hashtbl.hash name |])
    t

(* Random shallow circuits (same shape as test_properties.ml), paired
   with a choice stream that picks which valid pair to apply at each
   step of a reuse sequence. *)
let circuit_gen =
  QCheck.Gen.(
    sized_size (int_range 2 6) (fun n ->
        let gate =
          frequency
            [
              (3, map (fun q -> `H (q mod n)) (int_bound 100));
              ( 5,
                map2
                  (fun a b ->
                    let a = a mod n and b = b mod n in
                    if a = b then `H a else `Cx (a, b))
                  (int_bound 100) (int_bound 100) );
              (2, map (fun q -> `Rz (q mod n)) (int_bound 100));
            ]
        in
        map (fun gs -> (n, gs)) (list_size (int_range 1 25) gate)))

let spec_gen =
  QCheck.Gen.(pair circuit_gen (list_size (int_range 1 5) (int_bound 1000)))

let arb_spec =
  QCheck.make spec_gen ~print:(fun ((n, gs), ks) ->
      Printf.sprintf "n=%d gates=%d choices=[%s]" n (List.length gs)
        (String.concat ";" (List.map string_of_int ks)))

let build_measured (n, gs) =
  let b = Quantum.Circuit.Builder.create ~num_qubits:n ~num_clbits:n in
  List.iter
    (function
      | `H q -> Quantum.Circuit.Builder.h b q
      | `Cx (a, c) -> Quantum.Circuit.Builder.cx b a c
      | `Rz q -> Quantum.Circuit.Builder.rz b 0.3 q)
    gs;
  Quantum.Circuit.measure_all (Quantum.Circuit.Builder.build b)

(* Every observable the search engines read off an analysis. *)
let same_analysis inc fresh =
  let n = (Caqr.Reuse.circuit inc).Quantum.Circuit.num_qubits in
  let all_pairs =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst ->
            if src = dst then None else Some { Caqr.Reuse.src; dst })
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let valid = Caqr.Reuse.valid_pairs fresh in
  Caqr.Reuse.circuit inc = Caqr.Reuse.circuit fresh
  && Caqr.Reuse.usage inc = Caqr.Reuse.usage fresh
  && Caqr.Reuse.valid_pairs inc = valid
  && List.for_all
       (fun p ->
         Caqr.Reuse.condition1 inc p = Caqr.Reuse.condition1 fresh p
         && Caqr.Reuse.condition2 inc p = Caqr.Reuse.condition2 fresh p)
       all_pairs
  && List.for_all
       (fun p ->
         Caqr.Reuse.predict_depth inc p = Caqr.Reuse.predict_depth fresh p
         && Caqr.Reuse.predict_duration inc p
            = Caqr.Reuse.predict_duration fresh p
         && Caqr.Reuse.src_finish_depth inc p
            = Caqr.Reuse.src_finish_depth fresh p
         && Caqr.Reuse.dst_start_depth inc p
            = Caqr.Reuse.dst_start_depth fresh p)
       valid

let prop_incremental_matches_fresh =
  QCheck.Test.make ~name:"reuse: apply_incremental = fresh analyze" ~count:80
    arb_spec (fun (cspec, choices) ->
      let rec go a = function
        | [] -> true
        | k :: rest -> (
          match Caqr.Reuse.valid_pairs a with
          | [] -> true
          | pairs ->
            let p = List.nth pairs (k mod List.length pairs) in
            let a' = Caqr.Reuse.apply_incremental a p in
            let fresh = Caqr.Reuse.analyze (Caqr.Reuse.apply (Caqr.Reuse.circuit a) p) in
            same_analysis a' fresh && go a' rest)
      in
      go (Caqr.Reuse.analyze (build_measured cspec)) choices)

(* ---- engine regression: sweeps must be byte-identical ---- *)

let sweep_with engine c =
  Caqr.Qs_caqr.sweep
    ~opts:{ Caqr.Qs_caqr.default_opts with Caqr.Qs_caqr.engine }
    c

let prop_sweep_engines_agree =
  QCheck.Test.make ~name:"qs: engines produce identical sweeps" ~count:40
    (QCheck.make circuit_gen ~print:(fun (n, gs) ->
         Printf.sprintf "n=%d gates=%d" n (List.length gs)))
    (fun spec ->
      let c = build_measured spec in
      sweep_with Caqr.Qs_caqr.Incremental c = sweep_with Caqr.Qs_caqr.Fresh c)

let test_suite_sweep_identical name () =
  let c = (Benchmarks.Suite.find name).Benchmarks.Suite.circuit in
  Alcotest.(check bool)
    (name ^ ": incremental sweep = fresh sweep")
    true
    (sweep_with Caqr.Qs_caqr.Incremental c = sweep_with Caqr.Qs_caqr.Fresh c)

let test_max_reuse_identical () =
  List.iter
    (fun name ->
      let c = (Benchmarks.Suite.find name).Benchmarks.Suite.circuit in
      let with_engine engine =
        Caqr.Qs_caqr.max_reuse
          ~opts:{ Caqr.Qs_caqr.default_opts with Caqr.Qs_caqr.engine }
          c
      in
      Alcotest.(check bool) name true
        (with_engine Caqr.Qs_caqr.Incremental = with_engine Caqr.Qs_caqr.Fresh))
    [ "BV_10"; "XOR_5"; "RD-32" ]

let () =
  Alcotest.run "incremental"
    [
      ( "analysis",
        [ to_alcotest prop_incremental_matches_fresh ] );
      ( "engines",
        [
          to_alcotest prop_sweep_engines_agree;
          Alcotest.test_case "max_reuse identical" `Quick
            test_max_reuse_identical;
        ]
        @ List.map
            (fun name ->
              Alcotest.test_case (name ^ " sweep") `Quick
                (test_suite_sweep_identical name))
            [ "RD-32"; "4mod5"; "XOR_5"; "BV_10"; "CC_10"; "System_9"; "Multiply_13" ] );
    ]
