(* Unit tests for the causal-cone reuse engine: hand-computed minimum
   widths on small known circuits, determinism, certificate validity,
   and the width-never-exceeds-baseline property over generated
   circuits. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module C = Quantum.Circuit
module B = Quantum.Circuit.Builder

let width_of c = Caqr.Cone_caqr.(run c).width

let certify ~original pairs =
  let claimed =
    List.map
      (fun (p : Caqr.Reuse.pair) ->
        { Verify.Structural.src = p.Caqr.Reuse.src; dst = p.Caqr.Reuse.dst })
      pairs
  in
  match Verify.Structural.check_pairs ~original claimed with
  | Verify.Verdict.Equivalent -> true
  | Verify.Verdict.Inequivalent x ->
    Printf.printf "pair certificate refuted: %s\n%!"
      x.Verify.Verdict.detail;
    false
  | Verify.Verdict.Inconclusive why ->
    Printf.printf "pair certificate inconclusive: %s\n%!" why;
    false

(* GHZ_3 = h 0; cx 0 1; cx 1 2; measure all. By hand: the only candidate
   is (src = 0, dst = 2) — cx couples (0,1) and (1,2), so Condition 1
   kills those, and q2's gates cannot reach back to q0 (q1 has no gate
   after cx 1 2 that touches q0). One fold, width 2; 2 is minimal since
   cx needs two live wires. *)
let test_ghz3_width () =
  let r = Caqr.Cone_caqr.run (Benchmarks.Extra.ghz 3) in
  check int "GHZ_3 -> 2 wires" 2 r.Caqr.Cone_caqr.width;
  check int "one fold" 1 (List.length r.Caqr.Cone_caqr.pairs)

(* BV_n is the paper's star benchmark: every data qubit interacts only
   with the target, so after its measurement each data wire hosts the
   next. Minimum width 2 at every size. *)
let test_bv_min_is_two () =
  List.iter
    (fun n ->
      check int (Printf.sprintf "BV_%d -> 2" n) 2
        (width_of (Benchmarks.Bv.circuit n)))
    [ 3; 5; 10 ]

(* A teleport-style dynamic circuit: measure a wire, then condition a
   later wire's correction on the outcome. The measured wire is free for
   reuse the moment its cone completes, so the whole program fits on one
   wire. *)
let test_dynamic_ping_width_one () =
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.h b 0;
  B.measure b 0 0;
  B.if_x b 0 1;
  B.measure b 1 1;
  let c = B.build b in
  let r = Caqr.Cone_caqr.run c in
  check int "dynamic ping -> 1 wire" 1 r.Caqr.Cone_caqr.width;
  check bool "certificate revalidates" true
    (certify ~original:c r.Caqr.Cone_caqr.pairs)

(* An actual teleportation skeleton is entangled across its whole
   lifetime: the Bell half q2 receives a correction after q0 and q1
   retire, and q2's early entangler reaches both through q1. No pair is
   valid; the cone walk must leave all three wires alone. *)
let test_teleport_skeleton_irreducible () =
  let b = B.create ~num_qubits:3 ~num_clbits:3 in
  B.h b 1;
  B.cx b 1 2;
  B.cx b 0 1;
  B.h b 0;
  B.measure b 0 0;
  B.measure b 1 1;
  B.if_x b 1 2;
  B.measure b 2 2;
  let r = Caqr.Cone_caqr.run (B.build b) in
  check int "teleport skeleton stays at 3" 3 r.Caqr.Cone_caqr.width;
  check int "no pairs" 0 (List.length r.Caqr.Cone_caqr.pairs)

let test_deterministic () =
  let c = Benchmarks.Revlib.cc 8 in
  let qasm r = Quantum.Qasm.to_string r.Caqr.Cone_caqr.circuit in
  let a = Caqr.Cone_caqr.run c and b = Caqr.Cone_caqr.run c in
  check Alcotest.string "same circuit bytes" (qasm a) (qasm b);
  check bool "same order" true (a.Caqr.Cone_caqr.order = b.Caqr.Cone_caqr.order);
  check bool "same pairs" true (a.Caqr.Cone_caqr.pairs = b.Caqr.Cone_caqr.pairs)

(* The cone order must cover each terminal measurement exactly once —
   it is a permutation of the measured qubits. *)
let test_order_is_permutation () =
  let c = Benchmarks.Bv.circuit 6 in
  let r = Caqr.Cone_caqr.run c in
  let sorted = List.sort compare r.Caqr.Cone_caqr.order in
  check bool "no duplicates" true
    (List.length (List.sort_uniq compare sorted) = List.length sorted)

let test_regular_benchmarks_certify () =
  (* On every Table 1 regular benchmark the engine's pair certificate
     must revalidate against the independent structural checker, and the
     claimed width must match the transformed circuit. *)
  List.iter
    (fun (e : Benchmarks.Suite.entry) ->
      let c = e.Benchmarks.Suite.circuit in
      let r = Caqr.Cone_caqr.run c in
      check int
        (e.Benchmarks.Suite.name ^ " width claim")
        (Caqr.Reuse.qubit_usage r.Caqr.Cone_caqr.circuit)
        r.Caqr.Cone_caqr.width;
      check bool
        (e.Benchmarks.Suite.name ^ " certificate")
        true
        (certify ~original:c r.Caqr.Cone_caqr.pairs))
    (Benchmarks.Suite.regular ())

(* Width never exceeds the baseline on arbitrary generated circuits —
   the same invariant the cross-engine fuzz oracle enforces, pinned here
   as a qcheck property so a regression fails fast with the seed. *)
let prop_width_le_baseline =
  QCheck.Test.make ~name:"cone width <= baseline" ~count:100
    QCheck.(int_bound 10_000)
    (fun seed ->
      let c = Fuzz.Gen.circuit Fuzz.Gen.default (Fuzz.Prng.make seed) in
      let r = Caqr.Cone_caqr.run c in
      r.Caqr.Cone_caqr.width <= Caqr.Reuse.qubit_usage c)

let () =
  Alcotest.run "cone_caqr"
    [
      ( "widths",
        [
          Alcotest.test_case "ghz3" `Quick test_ghz3_width;
          Alcotest.test_case "bv min 2" `Quick test_bv_min_is_two;
          Alcotest.test_case "dynamic ping" `Quick test_dynamic_ping_width_one;
          Alcotest.test_case "teleport skeleton" `Quick
            test_teleport_skeleton_irreducible;
        ] );
      ( "structure",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "order permutation" `Quick
            test_order_is_permutation;
          Alcotest.test_case "all regular certify" `Slow
            test_regular_benchmarks_certify;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_width_le_baseline ] );
    ]
