(* Tests for the differential fuzzing harness itself: PRNG stability and
   splitting, generator determinism and well-formedness, the shrinker on
   a synthetic oracle, corpus persistence, and a small oracle battery. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module G = Quantum.Gate
module C = Quantum.Circuit

let qasm = Quantum.Qasm.to_string

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let draws t = List.init 16 (fun _ -> Fuzz.Prng.bits64 t) in
  let a = draws (Fuzz.Prng.make 42) and b = draws (Fuzz.Prng.make 42) in
  check bool "same seed, same stream" true (a = b);
  let c = draws (Fuzz.Prng.make 43) in
  check bool "different seed, different stream" true (a <> c)

let test_prng_split_independent () =
  (* Child [i] must not depend on how many draws the parent made. *)
  let t1 = Fuzz.Prng.make 7 in
  let child_before = Fuzz.Prng.bits64 (Fuzz.Prng.split t1 3) in
  let t2 = Fuzz.Prng.make 7 in
  for _ = 1 to 100 do
    ignore (Fuzz.Prng.bits64 t2)
  done;
  let child_after = Fuzz.Prng.bits64 (Fuzz.Prng.split t2 3) in
  check bool "split ignores parent draws" true (child_before = child_after);
  let c0 = Fuzz.Prng.bits64 (Fuzz.Prng.split t1 0) in
  let c1 = Fuzz.Prng.bits64 (Fuzz.Prng.split t1 1) in
  check bool "children differ" true (c0 <> c1)

let test_prng_ranges () =
  let t = Fuzz.Prng.make 1 in
  for _ = 1 to 1000 do
    let n = Fuzz.Prng.int t 7 in
    check bool "int in bounds" true (n >= 0 && n < 7);
    let f = Fuzz.Prng.float t 2.5 in
    check bool "float in bounds" true (f >= 0.0 && f < 2.5)
  done;
  (match Fuzz.Prng.int t 0 with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ());
  for _ = 1 to 200 do
    let v = Fuzz.Prng.weighted t [ (0, `Never); (3, `A); (1, `B) ] in
    check bool "zero weight never wins" true (v <> `Never)
  done

(* ---- Gen ---- *)

let test_gen_deterministic () =
  let mk () = Fuzz.Gen.circuit Fuzz.Gen.default (Fuzz.Prng.make 123) in
  check Alcotest.string "same rng, same circuit" (qasm (mk ())) (qasm (mk ()))

let test_gen_well_formed () =
  let cfg = Fuzz.Gen.default in
  for seed = 0 to 199 do
    let c = Fuzz.Gen.circuit cfg (Fuzz.Prng.make seed) in
    check bool "qubits in range" true
      (c.C.num_qubits >= cfg.Fuzz.Gen.min_qubits
      && c.C.num_qubits <= cfg.Fuzz.Gen.max_qubits);
    (* The optional measure-all tail may exceed max_gates slightly. *)
    check bool "enough gates" true (C.gate_count c >= cfg.Fuzz.Gen.min_gates);
    let written = Hashtbl.create 8 in
    Array.iter
      (fun g ->
        List.iter
          (fun q ->
            check bool "qubit id in range" true (q >= 0 && q < c.C.num_qubits))
          (G.qubits g.G.kind);
        match g.G.kind with
        | G.Measure (_, cb) -> Hashtbl.replace written cb ()
        | G.If_x (cb, _) ->
          check bool "if_x reads a written clbit" true (Hashtbl.mem written cb)
        | _ -> ())
      c.C.gates
  done

let test_gen_has_dynamic_ops () =
  (* Across a modest sample the generator must actually exercise the
     dynamic alphabet, or the oracles test nothing interesting. *)
  let seen = Hashtbl.create 4 in
  for seed = 0 to 99 do
    let c = Fuzz.Gen.circuit Fuzz.Gen.default (Fuzz.Prng.make seed) in
    Array.iter
      (fun g ->
        match g.G.kind with
        | G.Measure _ -> Hashtbl.replace seen `Measure ()
        | G.Reset _ -> Hashtbl.replace seen `Reset ()
        | G.If_x _ -> Hashtbl.replace seen `If_x ()
        | G.Barrier _ -> Hashtbl.replace seen `Barrier ()
        | _ -> ())
      c.C.gates
  done;
  check int "all four dynamic kinds appear" 4 (Hashtbl.length seen)

(* ---- Shrink ---- *)

let test_shrink_synthetic () =
  (* Oracle: "contains a CZ". Minimal failing circuit = exactly one CZ;
     everything else is noise the shrinker must strip. *)
  let b = C.Builder.create ~num_qubits:5 ~num_clbits:5 in
  C.Builder.h b 0;
  C.Builder.cx b 0 1;
  C.Builder.measure b 1 1;
  C.Builder.cz b 2 3;
  C.Builder.barrier b [ 0; 1; 2 ];
  C.Builder.if_x b 1 4;
  C.Builder.rz b 0.7 2;
  C.Builder.measure b 4 4;
  let c = C.Builder.build b in
  let has_cz c =
    Array.exists
      (fun g -> match g.G.kind with G.Cz _ -> true | _ -> false)
      c.C.gates
  in
  let m, checks = Fuzz.Shrink.minimize ~still_fails:has_cz c in
  check bool "still fails" true (has_cz m);
  check int "single gate remains" 1 (C.gate_count m);
  check bool "wires compacted" true (m.C.num_qubits <= 2);
  check bool "spent some checks" true (checks > 0)

let test_shrink_respects_budget () =
  let b = C.Builder.create ~num_qubits:3 ~num_clbits:0 in
  for _ = 1 to 30 do
    C.Builder.h b 0
  done;
  let c = C.Builder.build b in
  let m, checks = Fuzz.Shrink.minimize ~max_checks:5 ~still_fails:(fun _ -> true) c in
  check bool "budget respected" true (checks <= 5);
  check bool "result still fails trivially" true (C.gate_count m <= 30)

(* ---- Corpus ---- *)

let temp_corpus_dir () =
  let f = Filename.temp_file "caqr_corpus" "" in
  Sys.remove f;
  f

let test_corpus_roundtrip () =
  let dir = temp_corpus_dir () in
  let b = C.Builder.create ~num_qubits:2 ~num_clbits:1 in
  C.Builder.h b 0;
  C.Builder.measure b 0 0;
  let c = C.Builder.build b in
  let e =
    Fuzz.Corpus.add ~dir ~seed:99 ~oracle:Fuzz.Oracle.Roundtrip
      ~note:"synthetic entry" c
  in
  (match Fuzz.Corpus.load dir with
   | [ got ] ->
     check int "seed kept" 99 got.Fuzz.Corpus.seed;
     check Alcotest.string "oracle kept" "roundtrip"
       (Fuzz.Oracle.name got.Fuzz.Corpus.oracle);
     check Alcotest.string "note kept" "synthetic entry" got.Fuzz.Corpus.note;
     check Alcotest.string "circuit roundtrips" (qasm c)
       (qasm (Fuzz.Corpus.read_circuit ~dir got))
   | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
  (* A second finding from the same seed gets a distinct file name. *)
  let e2 =
    Fuzz.Corpus.add ~dir ~seed:99 ~oracle:Fuzz.Oracle.Roundtrip ~note:"again" c
  in
  check bool "no clobber" true (e.Fuzz.Corpus.file <> e2.Fuzz.Corpus.file);
  check int "two entries" 2 (List.length (Fuzz.Corpus.load dir))

let test_corpus_missing_dir () =
  check int "missing dir loads empty" 0
    (List.length (Fuzz.Corpus.load "/nonexistent/corpus/dir"))

(* ---- Engines oracle: the cross-engine battery ---- *)

let test_engines_clean_roster () =
  (* The production roster (QS, Cone, GidNET, SR) must agree on
     generated circuits: every artifact well-formed, every certificate
     revalidating, every width inside [min engines, baseline]. *)
  for seed = 0 to 24 do
    let c = Fuzz.Gen.circuit Fuzz.Gen.default (Fuzz.Prng.make seed) in
    match Fuzz.Oracle.check_engines_with ~seed Fuzz.Oracle.cross_engines c with
    | Fuzz.Oracle.Pass -> ()
    | Fuzz.Oracle.Fail why -> Alcotest.failf "seed %d: %s" seed why
  done

(* A deliberately buggy engine: it claims one wire fewer than its
   artifact actually uses. The battery's width-claim cross-check must
   outvote it against the three honest engines. *)
let buggy_engine =
  ( "buggy",
    fun c ->
      {
        Fuzz.Oracle.ea_circuit = c;
        ea_pairs = Some [];
        ea_width = max 0 (Caqr.Reuse.qubit_usage c - 1);
        ea_slack = 0;
      } )

let test_engines_buggy_caught_and_shrunk () =
  let roster = Fuzz.Oracle.cross_engines @ [ buggy_engine ] in
  let fails c =
    match Fuzz.Oracle.check_engines_with ~seed:11 roster c with
    | Fuzz.Oracle.Fail _ -> true
    | Fuzz.Oracle.Pass -> false
  in
  let c = Fuzz.Gen.circuit Fuzz.Gen.default (Fuzz.Prng.make 11) in
  check bool "buggy engine caught" true (fails c);
  (match Fuzz.Oracle.check_engines_with ~seed:11 roster c with
  | Fuzz.Oracle.Fail why ->
    (* The verdict must name the culprit, not just "failed". *)
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      go 0
    in
    check bool "failure names the buggy engine" true (contains why "buggy")
  | Fuzz.Oracle.Pass -> Alcotest.fail "expected a failure");
  (* The generic shrinker applies: a minimal repro still fails and the
     empty circuit (zero active wires, claim trivially honest) passes,
     so shrinking cannot overshoot to nothing. *)
  let m, _ = Fuzz.Shrink.minimize ~still_fails:fails c in
  check bool "minimized still fails" true (fails m);
  check bool "shrinker made progress" true (C.gate_count m < C.gate_count c);
  check bool "minimal repro keeps a live wire" true
    (Caqr.Reuse.qubit_usage m >= 1)

(* ---- Driver ---- *)

let test_driver_battery () =
  Obs.Metrics.reset ();
  let s = Fuzz.Driver.run ~seed:5 ~cases:40 () in
  check int "all cases ran" 40 (Obs.Metrics.count "fuzz.cases");
  check int "no failures on current compiler" 0 (List.length s.Fuzz.Driver.failures);
  (* Determinism: an identical run reports the identical summary. *)
  let s' = Fuzz.Driver.run ~seed:5 ~cases:40 () in
  check bool "replayed summary identical" true (s = s')

let () =
  Alcotest.run "fuzz"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick
            test_prng_split_independent;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
        ] );
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "well formed" `Quick test_gen_well_formed;
          Alcotest.test_case "dynamic ops" `Quick test_gen_has_dynamic_ops;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "synthetic oracle" `Quick test_shrink_synthetic;
          Alcotest.test_case "budget" `Quick test_shrink_respects_budget;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "missing dir" `Quick test_corpus_missing_dir;
        ] );
      ( "engines",
        [
          Alcotest.test_case "clean roster agrees" `Quick
            test_engines_clean_roster;
          Alcotest.test_case "buggy engine caught and shrunk" `Quick
            test_engines_buggy_caught_and_shrunk;
        ] );
      ( "driver",
        [ Alcotest.test_case "battery" `Quick test_driver_battery ] );
    ]
