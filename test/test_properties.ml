(* Property-based tests (qcheck) for the core invariants. *)

(* Pin the generator seed: property tests must be reproducible in CI.
   Each property gets its own state, seeded from its name — identical
   seeds would make every property explore the same underlying stream,
   correlating their inputs (and their blind spots). *)
let to_alcotest t =
  let (QCheck2.Test.Test cell) = t in
  let name = QCheck2.Test.get_name cell in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xca9; Hashtbl.hash name |])
    t

(* ---- Generators ---- *)

(* A random undirected graph as (n, edges). *)
let graph_gen =
  QCheck.Gen.(
    sized_size (int_range 2 24) (fun n ->
        let pair = map2 (fun a b -> (a mod n, b mod n)) (int_bound 1000) (int_bound 1000) in
        map
          (fun es -> (n, List.filter (fun (a, b) -> a <> b) es))
          (list_size (int_range 0 (2 * n)) pair)))

let arb_graph =
  QCheck.make graph_gen ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) es)))

let build_graph (n, es) = Galg.Graph.of_edges n es

(* A random shallow circuit on [n] qubits: H / CX / RZ / measure-free. *)
let circuit_gen =
  QCheck.Gen.(
    sized_size (int_range 2 6) (fun n ->
        let gate =
          frequency
            [
              (3, map (fun q -> `H (q mod n)) (int_bound 100));
              ( 5,
                map2
                  (fun a b ->
                    let a = a mod n and b = b mod n in
                    if a = b then `H a else `Cx (a, b))
                  (int_bound 100) (int_bound 100) );
              (2, map (fun q -> `Rz (q mod n)) (int_bound 100));
            ]
        in
        map (fun gs -> (n, gs)) (list_size (int_range 1 25) gate)))

let arb_circuit =
  QCheck.make circuit_gen ~print:(fun (n, gs) ->
      Printf.sprintf "n=%d gates=%d" n (List.length gs))

let build_circuit (n, gs) =
  let b = Quantum.Circuit.Builder.create ~num_qubits:n ~num_clbits:n in
  List.iter
    (function
      | `H q -> Quantum.Circuit.Builder.h b q
      | `Cx (a, c) -> Quantum.Circuit.Builder.cx b a c
      | `Rz q -> Quantum.Circuit.Builder.rz b 0.3 q)
    gs;
  Quantum.Circuit.Builder.build b

(* The same circuit with trailing measurement of every active qubit. *)
let build_measured spec =
  Quantum.Circuit.measure_all (build_circuit spec)

(* ---- Graph properties ---- *)

let prop_size_consistent =
  QCheck.Test.make ~name:"graph: size = |edges|" ~count:100 arb_graph (fun spec ->
      let g = build_graph spec in
      Galg.Graph.size g = List.length (Galg.Graph.edges g))

let prop_degree_sum =
  QCheck.Test.make ~name:"graph: sum deg = 2m" ~count:100 arb_graph (fun spec ->
      let g = build_graph spec in
      let sum =
        Galg.Graph.fold_vertices (fun v acc -> acc + Galg.Graph.degree g v) g 0
      in
      sum = 2 * Galg.Graph.size g)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"graph: bfs satisfies edge relaxation" ~count:50 arb_graph
    (fun spec ->
      let g = build_graph spec in
      let n = Galg.Graph.order g in
      if n = 0 then true
      else begin
        let d = Galg.Graph.bfs_dist g 0 in
        List.for_all
          (fun (u, v) ->
            (d.(u) = max_int && d.(v) = max_int)
            || abs (d.(u) - d.(v)) <= 1)
          (Galg.Graph.edges g)
      end)

(* ---- Coloring properties ---- *)

let prop_coloring_proper =
  QCheck.Test.make ~name:"coloring: dsatur is proper" ~count:100 arb_graph
    (fun spec ->
      let g = build_graph spec in
      Galg.Coloring.is_proper g (Galg.Coloring.dsatur g))

let prop_coloring_bound =
  QCheck.Test.make ~name:"coloring: count <= maxdeg + 1" ~count:100 arb_graph
    (fun spec ->
      let g = build_graph spec in
      (Galg.Coloring.best g).Galg.Coloring.count <= Galg.Graph.max_degree g + 1)

(* ---- Matching properties ---- *)

let prop_blossom_valid =
  QCheck.Test.make ~name:"matching: blossom valid + maximal" ~count:100 arb_graph
    (fun spec ->
      let g = build_graph spec in
      let m = Galg.Matching.blossom g in
      Galg.Matching.is_valid g m && Galg.Matching.is_maximal g m)

let prop_blossom_geq_greedy =
  QCheck.Test.make ~name:"matching: blossom >= greedy" ~count:100 arb_graph
    (fun spec ->
      let g = build_graph spec in
      let b = Galg.Matching.blossom g in
      let gr = Galg.Matching.greedy ~weight:(fun _ _ -> 1.) g in
      Galg.Matching.cardinality b >= Galg.Matching.cardinality gr)

let prop_priority_valid =
  QCheck.Test.make ~name:"matching: priority matching valid" ~count:100 arb_graph
    (fun spec ->
      let g = build_graph spec in
      let m = Galg.Matching.priority_matching ~priority:(fun u v -> (u + v) mod 2 = 0) g in
      Galg.Matching.is_valid g m)

(* ---- Circuit / DAG properties ---- *)

let prop_depth_bounds =
  QCheck.Test.make ~name:"circuit: depth <= gates, >= gates/qubits" ~count:100
    arb_circuit (fun spec ->
      let c = build_circuit spec in
      let d = Quantum.Circuit.depth c in
      d <= Quantum.Circuit.gate_count c
      && d * c.Quantum.Circuit.num_qubits >= Quantum.Circuit.gate_count c)

let prop_dag_edges_forward =
  QCheck.Test.make ~name:"dag: edges go forward in gate order" ~count:100
    arb_circuit (fun spec ->
      let dag = Quantum.Dag.build (build_circuit spec) in
      List.for_all
        (fun i -> List.for_all (fun j -> j > i) (Quantum.Dag.succs dag i))
        (Quantum.Dag.topo_order dag))

let prop_reachability_matches_dfs =
  QCheck.Test.make ~name:"reachability: bitset closure = DFS" ~count:60 arb_circuit
    (fun spec ->
      let dag = Quantum.Dag.build (build_circuit spec) in
      let r = Quantum.Reachability.build dag in
      let n = Quantum.Dag.num_nodes dag in
      let dfs_reach i =
        let seen = Array.make n false in
        let rec go j =
          if not seen.(j) then begin
            seen.(j) <- true;
            List.iter go (Quantum.Dag.succs dag j)
          end
        in
        go i;
        seen
      in
      let ok = ref true in
      for i = 0 to n - 1 do
        let seen = dfs_reach i in
        for j = 0 to n - 1 do
          if Quantum.Reachability.reaches r i j <> seen.(j) then ok := false
        done
      done;
      !ok)

let prop_compact_preserves_gates =
  QCheck.Test.make ~name:"circuit: compaction keeps gate count" ~count:100
    arb_circuit (fun spec ->
      let c = build_circuit spec in
      let c', _ = Quantum.Circuit.compact_qubits c in
      Quantum.Circuit.gate_count c' = Quantum.Circuit.gate_count c)

(* ---- Simulator properties ---- *)

let prop_norm_preserved =
  QCheck.Test.make ~name:"sim: unitary gates preserve norm" ~count:60 arb_circuit
    (fun spec ->
      let c = build_circuit spec in
      let st = Sim.State.init c.Quantum.Circuit.num_qubits in
      Array.iter
        (fun g ->
          match g.Quantum.Gate.kind with
          | Quantum.Gate.One_q (gq, q) -> Sim.State.apply_one_q st gq q
          | Quantum.Gate.Cx (a, b) -> Sim.State.apply_cx st a b
          | _ -> ())
        c.Quantum.Circuit.gates;
      Float.abs (Sim.State.norm2 st -. 1.) < 1e-9)

let prop_probabilities_sum =
  QCheck.Test.make ~name:"sim: probabilities sum to 1" ~count:40 arb_circuit
    (fun spec ->
      let c = build_circuit spec in
      let st = Sim.State.init c.Quantum.Circuit.num_qubits in
      Array.iter
        (fun g ->
          match g.Quantum.Gate.kind with
          | Quantum.Gate.One_q (gq, q) -> Sim.State.apply_one_q st gq q
          | Quantum.Gate.Cx (a, b) -> Sim.State.apply_cx st a b
          | _ -> ())
        c.Quantum.Circuit.gates;
      let s = Array.fold_left ( +. ) 0. (Sim.State.probabilities st) in
      Float.abs (s -. 1.) < 1e-9)

let prop_tvd_range =
  QCheck.Test.make ~name:"counts: tvd in [0,1] and symmetric" ~count:50
    QCheck.(pair (list (int_bound 7)) (list (int_bound 7)))
    (fun (xs, ys) ->
      let mk l =
        let c = Sim.Counts.create ~num_clbits:3 in
        List.iter (Sim.Counts.add c) l;
        c
      in
      let a = mk xs and b = mk ys in
      let t = Sim.Counts.tvd a b in
      t >= 0. && t <= 1. && Float.abs (t -. Sim.Counts.tvd b a) < 1e-12)

(* ---- Reuse properties ---- *)

let prop_predict_depth_exact =
  QCheck.Test.make ~name:"reuse: predicted depth = actual" ~count:60 arb_circuit
    (fun spec ->
      let c = build_measured spec in
      let a = Caqr.Reuse.analyze c in
      List.for_all
        (fun p ->
          Caqr.Reuse.predict_depth a p
          = Quantum.Circuit.depth (Caqr.Reuse.apply c p))
        (Caqr.Reuse.valid_pairs a))

let prop_apply_drops_usage =
  QCheck.Test.make ~name:"reuse: apply drops usage by one" ~count:60 arb_circuit
    (fun spec ->
      let c = build_measured spec in
      let a = Caqr.Reuse.analyze c in
      match Caqr.Reuse.valid_pairs a with
      | [] -> true
      | p :: _ ->
        Caqr.Reuse.qubit_usage (Caqr.Reuse.apply c p)
        = Caqr.Reuse.qubit_usage c - 1)

let prop_apply_preserves_distribution =
  QCheck.Test.make ~name:"reuse: apply preserves output distribution" ~count:12
    arb_circuit (fun spec ->
      let c = build_measured spec in
      let a = Caqr.Reuse.analyze c in
      match Caqr.Reuse.valid_pairs a with
      | [] -> true
      | p :: _ ->
        let c' = Caqr.Reuse.apply c p in
        let d0 = Sim.Executor.run ~seed:5 ~shots:1500 c in
        let d1 = Sim.Executor.run ~seed:6 ~shots:1500 c' in
        (* statistical tolerance for 1500-shot histograms on <= 6 bits *)
        Sim.Counts.tvd d0 d1 < 0.12)

let prop_sweep_usage_decreases =
  QCheck.Test.make ~name:"qs: sweep strictly decreases usage" ~count:30 arb_circuit
    (fun spec ->
      let c = build_measured spec in
      let steps = Caqr.Qs_caqr.sweep c in
      let rec ok = function
        | a :: (b :: _ as r) ->
          a.Caqr.Qs_caqr.usage > b.Caqr.Qs_caqr.usage && ok r
        | _ -> true
      in
      ok steps)

(* ---- Commute properties ---- *)

let prop_commute_chains_independent =
  QCheck.Test.make ~name:"commute: sweep chains are independent sets" ~count:40
    arb_graph (fun spec ->
      let g = build_graph spec in
      let steps = Caqr.Commute.sweep ~mode:`Heuristic g in
      List.for_all
        (fun (s : Caqr.Commute.step) ->
          let plan = s.Caqr.Commute.plan in
          List.for_all
            (fun head ->
              let members = Caqr.Commute.chain plan head in
              List.for_all
                (fun a ->
                  List.for_all
                    (fun b -> a = b || not (Galg.Graph.has_edge g a b))
                    members)
                members)
            (Caqr.Commute.wires plan))
        steps)

let prop_commute_emit_complete =
  QCheck.Test.make ~name:"commute: emit keeps every gate" ~count:40 arb_graph
    (fun spec ->
      let g = build_graph spec in
      let c = Caqr.Commute.emit (Caqr.Commute.make g) in
      Quantum.Circuit.two_q_count c = Galg.Graph.size g)

let prop_commute_emit_reuse_complete =
  QCheck.Test.make ~name:"commute: reused emit keeps every gate" ~count:30 arb_graph
    (fun spec ->
      let g = build_graph spec in
      let steps = Caqr.Commute.sweep ~mode:`Heuristic g in
      let last = List.nth steps (List.length steps - 1) in
      let c = Caqr.Commute.emit last.Caqr.Commute.plan in
      Quantum.Circuit.two_q_count c = Galg.Graph.size g)

(* ---- Optimizer properties ---- *)

let prop_optimize_never_grows =
  QCheck.Test.make ~name:"optimize: gate count never increases" ~count:100
    arb_circuit (fun spec ->
      let c = build_circuit spec in
      Quantum.Circuit.gate_count (Quantum.Optimize.peephole c)
      <= Quantum.Circuit.gate_count c)

let prop_optimize_idempotent =
  QCheck.Test.make ~name:"optimize: idempotent" ~count:100 arb_circuit
    (fun spec ->
      let o = Quantum.Optimize.peephole (build_circuit spec) in
      Quantum.Circuit.gate_count (Quantum.Optimize.peephole o)
      = Quantum.Circuit.gate_count o)

let prop_optimize_preserves_distribution =
  QCheck.Test.make ~name:"optimize: distribution preserved" ~count:15
    arb_circuit (fun spec ->
      let c = build_measured spec in
      let o = Quantum.Optimize.peephole c in
      let d0 = Sim.Executor.run ~seed:9 ~shots:1500 c in
      let d1 = Sim.Executor.run ~seed:10 ~shots:1500 o in
      Sim.Counts.tvd d0 d1 < 0.12)

(* ---- QASM roundtrip ---- *)

let prop_qasm_roundtrip =
  QCheck.Test.make ~name:"qasm: parse (print c) = c" ~count:60 arb_circuit
    (fun spec ->
      let c = build_measured spec in
      let c' = Quantum.Qasm_parser.of_string (Quantum.Qasm.to_string c) in
      c'.Quantum.Circuit.num_qubits = c.Quantum.Circuit.num_qubits
      && Quantum.Circuit.gate_count c' = Quantum.Circuit.gate_count c
      && Array.for_all2
           (fun a b -> a.Quantum.Gate.kind = b.Quantum.Gate.kind)
           c'.Quantum.Circuit.gates c.Quantum.Circuit.gates)

(* ---- Budgeted planning properties ---- *)

let prop_budget_plan_usage_within =
  QCheck.Test.make ~name:"commute: budget plan respects budget" ~count:60
    arb_graph (fun spec ->
      let g = build_graph spec in
      let n = Galg.Graph.order g in
      List.for_all
        (fun budget ->
          match Caqr.Commute.plan_with_budget g ~budget with
          | None -> true
          | Some p -> Caqr.Commute.usage p <= budget)
        [ n; (n / 2) + 1; (n / 3) + 2 ])

let prop_budget_plan_chains_independent =
  QCheck.Test.make ~name:"commute: budget plan chains independent" ~count:60
    arb_graph (fun spec ->
      let g = build_graph spec in
      let n = Galg.Graph.order g in
      match Caqr.Commute.plan_with_budget g ~budget:(max 2 (n - 2)) with
      | None -> true
      | Some p ->
        List.for_all
          (fun head ->
            let members = Caqr.Commute.chain p head in
            List.for_all
              (fun a ->
                List.for_all
                  (fun b -> a = b || not (Galg.Graph.has_edge g a b))
                  members)
              members)
          (Caqr.Commute.wires p))

let prop_budget_plan_emit_complete =
  QCheck.Test.make ~name:"commute: budget plan emits every gate" ~count:60
    arb_graph (fun spec ->
      let g = build_graph spec in
      let n = Galg.Graph.order g in
      match Caqr.Commute.plan_with_budget g ~budget:(max 2 ((n / 2) + 1)) with
      | None -> true
      | Some p ->
        Quantum.Circuit.two_q_count (Caqr.Commute.emit p) = Galg.Graph.size g)

let prop_budget_floor_geq_coloring =
  QCheck.Test.make ~name:"commute: no plan below chromatic bound" ~count:40
    arb_graph (fun spec ->
      let g = build_graph spec in
      let chi = Caqr.Commute.min_qubits g in
      (* Coloring is a lower bound: a budget below it must be rejected
         whenever the graph has at least one edge. *)
      chi < 2 || Caqr.Commute.plan_with_budget g ~budget:(chi - 1) = None)

let () =
  Alcotest.run "properties"
    [
      ( "galg",
        List.map to_alcotest
          [
            prop_size_consistent;
            prop_degree_sum;
            prop_bfs_triangle_inequality;
            prop_coloring_proper;
            prop_coloring_bound;
            prop_blossom_valid;
            prop_blossom_geq_greedy;
            prop_priority_valid;
          ] );
      ( "quantum",
        List.map to_alcotest
          [
            prop_depth_bounds;
            prop_dag_edges_forward;
            prop_reachability_matches_dfs;
            prop_compact_preserves_gates;
          ] );
      ( "sim",
        List.map to_alcotest
          [ prop_norm_preserved; prop_probabilities_sum; prop_tvd_range ] );
      ( "reuse",
        List.map to_alcotest
          [
            prop_predict_depth_exact;
            prop_apply_drops_usage;
            prop_apply_preserves_distribution;
            prop_sweep_usage_decreases;
          ] );
      ( "commute",
        List.map to_alcotest
          [
            prop_commute_chains_independent;
            prop_commute_emit_complete;
            prop_commute_emit_reuse_complete;
            prop_budget_plan_usage_within;
            prop_budget_plan_chains_independent;
            prop_budget_plan_emit_complete;
            prop_budget_floor_geq_coloring;
          ] );
      ( "optimize",
        List.map to_alcotest
          [
            prop_optimize_never_grows;
            prop_optimize_idempotent;
            prop_optimize_preserves_distribution;
            prop_qasm_roundtrip;
          ] );
    ]
