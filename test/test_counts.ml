(* The Counts.merge algebra the execution pool's shot-splitting relies
   on: merge must be associative and commutative with an empty histogram
   as identity, so that folding per-batch histograms in submission order
   equals any other association — and split-shot sampling must agree
   statistically with a single-stream run. *)

let to_alcotest t =
  let (QCheck2.Test.Test cell) = t in
  let name = QCheck2.Test.get_name cell in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xc0a7; Hashtbl.hash name |])
    t

(* ---- generators ---- *)

let num_clbits = 4

let counts_gen =
  QCheck.Gen.(
    list_size (int_bound 12) (pair (int_bound ((1 lsl num_clbits) - 1)) (1 -- 50))
    >|= fun entries ->
    let t = Sim.Counts.create ~num_clbits in
    List.iter
      (fun (outcome, n) ->
        for _ = 1 to n do
          Sim.Counts.add t outcome
        done)
      entries;
    t)

let print_counts t =
  String.concat "; "
    (List.map
       (fun (k, v) -> Printf.sprintf "%d:%d" k v)
       (Sim.Counts.to_list t))

let arb_counts = QCheck.make counts_gen ~print:print_counts

(* ---- algebraic laws ---- *)

let prop_assoc =
  QCheck.Test.make ~name:"merge: associative" ~count:200
    (QCheck.triple arb_counts arb_counts arb_counts) (fun (a, b, c) ->
      Sim.Counts.equal
        (Sim.Counts.merge (Sim.Counts.merge a b) c)
        (Sim.Counts.merge a (Sim.Counts.merge b c)))

let prop_comm =
  QCheck.Test.make ~name:"merge: commutative" ~count:200
    (QCheck.pair arb_counts arb_counts) (fun (a, b) ->
      Sim.Counts.equal (Sim.Counts.merge a b) (Sim.Counts.merge b a))

let prop_identity =
  QCheck.Test.make ~name:"merge: empty is identity" ~count:200 arb_counts
    (fun a ->
      let empty = Sim.Counts.create ~num_clbits in
      Sim.Counts.equal (Sim.Counts.merge a empty) a
      && Sim.Counts.equal (Sim.Counts.merge empty a) a)

let prop_total =
  QCheck.Test.make ~name:"merge: totals add" ~count:200
    (QCheck.pair arb_counts arb_counts) (fun (a, b) ->
      Sim.Counts.total (Sim.Counts.merge a b)
      = Sim.Counts.total a + Sim.Counts.total b)

let test_merge_width_mismatch () =
  let a = Sim.Counts.create ~num_clbits:2 in
  let b = Sim.Counts.create ~num_clbits:3 in
  match Sim.Counts.merge a b with
  | _ -> Alcotest.fail "merge across clbit widths should raise"
  | exception Invalid_argument _ -> ()

(* ---- statistical sanity: split-shot vs single-stream sampling ---- *)

(* The split run (seed 5, several 256-shot batches) and a single-stream
   run (a different seed, hence an entirely independent random stream)
   sample the same circuit; both empirical distributions must sit within
   TVD tolerance of each other. This is the check that per-batch PRNG
   splitting did not bias the sampled distribution, only reshuffle which
   stream produces which shot. *)
let test_split_matches_single_stream () =
  let module B = Quantum.Circuit.Builder in
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 0 0;
  B.if_x b 0 1;
  B.measure b 1 1;
  let c = B.build b in
  let shots = 4096 in
  (* 4096 shots = 16 batches when split; 1 batch would need shots <= 256. *)
  let split = Sim.Executor.run ~jobs:4 ~seed:5 ~shots c in
  let single = Sim.Executor.run ~jobs:1 ~seed:977 ~shots:256 c in
  Alcotest.check Alcotest.int "split total" shots (Sim.Counts.total split);
  let tvd = Sim.Counts.tvd split single in
  if tvd > 0.08 then
    Alcotest.fail
      (Printf.sprintf
         "split-shot and single-stream distributions diverge: TVD %.4f > 0.08"
         tvd);
  (* Bell + correction collapses outcomes onto {00, 01}: bit 1 is
     always flipped back to 0 by the classically-controlled X. *)
  List.iter
    (fun (outcome, _) ->
      if outcome land 2 <> 0 then
        Alcotest.fail
          (Printf.sprintf "impossible outcome %d sampled" outcome))
    (Sim.Counts.to_list split)

let () =
  Alcotest.run "counts"
    [
      ( "merge-algebra",
        [
          to_alcotest prop_assoc;
          to_alcotest prop_comm;
          to_alcotest prop_identity;
          to_alcotest prop_total;
          Alcotest.test_case "width mismatch raises" `Quick
            test_merge_width_mismatch;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "split vs single-stream TVD" `Quick
            test_split_matches_single_stream;
        ] );
    ]
