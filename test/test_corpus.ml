(* Replays every checked-in fuzz counterexample through the oracle it
   originally refuted. Each entry was minimized from a real compiler bug;
   the oracle passing now proves the fix and pins it against regression.

   Tests execute from [_build/default/test], so the corpus is located by
   probing a few roots; a missing corpus yields an empty (vacuously
   green) suite rather than a failure, keeping fresh clones usable. *)

let corpus_dir =
  List.find_opt
    (fun d -> Sys.file_exists (Filename.concat d "manifest.tsv"))
    [
      Filename.concat "../../.." Fuzz.Corpus.default_dir;
      Fuzz.Corpus.default_dir;
      Filename.concat ".." Fuzz.Corpus.default_dir;
    ]

let entries =
  match corpus_dir with Some d -> Fuzz.Corpus.load d | None -> []

let replay dir (e : Fuzz.Corpus.entry) () =
  let c = Fuzz.Corpus.read_circuit ~dir e in
  match Fuzz.Oracle.check e.Fuzz.Corpus.oracle ~seed:e.Fuzz.Corpus.seed c with
  | Fuzz.Oracle.Pass -> ()
  | Fuzz.Oracle.Fail msg ->
    Alcotest.failf "%s regressed (originally: %s): %s" e.Fuzz.Corpus.file
      e.Fuzz.Corpus.note msg

let cases =
  match corpus_dir with
  | None -> []
  | Some dir ->
    List.map
      (fun (e : Fuzz.Corpus.entry) ->
        Alcotest.test_case e.Fuzz.Corpus.file `Quick (replay dir e))
      entries

(* ---- crash-safe writes ---- *)

let scratch_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "caqr-test-corpus"
  in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  dir

let tiny_circuit () =
  let module B = Quantum.Circuit.Builder in
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 1 1;
  B.build b

let test_add_roundtrip () =
  let dir = scratch_dir () in
  let c = tiny_circuit () in
  let entry =
    Fuzz.Corpus.add ~dir ~seed:7 ~oracle:Fuzz.Oracle.Roundtrip
      ~note:"tab\there newline\nthere" c
  in
  (match Fuzz.Corpus.load dir with
  | [ e ] ->
    Alcotest.(check string) "file" entry.Fuzz.Corpus.file e.Fuzz.Corpus.file;
    Alcotest.(check int) "seed" 7 e.Fuzz.Corpus.seed;
    Alcotest.(check string)
      "note cleaned" "tab here newline there" e.Fuzz.Corpus.note
  | es -> Alcotest.failf "expected 1 manifest entry, got %d" (List.length es));
  let back = Fuzz.Corpus.read_circuit ~dir entry in
  Alcotest.(check string)
    "header is invisible to the parser"
    (Quantum.Qasm.to_string c)
    (Quantum.Qasm.to_string back)

let test_injected_write_fault_leaves_no_debris () =
  let dir = scratch_dir () in
  let c = tiny_circuit () in
  let before =
    Fuzz.Corpus.add ~dir ~seed:1 ~oracle:Fuzz.Oracle.Roundtrip ~note:"first" c
  in
  Guard.Inject.arm "corpus.write";
  (match
     Fun.protect ~finally:Guard.Inject.disarm (fun () ->
         Fuzz.Corpus.add ~dir ~seed:2 ~oracle:Fuzz.Oracle.Roundtrip
           ~note:"second" c)
   with
  | _ -> Alcotest.fail "armed corpus.write must fail the add"
  | exception Guard.Error.Guard_error e ->
    Alcotest.(check string) "structured" "corpus.write" e.Guard.Error.site);
  (* The failed add left nothing behind: no temp file, no truncated
     circuit, and the manifest still lists exactly the first entry. *)
  let files = Array.to_list (Sys.readdir dir) |> List.sort compare in
  Alcotest.(check (list string))
    "only the first circuit and the manifest"
    [ "manifest.tsv"; before.Fuzz.Corpus.file ]
    files;
  (match Fuzz.Corpus.load dir with
  | [ e ] ->
    Alcotest.(check string) "manifest intact" before.Fuzz.Corpus.file
      e.Fuzz.Corpus.file
  | es -> Alcotest.failf "expected 1 entry after fault, got %d" (List.length es));
  (* ... and a retry (fault spent) succeeds. *)
  let again =
    Fuzz.Corpus.add ~dir ~seed:2 ~oracle:Fuzz.Oracle.Roundtrip ~note:"second" c
  in
  Alcotest.(check int) "both entries listed" 2
    (List.length (Fuzz.Corpus.load dir));
  ignore (Fuzz.Corpus.read_circuit ~dir again)

let test_manifest_rebuilt_from_directory () =
  let dir = scratch_dir () in
  let c = tiny_circuit () in
  let first =
    Fuzz.Corpus.add ~dir ~seed:3 ~oracle:Fuzz.Oracle.Roundtrip ~note:"keep" c
  in
  (* Simulate a corrupted/lost manifest: the next add rebuilds it from
     the files' metadata headers alone. *)
  Sys.remove (Filename.concat dir "manifest.tsv");
  ignore
    (Fuzz.Corpus.add ~dir ~seed:4 ~oracle:Fuzz.Oracle.Roundtrip ~note:"new" c);
  let files = List.map (fun e -> e.Fuzz.Corpus.file) (Fuzz.Corpus.load dir) in
  Alcotest.(check bool) "lost entry recovered from its header" true
    (List.mem first.Fuzz.Corpus.file files);
  Alcotest.(check int) "both present" 2 (List.length files)

let crash_safety =
  [
    Alcotest.test_case "add/load/read roundtrip" `Quick test_add_roundtrip;
    Alcotest.test_case "injected fault leaves no debris" `Quick
      test_injected_write_fault_leaves_no_debris;
    Alcotest.test_case "manifest rebuilt from directory" `Quick
      test_manifest_rebuilt_from_directory;
  ]

let () =
  Alcotest.run "corpus" [ ("replay", cases); ("crash-safety", crash_safety) ]
