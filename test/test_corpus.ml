(* Replays every checked-in fuzz counterexample through the oracle it
   originally refuted. Each entry was minimized from a real compiler bug;
   the oracle passing now proves the fix and pins it against regression.

   Tests execute from [_build/default/test], so the corpus is located by
   probing a few roots; a missing corpus yields an empty (vacuously
   green) suite rather than a failure, keeping fresh clones usable. *)

let corpus_dir =
  List.find_opt
    (fun d -> Sys.file_exists (Filename.concat d "manifest.tsv"))
    [
      Filename.concat "../../.." Fuzz.Corpus.default_dir;
      Fuzz.Corpus.default_dir;
      Filename.concat ".." Fuzz.Corpus.default_dir;
    ]

let entries =
  match corpus_dir with Some d -> Fuzz.Corpus.load d | None -> []

let replay dir (e : Fuzz.Corpus.entry) () =
  let c = Fuzz.Corpus.read_circuit ~dir e in
  match Fuzz.Oracle.check e.Fuzz.Corpus.oracle ~seed:e.Fuzz.Corpus.seed c with
  | Fuzz.Oracle.Pass -> ()
  | Fuzz.Oracle.Fail msg ->
    Alcotest.failf "%s regressed (originally: %s): %s" e.Fuzz.Corpus.file
      e.Fuzz.Corpus.note msg

let cases =
  match corpus_dir with
  | None -> []
  | Some dir ->
    List.map
      (fun (e : Fuzz.Corpus.entry) ->
        Alcotest.test_case e.Fuzz.Corpus.file `Quick (replay dir e))
      entries

let () = Alcotest.run "corpus" [ ("replay", cases) ]
