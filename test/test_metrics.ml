(* Unit tests for Obs.Metrics: counter and timer semantics, snapshot
   isolation, reset, and the serialized renderings. The registry is
   process-global, so every test starts from [reset]. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module M = Obs.Metrics

let test_counter_basics () =
  M.reset ();
  check int "unbumped counter is 0" 0 (M.count "t.never");
  M.incr "t.a";
  M.incr "t.a";
  M.incr ~by:5 "t.a";
  check int "1 + 1 + 5" 7 (M.count "t.a");
  M.incr ~by:(-2) "t.a";
  check int "negative by subtracts" 5 (M.count "t.a");
  M.incr "t.b";
  check int "keys independent" 1 (M.count "t.b");
  check int "t.a untouched by t.b" 5 (M.count "t.a")

let test_timer_basics () =
  M.reset ();
  check bool "unused timer is 0" true (M.timing "time.t" = 0.0);
  M.add_time "time.t" 0.25;
  M.add_time "time.t" 0.5;
  check bool "accumulates" true (abs_float (M.timing "time.t" -. 0.75) < 1e-9);
  M.add_time "time.t" (-1.0);
  check bool "negative delta clamped" true
    (abs_float (M.timing "time.t" -. 0.75) < 1e-9)

let test_time_wraps_exceptions () =
  M.reset ();
  let r = M.time "time.ok" (fun () -> 42) in
  check int "result passes through" 42 r;
  check bool "duration recorded" true (M.timing "time.ok" >= 0.0);
  (match M.time "time.raise" (fun () -> failwith "boom") with
   | _ -> Alcotest.fail "expected Failure"
   | exception Failure _ -> ());
  (* The timer must have charged the failed run too. *)
  check bool "timer exists after raise" true
    (List.mem_assoc "time.raise" (M.snapshot ()).M.timings)

let test_snapshot_isolation () =
  M.reset ();
  M.incr "t.snap";
  let s = M.snapshot () in
  check int "snapshot sees 1" 1 (List.assoc "t.snap" s.M.counters);
  (* Later bumps must not leak into the already-taken snapshot. *)
  M.incr ~by:10 "t.snap";
  check int "snapshot unchanged" 1 (List.assoc "t.snap" s.M.counters);
  check int "registry moved on" 11 (M.count "t.snap")

let test_snapshot_sorted () =
  M.reset ();
  M.incr "t.zz";
  M.incr "t.aa";
  M.incr "t.mm";
  let keys = List.map fst (M.snapshot ()).M.counters in
  check (Alcotest.list Alcotest.string) "sorted by key"
    [ "t.aa"; "t.mm"; "t.zz" ] keys

let test_reset () =
  M.reset ();
  M.incr "t.gone";
  M.add_time "time.gone" 1.0;
  M.reset ();
  check int "counter cleared" 0 (M.count "t.gone");
  check bool "timer cleared" true (M.timing "time.gone" = 0.0);
  let s = M.snapshot () in
  check int "no counters" 0 (List.length s.M.counters);
  check int "no timings" 0 (List.length s.M.timings)

let test_gauge_basics () =
  M.reset ();
  check int "unset gauge is 0" 0 (M.gauge "g.never");
  M.set_gauge "g.level" 7;
  check int "set" 7 (M.gauge "g.level");
  M.set_gauge "g.level" 3;
  check int "last write wins (can go down)" 3 (M.gauge "g.level");
  check int "snapshot carries it" 3
    (List.assoc "g.level" (M.snapshot ()).M.gauges);
  M.reset ();
  check int "reset clears gauges" 0 (M.gauge "g.level")

let test_to_json () =
  M.reset ();
  M.incr ~by:3 "t.j";
  M.set_gauge "g.j" 9;
  M.add_time "time.j" 0.125;
  let j = M.to_json (M.snapshot ()) in
  let has needle =
    let n = String.length needle and m = String.length j in
    let rec go i = i + n <= m && (String.sub j i n = needle || go (i + 1)) in
    go 0
  in
  check bool "counters object" true (has "\"counters\"");
  check bool "gauges object" true (has "\"gauges\"");
  check bool "timings object" true (has "\"timings_s\"");
  check bool "counter value" true (has "\"t.j\":3");
  check bool "gauge value" true (has "\"g.j\":9");
  check bool "timer key" true (has "\"time.j\"")

let test_to_json_stable_order () =
  (* The service embeds this rendering verbatim in responses, so it must
     be byte-stable: keys sorted, fixed layout. Assert the exact
     string, not just key presence. *)
  M.reset ();
  M.incr ~by:2 "t.zz";
  M.incr "t.aa";
  M.set_gauge "g.x" 4;
  M.add_time "time.x" 0.5;
  check Alcotest.string "exact serialized form"
    {|{"counters":{"t.aa":1,"t.zz":2},"gauges":{"g.x":4},"timings_s":{"time.x":0.500000}}|}
    (M.to_json (M.snapshot ()));
  (* Insertion order must not leak: bumping in the other order renders
     the same bytes. *)
  M.reset ();
  M.add_time "time.x" 0.5;
  M.set_gauge "g.x" 4;
  M.incr ~by:2 "t.zz";
  M.incr "t.aa";
  check Alcotest.string "independent of insertion order"
    {|{"counters":{"t.aa":1,"t.zz":2},"gauges":{"g.x":4},"timings_s":{"time.x":0.500000}}|}
    (M.to_json (M.snapshot ()))

let test_declare () =
  M.reset ();
  M.declare "d.count";
  M.declare_gauge "d.level";
  check int "declared counter starts at zero" 0 (M.count "d.count");
  check int "declared gauge starts at zero" 0 (M.gauge "d.level");
  (* The point of declaring: "never happened" is visible in snapshots,
     distinguishable from "not wired". *)
  let s = M.snapshot () in
  check bool "zero counter present in snapshot" true
    (List.mem_assoc "d.count" s.M.counters);
  check bool "zero gauge present in snapshot" true
    (List.mem_assoc "d.level" s.M.gauges);
  M.incr ~by:4 "d.count";
  M.declare "d.count";
  check int "re-declaring never resets a counter" 4 (M.count "d.count");
  M.set_gauge "d.level" 2;
  M.declare_gauge "d.level";
  check int "re-declaring never resets a gauge" 2 (M.gauge "d.level")

(* Declared-at-zero keys take part in the byte-stable rendering the
   service embeds in responses — pin the exact serialized form. *)
let test_to_json_declared_pinned () =
  M.reset ();
  M.declare "t.never";
  M.incr "t.aa";
  M.declare_gauge "g.idle";
  M.set_gauge "g.x" 4;
  M.add_time "time.x" 0.5;
  check Alcotest.string "declared keys serialize byte-stably"
    {|{"counters":{"t.aa":1,"t.never":0},"gauges":{"g.idle":0,"g.x":4},"timings_s":{"time.x":0.500000}}|}
    (M.to_json (M.snapshot ()))

let () =
  Alcotest.run "metrics"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "gauges" `Quick test_gauge_basics;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "timers",
        [
          Alcotest.test_case "basics" `Quick test_timer_basics;
          Alcotest.test_case "time wraps exceptions" `Quick
            test_time_wraps_exceptions;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "sorted" `Quick test_snapshot_sorted;
          Alcotest.test_case "json" `Quick test_to_json;
          Alcotest.test_case "declare materializes at zero" `Quick
            test_declare;
          Alcotest.test_case "declared keys pinned in json" `Quick
            test_to_json_declared_pinned;
          Alcotest.test_case "json stable order" `Quick
            test_to_json_stable_order;
        ] );
    ]
