(* The large-circuit generator corpus (lib/benchmarks/large.ml):
   declared widths, QASM-3 round-trip fixpoints up to 1000 qubits (via
   both the materializing parser and the streaming fold), seed
   determinism, and a wall ceiling on DAG-backed analysis at full
   scale. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

module C = Quantum.Circuit
module L = Benchmarks.Large

(* ---- declared widths and gate counts ---- *)

let test_declared_widths () =
  (* full_use: the block/vertex generators touch every declared wire;
     the fuzz generator only promises the declared register width. *)
  let cases =
    [
      ("qaoa-powerlaw", L.qaoa_powerlaw ~seed:107 100, 100, true);
      ("cuccaro", L.cuccaro_farm 64, 64, true);
      ("qft-layered", L.qft_layered 100, 100, true);
      ("rand-dyn", L.rand_dyn ~seed:111 100, 100, false);
    ]
  in
  List.iter
    (fun (name, c, n, full_use) ->
      check int (name ^ ": qubits") n c.C.num_qubits;
      check bool (name ^ ": has gates") true (C.gate_count c > 0);
      if full_use then
        check bool
          (name ^ ": every wire used")
          true
          (List.length (C.active_qubits c) = n))
    cases

let test_rand_dyn_gate_range () =
  let n = 100 in
  let c = L.rand_dyn ~seed:111 n in
  check bool "gate count within the opened knobs" true
    (C.gate_count c >= 3 * n && C.gate_count c <= 4 * n)

let test_registered_names_resolve () =
  List.iter
    (fun name ->
      match L.find_opt name with
      | Some g ->
        let c = g.L.build () in
        (* The registered name's numeric suffix is the declared width. *)
        let suffix =
          match String.rindex_opt name '-' with
          | Some i ->
            int_of_string (String.sub name (i + 1) (String.length name - i - 1))
          | None -> -1
        in
        check int (name ^ ": suffix is width") suffix c.C.num_qubits;
        (* And the shared registry resolves the same entry. *)
        let e = Benchmarks.Suite.find name in
        check bool
          (name ^ ": suite resolves to the same circuit")
          true
          (C.digest e.Benchmarks.Suite.circuit = C.digest c)
      | None -> Alcotest.fail ("unregistered large benchmark " ^ name))
    (L.names ())

(* ---- QASM-3 round-trip fixpoint at 100/500/1000 qubits ---- *)

(* The emitter prints rotation angles at 6 decimals, so a first trip
   through text may round an angle's low bits; after that first trip
   the representation is stable. The fixpoint property is therefore
   textual — re-emitting the parsed circuit reproduces the text byte
   for byte — plus full shape preservation on the first trip. Families
   whose angles survive 6 decimals exactly (or that have none) also
   keep the bit-exact digest. *)
let roundtrip ?(exact = true) name c =
  let text = Quantum.Qasm.to_string c in
  let c' = Quantum.Qasm_parser.of_string text in
  check bool
    (name ^ ": emission is a fixpoint")
    true
    (Quantum.Qasm.to_string c' = text);
  check int (name ^ ": qubits") c.C.num_qubits c'.C.num_qubits;
  check int (name ^ ": clbits") c.C.num_clbits c'.C.num_clbits;
  check int (name ^ ": depth") (C.depth c) (C.depth c');
  check int
    (name ^ ": mid-circuit measurements")
    (C.mid_circuit_measurements c)
    (C.mid_circuit_measurements c');
  if exact then
    check bool (name ^ ": bit-exact digest") true (C.digest c = C.digest c');
  (* The streaming fold sees exactly the same stream of gates and the
     same declared widths, without building a circuit. *)
  match
    Quantum.Qasm_parser.fold_gates text ~init:0 ~gate:(fun n _ -> n + 1)
  with
  | Ok (gates, nq, nc) ->
    check int (name ^ ": fold gate count") (C.gate_count c) gates;
    check int (name ^ ": fold qubits") c.C.num_qubits nq;
    check int (name ^ ": fold clbits") c.C.num_clbits nc
  | Error e ->
    Alcotest.fail (name ^ ": fold_gates failed: " ^ e.Guard.Error.detail)

let test_roundtrip_100 () =
  roundtrip "qaoa-powerlaw-100" (L.qaoa_powerlaw ~seed:107 100);
  roundtrip "cuccaro-128" (L.cuccaro_farm 128);
  roundtrip ~exact:false "qft-layered-100" (L.qft_layered 100);
  roundtrip ~exact:false "rand-dyn-100" (L.rand_dyn ~seed:111 100)

let test_roundtrip_500 () =
  roundtrip "qaoa-powerlaw-500" (L.qaoa_powerlaw ~seed:507 500);
  roundtrip ~exact:false "qft-layered-500" (L.qft_layered 500);
  roundtrip "cuccaro-512" (L.cuccaro_farm 512)

let test_roundtrip_1000 () =
  roundtrip "qaoa-powerlaw-1000" (L.qaoa_powerlaw ~seed:1007 1000);
  roundtrip ~exact:false "qft-layered-1000" (L.qft_layered 1000);
  roundtrip ~exact:false "rand-dyn-1000" (L.rand_dyn ~seed:1011 1000)

(* ---- seed determinism ---- *)

let test_seed_determinism () =
  check bool "qaoa: same seed, same circuit" true
    (C.digest (L.qaoa_powerlaw ~seed:7 100)
    = C.digest (L.qaoa_powerlaw ~seed:7 100));
  check bool "qaoa: different seed, different circuit" true
    (C.digest (L.qaoa_powerlaw ~seed:7 100)
    <> C.digest (L.qaoa_powerlaw ~seed:8 100));
  check bool "rand-dyn: same seed, same circuit" true
    (C.digest (L.rand_dyn ~seed:7 100) = C.digest (L.rand_dyn ~seed:7 100));
  check bool "rand-dyn: different seed, different circuit" true
    (C.digest (L.rand_dyn ~seed:7 100) <> C.digest (L.rand_dyn ~seed:8 100));
  check bool "registry is byte-stable" true
    (List.for_all2
       (fun (a : Benchmarks.Large.gen) (b : Benchmarks.Large.gen) ->
         C.digest (a.L.build ()) = C.digest (b.L.build ()))
       (L.generators ()) (L.generators ()))

(* ---- DAG-backed analysis stays within a wall ceiling at 1000q ---- *)

let test_analysis_within_budget () =
  (* Reuse analysis builds the gate DAG and the reachability closure;
     at 1000 qubits it must finish comfortably inside a 10 s deadline
     (measured ~10 ms per analysis at 250 qubits; the ceiling is a
     regression tripwire, not a tight bound). *)
  let c = L.qaoa_powerlaw ~seed:1007 1000 in
  let analysis =
    Guard.Budget.scoped
      (Guard.Budget.make ~ms:10_000 ())
      (fun () -> Caqr.Reuse.analyze c)
  in
  check bool "analysis sees reuse candidates" true
    (Caqr.Reuse.valid_pairs analysis <> [])

(* ---- generator argument validation ---- *)

let test_invalid_sizes_rejected () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check bool "cuccaro width must divide by 32" true
    (raises (fun () -> L.cuccaro_farm 100));
  check bool "qft width must divide by 10" true
    (raises (fun () -> L.qft_layered 99));
  check bool "qaoa needs >= 3 qubits" true
    (raises (fun () -> L.qaoa_powerlaw ~seed:1 2))

let () =
  Alcotest.run "large-gen"
    [
      ( "shape",
        [
          Alcotest.test_case "declared widths" `Quick test_declared_widths;
          Alcotest.test_case "rand-dyn gate range" `Quick
            test_rand_dyn_gate_range;
          Alcotest.test_case "registered names resolve" `Quick
            test_registered_names_resolve;
          Alcotest.test_case "invalid sizes rejected" `Quick
            test_invalid_sizes_rejected;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "100 qubits" `Quick test_roundtrip_100;
          Alcotest.test_case "500 qubits" `Quick test_roundtrip_500;
          Alcotest.test_case "1000 qubits" `Slow test_roundtrip_1000;
        ] );
      ( "determinism",
        [ Alcotest.test_case "fixed seeds" `Quick test_seed_determinism ] );
      ( "budget",
        [
          Alcotest.test_case "1000q analysis under a wall ceiling" `Slow
            test_analysis_within_budget;
        ] );
    ]
