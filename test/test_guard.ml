(* The resilience layer: structured errors, cooperative budgets, fault
   injection, the pool retry, the degradation ladder — and the chaos
   matrix that sweeps every registered site across real benchmarks. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let entry name = Benchmarks.Suite.find name

let input_of name =
  let e = entry name in
  match e.Benchmarks.Suite.kind with
  | Benchmarks.Suite.Regular -> Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit
  | Benchmarks.Suite.Commutable g -> Caqr.Pipeline.Commutable g

let device_of name =
  let e = entry name in
  Hardware.Device.heavy_hex_for
    e.Benchmarks.Suite.circuit.Quantum.Circuit.num_qubits

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- Guard.Error ---- *)

let test_error_of_exn () =
  let e = Guard.Error.of_exn ~stage:"s" (Failure "boom") in
  check string "failure detail" "boom" e.Guard.Error.detail;
  check string "default site" "exn" e.Guard.Error.site;
  let orig = Guard.Error.v ~stage:"a" ~site:"b" "kept" in
  let through =
    Guard.Error.of_exn ~stage:"other" (Guard.Error.Guard_error orig)
  in
  check string "guard errors pass through" "a" through.Guard.Error.stage

let test_protect_converts () =
  (match Guard.Error.protect ~stage:"s" (fun () -> invalid_arg "nope") with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error e ->
    check bool "detail mentions message" true
      (contains e.Guard.Error.detail "nope"));
  check (Alcotest.result int Alcotest.reject) "ok passes through" (Ok 7)
    (match Guard.Error.protect ~stage:"s" (fun () -> 7) with
     | Ok v -> Ok v
     | Error _ -> Alcotest.fail "unexpected error")

let test_protect_reraises_control () =
  Alcotest.check_raises "Exit is never converted" Exit (fun () ->
      ignore (Guard.Error.protect ~stage:"s" (fun () -> raise Exit)))

(* ---- Guard.Budget ---- *)

let expect_budget_trip name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Budget_exceeded" name
  | exception Guard.Error.Budget_exceeded e -> e

let test_ticker_step_limit () =
  let tick = Guard.Budget.ticker ~stage:"t" ~site:"s" ~limit:3 () in
  tick ();
  tick ();
  tick ();
  let e = expect_budget_trip "4th tick" (fun () -> tick ()) in
  check bool "limit named" true
    (contains e.Guard.Error.detail "limit 3")

let test_deadline_trips_matching () =
  let g = Galg.Graph.create 6 in
  List.iter (fun (u, v) -> Galg.Graph.add_edge g u v)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ];
  let e =
    expect_budget_trip "blossom under 0ms deadline" (fun () ->
        Guard.Budget.with_deadline ~ms:0 (fun () -> Galg.Matching.blossom g))
  in
  check string "site" "match.augment" e.Guard.Error.site

let test_deadline_trips_router () =
  let e = entry "Multiply_13" in
  let device = device_of "Multiply_13" in
  let err =
    expect_budget_trip "router under 0ms deadline" (fun () ->
        Guard.Budget.with_deadline ~ms:0 (fun () ->
            Transpiler.Transpile.run device e.Benchmarks.Suite.circuit))
  in
  check string "site" "route.swap" err.Guard.Error.site

let test_deadline_trips_sim () =
  let module B = Quantum.Circuit.Builder in
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 0 0;
  B.measure b 1 1;
  let c = B.build b in
  let err =
    expect_budget_trip "executor under 0ms deadline" (fun () ->
        Guard.Budget.with_deadline ~ms:0 (fun () ->
            Sim.Executor.run ~jobs:1 ~seed:1 ~shots:16 c))
  in
  check string "site" "sim.shot" err.Guard.Error.site

let test_deadline_restored () =
  check bool "disarmed before" false (Guard.Budget.has_deadline ());
  (try
     Guard.Budget.with_deadline ~ms:0 (fun () ->
         check bool "armed inside" true (Guard.Budget.has_deadline ());
         Guard.Budget.checkpoint ~stage:"t" ~site:"s")
   with Guard.Error.Budget_exceeded _ -> ());
  check bool "disarmed after" false (Guard.Budget.has_deadline ())

(* ---- Guard.Budget: scoped (domain-local) budgets ---- *)

(* A budget that has deterministically expired: checkpoints compare with
   strict [>], so let the clock tick past the 0 ms deadline. *)
let expired_budget () =
  let b = Guard.Budget.make ~ms:0 () in
  Unix.sleepf 0.002;
  b

let test_scoped_trips_and_restores () =
  check bool "disarmed before" false (Guard.Budget.has_deadline ());
  let e =
    expect_budget_trip "expired scoped budget" (fun () ->
        Guard.Budget.scoped (expired_budget ()) (fun () ->
            check bool "armed inside" true (Guard.Budget.has_deadline ());
            Guard.Budget.checkpoint ~stage:"t" ~site:"scoped.site"))
  in
  check string "site" "scoped.site" e.Guard.Error.site;
  check bool "disarmed after, exception path included" false
    (Guard.Budget.has_deadline ())

let test_scoped_unlimited_noop () =
  Guard.Budget.scoped Guard.Budget.unlimited (fun () ->
      check bool "unlimited arms nothing" false (Guard.Budget.has_deadline ());
      Guard.Budget.checkpoint ~stage:"t" ~site:"s")

let test_scoped_nesting_tightens () =
  (* An inner scope can only tighten: installing [unlimited] inside an
     expired budget must not lift the outer deadline. *)
  ignore
    (expect_budget_trip "inner unlimited keeps outer deadline" (fun () ->
         Guard.Budget.scoped (expired_budget ()) (fun () ->
             Guard.Budget.scoped Guard.Budget.unlimited (fun () ->
                 Guard.Budget.checkpoint ~stage:"t" ~site:"nested"))))

let test_scoped_domain_isolation () =
  (* The whole point of scoped budgets: another domain (another request,
     in the service) never sees this domain's deadline. *)
  Guard.Budget.scoped (Guard.Budget.make ~ms:0 ()) (fun () ->
      check bool "armed in this domain" true (Guard.Budget.has_deadline ());
      let other = Domain.spawn (fun () -> Guard.Budget.has_deadline ()) in
      check bool "other domain unaffected" false (Domain.join other))

let test_scoped_current_carries () =
  (* current () captures the effective deadline as a value that can be
     re-installed in a different domain — the Exec.Pool handoff. *)
  Guard.Budget.scoped (expired_budget ()) (fun () ->
      let b = Guard.Budget.current () in
      let tripped =
        Domain.spawn (fun () ->
            Guard.Budget.scoped b (fun () ->
                match Guard.Budget.checkpoint ~stage:"t" ~site:"carried" with
                | () -> false
                | exception Guard.Error.Budget_exceeded _ -> true))
      in
      check bool "captured budget trips in another domain" true
        (Domain.join tripped))

let test_scoped_pool_propagation () =
  let e =
    expect_budget_trip "pool workers inherit the caller's scope" (fun () ->
        Guard.Budget.scoped (expired_budget ()) (fun () ->
            Exec.Pool.map ~jobs:2
              (fun i ->
                Guard.Budget.checkpoint ~stage:"t" ~site:"pool.worker";
                i)
              [ 1; 2; 3 ]))
  in
  (* The pool names the first failing task in submission order. *)
  check bool "failure names task 0" true (contains e.Guard.Error.detail "task 0:")

(* ---- Sim.State cap ---- *)

let test_sim_qubit_cap () =
  (match Sim.State.make 40 with
  | Ok _ -> Alcotest.fail "40 qubits must be refused"
  | Error e ->
    check string "stage" "sim.state" e.Guard.Error.stage;
    check bool "cap named" true (contains e.Guard.Error.detail "cap"));
  (match Sim.State.make (-1) with
  | Ok _ -> Alcotest.fail "negative width must be refused"
  | Error _ -> ());
  (match Sim.State.make 2 with
  | Ok st -> check int "2 qubits allocate" 2 (Sim.State.num_qubits st)
  | Error _ -> Alcotest.fail "2 qubits must fit");
  Sim.State.set_max_qubits 3;
  Fun.protect ~finally:(fun () -> Sim.State.set_max_qubits 24) @@ fun () ->
  check int "cap readable" 3 (Sim.State.max_qubits ());
  (match Sim.State.make 4 with
  | Ok _ -> Alcotest.fail "4 qubits must exceed the lowered cap"
  | Error _ -> ());
  Alcotest.check_raises "init raises the legacy exception"
    (Invalid_argument "State.init: unsupported width") (fun () ->
      ignore (Sim.State.init 4))

(* ---- Guard.Inject ---- *)

let test_inject_unknown_site () =
  Alcotest.check_raises "unknown site"
    (Invalid_argument "Guard.Inject.arm: unknown site \"no.such.site\"")
    (fun () -> Guard.Inject.arm "no.such.site")

let test_inject_single_shot () =
  Guard.Inject.arm ~at_hit:2 "route.swap";
  Fun.protect ~finally:Guard.Inject.disarm @@ fun () ->
  check (Alcotest.option string) "armed" (Some "route.swap")
    (Guard.Inject.armed ());
  Guard.Inject.hit "sr.place" (* other sites pass *);
  Guard.Inject.hit "route.swap" (* hit 1 of 2: passes *);
  check int "not fired yet" 0 (Guard.Inject.fired ());
  (match Guard.Inject.hit "route.swap" with
  | () -> Alcotest.fail "hit 2 must fire"
  | exception Guard.Error.Guard_error e ->
    check string "site" "route.swap" e.Guard.Error.site;
    check bool "non-transient site not recoverable" false
      e.Guard.Error.recoverable);
  check int "fired once" 1 (Guard.Inject.fired ());
  Guard.Inject.hit "route.swap" (* spent: passes again *);
  check int "still once" 1 (Guard.Inject.fired ())

let test_inject_catalog_shape () =
  let sites = Guard.Inject.sites in
  check bool "at least 8 sites" true (List.length sites >= 8);
  let libs =
    List.sort_uniq compare
      (List.map (fun s -> s.Guard.Inject.lib) sites)
  in
  check bool "spans at least 5 libraries" true (List.length libs >= 5);
  check int "names unique"
    (List.length sites)
    (List.length
       (List.sort_uniq compare
          (List.map (fun s -> s.Guard.Inject.name) sites)))

(* ---- degradation ladder ---- *)

let test_ladder_demotes () =
  let device = device_of "XOR_5" in
  let input = input_of "XOR_5" in
  Guard.Inject.arm "sr.place";
  Fun.protect ~finally:Guard.Inject.disarm @@ fun () ->
  let r =
    Caqr.Pipeline.compile
      ~options:{ Caqr.Pipeline.default with Caqr.Pipeline.fallback = true }
      device Caqr.Pipeline.Sr input
  in
  check bool "not compiled by Sr" true
    (r.Caqr.Pipeline.strategy <> Caqr.Pipeline.Sr);
  check int "one demotion recorded" 1 (List.length r.Caqr.Pipeline.degraded);
  let d = List.hd r.Caqr.Pipeline.degraded in
  check bool "failed rung is Sr" true
    (d.Caqr.Pipeline.from_strategy = Caqr.Pipeline.Sr);
  check string "error site" "sr.place" d.Caqr.Pipeline.error.Guard.Error.site

let test_ladder_off_by_default () =
  let device = device_of "XOR_5" in
  let input = input_of "XOR_5" in
  Guard.Inject.arm "sr.place";
  Fun.protect ~finally:Guard.Inject.disarm @@ fun () ->
  match Caqr.Pipeline.compile device Caqr.Pipeline.Sr input with
  | _ -> Alcotest.fail "without fallback the failure must propagate"
  | exception Guard.Error.Guard_error e ->
    check string "raw structured error" "sr.place" e.Guard.Error.site

let test_no_faults_no_degradation () =
  let device = device_of "XOR_5" in
  let input = input_of "XOR_5" in
  let strict = Caqr.Pipeline.compile device Caqr.Pipeline.Sr input in
  let supervised =
    Caqr.Pipeline.compile
      ~options:{ Caqr.Pipeline.default with Caqr.Pipeline.fallback = true }
      device Caqr.Pipeline.Sr input
  in
  check int "no demotions" 0 (List.length supervised.Caqr.Pipeline.degraded);
  check bool "fallback changes nothing when healthy" true
    (Quantum.Qasm.to_string supervised.Caqr.Pipeline.physical
    = Quantum.Qasm.to_string strict.Caqr.Pipeline.physical)

(* A wall-clock trip inside the reuse engine is NOT a ladder event: the
   engine commits its incumbent and returns it tagged Anytime, so the
   compile succeeds on the original rung with zero demotions — the
   ladder only demotes on hard errors. cuccaro-128 needs several
   seconds of search to run exact, so the 2 s deadline always trips the
   engine phase while leaving routing ample headroom. *)
let test_budget_trip_with_incumbent_is_not_demotion () =
  Obs.Metrics.reset ();
  let device = device_of "cuccaro-128" in
  let input = input_of "cuccaro-128" in
  let r =
    Guard.Budget.scoped
      (Guard.Budget.make ~ms:2000 ())
      (fun () ->
        Caqr.Pipeline.compile
          ~options:{ Caqr.Pipeline.default with Caqr.Pipeline.fallback = true }
          device Caqr.Pipeline.Qs_max_reuse input)
  in
  check bool "anytime quality" false
    (Caqr.Quality.is_exact r.Caqr.Pipeline.quality);
  check bool "still the original rung" true
    (r.Caqr.Pipeline.strategy = Caqr.Pipeline.Qs_max_reuse);
  check int "zero demotions in the report" 0
    (List.length r.Caqr.Pipeline.degraded);
  check int "guard.ladder.demotions untouched" 0
    (Obs.Metrics.count "guard.ladder.demotions");
  check bool "qs.anytime.returns bumped" true
    (Obs.Metrics.count "qs.anytime.returns" >= 1);
  check bool "incumbent beats the baseline width" true
    (r.Caqr.Pipeline.reuse_pairs > 0)

(* ---- parser diagnostics ---- *)

let expect_parse_error name text =
  match Quantum.Qasm_parser.parse text with
  | Ok _ -> Alcotest.failf "%s: expected a parse error" name
  | Error e -> e.Guard.Error.detail

let test_parser_diagnostics () =
  let d =
    expect_parse_error "unknown gate" "qubit[2] q;\nwibble q[0];\n"
  in
  check bool "line 2 col 1" true (contains d "line 2, col 1");
  check bool "gate named" true (contains d "wibble");
  let d =
    expect_parse_error "bad index" "qubit[2] q;\nh q[x];\n"
  in
  check bool "bad index located" true (contains d "line 2");
  let d =
    expect_parse_error "truncated measure" "qubit[1] q;\nbit[1] c;\nmeasure q[0];\n"
  in
  check bool "measure arrow diagnostic" true (contains d "line 3");
  let d =
    expect_parse_error "bad declaration" "qubit[oops] q;\n"
  in
  check bool "declaration located" true (contains d "line 1, col 1");
  (* the column points at the statement, not the line start *)
  let d = expect_parse_error "indented" "qubit[2] q;\n   wibble q[0];\n" in
  check bool "col 4 for indented stmt" true (contains d "line 2, col 4")

let test_parser_ok_roundtrip () =
  match Quantum.Qasm_parser.parse "qubit[2] q;\nbit[2] c;\nh q[0];\ncx q[0], q[1];\nc[0] = measure q[0];\n" with
  | Error e -> Alcotest.failf "unexpected error: %s" (Guard.Error.to_string e)
  | Ok c ->
    check int "qubits" 2 c.Quantum.Circuit.num_qubits;
    check int "gates" 3 (Array.length c.Quantum.Circuit.gates)

(* ---- chaos matrix ---- *)

let chaos_benches () =
  (* The wire.* sites live in Serve.Transport, above fuzz in the link
     order; without the probe installed, the "every site fired" check
     below would rightfully fail on them. *)
  Wirefuzz.install_chaos_probe ();
  [ ("XOR_5", input_of "XOR_5"); ("QAOA5-0.3", input_of "QAOA5-0.3") ]

let test_chaos_contained () =
  let cells = Fuzz.Chaos.run ~seed:1 (chaos_benches ()) in
  check int "full matrix"
    (2 * List.length Guard.Inject.sites)
    (List.length cells);
  List.iter
    (fun (c : Fuzz.Chaos.cell) ->
      match c.Fuzz.Chaos.outcome with
      | Fuzz.Chaos.Uncontained why ->
        Alcotest.failf "site %s escaped on %s: %s"
          c.Fuzz.Chaos.site.Guard.Inject.name c.Fuzz.Chaos.bench why
      | Fuzz.Chaos.Verify_failed why ->
        Alcotest.failf "site %s let a refuted artifact through on %s: %s"
          c.Fuzz.Chaos.site.Guard.Inject.name c.Fuzz.Chaos.bench why
      | _ -> ())
    cells;
  check bool "all contained" true (Fuzz.Chaos.all_contained cells);
  (* the two benches together must reach every registered site *)
  check int "every site fired"
    (List.length Guard.Inject.sites)
    (List.length (Fuzz.Chaos.sites_fired cells))

let test_chaos_deterministic () =
  let render cells = Format.asprintf "%a" Fuzz.Chaos.pp_matrix cells in
  let a = render (Fuzz.Chaos.run ~seed:1 (chaos_benches ())) in
  let b = render (Fuzz.Chaos.run ~seed:1 (chaos_benches ())) in
  check string "same seed, same matrix" a b

(* ---- Guard.Gate: bounded-concurrency admission ---- *)

let test_gate_limit () =
  let g = Guard.Gate.create ~limit:2 () in
  check int "configured limit" 2 (Guard.Gate.limit g);
  check bool "first slot" true (Guard.Gate.try_enter g);
  check bool "second slot" true (Guard.Gate.try_enter g);
  check int "both inflight" 2 (Guard.Gate.inflight g);
  check bool "third rejected, not blocked" false (Guard.Gate.try_enter g);
  Guard.Gate.leave g;
  check bool "released slot re-admits" true (Guard.Gate.try_enter g);
  Guard.Gate.leave g;
  Guard.Gate.leave g;
  check int "drained" 0 (Guard.Gate.inflight g)

let test_gate_unlimited () =
  let g = Guard.Gate.create ~limit:0 () in
  let ok = List.init 100 (fun _ -> Guard.Gate.try_enter g) in
  check bool "limit 0 always admits" true (List.for_all Fun.id ok);
  check int "occupancy still counted" 100 (Guard.Gate.inflight g)

let test_gate_with_slot () =
  let g = Guard.Gate.create ~limit:1 () in
  (match Guard.Gate.with_slot g (fun () -> Guard.Gate.inflight g) with
  | Some n -> check int "slot held inside" 1 n
  | None -> Alcotest.fail "empty gate must admit");
  check int "slot released on exit" 0 (Guard.Gate.inflight g);
  (* ... including the exceptional exit. *)
  (try
     ignore (Guard.Gate.with_slot g (fun () -> failwith "boom"));
     Alcotest.fail "exception must propagate"
   with Failure _ -> ());
  check int "slot released on exception" 0 (Guard.Gate.inflight g);
  check bool "full gate answers None" true
    (Guard.Gate.try_enter g
    && Guard.Gate.with_slot g (fun () -> ()) = None)

let test_gate_rejection_metric () =
  let g = Guard.Gate.create ~reject_metric:"test.gate.reject" ~limit:1 () in
  ignore (Guard.Gate.try_enter g);
  ignore (Guard.Gate.try_enter g);
  ignore (Guard.Gate.try_enter g);
  let s = Obs.Metrics.snapshot () in
  check bool "each rejection counted" true
    (List.exists
       (fun (k, v) -> k = "test.gate.reject" && v >= 2)
       s.Obs.Metrics.counters)

let () =
  Alcotest.run "guard"
    [
      ( "error",
        [
          Alcotest.test_case "of_exn" `Quick test_error_of_exn;
          Alcotest.test_case "protect converts" `Quick test_protect_converts;
          Alcotest.test_case "protect re-raises control" `Quick
            test_protect_reraises_control;
        ] );
      ( "budget",
        [
          Alcotest.test_case "ticker step limit" `Quick test_ticker_step_limit;
          Alcotest.test_case "deadline trips matching" `Quick
            test_deadline_trips_matching;
          Alcotest.test_case "deadline trips router" `Quick
            test_deadline_trips_router;
          Alcotest.test_case "deadline trips sim" `Quick
            test_deadline_trips_sim;
          Alcotest.test_case "deadline restored" `Quick test_deadline_restored;
          Alcotest.test_case "sim qubit cap" `Quick test_sim_qubit_cap;
        ] );
      ( "scoped-budget",
        [
          Alcotest.test_case "trips and restores" `Quick
            test_scoped_trips_and_restores;
          Alcotest.test_case "unlimited is a no-op" `Quick
            test_scoped_unlimited_noop;
          Alcotest.test_case "nesting tightens" `Quick
            test_scoped_nesting_tightens;
          Alcotest.test_case "domain isolation" `Quick
            test_scoped_domain_isolation;
          Alcotest.test_case "current carries across domains" `Quick
            test_scoped_current_carries;
          Alcotest.test_case "pool propagation" `Quick
            test_scoped_pool_propagation;
        ] );
      ( "gate",
        [
          Alcotest.test_case "limit semantics" `Quick test_gate_limit;
          Alcotest.test_case "unlimited" `Quick test_gate_unlimited;
          Alcotest.test_case "with_slot" `Quick test_gate_with_slot;
          Alcotest.test_case "rejection metric" `Quick
            test_gate_rejection_metric;
        ] );
      ( "inject",
        [
          Alcotest.test_case "unknown site" `Quick test_inject_unknown_site;
          Alcotest.test_case "single shot" `Quick test_inject_single_shot;
          Alcotest.test_case "catalog shape" `Quick test_inject_catalog_shape;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "demotes on fault" `Quick test_ladder_demotes;
          Alcotest.test_case "off by default" `Quick test_ladder_off_by_default;
          Alcotest.test_case "no faults, no degradation" `Quick
            test_no_faults_no_degradation;
          Alcotest.test_case "anytime return is not a demotion" `Slow
            test_budget_trip_with_incumbent_is_not_demotion;
        ] );
      ( "parser",
        [
          Alcotest.test_case "diagnostics carry line+col" `Quick
            test_parser_diagnostics;
          Alcotest.test_case "ok roundtrip" `Quick test_parser_ok_roundtrip;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "matrix contained" `Slow test_chaos_contained;
          Alcotest.test_case "matrix deterministic" `Slow
            test_chaos_deterministic;
        ] );
    ]
