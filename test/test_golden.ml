(* Golden-file regression suite: every regular benchmark, compiled at a
   fixed seed with each pinned strategy, must emit QASM-3 byte-identical
   to the checked-in file under test/golden/.

   A mismatch prints a unified diff (and appends it to golden.diff next
   to the test binary, which CI uploads). Regenerate intentionally with

     GOLDEN_PROMOTE=1 dune runtest

   which rewrites the files in the source tree and passes. *)

let promote = Sys.getenv_opt "GOLDEN_PROMOTE" = Some "1"

(* Anchor every path to the binary's own directory
   (_build/default/test), not the cwd — dune runtest and dune exec start
   from different places. The build copy of golden/ sits next to the
   binary via (deps (source_tree golden)); promotion must write through
   to the source tree, so strip the "/_build/default" infix. *)
let test_dir = Filename.dirname Sys.executable_name

let find_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let source_test_dir =
  let marker = Filename.concat (Filename.concat "" "_build") "default" in
  (* "/_build/default" *)
  match find_sub ~sub:marker test_dir with
  | Some i ->
    String.sub test_dir 0 i
    ^ String.sub test_dir
        (i + String.length marker)
        (String.length test_dir - i - String.length marker)
  | None -> test_dir

let golden_dir = Filename.concat test_dir "golden"
let diff_log = Filename.concat test_dir "golden.diff"

let strategies =
  [
    ("baseline", Caqr.Pipeline.Baseline);
    ("qs-max-reuse", Caqr.Pipeline.Qs_max_reuse);
    ("sr", Caqr.Pipeline.Sr);
    ("cone", Caqr.Pipeline.Cone);
    ("gidnet", Caqr.Pipeline.Gidnet);
  ]

let compiled_qasm (e : Benchmarks.Suite.entry) strategy =
  let device =
    Hardware.Device.heavy_hex_for
      e.Benchmarks.Suite.circuit.Quantum.Circuit.num_qubits
  in
  let options = { Caqr.Pipeline.default with seed = 1 } in
  let r =
    Caqr.Pipeline.compile ~options device strategy
      (Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit)
  in
  Quantum.Qasm.to_string
    (fst (Quantum.Circuit.compact_qubits r.Caqr.Pipeline.physical))

(* ---- unified diff (single hunk over the whole file) ---- *)

let lines s = Array.of_list (String.split_on_char '\n' s)

let unified_diff ~golden ~actual =
  let a = lines golden and b = lines actual in
  let n = Array.length a and m = Array.length b in
  (* LCS length table; the files are a few hundred lines at most. *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if a.(i) = b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "--- golden\n+++ actual\n@@ -1,%d +1,%d @@\n" n m);
  let rec walk i j =
    if i < n && j < m && a.(i) = b.(j) then begin
      Buffer.add_string buf (" " ^ a.(i) ^ "\n");
      walk (i + 1) (j + 1)
    end
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then begin
      Buffer.add_string buf ("+" ^ b.(j) ^ "\n");
      walk i (j + 1)
    end
    else if i < n then begin
      Buffer.add_string buf ("-" ^ a.(i) ^ "\n");
      walk (i + 1) j
    end
  in
  walk 0 0;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let log_diff name diff =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 diff_log
  in
  output_string oc (Printf.sprintf "=== %s ===\n%s" name diff);
  close_out oc

let check_golden (e : Benchmarks.Suite.entry) (sname, strategy) () =
  let file = Printf.sprintf "%s.%s.qasm" e.Benchmarks.Suite.name sname in
  let actual = compiled_qasm e strategy in
  if promote then begin
    let dir = Filename.concat source_test_dir "golden" in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    write_file (Filename.concat dir file) actual
  end
  else begin
    let path = Filename.concat golden_dir file in
    if not (Sys.file_exists path) then
      Alcotest.fail
        (Printf.sprintf
           "missing golden file %s — run GOLDEN_PROMOTE=1 dune runtest to \
            create it"
           path)
    else begin
      let golden = read_file path in
      if golden <> actual then begin
        let diff = unified_diff ~golden ~actual in
        log_diff file diff;
        Printf.printf "golden mismatch for %s:\n%s%!" file diff;
        Alcotest.fail
          (Printf.sprintf
             "%s drifted from its golden baseline (unified diff above; \
              GOLDEN_PROMOTE=1 to accept)"
             file)
      end
    end
  end

(* Large-corpus slice: full strategy coverage at 100+ qubits would take
   minutes per case, but the baseline pass (no reuse search) is cheap
   and pins the generators plus the routing layer byte-for-byte. *)
let large_slice = [ "qaoa-powerlaw-100"; "cuccaro-64" ]
let large_strategies = [ ("baseline", Caqr.Pipeline.Baseline) ]

let () =
  let cases =
    List.concat_map
      (fun (e : Benchmarks.Suite.entry) ->
        List.map
          (fun s ->
            Alcotest.test_case
              (Printf.sprintf "%s/%s" e.Benchmarks.Suite.name (fst s))
              `Quick (check_golden e s))
          strategies)
      (Benchmarks.Suite.regular ())
  in
  let large_cases =
    List.concat_map
      (fun name ->
        let e = Benchmarks.Suite.find name in
        List.map
          (fun s ->
            Alcotest.test_case
              (Printf.sprintf "%s/%s" name (fst s))
              `Quick (check_golden e s))
          large_strategies)
      large_slice
  in
  Alcotest.run "golden"
    [ ("compiled-qasm", cases); ("compiled-qasm-large", large_cases) ]
