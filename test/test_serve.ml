(* The compilation service: JSON wire format, canonical circuit digests,
   option fingerprints, the two-tier content-addressed cache, the
   socket-free request handler, and one end-to-end exchange over a real
   Unix-domain socket. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* The [result] object is the cached unit; everything after its key is
   the byte-identity surface a cache hit must replay. *)
let result_part line =
  match find_sub line "\"result\":" with
  | Some i -> String.sub line i (String.length line - i)
  | None -> Alcotest.failf "no result object in %s" line

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "caqr-serve-%d-%s-%d" (Unix.getpid ()) tag !counter)
    in
    Unix.mkdir d 0o755;
    d

(* ---- Serve.Json ---- *)

module J = Serve.Json

let sample =
  J.Obj
    [
      ("id", J.Int 7);
      ("name", J.String "bv");
      ("ok", J.Bool true);
      ("none", J.Null);
      ("xs", J.List [ J.Int 1; J.Float 0.5; J.String "a\"b\\c\n" ]);
      ("nested", J.Obj [ ("z", J.Int 1); ("a", J.Int 2) ]);
    ]

let test_json_roundtrip () =
  let s = J.to_string sample in
  (match J.parse s with
  | Ok j -> check bool "parse(emit) is identity" true (j = sample)
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
  (* Field order is preserved verbatim, not sorted. *)
  check bool "object order preserved" true
    (contains s "{\"z\":1,\"a\":2}")

let test_json_numbers () =
  check bool "bare int parses as Int" true (J.parse "42" = Ok (J.Int 42));
  check bool "negative int" true (J.parse "-7" = Ok (J.Int (-7)));
  check bool "decimal parses as Float" true (J.parse "2.5" = Ok (J.Float 2.5));
  check bool "exponent parses as Float" true
    (J.parse "1e2" = Ok (J.Float 100.0));
  check string "non-finite floats emit null" "null" (J.to_string (J.Float nan));
  check string "infinite floats emit null" "null"
    (J.to_string (J.Float infinity))

let test_json_string_escapes () =
  check string "emitter escapes" "\"a\\\"b\\\\c\\n\\t\""
    (J.to_string (J.String "a\"b\\c\n\t"));
  check bool "control chars as \\u" true
    (J.to_string (J.String "\001") = "\"\\u0001\"");
  check bool "\\uXXXX decodes" true
    (J.parse "\"\\u0041\"" = Ok (J.String "A"));
  (* A surrogate pair must decode to one UTF-8 code point. *)
  check bool "surrogate pair decodes to UTF-8" true
    (J.parse "\"\\ud83d\\ude00\"" = Ok (J.String "\xf0\x9f\x98\x80"))

let test_json_errors () =
  let is_err = function Error _ -> true | Ok _ -> false in
  check bool "trailing garbage rejected" true (is_err (J.parse "1 2"));
  check bool "unterminated string rejected" true (is_err (J.parse "\"abc"));
  check bool "bad literal rejected" true (is_err (J.parse "nul"));
  check bool "lone surrogate rejected" true (is_err (J.parse "\"\\ud83d\""));
  check bool "unclosed object rejected" true (is_err (J.parse "{\"a\":1"));
  (match J.parse "[1,2" with
  | Error e -> check bool "error carries offset" true (contains e "offset")
  | Ok _ -> Alcotest.fail "expected parse error")

let test_json_accessors () =
  check bool "member hit" true (J.member "id" sample = Some (J.Int 7));
  check bool "member miss" true (J.member "zzz" sample = None);
  check bool "string_field" true (J.string_field "name" sample = Some "bv");
  check bool "int_field rejects strings" true (J.int_field "name" sample = None);
  check bool "bool_field" true (J.bool_field "ok" sample = Some true)

(* ---- Quantum.Circuit.digest ---- *)

let bell_kinds =
  Quantum.Gate.
    [ One_q (H, 0); Cx (0, 1); Measure (0, 0); Measure (1, 1) ]

let test_digest_invariance () =
  let via_kinds =
    Quantum.Circuit.of_kinds ~num_qubits:2 ~num_clbits:2 bell_kinds
  in
  let module B = Quantum.Circuit.Builder in
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 0 0;
  B.measure b 1 1;
  let via_builder = B.build b in
  check string "builder and of_kinds digest equal"
    (Quantum.Circuit.digest via_kinds)
    (Quantum.Circuit.digest via_builder);
  (* Round-tripping through the QASM-3 emission must not move the
     digest: it is an address for the circuit, not its spelling. *)
  match Quantum.Qasm_parser.parse (Quantum.Qasm.to_string via_kinds) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e.Guard.Error.detail
  | Ok back ->
    check string "digest survives QASM round-trip"
      (Quantum.Circuit.digest via_kinds)
      (Quantum.Circuit.digest back)

let test_digest_sensitivity () =
  let mk kinds = Quantum.Circuit.of_kinds ~num_qubits:2 ~num_clbits:2 kinds in
  let base = mk bell_kinds in
  let swapped =
    mk Quantum.Gate.[ Cx (0, 1); One_q (H, 0); Measure (0, 0); Measure (1, 1) ]
  in
  check bool "gate order matters" true
    (Quantum.Circuit.digest base <> Quantum.Circuit.digest swapped);
  let rz th = mk Quantum.Gate.[ One_q (Rz th, 0) ] in
  check bool "angles are bit-exact" true
    (Quantum.Circuit.digest (rz 0.1) <> Quantum.Circuit.digest (rz (0.1 +. 1e-12)));
  let wide = Quantum.Circuit.of_kinds ~num_qubits:3 ~num_clbits:2 bell_kinds in
  check bool "widths matter" true
    (Quantum.Circuit.digest base <> Quantum.Circuit.digest wide)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_dir =
  Filename.concat (Filename.dirname Sys.executable_name) "golden"

let test_digest_golden_distinct () =
  let files =
    Sys.readdir golden_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".qasm")
    |> List.sort compare
  in
  check bool "all golden artifacts present" true (List.length files >= 21);
  let digests =
    List.map
      (fun f ->
        match Quantum.Qasm_parser.parse (read_file (Filename.concat golden_dir f)) with
        | Ok c -> (f, Quantum.Circuit.digest c)
        | Error e -> Alcotest.failf "%s failed to parse: %s" f e.Guard.Error.detail)
      files
  in
  (* Every (benchmark, strategy) artifact is a different circuit; their
     content addresses must all differ or the cache would conflate
     compiled programs. *)
  List.iteri
    (fun i (fi, di) ->
      List.iteri
        (fun j (fj, dj) ->
          if i < j && di = dj then
            Alcotest.failf "digest collision between %s and %s" fi fj)
        digests)
    digests

(* ---- Caqr.Pipeline.options_fingerprint ---- *)

let test_fingerprint () =
  let fp = Caqr.Pipeline.options_fingerprint in
  let d = Caqr.Pipeline.default in
  check string "deterministic" (fp d) (fp d);
  let tighter =
    {
      d with
      Caqr.Pipeline.search =
        { d.Caqr.Pipeline.search with Caqr.Qs_caqr.budget = 17 };
    }
  in
  check bool "search budget is semantic" true (fp d <> fp tighter);
  check bool "verify level is semantic" true
    (fp d <> fp { d with Caqr.Pipeline.verify = Some Verify.Auto });
  check bool "fallback is semantic" true
    (fp d <> fp { d with Caqr.Pipeline.fallback = true });
  (* Execution policy must not fragment the cache: the report is
     byte-identical for every jobs value, and degraded (deadline-shaped)
     reports are never cached in the first place. *)
  check string "jobs is not semantic" (fp d)
    (fp { d with Caqr.Pipeline.jobs = 8 });
  check string "collect_metrics is not semantic" (fp d)
    (fp { d with Caqr.Pipeline.collect_metrics = true });
  check string "deadline_ms is not semantic" (fp d)
    (fp { d with Caqr.Pipeline.deadline_ms = Some 5 })

(* ---- Serve.Protocol ---- *)

let test_protocol_defaults () =
  match Serve.Protocol.of_line {|{"op":"compile","bench":"BV_10"}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok r ->
    check bool "op" true (r.Serve.Protocol.op = Serve.Protocol.Compile);
    check bool "bench" true (r.Serve.Protocol.bench = Some "BV_10");
    check bool "id defaults to null" true (r.Serve.Protocol.id = J.Null);
    check bool "strategy defaults to sr" true
      (r.Serve.Protocol.strategy = Caqr.Pipeline.Sr);
    check int "shots default" 1024 r.Serve.Protocol.shots;
    check bool "no deadline by default" true
      (r.Serve.Protocol.deadline_ms = None);
    check bool "cache on by default" true (not r.Serve.Protocol.no_cache)

let test_protocol_rejects () =
  let is_err = function Error _ -> true | Ok _ -> false in
  let p = Serve.Protocol.of_line in
  check bool "non-JSON rejected" true (is_err (p "hello"));
  check bool "missing op rejected" true (is_err (p "{}"));
  check bool "unknown op rejected" true (is_err (p {|{"op":"teleport"}|}));
  check bool "wrong-typed field rejected" true
    (is_err (p {|{"op":"compile","deadline_ms":"fast"}|}));
  check bool "bad strategy rejected" true
    (is_err (p {|{"op":"compile","strategy":"qs-fastest"}|}));
  (* Unknown fields are ignored for forward compatibility. *)
  check bool "unknown field tolerated" true
    (not (is_err (p {|{"op":"stats","future_knob":1}|})));
  check bool "int strategy is a qubit target" true
    (match p {|{"op":"compile","bench":"BV_10","strategy":6}|} with
    | Ok r -> r.Serve.Protocol.strategy = Caqr.Pipeline.Qs_target 6
    | Error _ -> false)

(* ---- Serve.Cache ---- *)

let test_cache_key () =
  let k = Serve.Cache.key ~op:"compile" ~digest:"d" ~fingerprint:"f" in
  check string "key is stable" k
    (Serve.Cache.key ~op:"compile" ~digest:"d" ~fingerprint:"f");
  check int "key is an MD5 hex" 32 (String.length k);
  check bool "op separates keys" true
    (k <> Serve.Cache.key ~op:"verify" ~digest:"d" ~fingerprint:"f");
  check bool "digest separates keys" true
    (k <> Serve.Cache.key ~op:"compile" ~digest:"d2" ~fingerprint:"f");
  check bool "fingerprint separates keys" true
    (k <> Serve.Cache.key ~op:"compile" ~digest:"d" ~fingerprint:"f2");
  (* No separator ambiguity: shifting a byte across the component
     boundary must not produce the same key. *)
  check bool "components are framed" true
    (Serve.Cache.key ~op:"compilex" ~digest:"d" ~fingerprint:"f"
    <> Serve.Cache.key ~op:"compile" ~digest:"xd" ~fingerprint:"f")

let test_cache_memory_tier () =
  let c = Serve.Cache.create ~mem_capacity:8 () in
  check bool "empty cache misses" true (Serve.Cache.find c "k0" = None);
  Serve.Cache.store c "k0" "v0";
  check bool "stores then hits" true (Serve.Cache.find c "k0" = Some "v0");
  Serve.Cache.store c "k0" "v0'";
  check bool "store overwrites" true (Serve.Cache.find c "k0" = Some "v0'");
  let stats = Serve.Cache.stats c in
  check int "one miss counted" 1 (List.assoc "misses" stats);
  check int "two hits counted" 2 (List.assoc "hits" stats)

let test_cache_lru () =
  let c = Serve.Cache.create ~mem_capacity:8 () in
  for i = 1 to 8 do
    Serve.Cache.store c (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i)
  done;
  (* Touch k1 so k2 becomes the least recently used entry. *)
  check bool "k1 present" true (Serve.Cache.find c "k1" = Some "v1");
  Serve.Cache.store c "k9" "v9";
  check bool "recently-used entry survives" true
    (Serve.Cache.find c "k1" = Some "v1");
  check bool "LRU entry evicted" true (Serve.Cache.find c "k2" = None);
  check int "one eviction counted" 1
    (List.assoc "evictions" (Serve.Cache.stats c))

let test_cache_lru_bound_random () =
  let c = Serve.Cache.create ~mem_capacity:16 () in
  let prng = ref 12345 in
  let next () =
    prng := (!prng * 1103515245 + 12347) land 0x3FFFFFFF;
    !prng
  in
  for _ = 1 to 500 do
    let k = Printf.sprintf "k%d" (next () mod 64) in
    match Serve.Cache.find c k with
    | Some _ -> ()
    | None -> Serve.Cache.store c k ("v:" ^ k)
  done;
  let stats = Serve.Cache.stats c in
  check bool "memory tier bounded by capacity" true
    (List.assoc "mem_entries" stats <= 16);
  check bool "evictions happened" true (List.assoc "evictions" stats > 0)

let test_cache_disk_tier () =
  let dir = fresh_dir "disk" in
  let a = Serve.Cache.create ~mem_capacity:8 ~dir () in
  Serve.Cache.store a "deadbeef" "payload-bytes";
  check bool "entry file uses the key name" true
    (Sys.file_exists (Filename.concat dir "deadbeef.cache"));
  (* A fresh instance (new process in real life) must serve the entry
     from disk and promote it into memory. *)
  let b = Serve.Cache.create ~mem_capacity:8 ~dir () in
  check bool "disk survives the instance" true
    (Serve.Cache.find b "deadbeef" = Some "payload-bytes");
  let stats = Serve.Cache.stats b in
  check int "counted as a disk hit" 1 (List.assoc "disk_hits" stats);
  check int "and as a hit" 1 (List.assoc "hits" stats);
  check bool "promoted: second find needs no disk" true
    (Serve.Cache.find b "deadbeef" = Some "payload-bytes");
  check int "disk hits unchanged after promotion" 1
    (List.assoc "disk_hits" (Serve.Cache.stats b))

let test_cache_crash_safety () =
  let dir = fresh_dir "crash" in
  (* A crashed writer leaves a dot-prefixed temp file; it must never be
     served, and must not block later stores of the same key. *)
  let oc = open_out (Filename.concat dir ".deadbeef.cache.tmp") in
  output_string oc "torn write";
  close_out oc;
  let c = Serve.Cache.create ~mem_capacity:8 ~dir () in
  check bool "temp garbage is not an entry" true
    (Serve.Cache.find c "deadbeef" = None);
  Serve.Cache.store c "deadbeef" "good";
  let fresh = Serve.Cache.create ~mem_capacity:8 ~dir () in
  check bool "store works despite leftover temp" true
    (Serve.Cache.find fresh "deadbeef" = Some "good")

(* ---- Serve.Server.handle_line: the socket-free request core ---- *)

let server ?(config = Serve.Server.default_config) () =
  Serve.Server.create config

let test_handler_cache_hit_byte_identical () =
  let t = server () in
  let req = {|{"id":1,"op":"compile","bench":"BV_10","strategy":"sr"}|} in
  let cold, stop1 = Serve.Server.handle_line t req in
  let warm, stop2 = Serve.Server.handle_line t req in
  check bool "compile does not stop the daemon" false (stop1 || stop2);
  check bool "cold response is a miss" true (contains cold "\"cache\":\"miss\"");
  check bool "warm response is a hit" true (contains warm "\"cache\":\"hit\"");
  check string "result object replays byte-identically" (result_part cold)
    (result_part warm);
  check bool "result names the benchmark" true
    (contains cold "\"benchmark\":\"BV_10\"")

let test_handler_no_cache () =
  let t = server () in
  let req = {|{"op":"compile","bench":"BV_10","no_cache":true}|} in
  let r1, _ = Serve.Server.handle_line t req in
  let r2, _ = Serve.Server.handle_line t req in
  check bool "bypass never hits" true
    (contains r1 "\"cache\":\"none\"" && contains r2 "\"cache\":\"none\"");
  check string "but stays deterministic" (result_part r1) (result_part r2)

let test_handler_deadline_keeps_serving () =
  let t = server () in
  let doomed =
    {|{"id":"slow","op":"compile","bench":"Multiply_13","strategy":"qs-max-reuse","deadline_ms":0}|}
  in
  let failed, stop = Serve.Server.handle_line t doomed in
  check bool "deadline trip does not stop the daemon" false stop;
  check bool "structured failure" true (contains failed "\"ok\":false");
  check bool "id echoed on failure" true (contains failed "\"id\":\"slow\"");
  check bool "error names the deadline" true (contains failed "deadline");
  check bool "budget trips are recoverable" true
    (contains failed "\"recoverable\":true");
  (* The very next request on the same server must succeed: the scoped
     budget died with its request. *)
  let ok, _ =
    Serve.Server.handle_line t {|{"id":"next","op":"compile","bench":"BV_10"}|}
  in
  check bool "daemon keeps serving after a trip" true (contains ok "\"ok\":true")

let test_handler_admission_and_errors () =
  (* create floors the admission cap at 1024 bytes, so exceed that. *)
  let t =
    server
      ~config:{ Serve.Server.default_config with max_request_bytes = 64 } ()
  in
  let oversized =
    Printf.sprintf {|{"op":"compile","qasm3":"%s"}|} (String.make 2048 'x')
  in
  let r, stop = Serve.Server.handle_line t oversized in
  check bool "oversized rejected, daemon alive" false stop;
  check bool "oversized is a structured error" true
    (contains r "\"ok\":false" && contains r "serve.admission"
    && contains r "1024 bytes");
  let bad, _ = Serve.Server.handle_line t "not json at all" in
  check bool "parse failure is a structured error" true
    (contains bad "\"ok\":false");
  let nobench, _ = Serve.Server.handle_line t {|{"op":"compile"}|} in
  check bool "missing circuit is a structured error" true
    (contains nobench "\"ok\":false");
  let unknown, _ =
    Serve.Server.handle_line t {|{"op":"compile","bench":"NoSuch_99"}|}
  in
  check bool "unknown benchmark is a structured error" true
    (contains unknown "\"ok\":false" && contains unknown "NoSuch_99")

let test_handler_deadline_clamped () =
  (* With max_deadline_ms = 0, even a generous requested deadline is
     clamped to an already-expired budget and must trip. *)
  let t =
    server
      ~config:{ Serve.Server.default_config with max_deadline_ms = Some 0 } ()
  in
  let r, _ =
    Serve.Server.handle_line t
      {|{"op":"compile","bench":"Multiply_13","strategy":"qs-max-reuse","deadline_ms":60000}|}
  in
  check bool "requested deadline clamped by the admission cap" true
    (contains r "\"ok\":false" && contains r "deadline")

let test_handler_verify_and_simulate () =
  let t = server () in
  let v, _ =
    Serve.Server.handle_line t
      {|{"op":"verify","bench":"BV_10","strategy":"sr"}|}
  in
  check bool "verify carries a verdict" true
    (contains v "\"verdict\":\"equivalent\"");
  let s, _ =
    Serve.Server.handle_line t
      {|{"op":"simulate","bench":"BV_10","shots":64,"seed":3}|}
  in
  check bool "simulate carries counts" true
    (contains s "\"ok\":true" && contains s "\"counts\":");
  let s', _ =
    Serve.Server.handle_line t
      {|{"op":"simulate","bench":"BV_10","shots":64,"seed":3}|}
  in
  check bool "simulation results cache too" true (contains s' "\"cache\":\"hit\"");
  check string "and replay byte-identically" (result_part s) (result_part s')

let test_handler_qasm3_input () =
  let t = server () in
  let qasm =
    "OPENQASM 3.0;\\ninclude \\\"stdgates.inc\\\";\\nqubit[2] q;\\nbit[2] c;\\nh q[0];\\ncx q[0], q[1];\\nc[0] = measure q[0];\\nc[1] = measure q[1];"
  in
  let req = Printf.sprintf {|{"op":"compile","qasm3":"%s"}|} qasm in
  let r1, _ = Serve.Server.handle_line t req in
  check bool "inline QASM compiles" true (contains r1 "\"ok\":true");
  (* Same circuit, different spelling: content addressing must hit. *)
  let req2 =
    Printf.sprintf {|{"op":"compile","future":1,"qasm3":"%s"}|} qasm
  in
  let r2, _ = Serve.Server.handle_line t req2 in
  check bool "content-addressed hit across spellings" true
    (contains r2 "\"cache\":\"hit\"");
  check string "identical result" (result_part r1) (result_part r2)

let test_handler_stats_and_shutdown () =
  let t = server () in
  ignore (Serve.Server.handle_line t {|{"op":"compile","bench":"BV_10"}|});
  let s, stop = Serve.Server.handle_line t {|{"op":"stats"}|} in
  check bool "stats does not stop the daemon" false stop;
  check bool "stats embeds the metrics snapshot" true (contains s "\"counters\"");
  check bool "stats names the engine version" true
    (contains s Caqr.Version.engine);
  check bool "stats exposes cache counters" true (contains s "\"misses\"");
  let bye, stop = Serve.Server.handle_line t {|{"op":"shutdown"}|} in
  check bool "shutdown acknowledges" true (contains bye "\"ok\":true");
  check bool "shutdown stops the daemon" true stop

let test_handler_batch_order () =
  let t = server () in
  let lines =
    [
      {|{"id":10,"op":"compile","bench":"BV_10"}|};
      {|{"id":11,"op":"stats"}|};
      {|{"id":12,"op":"compile","bench":"XOR_5"}|};
    ]
  in
  let responses, stop = Serve.Server.handle_batch t lines in
  check bool "batch does not stop" false stop;
  check int "one response per request" 3 (List.length responses);
  List.iteri
    (fun i r ->
      check bool
        (Printf.sprintf "response %d keeps request order" i)
        true
        (contains r (Printf.sprintf "\"id\":%d" (10 + i))))
    responses;
  let _, stop =
    Serve.Server.handle_batch t [ {|{"op":"stats"}|}; {|{"op":"shutdown"}|} ]
  in
  check bool "stop flag is the disjunction" true stop

(* ---- end to end over a real socket ---- *)

let test_socket_end_to_end () =
  let dir = fresh_dir "sock" in
  let socket = Filename.concat dir "caqr.sock" in
  let config =
    {
      Serve.Server.default_config with
      socket;
      cache_dir = Some (Filename.concat dir "cache");
    }
  in
  let t = Serve.Server.create config in
  let daemon = Domain.spawn (fun () -> Serve.Server.run t) in
  let compile = {|{"id":1,"op":"compile","bench":"BV_10","strategy":"sr"}|} in
  (match Serve.Client.call_retry ~socket [ compile ] with
  | [ cold ] ->
    check bool "cold compile over the socket" true
      (contains cold "\"ok\":true" && contains cold "\"cache\":\"miss\"");
    (* One pipelined connection: repeat + stats arrive as a batch. *)
    (match Serve.Client.call ~socket [ compile; {|{"id":2,"op":"stats"}|} ] with
    | [ warm; stats ] ->
      check bool "warm compile hits" true (contains warm "\"cache\":\"hit\"");
      check string "socket replay is byte-identical" (result_part cold)
        (result_part warm);
      check bool "stats over the socket" true (contains stats "\"counters\"")
    | other ->
      Alcotest.failf "expected 2 responses, got %d" (List.length other))
  | other -> Alcotest.failf "expected 1 response, got %d" (List.length other));
  (match Serve.Client.call ~socket [ {|{"op":"shutdown"}|} ] with
  | [ bye ] -> check bool "clean shutdown" true (contains bye "\"ok\":true")
  | other -> Alcotest.failf "expected 1 response, got %d" (List.length other));
  Domain.join daemon;
  check bool "socket file removed on exit" false (Sys.file_exists socket);
  check bool "disk tier populated" true
    (Sys.file_exists (Filename.concat dir "cache"))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "digest",
        [
          Alcotest.test_case "invariance" `Quick test_digest_invariance;
          Alcotest.test_case "sensitivity" `Quick test_digest_sensitivity;
          Alcotest.test_case "golden artifacts distinct" `Quick
            test_digest_golden_distinct;
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "semantic fields only" `Quick test_fingerprint ] );
      ( "protocol",
        [
          Alcotest.test_case "defaults" `Quick test_protocol_defaults;
          Alcotest.test_case "rejects" `Quick test_protocol_rejects;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key" `Quick test_cache_key;
          Alcotest.test_case "memory tier" `Quick test_cache_memory_tier;
          Alcotest.test_case "lru recency" `Quick test_cache_lru;
          Alcotest.test_case "lru bound under random stream" `Quick
            test_cache_lru_bound_random;
          Alcotest.test_case "disk tier" `Quick test_cache_disk_tier;
          Alcotest.test_case "crash safety" `Quick test_cache_crash_safety;
        ] );
      ( "handler",
        [
          Alcotest.test_case "cache hit is byte-identical" `Quick
            test_handler_cache_hit_byte_identical;
          Alcotest.test_case "no_cache bypass" `Quick test_handler_no_cache;
          Alcotest.test_case "deadline trips, daemon survives" `Quick
            test_handler_deadline_keeps_serving;
          Alcotest.test_case "admission and structured errors" `Quick
            test_handler_admission_and_errors;
          Alcotest.test_case "deadline clamped by cap" `Quick
            test_handler_deadline_clamped;
          Alcotest.test_case "verify and simulate" `Quick
            test_handler_verify_and_simulate;
          Alcotest.test_case "inline qasm3 content addressing" `Quick
            test_handler_qasm3_input;
          Alcotest.test_case "stats and shutdown" `Quick
            test_handler_stats_and_shutdown;
          Alcotest.test_case "batch keeps order" `Quick test_handler_batch_order;
        ] );
      ( "socket",
        [ Alcotest.test_case "end to end" `Quick test_socket_end_to_end ] );
    ]
