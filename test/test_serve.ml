(* The compilation service: JSON wire format, canonical circuit digests,
   option fingerprints, the two-tier content-addressed cache, the
   socket-free request handler, and one end-to-end exchange over a real
   Unix-domain socket. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* The [result] object is the cached unit; everything after its key is
   the byte-identity surface a cache hit must replay. *)
let result_part line =
  match find_sub line "\"result\":" with
  | Some i -> String.sub line i (String.length line - i)
  | None -> Alcotest.failf "no result object in %s" line

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "caqr-serve-%d-%s-%d" (Unix.getpid ()) tag !counter)
    in
    Unix.mkdir d 0o755;
    d

(* ---- Serve.Json ---- *)

module J = Serve.Json

let sample =
  J.Obj
    [
      ("id", J.Int 7);
      ("name", J.String "bv");
      ("ok", J.Bool true);
      ("none", J.Null);
      ("xs", J.List [ J.Int 1; J.Float 0.5; J.String "a\"b\\c\n" ]);
      ("nested", J.Obj [ ("z", J.Int 1); ("a", J.Int 2) ]);
    ]

let test_json_roundtrip () =
  let s = J.to_string sample in
  (match J.parse s with
  | Ok j -> check bool "parse(emit) is identity" true (j = sample)
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
  (* Field order is preserved verbatim, not sorted. *)
  check bool "object order preserved" true
    (contains s "{\"z\":1,\"a\":2}")

let test_json_numbers () =
  check bool "bare int parses as Int" true (J.parse "42" = Ok (J.Int 42));
  check bool "negative int" true (J.parse "-7" = Ok (J.Int (-7)));
  check bool "decimal parses as Float" true (J.parse "2.5" = Ok (J.Float 2.5));
  check bool "exponent parses as Float" true
    (J.parse "1e2" = Ok (J.Float 100.0));
  check string "non-finite floats emit null" "null" (J.to_string (J.Float nan));
  check string "infinite floats emit null" "null"
    (J.to_string (J.Float infinity))

let test_json_string_escapes () =
  check string "emitter escapes" "\"a\\\"b\\\\c\\n\\t\""
    (J.to_string (J.String "a\"b\\c\n\t"));
  check bool "control chars as \\u" true
    (J.to_string (J.String "\001") = "\"\\u0001\"");
  check bool "\\uXXXX decodes" true
    (J.parse "\"\\u0041\"" = Ok (J.String "A"));
  (* A surrogate pair must decode to one UTF-8 code point. *)
  check bool "surrogate pair decodes to UTF-8" true
    (J.parse "\"\\ud83d\\ude00\"" = Ok (J.String "\xf0\x9f\x98\x80"))

let test_json_errors () =
  let is_err = function Error _ -> true | Ok _ -> false in
  check bool "trailing garbage rejected" true (is_err (J.parse "1 2"));
  check bool "unterminated string rejected" true (is_err (J.parse "\"abc"));
  check bool "bad literal rejected" true (is_err (J.parse "nul"));
  check bool "lone surrogate rejected" true (is_err (J.parse "\"\\ud83d\""));
  check bool "unclosed object rejected" true (is_err (J.parse "{\"a\":1"));
  (match J.parse "[1,2" with
  | Error e -> check bool "error carries offset" true (contains e "offset")
  | Ok _ -> Alcotest.fail "expected parse error")

let test_json_accessors () =
  check bool "member hit" true (J.member "id" sample = Some (J.Int 7));
  check bool "member miss" true (J.member "zzz" sample = None);
  check bool "string_field" true (J.string_field "name" sample = Some "bv");
  check bool "int_field rejects strings" true (J.int_field "name" sample = None);
  check bool "bool_field" true (J.bool_field "ok" sample = Some true)

(* ---- Quantum.Circuit.digest ---- *)

let bell_kinds =
  Quantum.Gate.
    [ One_q (H, 0); Cx (0, 1); Measure (0, 0); Measure (1, 1) ]

let test_digest_invariance () =
  let via_kinds =
    Quantum.Circuit.of_kinds ~num_qubits:2 ~num_clbits:2 bell_kinds
  in
  let module B = Quantum.Circuit.Builder in
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 0 0;
  B.measure b 1 1;
  let via_builder = B.build b in
  check string "builder and of_kinds digest equal"
    (Quantum.Circuit.digest via_kinds)
    (Quantum.Circuit.digest via_builder);
  (* Round-tripping through the QASM-3 emission must not move the
     digest: it is an address for the circuit, not its spelling. *)
  match Quantum.Qasm_parser.parse (Quantum.Qasm.to_string via_kinds) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e.Guard.Error.detail
  | Ok back ->
    check string "digest survives QASM round-trip"
      (Quantum.Circuit.digest via_kinds)
      (Quantum.Circuit.digest back)

let test_digest_sensitivity () =
  let mk kinds = Quantum.Circuit.of_kinds ~num_qubits:2 ~num_clbits:2 kinds in
  let base = mk bell_kinds in
  let swapped =
    mk Quantum.Gate.[ Cx (0, 1); One_q (H, 0); Measure (0, 0); Measure (1, 1) ]
  in
  check bool "gate order matters" true
    (Quantum.Circuit.digest base <> Quantum.Circuit.digest swapped);
  let rz th = mk Quantum.Gate.[ One_q (Rz th, 0) ] in
  check bool "angles are bit-exact" true
    (Quantum.Circuit.digest (rz 0.1) <> Quantum.Circuit.digest (rz (0.1 +. 1e-12)));
  let wide = Quantum.Circuit.of_kinds ~num_qubits:3 ~num_clbits:2 bell_kinds in
  check bool "widths matter" true
    (Quantum.Circuit.digest base <> Quantum.Circuit.digest wide)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_dir =
  Filename.concat (Filename.dirname Sys.executable_name) "golden"

let test_digest_golden_distinct () =
  let files =
    Sys.readdir golden_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".qasm")
    |> List.sort compare
  in
  check bool "all golden artifacts present" true (List.length files >= 35);
  let digests =
    List.map
      (fun f ->
        match Quantum.Qasm_parser.parse (read_file (Filename.concat golden_dir f)) with
        | Ok c -> (f, Quantum.Circuit.digest c)
        | Error e -> Alcotest.failf "%s failed to parse: %s" f e.Guard.Error.detail)
      files
  in
  (* Artifacts of different benchmarks must never share a content
     address, or the cache would conflate compiled programs. Two
     strategies may legitimately converge on the same circuit for the
     same benchmark (cone and gidnet often land exactly on the QS
     artifact); the cache separates those by strategy fingerprint, not
     by digest. *)
  let benchmark_of f =
    match String.index_opt f '.' with
    | Some i -> String.sub f 0 i
    | None -> f
  in
  List.iteri
    (fun i (fi, di) ->
      List.iteri
        (fun j (fj, dj) ->
          if i < j && di = dj && benchmark_of fi <> benchmark_of fj then
            Alcotest.failf "digest collision between %s and %s" fi fj)
        digests)
    digests

(* ---- Caqr.Pipeline.options_fingerprint ---- *)

let test_fingerprint () =
  let fp = Caqr.Pipeline.options_fingerprint in
  let d = Caqr.Pipeline.default in
  check string "deterministic" (fp d) (fp d);
  let tighter =
    {
      d with
      Caqr.Pipeline.search =
        { d.Caqr.Pipeline.search with Caqr.Qs_caqr.budget = 17 };
    }
  in
  check bool "search budget is semantic" true (fp d <> fp tighter);
  check bool "verify level is semantic" true
    (fp d <> fp { d with Caqr.Pipeline.verify = Some Verify.Auto });
  check bool "fallback is semantic" true
    (fp d <> fp { d with Caqr.Pipeline.fallback = true });
  (* Execution policy must not fragment the cache: the report is
     byte-identical for every jobs value, and degraded (deadline-shaped)
     reports are never cached in the first place. *)
  check string "jobs is not semantic" (fp d)
    (fp { d with Caqr.Pipeline.jobs = 8 });
  check string "collect_metrics is not semantic" (fp d)
    (fp { d with Caqr.Pipeline.collect_metrics = true });
  check string "deadline_ms is not semantic" (fp d)
    (fp { d with Caqr.Pipeline.deadline_ms = Some 5 })

(* ---- Serve.Protocol ---- *)

let test_protocol_defaults () =
  match Serve.Protocol.of_line {|{"op":"compile","bench":"BV_10"}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok r ->
    check bool "op" true (r.Serve.Protocol.op = Serve.Protocol.Compile);
    check bool "bench" true (r.Serve.Protocol.bench = Some "BV_10");
    check bool "id defaults to null" true (r.Serve.Protocol.id = J.Null);
    check bool "strategy defaults to sr" true
      (r.Serve.Protocol.strategy = Caqr.Pipeline.Sr);
    check int "shots default" 1024 r.Serve.Protocol.shots;
    check bool "no deadline by default" true
      (r.Serve.Protocol.deadline_ms = None);
    check bool "cache on by default" true (not r.Serve.Protocol.no_cache)

let test_protocol_rejects () =
  let is_err = function Error _ -> true | Ok _ -> false in
  let p = Serve.Protocol.of_line in
  check bool "non-JSON rejected" true (is_err (p "hello"));
  check bool "missing op rejected" true (is_err (p "{}"));
  check bool "unknown op rejected" true (is_err (p {|{"op":"teleport"}|}));
  check bool "wrong-typed field rejected" true
    (is_err (p {|{"op":"compile","deadline_ms":"fast"}|}));
  check bool "bad strategy rejected" true
    (is_err (p {|{"op":"compile","strategy":"qs-fastest"}|}));
  (* Unknown fields are ignored for forward compatibility. *)
  check bool "unknown field tolerated" true
    (not (is_err (p {|{"op":"stats","future_knob":1}|})));
  check bool "int strategy is a qubit target" true
    (match p {|{"op":"compile","bench":"BV_10","strategy":6}|} with
    | Ok r -> r.Serve.Protocol.strategy = Caqr.Pipeline.Qs_target 6
    | Error _ -> false)

(* ---- Serve.Cache ---- *)

let test_cache_key () =
  let k = Serve.Cache.key ~op:"compile" ~digest:"d" ~fingerprint:"f" in
  check string "key is stable" k
    (Serve.Cache.key ~op:"compile" ~digest:"d" ~fingerprint:"f");
  check int "key is an MD5 hex" 32 (String.length k);
  check bool "op separates keys" true
    (k <> Serve.Cache.key ~op:"verify" ~digest:"d" ~fingerprint:"f");
  check bool "digest separates keys" true
    (k <> Serve.Cache.key ~op:"compile" ~digest:"d2" ~fingerprint:"f");
  check bool "fingerprint separates keys" true
    (k <> Serve.Cache.key ~op:"compile" ~digest:"d" ~fingerprint:"f2");
  (* No separator ambiguity: shifting a byte across the component
     boundary must not produce the same key. *)
  check bool "components are framed" true
    (Serve.Cache.key ~op:"compilex" ~digest:"d" ~fingerprint:"f"
    <> Serve.Cache.key ~op:"compile" ~digest:"xd" ~fingerprint:"f")

let test_cache_memory_tier () =
  let c = Serve.Cache.create ~mem_capacity:8 () in
  check bool "empty cache misses" true (Serve.Cache.find c "k0" = None);
  Serve.Cache.store c "k0" "v0";
  check bool "stores then hits" true (Serve.Cache.find c "k0" = Some "v0");
  Serve.Cache.store c "k0" "v0'";
  check bool "store overwrites" true (Serve.Cache.find c "k0" = Some "v0'");
  let stats = Serve.Cache.stats c in
  check int "one miss counted" 1 (List.assoc "misses" stats);
  check int "two hits counted" 2 (List.assoc "hits" stats)

let test_cache_lru () =
  let c = Serve.Cache.create ~mem_capacity:8 () in
  for i = 1 to 8 do
    Serve.Cache.store c (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i)
  done;
  (* Touch k1 so k2 becomes the least recently used entry. *)
  check bool "k1 present" true (Serve.Cache.find c "k1" = Some "v1");
  Serve.Cache.store c "k9" "v9";
  check bool "recently-used entry survives" true
    (Serve.Cache.find c "k1" = Some "v1");
  check bool "LRU entry evicted" true (Serve.Cache.find c "k2" = None);
  check int "one eviction counted" 1
    (List.assoc "evictions" (Serve.Cache.stats c))

let test_cache_lru_bound_random () =
  let c = Serve.Cache.create ~mem_capacity:16 () in
  let prng = ref 12345 in
  let next () =
    prng := (!prng * 1103515245 + 12347) land 0x3FFFFFFF;
    !prng
  in
  for _ = 1 to 500 do
    let k = Printf.sprintf "k%d" (next () mod 64) in
    match Serve.Cache.find c k with
    | Some _ -> ()
    | None -> Serve.Cache.store c k ("v:" ^ k)
  done;
  let stats = Serve.Cache.stats c in
  check bool "memory tier bounded by capacity" true
    (List.assoc "mem_entries" stats <= 16);
  check bool "evictions happened" true (List.assoc "evictions" stats > 0)

let test_cache_disk_tier () =
  let dir = fresh_dir "disk" in
  let a = Serve.Cache.create ~mem_capacity:8 ~dir () in
  Serve.Cache.store a "deadbeef" "payload-bytes";
  check bool "entry file uses the key name" true
    (Sys.file_exists (Filename.concat dir "deadbeef.cache"));
  (* A fresh instance (new process in real life) must serve the entry
     from disk and promote it into memory. *)
  let b = Serve.Cache.create ~mem_capacity:8 ~dir () in
  check bool "disk survives the instance" true
    (Serve.Cache.find b "deadbeef" = Some "payload-bytes");
  let stats = Serve.Cache.stats b in
  check int "counted as a disk hit" 1 (List.assoc "disk_hits" stats);
  check int "and as a hit" 1 (List.assoc "hits" stats);
  check bool "promoted: second find needs no disk" true
    (Serve.Cache.find b "deadbeef" = Some "payload-bytes");
  check int "disk hits unchanged after promotion" 1
    (List.assoc "disk_hits" (Serve.Cache.stats b))

let test_cache_crash_safety () =
  let dir = fresh_dir "crash" in
  (* A crashed writer leaves a dot-prefixed temp file; it must never be
     served, and must not block later stores of the same key. *)
  let oc = open_out (Filename.concat dir ".deadbeef.cache.tmp") in
  output_string oc "torn write";
  close_out oc;
  let c = Serve.Cache.create ~mem_capacity:8 ~dir () in
  check bool "temp garbage is not an entry" true
    (Serve.Cache.find c "deadbeef" = None);
  Serve.Cache.store c "deadbeef" "good";
  let fresh = Serve.Cache.create ~mem_capacity:8 ~dir () in
  check bool "store works despite leftover temp" true
    (Serve.Cache.find fresh "deadbeef" = Some "good")

(* ---- Serve.Server.handle_line: the socket-free request core ---- *)

let server ?(config = Serve.Server.default_config) () =
  Serve.Server.create config

let test_handler_cache_hit_byte_identical () =
  let t = server () in
  let req = {|{"id":1,"op":"compile","bench":"BV_10","strategy":"sr"}|} in
  let cold, stop1 = Serve.Server.handle_line t req in
  let warm, stop2 = Serve.Server.handle_line t req in
  check bool "compile does not stop the daemon" false (stop1 || stop2);
  check bool "cold response is a miss" true (contains cold "\"cache\":\"miss\"");
  check bool "warm response is a hit" true (contains warm "\"cache\":\"hit\"");
  check string "result object replays byte-identically" (result_part cold)
    (result_part warm);
  check bool "result names the benchmark" true
    (contains cold "\"benchmark\":\"BV_10\"")

let test_handler_no_cache () =
  let t = server () in
  let req = {|{"op":"compile","bench":"BV_10","no_cache":true}|} in
  let r1, _ = Serve.Server.handle_line t req in
  let r2, _ = Serve.Server.handle_line t req in
  check bool "bypass never hits" true
    (contains r1 "\"cache\":\"none\"" && contains r2 "\"cache\":\"none\"");
  check string "but stays deterministic" (result_part r1) (result_part r2)

(* Every named strategy owns its own cache line: compiling the same
   benchmark under each must be a fresh miss, and each warm repeat a
   byte-identical hit. The options fingerprint carries the strategy
   name, so two engines that emit the same circuit (cone and gidnet
   often land exactly on the QS artifact) still never share an entry. *)
let test_handler_strategy_cache_lines () =
  let t = server () in
  List.iter
    (fun (name, _) ->
      let req =
        Printf.sprintf {|{"op":"compile","bench":"BV_10","strategy":"%s"}|}
          name
      in
      let cold, _ = Serve.Server.handle_line t req in
      check bool (name ^ " cold is a miss") true
        (contains cold "\"cache\":\"miss\"");
      check bool (name ^ " result names its strategy") true
        (contains cold (Printf.sprintf "\"strategy\":\"%s\"" name));
      let warm, _ = Serve.Server.handle_line t req in
      check bool (name ^ " warm is a hit") true
        (contains warm "\"cache\":\"hit\"");
      check string (name ^ " replay is byte-identical") (result_part cold)
        (result_part warm))
    Caqr.Pipeline.all_strategies

let test_handler_deadline_keeps_serving () =
  let t = server () in
  let doomed =
    {|{"id":"slow","op":"compile","bench":"Multiply_13","strategy":"qs-max-reuse","deadline_ms":0}|}
  in
  let failed, stop = Serve.Server.handle_line t doomed in
  check bool "deadline trip does not stop the daemon" false stop;
  check bool "structured failure" true (contains failed "\"ok\":false");
  check bool "id echoed on failure" true (contains failed "\"id\":\"slow\"");
  check bool "error names the deadline" true (contains failed "deadline");
  check bool "budget trips are recoverable" true
    (contains failed "\"recoverable\":true");
  (* The very next request on the same server must succeed: the scoped
     budget died with its request. *)
  let ok, _ =
    Serve.Server.handle_line t {|{"id":"next","op":"compile","bench":"BV_10"}|}
  in
  check bool "daemon keeps serving after a trip" true (contains ok "\"ok\":true")

let test_handler_admission_and_errors () =
  (* create floors the admission cap at 1024 bytes, so exceed that. *)
  let t =
    server
      ~config:{ Serve.Server.default_config with max_request_bytes = 64 } ()
  in
  let oversized =
    Printf.sprintf {|{"op":"compile","qasm3":"%s"}|} (String.make 2048 'x')
  in
  let r, stop = Serve.Server.handle_line t oversized in
  check bool "oversized rejected, daemon alive" false stop;
  check bool "oversized is a structured error" true
    (contains r "\"ok\":false" && contains r "serve.admission"
    && contains r "1024 bytes");
  let bad, _ = Serve.Server.handle_line t "not json at all" in
  check bool "parse failure is a structured error" true
    (contains bad "\"ok\":false");
  let nobench, _ = Serve.Server.handle_line t {|{"op":"compile"}|} in
  check bool "missing circuit is a structured error" true
    (contains nobench "\"ok\":false");
  let unknown, _ =
    Serve.Server.handle_line t {|{"op":"compile","bench":"NoSuch_99"}|}
  in
  check bool "unknown benchmark is a structured error" true
    (contains unknown "\"ok\":false" && contains unknown "NoSuch_99")

let test_handler_deadline_clamped () =
  (* With max_deadline_ms = 0, even a generous requested deadline is
     clamped to an already-expired budget and must trip. *)
  let t =
    server
      ~config:{ Serve.Server.default_config with max_deadline_ms = Some 0 } ()
  in
  let r, _ =
    Serve.Server.handle_line t
      {|{"op":"compile","bench":"Multiply_13","strategy":"qs-max-reuse","deadline_ms":60000}|}
  in
  check bool "requested deadline clamped by the admission cap" true
    (contains r "\"ok\":false" && contains r "deadline")

let test_handler_verify_and_simulate () =
  let t = server () in
  let v, _ =
    Serve.Server.handle_line t
      {|{"op":"verify","bench":"BV_10","strategy":"sr"}|}
  in
  check bool "verify carries a verdict" true
    (contains v "\"verdict\":\"equivalent\"");
  let s, _ =
    Serve.Server.handle_line t
      {|{"op":"simulate","bench":"BV_10","shots":64,"seed":3}|}
  in
  check bool "simulate carries counts" true
    (contains s "\"ok\":true" && contains s "\"counts\":");
  let s', _ =
    Serve.Server.handle_line t
      {|{"op":"simulate","bench":"BV_10","shots":64,"seed":3}|}
  in
  check bool "simulation results cache too" true (contains s' "\"cache\":\"hit\"");
  check string "and replay byte-identically" (result_part s) (result_part s')

let test_handler_qasm3_input () =
  let t = server () in
  let qasm =
    "OPENQASM 3.0;\\ninclude \\\"stdgates.inc\\\";\\nqubit[2] q;\\nbit[2] c;\\nh q[0];\\ncx q[0], q[1];\\nc[0] = measure q[0];\\nc[1] = measure q[1];"
  in
  let req = Printf.sprintf {|{"op":"compile","qasm3":"%s"}|} qasm in
  let r1, _ = Serve.Server.handle_line t req in
  check bool "inline QASM compiles" true (contains r1 "\"ok\":true");
  (* Same circuit, different spelling: content addressing must hit. *)
  let req2 =
    Printf.sprintf {|{"op":"compile","future":1,"qasm3":"%s"}|} qasm
  in
  let r2, _ = Serve.Server.handle_line t req2 in
  check bool "content-addressed hit across spellings" true
    (contains r2 "\"cache\":\"hit\"");
  check string "identical result" (result_part r1) (result_part r2)

let test_handler_stats_and_shutdown () =
  let t = server () in
  ignore (Serve.Server.handle_line t {|{"op":"compile","bench":"BV_10"}|});
  let s, stop = Serve.Server.handle_line t {|{"op":"stats"}|} in
  check bool "stats does not stop the daemon" false stop;
  check bool "stats embeds the metrics snapshot" true (contains s "\"counters\"");
  check bool "stats names the engine version" true
    (contains s Caqr.Version.engine);
  check bool "stats exposes cache counters" true (contains s "\"misses\"");
  let bye, stop = Serve.Server.handle_line t {|{"op":"shutdown"}|} in
  check bool "shutdown acknowledges" true (contains bye "\"ok\":true");
  check bool "shutdown stops the daemon" true stop

let test_handler_batch_order () =
  let t = server () in
  let lines =
    [
      {|{"id":10,"op":"compile","bench":"BV_10"}|};
      {|{"id":11,"op":"stats"}|};
      {|{"id":12,"op":"compile","bench":"XOR_5"}|};
    ]
  in
  let responses, stop = Serve.Server.handle_batch t lines in
  check bool "batch does not stop" false stop;
  check int "one response per request" 3 (List.length responses);
  List.iteri
    (fun i r ->
      check bool
        (Printf.sprintf "response %d keeps request order" i)
        true
        (contains r (Printf.sprintf "\"id\":%d" (10 + i))))
    responses;
  let _, stop =
    Serve.Server.handle_batch t [ {|{"op":"stats"}|}; {|{"op":"shutdown"}|} ]
  in
  check bool "stop flag is the disjunction" true stop

(* ---- Serve.Transport: address grammar and framing ---- *)

module T = Serve.Transport

let test_addr_grammar () =
  check bool "bare path is a unix socket" true
    (T.addr_of_string "/tmp/x.sock" = Ok (T.Unix "/tmp/x.sock"));
  check bool "unix: scheme" true
    (T.addr_of_string "unix:/tmp/x.sock" = Ok (T.Unix "/tmp/x.sock"));
  check bool "tcp: scheme" true
    (T.addr_of_string "tcp:127.0.0.1:7391" = Ok (T.Tcp ("127.0.0.1", 7391)));
  check bool "tcp port 0 allowed" true
    (T.addr_of_string "tcp:localhost:0" = Ok (T.Tcp ("localhost", 0)));
  let rejected s =
    match T.addr_of_string s with Error _ -> true | Ok _ -> false
  in
  check bool "empty rejected" true (rejected "");
  check bool "unknown scheme rejected" true (rejected "udp:1.2.3.4:1");
  check bool "missing port rejected" true (rejected "tcp:127.0.0.1");
  check bool "bad port rejected" true (rejected "tcp:127.0.0.1:http");
  check bool "out-of-range port rejected" true (rejected "tcp:127.0.0.1:70000");
  check bool "empty unix path rejected" true (rejected "unix:");
  (* to_string is the parseable canonical spelling. *)
  List.iter
    (fun a ->
      check bool
        ("round-trip " ^ T.addr_to_string a)
        true
        (T.addr_of_string (T.addr_to_string a) = Ok a))
    [ T.Unix "/tmp/x.sock"; T.Tcp ("127.0.0.1", 7391) ];
  check bool "framing follows transport" true
    (T.framing_of_addr (T.Unix "p") = T.Newline
    && T.framing_of_addr (T.Tcp ("h", 1)) = T.Length_prefixed)

(* One loopback pair: messages with embedded newlines — fatal to the
   Unix-socket framing — round-trip untouched through length-prefixed
   TCP frames. *)
let test_tcp_framing_roundtrip () =
  let listener = T.bind (T.Tcp ("127.0.0.1", 0)) in
  Fun.protect
    ~finally:(fun () -> T.close_listener listener)
    (fun () ->
      let client = T.connect (T.bound_addr listener) in
      let server =
        match T.accept ~timeout_s:5.0 listener with
        | Some c -> c
        | None -> Alcotest.fail "accept timed out"
      in
      Fun.protect
        ~finally:(fun () ->
          T.close client;
          T.close server)
        (fun () ->
          let messages =
            [ "plain"; "two\nlines\n"; ""; String.make 70000 'x' ]
          in
          T.send client messages;
          List.iter
            (fun expected ->
              match T.recv server with
              | Some got -> check string "framed message intact" expected got
              | None -> Alcotest.fail "eof before all messages")
            messages;
          (* And back, as one pipelined batch. *)
          T.send server messages;
          (match T.recv_batch ~timeout_s:5.0 ~max:10 client with
          | T.Msgs got ->
            check int "batch drains the pipeline" (List.length messages)
              (List.length got);
            List.iter2 (fun e g -> check string "batched intact" e g) messages
              got
          | T.Eof | T.Timeout -> Alcotest.fail "expected a batch")))

let test_newline_framing_rejects_embedded_newline () =
  let dir = fresh_dir "frame" in
  let path = Filename.concat dir "t.sock" in
  let listener = T.bind (T.Unix path) in
  Fun.protect
    ~finally:(fun () -> T.close_listener listener)
    (fun () ->
      let client = T.connect (T.Unix path) in
      Fun.protect
        ~finally:(fun () -> T.close client)
        (fun () ->
          match T.send client [ "a\nb" ] with
          | () -> Alcotest.fail "embedded newline must be rejected"
          | exception Invalid_argument _ -> ()))

(* ---- end to end over real transports ---- *)

let run_daemon config =
  let t = Serve.Server.create config in
  let bound = Atomic.make None in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Server.run t ~ready:(fun a -> Atomic.set bound (Some a)))
  in
  let rec await k =
    match Atomic.get bound with
    | Some a -> a
    | None when k > 0 ->
      Unix.sleepf 0.01;
      await (k - 1)
    | None -> Alcotest.fail "daemon never became ready"
  in
  (t, daemon, await 500)

let shutdown_daemon ~addr daemon =
  (match Serve.Client.call ~addr [ {|{"op":"shutdown"}|} ] with
  | [ bye ] -> check bool "clean shutdown" true (contains bye "\"ok\":true")
  | other -> Alcotest.failf "expected 1 response, got %d" (List.length other));
  Domain.join daemon

let end_to_end addr_of_dir =
  let dir = fresh_dir "e2e" in
  let addr = addr_of_dir dir in
  let _t, daemon, addr =
    run_daemon
      {
        Serve.Server.default_config with
        addr;
        cache_dir = Some (Filename.concat dir "cache");
      }
  in
  let compile = {|{"id":1,"op":"compile","bench":"BV_10","strategy":"sr"}|} in
  (match Serve.Client.call_retry ~addr [ compile ] with
  | [ cold ] ->
    check bool "cold compile over the wire" true
      (contains cold "\"ok\":true" && contains cold "\"cache\":\"miss\"");
    check bool "response carries proto 2" true (contains cold "\"proto\":2");
    (* One pipelined connection: repeat + stats arrive as a batch. *)
    (match Serve.Client.call ~addr [ compile; {|{"id":2,"op":"stats"}|} ] with
    | [ warm; stats ] ->
      check bool "warm compile hits" true (contains warm "\"cache\":\"hit\"");
      check string "replay is byte-identical" (result_part cold)
        (result_part warm);
      check bool "stats over the wire" true (contains stats "\"counters\"")
    | other ->
      Alcotest.failf "expected 2 responses, got %d" (List.length other))
  | other -> Alcotest.failf "expected 1 response, got %d" (List.length other));
  shutdown_daemon ~addr daemon;
  check bool "disk tier populated" true
    (Sys.file_exists (Filename.concat dir "cache"));
  addr

let test_socket_end_to_end () =
  let socket = ref "" in
  let _ =
    end_to_end (fun dir ->
        socket := Filename.concat dir "caqr.sock";
        T.Unix !socket)
  in
  check bool "socket file removed on exit" false (Sys.file_exists !socket)

let test_tcp_end_to_end () =
  match end_to_end (fun _dir -> T.Tcp ("127.0.0.1", 0)) with
  | T.Tcp (_, port) -> check bool "ephemeral port resolved" true (port > 0)
  | T.Unix _ -> Alcotest.fail "expected a tcp address"

(* N parallel clients, interleaved compile/verify/simulate: every
   response must be byte-identical (in its result object) to a
   sequential replay of the same request — the determinism contract
   under concurrency. *)
let concurrent_vs_sequential addr =
  let requests k =
    [
      Printf.sprintf
        {|{"id":%d,"op":"compile","bench":"BV_10","strategy":"sr"}|} (10 * k);
      Printf.sprintf
        {|{"id":%d,"op":"compile","bench":"XOR_5","strategy":"qs-max-reuse"}|}
        ((10 * k) + 1);
      Printf.sprintf
        {|{"id":%d,"op":"simulate","bench":"BV_10","shots":32,"seed":3}|}
        ((10 * k) + 2);
    ]
  in
  let _t, daemon, addr =
    run_daemon { Serve.Server.default_config with addr; handler_domains = 4 }
  in
  let clients =
    List.init 4 (fun k ->
        Domain.spawn (fun () -> Serve.Client.call_retry ~addr (requests k)))
  in
  let answers = List.map Domain.join clients in
  shutdown_daemon ~addr daemon;
  (* Sequential baseline on a fresh server: same bytes, no concurrency.
     The result object is a pure function of the request, so a separate
     instance replays it exactly. *)
  let baseline = Serve.Server.create Serve.Server.default_config in
  List.iteri
    (fun k responses ->
      check int "one response per request" 3 (List.length responses);
      List.iter2
        (fun req resp ->
          check bool "concurrent request succeeded" true
            (contains resp "\"ok\":true");
          let seq, _ = Serve.Server.handle_line baseline req in
          check string "byte-identical to sequential replay"
            (result_part seq) (result_part resp))
        (requests k) responses)
    answers

let test_concurrent_clients_unix () =
  let dir = fresh_dir "conc" in
  concurrent_vs_sequential (T.Unix (Filename.concat dir "caqr.sock"))

let test_concurrent_clients_tcp () =
  concurrent_vs_sequential (T.Tcp ("127.0.0.1", 0))

(* ---- back-pressure ---- *)

(* Deterministic overload: occupy every admission slot by hand, then
   observe the structured rejection — no timing involved. *)
let test_overload_rejection () =
  let t =
    server ~config:{ Serve.Server.default_config with max_inflight = 1 } ()
  in
  let gate = Serve.Server.gate t in
  check bool "slot taken" true (Guard.Gate.try_enter gate);
  let rejected, stop =
    Serve.Server.handle_line t {|{"id":9,"op":"compile","bench":"BV_10"}|}
  in
  check bool "overload does not stop the daemon" false stop;
  check bool "rejected with ok:false" true (contains rejected "\"ok\":false");
  check bool "stage serve.admission" true
    (contains rejected "\"stage\":\"serve.admission\"");
  check bool "site request.overload" true
    (contains rejected "\"site\":\"request.overload\"");
  check bool "recoverable: the client may retry" true
    (contains rejected "\"recoverable\":true");
  check bool "id echoed" true (contains rejected "\"id\":9");
  (* stats and shutdown stay answerable under overload. *)
  let stats, _ = Serve.Server.handle_line t {|{"op":"stats"}|} in
  check bool "stats bypasses the gate" true (contains stats "\"ok\":true");
  check bool "stats reports inflight" true (contains stats "\"inflight\":1");
  Guard.Gate.leave gate;
  let ok, _ =
    Serve.Server.handle_line t {|{"id":10,"op":"compile","bench":"BV_10"}|}
  in
  check bool "slot released, request admitted" true (contains ok "\"ok\":true");
  check bool "rejection counted" true
    (Obs.Metrics.snapshot ()
     |> fun s ->
     List.exists
       (fun (k, v) -> k = "serve.rejected.overload" && v >= 1)
       s.Obs.Metrics.counters)

(* ---- protocol versioning ---- *)

let test_proto_versioning () =
  let t = server () in
  (* A proto-1 request (no field) and an explicit proto-2 request both
     get answered; the response always declares proto 2. *)
  let v1, _ = Serve.Server.handle_line t {|{"id":1,"op":"stats"}|} in
  check bool "v1 request answered" true (contains v1 "\"ok\":true");
  check bool "response declares proto" true (contains v1 "\"proto\":2");
  let v2, _ = Serve.Server.handle_line t {|{"id":2,"op":"stats","proto":2}|} in
  check bool "v2 request answered" true (contains v2 "\"ok\":true");
  let future, stop =
    Serve.Server.handle_line t {|{"id":3,"op":"stats","proto":3}|}
  in
  check bool "future proto does not stop the daemon" false stop;
  check bool "future proto rejected" true (contains future "\"ok\":false");
  check bool "version rejection site" true
    (contains future "\"site\":\"request.version\"");
  check bool "rejection echoes the id" true (contains future "\"id\":3");
  let bad, _ = Serve.Server.handle_line t {|{"op":"stats","proto":"two"}|} in
  check bool "non-integer proto rejected" true
    (contains bad "\"site\":\"request.parse\"")

(* ---- disk budget ---- *)

let entry_count dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cache")
  |> List.length

let test_cache_disk_budget () =
  let dir = fresh_dir "budget" in
  (* mem tier off: every find goes to disk, so eviction is observable. *)
  let c =
    Serve.Cache.create ~mem_capacity:0 ~dir ~disk_budget_bytes:64 ()
  in
  let v = String.make 32 'v' in
  List.iter (fun k -> Serve.Cache.store c k v) [ "k0"; "k1"; "k2"; "k3" ];
  check int "budget keeps two 32-byte entries" 2 (entry_count dir);
  check bool "oldest evicted" true (Serve.Cache.find c "k0" = None);
  check bool "newest survives" true (Serve.Cache.find c "k3" = Some v);
  let stats = Serve.Cache.stats c in
  let stat name = List.assoc name stats in
  check int "disk_entries tracked" 2 (stat "disk_entries");
  check int "disk_bytes tracked" 64 (stat "disk_bytes");
  check int "disk_evictions counted" 2 (stat "disk_evictions");
  (* A value larger than the whole budget never touches the tier. *)
  Serve.Cache.store c "huge" (String.make 100 'h');
  check bool "oversized value skipped" true
    (Serve.Cache.find c "huge" = None);
  check int "tier untouched by oversized store" 2 (entry_count dir)

(* A restart rebuilds the index by mtime, so the budget keeps holding
   across processes and the LRU order survives as recorded on disk. *)
let test_cache_disk_budget_restart () =
  let dir = fresh_dir "budget-restart" in
  let c = Serve.Cache.create ~mem_capacity:0 ~dir () in
  let v = String.make 32 'v' in
  (* Distinct mtimes so the restart scan sees the write order. *)
  Serve.Cache.store c "old" v;
  Unix.sleepf 0.02;
  Serve.Cache.store c "mid" v;
  Unix.sleepf 0.02;
  Serve.Cache.store c "new" v;
  let c2 = Serve.Cache.create ~mem_capacity:0 ~dir ~disk_budget_bytes:70 () in
  let stat name = List.assoc name (Serve.Cache.stats c2) in
  check int "restart scan finds the entries" 3 (stat "disk_entries");
  check int "restart scan sums the bytes" 96 (stat "disk_bytes");
  (* First store over budget evicts the stalest survivors. *)
  Serve.Cache.store c2 "k4" v;
  check bool "within budget after eviction" true (stat "disk_bytes" <= 70);
  check bool "oldest entry went first" true
    (Serve.Cache.find c2 "old" = None);
  check bool "newest written survives" true
    (Serve.Cache.find c2 "k4" = Some v)

(* A CLEAN shutdown flushes the exact LRU order — recency earned by
   reads included — to an index file the next create consumes. Without
   it, the mtime scan above would evict the read-refreshed entry. *)
let test_cache_index_preserves_read_recency () =
  let dir = fresh_dir "index-restart" in
  let v = String.make 32 'v' in
  let c = Serve.Cache.create ~mem_capacity:0 ~dir ~disk_budget_bytes:70 () in
  Serve.Cache.store c "a" v;
  Unix.sleepf 0.02;
  Serve.Cache.store c "b" v;
  (* Reading [a] makes [b] the least-recently-used — a fact only the
     flushed index can carry across the restart (a's mtime is older). *)
  check bool "read refreshes a" true (Serve.Cache.find c "a" = Some v);
  Serve.Cache.flush c;
  check bool "index written" true
    (Sys.file_exists (Filename.concat dir "index.caqr"));
  let c2 = Serve.Cache.create ~mem_capacity:0 ~dir ~disk_budget_bytes:70 () in
  check bool "index consumed" false
    (Sys.file_exists (Filename.concat dir "index.caqr"));
  Serve.Cache.store c2 "c" v;
  check bool "stale-by-recency b evicted" true
    (Serve.Cache.find c2 "b" = None);
  check bool "read-refreshed a survives the restart" true
    (Serve.Cache.find c2 "a" = Some v)

(* ---- health verb ---- *)

let test_health_verb () =
  let t =
    server ~config:{ Serve.Server.default_config with max_inflight = 1 } ()
  in
  let r, stop = Serve.Server.handle_line t {|{"id":1,"op":"health"}|} in
  check bool "health does not stop the daemon" false stop;
  check bool "health ok" true (contains r "\"ok\":true");
  check bool "reports serving" true (contains r {|"status":"serving"|});
  check bool "reports uptime" true (contains r "\"uptime_s\"");
  check bool "reports in-flight" true (contains r "\"inflight\"");
  (* Liveness must stay observable under overload: health bypasses the
     admission gate exactly like stats. *)
  let gate = Serve.Server.gate t in
  check bool "slot taken" true (Guard.Gate.try_enter gate);
  let r2, _ = Serve.Server.handle_line t {|{"id":2,"op":"health"}|} in
  check bool "health bypasses the gate" true (contains r2 "\"ok\":true");
  Guard.Gate.leave gate;
  Serve.Server.drain t;
  check bool "drain flag raised" true (Serve.Server.draining t);
  let r3, _ = Serve.Server.handle_line t {|{"id":3,"op":"health"}|} in
  check bool "reports draining" true (contains r3 {|"status":"draining"|})

(* ---- hostile clients: stalls, partial frames, vanishing peers ---- *)

let raw_connect addr =
  let fd, sa =
    match addr with
    | T.Unix path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | T.Tcp (host, port) ->
      ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
        Unix.ADDR_INET (Unix.inet_addr_of_string host, port) )
  in
  Unix.connect fd sa;
  fd

let raw_send fd s =
  try ignore (Unix.write_substring fd s 0 (String.length s))
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

(* Everything the server sends until it closes or [timeout_s] passes. *)
let raw_drain ?(timeout_s = 3.0) fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left > 0. then
      match Unix.select [ fd ] [] [] left with
      | [ _ ], _, _ ->
        let n =
          try Unix.read fd chunk 0 4096 with Unix.Unix_error _ -> 0
        in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        end
      | _ -> ()
  in
  go ();
  Buffer.contents buf

(* Half a frame for each framing: a line with no newline, or a length
   prefix cut in two. *)
let half_frame = function
  | T.Unix _ -> {|{"id":1,"op":"comp|}
  | T.Tcp _ -> "\x00\x00"

(* A slow-loris peer holds half a frame past the connection deadline.
   The daemon must answer it with a structured request.timeout and close
   — while a healthy client connecting DURING the stall is served
   normally (the staller occupies one handler domain, not the daemon). *)
let slow_client_contained addr =
  let _t, daemon, addr =
    run_daemon
      {
        Serve.Server.default_config with
        addr;
        conn_timeout_ms = Some 400;
        handler_domains = 2;
      }
  in
  let fd = raw_connect addr in
  raw_send fd (half_frame addr);
  (match
     Serve.Client.call ~addr ~timeout_s:60.
       [ {|{"id":2,"op":"compile","bench":"BV_10"}|} ]
   with
  | [ r ] ->
    check bool "healthy client served during the stall" true
      (contains r "\"ok\":true")
  | other -> Alcotest.failf "expected 1 response, got %d" (List.length other));
  let observed = raw_drain fd in
  Unix.close fd;
  check bool "stall answered with a structured timeout" true
    (contains observed "request.timeout");
  check bool "timeout marked recoverable" true
    (contains observed "\"recoverable\":true");
  check bool "timeouts counted" true
    (Obs.Metrics.count "serve.conn.timeout" >= 1);
  shutdown_daemon ~addr daemon

let test_slow_client_unix () =
  let dir = fresh_dir "loris" in
  slow_client_contained (T.Unix (Filename.concat dir "caqr.sock"))

let test_slow_client_tcp () = slow_client_contained (T.Tcp ("127.0.0.1", 0))

(* A peer that sends one complete request plus a fragment of a second,
   then vanishes. The daemon must absorb the dead connection and keep
   serving fresh ones. *)
let mid_batch_disconnect addr =
  let _t, daemon, addr =
    run_daemon
      { Serve.Server.default_config with addr; handler_domains = 2 }
  in
  let whole = {|{"id":7,"op":"compile","bench":"BV_10"}|} in
  let fd = raw_connect addr in
  raw_send fd
    (T.encode ~framing:(T.framing_of_addr addr) whole
    ^ half_frame addr);
  Unix.close fd;
  (match
     Serve.Client.call_retry ~addr ~timeout_s:60.
       [ {|{"id":8,"op":"compile","bench":"BV_10"}|} ]
   with
  | [ r ] ->
    check bool "daemon survives a vanished peer" true
      (contains r "\"ok\":true")
  | other -> Alcotest.failf "expected 1 response, got %d" (List.length other));
  shutdown_daemon ~addr daemon

let test_mid_batch_disconnect_unix () =
  let dir = fresh_dir "vanish" in
  mid_batch_disconnect (T.Unix (Filename.concat dir "caqr.sock"))

let test_mid_batch_disconnect_tcp () =
  mid_batch_disconnect (T.Tcp ("127.0.0.1", 0))

(* ---- draining shutdown ---- *)

let test_drain_flushes_and_exits () =
  let dir = fresh_dir "drain" in
  let sock = Filename.concat dir "caqr.sock" in
  let cache = Filename.concat dir "cache" in
  let t, daemon, addr =
    run_daemon
      {
        Serve.Server.default_config with
        addr = T.Unix sock;
        cache_dir = Some cache;
      }
  in
  (* Populate the disk tier so the drain has an LRU order to persist. *)
  (match
     Serve.Client.call_retry ~addr
       [ {|{"id":1,"op":"compile","bench":"BV_10"}|} ]
   with
  | [ r ] -> check bool "compile before drain" true (contains r "\"ok\":true")
  | _ -> Alcotest.fail "expected 1 response");
  Serve.Server.drain t;
  (* run returns on its own: no shutdown verb, just the drain. *)
  Domain.join daemon;
  check bool "socket removed" false (Sys.file_exists sock);
  check bool "cache index flushed on drain" true
    (Sys.file_exists (Filename.concat cache "index.caqr"));
  check bool "new connections refused after drain" true
    (match Serve.Client.call ~addr [ {|{"op":"stats"}|} ] with
    | exception Unix.Unix_error _ -> true
    | exception Failure _ -> true
    | _ -> false)

(* The real signal path: SIGTERM lands on the process, the handler the
   daemon installed raises the drain flag, and run returns cleanly. *)
let test_sigterm_drains () =
  let dir = fresh_dir "sigterm" in
  let t, daemon, addr =
    run_daemon
      { Serve.Server.default_config with addr = T.Unix (Filename.concat dir "caqr.sock") }
  in
  (match Serve.Client.call_retry ~addr [ {|{"op":"health"}|} ] with
  | [ r ] -> check bool "daemon up before the signal" true (contains r "\"ok\":true")
  | _ -> Alcotest.fail "expected 1 response");
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Domain.join daemon;
  check bool "signal raised the drain flag" true (Serve.Server.draining t)

(* ---- stale Unix sockets ---- *)

let test_stale_socket_reclaimed () =
  let dir = fresh_dir "stale" in
  let path = Filename.concat dir "stale.sock" in
  (* Simulate a crashed daemon: the socket file exists, nobody listens. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.close fd;
  check bool "stale file present" true (Sys.file_exists path);
  let before = Obs.Metrics.count "serve.socket.reclaimed" in
  let l = T.bind (T.Unix path) in
  check int "reclaim counted" (before + 1)
    (Obs.Metrics.count "serve.socket.reclaimed");
  (* The rebound listener actually works. *)
  let client = Domain.spawn (fun () ->
      let fd = raw_connect (T.Unix path) in
      Unix.close fd)
  in
  (match T.accept ~timeout_s:5.0 l with
  | Some conn -> T.close conn
  | None -> Alcotest.fail "rebound listener never accepted");
  Domain.join client;
  T.close_listener l;
  T.close_listener l;
  (* idempotent *)
  check bool "path unlinked on close" false (Sys.file_exists path)

let test_live_socket_not_reclaimed () =
  let dir = fresh_dir "live" in
  let path = Filename.concat dir "live.sock" in
  let l = T.bind (T.Unix path) in
  (match T.bind (T.Unix path) with
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ()
  | l2 ->
    T.close_listener l2;
    Alcotest.fail "binding over a live daemon must fail");
  T.close_listener l

(* ---- client backoff ---- *)

let test_backoff_deterministic () =
  let a = Serve.Client.backoff_delays ~seed:5 8 in
  let b = Serve.Client.backoff_delays ~seed:5 8 in
  check (Alcotest.list (Alcotest.float 0.)) "same seed, same schedule" a b;
  check bool "different seed, different jitter" true
    (a <> Serve.Client.backoff_delays ~seed:6 8);
  List.iteri
    (fun k d ->
      let ceiling = Float.min 0.3 (0.02 *. (2. ** float_of_int k)) in
      check bool "delay inside the equal-jitter band" true
        (d >= (ceiling /. 2.) -. 1e-9 && d <= ceiling +. 1e-9))
    a

(* ---- wire-level chaos campaigns ---- *)

let wire_campaign transport () =
  let s = Wirefuzz.selftest ~seed:11 ~cases:100 ~transport () in
  check int "campaign ran every case" 100 s.Wirefuzz.cases;
  List.iter
    (fun (f : Wirefuzz.failure) ->
      Alcotest.failf "case %d (%s) broke a wire promise: %s"
        f.Wirefuzz.case_index
        (Wirefuzz.attack_name f.Wirefuzz.attack)
        f.Wirefuzz.message)
    s.Wirefuzz.failures

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "digest",
        [
          Alcotest.test_case "invariance" `Quick test_digest_invariance;
          Alcotest.test_case "sensitivity" `Quick test_digest_sensitivity;
          Alcotest.test_case "golden artifacts distinct" `Quick
            test_digest_golden_distinct;
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "semantic fields only" `Quick test_fingerprint ] );
      ( "protocol",
        [
          Alcotest.test_case "defaults" `Quick test_protocol_defaults;
          Alcotest.test_case "rejects" `Quick test_protocol_rejects;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key" `Quick test_cache_key;
          Alcotest.test_case "memory tier" `Quick test_cache_memory_tier;
          Alcotest.test_case "lru recency" `Quick test_cache_lru;
          Alcotest.test_case "lru bound under random stream" `Quick
            test_cache_lru_bound_random;
          Alcotest.test_case "disk tier" `Quick test_cache_disk_tier;
          Alcotest.test_case "crash safety" `Quick test_cache_crash_safety;
          Alcotest.test_case "disk budget evicts lru" `Quick
            test_cache_disk_budget;
          Alcotest.test_case "disk budget survives restart" `Quick
            test_cache_disk_budget_restart;
          Alcotest.test_case "flushed index preserves read recency" `Quick
            test_cache_index_preserves_read_recency;
        ] );
      ( "transport",
        [
          Alcotest.test_case "addr grammar" `Quick test_addr_grammar;
          Alcotest.test_case "tcp framing roundtrip" `Quick
            test_tcp_framing_roundtrip;
          Alcotest.test_case "newline framing rejects newline" `Quick
            test_newline_framing_rejects_embedded_newline;
          Alcotest.test_case "stale unix socket reclaimed" `Quick
            test_stale_socket_reclaimed;
          Alcotest.test_case "live unix socket not reclaimed" `Quick
            test_live_socket_not_reclaimed;
        ] );
      ( "handler",
        [
          Alcotest.test_case "cache hit is byte-identical" `Quick
            test_handler_cache_hit_byte_identical;
          Alcotest.test_case "no_cache bypass" `Quick test_handler_no_cache;
          Alcotest.test_case "per-strategy cache lines" `Quick
            test_handler_strategy_cache_lines;
          Alcotest.test_case "deadline trips, daemon survives" `Quick
            test_handler_deadline_keeps_serving;
          Alcotest.test_case "admission and structured errors" `Quick
            test_handler_admission_and_errors;
          Alcotest.test_case "deadline clamped by cap" `Quick
            test_handler_deadline_clamped;
          Alcotest.test_case "verify and simulate" `Quick
            test_handler_verify_and_simulate;
          Alcotest.test_case "inline qasm3 content addressing" `Quick
            test_handler_qasm3_input;
          Alcotest.test_case "stats and shutdown" `Quick
            test_handler_stats_and_shutdown;
          Alcotest.test_case "batch keeps order" `Quick test_handler_batch_order;
          Alcotest.test_case "overload rejection" `Quick
            test_overload_rejection;
          Alcotest.test_case "protocol versioning" `Quick
            test_proto_versioning;
          Alcotest.test_case "health verb" `Quick test_health_verb;
        ] );
      ( "socket",
        [
          Alcotest.test_case "unix end to end" `Quick test_socket_end_to_end;
          Alcotest.test_case "tcp end to end" `Quick test_tcp_end_to_end;
          Alcotest.test_case "4 concurrent clients (unix)" `Quick
            test_concurrent_clients_unix;
          Alcotest.test_case "4 concurrent clients (tcp)" `Quick
            test_concurrent_clients_tcp;
        ] );
      ( "survival",
        [
          Alcotest.test_case "slow client contained (unix)" `Quick
            test_slow_client_unix;
          Alcotest.test_case "slow client contained (tcp)" `Quick
            test_slow_client_tcp;
          Alcotest.test_case "mid-batch disconnect (unix)" `Quick
            test_mid_batch_disconnect_unix;
          Alcotest.test_case "mid-batch disconnect (tcp)" `Quick
            test_mid_batch_disconnect_tcp;
          Alcotest.test_case "drain flushes and exits" `Quick
            test_drain_flushes_and_exits;
          Alcotest.test_case "sigterm drains" `Quick test_sigterm_drains;
          Alcotest.test_case "backoff schedule deterministic" `Quick
            test_backoff_deterministic;
          Alcotest.test_case "wire chaos campaign (unix)" `Slow
            (wire_campaign `Unix);
          Alcotest.test_case "wire chaos campaign (tcp)" `Slow
            (wire_campaign `Tcp);
        ] );
    ]
