(* Unit tests for the GidNET chain-extraction engine: hand-computed
   widths, chain accounting, determinism, certificate validity, and the
   width-never-exceeds-baseline property over generated circuits. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module B = Quantum.Circuit.Builder

let width_of c = Caqr.Gidnet_caqr.(run c).width

let certify ~original pairs =
  let claimed =
    List.map
      (fun (p : Caqr.Reuse.pair) ->
        { Verify.Structural.src = p.Caqr.Reuse.src; dst = p.Caqr.Reuse.dst })
      pairs
  in
  match Verify.Structural.check_pairs ~original claimed with
  | Verify.Verdict.Equivalent -> true
  | Verify.Verdict.Inequivalent x ->
    Printf.printf "pair certificate refuted: %s\n%!" x.Verify.Verdict.detail;
    false
  | Verify.Verdict.Inconclusive why ->
    Printf.printf "pair certificate inconclusive: %s\n%!" why;
    false

(* Same hand computation as the cone suite: GHZ_3's only candidate pair
   is (0, 2), one fold, width 2. *)
let test_ghz3_width () =
  let r = Caqr.Gidnet_caqr.run (Benchmarks.Extra.ghz 3) in
  check int "GHZ_3 -> 2 wires" 2 r.Caqr.Gidnet_caqr.width;
  check int "one fold" 1 (List.length r.Caqr.Gidnet_caqr.pairs)

(* BV is the chain engine's best case: the candidate graph over the data
   qubits is complete (they never interact), so one chain folds them all
   onto a single wire. n-1 data qubits + target = width 2, with the
   n-2 folds ideally committed as a single chain. *)
let test_bv_min_is_two () =
  List.iter
    (fun n ->
      check int (Printf.sprintf "BV_%d -> 2" n) 2
        (width_of (Benchmarks.Bv.circuit n)))
    [ 3; 5; 10 ]

let test_bv_single_chain () =
  let r = Caqr.Gidnet_caqr.run (Benchmarks.Bv.circuit 8) in
  check int "one chain suffices for BV_8" 1
    (List.length r.Caqr.Gidnet_caqr.chains)

let test_dynamic_ping_width_one () =
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.h b 0;
  B.measure b 0 0;
  B.if_x b 0 1;
  B.measure b 1 1;
  let c = B.build b in
  let r = Caqr.Gidnet_caqr.run c in
  check int "dynamic ping -> 1 wire" 1 r.Caqr.Gidnet_caqr.width;
  check bool "certificate revalidates" true
    (certify ~original:c r.Caqr.Gidnet_caqr.pairs)

let test_teleport_skeleton_irreducible () =
  let b = B.create ~num_qubits:3 ~num_clbits:3 in
  B.h b 1;
  B.cx b 1 2;
  B.cx b 0 1;
  B.h b 0;
  B.measure b 0 0;
  B.measure b 1 1;
  B.if_x b 1 2;
  B.measure b 2 2;
  let r = Caqr.Gidnet_caqr.run (B.build b) in
  check int "teleport skeleton stays at 3" 3 r.Caqr.Gidnet_caqr.width;
  check int "no chains" 0 (List.length r.Caqr.Gidnet_caqr.chains)

let test_deterministic () =
  let c = Benchmarks.Revlib.multiply_13 () in
  let qasm r = Quantum.Qasm.to_string r.Caqr.Gidnet_caqr.circuit in
  let a = Caqr.Gidnet_caqr.run c and b = Caqr.Gidnet_caqr.run c in
  check Alcotest.string "same circuit bytes" (qasm a) (qasm b);
  check bool "same chains" true
    (a.Caqr.Gidnet_caqr.chains = b.Caqr.Gidnet_caqr.chains)

(* Chain accounting: every committed chain is host + at least one folded
   qubit, no qubit appears in two chains, and the folds sum to exactly
   the pair count (each link is one splice). *)
let test_chain_accounting () =
  List.iter
    (fun (e : Benchmarks.Suite.entry) ->
      let r = Caqr.Gidnet_caqr.run e.Benchmarks.Suite.circuit in
      let chains = r.Caqr.Gidnet_caqr.chains in
      List.iter
        (fun ch ->
          check bool
            (e.Benchmarks.Suite.name ^ " chain has a link")
            true
            (List.length ch >= 2))
        chains;
      let members = List.concat chains in
      check int
        (e.Benchmarks.Suite.name ^ " chains are disjoint")
        (List.length members)
        (List.length (List.sort_uniq compare members));
      check int
        (e.Benchmarks.Suite.name ^ " folds = pairs")
        (List.length r.Caqr.Gidnet_caqr.pairs)
        (List.fold_left (fun acc ch -> acc + List.length ch - 1) 0 chains))
    (Benchmarks.Suite.regular ())

let test_regular_benchmarks_certify () =
  List.iter
    (fun (e : Benchmarks.Suite.entry) ->
      let c = e.Benchmarks.Suite.circuit in
      let r = Caqr.Gidnet_caqr.run c in
      check int
        (e.Benchmarks.Suite.name ^ " width claim")
        (Caqr.Reuse.qubit_usage r.Caqr.Gidnet_caqr.circuit)
        r.Caqr.Gidnet_caqr.width;
      check bool
        (e.Benchmarks.Suite.name ^ " certificate")
        true
        (certify ~original:c r.Caqr.Gidnet_caqr.pairs))
    (Benchmarks.Suite.regular ())

let prop_width_le_baseline =
  QCheck.Test.make ~name:"gidnet width <= baseline" ~count:100
    QCheck.(int_bound 10_000)
    (fun seed ->
      let c = Fuzz.Gen.circuit Fuzz.Gen.default (Fuzz.Prng.make seed) in
      let r = Caqr.Gidnet_caqr.run c in
      r.Caqr.Gidnet_caqr.width <= Caqr.Reuse.qubit_usage c)

let () =
  Alcotest.run "gidnet_caqr"
    [
      ( "widths",
        [
          Alcotest.test_case "ghz3" `Quick test_ghz3_width;
          Alcotest.test_case "bv min 2" `Quick test_bv_min_is_two;
          Alcotest.test_case "bv single chain" `Quick test_bv_single_chain;
          Alcotest.test_case "dynamic ping" `Quick test_dynamic_ping_width_one;
          Alcotest.test_case "teleport skeleton" `Quick
            test_teleport_skeleton_irreducible;
        ] );
      ( "structure",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "chain accounting" `Slow test_chain_accounting;
          Alcotest.test_case "all regular certify" `Slow
            test_regular_benchmarks_certify;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_width_le_baseline ] );
    ]
