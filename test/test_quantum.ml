(* Unit tests for the circuit IR: gates, circuits, DAG, reachability,
   durations, QASM export, drawing. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module G = Quantum.Gate
module C = Quantum.Circuit
module B = Quantum.Circuit.Builder

let bv3 () =
  (* 3-qubit BV: data q0,q1; ancilla q2. *)
  let b = B.create ~num_qubits:3 ~num_clbits:2 in
  B.h b 0;
  B.h b 1;
  B.x b 2;
  B.h b 2;
  B.cx b 0 2;
  B.cx b 1 2;
  B.h b 0;
  B.h b 1;
  B.measure b 0 0;
  B.measure b 1 1;
  B.build b

(* ---- Gate ---- *)

let test_gate_qubits () =
  check (Alcotest.list int) "cx" [ 0; 2 ] (G.qubits (G.Cx (0, 2)));
  check (Alcotest.list int) "one q" [ 1 ] (G.qubits (G.One_q (G.H, 1)));
  check (Alcotest.list int) "measure" [ 3 ] (G.qubits (G.Measure (3, 0)));
  check (Alcotest.list int) "if_x" [ 2 ] (G.qubits (G.If_x (0, 2)));
  check (Alcotest.list int) "barrier" [ 0; 1 ] (G.qubits (G.Barrier [ 0; 1 ]))

let test_gate_clbits () =
  check (Alcotest.list int) "measure clbit" [ 4 ] (G.clbits (G.Measure (0, 4)));
  check (Alcotest.list int) "if_x clbit" [ 2 ] (G.clbits (G.If_x (2, 0)));
  check (Alcotest.list int) "cx no clbits" [] (G.clbits (G.Cx (0, 1)))

let test_gate_classify () =
  check bool "cx is 2q" true (G.is_two_q (G.Cx (0, 1)));
  check bool "rzz is 2q" true (G.is_two_q (G.Rzz (0.1, 0, 1)));
  check bool "h not 2q" false (G.is_two_q (G.One_q (G.H, 0)));
  check bool "measure dynamic" true (G.is_dynamic (G.Measure (0, 0)));
  check bool "if_x dynamic" true (G.is_dynamic (G.If_x (0, 0)));
  check bool "reset dynamic" true (G.is_dynamic (G.Reset 0));
  check bool "cx not dynamic" false (G.is_dynamic (G.Cx (0, 1)))

let test_map_qubits () =
  let k = G.map_qubits (fun q -> q + 10) (G.Cx (0, 1)) in
  check (Alcotest.list int) "renamed" [ 10; 11 ] (G.qubits k);
  let m = G.map_qubits (fun q -> q + 1) (G.Measure (0, 5)) in
  check (Alcotest.list int) "clbit kept" [ 5 ] (G.clbits m)

let test_map_qubits_barrier_dedup () =
  (* A non-injective rename (the reuse transform rewiring dst onto src)
     must not leave duplicate wires in a barrier: a duplicate reads as a
     self-dependence when the DAG is rebuilt. *)
  let k =
    G.map_qubits (fun q -> if q = 3 then 1 else q) (G.Barrier [ 0; 1; 3; 5 ])
  in
  check (Alcotest.list int) "deduped" [ 0; 1; 5 ] (G.qubits k)

let test_commutes_disjoint () =
  check bool "disjoint" true (G.commutes (G.Cx (0, 1)) (G.Cx (2, 3)))

let test_commutes_diagonal () =
  check bool "rzz share qubit" true
    (G.commutes (G.Rzz (0.3, 0, 1)) (G.Rzz (0.3, 1, 2)));
  check bool "cz rz" true (G.commutes (G.Cz (0, 1)) (G.One_q (G.Rz 0.1, 1)))

let test_commutes_negative () =
  check bool "h vs cx sharing" false
    (G.commutes (G.One_q (G.H, 0)) (G.Cx (0, 1)));
  check bool "cx chain" false (G.commutes (G.Cx (0, 1)) (G.Cx (1, 2)))

let test_commutes_cx_shared_control () =
  check bool "shared control" true (G.commutes (G.Cx (0, 1)) (G.Cx (0, 2)));
  check bool "shared target" true (G.commutes (G.Cx (0, 2)) (G.Cx (1, 2)))

(* ---- Circuit ---- *)

let test_circuit_counts () =
  let c = bv3 () in
  check int "gate count" 10 (C.gate_count c);
  check int "two q" 2 (C.two_q_count c);
  check int "no swaps" 0 (C.swap_count c);
  check (Alcotest.list int) "active" [ 0; 1; 2 ] (C.active_qubits c)

let test_circuit_depth () =
  let c = bv3 () in
  (* Ancilla wire: x, h, cx, cx -> depth at least 4; data wires h, cx, h,
     measure. Critical path: x h cx cx = 4 then nothing; q1: h cx(4th) h m = 5? *)
  check bool "depth sane" true (C.depth c >= 5)

let test_depth_ignores_barrier () =
  let b = B.create ~num_qubits:2 ~num_clbits:0 in
  B.h b 0;
  B.barrier b [ 0; 1 ];
  B.h b 1;
  let c = B.build b in
  check int "barrier free depth" 1 (C.depth c)

let test_clbit_serializes () =
  (* If_x must wait for the measure writing its clbit even on another
     qubit: wire-level dependency through c0. *)
  let b = B.create ~num_qubits:2 ~num_clbits:1 in
  B.measure b 0 0;
  B.if_x b 0 1;
  let c = B.build b in
  check int "sequential depth" 2 (C.depth c)

let test_duration_model () =
  let m = Quantum.Duration.default in
  check bool "measure+reset slower than measure+condx" true
    (Quantum.Duration.measure_reset_builtin m
    > Quantum.Duration.measure_cond_x m);
  (* Fig. 2: conditional reset roughly halves the turnaround. *)
  let ratio =
    float_of_int (Quantum.Duration.measure_reset_builtin m)
    /. float_of_int (Quantum.Duration.measure_cond_x m)
  in
  check bool "about 2x" true (ratio > 1.8 && ratio < 2.2)

let test_circuit_duration () =
  let b = B.create ~num_qubits:2 ~num_clbits:0 in
  B.h b 0;
  B.cx b 0 1;
  let c = B.build b in
  let m = Quantum.Duration.default in
  check int "serial h + cx" (m.Quantum.Duration.one_q + m.Quantum.Duration.cx)
    (C.duration m c)

let test_interaction_graph () =
  let c = bv3 () in
  let g = C.interaction_graph c in
  check bool "0-2" true (Galg.Graph.has_edge g 0 2);
  check bool "1-2" true (Galg.Graph.has_edge g 1 2);
  check bool "0-1 absent" false (Galg.Graph.has_edge g 0 1)

let test_map_qubits_circuit () =
  let c = bv3 () in
  let c' = C.map_qubits ~num_qubits:5 (fun q -> q + 2) c in
  check (Alcotest.list int) "shifted" [ 2; 3; 4 ] (C.active_qubits c')

let test_compact () =
  let c = bv3 () in
  let wide = C.map_qubits ~num_qubits:10 (fun q -> q * 3) c in
  let compacted, remap = C.compact_qubits wide in
  check int "3 wires" 3 compacted.C.num_qubits;
  check int "wire 0 stays" 0 remap.(0);
  check int "wire 3 -> 1" 1 remap.(3);
  check int "unused dropped" (-1) remap.(1)

let test_append () =
  let c = bv3 () in
  let c2 = C.append c c in
  check int "doubled" 20 (C.gate_count c2)

let test_append_width_mismatch () =
  let a = C.empty ~num_qubits:2 ~num_clbits:0 in
  let b = C.empty ~num_qubits:3 ~num_clbits:0 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Circuit.append: width mismatch")
    (fun () -> ignore (C.append a b))

let test_measure_all () =
  let b = B.create ~num_qubits:3 ~num_clbits:0 in
  B.h b 0;
  B.cx b 0 2;
  let c = C.measure_all (B.build b) in
  let measures =
    Array.to_list c.C.gates
    |> List.filter (fun g -> match g.G.kind with G.Measure _ -> true | _ -> false)
  in
  check int "active qubits measured" 2 (List.length measures)

let test_mid_circuit_measurements () =
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.h b 0;
  B.measure b 0 0;
  B.if_x b 0 0;
  B.h b 0;
  B.measure b 0 1;
  let c = B.build b in
  check int "one mid-circuit measure" 1 (C.mid_circuit_measurements c);
  check int "bv3 has none" 0 (C.mid_circuit_measurements (bv3 ()))

let test_builder_range_check () =
  let b = B.create ~num_qubits:2 ~num_clbits:1 in
  Alcotest.check_raises "bad qubit"
    (Invalid_argument "Circuit: classical bit out of range") (fun () ->
      B.measure b 0 5)

(* ---- DAG ---- *)

let test_dag_structure () =
  let c = bv3 () in
  let dag = Quantum.Dag.build c in
  check int "node per gate" (C.gate_count c) (Quantum.Dag.num_nodes dag);
  (* First gates have no preds. *)
  check (Alcotest.list int) "h q0 frontier"
    [ 0; 1; 2 ]
    (List.filteri (fun i _ -> i < 3) (Quantum.Dag.frontier dag))

let test_dag_edges_follow_wires () =
  let b = B.create ~num_qubits:2 ~num_clbits:0 in
  B.h b 0;
  B.cx b 0 1;
  B.h b 1;
  let dag = Quantum.Dag.build (B.build b) in
  check (Alcotest.list int) "h0 -> cx" [ 1 ] (Quantum.Dag.succs dag 0);
  check (Alcotest.list int) "cx -> h1" [ 2 ] (Quantum.Dag.succs dag 1);
  check int "cx indeg" 1 (Quantum.Dag.in_degree dag 1)

let test_dag_longest_path () =
  let c = bv3 () in
  let dag = Quantum.Dag.build c in
  check int "unit longest path = depth" (C.depth c)
    (Quantum.Dag.longest_path ~weight:(fun _ -> 1) dag)

let test_dag_critical_nodes () =
  let b = B.create ~num_qubits:3 ~num_clbits:0 in
  B.h b 0 (* off critical path *);
  B.cx b 1 2;
  B.cx b 1 2;
  B.cx b 1 2;
  let dag = Quantum.Dag.build (B.build b) in
  let crit = Quantum.Dag.critical_nodes ~weight:(fun _ -> 1) dag in
  check bool "h not critical" false crit.(0);
  check bool "cx critical" true crit.(1)

(* ---- Dag.of_parts validation ---- *)

(* A small circuit plus the exact parts [Dag.build] would derive, so each
   test can corrupt one piece and expect [of_parts] to reject it. *)
let of_parts_fixture () =
  let b = B.create ~num_qubits:2 ~num_clbits:1 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 1 0;
  let c = B.build b in
  (* h0 -> cx01 -> measure1 *)
  let preds = [| []; [ 0 ]; [ 1 ] |] in
  let succs = [| [ 1 ]; [ 2 ]; [] |] in
  let on_qubit = [| [ 0; 1 ]; [ 1; 2 ] |] in
  (c, preds, succs, on_qubit)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_of_parts_accepts_valid () =
  let c, preds, succs, on_qubit = of_parts_fixture () in
  let dag = Quantum.Dag.of_parts c ~preds ~succs ~on_qubit in
  check (Alcotest.list int) "preds kept" [ 1 ] (Quantum.Dag.preds dag 2);
  check (Alcotest.list int) "wire kept" [ 1; 2 ]
    (Quantum.Dag.gates_on_qubit dag 1)

let test_of_parts_duplicate_ids () =
  let c, preds, succs, on_qubit = of_parts_fixture () in
  let succs = Array.copy succs in
  succs.(0) <- [ 1; 1 ];
  expect_invalid "duplicate succ" (fun () ->
      Quantum.Dag.of_parts c ~preds ~succs ~on_qubit)

let test_of_parts_dangling_edge () =
  let c, preds, succs, on_qubit = of_parts_fixture () in
  let succs = Array.copy succs in
  succs.(2) <- [ 7 ];
  expect_invalid "dangling succ" (fun () ->
      Quantum.Dag.of_parts c ~preds ~succs ~on_qubit);
  let _, preds, succs, _ = of_parts_fixture () in
  let on_qubit = [| [ 0; 1 ]; [ 1; 9 ] |] in
  expect_invalid "dangling wire gate" (fun () ->
      Quantum.Dag.of_parts c ~preds ~succs ~on_qubit)

let test_of_parts_non_topological () =
  let c, preds, succs, on_qubit = of_parts_fixture () in
  (* Gates are stored in emission order, so a backward edge 2 -> 1 (or a
     pred pointing forward) cannot describe any build output. *)
  let preds = Array.copy preds and succs = Array.copy succs in
  preds.(1) <- [ 2 ];
  succs.(2) <- [ 1 ];
  expect_invalid "backward edge" (fun () ->
      Quantum.Dag.of_parts c ~preds ~succs ~on_qubit)

let test_of_parts_unmirrored () =
  let c, preds, _, on_qubit = of_parts_fixture () in
  let succs = [| [ 1 ]; [] ; [] |] in
  (* preds.(2) still lists 1, succs.(1) no longer does. *)
  expect_invalid "unmirrored" (fun () ->
      Quantum.Dag.of_parts c ~preds ~succs ~on_qubit)

let test_of_parts_bad_shapes () =
  let c, preds, succs, on_qubit = of_parts_fixture () in
  expect_invalid "short preds" (fun () ->
      Quantum.Dag.of_parts c ~preds:[| []; [ 0 ] |] ~succs ~on_qubit);
  expect_invalid "wrong wire count" (fun () ->
      Quantum.Dag.of_parts c ~preds ~succs ~on_qubit:[| [ 0; 1 ] |]);
  expect_invalid "wire out of order" (fun () ->
      Quantum.Dag.of_parts c ~preds ~succs ~on_qubit:[| [ 1; 0 ]; [ 1; 2 ] |]);
  expect_invalid "wire lists foreign gate" (fun () ->
      Quantum.Dag.of_parts c ~preds ~succs ~on_qubit:[| [ 0; 1 ]; [ 0; 2 ] |])

let test_of_parts_unchecked_keeps_length_checks () =
  let c, preds, succs, on_qubit = of_parts_fixture () in
  (* ~check:false skips only the per-edge scans; the O(1) array-length
     checks stay on even for hot callers. *)
  let dag = Quantum.Dag.of_parts ~check:false c ~preds ~succs ~on_qubit in
  check (Alcotest.list int) "preds kept" [ 1 ] (Quantum.Dag.preds dag 2);
  expect_invalid "short preds still rejected" (fun () ->
      Quantum.Dag.of_parts ~check:false c ~preds:[| []; [ 0 ] |] ~succs
        ~on_qubit);
  expect_invalid "wrong wire count still rejected" (fun () ->
      Quantum.Dag.of_parts ~check:false c ~preds ~succs
        ~on_qubit:[| [ 0; 1 ] |])

let test_gates_on_qubit () =
  let c = bv3 () in
  let dag = Quantum.Dag.build c in
  check int "q2 gates" 4 (List.length (Quantum.Dag.gates_on_qubit dag 2));
  check int "q0 gates" 4 (List.length (Quantum.Dag.gates_on_qubit dag 0))

(* ---- Reachability ---- *)

let test_reachability_transitive () =
  let b = B.create ~num_qubits:3 ~num_clbits:0 in
  B.cx b 0 1;
  B.cx b 1 2;
  B.h b 2;
  let dag = Quantum.Dag.build (B.build b) in
  let r = Quantum.Reachability.build dag in
  check bool "0 -> 2 transitively" true (Quantum.Reachability.reaches r 0 2);
  check bool "reflexive" true (Quantum.Reachability.reaches r 1 1);
  check bool "no back edge" false (Quantum.Reachability.reaches r 2 0)

let test_reachability_any_path () =
  let b = B.create ~num_qubits:4 ~num_clbits:0 in
  B.cx b 0 1;
  B.cx b 2 3;
  let dag = Quantum.Dag.build (B.build b) in
  let r = Quantum.Reachability.build dag in
  check bool "disjoint components" false
    (Quantum.Reachability.any_path r [ 0 ] [ 1 ]);
  check bool "self component" true (Quantum.Reachability.any_path r [ 0 ] [ 0 ])

(* ---- QASM & drawing ---- *)

let test_qasm_output () =
  let s = Quantum.Qasm.to_string (bv3 ()) in
  check bool "header" true
    (String.length s > 0 && String.sub s 0 12 = "OPENQASM 3.0");
  let has needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check bool "has cx" true (has "cx q[0], q[2]");
  check bool "has measure" true (has "c[0] = measure q[0]")

let test_qasm_dynamic_ops () =
  let b = B.create ~num_qubits:1 ~num_clbits:1 in
  B.measure b 0 0;
  B.if_x b 0 0;
  let s = Quantum.Qasm.to_string (B.build b) in
  let has needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check bool "if statement" true (has "if (c[0]) x q[0]")

let test_draw_rows () =
  let s = Quantum.Draw.to_string (bv3 ()) in
  let rows = String.split_on_char '\n' s |> List.filter (fun r -> r <> "") in
  check int "one row per qubit" 3 (List.length rows)

let () =
  Alcotest.run "quantum"
    [
      ( "gate",
        [
          Alcotest.test_case "qubits" `Quick test_gate_qubits;
          Alcotest.test_case "clbits" `Quick test_gate_clbits;
          Alcotest.test_case "classification" `Quick test_gate_classify;
          Alcotest.test_case "map qubits" `Quick test_map_qubits;
          Alcotest.test_case "barrier rename dedups" `Quick
            test_map_qubits_barrier_dedup;
          Alcotest.test_case "commutes disjoint" `Quick test_commutes_disjoint;
          Alcotest.test_case "commutes diagonal" `Quick test_commutes_diagonal;
          Alcotest.test_case "commutes negative" `Quick test_commutes_negative;
          Alcotest.test_case "cx shared operands" `Quick test_commutes_cx_shared_control;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "counts" `Quick test_circuit_counts;
          Alcotest.test_case "depth" `Quick test_circuit_depth;
          Alcotest.test_case "barrier depth" `Quick test_depth_ignores_barrier;
          Alcotest.test_case "clbit serializes" `Quick test_clbit_serializes;
          Alcotest.test_case "duration model" `Quick test_duration_model;
          Alcotest.test_case "circuit duration" `Quick test_circuit_duration;
          Alcotest.test_case "interaction graph" `Quick test_interaction_graph;
          Alcotest.test_case "map qubits" `Quick test_map_qubits_circuit;
          Alcotest.test_case "compact" `Quick test_compact;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "append mismatch" `Quick test_append_width_mismatch;
          Alcotest.test_case "measure all" `Quick test_measure_all;
          Alcotest.test_case "mid-circuit measures" `Quick test_mid_circuit_measurements;
          Alcotest.test_case "builder range check" `Quick test_builder_range_check;
        ] );
      ( "dag",
        [
          Alcotest.test_case "structure" `Quick test_dag_structure;
          Alcotest.test_case "wire edges" `Quick test_dag_edges_follow_wires;
          Alcotest.test_case "longest path" `Quick test_dag_longest_path;
          Alcotest.test_case "critical nodes" `Quick test_dag_critical_nodes;
          Alcotest.test_case "gates on qubit" `Quick test_gates_on_qubit;
          Alcotest.test_case "of_parts valid" `Quick test_of_parts_accepts_valid;
          Alcotest.test_case "of_parts duplicate ids" `Quick
            test_of_parts_duplicate_ids;
          Alcotest.test_case "of_parts dangling edge" `Quick
            test_of_parts_dangling_edge;
          Alcotest.test_case "of_parts non-topological" `Quick
            test_of_parts_non_topological;
          Alcotest.test_case "of_parts unmirrored" `Quick
            test_of_parts_unmirrored;
          Alcotest.test_case "of_parts bad shapes" `Quick
            test_of_parts_bad_shapes;
          Alcotest.test_case "of_parts unchecked shape" `Quick
            test_of_parts_unchecked_keeps_length_checks;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "transitive" `Quick test_reachability_transitive;
          Alcotest.test_case "any path" `Quick test_reachability_any_path;
        ] );
      ( "io",
        [
          Alcotest.test_case "qasm" `Quick test_qasm_output;
          Alcotest.test_case "qasm dynamic" `Quick test_qasm_dynamic_ops;
          Alcotest.test_case "draw" `Quick test_draw_rows;
        ] );
    ]
