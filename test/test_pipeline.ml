(* Unit tests for the user-facing pipeline and applicability detector. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mumbai = Hardware.Device.mumbai
let bv input_n = Caqr.Pipeline.Regular (Benchmarks.Bv.circuit input_n)

let test_baseline_no_reuse () =
  let r = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Baseline (bv 6) in
  check int "no pairs" 0 r.Caqr.Pipeline.reuse_pairs;
  check int "full usage" 6 r.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used

let test_max_reuse_minimizes () =
  let r = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Qs_max_reuse (bv 6) in
  check int "2 qubits" 2 r.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used;
  check bool "pairs recorded" true (r.Caqr.Pipeline.reuse_pairs > 0)

let test_min_depth_between () =
  let r = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Qs_min_depth (bv 8) in
  let u = r.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used in
  check bool "between min and max" true (u >= 2 && u <= 8)

let test_min_depth_no_worse_than_extremes () =
  let depth s =
    (Caqr.Pipeline.compile mumbai s (bv 8)).Caqr.Pipeline.stats
      .Transpiler.Transpile.depth
  in
  let dm = depth Caqr.Pipeline.Qs_min_depth in
  check bool "beats max reuse" true (dm <= depth Caqr.Pipeline.Qs_max_reuse);
  check bool "beats baseline" true (dm <= depth Caqr.Pipeline.Baseline)

let test_target_reachable () =
  let r = Caqr.Pipeline.compile mumbai (Caqr.Pipeline.Qs_target 4) (bv 8) in
  check bool "at most 4" true
    (r.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used <= 4)

let test_target_unreachable () =
  Alcotest.check_raises "cannot reach 1"
    (Failure "Pipeline.compile: cannot reach 1 qubits") (fun () ->
      ignore (Caqr.Pipeline.compile mumbai (Caqr.Pipeline.Qs_target 1) (bv 5)))

let test_sr_strategy () =
  let r = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Sr (bv 10) in
  check int "no swaps" 0 r.Caqr.Pipeline.stats.Transpiler.Transpile.swaps;
  check int "2 qubits" 2 r.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used

let test_commutable_input () =
  let g = Galg.Gen.random ~seed:8 8 ~density:0.3 in
  let input = Caqr.Pipeline.Commutable g in
  let base = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Baseline input in
  let maxr = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Qs_max_reuse input in
  check bool "reuse saves qubits" true
    (maxr.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used
    < base.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used)

let test_beneficial_positive () =
  let yes, why = Caqr.Pipeline.beneficial mumbai (bv 6) in
  check bool "bv benefits" true yes;
  check bool "explanation" true (String.length why > 0)

let test_beneficial_negative () =
  (* Complete 3-qubit interaction: no reuse. *)
  let b = Quantum.Circuit.Builder.create ~num_qubits:3 ~num_clbits:0 in
  Quantum.Circuit.Builder.cx b 0 1;
  Quantum.Circuit.Builder.cx b 1 2;
  Quantum.Circuit.Builder.cx b 0 2;
  let yes, _ =
    Caqr.Pipeline.beneficial mumbai
      (Caqr.Pipeline.Regular (Quantum.Circuit.Builder.build b))
  in
  check bool "no benefit" false yes

let test_beneficial_commutable () =
  let g = Galg.Gen.random ~seed:9 10 ~density:0.3 in
  let yes, _ = Caqr.Pipeline.beneficial mumbai (Caqr.Pipeline.Commutable g) in
  check bool "qaoa benefits" true yes

let test_strategy_names () =
  check bool "names distinct" true
    (List.length
       (List.sort_uniq compare
          (List.map Caqr.Pipeline.strategy_name
             [
               Caqr.Pipeline.Baseline;
               Caqr.Pipeline.Qs_max_reuse;
               Caqr.Pipeline.Qs_min_depth;
               Caqr.Pipeline.Qs_target 3;
               Caqr.Pipeline.Sr;
               Caqr.Pipeline.Cone;
               Caqr.Pipeline.Gidnet;
             ]))
    = 7)

let test_cone_strategy () =
  let r = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Cone (bv 10) in
  check int "2 qubits" 2 r.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used;
  check bool "pairs recorded" true (r.Caqr.Pipeline.reuse_pairs > 0)

let test_gidnet_strategy () =
  let r = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Gidnet (bv 10) in
  check int "2 qubits" 2 r.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used;
  check bool "pairs recorded" true (r.Caqr.Pipeline.reuse_pairs > 0)

(* The name grammar is the single strategy surface shared by the CLI and
   the service protocol: every named strategy, and the parameterized
   target spellings, must survive strategy_name -> strategy_of_name
   exactly. *)
let test_strategy_roundtrip () =
  check int "registry covers the named strategies" 7
    (List.length Caqr.Pipeline.all_strategies);
  List.iter
    (fun (name, s) ->
      (match Caqr.Pipeline.strategy_of_name name with
      | Ok s' -> check bool (name ^ " parses to its variant") true (s' = s)
      | Error e -> Alcotest.failf "%s rejected: %s" name e);
      check bool
        (name ^ " spelling is canonical")
        true
        (Caqr.Pipeline.strategy_name s = name))
    Caqr.Pipeline.all_strategies;
  List.iter
    (fun n ->
      let s = Caqr.Pipeline.Qs_target n in
      check bool
        (Printf.sprintf "qs-target-%d round-trips" n)
        true
        (Caqr.Pipeline.strategy_of_name (Caqr.Pipeline.strategy_name s) = Ok s))
    [ 1; 4; 17 ];
  check bool "bare int is target sugar" true
    (Caqr.Pipeline.strategy_of_name "6" = Ok (Caqr.Pipeline.Qs_target 6));
  match Caqr.Pipeline.strategy_of_name "qs-fastest" with
  | Ok _ -> Alcotest.fail "unknown strategy accepted"
  | Error e ->
    (* The rejection must teach the full grammar. *)
    List.iter
      (fun (name, _) ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        check bool ("error mentions " ^ name) true (contains e name))
      Caqr.Pipeline.all_strategies

let test_physical_semantics_end_to_end () =
  (* Whatever the strategy, the physical circuit must compute BV's secret. *)
  List.iter
    (fun s ->
      let r = Caqr.Pipeline.compile mumbai s (bv 6) in
      let d = Sim.Executor.run ~seed:7 ~shots:32 r.Caqr.Pipeline.physical in
      check int
        (Caqr.Pipeline.strategy_name s ^ " secret")
        32
        (Sim.Counts.get d (Benchmarks.Bv.expected_output 6)))
    [
      Caqr.Pipeline.Baseline;
      Caqr.Pipeline.Qs_max_reuse;
      Caqr.Pipeline.Qs_min_depth;
      Caqr.Pipeline.Sr;
      Caqr.Pipeline.Cone;
      Caqr.Pipeline.Gidnet;
    ]

let () =
  Alcotest.run "pipeline"
    [
      ( "strategies",
        [
          Alcotest.test_case "baseline" `Quick test_baseline_no_reuse;
          Alcotest.test_case "max reuse" `Quick test_max_reuse_minimizes;
          Alcotest.test_case "min depth range" `Quick test_min_depth_between;
          Alcotest.test_case "min depth optimal" `Quick test_min_depth_no_worse_than_extremes;
          Alcotest.test_case "target reachable" `Quick test_target_reachable;
          Alcotest.test_case "target unreachable" `Quick test_target_unreachable;
          Alcotest.test_case "sr" `Quick test_sr_strategy;
          Alcotest.test_case "cone" `Quick test_cone_strategy;
          Alcotest.test_case "gidnet" `Quick test_gidnet_strategy;
          Alcotest.test_case "commutable" `Quick test_commutable_input;
          Alcotest.test_case "names" `Quick test_strategy_names;
          Alcotest.test_case "name round-trip" `Quick test_strategy_roundtrip;
        ] );
      ( "applicability",
        [
          Alcotest.test_case "positive" `Quick test_beneficial_positive;
          Alcotest.test_case "negative" `Quick test_beneficial_negative;
          Alcotest.test_case "commutable" `Quick test_beneficial_commutable;
        ] );
      ( "semantics",
        [ Alcotest.test_case "end to end" `Slow test_physical_semantics_end_to_end ] );
    ]
