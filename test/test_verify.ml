(* Unit and property tests for the Verify translation-validation library:
   the three checkers in isolation, an injected compiler bug that at
   least two checkers must reject, and the suite-wide sweep asserting
   every strategy's output verifies against the untransformed input. *)

let check = Alcotest.check
let bool = Alcotest.bool

let mumbai = Hardware.Device.mumbai
let bv n = Benchmarks.Bv.circuit n

let is_equivalent = Verify.Verdict.is_equivalent
let is_inequivalent = Verify.Verdict.is_inequivalent

let inconclusive = function Verify.Inconclusive _ -> true | _ -> false

(* ------------------------------------------------------------- verdict *)

let test_verdict_combine () =
  let cex =
    { Verify.Verdict.outcome = 0; p_left = 0.; p_right = 1.; detail = "x" }
  in
  check bool "empty is equivalent" true
    (is_equivalent (Verify.Verdict.combine []));
  check bool "inequivalent dominates" true
    (is_inequivalent
       (Verify.Verdict.combine
          [ Verify.Equivalent; Verify.Inconclusive "n"; Verify.Inequivalent cex ]));
  check bool "inconclusive beats equivalent" true
    (inconclusive
       (Verify.Verdict.combine [ Verify.Equivalent; Verify.Inconclusive "n" ]))

(* --------------------------------------------------------------- equiv *)

let test_equiv_reflexive () =
  let c = bv 6 in
  check bool "bv6 = bv6" true
    (is_equivalent (Verify.Equiv.check ~original:c ~transformed:c ()))

let test_equiv_accepts_reuse () =
  let c = bv 8 in
  let reused = Caqr.Qs_caqr.max_reuse c in
  check bool "max-reuse bv8 is equivalent" true
    (is_equivalent (Verify.Equiv.check ~original:c ~transformed:reused ()))

let test_equiv_detects_flip () =
  let c = bv 5 in
  (* Flip one answer qubit right before its final measurement. *)
  let broken =
    Quantum.Circuit.of_kinds ~num_qubits:c.Quantum.Circuit.num_qubits
      ~num_clbits:c.Quantum.Circuit.num_clbits
      (Array.to_list (Array.map (fun g -> g.Quantum.Gate.kind) c.Quantum.Circuit.gates)
      @ [ Quantum.Gate.One_q (Quantum.Gate.X, 0);
          Quantum.Gate.Measure (0, 0) ])
  in
  check bool "flipped bit detected" true
    (is_inequivalent (Verify.Equiv.check ~original:c ~transformed:broken ()))

let test_equiv_budget () =
  let c = (Benchmarks.Suite.find "Multiply_13").Benchmarks.Suite.circuit in
  check bool "13 qubits exceed the exact budget" true
    (inconclusive (Verify.Equiv.check ~original:c ~transformed:c ()))

let test_equiv_elides_swaps () =
  (* A routed artifact is wider than its logical source only through
     SWAP traffic; elision must bring it back under the exact budget. *)
  let c = bv 10 in
  let physical = (Transpiler.Transpile.run mumbai c).Transpiler.Transpile.physical in
  check bool "routed bv10 verifies exactly" true
    (is_equivalent (Verify.Equiv.check ~original:c ~transformed:physical ()))

(* --------------------------------------------------------------- probe *)

let test_probe_accepts_reuse () =
  let c = bv 10 in
  let reused = Caqr.Qs_caqr.max_reuse c in
  check bool "probes accept max-reuse bv10" true
    (is_equivalent (Verify.Probe.check ~seed:3 ~original:c ~transformed:reused ()))

let test_probe_detects_flip () =
  let c = bv 10 in
  let broken =
    Quantum.Circuit.of_kinds ~num_qubits:c.Quantum.Circuit.num_qubits
      ~num_clbits:c.Quantum.Circuit.num_clbits
      (Array.to_list (Array.map (fun g -> g.Quantum.Gate.kind) c.Quantum.Circuit.gates)
      @ [ Quantum.Gate.One_q (Quantum.Gate.X, 0);
          Quantum.Gate.Measure (0, 0) ])
  in
  check bool "probes reject the flipped bit" true
    (is_inequivalent (Verify.Probe.check ~seed:3 ~original:c ~transformed:broken ()))

(* ---------------------------------------------------------- structural *)

let test_structural_wellformed () =
  check bool "bv8 is well-formed" true
    (is_equivalent (Verify.Structural.check_wellformed (bv 8)))

let test_structural_pairs_accept_compiler () =
  let c = bv 8 in
  match List.rev (Caqr.Qs_caqr.sweep c) with
  | [] -> Alcotest.fail "empty sweep"
  | last :: _ ->
    let pairs =
      List.map
        (fun (p : Caqr.Reuse.pair) ->
          { Verify.Structural.src = p.Caqr.Reuse.src; dst = p.Caqr.Reuse.dst })
        last.Caqr.Qs_caqr.pairs
    in
    check bool "some pairs claimed" true (pairs <> []);
    check bool "compiler pairs satisfy conditions 1-2" true
      (is_equivalent (Verify.Structural.check_pairs ~original:c pairs))

let test_structural_condition1 () =
  let b = Quantum.Circuit.Builder.create ~num_qubits:2 ~num_clbits:2 in
  Quantum.Circuit.Builder.cx b 0 1;
  Quantum.Circuit.Builder.measure b 0 0;
  Quantum.Circuit.Builder.measure b 1 1;
  let c = Quantum.Circuit.Builder.build b in
  check bool "coupled pair rejected" true
    (is_inequivalent
       (Verify.Structural.check_pairs ~original:c
          [ { Verify.Structural.src = 0; dst = 1 } ]))

let test_structural_condition2 () =
  (* No gate couples q0 and q1, but CX(2,0) depends on CX(1,2) through
     wire 2 — a gate on the src transitively depends on the dst. *)
  let b = Quantum.Circuit.Builder.create ~num_qubits:3 ~num_clbits:3 in
  Quantum.Circuit.Builder.cx b 1 2;
  Quantum.Circuit.Builder.cx b 2 0;
  Quantum.Circuit.Builder.measure b 0 0;
  Quantum.Circuit.Builder.measure b 1 1;
  let c = Quantum.Circuit.Builder.build b in
  check bool "dependent pair rejected" true
    (is_inequivalent
       (Verify.Structural.check_pairs ~original:c
          [ { Verify.Structural.src = 0; dst = 1 } ]))

let test_structural_coupling () =
  (* Find a non-adjacent qubit pair on Mumbai and put a CX on it. *)
  let n = Hardware.Device.num_qubits mumbai in
  let bad = ref None in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if !bad = None && not (Hardware.Device.adjacent mumbai a b) then
        bad := Some (a, b)
    done
  done;
  match !bad with
  | None -> Alcotest.fail "mumbai is fully connected?"
  | Some (a, b) ->
    let ok = Quantum.Circuit.of_kinds ~num_qubits:n ~num_clbits:1 [] in
    check bool "empty circuit is legal" true
      (is_equivalent (Verify.Structural.check_coupling mumbai ok));
    let ill =
      Quantum.Circuit.of_kinds ~num_qubits:n ~num_clbits:1
        [ Quantum.Gate.Cx (a, b) ]
    in
    check bool "uncoupled CX rejected" true
      (is_inequivalent (Verify.Structural.check_coupling mumbai ill))

let test_structural_accounting () =
  let c = bv 5 in
  let missing =
    Quantum.Circuit.of_kinds ~num_qubits:c.Quantum.Circuit.num_qubits
      ~num_clbits:c.Quantum.Circuit.num_clbits
      (List.filter
         (function Quantum.Gate.Measure (_, 0) -> false | _ -> true)
         (Array.to_list
            (Array.map (fun g -> g.Quantum.Gate.kind) c.Quantum.Circuit.gates)))
  in
  check bool "dropped measurement rejected" true
    (is_inequivalent (Verify.Structural.check_accounting ~logical:c ~physical:missing))

(* ------------------------------------------- injected transformation bug *)

(* Swap the first measure/conditional-X block of a reuse-transformed
   circuit, the classic broken-transform: the conditional reset fires
   before the measurement writes its clbit. At least two independent
   checkers must reject it. *)
let swap_measure_init (c : Quantum.Circuit.t) =
  let kinds = Array.map (fun g -> g.Quantum.Gate.kind) c.Quantum.Circuit.gates in
  let swapped = ref false in
  for i = 0 to Array.length kinds - 2 do
    if not !swapped then
      match (kinds.(i), kinds.(i + 1)) with
      | Quantum.Gate.Measure (_, cb), Quantum.Gate.If_x (cb', _) when cb = cb' ->
        let t = kinds.(i) in
        kinds.(i) <- kinds.(i + 1);
        kinds.(i + 1) <- t;
        swapped := true
      | _ -> ()
  done;
  if not !swapped then Alcotest.fail "no measure/if_x block to break";
  Quantum.Circuit.of_kinds ~num_qubits:c.Quantum.Circuit.num_qubits
    ~num_clbits:c.Quantum.Circuit.num_clbits (Array.to_list kinds)

let test_injected_bug_rejected_twice () =
  let original = bv 10 in
  let broken = swap_measure_init (Caqr.Qs_caqr.max_reuse original) in
  check bool "structural checker rejects the swapped block" true
    (is_inequivalent (Verify.Structural.check_wellformed broken));
  check bool "exact checker rejects the swapped block" true
    (is_inequivalent (Verify.Equiv.check ~original ~transformed:broken ()))

(* ------------------------------------------------- pipeline integration *)

let strategies =
  [
    Caqr.Pipeline.Baseline;
    Caqr.Pipeline.Qs_max_reuse;
    Caqr.Pipeline.Qs_min_depth;
    Caqr.Pipeline.Qs_best_fidelity;
    Caqr.Pipeline.Qs_target 5;
    Caqr.Pipeline.Sr;
  ]

let test_pipeline_verifies_all_strategies () =
  let input = Caqr.Pipeline.Regular (bv 10) in
  List.iter
    (fun s ->
      let options =
        { Caqr.Pipeline.default with verify = Some Verify.Auto; seed = 5 }
      in
      let r = Caqr.Pipeline.compile ~options mumbai s input in
      match r.Caqr.Pipeline.verification with
      | Some v ->
        check bool
          (Printf.sprintf "%s verifies on bv10" (Caqr.Pipeline.strategy_name s))
          true (is_equivalent v)
      | None -> Alcotest.fail "verification missing from the report")
    strategies

let test_pipeline_skips_verification_by_default () =
  let r = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Sr (Caqr.Pipeline.Regular (bv 6)) in
  check bool "no verdict unless asked" true (r.Caqr.Pipeline.verification = None)

(* Same options record, same result — the options API (sole compile
   entry point now the PR 2 legacy shim is gone) must be reproducible
   field-for-field. *)
let test_compile_options_reproducible () =
  let input = Caqr.Pipeline.Regular (bv 6) in
  let options =
    { Caqr.Pipeline.default with verify = Some Verify.Static; seed = 3 }
  in
  let r1 = Caqr.Pipeline.compile ~options mumbai Caqr.Pipeline.Sr input in
  let r2 = Caqr.Pipeline.compile ~options mumbai Caqr.Pipeline.Sr input in
  check bool "same physical circuit" true
    (r1.Caqr.Pipeline.physical = r2.Caqr.Pipeline.physical);
  check bool "same verdict" true
    (r1.Caqr.Pipeline.verification = r2.Caqr.Pipeline.verification)

(* ----------------------------------------------------------- suite sweep *)

let input_of_entry (e : Benchmarks.Suite.entry) =
  match e.Benchmarks.Suite.kind with
  | Benchmarks.Suite.Regular -> Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit
  | Benchmarks.Suite.Commutable g -> Caqr.Pipeline.Commutable g

let sweep_strategies =
  [ Caqr.Pipeline.Qs_max_reuse; Caqr.Pipeline.Qs_min_depth; Caqr.Pipeline.Sr ]

let assert_strategies_verify ~level ~expect e =
  List.iter
    (fun s ->
      let options =
        { Caqr.Pipeline.default with verify = Some level; seed = 11 }
      in
      let r = Caqr.Pipeline.compile ~options mumbai s (input_of_entry e) in
      let name =
        Printf.sprintf "%s / %s" e.Benchmarks.Suite.name
          (Caqr.Pipeline.strategy_name s)
      in
      match r.Caqr.Pipeline.verification with
      | Some v -> (
        match expect with
        | `Equivalent -> check bool name true (is_equivalent v)
        | `Not_inequivalent -> check bool name false (is_inequivalent v))
      | None -> Alcotest.fail (name ^ ": verification missing"))
    sweep_strategies

(* Entries inside the exact checker's budget get the complete argument;
   wider ones fall back to seeded probes inside the Auto level. *)
let test_suite_exact_entries () =
  List.iter
    (fun (e : Benchmarks.Suite.entry) ->
      if e.Benchmarks.Suite.circuit.Quantum.Circuit.num_qubits <= 12 then
        assert_strategies_verify ~level:Verify.Auto ~expect:`Equivalent e)
    (Benchmarks.Suite.table1 ())

let test_suite_probe_entries () =
  List.iter
    (fun name ->
      assert_strategies_verify ~level:Verify.Auto ~expect:`Equivalent
        (Benchmarks.Suite.find name))
    [ "Multiply_13"; "QAOA15-0.3" ]

(* QAOA-20/25 are beyond what probes afford in a unit-test budget; the
   structural pass must still accept them, and the semantic orchestrator
   must degrade to Inconclusive rather than overclaim either way. *)
let test_suite_wide_entries () =
  assert_strategies_verify ~level:Verify.Static ~expect:`Equivalent
    (Benchmarks.Suite.find "QAOA20-0.3");
  assert_strategies_verify ~level:Verify.Static ~expect:`Equivalent
    (Benchmarks.Suite.find "QAOA25-0.3")

let test_qaoa25_never_inequivalent () =
  let e = Benchmarks.Suite.find "QAOA25-0.3" in
  let r =
    Caqr.Pipeline.compile
      ~options:{ Caqr.Pipeline.default with verify = Some Verify.Auto; seed = 11 }
      mumbai Caqr.Pipeline.Qs_min_depth (input_of_entry e)
  in
  match r.Caqr.Pipeline.verification with
  | Some v -> check bool "qaoa25 degrades honestly" false (is_inequivalent v)
  | None -> Alcotest.fail "verification missing"

let () =
  Alcotest.run "verify"
    [
      ( "verdict",
        [ Alcotest.test_case "combine" `Quick test_verdict_combine ] );
      ( "equiv",
        [
          Alcotest.test_case "reflexive" `Quick test_equiv_reflexive;
          Alcotest.test_case "accepts reuse" `Quick test_equiv_accepts_reuse;
          Alcotest.test_case "detects flip" `Quick test_equiv_detects_flip;
          Alcotest.test_case "budget" `Quick test_equiv_budget;
          Alcotest.test_case "elides swaps" `Quick test_equiv_elides_swaps;
        ] );
      ( "probe",
        [
          Alcotest.test_case "accepts reuse" `Quick test_probe_accepts_reuse;
          Alcotest.test_case "detects flip" `Quick test_probe_detects_flip;
        ] );
      ( "structural",
        [
          Alcotest.test_case "wellformed" `Quick test_structural_wellformed;
          Alcotest.test_case "accepts compiler pairs" `Quick
            test_structural_pairs_accept_compiler;
          Alcotest.test_case "condition 1" `Quick test_structural_condition1;
          Alcotest.test_case "condition 2" `Quick test_structural_condition2;
          Alcotest.test_case "coupling" `Quick test_structural_coupling;
          Alcotest.test_case "accounting" `Quick test_structural_accounting;
        ] );
      ( "injected-bug",
        [
          Alcotest.test_case "rejected by two checkers" `Quick
            test_injected_bug_rejected_twice;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "all strategies verify" `Quick
            test_pipeline_verifies_all_strategies;
          Alcotest.test_case "off by default" `Quick
            test_pipeline_skips_verification_by_default;
          Alcotest.test_case "options reproducible" `Quick
            test_compile_options_reproducible;
        ] );
      ( "suite",
        [
          Alcotest.test_case "exact entries" `Slow test_suite_exact_entries;
          Alcotest.test_case "probe entries" `Slow test_suite_probe_entries;
          Alcotest.test_case "wide entries" `Quick test_suite_wide_entries;
          Alcotest.test_case "qaoa25 honest" `Quick
            test_qaoa25_never_inequivalent;
        ] );
    ]
