(* The anytime contract of the QS search (the quality/time dial):

   - with no wall-clock deadline the result is [Exact] and identical to
     the plain [max_reuse] path;
   - the returned width is monotonically non-increasing in the DFS node
     budget (a bigger budget explores a superset of the same
     deterministic DFS order) — checked over generated circuits;
   - an anytime return's pair list is a valid reuse certificate for the
     original circuit, revalidated by the independent structural
     checker, and bumps the ["qs.anytime.returns"] counter;
   - the engine ladder treats an anytime return as success: no
     degradation, exit through the normal pipeline path. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* Small fuzz circuits keep the 5-budget sweep per seed cheap. *)
let small_cfg =
  {
    Fuzz.Gen.default with
    Fuzz.Gen.min_qubits = 4;
    max_qubits = 8;
    min_gates = 8;
    max_gates = 24;
  }

let gen_circuit seed = Fuzz.Gen.circuit small_cfg (Fuzz.Prng.make seed)

let quality_name a = Caqr.Quality.name a.Caqr.Qs_caqr.quality

(* ---- Exact under unlimited budget ---- *)

let test_exact_without_deadline () =
  for seed = 1 to 10 do
    let c = gen_circuit seed in
    let a = Caqr.Qs_caqr.max_reuse_anytime c in
    check bool
      (Printf.sprintf "seed %d: exact" seed)
      true
      (Caqr.Quality.is_exact a.Caqr.Qs_caqr.quality);
    let plain = Caqr.Qs_caqr.max_reuse c in
    check int
      (Printf.sprintf "seed %d: same width as max_reuse" seed)
      (Caqr.Reuse.qubit_usage plain)
      a.Caqr.Qs_caqr.width;
    check bool
      (Printf.sprintf "seed %d: same circuit as max_reuse" seed)
      true
      (Quantum.Circuit.digest plain = Quantum.Circuit.digest a.Caqr.Qs_caqr.circuit)
  done

(* A node cap ending the search is the configured engine's deterministic
   completion, not a deadline artifact — still Exact (the serve cache
   depends on Exact meaning reproducible). *)
let test_node_cap_still_exact () =
  let c = gen_circuit 3 in
  let opts = { Caqr.Qs_caqr.default_opts with Caqr.Qs_caqr.budget = 1 } in
  let a = Caqr.Qs_caqr.max_reuse_anytime ~opts c in
  check bool "node-capped run is exact" true
    (Caqr.Quality.is_exact a.Caqr.Qs_caqr.quality)

(* ---- width monotone in the node budget (property) ---- *)

let budgets = [ 0; 5; 20; 100; 1000 ]

let prop_width_monotone =
  QCheck.Test.make ~name:"anytime: width non-increasing in node budget"
    ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = gen_circuit seed in
      let widths =
        List.map
          (fun budget ->
            let opts = { Caqr.Qs_caqr.default_opts with Caqr.Qs_caqr.budget } in
            (Caqr.Qs_caqr.max_reuse_anytime ~opts c).Caqr.Qs_caqr.width)
          budgets
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      non_increasing widths)

let prop_width_never_above_baseline =
  QCheck.Test.make ~name:"anytime: width never exceeds the input's"
    ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = gen_circuit seed in
      let a = Caqr.Qs_caqr.max_reuse_anytime c in
      a.Caqr.Qs_caqr.width <= Caqr.Reuse.qubit_usage c)

(* ---- wall-clock trips: quality marker, metric, certificate ---- *)

let certify ~original pairs =
  let claimed =
    List.map
      (fun (p : Caqr.Reuse.pair) ->
        { Verify.Structural.src = p.Caqr.Reuse.src; dst = p.Caqr.Reuse.dst })
      pairs
  in
  Verify.Structural.check_pairs ~original claimed

(* cuccaro-128 needs well over a second of search to run exact (see the
   bench anytime curves), so a sub-second deadline always trips. *)
let anytime_run () =
  let c = Benchmarks.Large.cuccaro_farm 128 in
  let a =
    Guard.Budget.scoped
      (Guard.Budget.make ~ms:300 ())
      (fun () -> Caqr.Qs_caqr.max_reuse_anytime c)
  in
  (c, a)

let test_wall_trip_is_anytime () =
  Obs.Metrics.reset ();
  let _, a = anytime_run () in
  check bool "quality is anytime" false
    (Caqr.Quality.is_exact a.Caqr.Qs_caqr.quality);
  check bool "qs.anytime.returns bumped" true
    (Obs.Metrics.count "qs.anytime.returns" >= 1);
  check Alcotest.string "wire spelling" "anytime" (quality_name a)

let test_anytime_certificate_revalidates () =
  let original, a = anytime_run () in
  (match a.Caqr.Qs_caqr.quality with
   | Caqr.Quality.Anytime { steps_done; frontier_left } ->
     check bool "steps counted" true (steps_done >= 0);
     check bool "frontier non-negative" true (frontier_left >= 0)
   | Caqr.Quality.Exact -> Alcotest.fail "expected an anytime return");
  match certify ~original a.Caqr.Qs_caqr.pairs with
  | Verify.Verdict.Equivalent -> ()
  | Verify.Verdict.Inequivalent x ->
    Alcotest.fail ("anytime certificate refuted: " ^ x.Verify.Verdict.detail)
  | Verify.Verdict.Inconclusive why ->
    Alcotest.fail ("anytime certificate inconclusive: " ^ why)

let test_anytime_width_below_input () =
  let c, a = anytime_run () in
  check bool "anytime width <= input width" true
    (a.Caqr.Qs_caqr.width <= Caqr.Reuse.qubit_usage c)

(* ---- search_anytime: target contract ---- *)

let test_search_anytime_exact_on_reachable () =
  let c = Benchmarks.Bv.circuit 5 in
  match Caqr.Qs_caqr.search_anytime ~target:2 c with
  | Some a ->
    check bool "reached target exactly" true
      (Caqr.Quality.is_exact a.Caqr.Qs_caqr.quality);
    check bool "width at or under target" true (a.Caqr.Qs_caqr.width <= 2)
  | None -> Alcotest.fail "BV_5 reduces to 2 qubits"

let test_search_anytime_none_when_unreachable () =
  (* Fully entangling: no reuse at all, so target 1 is unreachable and
     the space exhausts without a wall trip. *)
  let b = Quantum.Circuit.Builder.create ~num_qubits:3 ~num_clbits:0 in
  Quantum.Circuit.Builder.cx b 0 1;
  Quantum.Circuit.Builder.cx b 1 2;
  Quantum.Circuit.Builder.cx b 0 2;
  let c = Quantum.Circuit.Builder.build b in
  check bool "unreachable target is None" true
    (Caqr.Qs_caqr.search_anytime ~target:1 c = None)

let () =
  Alcotest.run "anytime"
    [
      ( "exact",
        [
          Alcotest.test_case "no deadline -> Exact, same as max_reuse" `Quick
            test_exact_without_deadline;
          Alcotest.test_case "node cap stays Exact" `Quick
            test_node_cap_still_exact;
        ] );
      ( "monotone",
        [
          QCheck_alcotest.to_alcotest prop_width_monotone;
          QCheck_alcotest.to_alcotest prop_width_never_above_baseline;
        ] );
      ( "wall-trip",
        [
          Alcotest.test_case "trip tags Anytime and bumps the metric" `Quick
            test_wall_trip_is_anytime;
          Alcotest.test_case "partial certificate revalidates" `Quick
            test_anytime_certificate_revalidates;
          Alcotest.test_case "width never above the input" `Quick
            test_anytime_width_below_input;
        ] );
      ( "search",
        [
          Alcotest.test_case "reachable target -> Exact" `Quick
            test_search_anytime_exact_on_reachable;
          Alcotest.test_case "unreachable target -> None" `Quick
            test_search_anytime_none_when_unreachable;
        ] );
    ]
