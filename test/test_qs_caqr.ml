(* Unit tests for QS-CaQR on regular circuits: greedy sweep, backtracking
   search, budget queries. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_reduce_once_bv () =
  match Caqr.Qs_caqr.reduce_once (Benchmarks.Bv.circuit 5) with
  | Some (_, c') -> check int "one fewer qubit" 4 (Caqr.Reuse.qubit_usage c')
  | None -> Alcotest.fail "BV must have reuse"

let test_reduce_once_none_on_dense () =
  (* Fully entangling circuit: every pair of qubits shares a gate. *)
  let b = Quantum.Circuit.Builder.create ~num_qubits:3 ~num_clbits:0 in
  Quantum.Circuit.Builder.cx b 0 1;
  Quantum.Circuit.Builder.cx b 1 2;
  Quantum.Circuit.Builder.cx b 0 2;
  check bool "no reuse" true (Caqr.Qs_caqr.reduce_once (Quantum.Circuit.Builder.build b) = None)

let test_sweep_monotone_usage () =
  let steps = Caqr.Qs_caqr.sweep (Benchmarks.Bv.circuit 8) in
  let usages = List.map (fun s -> s.Caqr.Qs_caqr.usage) steps in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  check bool "usage strictly decreases" true (strictly_decreasing usages);
  check int "starts at original" 8 (List.hd usages)

let test_sweep_depth_never_shrinks_much () =
  (* Logical depth is nondecreasing along the sweep (each reuse only adds
     constraints). *)
  let steps = Caqr.Qs_caqr.sweep (Benchmarks.Bv.circuit 8) in
  let depths = List.map (fun s -> s.Caqr.Qs_caqr.logical_depth) steps in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  check bool "depth nondecreasing" true (nondecreasing depths)

let test_sweep_stop_at () =
  let steps = Caqr.Qs_caqr.sweep ~stop_at:6 (Benchmarks.Bv.circuit 8) in
  match List.rev steps with
  | last :: _ -> check int "stops at target" 6 last.Caqr.Qs_caqr.usage
  | [] -> Alcotest.fail "empty sweep"

let test_sweep_records_pairs () =
  let steps = Caqr.Qs_caqr.sweep (Benchmarks.Bv.circuit 5) in
  List.iteri
    (fun i (s : Caqr.Qs_caqr.step) ->
      check int "pair per step" i (List.length s.Caqr.Qs_caqr.pairs))
    steps

let test_bv_min_is_two () =
  List.iter
    (fun n ->
      check int
        (Printf.sprintf "BV_%d -> 2" n)
        2
        (Caqr.Qs_caqr.min_qubits (Benchmarks.Bv.circuit n)))
    [ 3; 5; 10 ]

let test_search_reaches_target () =
  match Caqr.Qs_caqr.search ~target:2 (Benchmarks.Bv.circuit 10) with
  | Some (c, pairs) ->
    check int "2 qubits" 2 (Caqr.Reuse.qubit_usage c);
    check int "8 reuse pairs" 8 (List.length pairs)
  | None -> Alcotest.fail "search must succeed"

let test_search_impossible_target () =
  check bool "cannot reach 1" true
    (Caqr.Qs_caqr.search ~target:1 (Benchmarks.Bv.circuit 5) = None)

let test_reduce_to_semantics () =
  let c = Benchmarks.Bv.circuit 8 in
  match Caqr.Qs_caqr.reduce_to ~target:3 c with
  | Some c' ->
    check bool "at most 3" true (Caqr.Reuse.qubit_usage c' <= 3);
    let d0 = Sim.Executor.run ~seed:1 ~shots:64 c in
    let d1 = Sim.Executor.run ~seed:2 ~shots:64 c' in
    check (Alcotest.float 1e-9) "secret preserved" 0. (Sim.Counts.tvd d0 d1)
  | None -> Alcotest.fail "target 3 reachable"

let test_max_reuse_objectives () =
  let c = Benchmarks.Revlib.cc 8 in
  let opts obj = { Caqr.Qs_caqr.default_opts with Caqr.Qs_caqr.objective = obj } in
  let by_depth = Caqr.Qs_caqr.max_reuse ~opts:(opts Caqr.Qs_caqr.Depth) c in
  let by_duration = Caqr.Qs_caqr.max_reuse ~opts:(opts Caqr.Qs_caqr.Duration) c in
  check bool "both reduce" true
    (Caqr.Reuse.qubit_usage by_depth < 8 && Caqr.Reuse.qubit_usage by_duration < 8)

let test_opportunity () =
  check bool "BV has opportunity" true
    (Caqr.Qs_caqr.opportunity (Benchmarks.Bv.circuit 4) <> None);
  let b = Quantum.Circuit.Builder.create ~num_qubits:2 ~num_clbits:0 in
  Quantum.Circuit.Builder.cx b 0 1;
  check bool "2q fully coupled: none" true
    (Caqr.Qs_caqr.opportunity (Quantum.Circuit.Builder.build b) = None)

let test_regular_benchmarks_reduce () =
  (* Every Table 1 regular benchmark has at least one reuse opportunity. *)
  List.iter
    (fun e ->
      let c = e.Benchmarks.Suite.circuit in
      check bool e.Benchmarks.Suite.name true
        (Caqr.Qs_caqr.min_qubits c < Caqr.Reuse.qubit_usage c))
    (Benchmarks.Suite.regular ())

let test_multiply_semantics_after_max_reuse () =
  let c = Benchmarks.Revlib.multiply_13 () in
  let reused = Caqr.Qs_caqr.max_reuse c in
  let d0 = Sim.Executor.run ~seed:3 ~shots:32 c in
  let d1 = Sim.Executor.run ~seed:4 ~shots:32 reused in
  check (Alcotest.float 1e-9) "product preserved" 0. (Sim.Counts.tvd d0 d1)

let () =
  Alcotest.run "qs_caqr"
    [
      ( "reduce",
        [
          Alcotest.test_case "reduce once" `Quick test_reduce_once_bv;
          Alcotest.test_case "dense has none" `Quick test_reduce_once_none_on_dense;
          Alcotest.test_case "usage monotone" `Quick test_sweep_monotone_usage;
          Alcotest.test_case "depth monotone" `Quick test_sweep_depth_never_shrinks_much;
          Alcotest.test_case "stop at" `Quick test_sweep_stop_at;
          Alcotest.test_case "pairs recorded" `Quick test_sweep_records_pairs;
        ] );
      ( "search",
        [
          Alcotest.test_case "bv min 2" `Quick test_bv_min_is_two;
          Alcotest.test_case "reaches target" `Quick test_search_reaches_target;
          Alcotest.test_case "impossible target" `Quick test_search_impossible_target;
          Alcotest.test_case "reduce_to semantics" `Quick test_reduce_to_semantics;
          Alcotest.test_case "objectives" `Quick test_max_reuse_objectives;
        ] );
      ( "applicability",
        [
          Alcotest.test_case "opportunity" `Quick test_opportunity;
          Alcotest.test_case "all regular reduce" `Slow test_regular_benchmarks_reduce;
          Alcotest.test_case "multiply semantics" `Slow test_multiply_semantics_after_max_reuse;
        ] );
    ]
