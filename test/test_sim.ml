(* Unit tests for the state-vector simulator, counts, and the noise model. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let floatc = Alcotest.float 1e-9
let float6 = Alcotest.float 1e-6

module G = Quantum.Gate
module B = Quantum.Circuit.Builder

let rng () = Random.State.make [| 42 |]

(* ---- State ---- *)

let test_init_ground () =
  let st = Sim.State.init 3 in
  check floatc "norm" 1. (Sim.State.norm2 st);
  check floatc "all zero amp" 1. (Sim.State.probability st 0);
  check int "width" 3 (Sim.State.num_qubits st)

let test_x_flips () =
  let st = Sim.State.init 2 in
  Sim.State.apply_one_q st G.X 1;
  check floatc "state |10>" 1. (Sim.State.probability st 0b10)

let test_h_superposition () =
  let st = Sim.State.init 1 in
  Sim.State.apply_one_q st G.H 0;
  check float6 "p0" 0.5 (Sim.State.probability st 0);
  check float6 "p1" 0.5 (Sim.State.probability st 1);
  Sim.State.apply_one_q st G.H 0;
  check float6 "h self inverse" 1. (Sim.State.probability st 0)

let test_rotation_identities () =
  let st = Sim.State.init 1 in
  Sim.State.apply_one_q st (G.Rx Float.pi) 0;
  (* Rx(pi) = -iX: probability of |1> is 1. *)
  check float6 "rx pi = x" 1. (Sim.State.probability st 1);
  let st2 = Sim.State.init 1 in
  Sim.State.apply_one_q st2 G.S 0;
  Sim.State.apply_one_q st2 G.Sdg 0;
  check float6 "s sdg = id" 1. (Sim.State.probability st2 0);
  let st3 = Sim.State.init 1 in
  Sim.State.apply_one_q st3 G.T 0;
  Sim.State.apply_one_q st3 G.T 0;
  Sim.State.apply_one_q st3 G.Sdg 0;
  check float6 "tt = s" 1. (Sim.State.probability st3 0)

let test_sx_squared_is_x () =
  let st = Sim.State.init 1 in
  Sim.State.apply_one_q st G.Sx 0;
  Sim.State.apply_one_q st G.Sx 0;
  check float6 "sx^2 = x" 1. (Sim.State.probability st 1)

let test_bell_state () =
  let st = Sim.State.init 2 in
  Sim.State.apply_one_q st G.H 0;
  Sim.State.apply_cx st 0 1;
  check float6 "p00" 0.5 (Sim.State.probability st 0b00);
  check float6 "p11" 0.5 (Sim.State.probability st 0b11);
  check float6 "p01" 0. (Sim.State.probability st 0b01);
  check floatc "norm preserved" 1. (Sim.State.norm2 st)

let test_cz_phase () =
  (* CZ on |11> flips sign; check via interference: H CZ H on q1 with q0=1. *)
  let st = Sim.State.init 2 in
  Sim.State.apply_one_q st G.X 0;
  Sim.State.apply_one_q st G.H 1;
  Sim.State.apply_cz st 0 1;
  Sim.State.apply_one_q st G.H 1;
  (* CZ acts as Z on q1 (since q0 = 1): HZH = X -> q1 becomes 1. *)
  check float6 "|11>" 1. (Sim.State.probability st 0b11)

let test_swap () =
  let st = Sim.State.init 2 in
  Sim.State.apply_one_q st G.X 0;
  Sim.State.apply_swap st 0 1;
  check float6 "swapped to |10>" 1. (Sim.State.probability st 0b10)

let test_rzz_diagonal_phase () =
  (* exp(-i th/2 ZZ): on |00> it is a global phase; probabilities unchanged. *)
  let st = Sim.State.init 2 in
  Sim.State.apply_rzz st 0.7 0 1;
  check float6 "stays |00|" 1. (Sim.State.probability st 0);
  (* Interference check: rzz(pi) between H-basis qubits acts like CZ up to
     local rotations; verify norm + nontrivial action. *)
  let st2 = Sim.State.init 2 in
  Sim.State.apply_one_q st2 G.H 0;
  Sim.State.apply_one_q st2 G.H 1;
  Sim.State.apply_rzz st2 Float.pi 0 1;
  Sim.State.apply_one_q st2 G.H 0;
  Sim.State.apply_one_q st2 G.H 1;
  check floatc "norm" 1. (Sim.State.norm2 st2);
  check bool "acted nontrivially" true (Sim.State.probability st2 0 < 0.9)

let test_measure_deterministic () =
  let st = Sim.State.init 2 in
  Sim.State.apply_one_q st G.X 1;
  check int "measure 1" 1 (Sim.State.measure (rng ()) st 1);
  check int "measure 0" 0 (Sim.State.measure (rng ()) st 0);
  check floatc "norm after collapse" 1. (Sim.State.norm2 st)

let test_measure_collapses () =
  let st = Sim.State.init 2 in
  Sim.State.apply_one_q st G.H 0;
  Sim.State.apply_cx st 0 1;
  let r = rng () in
  let m0 = Sim.State.measure r st 0 in
  let m1 = Sim.State.measure r st 1 in
  check int "bell correlation" m0 m1

let test_reset_forces_ground () =
  let st = Sim.State.init 1 in
  Sim.State.apply_one_q st G.H 0;
  Sim.State.reset (rng ()) st 0;
  check float6 "ground" 0. (Sim.State.prob_one st 0)

let test_pauli_channel () =
  let st = Sim.State.init 1 in
  Sim.State.apply_pauli st 1 0;
  check float6 "x" 1. (Sim.State.prob_one st 0);
  Sim.State.apply_pauli st 2 0;
  check float6 "y flips back" 0. (Sim.State.prob_one st 0);
  Sim.State.apply_pauli st 0 0;
  check float6 "identity" 0. (Sim.State.prob_one st 0)

let test_width_guard () =
  Alcotest.check_raises "too wide"
    (Invalid_argument "State.init: unsupported width") (fun () ->
      ignore (Sim.State.init 30))

(* ---- Counts ---- *)

let test_counts_basic () =
  let c = Sim.Counts.create ~num_clbits:2 in
  Sim.Counts.add c 0;
  Sim.Counts.add c 3;
  Sim.Counts.add c 3;
  check int "total" 3 (Sim.Counts.total c);
  check int "get 3" 2 (Sim.Counts.get c 3);
  check (Alcotest.option int) "top" (Some 3) (Sim.Counts.top c);
  check (Alcotest.float 1e-9) "success rate" (2. /. 3.) (Sim.Counts.success_rate c 3)

let test_tvd_axioms () =
  let mk l =
    let c = Sim.Counts.create ~num_clbits:2 in
    List.iter (Sim.Counts.add c) l;
    c
  in
  let a = mk [ 0; 0; 1; 1 ] and b = mk [ 0; 0; 1; 1 ] in
  check floatc "identical -> 0" 0. (Sim.Counts.tvd a b);
  let c = mk [ 2; 2; 2; 2 ] in
  check floatc "disjoint -> 1" 1. (Sim.Counts.tvd a c);
  check floatc "symmetric" (Sim.Counts.tvd a c) (Sim.Counts.tvd c a)

let test_expectation () =
  let c = Sim.Counts.create ~num_clbits:2 in
  Sim.Counts.add c 0;
  Sim.Counts.add c 3;
  check floatc "mean of f" 1.5 (Sim.Counts.expectation c float_of_int)

let test_of_probs () =
  let c = Sim.Counts.of_probs ~num_clbits:1 ~shots:1000 [ (0, 0.25); (1, 0.75) ] in
  check int "scaled" 250 (Sim.Counts.get c 0);
  check int "total" 1000 (Sim.Counts.total c)

(* ---- Executor ---- *)

let test_executor_bell () =
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 0 0;
  B.measure b 1 1;
  let counts = Sim.Executor.run ~seed:1 ~shots:500 (B.build b) in
  check int "only 00 and 11" 500 (Sim.Counts.get counts 0 + Sim.Counts.get counts 3);
  check bool "both outcomes seen" true
    (Sim.Counts.get counts 0 > 150 && Sim.Counts.get counts 3 > 150)

let test_executor_dynamic_teleport_like () =
  (* Measure + conditional X moves a bit: prepare q0 = 1, measure into c0,
     conditionally flip q1 -> q1 reads 1. *)
  let b = B.create ~num_qubits:2 ~num_clbits:2 in
  B.x b 0;
  B.measure b 0 0;
  B.if_x b 0 1;
  B.measure b 1 1;
  let counts = Sim.Executor.run ~seed:2 ~shots:50 (B.build b) in
  check int "c = 11 always" 50 (Sim.Counts.get counts 0b11)

let test_executor_reset_reuse () =
  (* The Fig. 1 idiom: q0 carries |1>, is measured and conditionally reset,
     then reused; second measurement must read 0 deterministically. *)
  let b = B.create ~num_qubits:1 ~num_clbits:2 in
  B.x b 0;
  B.measure b 0 0;
  B.if_x b 0 0;
  B.measure b 0 1;
  let counts = Sim.Executor.run ~seed:3 ~shots:50 (B.build b) in
  check int "first 1, second 0" 50 (Sim.Counts.get counts 0b01)

let test_distribution_exact () =
  let b = B.create ~num_qubits:1 ~num_clbits:1 in
  B.h b 0;
  B.measure b 0 0;
  let d = Sim.Executor.distribution ~seed:1 (B.build b) in
  check bool "half-half" true
    (Float.abs (Sim.Counts.success_rate d 0 -. 0.5) < 0.01)

let test_executor_compacts_wide_circuits () =
  (* A 27-wire circuit using only wires 20 and 26 must simulate fine. *)
  let b = B.create ~num_qubits:27 ~num_clbits:2 in
  B.h b 20;
  B.cx b 20 26;
  B.measure b 20 0;
  B.measure b 26 1;
  let counts = Sim.Executor.run ~seed:4 ~shots:100 (B.build b) in
  check int "correlated" 100 (Sim.Counts.get counts 0 + Sim.Counts.get counts 3)

(* ---- Noise ---- *)

let device () = Hardware.Device.mumbai

let bv_physical () =
  (* BV-3 placed on adjacent Mumbai qubits 0,1,2 with 2 as ancilla... use
     1 as the ancilla since 0-1 and 1-2 are links. *)
  let b = B.create ~num_qubits:27 ~num_clbits:2 in
  B.h b 0;
  B.h b 2;
  B.x b 1;
  B.h b 1;
  B.cx b 0 1;
  B.cx b 2 1;
  B.h b 0;
  B.h b 2;
  B.measure b 0 0;
  B.measure b 2 1;
  B.build b

let test_noise_preserves_trend () =
  let c = bv_physical () in
  let noisy = Sim.Noise.run ~device:(device ()) ~seed:5 ~shots:400 c in
  (* The ideal outcome 0b11 must still dominate but with some errors. *)
  let sr = Sim.Counts.success_rate noisy 0b11 in
  check bool "dominates" true (sr > 0.5);
  check bool "noisy" true (sr < 1.0)

let test_noise_tvd_positive () =
  let c = bv_physical () in
  let tvd = Sim.Noise.tvd_vs_ideal ~device:(device ()) ~seed:6 ~shots:400 c in
  check bool "tvd in (0, 1)" true (tvd > 0. && tvd < 1.)

let test_noise_ideal_device_is_noiseless () =
  let dev = Hardware.Device.ideal Hardware.Topology.falcon_27 in
  let c = bv_physical () in
  let counts = Sim.Noise.run ~device:dev ~seed:7 ~shots:200 c in
  check int "deterministic" 200 (Sim.Counts.get counts 0b11)

let test_longer_idle_means_more_error () =
  (* Same computation, but one version wastes time with long idle gaps on
     the measured qubit: its success rate should not be better. *)
  let quick =
    let b = B.create ~num_qubits:27 ~num_clbits:1 in
    B.x b 0;
    B.measure b 0 0;
    B.build b
  in
  let slow =
    let b = B.create ~num_qubits:27 ~num_clbits:1 in
    B.x b 0;
    (* Busy-wait on partner qubits forces idle accumulation on 0 through
       the schedule only if they share wires; instead insert many 1q gates
       on qubit 0 itself paired with inverse. *)
    for _ = 1 to 40 do
      B.x b 0;
      B.x b 0
    done;
    B.measure b 0 0;
    B.build b
  in
  let dev = device () in
  let sr c = Sim.Counts.success_rate (Sim.Noise.run ~device:dev ~seed:8 ~shots:600 c) 1 in
  check bool "more gates, not better" true (sr slow <= sr quick +. 0.02)

let test_noise_reset_path () =
  (* H; measure; reset; measure — the post-reset read is pinned to 0 up
     to readout error, even though the first read is a fair coin. This
     exercises the reset channel under Mumbai's nonzero idle/readout
     noise, which no other test covers. *)
  let b = B.create ~num_qubits:27 ~num_clbits:2 in
  B.h b 0;
  B.measure b 0 0;
  B.reset b 0;
  B.measure b 0 1;
  let c = B.build b in
  let counts = Sim.Noise.run ~device:(device ()) ~seed:9 ~shots:600 c in
  let zeros =
    Sim.Counts.expectation counts (fun o -> if o land 2 = 0 then 1.0 else 0.0)
  in
  check bool "post-reset reads 0 w.h.p." true (zeros > 0.9);
  let ones_first =
    Sim.Counts.expectation counts (fun o -> float_of_int (o land 1))
  in
  check bool "pre-reset read stays a fair coin" true
    (ones_first > 0.35 && ones_first < 0.65)

let test_noise_if_x_path () =
  (* X; measure; If_x — the classically-controlled correction flips the
     qubit back, so (c0=1, c1=0) dominates; noise makes it imperfect.
     Exercises the conditional-X channel under nonzero noise. *)
  let b = B.create ~num_qubits:27 ~num_clbits:2 in
  B.x b 0;
  B.measure b 0 0;
  B.if_x b 0 0;
  B.measure b 0 1;
  let c = B.build b in
  let counts = Sim.Noise.run ~device:(device ()) ~seed:10 ~shots:600 c in
  let sr = Sim.Counts.success_rate counts 0b01 in
  check bool "corrected outcome dominates" true (sr > 0.8);
  check bool "noise leaves a residue" true (sr < 1.0)

let () =
  Alcotest.run "sim"
    [
      ( "state",
        [
          Alcotest.test_case "init" `Quick test_init_ground;
          Alcotest.test_case "x" `Quick test_x_flips;
          Alcotest.test_case "h" `Quick test_h_superposition;
          Alcotest.test_case "rotations" `Quick test_rotation_identities;
          Alcotest.test_case "sx" `Quick test_sx_squared_is_x;
          Alcotest.test_case "bell" `Quick test_bell_state;
          Alcotest.test_case "cz" `Quick test_cz_phase;
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "rzz" `Quick test_rzz_diagonal_phase;
          Alcotest.test_case "measure deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "measure collapse" `Quick test_measure_collapses;
          Alcotest.test_case "reset" `Quick test_reset_forces_ground;
          Alcotest.test_case "pauli" `Quick test_pauli_channel;
          Alcotest.test_case "width guard" `Quick test_width_guard;
        ] );
      ( "counts",
        [
          Alcotest.test_case "basic" `Quick test_counts_basic;
          Alcotest.test_case "tvd axioms" `Quick test_tvd_axioms;
          Alcotest.test_case "expectation" `Quick test_expectation;
          Alcotest.test_case "of probs" `Quick test_of_probs;
        ] );
      ( "executor",
        [
          Alcotest.test_case "bell sampling" `Quick test_executor_bell;
          Alcotest.test_case "dynamic conditional" `Quick test_executor_dynamic_teleport_like;
          Alcotest.test_case "reset and reuse" `Quick test_executor_reset_reuse;
          Alcotest.test_case "exact distribution" `Quick test_distribution_exact;
          Alcotest.test_case "wide circuit compaction" `Quick test_executor_compacts_wide_circuits;
        ] );
      ( "noise",
        [
          Alcotest.test_case "trend preserved" `Quick test_noise_preserves_trend;
          Alcotest.test_case "tvd positive" `Quick test_noise_tvd_positive;
          Alcotest.test_case "ideal device" `Quick test_noise_ideal_device_is_noiseless;
          Alcotest.test_case "idle accumulates" `Quick test_longer_idle_means_more_error;
          Alcotest.test_case "reset under noise" `Quick test_noise_reset_path;
          Alcotest.test_case "conditional X under noise" `Quick test_noise_if_x_path;
        ] );
    ]
