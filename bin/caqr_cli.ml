(* caqr — command-line front end for the CaQR compiler.

   Subcommands:
     list                      show the benchmark registry
     compile  <bench>          compile a benchmark with a chosen strategy
     sweep    <bench>          print the qubit/depth tradeoff table
     check    <bench>          reuse applicability verdict
     simulate <bench>          compile and run (optionally noisy) simulation
     verify   <bench>          translation-validate every strategy's output
     fuzz                      differential fuzzing with replayable seeds
     chaos                     fault-injection sweep over every guard site
     serve                     compilation-as-a-service daemon (Unix socket)
     call                      send newline-JSON requests to a daemon
     chaos-serve               wire-level fault injection against the daemon

   Exit codes (see README): 0 success; 1 verification/oracle violation
   (or, for call, a request answered ok:false); 2 usage error; 3 compile
   degraded to baseline; 4 internal error. *)

let all_strategies = Caqr.Pipeline.all_strategies

let input_of_entry (e : Benchmarks.Suite.entry) =
  match e.Benchmarks.Suite.kind with
  | Benchmarks.Suite.Regular -> Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit
  | Benchmarks.Suite.Commutable g -> Caqr.Pipeline.Commutable g

let find_entry name =
  try Ok (Benchmarks.Suite.find name)
  with Not_found ->
    Error
      (`Msg
        (Printf.sprintf "unknown benchmark %S; run `caqr_cli list`" name))

let bench_arg =
  let parse s = find_entry s in
  let print ppf (e : Benchmarks.Suite.entry) =
    Format.pp_print_string ppf e.Benchmarks.Suite.name
  in
  Cmdliner.Arg.conv (parse, print)

let bench_pos =
  Cmdliner.Arg.(
    required & pos 0 (some bench_arg) None & info [] ~docv:"BENCHMARK")

let strategy_arg =
  (* One grammar for every front end: Pipeline owns the name map, so the
     error message always lists exactly the wired strategies. *)
  let parse s =
    match Caqr.Pipeline.strategy_of_name s with
    | Ok st -> Ok st
    | Error msg -> Error (`Msg msg)
  in
  let print ppf s = Format.pp_print_string ppf (Caqr.Pipeline.strategy_name s) in
  Cmdliner.Arg.conv (parse, print)

let strategy_flag =
  Cmdliner.Arg.(
    value
    & opt strategy_arg Caqr.Pipeline.Sr
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Compilation strategy: baseline, qs-max-reuse, qs-min-depth, \
           qs-best-fidelity, sr, cone, gidnet, or an integer qubit \
           budget.")

let qasm_flag =
  Cmdliner.Arg.(
    value & flag & info [ "qasm" ] ~doc:"Print the compiled OpenQASM 3.")

let noisy_flag =
  Cmdliner.Arg.(
    value & flag
    & info [ "noisy" ] ~doc:"Simulate with the synthetic Mumbai noise model.")

let shots_flag =
  Cmdliner.Arg.(
    value & opt int 1024 & info [ "shots" ] ~docv:"N" ~doc:"Shots to sample.")

let seed_flag =
  Cmdliner.Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Random seed for simulation and verification probes.")

let timings_flag =
  Cmdliner.Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:
          "Collect pipeline metrics and print per-phase wall-clock timings \
           and work counters after the result.")

let jobs_flag =
  Cmdliner.Arg.(
    value
    & opt int (Exec.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the compilation fan-out, fuzz batches and \
           shot sampling. Output is byte-identical for every value; only \
           wall-clock time changes. Defaults to the runtime's recommended \
           domain count (capped).")

let timeout_flag =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Cooperative wall-clock budget for the compile. Hot loops poll \
           the deadline and trip a typed budget error; with $(b,--fallback) \
           the degradation ladder turns the trip into a demotion.")

let fallback_flag =
  Cmdliner.Arg.(
    value & flag
    & info [ "fallback" ]
        ~doc:
          "Supervise the compile with the degradation ladder: a failing \
           strategy demotes toward baseline instead of aborting. Exits 3 \
           when the compile only succeeded by demoting to baseline.")

let max_sim_qubits_flag =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "max-sim-qubits" ] ~docv:"N"
        ~doc:
          "Cap the state-vector simulator width (default 24, hard ceiling \
           26). Over-cap circuits are refused with a structured error \
           instead of an allocation blow-up.")

let apply_sim_cap = Option.iter Sim.State.set_max_qubits

let options_for ?(jobs = 1) ?deadline_ms ?(fallback = false) timings =
  {
    Caqr.Pipeline.default with
    collect_metrics = timings;
    jobs;
    fallback;
    deadline_ms;
  }

(* Exit 3: the ladder saved the run, but only by abandoning reuse
   entirely — scripts relying on a reuse strategy need to know. *)
let report_degradation requested (r : Caqr.Pipeline.report) =
  List.iter
    (fun (d : Caqr.Pipeline.degraded) ->
      Printf.eprintf "degraded: %s failed: %s\n"
        (Caqr.Pipeline.strategy_name d.Caqr.Pipeline.from_strategy)
        (Guard.Error.to_string d.Caqr.Pipeline.error))
    r.Caqr.Pipeline.degraded;
  if
    r.Caqr.Pipeline.degraded <> []
    && r.Caqr.Pipeline.strategy = Caqr.Pipeline.Baseline
    && requested <> Caqr.Pipeline.Baseline
  then exit 3

let print_metrics (r : Caqr.Pipeline.report) =
  match r.Caqr.Pipeline.metrics with
  | Some m -> Format.printf "%a@." Obs.Metrics.pp m
  | None -> ()

let level_arg =
  let parse s =
    match Verify.level_of_string s with
    | Ok l -> Ok l
    | Error msg -> Error (`Msg msg)
  in
  let print ppf l = Format.pp_print_string ppf (Verify.level_name l) in
  Cmdliner.Arg.conv (parse, print)

let level_flag =
  Cmdliner.Arg.(
    value
    & opt level_arg Verify.Auto
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:
          "Verification level: static (structural checks only), sampled \
           (statistical probes), exact (branch-enumeration equivalence), or \
           auto (exact when the circuits fit, else probes).")

let device_for (e : Benchmarks.Suite.entry) =
  Hardware.Device.heavy_hex_for e.Benchmarks.Suite.circuit.Quantum.Circuit.num_qubits

(* ---- list ---- *)

let list_cmd =
  let run () =
    Printf.printf "%-20s %-11s %s\n" "name" "kind" "description";
    List.iter
      (fun (e : Benchmarks.Suite.entry) ->
        Printf.printf "%-20s %-11s %s\n" e.Benchmarks.Suite.name
          (match e.Benchmarks.Suite.kind with
           | Benchmarks.Suite.Regular -> "regular"
           | Benchmarks.Suite.Commutable _ -> "commutable")
          e.Benchmarks.Suite.description)
      (Benchmarks.Suite.table1 ());
    (* The large corpus lists from its generator table — names and
       descriptions only, no 1000-qubit construction. *)
    List.iter
      (fun (g : Benchmarks.Large.gen) ->
        Printf.printf "%-20s %-11s %s\n" g.Benchmarks.Large.name "regular"
          g.Benchmarks.Large.description)
      (Benchmarks.Large.generators ())
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "list" ~doc:"List the benchmark registry")
    Cmdliner.Term.(const run $ const ())

(* ---- compile ---- *)

let compile_cmd =
  let run entry strategy qasm timings jobs deadline_ms fallback =
    let device = device_for entry in
    let r =
      Caqr.Pipeline.compile
        ~options:(options_for ~jobs ?deadline_ms ~fallback timings)
        device strategy (input_of_entry entry)
    in
    Format.printf "%s / %s:@.  %a@.  reuse pairs: %d@.  quality: %s@."
      entry.Benchmarks.Suite.name
      (Caqr.Pipeline.strategy_name r.Caqr.Pipeline.strategy)
      Transpiler.Transpile.pp_stats r.Caqr.Pipeline.stats r.Caqr.Pipeline.reuse_pairs
      (Caqr.Quality.to_string r.Caqr.Pipeline.quality);
    print_metrics r;
    if qasm then
      print_string
        (Quantum.Qasm.to_string (fst (Quantum.Circuit.compact_qubits r.Caqr.Pipeline.physical)));
    report_degradation strategy r
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "compile" ~doc:"Compile a benchmark")
    Cmdliner.Term.(
      const run $ bench_pos $ strategy_flag $ qasm_flag $ timings_flag
      $ jobs_flag $ timeout_flag $ fallback_flag)

(* ---- sweep ---- *)

let sweep_cmd =
  let run entry jobs =
    let device = device_for entry in
    Printf.printf "%-8s %-12s %-14s %-14s %-8s\n" "qubits" "log.depth"
      "compiled.depth" "duration(dt)" "swaps";
    List.iter
      (fun (r : Caqr.Pipeline.sweep_row) ->
        Printf.printf "%-8d %-12d %-14d %-14d %-8d\n" r.Caqr.Pipeline.usage
          r.Caqr.Pipeline.logical_depth r.Caqr.Pipeline.stats.Transpiler.Transpile.depth
          r.Caqr.Pipeline.stats.Transpiler.Transpile.duration_dt
          r.Caqr.Pipeline.stats.Transpiler.Transpile.swaps)
      (Caqr.Pipeline.sweep_stats ~jobs device (input_of_entry entry))
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "sweep" ~doc:"Print the qubit/depth tradeoff table")
    Cmdliner.Term.(const run $ bench_pos $ jobs_flag)

(* ---- check ---- *)

let check_cmd =
  let run entry =
    let yes, why = Caqr.Pipeline.beneficial (device_for entry) (input_of_entry entry) in
    Printf.printf "%s: %s — %s\n" entry.Benchmarks.Suite.name
      (if yes then "reuse is beneficial" else "no reuse benefit")
      why;
    exit (if yes then 0 else 1)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "check" ~doc:"Reuse applicability verdict")
    Cmdliner.Term.(const run $ bench_pos)

(* ---- qasmc: compile a circuit from an OpenQASM file ---- *)

let qasmc_cmd =
  let file_pos =
    Cmdliner.Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE.qasm")
  in
  let run path strategy qasm timings jobs deadline_ms fallback =
    let text =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Quantum.Qasm_parser.parse text with
    | Error e ->
      (* A malformed input is a usage error, not an internal one; the
         diagnostic carries the offending line and column. *)
      Printf.eprintf "%s: %s\n" path (Guard.Error.to_string e);
      exit 2
    | Ok circuit ->
      let device =
        Hardware.Device.heavy_hex_for circuit.Quantum.Circuit.num_qubits
      in
      let r =
        Caqr.Pipeline.compile
          ~options:(options_for ~jobs ?deadline_ms ~fallback timings)
          device strategy (Caqr.Pipeline.Regular circuit)
      in
      Format.printf "%s / %s:@.  %a@.  reuse pairs: %d@.  quality: %s@." path
        (Caqr.Pipeline.strategy_name r.Caqr.Pipeline.strategy)
        Transpiler.Transpile.pp_stats r.Caqr.Pipeline.stats r.Caqr.Pipeline.reuse_pairs
        (Caqr.Quality.to_string r.Caqr.Pipeline.quality);
      print_metrics r;
      if qasm then
        print_string
          (Quantum.Qasm.to_string
             (fst (Quantum.Circuit.compact_qubits r.Caqr.Pipeline.physical)));
      report_degradation strategy r
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "qasmc" ~doc:"Compile an OpenQASM file with CaQR")
    Cmdliner.Term.(
      const run $ file_pos $ strategy_flag $ qasm_flag $ timings_flag
      $ jobs_flag $ timeout_flag $ fallback_flag)

(* ---- simulate ---- *)

let simulate_cmd =
  let run entry strategy noisy shots seed jobs max_sim_qubits =
    apply_sim_cap max_sim_qubits;
    let device = device_for entry in
    let r =
      Caqr.Pipeline.compile ~options:(options_for ~jobs false) device strategy
        (input_of_entry entry)
    in
    let counts =
      (* The noise model keeps one monolithic RNG stream per run, so it
         stays sequential; ideal sampling shot-splits over the pool. *)
      if noisy then Sim.Noise.run ~device ~seed ~shots r.Caqr.Pipeline.physical
      else Sim.Executor.run ~jobs ~seed ~shots r.Caqr.Pipeline.physical
    in
    Format.printf "%s / %s (%s, %d shots):@.%a@." entry.Benchmarks.Suite.name
      (Caqr.Pipeline.strategy_name strategy)
      (if noisy then "noisy" else "ideal")
      shots Sim.Counts.pp counts
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "simulate" ~doc:"Compile and simulate a benchmark")
    Cmdliner.Term.(
      const run $ bench_pos $ strategy_flag $ noisy_flag $ shots_flag
      $ seed_flag $ jobs_flag $ max_sim_qubits_flag)

(* ---- verify ---- *)

let verify_cmd =
  let run entry level seed jobs =
    let device = device_for entry in
    let input = input_of_entry entry in
    let options =
      { Caqr.Pipeline.default with verify = Some level; seed; jobs }
    in
    Printf.printf "%s — translation validation (level %s, seed %d)\n"
      entry.Benchmarks.Suite.name (Verify.level_name level) seed;
    Printf.printf "%-18s %-8s %s\n" "strategy" "pairs" "verdict";
    let failed = ref false in
    (* The strategy fan-out (compile + verify per strategy) runs on the
       pool; printing happens afterwards, in strategy order. *)
    let reports =
      Caqr.Pipeline.compile_all ~options device
        (List.map snd all_strategies) input
    in
    List.iter2
      (fun (name, _) (r : Caqr.Pipeline.report) ->
        let verdict =
          match r.Caqr.Pipeline.verification with
          | Some v -> v
          | None -> Verify.Inconclusive "verification was not run"
        in
        if Verify.Verdict.is_inequivalent verdict then failed := true;
        Printf.printf "%-18s %-8d %s\n%!" name r.Caqr.Pipeline.reuse_pairs
          (Verify.Verdict.to_string verdict))
      all_strategies reports;
    if !failed then begin
      Printf.eprintf "verification FAILED: a strategy emitted an inequivalent circuit\n";
      exit 1
    end
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "verify"
       ~doc:
         "Compile a benchmark with every strategy and translation-validate \
          each output; exits non-zero if any verdict is inequivalent")
    Cmdliner.Term.(const run $ bench_pos $ level_flag $ seed_flag $ jobs_flag)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let cases_flag =
    Cmdliner.Arg.(
      value & opt int 200
      & info [ "cases" ] ~docv:"K" ~doc:"Number of random circuits to check.")
  in
  let fuzz_seed_flag =
    Cmdliner.Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Master seed. The whole case stream is a pure function of it: \
             the same seed replays the same circuits and verdicts.")
  in
  let max_qubits_flag =
    Cmdliner.Arg.(
      value & opt int Fuzz.Gen.default.Fuzz.Gen.max_qubits
      & info [ "max-qubits" ] ~docv:"N" ~doc:"Widest generated circuit.")
  in
  let max_gates_flag =
    Cmdliner.Arg.(
      value & opt int Fuzz.Gen.default.Fuzz.Gen.max_gates
      & info [ "max-gates" ] ~docv:"N" ~doc:"Longest generated circuit.")
  in
  let oracle_arg =
    let parse s =
      match Fuzz.Oracle.of_name s with
      | Ok o -> Ok o
      | Error msg -> Error (`Msg msg)
    in
    let print ppf o = Format.pp_print_string ppf (Fuzz.Oracle.name o) in
    Cmdliner.Arg.conv (parse, print)
  in
  let oracles_flag =
    Cmdliner.Arg.(
      value & opt_all oracle_arg []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            "Restrict to one oracle (repeatable): engines, verified, \
             roundtrip, simulation. Default: all of them.")
  in
  let corpus_flag =
    Cmdliner.Arg.(
      value
      & opt (some string) (Some Fuzz.Corpus.default_dir)
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory for minimized counterexamples and their manifest.")
  in
  let no_corpus_flag =
    Cmdliner.Arg.(
      value & flag
      & info [ "no-corpus" ] ~doc:"Do not persist counterexamples.")
  in
  let run seed cases max_qubits max_gates oracles corpus no_corpus timings jobs =
    if timings then Obs.Metrics.reset ();
    let config =
      {
        Fuzz.Gen.default with
        Fuzz.Gen.max_qubits = max max_qubits Fuzz.Gen.default.Fuzz.Gen.min_qubits;
        max_gates = max max_gates Fuzz.Gen.default.Fuzz.Gen.min_gates;
      }
    in
    let oracles = if oracles = [] then Fuzz.Oracle.all else oracles in
    let corpus_dir = if no_corpus then None else corpus in
    let summary =
      Fuzz.Driver.run ~config ~oracles ?corpus_dir ~jobs ~seed ~cases ()
    in
    Format.printf "%a" Fuzz.Driver.pp_summary summary;
    if timings then Format.printf "%a@." Obs.Metrics.pp (Obs.Metrics.snapshot ());
    if summary.Fuzz.Driver.failures <> [] then exit 1
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random dynamic circuits, run the \
          oracle battery, minimize and persist any counterexample; exits \
          non-zero on any oracle violation")
    Cmdliner.Term.(
      const run $ fuzz_seed_flag $ cases_flag $ max_qubits_flag
      $ max_gates_flag $ oracles_flag $ corpus_flag $ no_corpus_flag
      $ timings_flag $ jobs_flag)

(* ---- chaos ---- *)

let chaos_cmd =
  let chaos_seed_flag =
    Cmdliner.Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Drives which hit of each armed site fails. The whole matrix \
             is a pure function of the seed: repeated runs are \
             byte-identical.")
  in
  let chaos_bench_flag =
    Cmdliner.Arg.(
      value & opt_all bench_arg []
      & info [ "bench" ] ~docv:"BENCHMARK"
          ~doc:
            "Benchmark to sweep the sites over (repeatable). Defaults to a \
             small regular/commutable pair that together reach every \
             site.")
  in
  let run seed deadline_ms benches =
    (* The wire.* sites live in Serve.Transport, above fuzz in the link
       order — the probe that reaches them must be installed from here. *)
    Wirefuzz.install_chaos_probe ();
    let benches =
      match benches with
      | [] ->
        List.map Benchmarks.Suite.find [ "XOR_5"; "Multiply_13"; "QAOA5-0.3" ]
      | bs -> bs
    in
    let workloads =
      List.map
        (fun (e : Benchmarks.Suite.entry) ->
          (e.Benchmarks.Suite.name, input_of_entry e))
        benches
    in
    let cells = Fuzz.Chaos.run ~seed ?deadline_ms workloads in
    Format.printf "%a" Fuzz.Chaos.pp_matrix cells;
    let fired = Fuzz.Chaos.sites_fired cells in
    Format.printf "sites fired: %d/%d (%s)@." (List.length fired)
      (List.length Guard.Inject.sites)
      (String.concat ", " fired);
    if Fuzz.Chaos.any_verify_failed cells then begin
      Printf.eprintf "chaos: a fault produced a VERIFIER-REFUTED artifact\n";
      exit 1
    end;
    if not (Fuzz.Chaos.all_contained cells) then begin
      Printf.eprintf "chaos: a fault escaped the guard layer uncontained\n";
      exit 4
    end
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "chaos"
       ~doc:
         "Arm every registered fault-injection site in turn, run the \
          pipeline workload per benchmark, and check that each fault \
          yields valid output or a structured error. Exits 1 if a fault \
          let a wrong artifact through, 4 if an exception escaped the \
          guards.")
    Cmdliner.Term.(const run $ chaos_seed_flag $ timeout_flag $ chaos_bench_flag)

(* ---- serve: the compilation-as-a-service daemon ---- *)

let addr_conv =
  let parse s =
    match Serve.Transport.addr_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  let print ppf a =
    Format.pp_print_string ppf (Serve.Transport.addr_to_string a)
  in
  Cmdliner.Arg.conv (parse, print)

let addr_flag =
  Cmdliner.Arg.(
    value
    & opt (some addr_conv) None
    & info [ "addr" ] ~docv:"ADDR"
        ~doc:
          "Service address: $(b,unix:)$(i,PATH) (newline-delimited JSON), \
           $(b,tcp:)$(i,HOST):$(i,PORT) (length-prefixed frames; port 0 \
           picks an ephemeral port), or a bare Unix-socket path.")

let socket_flag =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Deprecated alias for $(b,--addr unix:)$(i,PATH).")

(* --addr wins over the deprecated --socket; with neither, the config
   default (unix:caqr.sock). *)
let resolve_addr addr socket =
  match (addr, socket) with
  | Some a, _ -> a
  | None, Some path -> Serve.Transport.Unix path
  | None, None -> Serve.Server.default_config.Serve.Server.addr

let serve_cmd =
  let cache_dir_flag =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "On-disk cache tier. Entries are keyed on (engine version, \
             circuit digest, options fingerprint) and written \
             crash-safely (temp+rename); entries from older engine \
             versions are never served. Default: memory tier only.")
  in
  let cache_mem_flag =
    Cmdliner.Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.mem_capacity
      & info [ "cache-mem" ] ~docv:"N"
          ~doc:"In-memory LRU capacity in entries (0 disables the tier).")
  in
  let default_deadline_flag =
    Cmdliner.Arg.(
      value
      & opt (some int) None
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:"Budget given to requests that carry no deadline_ms.")
  in
  let max_deadline_flag =
    Cmdliner.Arg.(
      value
      & opt (some int) None
      & info [ "max-deadline-ms" ] ~docv:"MS"
          ~doc:"Admission cap: per-request deadlines are clamped to this.")
  in
  let max_batch_flag =
    Cmdliner.Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.max_batch
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Most pipelined requests dispatched in one pool batch.")
  in
  let handler_domains_flag =
    Cmdliner.Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.handler_domains
      & info [ "handler-domains" ] ~docv:"N"
          ~doc:
            "Connection-handler domains: how many clients are served \
             concurrently.")
  in
  let max_inflight_flag =
    Cmdliner.Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Back-pressure: most compile/verify/simulate requests running \
             at once; excess requests are rejected immediately with a \
             recoverable request.overload error. 0 = unlimited.")
  in
  let disk_budget_flag =
    Cmdliner.Arg.(
      value
      & opt (some int) None
      & info [ "disk-budget-bytes" ] ~docv:"BYTES"
          ~doc:
            "Byte cap on the on-disk cache tier; least-recently-used \
             entries are evicted past it. Default: unbounded.")
  in
  let conn_timeout_flag =
    Cmdliner.Arg.(
      value
      & opt (some int) None
      & info [ "conn-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Idle/stall deadline per connection: a peer that completes no \
             batch for this long is answered with a structured \
             request.timeout error and disconnected (slow-loris defence). \
             Default: no deadline.")
  in
  let drain_deadline_flag =
    Cmdliner.Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.drain_deadline_ms
      & info [ "drain-deadline-ms" ] ~docv:"MS"
          ~doc:
            "On SIGTERM/SIGINT the daemon stops accepting, lets in-flight \
             connections finish for at most this long, flushes the disk \
             cache index and exits 0.")
  in
  let run addr socket cache_dir mem_capacity jobs handler_domains max_inflight
      disk_budget_bytes default_deadline_ms max_deadline_ms max_batch
      conn_timeout_ms drain_deadline_ms =
    let addr = resolve_addr addr socket in
    let server =
      Serve.Server.create
        {
          Serve.Server.default_config with
          Serve.Server.addr;
          cache_dir;
          disk_budget_bytes;
          mem_capacity;
          jobs;
          handler_domains;
          max_inflight;
          default_deadline_ms;
          max_deadline_ms;
          max_batch;
          conn_timeout_ms;
          drain_deadline_ms;
        }
    in
    Serve.Server.run server
      ~ready:(fun bound ->
        Printf.printf
          "caqr_cli serve: %s listening on %s (handlers %d, jobs %d%s)\n%!"
          Caqr.Version.engine
          (Serve.Transport.addr_to_string bound)
          handler_domains jobs
          (match cache_dir with
           | Some d -> Printf.sprintf ", disk cache %s" d
           | None -> ""));
    Printf.printf "caqr_cli serve: shutdown\n%!"
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "serve"
       ~doc:
         "Run the compilation service: a long-lived daemon answering JSON \
          compile/verify/simulate/stats/shutdown requests over a Unix \
          socket or TCP, serving connections concurrently with \
          back-pressure, batching pipelined requests onto the execution \
          pool and answering repeats from a content-addressed cache")
    Cmdliner.Term.(
      const run $ addr_flag $ socket_flag $ cache_dir_flag $ cache_mem_flag
      $ jobs_flag $ handler_domains_flag $ max_inflight_flag
      $ disk_budget_flag $ default_deadline_flag $ max_deadline_flag
      $ max_batch_flag $ conn_timeout_flag $ drain_deadline_flag)

(* ---- call: one-shot client for scripts, CI and debugging ---- *)

let call_cmd =
  let requests_pos =
    Cmdliner.Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:"JSON request objects, one per argument, sent as one batch.")
  in
  let contains r needle =
    let n = String.length needle and m = String.length r in
    let rec go i = i + n <= m && (String.sub r i n = needle || go (i + 1)) in
    go 0
  in
  let call_seed_flag =
    Cmdliner.Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seeds the jittered connect backoff, so a scripted retry \
             schedule is reproducible.")
  in
  let run addr socket seed requests =
    let addr = resolve_addr addr socket in
    let responses = Serve.Client.call_retry ~addr ~seed requests in
    List.iter print_endline responses;
    (* Responses are single-line JSON objects; a failure always carries
       the literal field "ok":false. Overload rejections get their own
       exit code so scripts can retry instead of giving up. *)
    let failed r = contains r {|"ok":false|} in
    let overloaded r =
      failed r && contains r {|"site":"request.overload"|}
    in
    if List.exists overloaded responses then exit 5
    else if List.exists failed responses then exit 1
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "call"
       ~doc:
         "Send requests to a running daemon and print one response per \
          line; exits 5 if any response is an overload rejection, 1 if \
          any other response is ok:false")
    Cmdliner.Term.(
      const run $ addr_flag $ socket_flag $ call_seed_flag $ requests_pos)

(* ---- chaos-serve: wire-level fault injection against a live daemon ---- *)

let chaos_serve_cmd =
  let seed_flag =
    Cmdliner.Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Derives every attack in the campaign; the same (seed, cases, \
             addr) replays the same byte streams.")
  in
  let cases_flag =
    Cmdliner.Arg.(
      value & opt int 100
      & info [ "cases" ] ~docv:"N" ~doc:"Attack cases per campaign.")
  in
  let stall_flag =
    Cmdliner.Arg.(
      value & opt float 0.6
      & info [ "stall-s" ] ~docv:"SECONDS"
          ~doc:
            "How long the slow-loris attack holds a partial frame. Set it \
             past the daemon's --conn-timeout-ms to see structured \
             timeouts in the summary.")
  in
  let artifact_flag =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "artifact" ] ~docv:"PATH"
          ~doc:
            "On failure, write a replayable counterexample report (seed, \
             case index, attack, message per failure) to this file.")
  in
  let write_artifact path (summaries : (int * Wirefuzz.summary) list) =
    let buf = Buffer.create 256 in
    List.iter
      (fun (seed, (s : Wirefuzz.summary)) ->
        List.iter
          (fun (f : Wirefuzz.failure) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "addr=%s seed=%d cases=%d case=%d attack=%s %s\n" s.addr
                 seed s.cases f.case_index
                 (Wirefuzz.attack_name f.attack)
                 f.message))
          s.failures)
      summaries;
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc
  in
  let run addr socket seed cases stall_s artifact =
    let summaries =
      match (addr, socket) with
      | Some _, _ | _, Some _ ->
        (* Attack an external daemon the operator already started. *)
        let addr = resolve_addr addr socket in
        [ (seed, Wirefuzz.run ~stall_s ~seed ~cases ~addr ()) ]
      | None, None ->
        (* Self-contained: spawn an in-process daemon per transport and
           split the case budget across both framings. *)
        let per = max 1 (cases / 2) in
        List.map
          (fun transport ->
            (seed, Wirefuzz.selftest ~seed ~cases:per ~transport ()))
          [ `Unix; `Tcp ]
    in
    List.iter
      (fun (_, s) -> Format.printf "%a@." Wirefuzz.pp_summary s)
      summaries;
    let failed =
      List.exists (fun (_, (s : Wirefuzz.summary)) -> s.failures <> []) summaries
    in
    if failed then begin
      Option.iter (fun p -> write_artifact p summaries) artifact;
      Printf.eprintf "chaos-serve: the daemon broke a wire promise\n";
      exit 1
    end
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "chaos-serve"
       ~doc:
         "Wire-level chaos: drive seeded mutated byte streams (truncated \
          frames, garbage and oversized length prefixes, mid-batch \
          disconnects, slow-loris stalls, corrupted JSON) at a live \
          daemon and check it never crashes, never hangs past the \
          deadline, and still answers a well-formed request \
          byte-identically. With --addr the target is an external \
          daemon; otherwise an in-process daemon is spawned per \
          transport and the case budget split across both. Exits 1 on \
          any broken promise.")
    Cmdliner.Term.(
      const run $ addr_flag $ socket_flag $ seed_flag $ cases_flag
      $ stall_flag $ artifact_flag)

(* ---- cache-warm: precompile the registry into a disk cache ---- *)

let cache_warm_cmd =
  let cache_dir_pos =
    Cmdliner.Arg.(
      required
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Disk cache tier to fill — point the daemon at the same DIR.")
  in
  let strategies_flag =
    Cmdliner.Arg.(
      value
      & opt_all string [ "sr" ]
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Strategy to precompile (repeatable; the protocol grammar: \
             sr, baseline, qs-max-reuse, qs-min-depth, qs-best-fidelity, \
             cone, gidnet or a qubit budget). Default: sr, the protocol \
             default.")
  in
  let disk_budget_flag =
    Cmdliner.Arg.(
      value
      & opt (some int) None
      & info [ "disk-budget-bytes" ] ~docv:"BYTES"
          ~doc:"Byte cap applied while warming (oldest entries evicted).")
  in
  let run cache_dir strategies disk_budget_bytes jobs =
    (* Validate the strategy grammar up front — one bad flag should be a
       usage error, not N per-benchmark failures. *)
    List.iter
      (fun s ->
        match Serve.Protocol.strategy_of_string s with
        | Ok _ -> ()
        | Error msg ->
          Printf.eprintf "caqr_cli cache-warm: %s\n" msg;
          exit 2)
      strategies;
    (* Warming goes through the server's own handler, so the bytes on
       disk are exactly the bytes a later daemon replays on a hit. *)
    let server =
      Serve.Server.create
        {
          Serve.Server.default_config with
          Serve.Server.cache_dir = Some cache_dir;
          disk_budget_bytes;
          jobs;
        }
    in
    let lines =
      List.concat_map
        (fun (e : Benchmarks.Suite.entry) ->
          List.map
            (fun s ->
              Printf.sprintf {|{"op":"compile","bench":%S,"strategy":%S}|}
                e.Benchmarks.Suite.name s)
            strategies)
        (Benchmarks.Suite.table1 ())
    in
    let responses, _ = Serve.Server.handle_batch server lines in
    let failed =
      List.filter
        (fun r ->
          let needle = {|"ok":false|} in
          let n = String.length needle and m = String.length r in
          let rec go i =
            i + n <= m && (String.sub r i n = needle || go (i + 1))
          in
          go 0)
        responses
    in
    Printf.printf "caqr_cli cache-warm: %d of %d entries compiled into %s\n%!"
      (List.length responses - List.length failed)
      (List.length responses) cache_dir;
    List.iter (fun r -> Printf.eprintf "cache-warm failed: %s\n" r) failed;
    if failed <> [] then exit 1
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "cache-warm"
       ~doc:
         "Precompile the benchmark registry into an on-disk cache tier so \
          a daemon started with the same --cache-dir answers its first \
          requests from cache. Exits 1 if any benchmark failed to \
          compile.")
    Cmdliner.Term.(
      const run $ cache_dir_pos $ strategies_flag $ disk_budget_flag
      $ jobs_flag)

let () =
  let info =
    Cmdliner.Cmd.info "caqr_cli" ~version:Caqr.Version.string
      ~doc:"Compiler-assisted qubit reuse through dynamic circuits"
  in
  let code =
    try
      Cmdliner.Cmd.eval ~catch:false
        (Cmdliner.Cmd.group info
           [ list_cmd; compile_cmd; sweep_cmd; check_cmd; simulate_cmd; verify_cmd; qasmc_cmd; fuzz_cmd; chaos_cmd; serve_cmd; call_cmd; cache_warm_cmd; chaos_serve_cmd ])
    with
    | Guard.Error.Guard_error e | Guard.Error.Budget_exceeded e ->
      (* Structured errors crossing the command boundary are internal
         failures the guard layer DID catch — report and exit 4. *)
      Printf.eprintf "caqr_cli: %s\n" (Guard.Error.to_string e);
      4
  in
  (* Map cmdliner's CLI-error codes onto the documented table: 2 for
     usage errors, 4 for internal ones. *)
  exit (match code with 124 -> 2 | 125 -> 4 | c -> c)
