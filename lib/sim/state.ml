type t = { n : int; re : float array; im : float array }

(* The dense vector is 2 * 8 bytes per amplitude: 26 qubits is already
   a 1 GiB state, so the ceiling is absolute regardless of the
   configured cap. *)
let hard_max_qubits = 26
let default_max_qubits = 24

let cap = Atomic.make default_max_qubits

let set_max_qubits n = Atomic.set cap (max 1 (min hard_max_qubits n))
let max_qubits () = Atomic.get cap

(* The cap check allocates nothing: an over-wide request is refused
   before the 2^n arrays exist, as a typed error rather than an OOM. *)
let make n =
  let c = Atomic.get cap in
  if n < 0 then
    Error
      (Guard.Error.v ~stage:"sim.state" ~site:"sim.alloc"
         (Printf.sprintf "negative width %d" n))
  else if n > c then
    Error
      (Guard.Error.v ~stage:"sim.state" ~site:"sim.alloc"
         (Printf.sprintf
            "%d qubits exceeds the simulator cap of %d (2^%d amplitudes)" n c n))
  else begin
    let size = 1 lsl n in
    let re = Array.make size 0. and im = Array.make size 0. in
    re.(0) <- 1.;
    Ok { n; re; im }
  end

let init n =
  match make n with
  | Ok st -> st
  | Error _ -> invalid_arg "State.init: unsupported width"

let num_qubits st = st.n

let copy st = { n = st.n; re = Array.copy st.re; im = Array.copy st.im }

let norm2 st =
  let acc = ref 0. in
  for i = 0 to Array.length st.re - 1 do
    acc := !acc +. (st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i))
  done;
  !acc

let amplitude st i = (st.re.(i), st.im.(i))

let probability st i = (st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i))

let probabilities st = Array.init (Array.length st.re) (probability st)

(* Apply the 2x2 complex matrix [[a b][c d]] to qubit q. *)
let apply_matrix st (ar, ai) (br, bi) (cr, ci) (dr, di) q =
  let bit = 1 lsl q in
  let size = Array.length st.re in
  let re = st.re and im = st.im in
  let i = ref 0 in
  while !i < size do
    if !i land bit = 0 then begin
      let i0 = !i and i1 = !i lor bit in
      let r0 = re.(i0) and m0 = im.(i0) in
      let r1 = re.(i1) and m1 = im.(i1) in
      re.(i0) <- (ar *. r0) -. (ai *. m0) +. (br *. r1) -. (bi *. m1);
      im.(i0) <- (ar *. m0) +. (ai *. r0) +. (br *. m1) +. (bi *. r1);
      re.(i1) <- (cr *. r0) -. (ci *. m0) +. (dr *. r1) -. (di *. m1);
      im.(i1) <- (cr *. m0) +. (ci *. r0) +. (dr *. m1) +. (di *. r1)
    end;
    incr i
  done

let inv_sqrt2 = 1. /. sqrt 2.

let apply_one_q st g q =
  let z = (0., 0.) and o = (1., 0.) in
  match g with
  | Quantum.Gate.H ->
    apply_matrix st (inv_sqrt2, 0.) (inv_sqrt2, 0.) (inv_sqrt2, 0.)
      (-.inv_sqrt2, 0.) q
  | Quantum.Gate.X -> apply_matrix st z o o z q
  | Quantum.Gate.Y -> apply_matrix st z (0., -1.) (0., 1.) z q
  | Quantum.Gate.Z -> apply_matrix st o z z (-1., 0.) q
  | Quantum.Gate.S -> apply_matrix st o z z (0., 1.) q
  | Quantum.Gate.Sdg -> apply_matrix st o z z (0., -1.) q
  | Quantum.Gate.T -> apply_matrix st o z z (inv_sqrt2, inv_sqrt2) q
  | Quantum.Gate.Tdg -> apply_matrix st o z z (inv_sqrt2, -.inv_sqrt2) q
  | Quantum.Gate.Sx ->
    apply_matrix st (0.5, 0.5) (0.5, -0.5) (0.5, -0.5) (0.5, 0.5) q
  | Quantum.Gate.Rx th ->
    let c = cos (th /. 2.) and s = sin (th /. 2.) in
    apply_matrix st (c, 0.) (0., -.s) (0., -.s) (c, 0.) q
  | Quantum.Gate.Ry th ->
    let c = cos (th /. 2.) and s = sin (th /. 2.) in
    apply_matrix st (c, 0.) (-.s, 0.) (s, 0.) (c, 0.) q
  | Quantum.Gate.Rz th ->
    let c = cos (th /. 2.) and s = sin (th /. 2.) in
    apply_matrix st (c, -.s) z z (c, s) q
  | Quantum.Gate.Phase th -> apply_matrix st o z z (cos th, sin th) q

let apply_cx st ctrl tgt =
  if ctrl = tgt then invalid_arg "State.apply_cx: equal operands";
  let cb = 1 lsl ctrl and tb = 1 lsl tgt in
  let re = st.re and im = st.im in
  let size = Array.length re in
  for i = 0 to size - 1 do
    (* Swap amplitudes of |..c=1,t=0..> and |..c=1,t=1..>, visiting each
       pair once via the t=0 member. *)
    if i land cb <> 0 && i land tb = 0 then begin
      let j = i lor tb in
      let r = re.(i) and m = im.(i) in
      re.(i) <- re.(j);
      im.(i) <- im.(j);
      re.(j) <- r;
      im.(j) <- m
    end
  done

let apply_cz st a b =
  if a = b then invalid_arg "State.apply_cz: equal operands";
  let ab = 1 lsl a and bb = 1 lsl b in
  for i = 0 to Array.length st.re - 1 do
    if i land ab <> 0 && i land bb <> 0 then begin
      st.re.(i) <- -.st.re.(i);
      st.im.(i) <- -.st.im.(i)
    end
  done

let apply_rzz st th a b =
  if a = b then invalid_arg "State.apply_rzz: equal operands";
  let ab = 1 lsl a and bb = 1 lsl b in
  let c = cos (th /. 2.) and s = sin (th /. 2.) in
  for i = 0 to Array.length st.re - 1 do
    (* Phase exp(-i th/2) when Z.Z eigenvalue is +1 (equal bits), else
       exp(+i th/2). *)
    let sign = if (i land ab <> 0) = (i land bb <> 0) then -.s else s in
    let r = st.re.(i) and m = st.im.(i) in
    st.re.(i) <- (c *. r) -. (sign *. m);
    st.im.(i) <- (c *. m) +. (sign *. r)
  done

let apply_swap st a b =
  if a = b then invalid_arg "State.apply_swap: equal operands";
  let ab = 1 lsl a and bb = 1 lsl b in
  for i = 0 to Array.length st.re - 1 do
    let ba = i land ab <> 0 and bbit = i land bb <> 0 in
    if ba && not bbit then begin
      let j = i lxor ab lxor bb in
      let r = st.re.(i) and m = st.im.(i) in
      st.re.(i) <- st.re.(j);
      st.im.(i) <- st.im.(j);
      st.re.(j) <- r;
      st.im.(j) <- m
    end
  done

let apply_pauli st p q =
  match p with
  | 0 -> ()
  | 1 -> apply_one_q st Quantum.Gate.X q
  | 2 -> apply_one_q st Quantum.Gate.Y q
  | 3 -> apply_one_q st Quantum.Gate.Z q
  | _ -> invalid_arg "State.apply_pauli"

let prob_one st q =
  let bit = 1 lsl q in
  let acc = ref 0. in
  for i = 0 to Array.length st.re - 1 do
    if i land bit <> 0 then
      acc := !acc +. (st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i))
  done;
  !acc

let collapse st q outcome =
  let bit = 1 lsl q in
  let keep i = (i land bit <> 0) = (outcome = 1) in
  let acc = ref 0. in
  for i = 0 to Array.length st.re - 1 do
    if keep i then
      acc := !acc +. (st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i))
    else begin
      st.re.(i) <- 0.;
      st.im.(i) <- 0.
    end
  done;
  let scale = 1. /. sqrt (Float.max !acc 1e-300) in
  for i = 0 to Array.length st.re - 1 do
    if keep i then begin
      st.re.(i) <- st.re.(i) *. scale;
      st.im.(i) <- st.im.(i) *. scale
    end
  done

let measure rng st q =
  let p1 = prob_one st q in
  let outcome = if Random.State.float rng 1. < p1 then 1 else 0 in
  collapse st q outcome;
  outcome

let reset rng st q =
  let outcome = measure rng st q in
  if outcome = 1 then apply_one_q st Quantum.Gate.X q
