(** Dense state-vector over [n] qubits (little-endian: qubit [q] is bit [q]
    of the basis index). Supports the dynamic-circuit primitives the paper
    relies on: projective mid-circuit measurement with collapse, reset, and
    X conditioned on a classical bit. Mutable: gates update in place. *)

type t

(** [make n] is |0...0> on [n] qubits, or a typed error when [n] is
    negative or exceeds the configured cap ({!max_qubits}, default 24).
    The check runs before any allocation, so an over-wide request costs
    nothing — a structured refusal instead of an OOM. *)
val make : int -> (t, Guard.Error.t) result

(** Raising wrapper over {!make}: raises [Invalid_argument] on an
    unsupported width. *)
val init : int -> t

(** Current simulator width cap (qubits). *)
val max_qubits : unit -> int

(** [set_max_qubits n] sets the cap, clamped to [\[1, 26\]] — the hard
    ceiling past which the dense vector no longer fits sane memory. *)
val set_max_qubits : int -> unit

val num_qubits : t -> int

(** Squared norm (should stay 1 up to rounding). *)
val norm2 : t -> float

(** Amplitude of basis state [i] as [(re, im)]. *)
val amplitude : t -> int -> float * float

(** Probability of measuring basis state [i]. *)
val probability : t -> int -> float

(** Full probability vector, length [2^n]. *)
val probabilities : t -> float array

val apply_one_q : t -> Quantum.Gate.one_q -> int -> unit
val apply_cx : t -> int -> int -> unit
val apply_cz : t -> int -> int -> unit
val apply_rzz : t -> float -> int -> int -> unit
val apply_swap : t -> int -> int -> unit

(** Apply a Pauli (for noise injection): 0 = I, 1 = X, 2 = Y, 3 = Z. *)
val apply_pauli : t -> int -> int -> unit

(** Deep copy — branch-enumeration checkers fork the state at each
    measurement instead of sampling it. *)
val copy : t -> t

(** [collapse st q outcome] projects qubit [q] onto [outcome] and
    renormalizes, regardless of how unlikely the outcome was (callers
    weigh branches by {!prob_one} themselves). *)
val collapse : t -> int -> int -> unit

(** [measure rng st q] samples an outcome, collapses, renormalizes. *)
val measure : Random.State.t -> t -> int -> int

(** Measure-and-discard: force the qubit to |0> (measure, X if 1). *)
val reset : Random.State.t -> t -> int -> unit

(** Probability that qubit [q] reads 1. *)
val prob_one : t -> int -> float
