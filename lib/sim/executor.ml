let apply_gate rng st creg kind =
  match kind with
  | Quantum.Gate.One_q (g, q) -> State.apply_one_q st g q
  | Quantum.Gate.Cx (a, b) -> State.apply_cx st a b
  | Quantum.Gate.Cz (a, b) -> State.apply_cz st a b
  | Quantum.Gate.Rzz (th, a, b) -> State.apply_rzz st th a b
  | Quantum.Gate.Swap (a, b) -> State.apply_swap st a b
  | Quantum.Gate.Measure (q, c) ->
    let outcome = State.measure rng st q in
    creg := (!creg land lnot (1 lsl c)) lor (outcome lsl c)
  | Quantum.Gate.Reset q -> State.reset rng st q
  | Quantum.Gate.If_x (c, q) -> if !creg land (1 lsl c) <> 0 then State.apply_one_q st Quantum.Gate.X q
  | Quantum.Gate.Barrier _ -> ()

let run_shot rng (c : Quantum.Circuit.t) =
  Guard.Inject.hit "sim.shot";
  Guard.Budget.checkpoint ~stage:"sim.executor" ~site:"sim.shot";
  let st = State.init c.num_qubits in
  let creg = ref 0 in
  Array.iter (fun g -> apply_gate rng st creg g.Quantum.Gate.kind) c.gates;
  !creg

let compact c = fst (Quantum.Circuit.compact_qubits c)

(* Shots are sampled in fixed-size batches. Batch [i]'s RNG is a pure
   function of (seed, i) — via the splittable stream the pool hands each
   task — so the merged counts are byte-identical for every [jobs]
   value, and identical again to the jobs=1 run. The batch size is a
   constant, NOT derived from [jobs]: deriving it from [jobs] would
   change the stream partition and break the determinism contract. *)
let shots_per_batch = 256

let rng_of_prng prng =
  let word () = Int64.to_int (Int64.logand (Exec.Prng.bits64 prng) 0x3FFFFFFFL) in
  Random.State.make [| word (); word (); 0xe7ec |]

let run ?jobs ~seed ~shots circuit =
  let circuit = compact circuit in
  if shots <= 0 then Counts.create ~num_clbits:circuit.num_clbits
  else begin
    let batches = (shots + shots_per_batch - 1) / shots_per_batch in
    let sizes =
      List.init batches (fun i ->
          min shots_per_batch (shots - (i * shots_per_batch)))
    in
    let parts =
      Exec.Pool.map_seeded ?jobs ~seed
        (fun prng size ->
          let rng = rng_of_prng prng in
          let counts = Counts.create ~num_clbits:circuit.num_clbits in
          for _ = 1 to size do
            Counts.add counts (run_shot rng circuit)
          done;
          counts)
        sizes
    in
    List.fold_left Counts.merge
      (Counts.create ~num_clbits:circuit.num_clbits)
      parts
  end

(* Dynamic ops other than a trailing block of measurements make the
   distribution shot-dependent. *)
let only_final_measurements (c : Quantum.Circuit.t) =
  let seen_measure = Array.make (max 1 c.num_qubits) false in
  let ok = ref true in
  Array.iter
    (fun g ->
      match g.Quantum.Gate.kind with
      | Quantum.Gate.Measure (q, _) -> seen_measure.(q) <- true
      | Quantum.Gate.Reset _ | Quantum.Gate.If_x _ -> ok := false
      | k -> List.iter (fun q -> if seen_measure.(q) then ok := false) (Quantum.Gate.qubits k))
    c.gates;
  !ok

let distribution ~seed circuit =
  let circuit = compact circuit in
  if not (only_final_measurements circuit) then run ~seed ~shots:4096 circuit
  else begin
    let rng = Random.State.make [| seed |] in
    let st = State.init circuit.num_qubits in
    (* clbit <- qubit wiring of the final measurements *)
    let wiring = ref [] in
    Array.iter
      (fun g ->
        match g.Quantum.Gate.kind with
        | Quantum.Gate.Measure (q, c) -> wiring := (q, c) :: !wiring
        | k -> apply_gate rng st (ref 0) k)
      circuit.gates;
    let probs = State.probabilities st in
    let table = Hashtbl.create 64 in
    Array.iteri
      (fun basis p ->
        if p > 1e-12 then begin
          let outcome =
            List.fold_left
              (fun acc (q, c) ->
                if basis land (1 lsl q) <> 0 then acc lor (1 lsl c) else acc)
              0 !wiring
          in
          let cur = Option.value ~default:0. (Hashtbl.find_opt table outcome) in
          Hashtbl.replace table outcome (cur +. p)
        end)
      probs;
    Counts.of_probs ~num_clbits:circuit.num_clbits ~shots:1_000_000
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  end

let expectation ~seed ~shots circuit f =
  Counts.expectation (run ~seed ~shots circuit) f
