type t = { num_clbits : int; table : (int, int) Hashtbl.t; mutable total : int }

let create ~num_clbits = { num_clbits; table = Hashtbl.create 64; total = 0 }
let num_clbits t = t.num_clbits

let add t outcome =
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.table outcome) in
  Hashtbl.replace t.table outcome (cur + 1);
  t.total <- t.total + 1

let total t = t.total
let get t outcome = Option.value ~default:0 (Hashtbl.find_opt t.table outcome)

let to_list t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])

let equal a b = a.num_clbits = b.num_clbits && to_list a = to_list b

(* Per-outcome addition: associative and commutative with [create] as
   identity, which is what lets the execution pool merge per-batch shot
   counts in any grouping and still match the sequential run. *)
let merge a b =
  if a.num_clbits <> b.num_clbits then
    invalid_arg "Counts.merge: clbit width mismatch";
  let t = create ~num_clbits:a.num_clbits in
  let pour src =
    Hashtbl.iter (fun k v -> Hashtbl.replace t.table k (get t k + v)) src.table;
    t.total <- t.total + src.total
  in
  pour a;
  pour b;
  t

let to_probs t =
  if t.total = 0 then []
  else
    let s = float_of_int t.total in
    Hashtbl.fold (fun k v acc -> (k, float_of_int v /. s) :: acc) t.table []
    |> List.sort compare

let of_probs ~num_clbits ~shots probs =
  let t = create ~num_clbits in
  List.iter
    (fun (k, p) ->
      let c = int_of_float (Float.round (p *. float_of_int shots)) in
      if c > 0 then begin
        Hashtbl.replace t.table k (get t k + c);
        t.total <- t.total + c
      end)
    probs;
  t

let tvd a b =
  let pa = to_probs a and pb = to_probs b in
  let keys =
    List.sort_uniq compare (List.map fst pa @ List.map fst pb)
  in
  let find k l = Option.value ~default:0. (List.assoc_opt k l) in
  (* Clamp: float summation can overshoot the [0, 1] bound by an ulp. *)
  Float.min 1.
    (Float.max 0.
       (0.5
       *. List.fold_left
            (fun acc k -> acc +. Float.abs (find k pa -. find k pb))
            0. keys))

let success_rate t outcome =
  if t.total = 0 then 0.
  else float_of_int (get t outcome) /. float_of_int t.total

let expectation t f =
  if t.total = 0 then 0.
  else
    Hashtbl.fold
      (fun k v acc -> acc +. (f k *. float_of_int v))
      t.table 0.
    /. float_of_int t.total

let top t =
  Hashtbl.fold
    (fun k v best ->
      match best with
      | Some (_, bv) when bv >= v -> best
      | _ -> Some (k, v))
    t.table None
  |> Option.map fst

let bitstring num_clbits k =
  String.init num_clbits (fun i ->
      if k land (1 lsl (num_clbits - 1 - i)) <> 0 then '1' else '0')

let pp ppf t =
  Format.fprintf ppf "@[<v>counts (%d shots):" t.total;
  List.iter
    (fun (k, p) ->
      Format.fprintf ppf "@,  %s: %.4f" (bitstring t.num_clbits k) p)
    (to_probs t);
  Format.fprintf ppf "@]"
