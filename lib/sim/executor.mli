(** Shot-based circuit execution on the state-vector backend.

    Circuits with dynamic operations (mid-circuit measurement, reset,
    conditional X) are re-simulated per shot because measurement collapse
    is stochastic — exactly the semantics the hardware gives the paper's
    transformed circuits. Wide circuits are first compacted onto their
    active wires so a 27-qubit device circuit using 13 qubits simulates on
    13. *)

(** [run ?jobs ~seed ~shots circuit] samples the classical register.

    Shots are drawn in fixed 256-shot batches whose RNG streams are pure
    functions of [(seed, batch index)] and fanned out over
    {!Exec.Pool}; the merged counts are byte-identical for every [jobs]
    value (default: {!Exec.Pool.default_jobs}). *)
val run : ?jobs:int -> seed:int -> shots:int -> Quantum.Circuit.t -> Counts.t

(** Exact outcome distribution for circuits whose only dynamic operations
    are final measurements; falls back to 4096-shot sampling otherwise. *)
val distribution : seed:int -> Quantum.Circuit.t -> Counts.t

(** Expectation of [f register] under [run]. *)
val expectation : seed:int -> shots:int -> Quantum.Circuit.t -> (int -> float) -> float
