(** Measurement-outcome histograms and the total variation distance (TVD)
    metric the paper reports in Table 3. Outcomes are classical-register
    values (little-endian ints over the circuit's clbits). *)

type t

val create : num_clbits:int -> t
val num_clbits : t -> int
val add : t -> int -> unit
val total : t -> int
val get : t -> int -> int

(** All [(outcome, count)] pairs, sorted by outcome — a canonical form
    for byte-level determinism comparisons. *)
val to_list : t -> (int * int) list

(** Same width and same per-outcome counts. *)
val equal : t -> t -> bool

(** [merge a b] sums per-outcome counts. Associative and commutative
    with [create] as identity — the algebra the execution pool's
    shot-splitting relies on. Raises [Invalid_argument] when the clbit
    widths differ. *)
val merge : t -> t -> t

(** Outcome frequencies as a probability map (only nonzero entries). *)
val to_probs : t -> (int * float) list

(** [of_probs ~num_clbits probs] builds pseudo-counts from an exact
    distribution (scaled to [shots]). *)
val of_probs : num_clbits:int -> shots:int -> (int * float) list -> t

(** Total variation distance: [0.5 * sum_x |p(x) - q(x)|], in [0, 1]. *)
val tvd : t -> t -> float

(** Probability mass on a single outcome — "success rate" when the ideal
    output is a known bitstring. *)
val success_rate : t -> int -> float

(** Expectation of [f outcome] under the empirical distribution. *)
val expectation : t -> (int -> float) -> float

(** Most frequent outcome, [None] when empty. *)
val top : t -> int option

val pp : Format.formatter -> t -> unit
