type stats = {
  qubits_used : int;
  depth : int;
  duration_dt : int;
  swaps : int;
  two_q : int;
  gate_count : int;
}

type result = { physical : Quantum.Circuit.t; stats : stats }

let physical_duration device (c : Quantum.Circuit.t) =
  let qfront = Array.make (max 1 c.num_qubits) 0 in
  let cfront = Array.make (max 1 c.num_clbits) 0 in
  let total = ref 0 in
  Array.iter
    (fun g ->
      let k = g.Quantum.Gate.kind in
      if not (Quantum.Gate.is_barrier k) then begin
        let qs = Quantum.Gate.qubits k and cs = Quantum.Gate.clbits k in
        let dur =
          match k with
          | Quantum.Gate.Cx (a, b) | Quantum.Gate.Cz (a, b) | Quantum.Gate.Rzz (_, a, b)
            ->
            Hardware.Device.cx_duration device a b
          | Quantum.Gate.Swap (a, b) -> 3 * Hardware.Device.cx_duration device a b
          | k -> Quantum.Duration.of_kind Quantum.Duration.default k
        in
        let start =
          List.fold_left
            (fun acc cb -> max acc cfront.(cb))
            (List.fold_left (fun acc q -> max acc qfront.(q)) 0 qs)
            cs
        in
        let finish = start + dur in
        List.iter (fun q -> qfront.(q) <- finish) qs;
        List.iter (fun cb -> cfront.(cb) <- finish) cs;
        if finish > !total then total := finish
      end)
    c.gates;
  !total

let stats_of device physical =
  {
    qubits_used = List.length (Quantum.Circuit.active_qubits physical);
    depth = Quantum.Circuit.depth physical;
    duration_dt = physical_duration device physical;
    swaps = Quantum.Circuit.swap_count physical;
    two_q =
      Quantum.Circuit.two_q_count physical
      + (2 * Quantum.Circuit.swap_count physical);
    (* a SWAP is 3 CNOTs: count the 2 extra *)
    gate_count = Quantum.Circuit.gate_count physical;
  }

let run device circuit =
  Obs.Metrics.incr "transpile.runs";
  Obs.Metrics.time "time.route" @@ fun () ->
  (* Qiskit-O3-style gate-level cleanup before routing. *)
  let circuit = Quantum.Optimize.peephole circuit in
  let layout = Layout.initial device circuit in
  let routed = Router.route device layout circuit in
  { physical = routed.Router.physical; stats = stats_of device routed.Router.physical }

let pp_stats ppf s =
  Format.fprintf ppf "qubits=%d depth=%d duration=%ddt swaps=%d 2q=%d gates=%d"
    s.qubits_used s.depth s.duration_dt s.swaps s.two_q s.gate_count
