type result = {
  physical : Quantum.Circuit.t;
  swaps_added : int;
  final_layout : Layout.t;
}

let lookahead_window = 12
let lookahead_weight = 0.5

let route device layout (circuit : Quantum.Circuit.t) =
  let layout = Layout.copy layout in
  let dag = Quantum.Dag.build circuit in
  let n = Quantum.Dag.num_nodes dag in
  let indeg = Array.init n (Quantum.Dag.in_degree dag) in
  let done_ = Array.make n false in
  let frontier = ref (List.filter (fun i -> indeg.(i) = 0) (List.init n Fun.id)) in
  let out =
    Quantum.Circuit.Builder.create
      ~num_qubits:(Hardware.Device.num_qubits device)
      ~num_clbits:circuit.num_clbits
  in
  let swaps = ref 0 in
  let gate_kind i = circuit.gates.(i).Quantum.Gate.kind in
  let complete i =
    done_.(i) <- true;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then frontier := j :: !frontier)
      (Quantum.Dag.succs dag i)
  in
  let phys q = layout.Layout.l2p.(q) in
  let executable i =
    let k = gate_kind i in
    if Quantum.Gate.is_two_q k then
      match Quantum.Gate.qubits k with
      | [ a; b ] -> Hardware.Device.adjacent device (phys a) (phys b)
      | _ -> true
    else true
  in
  let emit i =
    let k = Quantum.Gate.map_qubits phys (gate_kind i) in
    Quantum.Circuit.Builder.add out k;
    complete i
  in
  (* Two-qubit gates beyond the frontier, for lookahead scoring. *)
  let extended_set () =
    let acc = ref [] and count = ref 0 in
    let q = Queue.create () in
    List.iter (fun i -> Queue.add i q) !frontier;
    let seen = Hashtbl.create 32 in
    while (not (Queue.is_empty q)) && !count < lookahead_window do
      let i = Queue.pop q in
      if not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        (match Quantum.Gate.qubits (gate_kind i) with
         | [ a; b ] when Quantum.Gate.is_two_q (gate_kind i) ->
           acc := (a, b) :: !acc;
           incr count
         | _ -> ());
        List.iter (fun j -> Queue.add j q) (Quantum.Dag.succs dag i)
      end
    done;
    !acc
  in
  let dist a b = Hardware.Device.distance device a b in
  let last_swap = ref (-1, -1) in
  let progress = ref true in
  (* A diverging search trips the step budget as a typed, recoverable
     error instead of an untyped failwith; the same ticker also honours
     any cooperative wall-clock deadline. *)
  let swap_budget = (100 * n) + 1000 in
  let tick =
    Guard.Budget.ticker ~stage:"transpiler.router" ~site:"route.swap"
      ~limit:swap_budget ()
  in
  while !frontier <> [] do
    tick ();
    if not !progress then begin
      (* Blocked: every frontier gate is a non-adjacent two-qubit gate.
         Choose the best swap among edges incident to frontier qubits. *)
      let front_pairs =
        List.filter_map
          (fun i ->
            match Quantum.Gate.qubits (gate_kind i) with
            | [ a; b ] when Quantum.Gate.is_two_q (gate_kind i) -> Some (a, b)
            | _ -> None)
          !frontier
      in
      let ext = extended_set () in
      let score_mapping phys_of =
        let front =
          List.fold_left
            (fun acc (a, b) -> acc + dist (phys_of a) (phys_of b))
            0 front_pairs
        in
        let look =
          List.fold_left
            (fun acc (a, b) -> acc + dist (phys_of a) (phys_of b))
            0 ext
        in
        float_of_int front +. (lookahead_weight *. float_of_int look)
      in
      let candidates =
        List.concat_map
          (fun (a, b) ->
            let edges_of q =
              List.map (fun nb -> (phys q, nb)) (Hardware.Device.neighbors device (phys q))
            in
            edges_of a @ edges_of b)
          front_pairs
      in
      let best = ref None in
      List.iter
        (fun (p1, p2) ->
          if (p1, p2) <> !last_swap && (p2, p1) <> !last_swap then begin
            let phys_of q =
              let p = phys q in
              if p = p1 then p2 else if p = p2 then p1 else p
            in
            let s =
              score_mapping phys_of
              (* error-aware tie-break: prefer low-error links *)
              +. (0.01 *. Hardware.Device.cx_error device p1 p2)
            in
            match !best with
            | Some (_, _, s') when s' <= s -> ()
            | _ -> best := Some (p1, p2, s)
          end)
        candidates;
      (match !best with
       | Some (p1, p2, _) ->
         Guard.Inject.hit "route.swap";
         Quantum.Circuit.Builder.swap out p1 p2;
         Layout.apply_swap layout p1 p2;
         incr swaps;
         last_swap := (p1, p2)
       | None ->
         (* Only the undone inverse of the last swap remains; allow it. *)
         last_swap := (-1, -1))
    end;
    progress := false;
    let rec drain () =
      let ready, blocked = List.partition executable !frontier in
      if ready <> [] then begin
        progress := true;
        last_swap := (-1, -1);
        frontier := blocked;
        List.iter emit ready;
        drain ()
      end
    in
    drain ()
  done;
  { physical = Quantum.Circuit.Builder.build out; swaps_added = !swaps; final_layout = layout }
