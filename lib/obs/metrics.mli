(** Pipeline-wide observability: named counters and wall-clock phase
    timers, kept in a single process-global registry.

    The registry is domain-safe: every operation takes one global mutex,
    so instrumented passes may run inside [Exec.Pool] workers. Counter
    totals stay deterministic under parallelism (per-task increments
    commute); which domain contributed is not recorded.

    The compiler passes are instrumented unconditionally — a counter bump
    is two hash lookups — so callers decide only when to {!reset} and when
    to {!snapshot}. [Pipeline.compile] does both when asked to collect
    metrics; `caqr_cli --timings` and `bench/main.exe` print or serialize
    the snapshot.

    Conventions: counter keys are dot-separated (["reuse.analyze.fresh"],
    ["qs.search.nodes"], ["qs.cache.hit"]); timer keys start with ["time."]
    (["time.analyze"], ["time.search"], ["time.route"], ["time.verify"]).
    Phase timers may nest (the search timer includes analyze time), so the
    timings are a profile, not a partition. *)

(** Reset every counter and timer to zero. *)
val reset : unit -> unit

(** [incr ?by name] bumps counter [name] (default [by = 1]). *)
val incr : ?by:int -> string -> unit

(** [declare name] materializes counter [name] at zero if absent — so a
    failure counter shows up in snapshots as "never happened" rather
    than being indistinguishable from "not wired". Never resets an
    existing value. *)
val declare : string -> unit

(** {!declare} for gauges. *)
val declare_gauge : string -> unit

(** Current value of a counter (0 when never bumped). *)
val count : string -> int

(** [set_gauge name v] records the current level of [name] — a value
    that goes up and down (in-flight requests, cache bytes on disk) as
    opposed to a monotonically accumulating counter. The last write
    wins. *)
val set_gauge : string -> int -> unit

(** Current value of a gauge (0 when never set). *)
val gauge : string -> int

(** [add_time name seconds] accumulates into timer [name]; negative deltas
    (non-monotonic clock steps) are clamped to zero. *)
val add_time : string -> float -> unit

(** [time name f] runs [f ()] and adds its wall-clock duration to timer
    [name], exceptions included. *)
val time : string -> (unit -> 'a) -> 'a

(** Accumulated seconds of a timer (0 when never used). *)
val timing : string -> float

(** Immutable view of the registry, sorted by key. *)
type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;  (** last-written levels *)
  timings : (string * float) list;  (** seconds *)
}

val snapshot : unit -> snapshot

(** Human-readable table (counters, then timings in ms). *)
val pp : Format.formatter -> snapshot -> unit

(** Machine-readable rendering:
    [{"counters":{...},"gauges":{...},"timings_s":{...}}]. *)
val to_json : snapshot -> string
