(* Process-global counter / timer registry. The tables are shared by
   every domain the execution pool spawns, so each operation takes a
   single global mutex; contention is negligible because the hot loops
   increment a handful of counters per compiled circuit, not per gate. *)

let lock = Mutex.create ()
let protected f = Mutex.protect lock f

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64
let timers : (string, float ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, int ref) Hashtbl.t = Hashtbl.create 16

let reset () =
  protected @@ fun () ->
  Hashtbl.reset counters;
  Hashtbl.reset timers;
  Hashtbl.reset gauges

let incr ?(by = 1) name =
  protected @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add counters name (ref by)

(* Counters and gauges materialize on first touch, which hides a metric
   that simply never fired. A subsystem that wants its failure counters
   visible at zero — so an operator can tell "never happened" from "not
   wired" — declares them up front. Declaring an existing key is a
   no-op; the value is never reset. *)
let declare name =
  protected @@ fun () ->
  if not (Hashtbl.mem counters name) then Hashtbl.add counters name (ref 0)

let declare_gauge name =
  protected @@ fun () ->
  if not (Hashtbl.mem gauges name) then Hashtbl.add gauges name (ref 0)

let count name =
  protected @@ fun () ->
  match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

let set_gauge name v =
  protected @@ fun () ->
  match Hashtbl.find_opt gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add gauges name (ref v)

let gauge name =
  protected @@ fun () ->
  match Hashtbl.find_opt gauges name with Some r -> !r | None -> 0

let add_time name dt =
  let dt = if dt < 0. then 0. else dt in
  protected @@ fun () ->
  match Hashtbl.find_opt timers name with
  | Some r -> r := !r +. dt
  | None -> Hashtbl.add timers name (ref dt)

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_time name (Unix.gettimeofday () -. t0)) f

let timing name =
  protected @@ fun () ->
  match Hashtbl.find_opt timers name with Some r -> !r | None -> 0.

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  timings : (string * float) list;
}

let snapshot () =
  protected @@ fun () ->
  let dump tbl read = Hashtbl.fold (fun k r acc -> (k, read r) :: acc) tbl [] in
  {
    counters = List.sort compare (dump counters ( ! ));
    gauges = List.sort compare (dump gauges ( ! ));
    timings = List.sort compare (dump timers ( ! ));
  }

let pp ppf s =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-28s %12d@." k v)
    s.counters;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-28s %12d (gauge)@." k v)
    s.gauges;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-28s %12.3f ms@." k (1000. *. v))
    s.timings

(* The keys are dot-separated identifiers and never need escaping; a
   hand-rolled printer keeps the library dependency-free. *)
let to_json s =
  let field f (k, v) = Printf.sprintf "%S:%s" k (f v) in
  let obj f kvs = "{" ^ String.concat "," (List.map (field f) kvs) ^ "}" in
  Printf.sprintf {|{"counters":%s,"gauges":%s,"timings_s":%s}|}
    (obj string_of_int s.counters)
    (obj string_of_int s.gauges)
    (obj (Printf.sprintf "%.6f") s.timings)
