(* Wire-level chaos: drive a LIVE daemon with mutated byte streams and
   hold it to three promises, checked after every single attack:

   1. it never crashes (the follow-up request still gets an answer);
   2. it never hangs past the deadline (every follow-up runs under a
      client-side timeout);
   3. a well-formed follow-up is answered BYTE-IDENTICALLY to the
      reference captured before any attack ran — hostile traffic must
      not perturb the content-addressed result, ever.

   Attacks speak raw sockets, below {!Serve.Client}: the point is to
   hand the transport layer exactly the bytes a broken or malicious
   peer would, including ones the client API cannot produce. Case [i]
   derives from [Prng.split master i] like every other campaign in this
   library, so a failing case replays in isolation. *)

type attack =
  | Truncated_frame  (** a prefix of one valid frame, then close *)
  | Garbage_prefix  (** random bytes where a frame should start *)
  | Oversized_prefix
      (** a length prefix past the 64 MiB cap (TCP); an unterminated
          over-long line (Unix) *)
  | Mid_batch_disconnect
      (** one valid frame + a prefix of a second, then close *)
  | Stalled_frame
      (** a prefix of a frame, then silence past the server's
          connection deadline — the slow-loris *)
  | Mutated_json  (** correctly framed, corrupted payload *)

let attack_name = function
  | Truncated_frame -> "truncated-frame"
  | Garbage_prefix -> "garbage-prefix"
  | Oversized_prefix -> "oversized-prefix"
  | Mid_batch_disconnect -> "mid-batch-disconnect"
  | Stalled_frame -> "stalled-frame"
  | Mutated_json -> "mutated-json"

type failure = {
  case_index : int;
  attack : attack;
  message : string;
}

type summary = {
  addr : string;
  cases : int;
  timeouts_seen : int;
      (** structured request.timeout responses the attacks provoked *)
  failures : failure list;
}

(* ---- raw socket plumbing ---- *)

let sockaddr_of = function
  | Serve.Transport.Unix path -> Unix.ADDR_UNIX path
  | Serve.Transport.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Unix.ADDR_INET (inet, port)

let raw_connect addr =
  let domain =
    match addr with
    | Serve.Transport.Unix _ -> Unix.PF_UNIX
    | Serve.Transport.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (sockaddr_of addr) with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  fd

(* The daemon may close on us mid-write — that is the expected outcome
   of several attacks, not an error. *)
let raw_send fd bytes =
  try
    let len = String.length bytes in
    let written = ref 0 in
    while !written < len do
      match Unix.write_substring fd bytes !written (len - !written) with
      | n -> written := !written + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

(* Read whatever the daemon answers within [timeout_s]; "" when it just
   closed or stayed silent. Attacks only use this to OBSERVE — the
   assertions live in the follow-up request. *)
let raw_drain ?(timeout_s = 2.0) fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left > 0. then
      match Unix.select [ fd ] [] [] left with
      | [ _ ], _, _ ->
        (match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents buf

let raw_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- attack payloads ---- *)

let random_bytes rng n =
  String.init n (fun _ -> Char.chr (Exec.Prng.int rng 256))

(* A length prefix claiming more than the 64 MiB cap. *)
let oversized_header rng =
  let over = Serve.Transport.max_frame_bytes + 1 + Exec.Prng.int rng 1000 in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((over lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((over lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((over lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (over land 0xff));
  Bytes.to_string b

let mutate_payload rng line =
  let b = Bytes.of_string line in
  let flips = 1 + Exec.Prng.int rng 8 in
  for _ = 1 to flips do
    let i = Exec.Prng.int rng (Bytes.length b) in
    (* Never inject '\n': under newline framing that would split the
       message instead of corrupting it. *)
    let c = Char.chr (32 + Exec.Prng.int rng 95) in
    Bytes.set b i c
  done;
  Bytes.to_string b

let pick_attack rng =
  Exec.Prng.weighted rng
    [
      (3, Truncated_frame);
      (3, Garbage_prefix);
      (2, Oversized_prefix);
      (3, Mid_batch_disconnect);
      (1, Stalled_frame);
      (3, Mutated_json);
    ]

(* One attack against one fresh connection. [request_line] is a valid
   request so the mutations start from realistic bytes. [stall_s] is
   how long the slow-loris holds its partial frame — callers set it
   just past the daemon's connection deadline. Returns the raw bytes
   the daemon answered, for timeout accounting. *)
let run_attack ~addr ~framing ~request_line ~stall_s rng attack =
  let well_formed = Serve.Transport.encode ~framing request_line in
  let fd = raw_connect addr in
  Fun.protect ~finally:(fun () -> raw_close fd)
    (fun () ->
      match attack with
      | Truncated_frame ->
        let n = String.length well_formed in
        let k = 1 + Exec.Prng.int rng (max 1 (n - 1)) in
        raw_send fd (String.sub well_formed 0 k);
        ""
      | Garbage_prefix ->
        raw_send fd (random_bytes rng (1 + Exec.Prng.int rng 512));
        raw_drain ~timeout_s:0.5 fd
      | Oversized_prefix ->
        (match framing with
        | Serve.Transport.Length_prefixed ->
          raw_send fd (oversized_header rng ^ random_bytes rng 32)
        | Serve.Transport.Newline ->
          (* The newline analogue: an over-long line that never
             terminates. Bounded well below the request-size cap; the
             connection deadline is what must end it. *)
          raw_send fd (String.make (4096 + Exec.Prng.int rng 4096) 'x'));
        raw_drain ~timeout_s:0.5 fd
      | Mid_batch_disconnect ->
        let second = Serve.Transport.encode ~framing request_line in
        let k = 1 + Exec.Prng.int rng (max 1 (String.length second - 1)) in
        raw_send fd (well_formed ^ String.sub second 0 k);
        (* Read our one answer (or not), then vanish mid-batch. *)
        raw_drain ~timeout_s:0.5 fd
      | Stalled_frame ->
        let k = 1 + Exec.Prng.int rng (max 1 (String.length well_formed / 2)) in
        raw_send fd (String.sub well_formed 0 k);
        Unix.sleepf stall_s;
        raw_drain ~timeout_s:1.0 fd
      | Mutated_json ->
        let mutated = mutate_payload rng request_line in
        raw_send fd (Serve.Transport.encode ~framing mutated);
        raw_drain ~timeout_s:1.0 fd)

(* ---- the campaign ---- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* The reference request every follow-up replays. Deterministic options
   (sr strategy, tiny benchmark) so the result is cacheable and the
   cache-hit bytes are the fixed point the whole campaign compares
   against. *)
let reference_request = {|{"id":"wire-ref","op":"compile","bench":"BV_10","strategy":"sr"}|}

let follow_up ~addr ~timeout_s =
  match Serve.Client.call ~addr ~timeout_s [ reference_request ] with
  | [ r ] -> Ok r
  | rs -> Error (Printf.sprintf "expected 1 response, got %d" (List.length rs))
  | exception Failure m -> Error m
  | exception Unix.Unix_error (e, _, _) ->
    Error ("connect/io: " ^ Unix.error_message e)

(* [run ~seed ~cases ~addr ()] attacks a live daemon at [addr].
   [stall_s] must exceed the daemon's connection deadline for the
   slow-loris cell to provoke (and count) a request.timeout; the
   follow-up timeout bounds every liveness check. *)
let run ?(stall_s = 0.6) ?(follow_up_timeout_s = 30.) ~seed ~cases ~addr () =
  let framing = Serve.Transport.framing_of_addr addr in
  let master = Exec.Prng.make seed in
  (* Prime: first call computes (cache miss), second replays the hit —
     THOSE bytes are the reference every follow-up must reproduce. *)
  let reference =
    match
      ( follow_up ~addr ~timeout_s:follow_up_timeout_s,
        follow_up ~addr ~timeout_s:follow_up_timeout_s )
    with
    | Ok _, Ok hit -> hit
    | Error m, _ | _, Error m ->
      failwith ("Wirefuzz: daemon unreachable while priming: " ^ m)
  in
  let timeouts = ref 0 in
  let failures = ref [] in
  for i = 0 to cases - 1 do
    let rng = Exec.Prng.split master i in
    let attack = pick_attack rng in
    let observed =
      match
        run_attack ~addr ~framing ~request_line:reference_request ~stall_s rng
          attack
      with
      | bytes -> bytes
      | exception Unix.Unix_error (e, _, _) ->
        (* The attack connection itself failing is fine (daemon may
           slam the door); the follow-up below is the real check. *)
        "attack-conn: " ^ Unix.error_message e
    in
    if contains ~sub:"request.timeout" observed then incr timeouts;
    Obs.Metrics.incr "fuzz.wire.cases";
    (match follow_up ~addr ~timeout_s:follow_up_timeout_s with
    | Ok r when String.equal r reference -> ()
    | Ok r ->
      Obs.Metrics.incr "fuzz.wire.failures";
      failures :=
        {
          case_index = i;
          attack;
          message =
            Printf.sprintf
              "follow-up diverged from reference\nreference: %s\ngot:       %s"
              reference r;
        }
        :: !failures
    | Error m ->
      Obs.Metrics.incr "fuzz.wire.failures";
      failures :=
        {
          case_index = i;
          attack;
          message = "daemon dead or hung after attack: " ^ m;
        }
        :: !failures)
  done;
  {
    addr = Serve.Transport.addr_to_string addr;
    cases;
    timeouts_seen = !timeouts;
    failures = List.rev !failures;
  }

(* [selftest ~transport ()] spins up an in-process daemon configured
   with an aggressive connection deadline, runs the campaign against
   it, and shuts it down through the protocol — the all-in-one entry
   the test suite and `caqr_cli chaos-serve` use. *)
let selftest ?(seed = 1) ?(cases = 50) ~transport () =
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "caqr-wire-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  let addr =
    match transport with
    | `Unix -> Serve.Transport.Unix tmp
    | `Tcp -> Serve.Transport.Tcp ("127.0.0.1", 0)
  in
  let config =
    {
      Serve.Server.default_config with
      Serve.Server.addr;
      handler_domains = 2;
      conn_timeout_ms = Some 250;
      mem_capacity = 64;
    }
  in
  let server = Serve.Server.create config in
  let bound = Atomic.make None in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Server.run ~ready:(fun a -> Atomic.set bound (Some a)) server)
  in
  let rec await k =
    match Atomic.get bound with
    | Some a -> a
    | None when k > 0 ->
      Unix.sleepf 0.01;
      await (k - 1)
    | None -> failwith "Wirefuzz: daemon never became ready"
  in
  let addr = await 500 in
  let finish () =
    (try
       ignore
         (Serve.Client.call_retry ~addr ~timeout_s:10.
            [ {|{"op":"shutdown"}|} ])
     with Failure _ | Unix.Unix_error _ -> ());
    Domain.join daemon
  in
  match run ~stall_s:0.6 ~seed ~cases ~addr () with
  | summary ->
    finish ();
    summary
  | exception e ->
    finish ();
    raise e

(* ---- the chaos-matrix probe ---- *)

(* A two-message loopback exchange over a socketpair, exercising the
   transport's read, frame-decode and write paths — and therefore the
   wire.* injection sites, each at least twice, so every seed-derived
   arming hit (1 or 2) lands inside one probe. Installed into the chaos
   workload from here because fuzz cannot depend on serve (the
   benchmark registry sits between them). *)
let chaos_probe () =
  let a, b = Serve.Transport.pair () in
  Fun.protect
    ~finally:(fun () ->
      Serve.Transport.close a;
      Serve.Transport.close b)
    (fun () ->
      Serve.Transport.send a [ "chaos-ping"; "chaos-pong" ];
      (match Serve.Transport.recv_batch ~timeout_s:2.0 ~max:4 b with
      | Serve.Transport.Msgs [ "chaos-ping"; "chaos-pong" ] -> ()
      | Serve.Transport.Msgs _ | Serve.Transport.Eof | Serve.Transport.Timeout
        ->
        failwith "Wirefuzz: chaos probe lost its messages");
      Serve.Transport.send b [ "chaos-ack" ];
      match Serve.Transport.recv_batch ~timeout_s:2.0 ~max:4 a with
      | Serve.Transport.Msgs [ "chaos-ack" ] -> ()
      | Serve.Transport.Msgs _ | Serve.Transport.Eof | Serve.Transport.Timeout
        ->
        failwith "Wirefuzz: chaos probe lost its ack")

let install_chaos_probe () = Fuzz.Chaos.set_wire_probe chaos_probe

let pp_summary ppf s =
  Format.fprintf ppf "wire chaos: %d cases against %s, %d timeout rejections@."
    s.cases s.addr s.timeouts_seen;
  List.iter
    (fun f ->
      Format.fprintf ppf "  case %d [%s]: %s@." f.case_index
        (attack_name f.attack) f.message)
    s.failures;
  Format.fprintf ppf "failures: %d@." (List.length s.failures)
