(** Wire-level chaos for the compilation service: mutated byte streams
    against a {e live} daemon, with three promises checked after every
    attack — the daemon never crashes, never hangs past the deadline,
    and answers a well-formed follow-up request byte-identically to a
    reference captured before any attack ran.

    Attacks speak raw sockets beneath {!Serve.Client}, so they can send
    bytes the client API never would: truncated frames, garbage or
    oversized length prefixes, mid-batch disconnects, slow-loris
    stalls, and corrupted-but-correctly-framed JSON. Case [i] of a
    campaign derives from [Prng.split master i] — the same [(seed,
    cases, addr)] replays the same attack stream.

    Counters: ["fuzz.wire.cases"], ["fuzz.wire.failures"]. *)

type attack =
  | Truncated_frame  (** a prefix of one valid frame, then close *)
  | Garbage_prefix  (** random bytes where a frame should start *)
  | Oversized_prefix
      (** a length prefix past the 64 MiB cap (TCP); an unterminated
          over-long line (Unix) *)
  | Mid_batch_disconnect
      (** one valid frame + a prefix of a second, then close *)
  | Stalled_frame
      (** a partial frame held past the server's connection deadline *)
  | Mutated_json  (** correctly framed, corrupted payload *)

val attack_name : attack -> string

type failure = {
  case_index : int;
  attack : attack;
  message : string;
}

type summary = {
  addr : string;
  cases : int;
  timeouts_seen : int;
      (** structured [request.timeout] responses the attacks provoked *)
  failures : failure list;  (** empty = the daemon kept all three promises *)
}

(** The well-formed request every follow-up check replays (a cacheable
    [compile] of a small benchmark) — its cache-hit response is the
    byte-identity reference. *)
val reference_request : string

(** [run ?stall_s ?follow_up_timeout_s ~seed ~cases ~addr ()] attacks a
    daemon already listening on [addr]. [stall_s] (default 0.6) is how
    long the slow-loris holds a partial frame — set it past the
    daemon's [conn_timeout_ms] so the stall is answered with a
    structured timeout, which [timeouts_seen] counts.
    [follow_up_timeout_s] (default 30) bounds every liveness check.
    Raises [Failure] if the daemon is unreachable while priming the
    reference. *)
val run :
  ?stall_s:float ->
  ?follow_up_timeout_s:float ->
  seed:int ->
  cases:int ->
  addr:Serve.Transport.addr ->
  unit ->
  summary

(** [selftest ?seed ?cases ~transport ()] is the all-in-one harness:
    spawn an in-process daemon ([conn_timeout_ms = 250], 2 handler
    domains) on the chosen transport, run the campaign, shut the daemon
    down through the protocol and join it — so a daemon crash surfaces
    here as the spawned domain's exception. Defaults: seed 1, 50
    cases. *)
val selftest :
  ?seed:int ->
  ?cases:int ->
  transport:[ `Unix | `Tcp ] ->
  unit ->
  summary

(** A two-message loopback exchange over a {!Serve.Transport.pair}
    socketpair — read, frame-decode and write each run at least twice,
    so an armed wire.* injection site fires whether the seed picked hit
    1 or 2. *)
val chaos_probe : unit -> unit

(** Register {!chaos_probe} with {!Fuzz.Chaos.set_wire_probe}. The
    chaos matrix can only cover the wire.* catalog sites after this has
    run; the guard test suite and the chaos CLI both call it first.
    (It lives here, not in fuzz, because fuzz sits below serve in the
    dependency order.) *)
val install_chaos_probe : unit -> unit

(** One line per failure plus totals. *)
val pp_summary : Format.formatter -> summary -> unit
