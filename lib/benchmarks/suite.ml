type kind = Regular | Commutable of Galg.Graph.t

type entry = {
  name : string;
  kind : kind;
  circuit : Quantum.Circuit.t;
  description : string;
}

let regular () =
  [
    {
      name = "RD-32";
      kind = Regular;
      circuit = Revlib.rd32 ();
      description = "3-bit full adder (RevLib rd32 reconstruction)";
    };
    {
      name = "4mod5";
      kind = Regular;
      circuit = Revlib.four_mod5 ();
      description = "divisibility-by-5 oracle (RevLib 4mod5 reconstruction)";
    };
    {
      name = "Multiply_13";
      kind = Regular;
      circuit = Revlib.multiply_13 ();
      description = "3x3-bit carry-less multiplier on 13 qubits";
    };
    {
      name = "System_9";
      kind = Regular;
      circuit = Revlib.system_9 ();
      description = "layered reversible pipeline on 9 qubits";
    };
    {
      name = "BV_10";
      kind = Regular;
      circuit = Bv.circuit 10;
      description = "10-qubit Bernstein-Vazirani";
    };
    {
      name = "CC_10";
      kind = Regular;
      circuit = Revlib.cc 10;
      description = "10-qubit counterfeit-coin-style star circuit";
    };
    {
      name = "XOR_5";
      kind = Regular;
      circuit = Revlib.xor5 ();
      description = "4-bit parity onto a target qubit";
    };
  ]

let qaoa ~seed n ~density =
  let problem = Qaoa.Maxcut.random ~seed n ~density in
  {
    name = Printf.sprintf "QAOA%d-%.1f" n density;
    kind = Commutable problem.Qaoa.Maxcut.graph;
    circuit = Qaoa.Ansatz.reference problem;
    description =
      Printf.sprintf "QAOA max-cut, random graph n=%d density=%.2f" n density;
  }

let qaoa_table1 () =
  List.map (fun n -> qaoa ~seed:(40 + n) n ~density:0.3) [ 5; 10; 15; 20; 25 ]

let table1 () = regular () @ qaoa_table1 ()

let entry_of_gen (g : Large.gen) =
  {
    name = g.Large.name;
    kind = Regular;
    circuit = g.Large.build ();
    description = g.Large.description;
  }

let large () = List.map entry_of_gen (Large.generators ())
let all () = table1 () @ large ()

let find name =
  match List.find_opt (fun e -> e.name = name) (table1 ()) with
  | Some e -> e
  | None ->
    (* Large circuits build on demand: resolving a Table-1 name never
       pays for 1000-qubit construction. *)
    (match Large.find_opt name with
     | Some g -> entry_of_gen g
     | None -> raise Not_found)
