(** The paper's benchmark registry (§4.1): regular applications and
    commutable-gate QAOA instances, addressable by the names used in
    Tables 1–3. *)

type kind =
  | Regular  (** fixed gate dependence — QS/SR-CaQR regular path *)
  | Commutable of Galg.Graph.t
      (** QAOA: phase gates commute; carries the problem graph *)

type entry = {
  name : string;
  kind : kind;
  circuit : Quantum.Circuit.t;
  description : string;
}

(** The regular benchmarks of Table 1: RD-32, 4mod5, Multiply_13,
    System_9, BV_10, CC_10, XOR_5. *)
val regular : unit -> entry list

(** [qaoa ~seed n ~density] — "QAOA<n>-<density>" on a random graph. *)
val qaoa : seed:int -> int -> density:float -> entry

(** The QAOA entries of Table 1: sizes 5, 10, 15, 20, 25 at density 0.3. *)
val qaoa_table1 : unit -> entry list

(** All of Table 1: [regular () @ qaoa_table1 ()]. *)
val table1 : unit -> entry list

(** The large-circuit corpus ({!Large}: qaoa-powerlaw, cuccaro,
    qft-layered, rand-dyn at 100–256 qubits) as registry entries —
    all [Regular]. Building the list constructs every circuit; prefer
    {!find} (lazy per-name) when only one is needed. *)
val large : unit -> entry list

(** Everything the registry knows: [table1 () @ large ()]. *)
val all : unit -> entry list

(** [find name] looks an entry up in [table1], then in the large
    corpus (built on demand). Raises [Not_found]. *)
val find : string -> entry
