module B = Quantum.Circuit.Builder

(* Block-structured generators get their reuse headroom by construction:
   wires whose gates are time-disjoint (src's last gate precedes dst's
   first, no shared gate) satisfy CaQR Conditions 1-2 automatically, so
   a farm of sequential, wire-disjoint blocks can always be folded down
   to roughly one block's width. The QAOA generator instead leans on
   sparsity: average degree ~3 keeps most qubit pairs non-interacting,
   and measuring each vertex as soon as its last edge is emitted
   produces early-finishing wires that late-starting vertices reuse. *)

let reference_gamma = 0.7
let reference_beta = 0.3

(* QAOA max-cut on a power-law graph, emitted as a *regular* circuit:
   one Rzz per edge in sorted edge order, H lazily before a vertex's
   first gate, mixer + measurement immediately after its last edge. The
   commuting phase wall makes this reordering semantics-preserving. *)
let qaoa_powerlaw ~seed n =
  if n < 3 then invalid_arg "Large.qaoa_powerlaw: need at least 3 qubits";
  let density = 3.0 /. float_of_int (n - 1) in
  let g = Galg.Gen.power_law ~seed n ~density in
  let b = B.create ~num_qubits:n ~num_clbits:n in
  let remaining = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      remaining.(u) <- remaining.(u) + 1;
      remaining.(v) <- remaining.(v) + 1)
    (Galg.Graph.edges g);
  let started = Array.make n false and finished = Array.make n false in
  let start q =
    if not started.(q) then begin
      started.(q) <- true;
      B.h b q
    end
  in
  let finish q =
    if not finished.(q) then begin
      finished.(q) <- true;
      B.rx b (2. *. reference_beta) q;
      B.measure b q q
    end
  in
  List.iter
    (fun (u, v) ->
      start u;
      start v;
      B.rzz b reference_gamma u v;
      remaining.(u) <- remaining.(u) - 1;
      remaining.(v) <- remaining.(v) - 1;
      if remaining.(u) = 0 then finish u;
      if remaining.(v) = 0 then finish v)
    (List.sort compare (Galg.Graph.edges g));
  (* Isolated vertices (possible after the edge-budget trim). *)
  for q = 0 to n - 1 do
    start q;
    finish q
  done;
  B.build b

(* One k-bit Cuccaro ripple-carry adder on wires [base .. base+2k+1],
   same construction as {!Extra.ripple_adder}, measured at block end. *)
let adder_block b ~base k =
  let c0 = base in
  let a_q i = base + 1 + i in
  let b_q i = base + 1 + k + i in
  let z = base + (2 * k) + 1 in
  let maj c y x =
    B.cx b x y;
    B.cx b x c;
    Revlib.ccx b c y x
  in
  let uma c y x =
    Revlib.ccx b c y x;
    B.cx b x c;
    B.cx b c y
  in
  for i = 0 to k - 1 do
    B.x b (a_q i)
  done;
  B.x b (b_q 0);
  maj c0 (b_q 0) (a_q 0);
  for i = 1 to k - 1 do
    maj (a_q (i - 1)) (b_q i) (a_q i)
  done;
  B.cx b (a_q (k - 1)) z;
  for i = k - 1 downto 1 do
    uma (a_q (i - 1)) (b_q i) (a_q i)
  done;
  uma c0 (b_q 0) (a_q 0);
  for w = base to base + (2 * k) + 1 do
    B.measure b w w
  done

(* Width of one adder block: a 15-bit Cuccaro adder spans 2*15+2 = 32
   wires, so farm widths are multiples of 32. *)
let adder_bits = 15
let adder_width = (2 * adder_bits) + 2

let cuccaro_farm n =
  if n < adder_width || n mod adder_width <> 0 then
    invalid_arg
      (Printf.sprintf "Large.cuccaro_farm: width must be a multiple of %d"
         adder_width);
  let b = B.create ~num_qubits:n ~num_clbits:n in
  for blk = 0 to (n / adder_width) - 1 do
    adder_block b ~base:(blk * adder_width) adder_bits
  done;
  B.build b

(* One k-qubit QFT block on wires [base .. base+k-1] — the same gate
   sequence as {!Extra.qft}, measured at block end. *)
let qft_block b ~base k =
  B.x b base;
  if k > 2 then B.x b (base + k - 1);
  for i = 0 to k - 1 do
    B.h b (base + i);
    for j = i + 1 to k - 1 do
      let theta = Float.pi /. float_of_int (1 lsl (j - i)) in
      B.rz b (theta /. 2.) (base + i);
      B.rz b (theta /. 2.) (base + j);
      B.rzz b (-.theta /. 2.) (base + i) (base + j)
    done
  done;
  for w = base to base + k - 1 do
    B.measure b w w
  done

let qft_block_size = 10

let qft_layered n =
  if n < qft_block_size || n mod qft_block_size <> 0 then
    invalid_arg
      (Printf.sprintf "Large.qft_layered: width must be a multiple of %d"
         qft_block_size);
  let b = B.create ~num_qubits:n ~num_clbits:n in
  for blk = 0 to (n / qft_block_size) - 1 do
    qft_block b ~base:(blk * qft_block_size) qft_block_size
  done;
  B.build b

(* Random dynamic circuit: the fuzz generator with its size knobs opened
   to the large regime — heavy mid-circuit measurement, no barriers, no
   tail measure-all, so reuse opportunities appear mid-stream. *)
let rand_dyn ~seed n =
  if n < 2 then invalid_arg "Large.rand_dyn: need at least 2 qubits";
  let cfg =
    {
      Fuzz.Gen.default with
      min_qubits = n;
      max_qubits = n;
      min_gates = 3 * n;
      max_gates = 4 * n;
      w_measure = 10;
      w_barrier = 0;
      p_share_clbit = 0.1;
      p_measure_tail = 0.;
    }
  in
  Fuzz.Gen.circuit cfg (Fuzz.Prng.make seed)

type gen = {
  name : string;
  description : string;
  build : unit -> Quantum.Circuit.t;
}

(* Registered sizes are the ones the 2s quality dial handles end-to-end
   (engine + routing) with width strictly below baseline; the raw
   generators themselves scale to 1000 qubits (exercised by
   test_large_gen's round-trip and DAG-budget suites). *)
let sizes = [ 100; 250 ]
let adder_sizes = [ 64; 128; 256 ]

let generators () =
  List.map
    (fun n ->
      {
        name = Printf.sprintf "qaoa-powerlaw-%d" n;
        description =
          Printf.sprintf
            "QAOA max-cut on a %d-vertex power-law graph (avg degree 3), \
             regular emission with per-vertex early measurement"
            n;
        build = (fun () -> qaoa_powerlaw ~seed:(7 + n) n);
      })
    sizes
  @ List.map
      (fun n ->
        {
          name = Printf.sprintf "cuccaro-%d" n;
          description =
            Printf.sprintf
              "farm of %d sequential %d-bit Cuccaro ripple-carry adders \
               (%d wires each)"
              (n / adder_width) adder_bits adder_width;
          build = (fun () -> cuccaro_farm n);
        })
      adder_sizes
  @ List.map
      (fun n ->
        {
          name = Printf.sprintf "qft-layered-%d" n;
          description =
            Printf.sprintf
              "%d sequential %d-qubit QFT blocks on disjoint wires"
              (n / qft_block_size) qft_block_size;
          build = (fun () -> qft_layered n);
        })
      sizes
  @ List.map
      (fun n ->
        {
          name = Printf.sprintf "rand-dyn-%d" n;
          description =
            Printf.sprintf
              "random dynamic circuit, %d qubits, ~%d gates, heavy \
               mid-circuit measurement (fuzz generator, fixed seed)"
              n (3 * n);
          build = (fun () -> rand_dyn ~seed:(11 + n) n);
        })
      sizes

let names () = List.map (fun g -> g.name) (generators ())
let find_opt name = List.find_opt (fun g -> g.name = name) (generators ())
