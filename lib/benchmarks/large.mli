(** Large-circuit workload corpus: deterministic generator families at
    100–1000 qubits, sized to stress the anytime compile path rather
    than fit Table 1.

    Four families, each with guaranteed reuse headroom:

    - [qaoa-powerlaw-<n>] — QAOA max-cut on a sparse power-law graph
      (average degree 3), emitted as a regular circuit with per-vertex
      early measurement so early-finishing wires overlap late-starting
      vertices;
    - [cuccaro-<n>] — a farm of wire-disjoint, time-sequential 15-bit
      Cuccaro adders (32 wires per block): blocks fold onto one
      block's width by construction;
    - [qft-layered-<n>] — sequential 10-qubit QFT blocks on disjoint
      wires, measured per block;
    - [rand-dyn-<n>] — the fuzz generator's dynamic-circuit alphabet
      with its size knobs opened to [n] qubits and ~3n gates at a fixed
      seed.

    Every generator is a pure function of its parameters — the corpus
    is byte-stable across runs, so goldens and bench baselines hold. *)

(** Raw constructors (deterministic given their parameters). *)

val qaoa_powerlaw : seed:int -> int -> Quantum.Circuit.t
val cuccaro_farm : int -> Quantum.Circuit.t
val qft_layered : int -> Quantum.Circuit.t
val rand_dyn : seed:int -> int -> Quantum.Circuit.t

(** Wires per adder block (32) — [cuccaro_farm] widths must be
    multiples of this. *)
val adder_width : int

(** Qubits per QFT block (10) — [qft_layered] widths must be multiples
    of this. *)
val qft_block_size : int

(** One registered large benchmark. [build] constructs the circuit on
    demand so listing names never pays for 1000-qubit construction. *)
type gen = {
  name : string;
  description : string;
  build : unit -> Quantum.Circuit.t;
}

(** The full corpus: qaoa-powerlaw/qft-layered/rand-dyn at {100, 250}
    and cuccaro at {64, 128, 256} — the sizes the 2-second quality dial
    compiles end-to-end with width strictly below baseline. The raw
    generators scale to 1000 qubits. *)
val generators : unit -> gen list

val names : unit -> string list
val find_opt : string -> gen option
