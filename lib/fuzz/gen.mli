(** Structured random *dynamic*-circuit generator.

    Unlike the measure-free generator in [test/test_properties.ml], this
    one emits the full gate alphabet the compiler claims to handle:
    mid-circuit measurement, reset, classically-controlled X and
    barriers, plus the unitary one- and two-qubit gates. Generated
    circuits are always well-formed by construction — every conditional
    X reads a classical bit some earlier measurement wrote — so an
    oracle failure downstream is a compiler bug, not generator noise. *)

type config = {
  min_qubits : int;
  max_qubits : int;
  min_gates : int;
  max_gates : int;
  (* Relative weights of the gate classes drawn per slot. *)
  w_one_q : int;
  w_two_q : int;
  w_measure : int;
  w_reset : int;
  w_if_x : int;  (** skipped (redrawn as one-q) until a measure has run *)
  w_barrier : int;
  p_share_clbit : float;
      (** probability a measurement targets an already-written clbit —
          shared clbits exercise the reset-splice fallback paths *)
  p_measure_tail : float;
      (** probability the circuit ends with measure-all, the shape the
          reuse transform likes best *)
}

(** 2–6 qubits, 4–40 gates, dynamic operations at realistic rates. *)
val default : config

val circuit : config -> Prng.t -> Quantum.Circuit.t
