(** Differential oracles — one verdict per (oracle, circuit) pair.

    Each oracle checks one equivalence the compiler promises, by running
    two independent implementations of it and comparing:

    - [Engines]: QS-CaQR sweeps under the [Incremental] and [Fresh]
      analysis engines must be structurally identical;
    - [Verified]: [Pipeline.compile] output must pass [Verify.run]
      (structural conditions + exact-or-probe distribution equivalence);
    - [Roundtrip]: OpenQASM printing must reach a print→parse fixpoint
      in one trip, and the reparse must preserve the gate stream (angles
      up to the printer's truncation);
    - [Simulation]: the shot-sampled output distribution of the
      reuse-transformed circuit must agree (TVD under an adaptive
      threshold) with the original's on the program clbits.

    An uncaught exception inside an oracle is itself a failure — crashes
    are bugs too. Every run bumps [Obs.Metrics]
    (["fuzz.oracle.<name>.pass" | ".fail"]). *)

type t = Engines | Verified | Roundtrip | Simulation

type verdict = Pass | Fail of string

val all : t list
val name : t -> string

(** Parses the output of {!name}. *)
val of_name : string -> (t, string) result

(** [check oracle ~seed circuit]. The same [(oracle, seed, circuit)]
    triple always returns the same verdict — simulation and probe seeds
    derive from [seed]. *)
val check : t -> seed:int -> Quantum.Circuit.t -> verdict
