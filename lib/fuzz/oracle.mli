(** Differential oracles — one verdict per (oracle, circuit) pair.

    Each oracle checks one equivalence the compiler promises, by running
    two independent implementations of it and comparing:

    - [Engines]: the cross-engine battery. First the QS-CaQR sweeps
      under the [Incremental] and [Fresh] analysis engines must be
      structurally identical; then the circuit is compiled under every
      engine in {!cross_engines} (QS, Cone, GidNET, SR) and each
      artifact must be well-formed, its pair certificate must revalidate
      against the original, its sampled output distribution must match
      the original's on the program clbits, and the claimed widths must
      satisfy [min over engines <= each engine <= baseline width] — one
      buggy engine is outvoted by the other three;
    - [Verified]: [Pipeline.compile] output must pass [Verify.run]
      (structural conditions + exact-or-probe distribution equivalence);
    - [Roundtrip]: OpenQASM printing must reach a print→parse fixpoint
      in one trip, and the reparse must preserve the gate stream (angles
      up to the printer's truncation);
    - [Simulation]: the shot-sampled output distribution of the
      reuse-transformed circuit must agree (TVD under an adaptive
      threshold) with the original's on the program clbits.

    An uncaught exception inside an oracle is itself a failure — crashes
    are bugs too. Every run bumps [Obs.Metrics]
    (["fuzz.oracle.<name>.pass" | ".fail"]). *)

type t = Engines | Verified | Roundtrip | Simulation

type verdict = Pass | Fail of string

val all : t list
val name : t -> string

(** Parses the output of {!name}. *)
val of_name : string -> (t, string) result

(** What one engine reports for one generated circuit: the transformed
    circuit (logical for the pair-IR engines, physical for SR), the
    reuse-pair certificate when the engine emits one, and its width
    claim. *)
type engine_artifact = {
  ea_circuit : Quantum.Circuit.t;
  ea_pairs : Caqr.Reuse.pair list option;
  ea_width : int;
  ea_slack : int;
      (** routing wires the width bound tolerates on top of the baseline
          width — 0 for the pair-IR engines, [2 * swaps] for SR, whose
          physical footprint counts SWAP-touched wires that are routing
          overhead, not reuse *)
}

(** The production engine roster the [Engines] oracle cross-checks:
    [qs] (full reduction sweep), [cone], [gidnet], and [sr]. *)
val cross_engines : (string * (Quantum.Circuit.t -> engine_artifact)) list

(** [check_engines_with ~seed engines c] runs the cross-engine battery
    over an explicit roster — tests inject a deliberately buggy engine
    here and assert it is caught and shrunk. *)
val check_engines_with :
  seed:int ->
  (string * (Quantum.Circuit.t -> engine_artifact)) list ->
  Quantum.Circuit.t ->
  verdict

(** [check oracle ~seed circuit]. The same [(oracle, seed, circuit)]
    triple always returns the same verdict — simulation and probe seeds
    derive from [seed]. *)
val check : t -> seed:int -> Quantum.Circuit.t -> verdict
