(** The fuzzing campaign driver.

    Case [i] of a run is generated from [Prng.split master i], so the
    case stream is a pure function of the master seed: the same
    [(seed, cases)] always produces the same circuits, the same oracle
    verdicts and the same summary, and any single case replays in
    isolation. On an oracle failure the circuit is delta-minimized
    against that oracle and (optionally) persisted to the corpus.

    [Obs.Metrics] counts ["fuzz.cases"], ["fuzz.failures"],
    ["fuzz.shrink.steps"] and per-oracle pass/fail. *)

type failure = {
  case_index : int;
  case_seed : int;  (** reproduces the case via [--seed N --cases 1] semantics *)
  oracle : Oracle.t;
  message : string;
  original_gates : int;
  minimized : Quantum.Circuit.t;
  corpus_file : string option;  (** where {!Corpus.add} put it, if persisted *)
}

type summary = {
  seed : int;
  cases : int;
  oracles : Oracle.t list;
  failures : failure list;  (** in case order *)
}

(** [run ?config ?oracles ?corpus_dir ?jobs ~seed ~cases ()] — [oracles]
    defaults to {!Oracle.all}, [corpus_dir] to [None] (don't persist).

    [jobs] fans the case batch out over {!Exec.Pool} domains (default:
    {!Exec.Pool.default_jobs}); the summary is byte-identical for every
    value because each case is a pure function of [(seed, index)].
    Corpus writes stay sequential, in case order, after all domains have
    joined. *)
val run :
  ?config:Gen.config ->
  ?oracles:Oracle.t list ->
  ?corpus_dir:string ->
  ?jobs:int ->
  seed:int ->
  cases:int ->
  unit ->
  summary

(** Human-readable report: one line per failure plus totals. *)
val pp_summary : Format.formatter -> summary -> unit
