type config = {
  min_qubits : int;
  max_qubits : int;
  min_gates : int;
  max_gates : int;
  w_one_q : int;
  w_two_q : int;
  w_measure : int;
  w_reset : int;
  w_if_x : int;
  w_barrier : int;
  p_share_clbit : float;
  p_measure_tail : float;
}

let default =
  {
    min_qubits = 2;
    max_qubits = 6;
    min_gates = 4;
    max_gates = 40;
    w_one_q = 8;
    w_two_q = 8;
    w_measure = 3;
    w_reset = 1;
    w_if_x = 2;
    w_barrier = 1;
    p_share_clbit = 0.25;
    p_measure_tail = 0.6;
  }

let one_q_gate rng =
  (* Angles are free floats on purpose: the QASM printer truncates them,
     so the round-trip oracle must hold under truncation, not avoid it. *)
  let angle () = Prng.float rng (4. *. Float.pi) -. (2. *. Float.pi) in
  match Prng.int rng 13 with
  | 0 -> Quantum.Gate.H
  | 1 -> Quantum.Gate.X
  | 2 -> Quantum.Gate.Y
  | 3 -> Quantum.Gate.Z
  | 4 -> Quantum.Gate.S
  | 5 -> Quantum.Gate.Sdg
  | 6 -> Quantum.Gate.T
  | 7 -> Quantum.Gate.Tdg
  | 8 -> Quantum.Gate.Sx
  | 9 -> Quantum.Gate.Rx (angle ())
  | 10 -> Quantum.Gate.Ry (angle ())
  | 11 -> Quantum.Gate.Rz (angle ())
  | _ -> Quantum.Gate.Phase (angle ())

let circuit cfg rng =
  let n = cfg.min_qubits + Prng.int rng (cfg.max_qubits - cfg.min_qubits + 1) in
  let num_clbits = n in
  let gates = cfg.min_gates + Prng.int rng (cfg.max_gates - cfg.min_gates + 1) in
  let written = Array.make num_clbits false in
  let any_written () = Array.exists Fun.id written in
  let qubit () = Prng.int rng n in
  let distinct_pair () =
    let a = qubit () in
    let b = (a + 1 + Prng.int rng (n - 1)) mod n in
    (a, b)
  in
  let measure () =
    let q = qubit () in
    let already = Array.to_list (Array.mapi (fun c w -> (c, w)) written)
                  |> List.filter_map (fun (c, w) -> if w then Some c else None) in
    let cb =
      if already <> [] && Prng.float rng 1. < cfg.p_share_clbit then
        List.nth already (Prng.int rng (List.length already))
      else Prng.int rng num_clbits
    in
    written.(cb) <- true;
    Quantum.Gate.Measure (q, cb)
  in
  let gate () =
    match
      Prng.weighted rng
        [
          (cfg.w_one_q, `One_q);
          (cfg.w_two_q, `Two_q);
          (cfg.w_measure, `Measure);
          (cfg.w_reset, `Reset);
          (cfg.w_if_x, `If_x);
          (cfg.w_barrier, `Barrier);
        ]
    with
    | `One_q -> Quantum.Gate.One_q (one_q_gate rng, qubit ())
    | `Two_q ->
      let a, b = distinct_pair () in
      (match Prng.int rng 4 with
       | 0 -> Quantum.Gate.Cx (a, b)
       | 1 -> Quantum.Gate.Cz (a, b)
       | 2 -> Quantum.Gate.Swap (a, b)
       | _ -> Quantum.Gate.Rzz (Prng.float rng Float.pi, a, b))
    | `Measure -> measure ()
    | `Reset -> Quantum.Gate.Reset (qubit ())
    | `If_x ->
      if not (any_written ()) then Quantum.Gate.One_q (one_q_gate rng, qubit ())
      else begin
        let candidates =
          Array.to_list (Array.mapi (fun c w -> (c, w)) written)
          |> List.filter_map (fun (c, w) -> if w then Some c else None)
        in
        let cb = List.nth candidates (Prng.int rng (List.length candidates)) in
        Quantum.Gate.If_x (cb, qubit ())
      end
    | `Barrier ->
      let width = 1 + Prng.int rng (min 4 n) in
      let start = Prng.int rng n in
      Quantum.Gate.Barrier
        (List.init width (fun i -> (start + i) mod n) |> List.sort_uniq compare)
  in
  let body = List.init gates (fun _ -> gate ()) in
  let c = Quantum.Circuit.of_kinds ~num_qubits:n ~num_clbits body in
  if Prng.float rng 1. < cfg.p_measure_tail then Quantum.Circuit.measure_all c
  else c
