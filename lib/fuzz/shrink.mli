(** Delta-debugging minimizer for failing circuits.

    Greedy first-improvement loop over two candidate families, re-checked
    against the oracle at every step:

    - gate removal: delete contiguous chunks, halving the chunk size down
      to single gates (ddmin-style);
    - qubit merging: rewire one qubit's gates onto another (legal only
      when no two-qubit gate couples them), then drop empty wires.

    Candidates are repaired before checking — conditional X gates whose
    clbit lost its writer are dropped, degenerate two-qubit gates reject
    the candidate — so the oracle always sees a well-formed circuit and
    cannot "fail" on generator-invariant violations the original never
    had. Each oracle re-check bumps [Obs.Metrics] ["fuzz.shrink.steps"]. *)

(** [minimize ?max_checks ~still_fails c] returns a locally minimal
    circuit on which [still_fails] is still true, together with the
    number of oracle checks spent. [still_fails c] itself must be true.
    [max_checks] (default 1500) bounds the oracle budget. *)
val minimize :
  ?max_checks:int ->
  still_fails:(Quantum.Circuit.t -> bool) ->
  Quantum.Circuit.t ->
  Quantum.Circuit.t * int
