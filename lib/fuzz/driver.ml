type failure = {
  case_index : int;
  case_seed : int;
  oracle : Oracle.t;
  message : string;
  original_gates : int;
  minimized : Quantum.Circuit.t;
  corpus_file : string option;
}

type summary = {
  seed : int;
  cases : int;
  oracles : Oracle.t list;
  failures : failure list;
}

let run ?(config = Gen.default) ?(oracles = Oracle.all) ?corpus_dir ?jobs ~seed
    ~cases () =
  let master = Prng.make seed in
  (* Each case is a pure function of (master seed, index): generation
     uses [split master i], oracle simulation a sibling stream — so the
     batch fans out across the pool and the summary is byte-identical
     for any [jobs] value. Only the oracle battery and shrinking run in
     the workers; corpus writes happen afterwards, sequentially and in
     submission order, so two failures never race on the manifest. *)
  let check_case i =
    let rng = Prng.split master i in
    (* A stable per-case seed for the oracles' simulators and probes,
       drawn from a sibling stream so it never perturbs generation. *)
    let case_seed =
      Int64.to_int
        (Int64.logand (Prng.bits64 (Prng.split master (-i - 1))) 0x3FFFFFFFL)
    in
    let c = Gen.circuit config rng in
    Obs.Metrics.incr "fuzz.cases";
    List.filter_map
      (fun oracle ->
        match Oracle.check oracle ~seed:case_seed c with
        | Oracle.Pass -> None
        | Oracle.Fail message ->
          Obs.Metrics.incr "fuzz.failures";
          let still_fails c' =
            match Oracle.check oracle ~seed:case_seed c' with
            | Oracle.Fail _ -> true
            | Oracle.Pass -> false
          in
          let minimized, _checks = Shrink.minimize ~still_fails c in
          Some
            {
              case_index = i;
              case_seed;
              oracle;
              message;
              original_gates = Quantum.Circuit.gate_count c;
              minimized;
              corpus_file = None;
            })
      oracles
  in
  let failures =
    Exec.Pool.map ?jobs check_case (List.init cases Fun.id)
    |> List.concat
    |> List.map (fun f ->
           let corpus_file =
             Option.map
               (fun dir ->
                 (Corpus.add ~dir ~seed:f.case_seed ~oracle:f.oracle
                    ~note:f.message f.minimized)
                   .Corpus.file)
               corpus_dir
           in
           { f with corpus_file })
  in
  { seed; cases; oracles; failures }

let pp_summary ppf s =
  Format.fprintf ppf "fuzz: seed %d, %d cases, oracles [%s]@." s.seed s.cases
    (String.concat " " (List.map Oracle.name s.oracles));
  List.iter
    (fun f ->
      Format.fprintf ppf
        "  FAIL case %d (seed %d) oracle %s: %s@.    minimized %d -> %d \
         gates%s@."
        f.case_index f.case_seed (Oracle.name f.oracle) f.message
        f.original_gates
        (Quantum.Circuit.gate_count f.minimized)
        (match f.corpus_file with
         | Some file -> Printf.sprintf " (corpus: %s)" file
         | None -> ""))
    s.failures;
  if s.failures = [] then Format.fprintf ppf "  all oracles passed@."
  else
    Format.fprintf ppf "  %d failing case(s)@." (List.length s.failures)
