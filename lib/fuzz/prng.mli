(** Alias of {!Exec.Prng}, kept so existing [Fuzz.Prng] callers (and the
    corpus manifests that record its seeds) keep working after the
    stream moved below the execution pool in the dependency order. *)
include module type of struct
  include Exec.Prng
end
