(* Repair a kind list so it builds a well-formed circuit: drop
   conditional X gates whose clbit has no earlier writer (gate removal
   may have deleted the measure) and barriers that lost their wires.
   Returns [None] when the list contains a degenerate two-qubit gate —
   those candidates are skipped rather than repaired, since collapsing
   operands would change which gate it is. *)
let sanitize kinds =
  let ok = ref true in
  let written = Hashtbl.create 8 in
  let keep =
    List.filter_map
      (fun k ->
        match k with
        | Quantum.Gate.Cx (a, b)
        | Quantum.Gate.Cz (a, b)
        | Quantum.Gate.Rzz (_, a, b)
        | Quantum.Gate.Swap (a, b) ->
          if a = b then ok := false;
          Some k
        | Quantum.Gate.Measure (_, c) ->
          Hashtbl.replace written c ();
          Some k
        | Quantum.Gate.If_x (c, _) ->
          if Hashtbl.mem written c then Some k else None
        | Quantum.Gate.Barrier qs ->
          let qs = List.sort_uniq compare qs in
          if qs = [] then None else Some (Quantum.Gate.Barrier qs)
        | _ -> Some k)
      kinds
  in
  if !ok then Some keep else None

let kinds_of c =
  Array.to_list (Array.map (fun g -> g.Quantum.Gate.kind) c.Quantum.Circuit.gates)

let build ~num_qubits ~num_clbits kinds =
  match sanitize kinds with
  | None -> None
  | Some kinds -> Some (Quantum.Circuit.of_kinds ~num_qubits ~num_clbits kinds)

(* Delete the chunk [start, start+len). *)
let remove_chunk kinds start len =
  List.filteri (fun i _ -> i < start || i >= start + len) kinds

let minimize ?(max_checks = 1500) ~still_fails c =
  let checks = ref 0 in
  let try_candidate candidate =
    match candidate with
    | None -> false
    | Some c' ->
      !checks < max_checks
      && Quantum.Circuit.gate_count c' > 0
      && begin
        incr checks;
        Obs.Metrics.incr "fuzz.shrink.steps";
        still_fails c'
      end
  in
  let num_qubits = c.Quantum.Circuit.num_qubits in
  let num_clbits = c.Quantum.Circuit.num_clbits in
  let rebuild kinds = build ~num_qubits ~num_clbits kinds in
  (* One pass of chunked gate removal; [Some smaller] on first success. *)
  let removal_pass c =
    let kinds = kinds_of c in
    let n = List.length kinds in
    let rec chunks len =
      if len < 1 then None
      else
        let rec starts start =
          if start >= n then chunks (len / 2)
          else
            let cand = rebuild (remove_chunk kinds start len) in
            if try_candidate cand then cand else starts (start + len)
        in
        starts 0
    in
    chunks (n / 2)
  in
  (* One pass of qubit merging: rewire b onto a when no gate couples
     them, then compact away the empty wire. *)
  let merge_pass c =
    let inter = Quantum.Circuit.interaction_graph c in
    let active = Quantum.Circuit.active_qubits c in
    let rec pairs = function
      | [] -> None
      | a :: rest ->
        let rec against = function
          | [] -> pairs rest
          | b :: more ->
            if Galg.Graph.has_edge inter a b then against more
            else begin
              let merged =
                Quantum.Circuit.map_qubits ~num_qubits
                  (fun q -> if q = b then a else q)
                  c
              in
              let cand = rebuild (kinds_of merged) in
              if try_candidate cand then cand else against more
            end
        in
        against rest
    in
    pairs active
  in
  let rec loop c =
    if !checks >= max_checks then c
    else
      match removal_pass c with
      | Some smaller -> loop smaller
      | None -> (
        match merge_pass c with
        | Some smaller -> loop smaller
        | None -> c)
  in
  let result = loop c in
  let compacted, _ = Quantum.Circuit.compact_qubits result in
  (* Compaction renames wires; keep it only if the failure survives the
     renaming, otherwise return the uncompacted minimum. *)
  if
    Quantum.Circuit.gate_count compacted > 0
    && compacted.Quantum.Circuit.num_qubits < result.Quantum.Circuit.num_qubits
    && still_fails compacted
  then (compacted, !checks)
  else (result, !checks)
