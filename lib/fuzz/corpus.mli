(** Persisted failure corpus.

    Every minimized counterexample is serialized as an OpenQASM file
    under a corpus directory, next to a [manifest.tsv] recording which
    seed produced it, which oracle it refuted and why. Entries are plain
    text so they diff cleanly in review, and the test suite
    ([test/test_corpus.ml]) replays every entry through its recorded
    oracle — a past fuzz finding can never regress silently.

    Writes are crash-safe: every file (circuit and manifest alike) is
    written to a temp file in the corpus directory and atomically
    [Sys.rename]d into place, so an interrupted write — including an
    injected [corpus.write] fault — leaves no truncated file and an
    intact manifest. Each circuit file carries its manifest metadata in
    a two-line [//] comment header, making the manifest derived state:
    {!add} rebuilds it from a sorted directory scan (header metadata
    first, previous manifest line for legacy header-less files). *)

type entry = {
  file : string;  (** QASM file name, relative to the corpus directory *)
  seed : int;  (** per-case seed that reproduces the finding *)
  oracle : Oracle.t;
  note : string;  (** the oracle's failure message at capture time *)
}

(** Where the checked-in corpus lives, relative to the repo root. *)
val default_dir : string

(** Entries of [dir]'s manifest; [[]] when the directory or manifest
    does not exist. Raises [Failure] on a malformed manifest line. *)
val load : string -> entry list

(** [add ~dir ~seed ~oracle ~note circuit] writes the circuit (with its
    metadata header) and rebuilds the manifest, creating [dir] as
    needed; both writes are atomic. The file name encodes the oracle and
    seed; a counter suffix keeps it fresh when one seed produces several
    findings. *)
val add :
  dir:string ->
  seed:int ->
  oracle:Oracle.t ->
  note:string ->
  Quantum.Circuit.t ->
  entry

(** Parse an entry's circuit back. Raises [Failure] on unreadable or
    unparsable files. *)
val read_circuit : dir:string -> entry -> Quantum.Circuit.t
