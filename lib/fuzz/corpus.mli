(** Persisted failure corpus.

    Every minimized counterexample is serialized as an OpenQASM file
    under a corpus directory, next to a [manifest.tsv] recording which
    seed produced it, which oracle it refuted and why. The manifest is
    append-only plain text so entries diff cleanly in review, and the
    test suite ([test/test_corpus.ml]) replays every entry through its
    recorded oracle — a past fuzz finding can never regress silently. *)

type entry = {
  file : string;  (** QASM file name, relative to the corpus directory *)
  seed : int;  (** per-case seed that reproduces the finding *)
  oracle : Oracle.t;
  note : string;  (** the oracle's failure message at capture time *)
}

(** Where the checked-in corpus lives, relative to the repo root. *)
val default_dir : string

(** Entries of [dir]'s manifest; [[]] when the directory or manifest
    does not exist. Raises [Failure] on a malformed manifest line. *)
val load : string -> entry list

(** [add ~dir ~seed ~oracle ~note circuit] writes the circuit and
    appends a manifest line, creating [dir] as needed. The file name
    encodes the oracle and seed; a counter suffix keeps it fresh when
    one seed produces several findings. *)
val add :
  dir:string ->
  seed:int ->
  oracle:Oracle.t ->
  note:string ->
  Quantum.Circuit.t ->
  entry

(** Parse an entry's circuit back. Raises [Failure] on unreadable or
    unparsable files. *)
val read_circuit : dir:string -> entry -> Quantum.Circuit.t
