type entry = { file : string; seed : int; oracle : Oracle.t; note : string }

let default_dir = Filename.concat "fuzz" "corpus"
let manifest_name = "manifest.tsv"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then []
  else
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "" && l.[0] <> '#')
    |> List.map (fun line ->
           match String.split_on_char '\t' line with
           | file :: seed :: oracle :: note ->
             let seed =
               match int_of_string_opt seed with
               | Some s -> s
               | None -> failwith ("Corpus.load: bad seed in line: " ^ line)
             in
             let oracle =
               match Oracle.of_name oracle with
               | Ok o -> o
               | Error msg -> failwith ("Corpus.load: " ^ msg)
             in
             { file; seed; oracle; note = String.concat "\t" note }
           | _ -> failwith ("Corpus.load: malformed manifest line: " ^ line))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* TSV field: no tabs or newlines allowed inside. *)
let clean s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

(* ---- crash-safe writes ----

   Every file lands via write-to-temp + atomic [Sys.rename] in the same
   directory: a crash (or an injected [corpus.write] fault) mid-write
   leaves the corpus exactly as it was — no truncated QASM, no
   half-written manifest line. The temp file is removed on failure. *)
let write_atomic ~dir ~file content =
  let tmp = Filename.concat dir ("." ^ file ^ ".tmp") in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     Guard.Inject.hit "corpus.write";
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp (Filename.concat dir file)

(* Each circuit file carries its own manifest metadata in a two-line
   header, so the manifest is derived state: it can always be rebuilt
   from the directory contents alone. (QASM [//] comments, invisible to
   the parser.) *)
let header_key = "// caqr-corpus "
let note_key = "// note: "

let header_of entry =
  Printf.sprintf "%sseed=%d oracle=%s\n%s%s\n" header_key entry.seed
    (Oracle.name entry.oracle) note_key entry.note

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let strip p s = String.sub s (String.length p) (String.length s - String.length p)

let metadata_of_header content =
  match String.split_on_char '\n' content with
  | l1 :: l2 :: _ when starts_with header_key l1 && starts_with note_key l2 -> (
    match
      String.split_on_char ' ' (strip header_key l1)
      |> List.filter (fun w -> w <> "")
    with
    | [ seed; oracle ]
      when starts_with "seed=" seed && starts_with "oracle=" oracle -> (
      match int_of_string_opt (strip "seed=" seed) with
      | Some s -> Some (s, strip "oracle=" oracle, strip note_key l2)
      | None -> None)
    | _ -> None)
  | _ -> None

let manifest_header =
  "# Minimized fuzz counterexamples, replayed by test/test_corpus.ml.\n\
   # Format: file <TAB> case seed <TAB> oracle <TAB> failure note at capture time.\n"

(* The manifest is rebuilt from a sorted directory scan, never appended:
   metadata comes from each file's header, falling back to the previous
   manifest for legacy header-less files; files with neither are
   skipped. The result lands atomically. *)
let rebuild_manifest ~dir ~old =
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".qasm")
    |> List.sort compare
    |> List.filter_map (fun file ->
           let from_old () = List.find_opt (fun e -> e.file = file) old in
           match
             metadata_of_header (read_file (Filename.concat dir file))
           with
           | Some (seed, oname, note) -> (
             match Oracle.of_name oname with
             | Ok oracle -> Some { file; seed; oracle; note }
             | Error _ -> from_old ())
           | None -> from_old ())
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf manifest_header;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%d\t%s\t%s\n" e.file e.seed (Oracle.name e.oracle)
           e.note))
    entries;
  write_atomic ~dir ~file:manifest_name (Buffer.contents buf)

let add ~dir ~seed ~oracle ~note circuit =
  mkdir_p dir;
  let base = Printf.sprintf "%s-seed%d" (Oracle.name oracle) seed in
  let rec fresh i =
    let file =
      if i = 0 then base ^ ".qasm" else Printf.sprintf "%s-%d.qasm" base i
    in
    if Sys.file_exists (Filename.concat dir file) then fresh (i + 1) else file
  in
  let file = fresh 0 in
  let entry = { file; seed; oracle; note = clean note } in
  (* Old entries are read BEFORE anything is written, so a legacy
     manifest survives the rebuild even if this add fails midway. *)
  let old = load dir in
  write_atomic ~dir ~file
    (header_of entry ^ Quantum.Qasm.to_string circuit);
  rebuild_manifest ~dir ~old;
  entry

let read_circuit ~dir entry =
  Quantum.Qasm_parser.of_string (read_file (Filename.concat dir entry.file))
