type entry = { file : string; seed : int; oracle : Oracle.t; note : string }

let default_dir = Filename.concat "fuzz" "corpus"
let manifest_name = "manifest.tsv"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then []
  else
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "" && l.[0] <> '#')
    |> List.map (fun line ->
           match String.split_on_char '\t' line with
           | file :: seed :: oracle :: note ->
             let seed =
               match int_of_string_opt seed with
               | Some s -> s
               | None -> failwith ("Corpus.load: bad seed in line: " ^ line)
             in
             let oracle =
               match Oracle.of_name oracle with
               | Ok o -> o
               | Error msg -> failwith ("Corpus.load: " ^ msg)
             in
             { file; seed; oracle; note = String.concat "\t" note }
           | _ -> failwith ("Corpus.load: malformed manifest line: " ^ line))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* TSV field: no tabs or newlines allowed inside. *)
let clean s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let add ~dir ~seed ~oracle ~note circuit =
  mkdir_p dir;
  let base = Printf.sprintf "%s-seed%d" (Oracle.name oracle) seed in
  let rec fresh i =
    let file =
      if i = 0 then base ^ ".qasm" else Printf.sprintf "%s-%d.qasm" base i
    in
    if Sys.file_exists (Filename.concat dir file) then fresh (i + 1) else file
  in
  let file = fresh 0 in
  let oc = open_out_bin (Filename.concat dir file) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Quantum.Qasm.to_string circuit));
  let entry = { file; seed; oracle; note = clean note } in
  let moc =
    open_out_gen [ Open_append; Open_creat ] 0o644
      (Filename.concat dir manifest_name)
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr moc)
    (fun () ->
      Printf.fprintf moc "%s\t%d\t%s\t%s\n" entry.file entry.seed
        (Oracle.name entry.oracle) entry.note);
  entry

let read_circuit ~dir entry =
  Quantum.Qasm_parser.of_string (read_file (Filename.concat dir entry.file))
