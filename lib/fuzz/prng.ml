(* The splittable SplitMix64 stream now lives in [Exec.Prng] so the
   execution pool (which sits below the fuzzer in the dependency order)
   can derive per-task seeds from it; this alias keeps every existing
   [Fuzz.Prng] caller working. *)
include Exec.Prng
