type t = Engines | Verified | Roundtrip | Simulation
type verdict = Pass | Fail of string

let all = [ Engines; Verified; Roundtrip; Simulation ]

let name = function
  | Engines -> "engines"
  | Verified -> "verified"
  | Roundtrip -> "roundtrip"
  | Simulation -> "simulation"

let of_name s =
  match List.find_opt (fun o -> name o = s) all with
  | Some o -> Ok o
  | None ->
    Error
      (Printf.sprintf "unknown oracle %S (expected %s)" s
         (String.concat " | " (List.map name all)))

(* ---- shared sampled-distribution machinery ---- *)

(* Project a histogram onto the low [num_clbits] program bits — the
   transforms may have appended scratch clbits for conditional resets. *)
let marginal ~num_clbits counts =
  let mask = (1 lsl num_clbits) - 1 in
  let out = Sim.Counts.create ~num_clbits in
  List.iter
    (fun (outcome, _) ->
      let k = Sim.Counts.get counts outcome in
      for _ = 1 to k do
        Sim.Counts.add out (outcome land mask)
      done)
    (Sim.Counts.to_probs counts);
  out

let distinct_outcomes a b =
  let outs c = List.map fst (Sim.Counts.to_probs c) in
  List.length (List.sort_uniq compare (outs a @ outs b))

let sim_max_qubits = 6
let sim_shots = 1024

(* Two finite samples of the same distribution over K outcomes sit
   around TVD ~ sqrt(K / shots) / 2; the additive floor keeps
   low-entropy circuits from tripping on shot noise. *)
let tvd_threshold a b =
  let k = distinct_outcomes a b in
  0.1 +. sqrt (float_of_int k /. float_of_int sim_shots)

(* ---- engines: the cross-engine differential oracle ---- *)

let sweep_with engine c =
  Caqr.Qs_caqr.sweep ~opts:{ Caqr.Qs_caqr.default_opts with engine } c

(* Fresh-vs-incremental sweep identity — the original [engines] check,
   kept as the first leg of the cross-engine battery. *)
let check_sweep_identity c =
  let inc = sweep_with Caqr.Qs_caqr.Incremental c in
  let fresh = sweep_with Caqr.Qs_caqr.Fresh c in
  if inc = fresh then Pass
  else begin
    let rec first_diff i = function
      | a :: ar, b :: br -> if a = b then first_diff (i + 1) (ar, br) else i
      | _ -> i
    in
    Fail
      (Printf.sprintf
         "incremental and fresh sweeps diverge (lengths %d vs %d, first \
          differing step %d)"
         (List.length inc) (List.length fresh)
         (first_diff 0 (inc, fresh)))
  end

type engine_artifact = {
  ea_circuit : Quantum.Circuit.t;
  ea_pairs : Caqr.Reuse.pair list option;
  ea_width : int;
  ea_slack : int;
}

let pair_artifact circuit pairs =
  {
    ea_circuit = circuit;
    ea_pairs = Some pairs;
    ea_width = List.length (Quantum.Circuit.active_qubits circuit);
    ea_slack = 0;
  }

let cross_engines =
  [
    ( "qs",
      fun c ->
        match List.rev (Caqr.Qs_caqr.sweep c) with
        | last :: _ ->
          pair_artifact last.Caqr.Qs_caqr.circuit last.Caqr.Qs_caqr.pairs
        | [] -> pair_artifact c [] );
    ("cone", fun c ->
        let r = Caqr.Cone_caqr.run c in
        pair_artifact r.Caqr.Cone_caqr.circuit r.Caqr.Cone_caqr.pairs);
    ("gidnet", fun c ->
        let r = Caqr.Gidnet_caqr.run c in
        pair_artifact r.Caqr.Gidnet_caqr.circuit r.Caqr.Gidnet_caqr.pairs);
    ("sr", fun c ->
        let device =
          Hardware.Device.heavy_hex_for c.Quantum.Circuit.num_qubits
        in
        let r = Caqr.Sr_caqr.regular device c in
        {
          ea_circuit = r.Caqr.Sr_caqr.physical;
          ea_pairs = None;
          (* SR reuses physical wires as a side effect; its width claim
             is the physical qubits its mapper actually touched. That
             count includes *routing* wires — each inserted SWAP can pull
             in up to two otherwise-unused physicals — which are overhead
             the logical width bound must tolerate, not reuse gone
             wrong. *)
          ea_width = r.Caqr.Sr_caqr.qubits_used;
          ea_slack = 2 * r.Caqr.Sr_caqr.swaps_added;
        });
  ]

(* Every engine must (a) emit a well-formed circuit whose pair
   certificate (when it names one) revalidates against the original,
   (b) reproduce the original's output distribution on the program
   clbits, and (c) claim a width that matches its artifact and sits in
   [min over engines, baseline]. One bad engine is caught by the other
   three — N-version testing, with the generated circuit as the vote. *)
let check_engines_with ~seed engines c =
  let baseline = List.length (Quantum.Circuit.active_qubits c) in
  let artifacts = List.map (fun (name, f) -> (name, f c)) engines in
  let widths = List.map (fun (_, a) -> a.ea_width) artifacts in
  let min_width = List.fold_left min max_int widths in
  let d0 =
    if c.Quantum.Circuit.num_qubits <= sim_max_qubits then
      Some (Sim.Executor.run ~seed ~shots:sim_shots c)
    else None
  in
  let check_one i (name, a) =
    let structural =
      match Verify.Structural.check_wellformed a.ea_circuit with
      | Verify.Verdict.Inequivalent ce ->
        Fail (Printf.sprintf "%s: artifact is malformed: %s" name
                ce.Verify.Verdict.detail)
      | _ ->
        (match a.ea_pairs with
         | None -> Pass
         | Some pairs ->
           (match
              Verify.Structural.check_pairs ~original:c
                (List.map
                   (fun (p : Caqr.Reuse.pair) ->
                     { Verify.Structural.src = p.Caqr.Reuse.src;
                       dst = p.Caqr.Reuse.dst })
                   pairs)
            with
            | Verify.Verdict.Inequivalent ce ->
              Fail
                (Printf.sprintf "%s: pair certificate refuted: %s" name
                   ce.Verify.Verdict.detail)
            | _ -> Pass))
    in
    if structural <> Pass then structural
    else if
      a.ea_width <> List.length (Quantum.Circuit.active_qubits a.ea_circuit)
    then
      Fail
        (Printf.sprintf "%s: claims width %d but its artifact uses %d wires"
           name a.ea_width
           (List.length (Quantum.Circuit.active_qubits a.ea_circuit)))
    else if a.ea_width > baseline + a.ea_slack then
      Fail
        (Printf.sprintf "%s: width %d exceeds the baseline width %d%s" name
           a.ea_width baseline
           (if a.ea_slack > 0 then
              Printf.sprintf " (+%d routing slack)" a.ea_slack
            else ""))
    else if a.ea_width < min_width then
      Fail (Printf.sprintf "%s: width fell below the engine minimum" name)
    else
      match d0 with
      | Some d0
        when List.length (Quantum.Circuit.active_qubits a.ea_circuit)
             <= sim_max_qubits + 2 ->
        (* +2: SR routing may touch a couple of extra physical wires;
           the executor compacts, so the state stays small. *)
        let d1 =
          marginal ~num_clbits:c.Quantum.Circuit.num_clbits
            (Sim.Executor.run ~seed:(seed + i + 1) ~shots:sim_shots
               a.ea_circuit)
        in
        let tvd = Sim.Counts.tvd d0 d1 in
        let threshold = tvd_threshold d0 d1 in
        if tvd <= threshold then Pass
        else
          Fail
            (Printf.sprintf
               "%s: output distribution shifted: TVD %.3f > %.3f" name tvd
               threshold)
      | _ -> Pass
  in
  let rec first_fail i = function
    | [] -> Pass
    | a :: rest ->
      (match check_one i a with Pass -> first_fail (i + 1) rest | f -> f)
  in
  first_fail 0 artifacts

let check_engines ~seed c =
  match check_sweep_identity c with
  | Fail _ as f -> f
  | Pass -> check_engines_with ~seed cross_engines c

(* ---- verified: compile + translation validation ---- *)

let check_verified ~seed c =
  let device = Hardware.Device.heavy_hex_for c.Quantum.Circuit.num_qubits in
  let strategy =
    match seed mod 3 with
    | 0 -> Caqr.Pipeline.Qs_max_reuse
    | 1 -> Caqr.Pipeline.Qs_min_depth
    | _ -> Caqr.Pipeline.Sr
  in
  let options =
    { Caqr.Pipeline.default with verify = Some Verify.Auto; seed }
  in
  let r =
    Caqr.Pipeline.compile ~options device strategy (Caqr.Pipeline.Regular c)
  in
  match r.Caqr.Pipeline.verification with
  | Some (Verify.Inequivalent ce) ->
    Fail
      (Printf.sprintf "%s: verifier refuted the compiled artifact: %s"
         (Caqr.Pipeline.strategy_name strategy)
         ce.Verify.Verdict.detail)
  | Some Verify.Equivalent | Some (Verify.Inconclusive _) -> Pass
  | None -> Fail "Pipeline.compile dropped the requested verification"

(* ---- roundtrip: print -> parse fixpoint ---- *)

let same_kind_mod_print a b =
  (* The printer truncates angles to 4 decimals; everything else must
     survive exactly. *)
  let close x y = Float.abs (x -. y) <= 1e-4 in
  match (a, b) with
  | Quantum.Gate.One_q (ga, qa), Quantum.Gate.One_q (gb, qb) ->
    qa = qb
    && (match (ga, gb) with
        | Quantum.Gate.Rx x, Quantum.Gate.Rx y
        | Quantum.Gate.Ry x, Quantum.Gate.Ry y
        | Quantum.Gate.Rz x, Quantum.Gate.Rz y
        | Quantum.Gate.Phase x, Quantum.Gate.Phase y -> close x y
        | _ -> ga = gb)
  | Quantum.Gate.Rzz (x, a1, a2), Quantum.Gate.Rzz (y, b1, b2) ->
    close x y && a1 = b1 && a2 = b2
  | _ -> a = b

let check_roundtrip c =
  let s1 = Quantum.Qasm.to_string c in
  match Quantum.Qasm_parser.of_string s1 with
  | exception Failure msg -> Fail ("printer output does not parse: " ^ msg)
  | c1 ->
    let s2 = Quantum.Qasm.to_string c1 in
    if s1 <> s2 then Fail "print -> parse -> print is not a fixpoint"
    else if c1.Quantum.Circuit.num_qubits <> c.Quantum.Circuit.num_qubits then
      Fail "reparse changed the qubit count"
    else if c1.Quantum.Circuit.num_clbits <> c.Quantum.Circuit.num_clbits then
      Fail "reparse changed the clbit count"
    else if Quantum.Circuit.gate_count c1 <> Quantum.Circuit.gate_count c then
      Fail
        (Printf.sprintf "reparse changed the gate count (%d -> %d)"
           (Quantum.Circuit.gate_count c)
           (Quantum.Circuit.gate_count c1))
    else if
      not
        (Array.for_all2
           (fun a b -> same_kind_mod_print a.Quantum.Gate.kind b.Quantum.Gate.kind)
           c.Quantum.Circuit.gates c1.Quantum.Circuit.gates)
    then Fail "reparse changed a gate"
    else Pass

(* ---- simulation: sampled-distribution agreement after reuse ---- *)

let check_simulation ~seed c =
  if c.Quantum.Circuit.num_qubits > sim_max_qubits then Pass
  else
    match List.rev (Caqr.Qs_caqr.sweep c) with
    | [] | [ _ ] -> Pass (* no reuse opportunity: nothing to compare *)
    | last :: _ ->
      let t = last.Caqr.Qs_caqr.circuit in
      let d0 = Sim.Executor.run ~seed ~shots:sim_shots c in
      let d1 =
        marginal ~num_clbits:c.Quantum.Circuit.num_clbits
          (Sim.Executor.run ~seed:(seed + 1) ~shots:sim_shots t)
      in
      let tvd = Sim.Counts.tvd d0 d1 in
      let threshold = tvd_threshold d0 d1 in
      if tvd <= threshold then Pass
      else
        Fail
          (Printf.sprintf
             "reuse transform shifted the output distribution: TVD %.3f > \
              %.3f after %d reuses"
             tvd threshold
             (List.length last.Caqr.Qs_caqr.pairs))

let check oracle ~seed c =
  let verdict =
    try
      match oracle with
      | Engines -> check_engines ~seed c
      | Verified -> check_verified ~seed c
      | Roundtrip -> check_roundtrip c
      | Simulation -> check_simulation ~seed c
    with e -> Fail ("uncaught exception: " ^ Printexc.to_string e)
  in
  (match verdict with
   | Pass -> Obs.Metrics.incr (Printf.sprintf "fuzz.oracle.%s.pass" (name oracle))
   | Fail _ -> Obs.Metrics.incr (Printf.sprintf "fuzz.oracle.%s.fail" (name oracle)));
  verdict
