type t = Engines | Verified | Roundtrip | Simulation
type verdict = Pass | Fail of string

let all = [ Engines; Verified; Roundtrip; Simulation ]

let name = function
  | Engines -> "engines"
  | Verified -> "verified"
  | Roundtrip -> "roundtrip"
  | Simulation -> "simulation"

let of_name s =
  match List.find_opt (fun o -> name o = s) all with
  | Some o -> Ok o
  | None ->
    Error
      (Printf.sprintf "unknown oracle %S (expected %s)" s
         (String.concat " | " (List.map name all)))

(* ---- engines: fresh-vs-incremental sweep identity ---- *)

let sweep_with engine c =
  Caqr.Qs_caqr.sweep ~opts:{ Caqr.Qs_caqr.default_opts with engine } c

let check_engines c =
  let inc = sweep_with Caqr.Qs_caqr.Incremental c in
  let fresh = sweep_with Caqr.Qs_caqr.Fresh c in
  if inc = fresh then Pass
  else begin
    let rec first_diff i = function
      | a :: ar, b :: br -> if a = b then first_diff (i + 1) (ar, br) else i
      | _ -> i
    in
    Fail
      (Printf.sprintf
         "incremental and fresh sweeps diverge (lengths %d vs %d, first \
          differing step %d)"
         (List.length inc) (List.length fresh)
         (first_diff 0 (inc, fresh)))
  end

(* ---- verified: compile + translation validation ---- *)

let check_verified ~seed c =
  let device = Hardware.Device.heavy_hex_for c.Quantum.Circuit.num_qubits in
  let strategy =
    match seed mod 3 with
    | 0 -> Caqr.Pipeline.Qs_max_reuse
    | 1 -> Caqr.Pipeline.Qs_min_depth
    | _ -> Caqr.Pipeline.Sr
  in
  let options =
    { Caqr.Pipeline.default with verify = Some Verify.Auto; seed }
  in
  let r =
    Caqr.Pipeline.compile ~options device strategy (Caqr.Pipeline.Regular c)
  in
  match r.Caqr.Pipeline.verification with
  | Some (Verify.Inequivalent ce) ->
    Fail
      (Printf.sprintf "%s: verifier refuted the compiled artifact: %s"
         (Caqr.Pipeline.strategy_name strategy)
         ce.Verify.Verdict.detail)
  | Some Verify.Equivalent | Some (Verify.Inconclusive _) -> Pass
  | None -> Fail "Pipeline.compile dropped the requested verification"

(* ---- roundtrip: print -> parse fixpoint ---- *)

let same_kind_mod_print a b =
  (* The printer truncates angles to 4 decimals; everything else must
     survive exactly. *)
  let close x y = Float.abs (x -. y) <= 1e-4 in
  match (a, b) with
  | Quantum.Gate.One_q (ga, qa), Quantum.Gate.One_q (gb, qb) ->
    qa = qb
    && (match (ga, gb) with
        | Quantum.Gate.Rx x, Quantum.Gate.Rx y
        | Quantum.Gate.Ry x, Quantum.Gate.Ry y
        | Quantum.Gate.Rz x, Quantum.Gate.Rz y
        | Quantum.Gate.Phase x, Quantum.Gate.Phase y -> close x y
        | _ -> ga = gb)
  | Quantum.Gate.Rzz (x, a1, a2), Quantum.Gate.Rzz (y, b1, b2) ->
    close x y && a1 = b1 && a2 = b2
  | _ -> a = b

let check_roundtrip c =
  let s1 = Quantum.Qasm.to_string c in
  match Quantum.Qasm_parser.of_string s1 with
  | exception Failure msg -> Fail ("printer output does not parse: " ^ msg)
  | c1 ->
    let s2 = Quantum.Qasm.to_string c1 in
    if s1 <> s2 then Fail "print -> parse -> print is not a fixpoint"
    else if c1.Quantum.Circuit.num_qubits <> c.Quantum.Circuit.num_qubits then
      Fail "reparse changed the qubit count"
    else if c1.Quantum.Circuit.num_clbits <> c.Quantum.Circuit.num_clbits then
      Fail "reparse changed the clbit count"
    else if Quantum.Circuit.gate_count c1 <> Quantum.Circuit.gate_count c then
      Fail
        (Printf.sprintf "reparse changed the gate count (%d -> %d)"
           (Quantum.Circuit.gate_count c)
           (Quantum.Circuit.gate_count c1))
    else if
      not
        (Array.for_all2
           (fun a b -> same_kind_mod_print a.Quantum.Gate.kind b.Quantum.Gate.kind)
           c.Quantum.Circuit.gates c1.Quantum.Circuit.gates)
    then Fail "reparse changed a gate"
    else Pass

(* ---- simulation: sampled-distribution agreement after reuse ---- *)

(* Project a histogram onto the low [num_clbits] program bits — the
   transform may have appended scratch clbits for conditional resets. *)
let marginal ~num_clbits counts =
  let mask = (1 lsl num_clbits) - 1 in
  let out = Sim.Counts.create ~num_clbits in
  List.iter
    (fun (outcome, _) ->
      let k = Sim.Counts.get counts outcome in
      for _ = 1 to k do
        Sim.Counts.add out (outcome land mask)
      done)
    (Sim.Counts.to_probs counts);
  out

let distinct_outcomes a b =
  let outs c = List.map fst (Sim.Counts.to_probs c) in
  List.length (List.sort_uniq compare (outs a @ outs b))

let sim_max_qubits = 6
let sim_shots = 1024

let check_simulation ~seed c =
  if c.Quantum.Circuit.num_qubits > sim_max_qubits then Pass
  else
    match List.rev (Caqr.Qs_caqr.sweep c) with
    | [] | [ _ ] -> Pass (* no reuse opportunity: nothing to compare *)
    | last :: _ ->
      let t = last.Caqr.Qs_caqr.circuit in
      let d0 = Sim.Executor.run ~seed ~shots:sim_shots c in
      let d1 =
        marginal ~num_clbits:c.Quantum.Circuit.num_clbits
          (Sim.Executor.run ~seed:(seed + 1) ~shots:sim_shots t)
      in
      let tvd = Sim.Counts.tvd d0 d1 in
      (* Two finite samples of the same distribution over K outcomes sit
         around TVD ~ sqrt(K / shots) / 2; the additive floor keeps
         low-entropy circuits from tripping on shot noise. *)
      let k = distinct_outcomes d0 d1 in
      let threshold = 0.1 +. sqrt (float_of_int k /. float_of_int sim_shots) in
      if tvd <= threshold then Pass
      else
        Fail
          (Printf.sprintf
             "reuse transform shifted the output distribution: TVD %.3f > \
              %.3f after %d reuses"
             tvd threshold
             (List.length last.Caqr.Qs_caqr.pairs))

let check oracle ~seed c =
  let verdict =
    try
      match oracle with
      | Engines -> check_engines c
      | Verified -> check_verified ~seed c
      | Roundtrip -> check_roundtrip c
      | Simulation -> check_simulation ~seed c
    with e -> Fail ("uncaught exception: " ^ Printexc.to_string e)
  in
  (match verdict with
   | Pass -> Obs.Metrics.incr (Printf.sprintf "fuzz.oracle.%s.pass" (name oracle))
   | Fail _ -> Obs.Metrics.incr (Printf.sprintf "fuzz.oracle.%s.fail" (name oracle)));
  verdict
