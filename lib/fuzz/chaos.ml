type outcome =
  | Ok_clean
  | Ok_degraded of int
  | Contained of Guard.Error.t
  | Verify_failed of string
  | Uncontained of string

type cell = {
  site : Guard.Inject.site;
  bench : string;
  fired : int;
  outcome : outcome;
}

(* A scratch corpus directory, wiped before every use so file names (and
   therefore the whole matrix rendering) are identical across runs. *)
let scratch_corpus_dir () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "caqr-chaos-corpus" in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  dir

let corpus_roundtrip circuit =
  let dir = scratch_corpus_dir () in
  let entry =
    Corpus.add ~dir ~seed:1 ~oracle:Oracle.Roundtrip ~note:"chaos probe"
      circuit
  in
  let loaded = Corpus.load dir in
  if not (List.exists (fun e -> e.Corpus.file = entry.Corpus.file) loaded) then
    failwith "Chaos: corpus manifest lost the entry it just wrote";
  ignore (Corpus.read_circuit ~dir entry)

let width_of = function
  | Caqr.Pipeline.Regular c -> c.Quantum.Circuit.num_qubits
  | Caqr.Pipeline.Commutable g -> Galg.Graph.order g

(* The wire.* injection sites live in Serve.Transport, which sits ABOVE
   this library in the link order (benchmarks, a dependee of fuzz,
   generate circuits with Gen — so fuzz cannot see serve). The probe
   that exercises those sites is therefore installed from outside:
   [Wirefuzz.install_chaos_probe] registers a loopback socketpair
   exchange here, and every entry point that sweeps the full catalog
   (the chaos CLI, the guard test suite) installs it first. Unprobed,
   wire.* cells simply never fire — visible in the matrix, not a crash. *)
let probe : (unit -> unit) option Atomic.t = Atomic.make None
let set_wire_probe f = Atomic.set probe (Some f)

let wire_probe () =
  match Atomic.get probe with Some f -> f () | None -> ()

(* One fault, one benchmark: drive the full surface — ladder-supervised
   compiles (both mappers), the applicability test, shot simulation, a
   QASM print/parse roundtrip, and a corpus write — all single-domain so
   the armed fault lands at a deterministic hit. Returns the reports so
   the caller can classify. *)
let workload input =
  let device = Hardware.Device.heavy_hex_for (width_of input) in
  let options =
    {
      Caqr.Pipeline.default with
      Caqr.Pipeline.fallback = true;
      verify = Some Verify.Static;
      jobs = 1;
    }
  in
  let reports =
    List.map
      (fun s -> Caqr.Pipeline.compile ~options device s input)
      [ Caqr.Pipeline.Sr; Caqr.Pipeline.Qs_min_depth ]
  in
  ignore (Caqr.Pipeline.beneficial device input);
  let r = List.hd reports in
  ignore (Sim.Executor.run ~jobs:1 ~seed:1 ~shots:64 r.Caqr.Pipeline.physical);
  (match
     Quantum.Qasm_parser.parse
       (Quantum.Qasm.to_string r.Caqr.Pipeline.physical)
   with
  | Ok _ -> ()
  | Error e -> raise (Guard.Error.Guard_error e));
  corpus_roundtrip r.Caqr.Pipeline.logical;
  wire_probe ();
  reports

let classify reports =
  let refuted =
    List.find_map
      (fun (r : Caqr.Pipeline.report) ->
        match r.Caqr.Pipeline.verification with
        | Some (Verify.Inequivalent cx) ->
          Some
            (Printf.sprintf "%s: %s"
               (Caqr.Pipeline.strategy_name r.Caqr.Pipeline.strategy)
               cx.Verify.Verdict.detail)
        | _ -> None)
      reports
  in
  match refuted with
  | Some why -> Verify_failed why
  | None -> (
    match
      List.fold_left
        (fun acc (r : Caqr.Pipeline.report) ->
          acc + List.length r.Caqr.Pipeline.degraded)
        0 reports
    with
    | 0 -> Ok_clean
    | n -> Ok_degraded n)

let run_cell ~seed ?deadline_ms site (bench, input) =
  (* Seed-driven arming: the k-th hit to fail is a pure function of the
     seed, so a rerun replays the exact same fault. *)
  Guard.Inject.arm ~at_hit:(1 + ((max 1 seed - 1) mod 2)) site.Guard.Inject.name;
  let finish outcome =
    let fired = Guard.Inject.fired () in
    Guard.Inject.disarm ();
    { site; bench; fired; outcome }
  in
  match
    Guard.Budget.with_deadline ?ms:deadline_ms (fun () -> workload input)
  with
  | reports -> finish (classify reports)
  | exception (Guard.Error.Guard_error e | Guard.Error.Budget_exceeded e) ->
    finish (Contained e)
  | exception e -> finish (Uncontained (Printexc.to_string e))

let run ?(seed = 1) ?deadline_ms benches =
  List.concat_map
    (fun site ->
      List.map (fun bench -> run_cell ~seed ?deadline_ms site bench) benches)
    Guard.Inject.sites

let outcome_line = function
  | Ok_clean -> "ok"
  | Ok_degraded n -> Printf.sprintf "ok (degraded x%d)" n
  | Contained e -> "contained: " ^ Guard.Error.to_string e
  | Verify_failed why -> "VERIFY-FAIL: " ^ why
  | Uncontained why -> "UNCONTAINED: " ^ why

let pp_matrix ppf cells =
  List.iter
    (fun c ->
      Format.fprintf ppf "%-14s %-12s fired=%d  %s@."
        c.site.Guard.Inject.name c.bench c.fired (outcome_line c.outcome))
    cells

let all_contained =
  List.for_all (fun c ->
      match c.outcome with
      | Ok_clean | Ok_degraded _ | Contained _ -> true
      | Verify_failed _ | Uncontained _ -> false)

let any_verify_failed =
  List.exists (fun c ->
      match c.outcome with Verify_failed _ -> true | _ -> false)

let sites_fired cells =
  List.sort_uniq compare
    (List.filter_map
       (fun c -> if c.fired > 0 then Some c.site.Guard.Inject.name else None)
       cells)
