(** Chaos matrix: sweep every registered fault-injection site across a
    set of benchmarks and check the "valid output or structured error"
    contract.

    For each (site, benchmark) cell, the site is armed at a seed-derived
    hit and a full pipeline workload runs: ladder-supervised compiles
    (SR and a QS strategy) with static verification, the applicability
    test, shot simulation, a QASM print/parse roundtrip, a corpus
    write, and — when installed via {!set_wire_probe} — a loopback wire
    exchange covering the serve transport's wire.* sites. Everything
    runs single-domain, so the armed fault lands at a deterministic
    hit — the same seed produces a byte-identical matrix on every
    run.

    Cell outcomes split containment from real failures: degraded
    compiles and structured errors are the resilience layer WORKING;
    [Verify_failed] (the validator refuted an artifact) and
    [Uncontained] (a raw exception escaped the guards) are bugs. *)

type outcome =
  | Ok_clean  (** workload succeeded; no rung failed *)
  | Ok_degraded of int
      (** workload succeeded after this many ladder demotions *)
  | Contained of Guard.Error.t
      (** the workload failed, but with one structured error *)
  | Verify_failed of string
      (** the validator refuted a compiled artifact — a real bug *)
  | Uncontained of string
      (** a raw exception escaped the guard layer — a coverage gap *)

type cell = {
  site : Guard.Inject.site;
  bench : string;
  fired : int;  (** 1 when the armed fault actually triggered, else 0 *)
  outcome : outcome;
}

(** Install the workload step that exercises the serve transport's
    wire.* injection sites (fuzz cannot depend on serve itself — the
    benchmark registry sits between them). [Wirefuzz.install_chaos_probe]
    is the canonical caller; without it, wire.* cells report
    [fired = 0]. *)
val set_wire_probe : (unit -> unit) -> unit

(** [run ?seed ?deadline_ms benches] — the full matrix,
    {!Guard.Inject.sites} x [benches], in catalog-then-bench order.
    [deadline_ms] additionally arms a cooperative wall-clock budget per
    cell. *)
val run :
  ?seed:int ->
  ?deadline_ms:int ->
  (string * Caqr.Pipeline.input) list ->
  cell list

(** One line per cell; stable across runs for a fixed seed. *)
val pp_matrix : Format.formatter -> cell list -> unit

(** No [Verify_failed] and no [Uncontained] cell. *)
val all_contained : cell list -> bool

val any_verify_failed : cell list -> bool

(** Names of the sites that actually fired somewhere in the matrix,
    sorted. *)
val sites_fired : cell list -> string list
