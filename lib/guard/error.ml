type t = {
  stage : string;
  site : string;
  detail : string;
  recoverable : bool;
}

exception Guard_error of t
exception Budget_exceeded of t

let v ?(recoverable = false) ~stage ~site detail =
  { stage; site; detail; recoverable }

let fail ?recoverable ~stage ~site fmt =
  Printf.ksprintf
    (fun detail -> raise (Guard_error (v ?recoverable ~stage ~site detail)))
    fmt

let to_string e =
  Printf.sprintf "[%s/%s] %s%s" e.stage e.site e.detail
    (if e.recoverable then " (recoverable)" else "")

let of_exn ~stage ?(site = "exn") = function
  | Guard_error e | Budget_exceeded e -> e
  | Failure msg -> v ~stage ~site msg
  | Invalid_argument msg -> v ~stage ~site ("invalid argument: " ^ msg)
  | Stack_overflow -> v ~stage ~site "stack overflow"
  | Out_of_memory -> v ~stage ~site "out of memory"
  | e -> v ~stage ~site (Printexc.to_string e)

(* Deliberate catch-all (minus the control-flow exceptions below): the
   degradation ladder and the CLI boundary rely on [protect] for
   totality — anything a stage throws must become a diagnostic, not a
   crash. *)
let reraise = function
  | (Sys.Break | Stdlib.Exit | Assert_failure _) as e -> raise e
  | _ -> ()

let protect_bt ~stage ?site f =
  match f () with
  | x -> Ok x
  | exception e ->
    reraise e;
    let bt = Printexc.get_backtrace () in
    Error (of_exn ~stage ?site e, bt)

let protect ~stage ?site f =
  Result.map_error fst (protect_bt ~stage ?site f)
