(* A lock-free admission gate: one atomic in-flight counter, bounded by
   a fixed limit. Admission is a CAS loop so two domains racing for the
   last slot cannot both win; rejection never blocks — load shedding is
   the caller's structured-error path, not a queue. *)

type t = {
  limit : int;
  inflight : int Atomic.t;
  reject_metric : string option;
}

let create ?reject_metric ~limit () =
  { limit; inflight = Atomic.make 0; reject_metric }

let limit t = t.limit
let inflight t = Atomic.get t.inflight
let unlimited t = t.limit <= 0

let reject t =
  (match t.reject_metric with
  | Some m -> Obs.Metrics.incr m
  | None -> ());
  false

let rec try_enter t =
  if unlimited t then begin
    (* No bound, but the occupancy gauge stays meaningful. *)
    Atomic.incr t.inflight;
    true
  end
  else
    let n = Atomic.get t.inflight in
    if n >= t.limit then reject t
    else if Atomic.compare_and_set t.inflight n (n + 1) then true
    else try_enter t

let leave t =
  let n = Atomic.fetch_and_add t.inflight (-1) in
  (* A leave without a matching enter is a caller bug; restoring the
     counter keeps the gate usable rather than wedged shut. *)
  if n <= 0 then Atomic.incr t.inflight

let with_slot t f =
  if try_enter t then
    Fun.protect ~finally:(fun () -> leave t) (fun () -> Some (f ()))
  else None
