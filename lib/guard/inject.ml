(* Deterministic, seed-driven fault injection.

   Each site is a named point in a library where a real-world failure
   could strike (an allocation, a write, a heuristic step). Disarmed —
   the default state — a [hit] is one atomic load plus a string compare, so
   the sites stay compiled into production paths. Armed, the k-th hit of
   the armed site fails (or delays) exactly once; every later hit passes,
   which is what makes bounded retry of transient sites deterministic:
   the retry re-executes the same work and the fault is already spent. *)

type mode = Fail | Delay_ms of int

type site = {
  name : string;
  lib : string;
  description : string;
  transient : bool;
}

(* The static catalog IS the source of truth: `caqr_cli chaos` sweeps
   it, so a new injection point must be declared here to exist. *)
let sites =
  [
    { name = "match.augment"; lib = "galg";
      description = "blossom matching: augmenting-path search"; transient = false };
    { name = "color.dsatur"; lib = "galg";
      description = "DSATUR coloring: vertex selection"; transient = false };
    { name = "parse.stmt"; lib = "quantum";
      description = "QASM parser: per-statement dispatch"; transient = false };
    { name = "route.swap"; lib = "transpiler";
      description = "router: SWAP insertion"; transient = false };
    { name = "qs.search"; lib = "core";
      description = "QS-CaQR: DFS node expansion"; transient = false };
    { name = "sr.place"; lib = "core";
      description = "SR-CaQR: logical-to-physical placement"; transient = false };
    { name = "sim.shot"; lib = "sim";
      description = "simulator: per-shot execution"; transient = true };
    { name = "pool.task"; lib = "exec";
      description = "execution pool: task dispatch"; transient = true };
    { name = "corpus.write"; lib = "fuzz";
      description = "fuzz corpus: counterexample write"; transient = false };
    { name = "wire.read"; lib = "serve";
      description = "transport: socket read"; transient = true };
    { name = "wire.frame"; lib = "serve";
      description = "transport: frame decode"; transient = false };
    { name = "wire.write"; lib = "serve";
      description = "transport: socket write"; transient = true };
  ]

type arming = {
  site : site;
  at_hit : int;
  mode : mode;
  hits : int Atomic.t;
  fired : int Atomic.t;
}

let state : arming option Atomic.t = Atomic.make None

let find name = List.find_opt (fun s -> s.name = name) sites

let arm ?(at_hit = 1) ?(mode = Fail) name =
  match find name with
  | None -> invalid_arg (Printf.sprintf "Guard.Inject.arm: unknown site %S" name)
  | Some site ->
    Atomic.set state
      (Some
         {
           site;
           at_hit = max 1 at_hit;
           mode;
           hits = Atomic.make 0;
           fired = Atomic.make 0;
         })

let disarm () = Atomic.set state None

let armed () =
  Option.map (fun a -> a.site.name) (Atomic.get state)

let fired () =
  match Atomic.get state with None -> 0 | Some a -> Atomic.get a.fired

let hit name =
  match Atomic.get state with
  | None -> ()
  | Some a ->
    if String.equal a.site.name name then begin
      let n = 1 + Atomic.fetch_and_add a.hits 1 in
      if n = a.at_hit then begin
        ignore (Atomic.fetch_and_add a.fired 1);
        Obs.Metrics.incr "guard.inject.fired";
        match a.mode with
        | Delay_ms ms -> Unix.sleepf (float_of_int (max 0 ms) /. 1000.)
        | Fail ->
          raise
            (Error.Guard_error
               (Error.v ~recoverable:a.site.transient
                  ~stage:("inject." ^ a.site.lib) ~site:name
                  (Printf.sprintf "injected fault (hit %d)" n)))
      end
    end
