(** Deterministic fault-injection registry.

    Named sites mark failure-prone points across the codebase; the
    static {!sites} catalog is what `caqr_cli chaos` sweeps. At most one
    site is armed at a time. Arming is seed-driven by the caller: the
    chaos harness derives [at_hit] from its seed, so a run with the same
    seed fires the same fault at the same point — and repeated runs are
    byte-identical.

    A fault fires exactly once (at the [at_hit]-th hit since arming);
    subsequent hits pass. That single-shot semantics is what makes the
    execution pool's bounded retry of transient sites deterministic: the
    retried task re-executes the same work and the fault is spent.

    Disarmed, {!hit} costs one atomic load — the sites stay compiled
    into production paths. Every fired fault bumps the
    ["guard.inject.fired"] counter in {!Obs.Metrics}. *)

type mode =
  | Fail  (** raise {!Error.Guard_error} at the armed hit *)
  | Delay_ms of int  (** sleep instead — exercises deadline trips *)

type site = {
  name : string;  (** e.g. ["route.swap"] *)
  lib : string;  (** owning library, e.g. ["transpiler"] *)
  description : string;
  transient : bool;
      (** injected errors are marked recoverable; {!Exec.Pool} retries *)
}

(** The full registered-site catalog, in a fixed order. *)
val sites : site list

(** [arm ?at_hit ?mode name] arms [name] to fire at its [at_hit]-th hit
    (default 1, clamped to >= 1). Replaces any previous arming and
    resets the hit counter. Raises [Invalid_argument] on unknown
    names. *)
val arm : ?at_hit:int -> ?mode:mode -> string -> unit

val disarm : unit -> unit

(** Name of the armed site, if any. *)
val armed : unit -> string option

(** How many times the armed site has fired since {!arm} (0 or 1). *)
val fired : unit -> int

(** [hit name] — checkpoint at site [name]: no-op unless [name] is the
    armed site reaching its trigger hit. *)
val hit : string -> unit
