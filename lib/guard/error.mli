(** Structured errors for the compile pipeline.

    Every recoverable failure inside a guarded stage is described by one
    {!t}: which stage raised it, at which named site, a human-readable
    detail, and whether a supervisor may retry ([recoverable]). Stages
    raise {!Guard_error} (or {!Budget_exceeded}, see {!Budget}); stage
    boundaries convert any legacy exception with {!protect}. *)

type t = {
  stage : string;  (** owning pass, e.g. ["core.sr"], ["exec.pool"] *)
  site : string;  (** site name, e.g. ["route.swap"] — see {!Inject} *)
  detail : string;
  recoverable : bool;
      (** a bounded deterministic retry may succeed (transient faults) *)
}

exception Guard_error of t

(** Raised by {!Budget} checkpoints; a distinct constructor so callers
    can tell resource exhaustion from stage failure. *)
exception Budget_exceeded of t

val v : ?recoverable:bool -> stage:string -> site:string -> string -> t

(** [fail ~stage ~site fmt ...] raises {!Guard_error} with a formatted
    detail. *)
val fail :
  ?recoverable:bool ->
  stage:string ->
  site:string ->
  ('a, unit, string, 'b) format4 ->
  'a

val to_string : t -> string

(** Convert any exception into a structured error. {!Guard_error} and
    {!Budget_exceeded} pass through unchanged; [Failure],
    [Invalid_argument], [Stack_overflow] and [Out_of_memory] keep their
    message under the given stage/site. *)
val of_exn : stage:string -> ?site:string -> exn -> t

(** [protect ~stage f] runs [f ()] and converts any raised exception to
    [Error] via {!of_exn}. Control-flow exceptions ([Sys.Break], [Exit],
    [Assert_failure]) are re-raised, never converted. *)
val protect : stage:string -> ?site:string -> (unit -> 'a) -> ('a, t) result

(** Like {!protect} but also captures the raw backtrace (empty when
    backtrace recording is off). *)
val protect_bt :
  stage:string -> ?site:string -> (unit -> 'a) -> ('a, t * string) result
