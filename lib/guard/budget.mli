(** Cooperative wall-clock deadlines and step budgets.

    A budget never preempts: hot loops (blossom augmenting-path search,
    DSATUR, router SWAP search, QS DFS, per-shot simulation) call a
    checkpoint each iteration, and the checkpoint raises a typed
    {!Error.Budget_exceeded} instead of letting the loop hang or
    diverge. Every trip bumps the ["guard.budget.trips"] counter in
    {!Obs.Metrics}.

    Two deadline mechanisms coexist and a checkpoint honors whichever is
    tighter:

    - the legacy {b process-global} deadline ({!with_deadline}), one
      atomic visible to every domain — right for a whole-process bound
      such as the CLI's [--timeout-ms];
    - {b scoped} budgets ({!t}, {!scoped}), which are domain-local: two
      requests compiled on different domains each carry their own
      deadline without clobbering one another. This is what lets a
      long-lived server give every request its own budget.
      {!Exec.Pool} captures the caller's scope ({!current}) and installs
      it in each worker domain, so fan-out inherits the request's
      deadline.

    When nothing is armed a checkpoint costs one domain-local load, one
    atomic load and a float compare — no clock read. *)

(** An immutable budget value: an absolute wall-clock deadline that can
    be created in one domain and installed ({!scoped}) in another. *)
type t

(** No deadline at all. [scoped unlimited f] leaves the current scope
    unchanged. *)
val unlimited : t

(** [make ?ms ()] is a deadline [ms] milliseconds from now
    ([None] = {!unlimited}). *)
val make : ?ms:int -> unit -> t

(** [scoped b f] runs [f] with [b] installed as the current domain's
    scoped deadline. Nested scopes tighten, never extend; the previous
    scope is restored on exit, exceptions included. *)
val scoped : t -> (unit -> 'a) -> 'a

(** The deadline in effect for this domain: the tighter of the scoped
    and the process-global deadline. Capture it before handing work to
    another domain, then install it there with {!scoped}. *)
val current : unit -> t

(** [with_deadline ?ms f] runs [f] under a {b process-global} wall-clock
    deadline of [ms] milliseconds from now ([None] = no change). Nested
    deadlines tighten, never extend; the previous deadline is restored
    on exit, exceptions included. *)
val with_deadline : ?ms:int -> (unit -> 'a) -> 'a

(** Is any deadline (scoped or global) currently armed? *)
val has_deadline : unit -> bool

(** Seconds left on the tightest armed deadline (clamped at 0), or
    [None] when nothing is armed. *)
val remaining_s : unit -> float option

(** [fraction f] is a budget expiring after share [f] (clamped to
    [0..1]) of the time left on the current deadline — {!unlimited} when
    nothing is armed. This is how a pipeline phase reserves headroom for
    the phases after it: an anytime search scoped to [fraction 0.6]
    leaves 40% of the request's remaining time for routing and
    verification. *)
val fraction : float -> t

(** [checkpoint ~stage ~site] raises {!Error.Budget_exceeded} when the
    tightest armed deadline has passed; no-op otherwise. *)
val checkpoint : stage:string -> site:string -> unit

(** [ticker ~stage ~site ?limit ()] returns a tick function for one
    loop: each call counts a step, raises {!Error.Budget_exceeded} past
    [limit] steps (when given), and polls the deadline. *)
val ticker : stage:string -> site:string -> ?limit:int -> unit -> unit -> unit
