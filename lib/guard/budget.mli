(** Cooperative wall-clock deadlines and step budgets.

    A budget never preempts: hot loops (blossom augmenting-path search,
    DSATUR, router SWAP search, QS DFS, per-shot simulation) call a
    checkpoint each iteration, and the checkpoint raises a typed
    {!Error.Budget_exceeded} instead of letting the loop hang or
    diverge. Every trip bumps the ["guard.budget.trips"] counter in
    {!Obs.Metrics}.

    The deadline is process-global (one atomic), so it is visible to
    every worker domain the execution pool spawns. When no deadline is
    armed a checkpoint costs one atomic load — no clock read. *)

(** [with_deadline ?ms f] runs [f] under a wall-clock deadline of [ms]
    milliseconds from now ([None] = no change). Nested deadlines
    tighten, never extend; the previous deadline is restored on exit,
    exceptions included. *)
val with_deadline : ?ms:int -> (unit -> 'a) -> 'a

(** Is any deadline currently armed? *)
val has_deadline : unit -> bool

(** [checkpoint ~stage ~site] raises {!Error.Budget_exceeded} when the
    armed deadline has passed; no-op otherwise. *)
val checkpoint : stage:string -> site:string -> unit

(** [ticker ~stage ~site ?limit ()] returns a tick function for one
    loop: each call counts a step, raises {!Error.Budget_exceeded} past
    [limit] steps (when given), and polls the deadline. *)
val ticker : stage:string -> site:string -> ?limit:int -> unit -> unit -> unit
