(* Cooperative budgets. Two deadline carriers, and every checkpoint
   honors the tighter one:

   - [deadline]: one process-global atomic absolute time. A timeout set
     around a whole run bounds work in every domain, including what the
     execution pool fanned out.
   - [scope]: a domain-local absolute time (Domain.DLS). A long-lived
     server gives each request its own deadline here, so requests
     compiled on different domains never clobber each other the way a
     shared atomic would. [Exec.Pool] captures the caller's scope with
     [current] and re-installs it in each worker domain.

   [infinity] means disarmed, which keeps the disarmed checkpoint down
   to one DLS load, one atomic load and a float compare — no clock
   syscall. *)

type t = float (* absolute Unix time; infinity = no deadline *)

let deadline = Atomic.make infinity
let scope = Domain.DLS.new_key (fun () -> infinity)

let unlimited = infinity

let make ?ms () =
  match ms with
  | None -> infinity
  | Some ms -> Unix.gettimeofday () +. (float_of_int (max 0 ms) /. 1000.)

let scoped b f =
  let saved = Domain.DLS.get scope in
  (* Nested scopes tighten, never extend. *)
  Domain.DLS.set scope (Float.min saved b);
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope saved) f

let current () = Float.min (Domain.DLS.get scope) (Atomic.get deadline)

let has_deadline () = current () < infinity

let remaining_s () =
  let d = current () in
  if d = infinity then None
  else Some (Float.max 0. (d -. Unix.gettimeofday ()))

let fraction f =
  match remaining_s () with
  | None -> infinity
  | Some rem ->
    Unix.gettimeofday () +. (Float.max 0. (Float.min 1. f) *. rem)

let with_deadline ?ms f =
  match ms with
  | None -> f ()
  | Some ms ->
    let saved = Atomic.get deadline in
    let mine = make ~ms () in
    (* Nested deadlines tighten, never extend. *)
    Atomic.set deadline (Float.min saved mine);
    Fun.protect ~finally:(fun () -> Atomic.set deadline saved) f

let trip ~stage ~site detail =
  Obs.Metrics.incr "guard.budget.trips";
  raise (Error.Budget_exceeded (Error.v ~recoverable:true ~stage ~site detail))

let checkpoint ~stage ~site =
  let d = current () in
  if d < infinity && Unix.gettimeofday () > d then
    trip ~stage ~site "wall-clock deadline exceeded"

let ticker ~stage ~site ?limit () =
  let steps = ref 0 in
  fun () ->
    incr steps;
    (match limit with
     | Some l when !steps > l ->
       trip ~stage ~site
         (Printf.sprintf "step budget exceeded (limit %d)" l)
     | _ -> ());
    checkpoint ~stage ~site
