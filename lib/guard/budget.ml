(* Cooperative budgets. The deadline is one process-global atomic
   absolute time: hot loops in any domain poll it at their checkpoints,
   so a timeout set around [Pipeline.compile] also bounds work the
   execution pool fanned out. [infinity] means disarmed, which keeps the
   disarmed checkpoint down to one atomic load and a float compare — no
   clock syscall. *)

let deadline = Atomic.make infinity

let has_deadline () = Atomic.get deadline < infinity

let with_deadline ?ms f =
  match ms with
  | None -> f ()
  | Some ms ->
    let saved = Atomic.get deadline in
    let mine = Unix.gettimeofday () +. (float_of_int (max 0 ms) /. 1000.) in
    (* Nested deadlines tighten, never extend. *)
    Atomic.set deadline (Float.min saved mine);
    Fun.protect ~finally:(fun () -> Atomic.set deadline saved) f

let trip ~stage ~site detail =
  Obs.Metrics.incr "guard.budget.trips";
  raise (Error.Budget_exceeded (Error.v ~recoverable:true ~stage ~site detail))

let checkpoint ~stage ~site =
  let d = Atomic.get deadline in
  if d < infinity && Unix.gettimeofday () > d then
    trip ~stage ~site "wall-clock deadline exceeded"

let ticker ~stage ~site ?limit () =
  let steps = ref 0 in
  fun () ->
    incr steps;
    (match limit with
     | Some l when !steps > l ->
       trip ~stage ~site
         (Printf.sprintf "step budget exceeded (limit %d)" l)
     | _ -> ());
    checkpoint ~stage ~site
