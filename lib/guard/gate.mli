(** Bounded-concurrency admission gate — the load half of admission
    control.

    A gate tracks how many callers are currently inside ({!inflight})
    against a fixed {!limit}. {!try_enter} never blocks: past the limit
    it answers [false] immediately (bumping the gate's rejection
    counter), so an overloaded service sheds load with a structured
    error instead of queueing unboundedly. The compilation service puts
    one gate in front of its work verbs ([max_inflight]) and reports
    rejections as ["serve.rejected.overload"].

    All operations are domain-safe and lock-free (one atomic counter);
    admission is a compare-and-set loop, so two domains racing for the
    last slot cannot both win. *)

type t

(** [create ?reject_metric ~limit ()] — a gate admitting at most [limit]
    concurrent holders. [limit <= 0] means unbounded: {!try_enter}
    always succeeds but occupancy is still counted. Each rejection bumps
    the [reject_metric] counter in {!Obs.Metrics} when given. *)
val create : ?reject_metric:string -> limit:int -> unit -> t

(** The configured limit ([<= 0] = unbounded). *)
val limit : t -> int

(** Current holders. *)
val inflight : t -> int

(** [try_enter t] takes a slot, or answers [false] (never blocks) when
    the gate is full. Every successful enter must be paired with exactly
    one {!leave}; prefer {!with_slot} where control flow allows. *)
val try_enter : t -> bool

(** Release a slot taken by {!try_enter}. *)
val leave : t -> unit

(** [with_slot t f] runs [f] inside a slot ([Some (f ())], released on
    exit, exceptions included), or [None] when the gate is full. *)
val with_slot : t -> (unit -> 'a) -> 'a option
