(** Content-addressed compilation cache: an in-memory LRU tier over an
    optional byte-budgeted on-disk tier.

    Keys are {!key} digests of (engine version, op, canonical circuit
    digest, options fingerprint) — see {!Quantum.Circuit.digest} and
    {!Caqr.Pipeline.options_fingerprint}. Folding
    {!Caqr.Version.engine} into the key means entries written by an
    older build are never served: their keys simply no longer match.

    Values are opaque strings (the service stores the serialized
    [result] object), so a hit replays a response byte-identically.

    The disk tier reuses the crash-safe discipline of [Fuzz.Corpus]:
    every entry lands via write-to-temp + atomic [Sys.rename] in the
    cache directory, so an interrupted write leaves at worst an ignored
    [.*.tmp] file, never a truncated entry. Lookups only ever open the
    final name. When a [disk_budget_bytes] is set, an in-memory index
    (seeded from an mtime-ordered directory scan at {!create}, so LRU
    order survives restarts) tracks per-entry sizes, and stores evict
    least-recently-used entries — file removed first, index second, so
    a crash in between can only overcount, never leak — until usage
    fits the budget. Values larger than the whole budget bypass the
    tier entirely.

    All operations are domain-safe (one mutex), so batched requests may
    probe and fill the cache from pool workers. Counters land in
    {!Obs.Metrics}: ["serve.cache.hit"], ["serve.cache.miss"],
    ["serve.cache.disk.hit"], ["serve.cache.evict"],
    ["serve.cache.disk.evict"], ["serve.cache.disk.oversized"]; gauges
    ["serve.cache.disk.bytes"] and ["serve.cache.disk.entries"] track
    current disk usage. *)

type t

(** [create ?mem_capacity ?dir ?disk_budget_bytes ()] — an LRU of at
    most [mem_capacity] entries (default 256; 0 disables the memory
    tier) over an optional disk tier rooted at [dir] (created on first
    store). [disk_budget_bytes] caps the disk tier's total payload
    bytes (omitted = unbounded, the pre-budget behaviour; 0 keeps at
    most the entry being written, i.e. effectively disables the tier). *)
val create : ?mem_capacity:int -> ?dir:string -> ?disk_budget_bytes:int -> unit -> t

(** [key ~op ~digest ~fingerprint] — the content address, an MD5 hex of
    the four identity components (engine version included). *)
val key : op:string -> digest:string -> fingerprint:string -> string

(** Memory tier first (refreshing recency), then disk (promoting the
    entry into memory and refreshing its disk recency). *)
val find : t -> string -> string option

(** Insert into both tiers, evicting the least-recently-used in-memory
    entry past capacity and least-recently-used disk entries past the
    byte budget. Storing an existing key overwrites. *)
val store : t -> string -> string -> unit

(** Persist the disk tier's exact LRU order to an index file inside the
    cache directory (atomically; no-op without a disk tier). The next
    {!create} on the same directory consumes — and deletes — the index,
    so recency earned by {e reads} survives a clean restart; without it
    (a crash) the mtime scan sees only writes. Called by the server on
    every clean shutdown; bumps ["serve.cache.disk.flush"]. *)
val flush : t -> unit

(** Lifetime counters of this cache value, for the [stats] verb:
    [hits], [misses], [disk_hits] (subset of hits), [evictions], the
    current [mem_entries], and the disk tier's [disk_entries],
    [disk_bytes] and [disk_evictions]. *)
val stats : t -> (string * int) list
