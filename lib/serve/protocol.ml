(* Protocol history: 1 = PR 6 (newline JSON over a Unix socket, no
   version field); 2 = this PR (responses carry "proto", servers reject
   requests claiming a newer version). Absence of "proto" in a request
   means 1, so v1 clients keep working unchanged. *)
let version = 2

type op = Compile | Verify | Simulate | Stats | Health | Shutdown

let op_name = function
  | Compile -> "compile"
  | Verify -> "verify"
  | Simulate -> "simulate"
  | Stats -> "stats"
  | Health -> "health"
  | Shutdown -> "shutdown"

let op_of_string = function
  | "compile" -> Ok Compile
  | "verify" -> Ok Verify
  | "simulate" -> Ok Simulate
  | "stats" -> Ok Stats
  | "health" -> Ok Health
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown op %S" other)

type request = {
  op : op;
  proto : int;
  id : Json.t;
  bench : string option;
  qasm3 : string option;
  strategy : Caqr.Pipeline.strategy;
  deadline_ms : int option;
  emit_qasm : bool;
  level : Verify.level;
  shots : int;
  seed : int;
  fallback : bool;
  no_cache : bool;
}

(* Same grammar as the CLI's --strategy flag — both delegate to the one
   name map in Pipeline, so an engine wired there is reachable here. *)
let strategy_of_string = Caqr.Pipeline.strategy_of_name

let ( let* ) = Result.bind

(* A present-but-wrong-typed field is a hard error; an absent field
   falls back to its default. Unknown fields pass silently so older
   servers tolerate newer clients. *)
let typed_field name extract default j =
  match Json.member name j with
  | None -> Ok default
  | Some v ->
    (match extract v with
     | Some x -> Ok x
     | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let int_of = function Json.Int n -> Some n | _ -> None
let bool_of = function Json.Bool b -> Some b | _ -> None

let opt_string name j =
  match Json.member name j with
  | None -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S has the wrong type" name)

let of_line line =
  let* j =
    match Json.parse line with
    | Ok (Json.Obj _ as j) -> Ok j
    | Ok _ -> Error "request must be a JSON object"
    | Error msg -> Error ("bad JSON: " ^ msg)
  in
  let* op_s =
    match Json.string_field "op" j with
    | Some s -> Ok s
    | None -> Error "missing \"op\" field"
  in
  let* op = op_of_string op_s in
  let* proto =
    match Json.member "proto" j with
    | None -> Ok 1
    | Some (Json.Int n) when n >= 1 -> Ok n
    | Some _ -> Error "field \"proto\" must be a positive integer"
  in
  let id = Option.value ~default:Json.Null (Json.member "id" j) in
  let* bench = opt_string "bench" j in
  let* qasm3 = opt_string "qasm3" j in
  let* strategy =
    match Json.member "strategy" j with
    | None -> Ok Caqr.Pipeline.Sr
    | Some (Json.String s) -> strategy_of_string s
    | Some (Json.Int n) -> Ok (Caqr.Pipeline.Qs_target n)
    | Some _ -> Error "field \"strategy\" has the wrong type"
  in
  let* deadline_ms =
    match Json.member "deadline_ms" j with
    | None -> Ok None
    | Some (Json.Int n) when n >= 0 -> Ok (Some n)
    | Some _ -> Error "field \"deadline_ms\" must be a non-negative integer"
  in
  let* emit_qasm = typed_field "qasm" bool_of false j in
  let* level =
    match Json.member "level" j with
    | None -> Ok Verify.Auto
    | Some (Json.String s) ->
      (match Verify.level_of_string s with
       | Ok l -> Ok l
       | Error msg -> Error msg)
    | Some _ -> Error "field \"level\" has the wrong type"
  in
  let* shots = typed_field "shots" int_of 1024 j in
  let* shots =
    if shots > 0 then Ok shots else Error "field \"shots\" must be positive"
  in
  let* seed = typed_field "seed" int_of 1 j in
  let* fallback = typed_field "fallback" bool_of false j in
  let* no_cache = typed_field "no_cache" bool_of false j in
  Ok
    {
      op;
      proto;
      id;
      bench;
      qasm3;
      strategy;
      deadline_ms;
      emit_qasm;
      level;
      shots;
      seed;
      fallback;
      no_cache;
    }

let error_body (e : Guard.Error.t) =
  Json.Obj
    [
      ("stage", Json.String e.Guard.Error.stage);
      ("site", Json.String e.Guard.Error.site);
      ("detail", Json.String e.Guard.Error.detail);
      ("recoverable", Json.Bool e.Guard.Error.recoverable);
    ]

(* "proto" sits between "id" and the payload fields so the "result"
   object — the byte-identical cache unit — is untouched by version
   bumps. *)
let response ~id fields =
  Json.to_string
    (Json.Obj (("id", id) :: ("proto", Json.Int version) :: fields))

let error_response ~id e =
  response ~id [ ("ok", Json.Bool false); ("error", error_body e) ]
