(** The service wire protocol: one JSON object per message, one
    response message per request, over either {!Transport} (newline
    framing on Unix sockets, length-prefixed on TCP).

    Request shape (fields beyond [op] are optional unless noted):

    {v
    {"op":"compile"|"verify"|"simulate"|"stats"|"health"|"shutdown",
     "proto": <int>,                   -- protocol version (default 1)
     "id": <any JSON, echoed back>,
     "bench": "<benchmark name>",      -- XOR bench registry, or
     "qasm3": "<OpenQASM 3 source>",   -- an inline circuit
     "strategy": "sr"|"baseline"|"qs-max-reuse"|"qs-min-depth"
                |"qs-best-fidelity"|<int qubit budget>,
     "deadline_ms": <int>,             -- per-request budget
     "qasm": true,                     -- include compiled QASM-3
     "level": "<verify level>",        -- verify only (default auto)
     "shots": <int>, "seed": <int>,    -- simulate only
     "fallback": true,                 -- degradation ladder
     "no_cache": true}                 -- bypass the cache
    v}

    Responses are [{"id":..,"proto":2,"ok":true,"op":..,
    "cache":"hit"|"miss"|"none","result":{..}}] or [{"id":..,"proto":2,
    "ok":false,"error":{"stage":..,"site":..,"detail":..,
    "recoverable":..}}]. The [result] object is the cached unit: a
    cache hit replays it byte-identically — and version bumps only ever
    add top-level fields, never touch [result].

    Versioning: requests without ["proto"] are version 1 (every PR 6
    client); the server answers any [proto <= version] request and
    rejects newer ones with a structured error (stage
    ["serve.protocol"], site ["request.version"]) so a too-new client
    fails loudly instead of mis-parsing. *)

(** The protocol version this build speaks (2). *)
val version : int

type op = Compile | Verify | Simulate | Stats | Health | Shutdown

val op_name : op -> string

type request = {
  op : op;
  proto : int;  (** claimed protocol version; 1 when absent *)
  id : Json.t;  (** echoed back verbatim; [Null] when absent *)
  bench : string option;
  qasm3 : string option;
  strategy : Caqr.Pipeline.strategy;  (** default [Sr] *)
  deadline_ms : int option;
  emit_qasm : bool;
  level : Verify.level;  (** default [Auto] *)
  shots : int;  (** default 1024 *)
  seed : int;  (** default 1 *)
  fallback : bool;
  no_cache : bool;
}

(** Parses ["baseline" | "qs-max-reuse" | "qs-min-depth" |
    "qs-best-fidelity" | "sr" | "<int>"] — the CLI's strategy
    grammar. *)
val strategy_of_string :
  string -> (Caqr.Pipeline.strategy, string) result

(** [of_line line] parses one request line. Unknown [op]s, malformed
    JSON and wrong-typed fields are reported with the offending token;
    unknown fields are ignored (forward compatibility). *)
val of_line : string -> (request, string) result

(** [error_body e] is the [error] object of a failure response. *)
val error_body : Guard.Error.t -> Json.t

(** [response ~id fields] / [error_response ~id e] assemble one response
    line (no trailing newline). *)
val response : id:Json.t -> (string * Json.t) list -> string

val error_response : id:Json.t -> Guard.Error.t -> string
