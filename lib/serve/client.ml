let call ~addr lines =
  let n = List.length lines in
  if n = 0 then []
  else begin
    let conn = Transport.connect addr in
    Fun.protect
      ~finally:(fun () -> Transport.close conn)
      (fun () ->
        (* One send so the server sees the whole run as one pipelined
           batch. *)
        Transport.send conn lines;
        let rec collect acc k =
          if k = 0 then List.rev acc
          else
            match Transport.recv conn with
            | Some r -> collect (r :: acc) (k - 1)
            | None ->
              failwith
                (Printf.sprintf
                   "Serve.Client: connection closed after %d of %d responses"
                   (n - k) n)
        in
        collect [] n)
  end

let call_retry ~addr ?(attempts = 40) ?(delay_s = 0.05) lines =
  let rec go k =
    match call ~addr lines with
    | r -> r
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when k > 1 ->
      Unix.sleepf delay_s;
      go (k - 1)
  in
  go (max 1 attempts)
