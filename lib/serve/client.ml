let call ~socket lines =
  let n = List.length lines in
  if n = 0 then []
  else begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX socket);
        let payload = String.concat "\n" lines ^ "\n" in
        let len = String.length payload in
        let written = ref 0 in
        while !written < len do
          written :=
            !written + Unix.write_substring fd payload !written (len - !written)
        done;
        (* Read until n newline-terminated responses (or EOF, which is a
           protocol violation the caller should see). *)
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 65536 in
        let newlines () =
          let s = Buffer.contents buf in
          let c = ref 0 in
          String.iter (fun ch -> if ch = '\n' then incr c) s;
          !c
        in
        let rec fill () =
          if newlines () < n then
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              failwith
                (Printf.sprintf
                   "Serve.Client: connection closed after %d of %d responses"
                   (newlines ()) n)
            | k ->
              Buffer.add_subbytes buf chunk 0 k;
              fill ()
        in
        fill ();
        let all = String.split_on_char '\n' (Buffer.contents buf) in
        List.filteri (fun i _ -> i < n) all)
  end

let call_retry ~socket ?(attempts = 40) ?(delay_s = 0.05) lines =
  let rec go k =
    match call ~socket lines with
    | r -> r
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when k > 1 ->
      Unix.sleepf delay_s;
      go (k - 1)
  in
  go (max 1 attempts)
