let retriable = function
  (* ECONNREFUSED/ENOENT: daemon still starting (or socket not linked
     yet). ECONNRESET/EPIPE: the listener dropped us mid-handshake —
     e.g. a backlog overflow or a daemon restarting under an
     orchestrator. All four mean "nothing was processed", which is what
     makes the retry safe. *)
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EPIPE -> true
  | _ -> false

let converse ?timeout_s ~n conn lines =
  Fun.protect
    ~finally:(fun () -> Transport.close conn)
    (fun () ->
      (* One send so the server sees the whole run as one pipelined
         batch. *)
      Transport.send ?timeout_s conn lines;
      let rec collect acc k =
        if k = 0 then List.rev acc
        else
          match Transport.recv_batch ?timeout_s ~max:k conn with
          | Transport.Msgs rs ->
            collect (List.rev_append rs acc) (k - List.length rs)
          | Transport.Eof ->
            failwith
              (Printf.sprintf
                 "Serve.Client: connection closed after %d of %d responses"
                 (n - k) n)
          | Transport.Timeout ->
            failwith
              (Printf.sprintf
                 "Serve.Client: timed out after %d of %d responses" (n - k) n)
      in
      collect [] n)

let call ~addr ?timeout_s lines =
  if lines = [] then []
  else converse ?timeout_s ~n:(List.length lines) (Transport.connect addr) lines

(* Equal-jitter exponential backoff: attempt [k] sleeps between half
   and all of [min cap_s (base_s * 2^k)]. The lower bound keeps total
   patience predictable (a daemon that needs two seconds to start gets
   them); the jittered upper half decorrelates a thundering herd of
   clients all retrying the same restarted daemon. Pure and seeded, so
   a test (or [--seed]) gets the same schedule every run. *)
let backoff_delays ~seed ?(base_s = 0.02) ?(cap_s = 0.3) attempts =
  let rng = Exec.Prng.make seed in
  List.init (max 0 attempts) (fun k ->
      let ceiling = Float.min cap_s (base_s *. (2. ** float_of_int k)) in
      (ceiling /. 2.) +. Exec.Prng.float rng (ceiling /. 2.))

(* Retry covers ONLY the connect phase. Once any bytes have gone out,
   a failure must surface: re-sending a batch that may have been
   half-processed is not idempotent (anytime results are never cached,
   so a replay can legitimately answer differently). *)
let call_retry ~addr ?(attempts = 12) ?(seed = 1) ?base_s ?cap_s ?timeout_s
    lines =
  if lines = [] then []
  else begin
    let delays = backoff_delays ~seed ?base_s ?cap_s (max 1 attempts - 1) in
    let rec connect = function
      | [] -> Transport.connect addr
      | d :: rest ->
        (match Transport.connect addr with
        | conn -> conn
        | exception Unix.Unix_error (e, _, _) when retriable e ->
          Unix.sleepf d;
          connect rest)
    in
    converse ?timeout_s ~n:(List.length lines) (connect delays) lines
  end
