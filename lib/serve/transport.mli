(** The service transport abstraction: one address grammar, two wire
    framings, one listener/connection API shared by the daemon
    ({!Server}), the client ({!Client}) and the CLI's [--addr] flag.

    {b Addresses.} [unix:PATH] is a Unix-domain socket; [tcp:HOST:PORT]
    is a TCP socket ([PORT] 0 asks the kernel for an ephemeral port —
    read it back with {!bound_addr}). A bare string with no scheme is a
    Unix-socket path, which keeps every PR 6 [--socket] invocation
    valid.

    {b Framing} is implied by the transport. Unix sockets keep the
    original newline-delimited JSON framing, so version-1 clients keep
    working byte-for-byte. TCP frames every message with a 4-byte
    big-endian length prefix: self-describing, safe for payloads
    containing newlines, and capped at 64 MiB so a peer speaking the
    wrong protocol fails fast instead of buffering forever. The payload
    grammar (one JSON object per message, see {!Protocol}) is identical
    on both.

    Connections are blocking and single-owner (one domain reads/writes a
    [conn] at a time — the server gives each accepted connection to one
    handler domain). All entry points ignore [SIGPIPE] process-wide so a
    vanished peer surfaces as [EPIPE]/eof, never a killed daemon. *)

type addr = Unix of string | Tcp of string * int

(** Parse the [--addr] grammar: [unix:PATH], [tcp:HOST:PORT], or a bare
    Unix-socket path. Rejects unknown schemes, empty hosts/paths and
    non-numeric or out-of-range ports. *)
val addr_of_string : string -> (addr, string) result

(** [unix:PATH] / [tcp:HOST:PORT] — the canonical spelling; inverse of
    {!addr_of_string}. *)
val addr_to_string : addr -> string

type framing = Newline | Length_prefixed

(** [Unix _] speaks {!Newline}, [Tcp _] speaks {!Length_prefixed}. *)
val framing_of_addr : addr -> framing

(** Hard cap on one frame (64 MiB) — both send and receive. *)
val max_frame_bytes : int

(** [encode ~framing msg] is the exact byte string {!send} would put on
    the wire for [msg] — exposed so the wire fuzzer can build
    well-formed frames and then corrupt them surgically. Raises
    [Invalid_argument] like {!send}. *)
val encode : framing:framing -> string -> string

type listener
type conn

(** {1 Listening} *)

(** [bind addr] binds and listens. For TCP, [SO_REUSEADDR] is set. A
    Unix-socket path already bound is probed with a connect: a live
    server keeps it and [bind] raises [EADDRINUSE]; a stale file left
    by a crashed daemon (connect refused) is unlinked and the path
    reclaimed (counted in ["serve.socket.reclaimed"]). Raises
    [Unix.Unix_error] on failure (port in use, bad path, unresolvable
    host). *)
val bind : addr -> listener

(** The actual bound address — resolves [tcp:HOST:0] to the ephemeral
    port the kernel picked. *)
val bound_addr : listener -> addr

(** [accept ?timeout_s l] waits for one connection. With [timeout_s],
    returns [None] if nothing arrived in time — the daemon's stop-flag
    poll point. *)
val accept : ?timeout_s:float -> listener -> conn option

(** Close the socket; Unix listeners also remove their socket file.
    Idempotent — the draining shutdown path closes the listener early
    and the run loop's cleanup closes it again. *)
val close_listener : listener -> unit

(** {1 Connections} *)

(** [connect addr] — client side. Raises [Unix.Unix_error] when nobody
    is listening. *)
val connect : addr -> conn

(** [pair ?framing ()] is a connected in-process conn pair over a
    socketpair (default {!Newline} framing) — the full framing and
    read/write paths, including their fault-injection sites, without a
    listener. Used by the chaos harness and tests. *)
val pair : ?framing:framing -> unit -> conn * conn

(** [send ?timeout_s c msgs] frames and writes every message in one
    payload. A vanished peer marks the connection eof instead of
    raising. [timeout_s] bounds the {e whole} write: a peer that stops
    draining marks the connection eof and raises a structured,
    recoverable {!Guard.Error.Guard_error} (stage ["serve.transport"],
    site ["conn.write"]). Raises [Invalid_argument] if a message cannot
    be framed (embedded newline under newline framing;
    > {!max_frame_bytes}). *)
val send : ?timeout_s:float -> conn -> string list -> unit

(** [recv c] blocks for the next message; [None] on eof. *)
val recv : conn -> string option

(** Bytes received but not yet forming a complete frame — non-zero when
    the peer stalled mid-frame (half a length prefix, an unterminated
    line). *)
val pending_bytes : conn -> int

type recv_result =
  | Msgs of string list  (** at least one message, in arrival order *)
  | Eof
  | Timeout  (** only when [?timeout_s] was given *)

(** [recv_batch ?timeout_s ~max c] waits for one message, then drains —
    without blocking — whatever the peer already pipelined behind it,
    up to [max] messages. Surplus stays queued for the next call.
    [timeout_s] is an {e absolute} budget for the call, clocked from
    entry: a peer trickling bytes does not extend it, so a slow-loris
    cannot pin the caller. Raises {!Guard.Error.Guard_error} (stage
    ["serve.transport"], site ["wire.frame"]) on a frame that violates
    the framing (oversized length prefix). *)
val recv_batch : ?timeout_s:float -> max:int -> conn -> recv_result

val close : conn -> unit
