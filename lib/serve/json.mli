(** Minimal JSON for the service protocol — hand-rolled so the library
    stays dependency-free, like {!Obs.Metrics.to_json}.

    The emitter writes object fields in the order given (the protocol
    relies on that for byte-stable responses); the parser accepts any
    well-formed JSON text and preserves object field order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** emitted verbatim — lets a pre-serialized fragment (a cached
          result, a {!Obs.Metrics.to_json} snapshot) embed without a
          re-parse. Never produced by {!parse}; the caller must pass
          valid JSON. *)

(** [parse s] reads one JSON value and rejects trailing garbage. The
    error message carries the byte offset of the failure. *)
val parse : string -> (t, string) result

val to_string : t -> string

(** [member k j] is the value of field [k] when [j] is an object that
    has it. *)
val member : string -> t -> t option

(** Typed field accessors: [None] when the field is absent or the wrong
    shape. [int_field] accepts only [Int]; [string_field] only
    [String]; [bool_field] only [Bool]. *)
val string_field : string -> t -> string option

val int_field : string -> t -> int option
val bool_field : string -> t -> bool option
