type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

(* ---- emitter ---- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    (* JSON has no inf/nan literals; clamp to null rather than emit an
       unparseable token. %.12g round-trips every value we serve
       (timings, rates) and never prints a bare trailing dot. *)
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.12g" f)
    else Buffer.add_string b "null"
  | String s -> add_escaped b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_escaped b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'
  | Raw s -> Buffer.add_string b s

let to_string j =
  let b = Buffer.create 256 in
  emit b j;
  Buffer.contents b

(* ---- parser: plain recursive descent over the input string ---- *)

exception Bad of string * int (* message, byte offset *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let bad msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> bad (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else bad ("expected " ^ word)
  in
  (* UTF-8-encode one code point (the \uXXXX escapes, surrogate pairs
     already combined). *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then bad "truncated \\u escape";
    let v =
      try int_of_string ("0x" ^ String.sub s !pos 4)
      with Failure _ -> bad "bad \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then bad "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then bad "unterminated escape";
        let c = s.[!pos] in
        advance ();
        (match c with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           let cp = hex4 () in
           let cp =
             (* high surrogate: fold the mandatory low half in *)
             if cp >= 0xD800 && cp <= 0xDBFF then begin
               if
                 !pos + 2 <= n
                 && s.[!pos] = '\\'
                 && s.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let lo = hex4 () in
                 if lo < 0xDC00 || lo > 0xDFFF then bad "bad surrogate pair";
                 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
               end
               else bad "lone high surrogate"
             end
             else if cp >= 0xDC00 && cp <= 0xDFFF then bad "lone low surrogate"
             else cp
           in
           add_utf8 b cp
         | _ -> bad "bad escape");
        go ()
      | c when Char.code c < 0x20 -> bad "raw control character in string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then bad "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> bad "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> bad "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> bad (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then bad "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, off) ->
    Error (Printf.sprintf "%s at offset %d" msg off)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let string_field k j =
  match member k j with Some (String s) -> Some s | _ -> None

let int_field k j = match member k j with Some (Int n) -> Some n | _ -> None

let bool_field k j =
  match member k j with Some (Bool b) -> Some b | _ -> None
