(** Minimal blocking client for the service protocol, used by the CLI's
    [call] subcommand, the CI smoke step and the test suite. *)

(** [call ~socket lines] connects to the daemon, sends every request
    line in one write (so the server sees them as one pipelined batch),
    and returns one response line per request, in order. Raises
    [Unix.Unix_error] when the daemon is not listening and [Failure]
    when the connection closes before every response arrived. *)
val call : socket:string -> string list -> string list

(** [call_retry ~socket ?attempts ?delay_s lines] — {!call}, retrying
    refused connections (daemon still starting) with a fixed delay
    (defaults: 40 attempts, 0.05 s). *)
val call_retry :
  socket:string -> ?attempts:int -> ?delay_s:float -> string list -> string list
