(** Minimal blocking client for the service protocol, used by the CLI's
    [call] subcommand, the CI smoke step and the test suite. Framing
    follows the address: newline-delimited on Unix sockets,
    length-prefixed on TCP (see {!Transport}). *)

(** [call ~addr ?timeout_s lines] connects to the daemon, sends every
    request in one write (so the server sees them as one pipelined
    batch), and returns one response per request, in order. Raises
    [Unix.Unix_error] when the daemon is not listening and [Failure]
    when the connection closes — or, with [timeout_s], makes no
    progress for that long — before every response arrived. *)
val call : addr:Transport.addr -> ?timeout_s:float -> string list -> string list

(** [backoff_delays ~seed ?base_s ?cap_s n] is the deterministic
    equal-jitter exponential schedule {!call_retry} sleeps through:
    [n] delays, the k-th drawn uniformly from the upper half of
    [min cap_s (base_s * 2^k)] (defaults: 0.02 s base, 0.3 s cap). *)
val backoff_delays :
  seed:int -> ?base_s:float -> ?cap_s:float -> int -> float list

(** [call_retry ~addr ?attempts ?seed ?base_s ?cap_s ?timeout_s lines]
    — {!call}, retrying the {e connect phase only} (refused, reset, or
    missing-socket errors: the daemon is still starting or restarting)
    under {!backoff_delays}. A failure after any bytes were sent is
    never retried: a half-processed batch is not idempotent. Defaults:
    12 attempts, seed 1. *)
val call_retry :
  addr:Transport.addr ->
  ?attempts:int ->
  ?seed:int ->
  ?base_s:float ->
  ?cap_s:float ->
  ?timeout_s:float ->
  string list ->
  string list
