(** Minimal blocking client for the service protocol, used by the CLI's
    [call] subcommand, the CI smoke step and the test suite. Framing
    follows the address: newline-delimited on Unix sockets,
    length-prefixed on TCP (see {!Transport}). *)

(** [call ~addr lines] connects to the daemon, sends every request in
    one write (so the server sees them as one pipelined batch), and
    returns one response per request, in order. Raises
    [Unix.Unix_error] when the daemon is not listening and [Failure]
    when the connection closes before every response arrived. *)
val call : addr:Transport.addr -> string list -> string list

(** [call_retry ~addr ?attempts ?delay_s lines] — {!call}, retrying
    refused connections (daemon still starting) with a fixed delay
    (defaults: 40 attempts, 0.05 s). *)
val call_retry :
  addr:Transport.addr ->
  ?attempts:int ->
  ?delay_s:float ->
  string list ->
  string list
