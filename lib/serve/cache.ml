(* Two cache tiers behind one mutex. The memory tier is a Hashtbl with
   a logical clock for LRU (eviction scans for the minimum stamp — O(n)
   per eviction, which is noise at the few-hundred-entry capacities the
   server runs). The disk tier is one file per key, written with the
   same temp+rename discipline as Fuzz.Corpus so a crash mid-write can
   never corrupt a later read — and, since this PR, byte-budgeted: an
   in-memory index (seeded from an mtime-ordered directory scan at
   create) tracks per-entry sizes and recency stamps, and stores evict
   least-recently-used entries until usage fits the budget again. *)

type entry = { value : string; mutable stamp : int }
type disk_entry = { size : int; mutable dstamp : int }

type t = {
  lock : Mutex.t;
  mem : (string, entry) Hashtbl.t;
  capacity : int;
  dir : string option;
  disk_budget : int option;
  disk : (string, disk_entry) Hashtbl.t;
  mutable disk_bytes : int;
  mutable disk_evictions : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable disk_hits : int;
  mutable evictions : int;
}

let entry_file key = key ^ ".cache"
let file_key f = Filename.chop_suffix f ".cache"

(* LRU order survives a restart only as well as it is recorded. The
   mtime scan is the fallback — it sees writes but not reads, so an
   entry kept hot purely by hits looks cold after a restart. A clean
   (draining) shutdown therefore flushes the true recency order to this
   index file, which the next create consumes (and deletes: once the
   process is live the index is immediately stale). No ".cache" suffix,
   so the directory scan never mistakes it for an entry. *)
let index_file = "index.caqr"

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let publish_disk_gauges t =
  if t.dir <> None then begin
    Obs.Metrics.set_gauge "serve.cache.disk.bytes" t.disk_bytes;
    Obs.Metrics.set_gauge "serve.cache.disk.entries" (Hashtbl.length t.disk)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Rebuild the disk index from the directory. A flushed index file (one
   key per line, oldest first) pins the exact LRU order the previous
   process ended with; entries it doesn't mention were written after
   the flush, so they rank newest, among themselves in mtime order.
   With no index — a crash — mtime order (oldest first, name as
   tie-break) is the best the filesystem records. *)
let scan_disk t =
  match t.dir with
  | None -> ()
  | Some dir ->
    if Sys.file_exists dir && Sys.is_directory dir then begin
      let rank = Hashtbl.create 64 in
      let index_path = Filename.concat dir index_file in
      if Sys.file_exists index_path then begin
        (match read_file index_path with
        | body ->
          List.iteri
            (fun i k -> if k <> "" then Hashtbl.replace rank k i)
            (String.split_on_char '\n' body)
        | exception Sys_error _ -> ());
        (try Sys.remove index_path with Sys_error _ -> ())
      end;
      let order (k, _, mtime) =
        match Hashtbl.find_opt rank k with
        | Some i -> (0, i, 0., k)
        | None -> (1, 0, mtime, k)
      in
      let entries =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               Filename.check_suffix f ".cache"
               && String.length f > 0
               && f.[0] <> '.')
        |> List.filter_map (fun f ->
               match Unix.stat (Filename.concat dir f) with
               | st -> Some (file_key f, st.Unix.st_size, st.Unix.st_mtime)
               | exception Unix.Unix_error _ -> None)
        |> List.sort (fun a b -> compare (order a) (order b))
      in
      List.iter
        (fun (key, size, _) ->
          Hashtbl.replace t.disk key { size; dstamp = tick t };
          t.disk_bytes <- t.disk_bytes + size)
        entries;
      publish_disk_gauges t
    end

let create ?(mem_capacity = 256) ?dir ?disk_budget_bytes () =
  let t =
    {
      lock = Mutex.create ();
      mem = Hashtbl.create 64;
      capacity = max 0 mem_capacity;
      dir;
      disk_budget = Option.map (max 0) disk_budget_bytes;
      disk = Hashtbl.create 64;
      disk_bytes = 0;
      disk_evictions = 0;
      clock = 0;
      hits = 0;
      misses = 0;
      disk_hits = 0;
      evictions = 0;
    }
  in
  scan_disk t;
  t

let key ~op ~digest ~fingerprint =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ Caqr.Version.engine; op; digest; fingerprint ]))

(* ---- disk tier ---- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* Crash-safe: content lands in a dot-prefixed temp file first, then one
   atomic rename. Readers only ever open the final name, so a leftover
   temp (killed mid-write) is invisible. *)
let write_atomic ~dir ~file content =
  let tmp = Filename.concat dir ("." ^ file ^ ".tmp") in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp (Filename.concat dir file)

(* Deleting the file before dropping the index entry is the crash-safe
   order: a crash in between leaves an index that merely overcounts
   until the next restart's scan, never a file the index forgot (which
   would leak disk forever). *)
let disk_evict_past_budget t dir =
  match t.disk_budget with
  | None -> ()
  | Some budget ->
    while t.disk_bytes > budget && Hashtbl.length t.disk > 0 do
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | Some (_, best) when best.dstamp <= e.dstamp -> acc
            | _ -> Some (k, e))
          t.disk None
      in
      match victim with
      | Some (k, e) ->
        (try Sys.remove (Filename.concat dir (entry_file k))
         with Sys_error _ -> ());
        Hashtbl.remove t.disk k;
        t.disk_bytes <- t.disk_bytes - e.size;
        t.disk_evictions <- t.disk_evictions + 1;
        Obs.Metrics.incr "serve.cache.disk.evict"
      | None -> ()
    done

let disk_note t key size =
  (match Hashtbl.find_opt t.disk key with
  | Some old -> t.disk_bytes <- t.disk_bytes - old.size
  | None -> ());
  Hashtbl.replace t.disk key { size; dstamp = tick t };
  t.disk_bytes <- t.disk_bytes + size

let disk_find t key =
  match t.dir with
  | None -> None
  | Some dir ->
    let path = Filename.concat dir (entry_file key) in
    if Sys.file_exists path then
      match read_file path with
      | v ->
        (* Refresh recency; adopt entries a sibling process wrote. *)
        (match Hashtbl.find_opt t.disk key with
        | Some e -> e.dstamp <- tick t
        | None -> disk_note t key (String.length v));
        Some v
      | exception Sys_error _ -> None
    else None

let disk_store t key value =
  match t.dir with
  | None -> ()
  | Some dir ->
    let size = String.length value in
    (* An entry bigger than the whole budget would only evict everything
       else and then itself; don't let it touch the tier at all. *)
    let oversized =
      match t.disk_budget with Some b -> size > b | None -> false
    in
    if oversized then Obs.Metrics.incr "serve.cache.disk.oversized"
    else begin
      mkdir_p dir;
      write_atomic ~dir ~file:(entry_file key) value;
      disk_note t key size;
      disk_evict_past_budget t dir;
      publish_disk_gauges t
    end

(* ---- memory tier ---- *)

let evict_past_capacity t =
  while Hashtbl.length t.mem > t.capacity do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (k, e.stamp))
        t.mem None
    in
    match victim with
    | Some (k, _) ->
      Hashtbl.remove t.mem k;
      t.evictions <- t.evictions + 1;
      Obs.Metrics.incr "serve.cache.evict"
    | None -> ()
  done

let mem_insert t key value =
  if t.capacity > 0 then begin
    Hashtbl.replace t.mem key { value; stamp = tick t };
    evict_past_capacity t
  end

let locked t f = Mutex.protect t.lock f

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.mem key with
  | Some e ->
    e.stamp <- tick t;
    t.hits <- t.hits + 1;
    Obs.Metrics.incr "serve.cache.hit";
    Some e.value
  | None ->
    (match disk_find t key with
     | Some v ->
       (* Promote: the disk tier survives restarts, the memory tier
          serves the hot set. *)
       mem_insert t key v;
       t.hits <- t.hits + 1;
       t.disk_hits <- t.disk_hits + 1;
       Obs.Metrics.incr "serve.cache.hit";
       Obs.Metrics.incr "serve.cache.disk.hit";
       Some v
     | None ->
       t.misses <- t.misses + 1;
       Obs.Metrics.incr "serve.cache.miss";
       None)

let store t key value =
  locked t @@ fun () ->
  mem_insert t key value;
  disk_store t key value

(* Persist the disk tier's LRU order (oldest first). Called from the
   draining shutdown path; safe to call on a cache with no disk tier. *)
let flush t =
  locked t @@ fun () ->
  match t.dir with
  | None -> ()
  | Some dir ->
    let entries =
      Hashtbl.fold (fun k e acc -> (e.dstamp, k) :: acc) t.disk []
      |> List.sort compare
    in
    mkdir_p dir;
    write_atomic ~dir ~file:index_file
      (String.concat "" (List.map (fun (_, k) -> k ^ "\n") entries));
    Obs.Metrics.incr "serve.cache.disk.flush"

let stats t =
  locked t @@ fun () ->
  [
    ("hits", t.hits);
    ("misses", t.misses);
    ("disk_hits", t.disk_hits);
    ("evictions", t.evictions);
    ("mem_entries", Hashtbl.length t.mem);
    ("disk_entries", Hashtbl.length t.disk);
    ("disk_bytes", t.disk_bytes);
    ("disk_evictions", t.disk_evictions);
  ]
