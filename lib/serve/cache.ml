(* Two cache tiers behind one mutex. The memory tier is a Hashtbl with
   a logical clock for LRU (eviction scans for the minimum stamp — O(n)
   per eviction, which is noise at the few-hundred-entry capacities the
   server runs). The disk tier is one file per key, written with the
   same temp+rename discipline as Fuzz.Corpus so a crash mid-write can
   never corrupt a later read. *)

type entry = { value : string; mutable stamp : int }

type t = {
  lock : Mutex.t;
  mem : (string, entry) Hashtbl.t;
  capacity : int;
  dir : string option;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable disk_hits : int;
  mutable evictions : int;
}

let create ?(mem_capacity = 256) ?dir () =
  {
    lock = Mutex.create ();
    mem = Hashtbl.create 64;
    capacity = max 0 mem_capacity;
    dir;
    clock = 0;
    hits = 0;
    misses = 0;
    disk_hits = 0;
    evictions = 0;
  }

let key ~op ~digest ~fingerprint =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ Caqr.Version.engine; op; digest; fingerprint ]))

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* ---- disk tier ---- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let entry_file key = key ^ ".cache"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Crash-safe: content lands in a dot-prefixed temp file first, then one
   atomic rename. Readers only ever open the final name, so a leftover
   temp (killed mid-write) is invisible. *)
let write_atomic ~dir ~file content =
  let tmp = Filename.concat dir ("." ^ file ^ ".tmp") in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp (Filename.concat dir file)

let disk_find t key =
  match t.dir with
  | None -> None
  | Some dir ->
    let path = Filename.concat dir (entry_file key) in
    if Sys.file_exists path then
      match read_file path with
      | v -> Some v
      | exception Sys_error _ -> None
    else None

let disk_store t key value =
  match t.dir with
  | None -> ()
  | Some dir ->
    mkdir_p dir;
    write_atomic ~dir ~file:(entry_file key) value

(* ---- memory tier ---- *)

let evict_past_capacity t =
  while Hashtbl.length t.mem > t.capacity do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (k, e.stamp))
        t.mem None
    in
    match victim with
    | Some (k, _) ->
      Hashtbl.remove t.mem k;
      t.evictions <- t.evictions + 1;
      Obs.Metrics.incr "serve.cache.evict"
    | None -> ()
  done

let mem_insert t key value =
  if t.capacity > 0 then begin
    Hashtbl.replace t.mem key { value; stamp = tick t };
    evict_past_capacity t
  end

let locked t f = Mutex.protect t.lock f

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.mem key with
  | Some e ->
    e.stamp <- tick t;
    t.hits <- t.hits + 1;
    Obs.Metrics.incr "serve.cache.hit";
    Some e.value
  | None ->
    (match disk_find t key with
     | Some v ->
       (* Promote: the disk tier survives restarts, the memory tier
          serves the hot set. *)
       mem_insert t key v;
       t.hits <- t.hits + 1;
       t.disk_hits <- t.disk_hits + 1;
       Obs.Metrics.incr "serve.cache.hit";
       Obs.Metrics.incr "serve.cache.disk.hit";
       Some v
     | None ->
       t.misses <- t.misses + 1;
       Obs.Metrics.incr "serve.cache.miss";
       None)

let store t key value =
  locked t @@ fun () ->
  mem_insert t key value;
  disk_store t key value

let stats t =
  locked t @@ fun () ->
  [
    ("hits", t.hits);
    ("misses", t.misses);
    ("disk_hits", t.disk_hits);
    ("evictions", t.evictions);
    ("mem_entries", Hashtbl.length t.mem);
  ]
