(* The transport layer: one address grammar and two wire framings
   behind a single listener/connection API.

   Unix-domain sockets keep PR 6's newline-delimited framing so every
   existing client keeps working byte-for-byte. TCP uses length-prefixed
   frames (4-byte big-endian header) — self-describing, newline-safe,
   and cheap to validate against garbage: a peer speaking the wrong
   protocol produces an absurd length and the connection dies with one
   structured failure instead of buffering forever. *)

type addr = Unix of string | Tcp of string * int

let addr_to_string = function
  | Unix path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  if s = "" then Error "empty address"
  else
    match String.index_opt s ':' with
    (* Bare strings are Unix-socket paths — the PR 6 grammar. *)
    | None -> Ok (Unix s)
    | Some i ->
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      (match scheme with
      | "unix" ->
        if rest = "" then Error "unix: needs a socket path, e.g. unix:/tmp/caqr.sock"
        else Ok (Unix rest)
      | "tcp" ->
        (match String.rindex_opt rest ':' with
        | None -> Error "tcp: needs host and port, e.g. tcp:127.0.0.1:7391"
        | Some j ->
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          if host = "" then Error "tcp: needs a host, e.g. tcp:127.0.0.1:7391"
          else
            (match int_of_string_opt port with
            | Some p when p >= 0 && p <= 65535 -> Ok (Tcp (host, p))
            | _ -> Error (Printf.sprintf "invalid tcp port %S" port)))
      | other ->
        Error
          (Printf.sprintf "unknown transport scheme %S (use unix: or tcp:)"
             other))

type framing = Newline | Length_prefixed

let framing_of_addr = function Unix _ -> Newline | Tcp _ -> Length_prefixed

(* A frame larger than this is not a request, it is garbage (or an
   attack): the server's own admission cap tops out well below. *)
let max_frame_bytes = 64 * 1024 * 1024

(* Dying on SIGPIPE would let one disconnected client kill the daemon;
   every entry point forces this once and write errors surface as
   EPIPE instead. *)
let ignore_sigpipe =
  lazy
    (try Stdlib.Sys.set_signal Stdlib.Sys.sigpipe Stdlib.Sys.Signal_ignore
     with Invalid_argument _ | Stdlib.Sys_error _ -> ())

let resolve_host host =
  try Stdlib.Option.some (Unix.inet_addr_of_string host)
  with Failure _ -> (
    try
      let h = Unix.gethostbyname host in
      if Array.length h.Unix.h_addr_list > 0 then Some h.Unix.h_addr_list.(0)
      else None
    with Not_found -> None)

let sockaddr_of = function
  | Unix path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    (match resolve_host host with
    | Some inet -> Unix.ADDR_INET (inet, port)
    | None ->
      raise
        (Unix.Unix_error
           (Unix.EINVAL, "Serve.Transport", "unresolvable host " ^ host)))

(* ---- connections ---- *)

type conn = {
  fd : Unix.file_descr;
  framing : framing;
  buf : Buffer.t;  (** raw bytes read but not yet framed *)
  msgs : string Queue.t;  (** framed messages not yet delivered *)
  chunk : Bytes.t;
  mutable eof : bool;
}

let conn_of_fd framing fd =
  {
    fd;
    framing;
    buf = Buffer.create 4096;
    msgs = Queue.create ();
    chunk = Bytes.create 65536;
    eof = false;
  }

let close c =
  c.eof <- true;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* A connected pair of in-process conns over a socketpair — no
   listener, no filesystem. This is what lets the chaos harness and
   tests exercise the exact framing/read/write code paths (including
   their fault-injection sites) without standing up a daemon. *)
let pair ?(framing = Newline) () =
  Lazy.force ignore_sigpipe;
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (conn_of_fd framing a, conn_of_fd framing b)

(* Bytes read off the socket but not yet framed into a message — the
   tell-tale of a peer stalled mid-frame (half a length prefix, a line
   with no newline). The server reads this to distinguish "idle" from
   "wedged" when a connection deadline expires. *)
let pending_bytes c = Buffer.length c.buf

let frame_error fmt =
  Printf.ksprintf
    (fun detail ->
      raise
        (Guard.Error.Guard_error
           (Guard.Error.v ~stage:"serve.transport" ~site:"wire.frame" detail)))
    fmt

(* Move every complete message out of [buf] into [msgs]. *)
let reframe_newline c =
  Guard.Inject.hit "wire.frame";
  let s = Buffer.contents c.buf in
  match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
    String.split_on_char '\n' (String.sub s 0 last)
    |> List.iter (fun l -> Queue.add l c.msgs);
    Buffer.clear c.buf;
    Buffer.add_substring c.buf s (last + 1) (String.length s - last - 1)

let reframe_length c =
  Guard.Inject.hit "wire.frame";
  let s = Buffer.contents c.buf in
  let n = String.length s in
  let pos = ref 0 in
  let scanning = ref true in
  while !scanning do
    if n - !pos < 4 then scanning := false
    else begin
      let len =
        (Char.code s.[!pos] lsl 24)
        lor (Char.code s.[!pos + 1] lsl 16)
        lor (Char.code s.[!pos + 2] lsl 8)
        lor Char.code s.[!pos + 3]
      in
      if len > max_frame_bytes then
        (* A structured error, not failwith: the handler owning this
           connection contains it and closes, instead of dying. *)
        frame_error
          "frame of %d bytes exceeds the %d-byte cap (wrong framing for \
           this transport?)"
          len max_frame_bytes
      else if n - !pos - 4 < len then scanning := false
      else begin
        Queue.add (String.sub s (!pos + 4) len) c.msgs;
        pos := !pos + 4 + len
      end
    end
  done;
  if !pos > 0 then begin
    Buffer.clear c.buf;
    Buffer.add_substring c.buf s !pos (n - !pos)
  end

let reframe c =
  match c.framing with
  | Newline -> reframe_newline c
  | Length_prefixed -> reframe_length c

let read_once c =
  Guard.Inject.hit "wire.read";
  match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
  | 0 -> c.eof <- true
  | n -> Buffer.add_subbytes c.buf c.chunk 0 n
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    c.eof <- true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let readable ~timeout_s c =
  match Unix.select [ c.fd ] [] [] timeout_s with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let rec recv c =
  if not (Queue.is_empty c.msgs) then Some (Queue.pop c.msgs)
  else if c.eof then None
  else begin
    read_once c;
    reframe c;
    recv c
  end

type recv_result = Msgs of string list | Eof | Timeout

(* [timeout_s] is a TOTAL budget for this call, not a per-read idle
   timeout. The distinction matters exactly once, and then a lot: a
   slow-loris peer trickling one byte per poll interval would reset a
   per-read timeout forever and pin the handler; against an absolute
   deadline the trickle changes nothing and the call returns [Timeout]
   on schedule. *)
let recv_batch ?timeout_s ~max:cap c =
  let deadline =
    Option.map (fun dt -> Unix.gettimeofday () +. dt) timeout_s
  in
  let rec await () =
    if not (Queue.is_empty c.msgs) then `Ready
    else if c.eof then `Eof
    else
      match deadline with
      | None ->
        read_once c;
        reframe c;
        await ()
      | Some d ->
        let left = d -. Unix.gettimeofday () in
        if left <= 0. then `Timeout
        else if readable ~timeout_s:left c then begin
          read_once c;
          reframe c;
          await ()
        end
        else `Timeout
  in
  match await () with
  | `Eof -> Eof
  | `Timeout -> Timeout
  | `Ready ->
    (* Drain whatever the peer already pipelined — without blocking —
       so one dispatch can batch it. *)
    let rec drain () =
      if Queue.length c.msgs < cap && (not c.eof) && readable ~timeout_s:0.0 c
      then begin
        read_once c;
        reframe c;
        drain ()
      end
    in
    drain ();
    let rec take acc k =
      if k = 0 || Queue.is_empty c.msgs then List.rev acc
      else take (Queue.pop c.msgs :: acc) (k - 1)
    in
    Msgs (take [] cap)

(* Framing as a pure function of bytes, so the wire fuzzer can build
   well-formed — and then surgically malformed — frames without a
   connection in hand. *)
let encode ~framing payload =
  match framing with
  | Newline ->
    if String.contains payload '\n' then
      invalid_arg
        "Serve.Transport.send: newline framing cannot carry embedded newlines";
    payload ^ "\n"
  | Length_prefixed ->
    let len = String.length payload in
    if len > max_frame_bytes then
      invalid_arg "Serve.Transport.send: frame exceeds the 64 MiB cap";
    let hdr = Bytes.create 4 in
    Bytes.set hdr 0 (Char.chr ((len lsr 24) land 0xff));
    Bytes.set hdr 1 (Char.chr ((len lsr 16) land 0xff));
    Bytes.set hdr 2 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set hdr 3 (Char.chr (len land 0xff));
    Bytes.to_string hdr ^ payload

let frame c payload = encode ~framing:c.framing payload

let writable ~timeout_s c =
  match Unix.select [] [ c.fd ] [] timeout_s with
  | _, [ _ ], _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* [timeout_s] bounds the whole send, like recv_batch's budget: a peer
   that stops draining its receive buffer stalls our write, and without
   a deadline that stall pins the handler domain as surely as a
   slow-loris read. On expiry the connection is marked dead and a
   structured (recoverable) error raised for the owner to contain. *)
let send ?timeout_s c payloads =
  if payloads <> [] && not c.eof then begin
    Guard.Inject.hit "wire.write";
    let data = String.concat "" (List.map (frame c) payloads) in
    let len = String.length data in
    let deadline =
      Option.map (fun dt -> Unix.gettimeofday () +. dt) timeout_s
    in
    let written = ref 0 in
    try
      while !written < len do
        (match deadline with
        | None -> ()
        | Some d ->
          let left = d -. Unix.gettimeofday () in
          if left <= 0. || not (writable ~timeout_s:left c) then begin
            c.eof <- true;
            raise
              (Guard.Error.Guard_error
                 (Guard.Error.v ~recoverable:true ~stage:"serve.transport"
                    ~site:"conn.write"
                    (Printf.sprintf
                       "write stalled at %d of %d bytes past the deadline"
                       !written len)))
          end);
        match Unix.write_substring c.fd data !written (len - !written) with
        | n -> written := !written + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> c.eof <- true
  end

(* ---- listeners ---- *)

type listener = {
  lfd : Unix.file_descr;
  laddr : addr;
  lframing : framing;
  mutable lclosed : bool;
}

(* A socket file can be left behind by a crashed daemon (unlink in
   close_listener never ran) — or it can belong to a live server. The
   only honest way to tell them apart is to knock: connect succeeding
   means someone is accepting, so binding must fail loudly rather than
   steal the path; connect refused means the inode is an orphan and is
   safe to reclaim. *)
let unix_socket_alive path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
      | exception Unix.Unix_error _ ->
        (* Permission trouble, weird inode: treat as live and let the
           bind report the conflict instead of deleting blind. *)
        true)

let bind addr =
  Lazy.force ignore_sigpipe;
  match addr with
  | Unix path ->
    let bind_once () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.bind fd (Unix.ADDR_UNIX path) with
      | () ->
        Unix.listen fd 64;
        fd
      | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
    in
    let fd =
      match bind_once () with
      | fd -> fd
      | exception Unix.Unix_error (Unix.EADDRINUSE, _, _)
        when not (unix_socket_alive path) ->
        Obs.Metrics.incr "serve.socket.reclaimed";
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        bind_once ()
    in
    { lfd = fd; laddr = addr; lframing = Newline; lclosed = false }
  | Tcp (host, _port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (sockaddr_of addr);
    Unix.listen fd 64;
    (* Port 0 asks the kernel for an ephemeral port; report the real
       one so tests and --addr tcp:HOST:0 users can find the daemon. *)
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Tcp (host, p)
      | _ -> addr
    in
    { lfd = fd; laddr = actual; lframing = Length_prefixed; lclosed = false }

let bound_addr l = l.laddr

let accept ?timeout_s l =
  let do_accept () =
    match Unix.accept l.lfd with
    | fd, _ ->
      (match l.laddr with
      | Tcp _ -> (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
      | Unix _ -> ());
      Some (conn_of_fd l.lframing fd)
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      None
  in
  match timeout_s with
  | None -> do_accept ()
  | Some dt ->
    (match Unix.select [ l.lfd ] [] [] dt with
    | [ _ ], _, _ -> do_accept ()
    | _ -> None
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> None)

(* Idempotent: the draining shutdown path closes the listener as soon
   as the drain flag is seen (to refuse new connections), and the
   run-loop's finally closes it again unconditionally. *)
let close_listener l =
  if not l.lclosed then begin
    l.lclosed <- true;
    (try Unix.close l.lfd with Unix.Unix_error _ -> ());
    match l.laddr with
    | Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end

let connect addr =
  Lazy.force ignore_sigpipe;
  let domain =
    match addr with Unix _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (match addr with
  | Tcp _ -> (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | Unix _ -> ());
  conn_of_fd (framing_of_addr addr) fd
