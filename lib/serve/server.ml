type config = {
  socket : string;
  jobs : int;
  mem_capacity : int;
  cache_dir : string option;
  default_deadline_ms : int option;
  max_deadline_ms : int option;
  max_batch : int;
  max_request_bytes : int;
}

let default_config =
  {
    socket = "caqr.sock";
    jobs = 1;
    mem_capacity = 256;
    cache_dir = None;
    default_deadline_ms = None;
    max_deadline_ms = None;
    max_batch = 64;
    max_request_bytes = 10_000_000;
  }

type t = {
  config : config;
  cache : Cache.t;
  requests : int Atomic.t;
  started : float;
}

let create config =
  {
    config =
      {
        config with
        jobs = max 1 config.jobs;
        max_batch = max 1 config.max_batch;
        max_request_bytes = max 1024 config.max_request_bytes;
      };
    cache = Cache.create ~mem_capacity:config.mem_capacity ?dir:config.cache_dir ();
    requests = Atomic.make 0;
    started = Unix.gettimeofday ();
  }

let cache t = t.cache

let usage_error ~site fmt =
  Printf.ksprintf
    (fun detail -> Guard.Error.v ~stage:"serve.request" ~site detail)
    fmt

(* ---- input resolution ---- *)

(* A request names its circuit either by benchmark-registry name or as
   inline QASM-3. Returns the display name, the pipeline input, the
   circuit whose width picks the device, and the canonical digest that
   keys the cache. *)
let resolve_input (req : Protocol.request) =
  match (req.bench, req.qasm3) with
  | Some _, Some _ ->
    Error (usage_error ~site:"request.input" "give \"bench\" or \"qasm3\", not both")
  | None, None ->
    Error (usage_error ~site:"request.input" "missing \"bench\" or \"qasm3\"")
  | Some name, None ->
    (match Benchmarks.Suite.find name with
     | e ->
       let input =
         match e.Benchmarks.Suite.kind with
         | Benchmarks.Suite.Regular ->
           Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit
         | Benchmarks.Suite.Commutable g -> Caqr.Pipeline.Commutable g
       in
       (* A commutable entry and a hypothetical regular entry with the
          same emitted circuit are different compile problems — tag the
          digest with the input kind. *)
       let tag =
         match e.Benchmarks.Suite.kind with
         | Benchmarks.Suite.Regular -> "regular:"
         | Benchmarks.Suite.Commutable _ -> "commutable:"
       in
       Ok
         ( name,
           input,
           e.Benchmarks.Suite.circuit,
           tag ^ Quantum.Circuit.digest e.Benchmarks.Suite.circuit )
     | exception Not_found ->
       Error (usage_error ~site:"request.input" "unknown benchmark %S" name))
  | None, Some src ->
    (match Quantum.Qasm_parser.parse src with
     | Ok c ->
       Ok ("qasm3", Caqr.Pipeline.Regular c, c, "regular:" ^ Quantum.Circuit.digest c)
     | Error e -> Error e)

(* ---- per-request options, fingerprint, deadline ---- *)

let options_of (req : Protocol.request) =
  {
    Caqr.Pipeline.default with
    Caqr.Pipeline.verify =
      (match req.op with Protocol.Verify -> Some req.level | _ -> None);
    seed = req.seed;
    fallback = req.fallback;
    (* Batch-level parallelism owns the domains; inner compiles stay
       sequential, exactly like Pipeline.compile_all. *)
    jobs = 1;
  }

let fingerprint options (req : Protocol.request) =
  Caqr.Pipeline.options_fingerprint options
  ^ Printf.sprintf ";strategy=%s;qasm=%b"
      (Caqr.Pipeline.strategy_name req.strategy)
      req.emit_qasm
  ^
  match req.op with
  | Protocol.Simulate -> Printf.sprintf ";shots=%d;sim_seed=%d" req.shots req.seed
  | _ -> ""

(* Admission control half two: the request's deadline is clamped to the
   server's cap; requests without one get the server default. *)
let effective_deadline t (req : Protocol.request) =
  let requested =
    match req.deadline_ms with
    | Some _ as d -> d
    | None -> t.config.default_deadline_ms
  in
  match (requested, t.config.max_deadline_ms) with
  | Some d, Some cap -> Some (min d cap)
  | None, Some cap -> Some cap
  | d, None -> d

(* ---- result bodies ---- *)

let result_of_report ~name ~emit_qasm (r : Caqr.Pipeline.report) =
  let s = r.Caqr.Pipeline.stats in
  let base =
    [
      ("benchmark", Json.String name);
      ( "strategy",
        Json.String (Caqr.Pipeline.strategy_name r.Caqr.Pipeline.strategy) );
      ("qubits", Json.Int s.Transpiler.Transpile.qubits_used);
      ("depth", Json.Int s.Transpiler.Transpile.depth);
      ("duration_dt", Json.Int s.Transpiler.Transpile.duration_dt);
      ("swaps", Json.Int s.Transpiler.Transpile.swaps);
      ("two_q", Json.Int s.Transpiler.Transpile.two_q);
      ("gate_count", Json.Int s.Transpiler.Transpile.gate_count);
      ("reuse_pairs", Json.Int r.Caqr.Pipeline.reuse_pairs);
    ]
  in
  let degraded =
    match r.Caqr.Pipeline.degraded with
    | [] -> []
    | ds ->
      [
        ( "degraded",
          Json.List
            (List.map
               (fun (d : Caqr.Pipeline.degraded) ->
                 Json.Obj
                   [
                     ( "from",
                       Json.String
                         (Caqr.Pipeline.strategy_name
                            d.Caqr.Pipeline.from_strategy) );
                     ( "error",
                       Json.String
                         (Guard.Error.to_string d.Caqr.Pipeline.error) );
                   ])
               ds) );
      ]
  in
  let verdict =
    match r.Caqr.Pipeline.verification with
    | None -> []
    | Some v -> [ ("verdict", Json.String (Verify.Verdict.to_string v)) ]
  in
  let qasm =
    if emit_qasm then
      [
        ( "qasm3",
          Json.String
            (Quantum.Qasm.to_string
               (fst (Quantum.Circuit.compact_qubits r.Caqr.Pipeline.physical)))
        );
      ]
    else []
  in
  Json.Obj (base @ degraded @ verdict @ qasm)

(* Compute one compile/verify/simulate result. Runs under the request's
   scoped budget; the caller wraps with Guard.Error.protect. Returns the
   result object and whether it may be cached (degraded reports are
   deadline-dependent, so they are not). *)
let compute ~name ~input ~circuit:_ (req : Protocol.request) options device =
  let r = Caqr.Pipeline.compile ~options device req.strategy input in
  let body = result_of_report ~name ~emit_qasm:req.emit_qasm r in
  let body =
    match req.op with
    | Protocol.Simulate ->
      let counts =
        Sim.Executor.run ~jobs:1 ~seed:req.seed ~shots:req.shots
          r.Caqr.Pipeline.physical
      in
      let outcomes =
        List.map
          (fun (outcome, count) ->
            Json.List [ Json.Int outcome; Json.Int count ])
          (Sim.Counts.to_list counts)
      in
      (match body with
       | Json.Obj fields ->
         Json.Obj
           (fields
           @ [
               ("shots", Json.Int req.shots);
               ("sim_seed", Json.Int req.seed);
               ("counts", Json.List outcomes);
             ])
       | j -> j)
    | _ -> body
  in
  (body, r.Caqr.Pipeline.degraded = [])

let ok_fields (req : Protocol.request) ~cache_state ~key ~result =
  [
    ("ok", Json.Bool true);
    ("op", Json.String (Protocol.op_name req.op));
    ("cache", Json.String cache_state);
    ("key", Json.String key);
    ("result", Json.Raw result);
  ]

let handle_work t (req : Protocol.request) =
  match resolve_input req with
  | Error e -> Protocol.error_response ~id:req.id e
  | Ok (name, input, circuit, digest) ->
    let options = options_of req in
    let key =
      Cache.key ~op:(Protocol.op_name req.op) ~digest
        ~fingerprint:(fingerprint options req)
    in
    let cached = if req.no_cache then None else Cache.find t.cache key in
    (match cached with
     | Some result ->
       Protocol.response ~id:req.id
         (ok_fields req ~cache_state:"hit" ~key ~result)
     | None ->
       let device =
         Hardware.Device.heavy_hex_for circuit.Quantum.Circuit.num_qubits
       in
       let deadline_ms = effective_deadline t req in
       (match
          Guard.Error.protect ~stage:"serve.request" (fun () ->
              (* The scoped budget covers compile, verification and
                 simulation; Exec.Pool re-installs it in any domain this
                 request fans out to. *)
              Guard.Budget.scoped (Guard.Budget.make ?ms:deadline_ms ())
                (fun () -> compute ~name ~input ~circuit req options device))
        with
        | Ok (body, cacheable) ->
          let result = Json.to_string body in
          if cacheable && not req.no_cache then Cache.store t.cache key result;
          let state = if req.no_cache then "none" else "miss" in
          Protocol.response ~id:req.id
            (ok_fields req ~cache_state:state ~key ~result)
        | Error e ->
          Obs.Metrics.incr "serve.errors";
          Protocol.error_response ~id:req.id e))

let stats_response t (req : Protocol.request) =
  let result =
    Json.Obj
      [
        ("engine", Json.String Caqr.Version.engine);
        ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
        ("requests", Json.Int (Atomic.get t.requests));
        ( "cache",
          Json.Obj
            (List.map (fun (k, v) -> (k, Json.Int v)) (Cache.stats t.cache)) );
        ("metrics", Json.Raw (Obs.Metrics.to_json (Obs.Metrics.snapshot ())));
      ]
  in
  Protocol.response ~id:req.id
    [
      ("ok", Json.Bool true);
      ("op", Json.String "stats");
      ("result", Json.Raw (Json.to_string result));
    ]

let handle_line t line =
  Obs.Metrics.incr "serve.requests";
  Atomic.incr t.requests;
  if String.length line > t.config.max_request_bytes then
    ( Protocol.error_response ~id:Json.Null
        (Guard.Error.v ~stage:"serve.admission" ~site:"request.size"
           (Printf.sprintf "request line exceeds %d bytes"
              t.config.max_request_bytes)),
      false )
  else
    match Protocol.of_line line with
    | Error msg ->
      ( Protocol.error_response ~id:Json.Null
          (Guard.Error.v ~stage:"serve.protocol" ~site:"request.parse" msg),
        false )
    | Ok req ->
      Obs.Metrics.incr ("serve.op." ^ Protocol.op_name req.op);
      (match req.op with
       | Protocol.Shutdown ->
         ( Protocol.response ~id:req.id
             [
               ("ok", Json.Bool true);
               ("op", Json.String "shutdown");
               ("result", Json.Obj [ ("stopping", Json.Bool true) ]);
             ],
           true )
       | Protocol.Stats -> (stats_response t req, false)
       | Protocol.Compile | Protocol.Verify | Protocol.Simulate ->
         (handle_work t req, false))

(* handle_line never raises and touches only domain-safe state (cache
   mutex, atomics, metrics), so a pipelined batch fans out as-is. *)
let handle_batch t lines =
  let n = List.length lines in
  if n = 0 then ([], false)
  else begin
    Obs.Metrics.incr "serve.batches";
    if n > 1 then Obs.Metrics.incr ~by:n "serve.batched.requests";
    let results =
      if n = 1 then List.map (handle_line t) lines
      else Exec.Pool.map ~jobs:t.config.jobs (handle_line t) lines
    in
    (List.map fst results, List.exists snd results)
  end

(* ---- the socket loop ---- *)

(* One connection: a buffered line reader that batches. The first read
   blocks; everything already queued behind it drains without blocking,
   and that pipelined run — capped at max_batch — is the batch handed to
   the pool. *)
let serve_conn t stop fd =
  let chunk_size = 65536 in
  let chunk = Bytes.create chunk_size in
  let pending = Buffer.create 4096 in
  let queue = Queue.create () in
  let eof = ref false in
  (* Move complete lines out of [pending] into [queue]. *)
  let split_pending () =
    let s = Buffer.contents pending in
    match String.rindex_opt s '\n' with
    | None -> ()
    | Some last ->
      String.split_on_char '\n' (String.sub s 0 last)
      |> List.iter (fun l -> Queue.add l queue);
      Buffer.clear pending;
      Buffer.add_string pending
        (String.sub s (last + 1) (String.length s - last - 1))
  in
  let read_once () =
    match Unix.read fd chunk 0 chunk_size with
    | 0 -> eof := true
    | n -> Buffer.add_subbytes pending chunk 0 n
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      eof := true
  in
  let readable_now () =
    match Unix.select [ fd ] [] [] 0.0 with
    | [ _ ], _, _ -> true
    | _ -> false
  in
  let rec fill () =
    if Queue.is_empty queue && not !eof then begin
      read_once ();
      split_pending ();
      fill ()
    end
    else if (not !eof) && readable_now () then begin
      (* Drain what the client already pipelined — this is the batch. *)
      read_once ();
      split_pending ();
      if (not !eof) && readable_now () then fill ()
    end
  in
  let take_batch () =
    fill ();
    let rec take acc k =
      if k = 0 || Queue.is_empty queue then List.rev acc
      else take (Queue.pop queue :: acc) (k - 1)
    in
    take [] t.config.max_batch
  in
  let send lines =
    let payload = String.concat "\n" lines ^ "\n" in
    let len = String.length payload in
    let written = ref 0 in
    (try
       while !written < len do
         written :=
           !written + Unix.write_substring fd payload !written (len - !written)
       done
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> eof := true)
  in
  let rec loop () =
    match take_batch () with
    | [] -> ()
    | batch ->
      let responses, stop' = handle_batch t batch in
      send responses;
      if stop' then stop := true else loop ()
  in
  loop ()

let run t =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Replace a stale socket file from a previous run; a live server on
     the same path loses it, which is the standard Unix-socket bargain. *)
  (try Unix.unlink t.config.socket with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX t.config.socket);
  Unix.listen sock 64;
  let stop = ref false in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink t.config.socket with Unix.Unix_error _ -> ())
    (fun () ->
      while not !stop do
        let client, _ = Unix.accept sock in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close client with Unix.Unix_error _ -> ())
          (fun () -> serve_conn t stop client)
      done)
