type config = {
  addr : Transport.addr;
  jobs : int;
  handler_domains : int;
  max_inflight : int;
  mem_capacity : int;
  cache_dir : string option;
  disk_budget_bytes : int option;
  default_deadline_ms : int option;
  max_deadline_ms : int option;
  max_batch : int;
  max_request_bytes : int;
  conn_timeout_ms : int option;
      (** a connection that completes no batch for this long — idle,
          trickling bytes, or refusing to drain our writes — gets a
          structured [request.timeout] and is closed. [None] = never. *)
  drain_deadline_ms : int;
      (** on SIGTERM/SIGINT, how long in-flight connections get to
          finish before the stop flag falls regardless. *)
}

let default_config =
  {
    addr = Transport.Unix "caqr.sock";
    jobs = 1;
    handler_domains = 4;
    max_inflight = 0;
    mem_capacity = 256;
    cache_dir = None;
    disk_budget_bytes = None;
    default_deadline_ms = None;
    max_deadline_ms = None;
    max_batch = 64;
    max_request_bytes = 10_000_000;
    conn_timeout_ms = None;
    drain_deadline_ms = 5_000;
  }

type t = {
  config : config;
  cache : Cache.t;
  gate : Guard.Gate.t;
  requests : int Atomic.t;
  started : float;
  stop : bool Atomic.t;  (** hard stop: the shutdown verb, or drain expiry *)
  drain_flag : bool Atomic.t;
      (** graceful: refuse new connections, finish in-flight ones *)
  active_conns : int Atomic.t;
}

let create config =
  Obs.Metrics.declare "serve.conn.timeout";
  Obs.Metrics.declare "serve.conn.errors";
  Obs.Metrics.declare "serve.socket.reclaimed";
  Obs.Metrics.declare_gauge "serve.draining";
  Obs.Metrics.declare_gauge "serve.conns.active";
  {
    config =
      {
        config with
        jobs = max 1 config.jobs;
        handler_domains = max 1 config.handler_domains;
        max_batch = max 1 config.max_batch;
        max_request_bytes = max 1024 config.max_request_bytes;
        drain_deadline_ms = max 0 config.drain_deadline_ms;
      };
    cache =
      Cache.create ~mem_capacity:config.mem_capacity ?dir:config.cache_dir
        ?disk_budget_bytes:config.disk_budget_bytes ();
    gate =
      Guard.Gate.create ~reject_metric:"serve.rejected.overload"
        ~limit:config.max_inflight ();
    requests = Atomic.make 0;
    started = Unix.gettimeofday ();
    stop = Atomic.make false;
    drain_flag = Atomic.make false;
    active_conns = Atomic.make 0;
  }

let cache t = t.cache
let gate t = t.gate

(* Exposed so tests (and embedders) can drive the graceful-shutdown
   path without delivering a real signal to their own process. *)
let drain t =
  Atomic.set t.drain_flag true;
  Obs.Metrics.set_gauge "serve.draining" 1

let draining t = Atomic.get t.drain_flag

let usage_error ~site fmt =
  Printf.ksprintf
    (fun detail -> Guard.Error.v ~stage:"serve.request" ~site detail)
    fmt

(* ---- input resolution ---- *)

(* A request names its circuit either by benchmark-registry name or as
   inline QASM-3. Returns the display name, the pipeline input, the
   circuit whose width picks the device, and the canonical digest that
   keys the cache. *)
let resolve_input (req : Protocol.request) =
  match (req.bench, req.qasm3) with
  | Some _, Some _ ->
    Error (usage_error ~site:"request.input" "give \"bench\" or \"qasm3\", not both")
  | None, None ->
    Error (usage_error ~site:"request.input" "missing \"bench\" or \"qasm3\"")
  | Some name, None ->
    (match Benchmarks.Suite.find name with
     | e ->
       let input =
         match e.Benchmarks.Suite.kind with
         | Benchmarks.Suite.Regular ->
           Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit
         | Benchmarks.Suite.Commutable g -> Caqr.Pipeline.Commutable g
       in
       (* A commutable entry and a hypothetical regular entry with the
          same emitted circuit are different compile problems — tag the
          digest with the input kind. *)
       let tag =
         match e.Benchmarks.Suite.kind with
         | Benchmarks.Suite.Regular -> "regular:"
         | Benchmarks.Suite.Commutable _ -> "commutable:"
       in
       Ok
         ( name,
           input,
           e.Benchmarks.Suite.circuit,
           tag ^ Quantum.Circuit.digest e.Benchmarks.Suite.circuit )
     | exception Not_found ->
       Error (usage_error ~site:"request.input" "unknown benchmark %S" name))
  | None, Some src ->
    (match Quantum.Qasm_parser.parse src with
     | Ok c ->
       Ok ("qasm3", Caqr.Pipeline.Regular c, c, "regular:" ^ Quantum.Circuit.digest c)
     | Error e -> Error e)

(* ---- per-request options, fingerprint, deadline ---- *)

let options_of (req : Protocol.request) =
  {
    Caqr.Pipeline.default with
    Caqr.Pipeline.verify =
      (match req.op with Protocol.Verify -> Some req.level | _ -> None);
    seed = req.seed;
    fallback = req.fallback;
    (* Batch-level parallelism owns the domains; inner compiles stay
       sequential, exactly like Pipeline.compile_all. *)
    jobs = 1;
  }

let fingerprint options (req : Protocol.request) =
  Caqr.Pipeline.options_fingerprint options
  ^ Printf.sprintf ";strategy=%s;qasm=%b"
      (Caqr.Pipeline.strategy_name req.strategy)
      req.emit_qasm
  ^
  match req.op with
  | Protocol.Simulate -> Printf.sprintf ";shots=%d;sim_seed=%d" req.shots req.seed
  | _ -> ""

(* Admission control: the request's deadline is clamped to the server's
   cap; requests without one get the server default. *)
let effective_deadline t (req : Protocol.request) =
  let requested =
    match req.deadline_ms with
    | Some _ as d -> d
    | None -> t.config.default_deadline_ms
  in
  match (requested, t.config.max_deadline_ms) with
  | Some d, Some cap -> Some (min d cap)
  | None, Some cap -> Some cap
  | d, None -> d

(* ---- result bodies ---- *)

let result_of_report ~name ~emit_qasm (r : Caqr.Pipeline.report) =
  let s = r.Caqr.Pipeline.stats in
  let base =
    [
      ("benchmark", Json.String name);
      ( "strategy",
        Json.String (Caqr.Pipeline.strategy_name r.Caqr.Pipeline.strategy) );
      ("qubits", Json.Int s.Transpiler.Transpile.qubits_used);
      ("depth", Json.Int s.Transpiler.Transpile.depth);
      ("duration_dt", Json.Int s.Transpiler.Transpile.duration_dt);
      ("swaps", Json.Int s.Transpiler.Transpile.swaps);
      ("two_q", Json.Int s.Transpiler.Transpile.two_q);
      ("gate_count", Json.Int s.Transpiler.Transpile.gate_count);
      ("reuse_pairs", Json.Int r.Caqr.Pipeline.reuse_pairs);
      ("quality", Json.String (Caqr.Quality.name r.Caqr.Pipeline.quality));
    ]
  in
  let anytime =
    match r.Caqr.Pipeline.quality with
    | Caqr.Quality.Exact -> []
    | Caqr.Quality.Anytime { steps_done; frontier_left } ->
      [
        ( "anytime",
          Json.Obj
            [
              ("steps_done", Json.Int steps_done);
              ("frontier_left", Json.Int frontier_left);
            ] );
      ]
  in
  let degraded =
    match r.Caqr.Pipeline.degraded with
    | [] -> []
    | ds ->
      [
        ( "degraded",
          Json.List
            (List.map
               (fun (d : Caqr.Pipeline.degraded) ->
                 Json.Obj
                   [
                     ( "from",
                       Json.String
                         (Caqr.Pipeline.strategy_name
                            d.Caqr.Pipeline.from_strategy) );
                     ( "error",
                       Json.String
                         (Guard.Error.to_string d.Caqr.Pipeline.error) );
                   ])
               ds) );
      ]
  in
  let verdict =
    match r.Caqr.Pipeline.verification with
    | None -> []
    | Some v -> [ ("verdict", Json.String (Verify.Verdict.to_string v)) ]
  in
  let qasm =
    if emit_qasm then
      [
        ( "qasm3",
          Json.String
            (Quantum.Qasm.to_string
               (fst (Quantum.Circuit.compact_qubits r.Caqr.Pipeline.physical)))
        );
      ]
    else []
  in
  Json.Obj (base @ anytime @ degraded @ verdict @ qasm)

(* Compute one compile/verify/simulate result. Runs under the request's
   scoped budget; the caller wraps with Guard.Error.protect. Returns the
   result object and whether it may be cached (degraded and anytime
   reports are deadline-dependent, so they are not). *)
let compute ~name ~input ~circuit:_ (req : Protocol.request) options device =
  let r = Caqr.Pipeline.compile ~options device req.strategy input in
  let body = result_of_report ~name ~emit_qasm:req.emit_qasm r in
  let body =
    match req.op with
    | Protocol.Simulate ->
      let counts =
        Sim.Executor.run ~jobs:1 ~seed:req.seed ~shots:req.shots
          r.Caqr.Pipeline.physical
      in
      let outcomes =
        List.map
          (fun (outcome, count) ->
            Json.List [ Json.Int outcome; Json.Int count ])
          (Sim.Counts.to_list counts)
      in
      (match body with
       | Json.Obj fields ->
         Json.Obj
           (fields
           @ [
               ("shots", Json.Int req.shots);
               ("sim_seed", Json.Int req.seed);
               ("counts", Json.List outcomes);
             ])
       | j -> j)
    | _ -> body
  in
  ( body,
    r.Caqr.Pipeline.degraded = []
    && Caqr.Quality.is_exact r.Caqr.Pipeline.quality )

let ok_fields (req : Protocol.request) ~cache_state ~key ~result =
  [
    ("ok", Json.Bool true);
    ("op", Json.String (Protocol.op_name req.op));
    ("cache", Json.String cache_state);
    ("key", Json.String key);
    ("result", Json.Raw result);
  ]

let handle_work t (req : Protocol.request) =
  match resolve_input req with
  | Error e -> Protocol.error_response ~id:req.id e
  | Ok (name, input, circuit, digest) ->
    let options = options_of req in
    let key =
      Cache.key ~op:(Protocol.op_name req.op) ~digest
        ~fingerprint:(fingerprint options req)
    in
    let cached = if req.no_cache then None else Cache.find t.cache key in
    (match cached with
     | Some result ->
       Protocol.response ~id:req.id
         (ok_fields req ~cache_state:"hit" ~key ~result)
     | None ->
       let device =
         Hardware.Device.heavy_hex_for circuit.Quantum.Circuit.num_qubits
       in
       let deadline_ms = effective_deadline t req in
       (match
          Guard.Error.protect ~stage:"serve.request" (fun () ->
              (* The scoped budget covers compile, verification and
                 simulation; Exec.Pool re-installs it in any domain this
                 request fans out to. *)
              Guard.Budget.scoped (Guard.Budget.make ?ms:deadline_ms ())
                (fun () -> compute ~name ~input ~circuit req options device))
        with
        | Ok (body, cacheable) ->
          let result = Json.to_string body in
          if cacheable && not req.no_cache then Cache.store t.cache key result;
          let state = if req.no_cache then "none" else "miss" in
          Protocol.response ~id:req.id
            (ok_fields req ~cache_state:state ~key ~result)
        | Error e ->
          Obs.Metrics.incr "serve.errors";
          Protocol.error_response ~id:req.id e))

let stats_response t (req : Protocol.request) =
  let result =
    Json.Obj
      [
        ("engine", Json.String Caqr.Version.engine);
        ("proto", Json.Int Protocol.version);
        ("addr", Json.String (Transport.addr_to_string t.config.addr));
        ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
        ("requests", Json.Int (Atomic.get t.requests));
        ("inflight", Json.Int (Guard.Gate.inflight t.gate));
        ("max_inflight", Json.Int (Guard.Gate.limit t.gate));
        ( "cache",
          Json.Obj
            (List.map (fun (k, v) -> (k, Json.Int v)) (Cache.stats t.cache)) );
        ("metrics", Json.Raw (Obs.Metrics.to_json (Obs.Metrics.snapshot ())));
      ]
  in
  Protocol.response ~id:req.id
    [
      ("ok", Json.Bool true);
      ("op", Json.String "stats");
      ("result", Json.Raw (Json.to_string result));
    ]

(* Liveness for probes and drain orchestration: like stats it bypasses
   the admission gate (an overloaded daemon must still say it is alive,
   a draining one that it is leaving), but it is cheap enough — no
   cache stats, no metrics dump — to poll every second. *)
let health_response t (req : Protocol.request) =
  let status = if draining t then "draining" else "serving" in
  let result =
    Json.Obj
      [
        ("status", Json.String status);
        ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
        ("requests", Json.Int (Atomic.get t.requests));
        ("inflight", Json.Int (Guard.Gate.inflight t.gate));
        ("conns_active", Json.Int (Atomic.get t.active_conns));
        ("crew_respawns", Json.Int (Obs.Metrics.count "exec.crew.respawns"));
      ]
  in
  Protocol.response ~id:req.id
    [
      ("ok", Json.Bool true);
      ("op", Json.String "health");
      ("result", Json.Raw (Json.to_string result));
    ]

let overloaded_error t =
  Guard.Error.v ~recoverable:true ~stage:"serve.admission"
    ~site:"request.overload"
    (Printf.sprintf "server at max_inflight=%d, retry later"
       (Guard.Gate.limit t.gate))

let handle_line t line =
  Obs.Metrics.incr "serve.requests";
  Atomic.incr t.requests;
  if String.length line > t.config.max_request_bytes then
    ( Protocol.error_response ~id:Json.Null
        (Guard.Error.v ~stage:"serve.admission" ~site:"request.size"
           (Printf.sprintf "request line exceeds %d bytes"
              t.config.max_request_bytes)),
      false )
  else
    match Protocol.of_line line with
    | Error msg ->
      ( Protocol.error_response ~id:Json.Null
          (Guard.Error.v ~stage:"serve.protocol" ~site:"request.parse" msg),
        false )
    | Ok req when req.Protocol.proto > Protocol.version ->
      (* A client from the future: fail loudly (it can downgrade its
         request) rather than answer with semantics it may mis-parse. *)
      ( Protocol.error_response ~id:req.Protocol.id
          (Guard.Error.v ~stage:"serve.protocol" ~site:"request.version"
             (Printf.sprintf "request speaks proto %d, this server speaks %d"
                req.Protocol.proto Protocol.version)),
        false )
    | Ok req ->
      Obs.Metrics.incr ("serve.op." ^ Protocol.op_name req.op);
      (match req.op with
       | Protocol.Shutdown ->
         ( Protocol.response ~id:req.id
             [
               ("ok", Json.Bool true);
               ("op", Json.String "shutdown");
               ("result", Json.Obj [ ("stopping", Json.Bool true) ]);
             ],
           true )
       | Protocol.Stats -> (stats_response t req, false)
       | Protocol.Health -> (health_response t req, false)
       | Protocol.Compile | Protocol.Verify | Protocol.Simulate ->
         (* Work verbs pass the admission gate; stats and shutdown stay
            answerable under overload so operators can see why and stop
            the daemon. Rejection is immediate — load sheds instead of
            queueing unboundedly. *)
         (match Guard.Gate.with_slot t.gate (fun () -> handle_work t req) with
          | Some response -> (response, false)
          | None -> (Protocol.error_response ~id:req.id (overloaded_error t), false)))

(* handle_line never raises and touches only domain-safe state (cache
   mutex, gate atomic, metrics), so a pipelined batch fans out as-is. *)
let handle_batch t lines =
  let n = List.length lines in
  if n = 0 then ([], false)
  else begin
    Obs.Metrics.incr "serve.batches";
    if n > 1 then Obs.Metrics.incr ~by:n "serve.batched.requests";
    let results =
      if n = 1 then List.map (handle_line t) lines
      else Exec.Pool.map ~jobs:t.config.jobs (handle_line t) lines
    in
    (List.map fst results, List.exists snd results)
  end

(* ---- the serving loop ---- *)

(* How often blocked handler domains and the acceptor wake up to check
   the stop flag. Bounds shutdown latency; invisible otherwise. *)
let poll_interval_s = 0.25
let accept_interval_s = 0.05

let conn_timeout_s t =
  Option.map (fun ms -> float_of_int ms /. 1000.) t.config.conn_timeout_ms

let conn_timeout_error t conn =
  Guard.Error.v ~recoverable:true ~stage:"serve.conn" ~site:"request.timeout"
    (Printf.sprintf
       "no complete request within %d ms (%d unframed bytes pending); \
        closing connection"
       (Option.value ~default:0 t.config.conn_timeout_ms)
       (Transport.pending_bytes conn))

(* One connection, owned by one handler domain. recv_batch waits for a
   request, then drains whatever the client already pipelined — capped
   at max_batch — and that run is the batch handed to the pool. The
   poll interval bounds how long a blocked handler takes to notice the
   stop flag; the connection deadline is separate and absolute, clocked
   from the last COMPLETED batch so a peer trickling bytes (or half a
   length prefix) cannot reset it. While draining, the connection gets
   one short poll to pick up anything already pipelined, then closes. *)
let serve_conn t conn =
  Obs.Metrics.incr "serve.connections";
  let timeout = conn_timeout_s t in
  let last_done = ref (Unix.gettimeofday ()) in
  let deadline_left () =
    match timeout with
    | None -> infinity
    | Some dt -> !last_done +. dt -. Unix.gettimeofday ()
  in
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      let is_draining = draining t in
      let poll =
        if is_draining then 0.05
        else Float.min poll_interval_s (Float.max 0.001 (deadline_left ()))
      in
      match
        Transport.recv_batch ~timeout_s:poll ~max:t.config.max_batch conn
      with
      | Transport.Eof -> ()
      | Transport.Timeout ->
        if is_draining then () (* idle under drain: close *)
        else if deadline_left () <= 0. then begin
          (* Slow-loris verdict: tell the peer why, then hang up. The
             send itself runs under the same deadline discipline. *)
          Obs.Metrics.incr "serve.conn.timeout";
          try
            Transport.send ?timeout_s:timeout conn
              [ Protocol.error_response ~id:Json.Null (conn_timeout_error t conn) ]
          with Guard.Error.Guard_error _ | Unix.Unix_error _ -> ()
        end
        else loop ()
      | Transport.Msgs batch ->
        let responses, stop' = handle_batch t batch in
        Transport.send ?timeout_s:timeout conn responses;
        last_done := Unix.gettimeofday ();
        if stop' then Atomic.set t.stop true else loop ()
    end
  in
  (* Containment boundary: a hostile peer must cost at most its own
     connection. Frame violations, injected wire faults, and write
     stalls surface here as structured errors; anything that still
     escapes kills the handler domain and is the supervised crew's
     problem (respawn), not the daemon's. *)
  try loop () with
  | Guard.Error.Guard_error e ->
    Obs.Metrics.incr "serve.conn.errors";
    (try
       Transport.send ?timeout_s:timeout conn
         [ Protocol.error_response ~id:Json.Null e ]
     with Guard.Error.Guard_error _ | Unix.Unix_error _ | Invalid_argument _ ->
       ())
  | Unix.Unix_error _ -> Obs.Metrics.incr "serve.conn.errors"

let install_drain_signals t =
  let on_signal _ = drain t in
  let install s =
    try Some (s, Stdlib.Sys.signal s (Stdlib.Sys.Signal_handle on_signal))
    with Invalid_argument _ | Stdlib.Sys_error _ -> None
  in
  List.filter_map install [ Stdlib.Sys.sigterm; Stdlib.Sys.sigint ]

let restore_signals saved =
  List.iter
    (fun (s, old) ->
      try Stdlib.Sys.set_signal s old
      with Invalid_argument _ | Stdlib.Sys_error _ -> ())
    saved

let run ?ready t =
  let listener = Transport.bind t.config.addr in
  (* Handler domains each own whole connections; requests inside one
     connection still batch over Exec.Pool. Every mutable thing a
     handler touches — cache, gate, metrics, the stop flag — is
     domain-safe, so connections are independent up to cache timing,
     and responses stay content-addressed either way. *)
  let crew =
    Exec.Crew.create ~domains:t.config.handler_domains (fun conn ->
        Atomic.incr t.active_conns;
        Obs.Metrics.set_gauge "serve.conns.active" (Atomic.get t.active_conns);
        Fun.protect
          ~finally:(fun () ->
            Transport.close conn;
            Atomic.decr t.active_conns;
            Obs.Metrics.set_gauge "serve.conns.active"
              (Atomic.get t.active_conns))
          (fun () -> serve_conn t conn))
  in
  let saved_signals = install_drain_signals t in
  (match ready with
  | Some f -> f (Transport.bound_addr listener)
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      restore_signals saved_signals;
      Exec.Crew.join crew;
      Transport.close_listener listener;
      (* Always persist the disk tier's LRU order on the way out: both
         the shutdown verb and a drained SIGTERM are clean exits. *)
      Cache.flush t.cache;
      Obs.Metrics.set_gauge "serve.draining" 0)
    (fun () ->
      while not (Atomic.get t.stop || draining t) do
        match Transport.accept ~timeout_s:accept_interval_s listener with
        | Some conn ->
          if not (Exec.Crew.submit crew conn) then Transport.close conn
        | None -> ()
      done;
      if draining t && not (Atomic.get t.stop) then begin
        (* Drain: stop accepting at once (close the listener so peers
           get ECONNREFUSED, not a hang), let in-flight connections
           finish under the drain deadline, then drop the stop flag —
           which ends any connection that outstayed its welcome. *)
        Transport.close_listener listener;
        let deadline =
          Unix.gettimeofday ()
          +. (float_of_int t.config.drain_deadline_ms /. 1000.)
        in
        while
          Atomic.get t.active_conns > 0
          && (not (Atomic.get t.stop))
          && Unix.gettimeofday () < deadline
        do
          Unix.sleepf 0.02
        done;
        Atomic.set t.stop true
      end)
