(** The compilation service: a long-lived daemon answering
    newline-delimited JSON requests (see {!Protocol}) over a Unix-domain
    socket, batching pipelined requests onto {!Exec.Pool} and answering
    repeats from the content-addressed {!Cache}.

    Design invariants:

    - {b Re-entrant}: every request compiles with its own
      [Pipeline.options]; nothing request-scoped touches process
      globals. Per-request deadlines are scoped {!Guard.Budget} values,
      so two requests running on different pool domains cannot clobber
      each other's budget.
    - {b Isolated failure}: request handling is wrapped in
      {!Guard.Error.protect}; a failing request (including a
      [Budget_exceeded] deadline trip) produces one structured error
      response and the daemon keeps serving.
    - {b Deterministic responses}: the [result] object of a [compile] /
      [verify] / [simulate] response is a pure function of (circuit
      digest, options fingerprint, engine version) — exactly the cache
      key — so a cache hit is byte-identical to the cold computation.
      Reports that only exist by grace of the degradation ladder
      ([degraded] non-empty) are never cached.
    - {b Admission control}: oversized request lines are rejected with a
      structured error before parsing; per-request deadlines are capped
      by [max_deadline_ms]; one dispatch batches at most [max_batch]
      requests. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  jobs : int;  (** pool domains for batch dispatch *)
  mem_capacity : int;  (** in-memory cache entries (LRU) *)
  cache_dir : string option;  (** on-disk cache tier root *)
  default_deadline_ms : int option;
      (** budget for requests that carry none *)
  max_deadline_ms : int option;
      (** admission cap: requested deadlines are clamped to this *)
  max_batch : int;  (** most requests dispatched in one pool batch *)
  max_request_bytes : int;  (** admission cap on one request line *)
}

(** [socket = "caqr.sock"], [jobs = 1], [mem_capacity = 256], no disk
    tier, no deadlines, [max_batch = 64],
    [max_request_bytes = 10_000_000]. *)
val default_config : config

type t

val create : config -> t

(** The server's cache, exposed for the [stats] verb and tests. *)
val cache : t -> Cache.t

(** [handle_line t line] maps one request line to one response line
    (no trailing newline) and whether the daemon should stop — the
    socket-free core, also the unit-test surface. Never raises. *)
val handle_line : t -> string -> string * bool

(** [handle_batch t lines] handles a batch of pipelined request lines,
    fanning them over [config.jobs] pool domains. Responses come back
    in request order; the stop flag is the disjunction. *)
val handle_batch : t -> string list -> string list * bool

(** [run t] binds the socket (replacing a stale socket file), serves
    connections sequentially — batching whatever pipelined lines each
    read delivers — and returns after a [shutdown] request, removing
    the socket file. *)
val run : t -> unit
