(** The compilation service: a long-lived daemon answering JSON
    requests (see {!Protocol}) over a {!Transport} address — Unix
    socket or TCP — with a fixed crew of connection-handler domains,
    batching pipelined requests onto {!Exec.Pool} and answering repeats
    from the content-addressed {!Cache}.

    Design invariants:

    - {b Re-entrant}: every request compiles with its own
      [Pipeline.options]; nothing request-scoped touches process
      globals. Per-request deadlines are scoped {!Guard.Budget} values,
      so two requests running on different domains cannot clobber each
      other's budget.
    - {b Isolated failure}: request handling is wrapped in
      {!Guard.Error.protect}; a failing request (including a
      [Budget_exceeded] deadline trip) produces one structured error
      response and the daemon keeps serving. A handler-domain exception
      is contained by {!Exec.Crew} — one broken connection cannot take
      the daemon down.
    - {b Deterministic responses}: the [result] object of a [compile] /
      [verify] / [simulate] response is a pure function of (circuit
      digest, options fingerprint, engine version) — exactly the cache
      key — so a cache hit is byte-identical to the cold computation,
      and N clients interleaved arbitrarily read the same bytes a
      sequential replay would. Reports that only exist by grace of the
      degradation ladder ([degraded] non-empty) are never cached.
    - {b Admission control}: oversized request lines are rejected with
      a structured error before parsing; requests claiming a protocol
      version newer than {!Protocol.version} are rejected (stage
      ["serve.protocol"], site ["request.version"]); per-request
      deadlines are capped by [max_deadline_ms]; one dispatch batches
      at most [max_batch] requests.
    - {b Back-pressure}: at most [max_inflight] work requests
      ([compile]/[verify]/[simulate]) run at once, enforced by a
      {!Guard.Gate}. Past the limit the daemon answers immediately with
      a structured, [recoverable] error (stage ["serve.admission"],
      site ["request.overload"]) and bumps
      ["serve.rejected.overload"] — load sheds instead of queueing
      unboundedly. [stats] and [shutdown] bypass the gate so an
      overloaded daemon can still be inspected and stopped. *)

type config = {
  addr : Transport.addr;  (** where to listen; framing follows *)
  jobs : int;  (** pool domains for batch dispatch *)
  handler_domains : int;  (** crew size: concurrent connections served *)
  max_inflight : int;
      (** work requests admitted at once; [<= 0] = unlimited *)
  mem_capacity : int;  (** in-memory cache entries (LRU) *)
  cache_dir : string option;  (** on-disk cache tier root *)
  disk_budget_bytes : int option;
      (** byte cap on the disk cache tier; [None] = unbounded *)
  default_deadline_ms : int option;
      (** budget for requests that carry none *)
  max_deadline_ms : int option;
      (** admission cap: requested deadlines are clamped to this *)
  max_batch : int;  (** most requests dispatched in one pool batch *)
  max_request_bytes : int;  (** admission cap on one request message *)
  conn_timeout_ms : int option;
      (** connection deadline, clocked from the last completed batch: a
          peer that completes no request for this long — idle, trickling
          bytes slow-loris style, or refusing to drain our writes — is
          sent a structured recoverable error (stage ["serve.conn"],
          site ["request.timeout"], counter ["serve.conn.timeout"]) and
          closed. [None] = connections never expire. *)
  drain_deadline_ms : int;
      (** how long in-flight connections get to finish after
          SIGTERM/SIGINT (or {!drain}) before the hard stop falls. *)
}

(** [addr = Unix "caqr.sock"], [jobs = 1], [handler_domains = 4],
    [max_inflight = 0] (unlimited), [mem_capacity = 256], no disk tier,
    no disk budget, no deadlines, [max_batch = 64],
    [max_request_bytes = 10_000_000], [conn_timeout_ms = None],
    [drain_deadline_ms = 5000]. *)
val default_config : config

type t

val create : config -> t

(** Flip the server into draining mode, exactly as SIGTERM does: the
    accept loop closes the listener (new connections are refused at the
    socket), in-flight connections finish under [drain_deadline_ms],
    the cache index is flushed, and {!run} returns. Gauge
    ["serve.draining"] tracks the phase. Exposed so tests and embedders
    can exercise graceful shutdown without delivering a process-wide
    signal. *)
val drain : t -> unit

(** Whether {!drain} (or a signal) has been requested. The [health]
    verb reports this as ["draining"]. *)
val draining : t -> bool

(** The server's cache, exposed for the [stats] verb and tests. *)
val cache : t -> Cache.t

(** The admission gate in front of the work verbs. Exposed so tests can
    occupy slots and observe deterministic overload rejection. *)
val gate : t -> Guard.Gate.t

(** [handle_line t line] maps one request message to one response
    message and whether the daemon should stop — the transport-free
    core, also the unit-test surface. Never raises. *)
val handle_line : t -> string -> string * bool

(** [handle_batch t lines] handles a batch of pipelined request
    messages, fanning them over [config.jobs] pool domains. Responses
    come back in request order; the stop flag is the disjunction. *)
val handle_batch : t -> string list -> string list * bool

(** [run ?ready t] binds [config.addr] and serves until a [shutdown]
    request or a drain (SIGTERM/SIGINT/{!drain}): a supervised crew of
    [handler_domains] domains each owns whole connections while the
    main domain accepts. [ready] (used by tests and the CLI's startup
    message) receives the bound address once listening — for
    [tcp:HOST:0] that includes the real port. While running, SIGTERM
    and SIGINT are rebound to request a drain (previous dispositions
    restored on return). Returns after all handler domains have
    drained; Unix listeners remove their socket file; the cache index
    is flushed on every clean exit. *)
val run : ?ready:(Transport.addr -> unit) -> t -> unit
