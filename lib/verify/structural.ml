type pair = { src : int; dst : int }

(* ---------------------------------------------------- well-formedness *)

let check_wellformed (c : Quantum.Circuit.t) =
  let written = Array.make (max 1 c.num_clbits) false in
  let bad = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !bad = None then bad := Some s) fmt in
  Array.iteri
    (fun i (g : Quantum.Gate.t) ->
      let kind = g.Quantum.Gate.kind in
      List.iter
        (fun q ->
          if q < 0 || q >= c.num_qubits then
            fail "gate %d: qubit %d out of range (%d wires)" i q c.num_qubits)
        (Quantum.Gate.qubits kind);
      List.iter
        (fun cb ->
          if cb < 0 || cb >= c.num_clbits then
            fail "gate %d: clbit %d out of range (%d clbits)" i cb c.num_clbits)
        (Quantum.Gate.clbits kind);
      (match Quantum.Gate.qubits kind with
       | [ a; b ] when a = b -> fail "gate %d: two-qubit gate on equal wires q%d" i a
       | _ -> ());
      match kind with
      | Quantum.Gate.Measure (_, cb) ->
        if cb >= 0 && cb < c.num_clbits then written.(cb) <- true
      | Quantum.Gate.If_x (cb, q) ->
        if cb >= 0 && cb < c.num_clbits && not written.(cb) then
          fail
            "gate %d: conditional X on q%d reads clbit %d before any \
             measurement writes it (measure/init order swapped?)"
            i q cb
      | _ -> ())
    c.gates;
  match !bad with None -> Verdict.Equivalent | Some s -> Verdict.violation s

(* ------------------------------------------------------ regular pairs *)

(* Independent re-derivation of the transform, used only to step the
   condition checks from pair k to pair k+1. Kahn emission with a dummy
   reset node between src's gates and dst's gates; always allocates a
   fresh scratch clbit (the compiler's existing-clbit optimization does
   not change the dependence structure the conditions read). *)
let apply_pair (c : Quantum.Circuit.t) { src; dst } =
  let dag = Quantum.Dag.build c in
  let n = Quantum.Dag.num_nodes dag in
  let dummy = n in
  let succs = Array.make (n + 1) [] in
  let indeg = Array.make (n + 1) 0 in
  let add_edge u v =
    succs.(u) <- v :: succs.(u);
    indeg.(v) <- indeg.(v) + 1
  in
  for i = 0 to n - 1 do
    List.iter (add_edge i) (Quantum.Dag.succs dag i)
  done;
  List.iter (fun g -> add_edge g dummy) (Quantum.Dag.gates_on_qubit dag src);
  List.iter (fun g -> add_edge dummy g) (Quantum.Dag.gates_on_qubit dag dst);
  let scratch = c.num_clbits in
  let rename q = if q = dst then src else q in
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  for i = 0 to n do
    if indeg.(i) = 0 then ready := Iset.add i !ready
  done;
  let rev = ref [] in
  let emitted = ref 0 in
  while not (Iset.is_empty !ready) do
    let i = Iset.min_elt !ready in
    ready := Iset.remove i !ready;
    incr emitted;
    if i = dummy then
      rev :=
        Quantum.Gate.If_x (scratch, src)
        :: Quantum.Gate.Measure (src, scratch)
        :: !rev
    else
      rev :=
        Quantum.Gate.map_qubits rename c.gates.(i).Quantum.Gate.kind :: !rev;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then ready := Iset.add j !ready)
      succs.(i)
  done;
  if !emitted <> n + 1 then None
  else
    Some
      (Quantum.Circuit.of_kinds ~num_qubits:c.num_qubits
         ~num_clbits:(c.num_clbits + 1) (List.rev !rev))

let check_one_pair (c : Quantum.Circuit.t) k { src; dst } =
  if src = dst || src < 0 || dst < 0 || src >= c.num_qubits || dst >= c.num_qubits
  then Verdict.violationf "pair %d (q%d -> q%d): operands invalid" k src dst
  else begin
    let dag = Quantum.Dag.build c in
    let on_src = Quantum.Dag.gates_on_qubit dag src in
    let on_dst = Quantum.Dag.gates_on_qubit dag dst in
    if on_src = [] || on_dst = [] then
      Verdict.violationf "pair %d (q%d -> q%d): a wire carries no gate" k src dst
    else begin
      let couples =
        Array.exists
          (fun (g : Quantum.Gate.t) ->
            (* Barriers are scheduling directives, not interactions: a
               barrier spanning both wires constrains ordering (checked by
               Condition 2 through the DAG below) but does not couple them. *)
            (not (Quantum.Gate.is_barrier g.Quantum.Gate.kind))
            &&
            let qs = Quantum.Gate.qubits g.Quantum.Gate.kind in
            List.mem src qs && List.mem dst qs)
          c.gates
      in
      if couples then
        Verdict.violationf
          "pair %d (q%d -> q%d): Condition 1 fails — a gate couples both wires"
          k src dst
      else begin
        let reach = Quantum.Reachability.build dag in
        if Quantum.Reachability.any_path reach on_dst on_src then
          Verdict.violationf
            "pair %d (q%d -> q%d): Condition 2 fails — a gate on q%d \
             transitively depends on a gate on q%d"
            k src dst src dst
        else Verdict.Equivalent
      end
    end
  end

let check_pairs ~(original : Quantum.Circuit.t) pairs =
  let rec go c k = function
    | [] -> Verdict.Equivalent
    | p :: rest ->
      (match check_one_pair c k p with
       | Verdict.Equivalent ->
         (match apply_pair c p with
          | Some c' -> go c' (k + 1) rest
          | None ->
            Verdict.violationf
              "pair %d (q%d -> q%d): applying the reuse closes a dependence \
               cycle"
              k p.src p.dst)
       | v -> v)
  in
  go original 0 pairs

(* --------------------------------------------------- commutable pairs *)

let check_commutable_pairs ~graph pairs =
  let n = Galg.Graph.order graph in
  let bad = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !bad = None then bad := Some s) fmt in
  let seen_src = Array.make (max 1 n) false in
  let seen_dst = Array.make (max 1 n) false in
  List.iteri
    (fun k { src; dst } ->
      if src = dst || src < 0 || dst < 0 || src >= n || dst >= n then
        fail "pair %d (v%d -> v%d): operands invalid" k src dst
      else begin
        if seen_src.(src) then fail "pair %d: v%d is reused as src twice" k src;
        if seen_dst.(dst) then fail "pair %d: v%d is hosted as dst twice" k dst;
        if src < n then seen_src.(src) <- true;
        if dst < n then seen_dst.(dst) <- true
      end)
    pairs;
  (match !bad with
   | Some _ -> ()
   | None ->
     (* Chains: follow src -> dst successor links from each head. Every
        chain's vertex set must be independent in the problem graph. *)
     let next = Array.make (max 1 n) (-1) in
     List.iter (fun { src; dst } -> next.(src) <- dst) pairs;
     for head = 0 to n - 1 do
       if not seen_dst.(head) then begin
         let members = ref [] in
         let v = ref head in
         let steps = ref 0 in
         while !v >= 0 && !steps <= n do
           members := !v :: !members;
           v := next.(!v);
           incr steps
         done;
         if !steps > n then fail "chain from v%d never terminates (cycle)" head;
         let m = !members in
         List.iter
           (fun a ->
             List.iter
               (fun b ->
                 if a < b && Galg.Graph.has_edge graph a b then
                   fail
                     "chain through v%d hosts interacting vertices v%d and v%d"
                     head a b)
               m)
           m
       end
     done;
     (* Any vertex still reachable only through a cycle (never a head)? *)
     let covered = Array.make (max 1 n) false in
     for head = 0 to n - 1 do
       if not seen_dst.(head) then begin
         let v = ref head and steps = ref 0 in
         while !v >= 0 && !steps <= n do
           covered.(!v) <- true;
           v := next.(!v);
           incr steps
         done
       end
     done;
     List.iteri
       (fun k { src; dst } ->
         if not (covered.(src) && covered.(dst)) then
           fail "pair %d (v%d -> v%d): part of a reuse cycle" k src dst)
       pairs;
     (* Pair precedence digraph must be acyclic: p1 -> p2 when p1.dst
        equals or interacts with p2.src. *)
     (match !bad with
      | Some _ -> ()
      | None ->
        let ps = Array.of_list pairs in
        let m = Array.length ps in
        let adj i j =
          i <> j
          && (ps.(i).dst = ps.(j).src
             || Galg.Graph.has_edge graph ps.(i).dst ps.(j).src)
        in
        (* DFS cycle detection: 0 = white, 1 = grey, 2 = black. *)
        let color = Array.make m 0 in
        let rec dfs i =
          color.(i) <- 1;
          for j = 0 to m - 1 do
            if adj i j then
              if color.(j) = 1 then
                fail
                  "pair digraph has a cycle through (v%d -> v%d): the claimed \
                   order cannot be scheduled"
                  ps.(i).src ps.(i).dst
              else if color.(j) = 0 then dfs j
          done;
          color.(i) <- 2
        in
        for i = 0 to m - 1 do
          if color.(i) = 0 then dfs i
        done));
  match !bad with None -> Verdict.Equivalent | Some s -> Verdict.violation s

(* ------------------------------------------------------------ device *)

let check_coupling device (c : Quantum.Circuit.t) =
  let nd = Hardware.Device.num_qubits device in
  let bad = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !bad = None then bad := Some s) fmt in
  if c.num_qubits > nd then
    fail "circuit spans %d wires but the device has %d qubits" c.num_qubits nd;
  Array.iteri
    (fun i (g : Quantum.Gate.t) ->
      let kind = g.Quantum.Gate.kind in
      if Quantum.Gate.is_two_q kind then
        match Quantum.Gate.qubits kind with
        | [ a; b ] ->
          if a >= nd || b >= nd then
            fail "gate %d: wire beyond the device (q%d, q%d)" i a b
          else if not (Hardware.Device.adjacent device a b) then
            fail "gate %d: two-qubit gate on uncoupled qubits q%d and q%d" i a b
        | _ -> ())
    c.gates;
  match !bad with None -> Verdict.Equivalent | Some s -> Verdict.violation s

(* -------------------------------------------------------- accounting *)

let measure_counts (c : Quantum.Circuit.t) upto =
  let counts = Array.make (max 1 upto) 0 in
  Array.iter
    (fun (g : Quantum.Gate.t) ->
      match g.Quantum.Gate.kind with
      | Quantum.Gate.Measure (_, cb) when cb < upto -> counts.(cb) <- counts.(cb) + 1
      | _ -> ())
    c.gates;
  counts

let check_accounting ~(logical : Quantum.Circuit.t)
    ~(physical : Quantum.Circuit.t) =
  if physical.num_clbits < logical.num_clbits then
    Verdict.violationf
      "physical circuit has %d clbits but the logical program needs %d"
      physical.num_clbits logical.num_clbits
  else begin
    let want = measure_counts logical logical.num_clbits in
    let got = measure_counts physical logical.num_clbits in
    let bad = ref None in
    Array.iteri
      (fun cb w ->
        if !bad = None && got.(cb) <> w then
          bad :=
            Some
              (Printf.sprintf
                 "program clbit %d is written %d time(s) logically but %d \
                  time(s) physically"
                 cb w got.(cb)))
      want;
    match !bad with None -> Verdict.Equivalent | Some s -> Verdict.violation s
  end

let check_artifact device ~logical ~physical =
  Verdict.combine
    [
      check_wellformed logical;
      check_wellformed physical;
      check_coupling device physical;
      check_accounting ~logical ~physical;
    ]
