(** Exact semantic equivalence for small circuits.

    Both circuits are interpreted as channels from |0...0> to a classical
    outcome distribution: the checker walks the gate list, branching on
    every mid-circuit measurement and reset (weighting each branch by its
    Born probability and pruning zero-probability branches), so dynamic
    circuits get their exact distribution instead of a sampled one. A
    trailing block of measurements is read off the final state vector in
    one pass, which keeps e.g. a measured QAOA layer from exploding into
    2^n branches.

    Two circuits are equivalent when their distributions agree on the
    shared classical bits (the transform may append scratch clbits for
    conditional resets; those are marginalized out). This is exactly the
    §3.1 claim being validated: reuse preserves the program's outcome
    distribution, including the qubit relabeling induced by the pairs —
    relabeling never shows up in clbit space. *)

type config = {
  max_qubits : int;  (** refuse circuits wider than this after compaction (default 12) *)
  max_clbits : int;  (** bound on the outcome-space exponent (default 20) *)
  max_branches : int;  (** measurement-branch budget before giving up (default 16384) *)
  tolerance : float;  (** L1 slack for float accumulation (default 1e-6) *)
}

val default : config

(** [distribution ?config c] is the exact outcome distribution of [c]
    over its classical register (array of length [2^num_clbits]), or
    [Error reason] when the circuit exceeds the configured budgets. *)
val distribution :
  ?config:config -> Quantum.Circuit.t -> (float array, string) result

(** [check ?config ~original ~transformed ()] compares exact
    distributions on the shared clbits. [Inconclusive] when either side
    exceeds the budgets. *)
val check :
  ?config:config ->
  original:Quantum.Circuit.t ->
  transformed:Quantum.Circuit.t ->
  unit ->
  Verdict.t
