type config = {
  probes : int;
  shots : int;
  tolerance : float;
  max_qubits : int;
  product_inputs : int list;
}

let default =
  { probes = 4; shots = 512; tolerance = 0.; max_qubits = 22; product_inputs = [] }

(* A side with only trailing measurements has a shot-independent
   distribution, so one exact pass beats sampling (and removes the
   sampling noise from that side of the comparison). *)
let only_final_measurements (c : Quantum.Circuit.t) =
  let seen = Array.make (max 1 c.num_qubits) false in
  let ok = ref true in
  Array.iter
    (fun (g : Quantum.Gate.t) ->
      match g.Quantum.Gate.kind with
      | Quantum.Gate.Measure (q, _) -> seen.(q) <- true
      | Quantum.Gate.Reset _ | Quantum.Gate.If_x _ -> ok := false
      | k ->
        List.iter (fun q -> if seen.(q) then ok := false) (Quantum.Gate.qubits k))
    c.gates;
  !ok

let prepend prefix (c : Quantum.Circuit.t) =
  if prefix = [] then c
  else
    Quantum.Circuit.of_kinds ~num_qubits:c.num_qubits ~num_clbits:c.num_clbits
      (prefix
      @ Array.to_list (Array.map (fun g -> g.Quantum.Gate.kind) c.gates))

(* Outcome statistics on the low [shared] clbits: P(bit i = 1) for every
   bit and P(bit i <> bit j) for every pair. *)
let statistics counts shared =
  let probs = Sim.Counts.to_probs counts in
  let marg = Array.make shared 0. in
  let xor = Array.make_matrix shared shared 0. in
  List.iter
    (fun (outcome, p) ->
      for i = 0 to shared - 1 do
        if outcome land (1 lsl i) <> 0 then marg.(i) <- marg.(i) +. p;
        for j = i + 1 to shared - 1 do
          if (outcome land (1 lsl i) <> 0) <> (outcome land (1 lsl j) <> 0) then
            xor.(i).(j) <- xor.(i).(j) +. p
        done
      done)
    probs;
  (marg, xor)

let counts_of ~seed ~shots circuit =
  if only_final_measurements circuit then Sim.Executor.distribution ~seed circuit
  else Sim.Executor.run ~seed ~shots circuit

let random_prefix rng qubits =
  List.filter_map
    (fun q ->
      if Random.State.bool rng then
        Some
          (Quantum.Gate.One_q
             (Quantum.Gate.Ry (0.3 +. Random.State.float rng 2.5), q))
      else None)
    qubits

let check ?(config = default) ~seed ~(original : Quantum.Circuit.t)
    ~(transformed : Quantum.Circuit.t) () =
  (* Elide routing SWAPs up front (exact for outcome statistics): every
     probe is a full-width state-vector pass, and a routed circuit's
     swap traffic can double its active width. The Ry prefixes below
     address start-of-circuit wires, which elision never relabels. *)
  let original = Quantum.Optimize.elide_swaps original in
  let transformed = Quantum.Optimize.elide_swaps transformed in
  let shared =
    min original.Quantum.Circuit.num_clbits transformed.Quantum.Circuit.num_clbits
  in
  let width c =
    (fst (Quantum.Circuit.compact_qubits c)).Quantum.Circuit.num_qubits
  in
  if shared = 0 then
    Verdict.Inconclusive "no classical output to compare (0 shared clbits)"
  else if width original > config.max_qubits then
    Verdict.inconclusivef "original is %d qubits wide (probe limit %d)"
      (width original) config.max_qubits
  else if width transformed > config.max_qubits then
    Verdict.inconclusivef "transformed is %d qubits wide (probe limit %d)"
      (width transformed) config.max_qubits
  else begin
    let tol =
      if config.tolerance > 0. then config.tolerance
      else 5. /. sqrt (float_of_int config.shots)
    in
    let verdict = ref Verdict.Equivalent in
    let probe = ref 0 in
    while Verdict.is_equivalent !verdict && !probe < config.probes do
      let i = !probe in
      let probe_seed = seed + (7919 * i) in
      let prefix =
        if i = 0 || config.product_inputs = [] then []
        else
          random_prefix
            (Random.State.make [| seed; i; 0x9e37 |])
            config.product_inputs
      in
      let co =
        counts_of ~seed:probe_seed ~shots:config.shots (prepend prefix original)
      in
      let ct =
        counts_of ~seed:(probe_seed + 1) ~shots:config.shots
          (prepend prefix transformed)
      in
      let mo, xo = statistics co shared in
      let mt, xt = statistics ct shared in
      for b = 0 to shared - 1 do
        let diff = Float.abs (mo.(b) -. mt.(b)) in
        if diff > tol && Verdict.is_equivalent !verdict then
          verdict :=
            Verdict.Inequivalent
              {
                Verdict.outcome = b;
                p_left = mo.(b);
                p_right = mt.(b);
                detail =
                  Printf.sprintf
                    "probe %d: P(clbit %d = 1) differs by %.3f (tolerance %.3f)"
                    i b diff tol;
              }
      done;
      for b = 0 to shared - 1 do
        for b' = b + 1 to shared - 1 do
          let diff = Float.abs (xo.(b).(b') -. xt.(b).(b')) in
          if diff > tol && Verdict.is_equivalent !verdict then
            verdict :=
              Verdict.Inequivalent
                {
                  Verdict.outcome = b lor (b' lsl 8);
                  p_left = xo.(b).(b');
                  p_right = xt.(b).(b');
                  detail =
                    Printf.sprintf
                      "probe %d: P(clbit %d <> clbit %d) differs by %.3f \
                       (tolerance %.3f)"
                      i b b' diff tol;
                }
        done
      done;
      incr probe
    done;
    !verdict
  end
