module Verdict = Verdict
module Equiv = Equiv
module Probe = Probe
module Structural = Structural

type verdict = Verdict.t =
  | Equivalent
  | Inequivalent of Verdict.counterexample
  | Inconclusive of string

type level = Static | Sampled | Exact | Auto

let level_name = function
  | Static -> "static"
  | Sampled -> "sampled"
  | Exact -> "exact"
  | Auto -> "auto"

let level_of_string s =
  match String.lowercase_ascii s with
  | "static" | "structural" -> Ok Static
  | "sampled" | "probe" | "probabilistic" -> Ok Sampled
  | "exact" -> Ok Exact
  | "auto" -> Ok Auto
  | other ->
    Error
      (Printf.sprintf
         "unknown verification level %S (expected static | sampled | exact | \
          auto)"
         other)

type subject = {
  original : Quantum.Circuit.t;
  logical : Quantum.Circuit.t;
  physical : Quantum.Circuit.t;
  device : Hardware.Device.t;
  pairs : Structural.pair list option;
  commutable : Galg.Graph.t option;
}

(* Simulation width: what the state vector actually pays for, with
   routing SWAPs elided the same way the semantic checkers do. *)
let width c =
  (fst (Quantum.Circuit.compact_qubits (Quantum.Optimize.elide_swaps c)))
    .Quantum.Circuit.num_qubits

(* Qubits safe to perturb with a product-state prefix: a wire hosts the
   same logical qubit first on both sides exactly when that qubit is
   never a reuse destination (a dst's state is re-created by the reset,
   so its input is pinned to |0> by the transform's own contract). *)
let probe_inputs subject =
  match subject.pairs with
  | None -> []
  | Some pairs ->
    let dsts = List.map (fun (p : Structural.pair) -> p.Structural.dst) pairs in
    List.filter
      (fun q -> not (List.mem q dsts))
      (Quantum.Circuit.active_qubits subject.original)

let structural_verdict subject =
  Verdict.combine
    [
      (match (subject.commutable, subject.pairs) with
       | Some g, Some pairs -> Structural.check_commutable_pairs ~graph:g pairs
       | None, Some pairs ->
         Structural.check_pairs ~original:subject.original pairs
       | _, None -> Verdict.Equivalent);
      Structural.check_wellformed subject.original;
      Structural.check_wellformed subject.logical;
      Structural.check_wellformed subject.physical;
      Structural.check_coupling subject.device subject.physical;
      Structural.check_accounting ~logical:subject.original
        ~physical:subject.logical;
      Structural.check_accounting ~logical:subject.logical
        ~physical:subject.physical;
    ]

let run ?(seed = 1) level subject =
  Obs.Metrics.incr "verify.runs";
  Obs.Metrics.time "time.verify" @@ fun () ->
  let structural = structural_verdict subject in
  if Verdict.is_inequivalent structural || level = Static then structural
  else begin
    let probe ~product original transformed =
      (* Wide sides make every probe a full-width state-vector pass, so
         spend fewer probes there; input perturbation re-simulates the
         exact side per probe and is reserved for comfortable widths. *)
      let w = max (width original) (width transformed) in
      let config =
        {
          Probe.default with
          Probe.probes = (if w > 16 then 1 else Probe.default.Probe.probes);
          Probe.product_inputs =
            (if product && w <= 16 then probe_inputs subject else []);
        }
      in
      Probe.check ~config ~seed ~original ~transformed ()
    in
    let semantic ~product original transformed =
      match level with
      | Static -> Verdict.Equivalent
      | Sampled -> probe ~product original transformed
      | Exact -> Equiv.check ~original ~transformed ()
      | Auto ->
        (match Equiv.check ~original ~transformed () with
         | Verdict.Inconclusive _ -> probe ~product original transformed
         | v -> v)
    in
    let comparisons = ref [] in
    if subject.logical != subject.original then
      comparisons :=
        semantic ~product:true subject.original subject.logical :: !comparisons;
    comparisons :=
      semantic ~product:false subject.original subject.physical :: !comparisons;
    (* When the original itself cannot be simulated, still cross-check the
       transformed pair; combine keeps the Inconclusive from above so the
       verdict never overclaims. *)
    if
      width subject.original > Probe.default.Probe.max_qubits
      && subject.logical != subject.original
    then
      comparisons :=
        semantic ~product:false subject.logical subject.physical :: !comparisons;
    Verdict.combine (structural :: List.rev !comparisons)
  end
