type config = {
  max_qubits : int;
  max_clbits : int;
  max_branches : int;
  tolerance : float;
}

let default =
  { max_qubits = 12; max_clbits = 20; max_branches = 1 lsl 14; tolerance = 1e-6 }

exception Budget of string

(* Probability mass below this is a dead branch (Born probabilities of
   impossible outcomes computed in floats land around 1e-16). *)
let prune = 1e-12

let apply_unitary st kind =
  match kind with
  | Quantum.Gate.One_q (g, q) -> Sim.State.apply_one_q st g q
  | Quantum.Gate.Cx (a, b) -> Sim.State.apply_cx st a b
  | Quantum.Gate.Cz (a, b) -> Sim.State.apply_cz st a b
  | Quantum.Gate.Rzz (th, a, b) -> Sim.State.apply_rzz st th a b
  | Quantum.Gate.Swap (a, b) -> Sim.State.apply_swap st a b
  | _ -> invalid_arg "Equiv.apply_unitary: not a unitary"

let distribution ?(config = default) circuit =
  (* Routing SWAPs cost wires, not semantics: elide them first so a
     physical circuit compacts back toward its logical width. *)
  let circuit, _ =
    Quantum.Circuit.compact_qubits (Quantum.Optimize.elide_swaps circuit)
  in
  if circuit.Quantum.Circuit.num_qubits > config.max_qubits then
    Error
      (Printf.sprintf "circuit is %d qubits wide (exact limit %d)"
         circuit.Quantum.Circuit.num_qubits config.max_qubits)
  else if circuit.Quantum.Circuit.num_clbits > config.max_clbits then
    Error
      (Printf.sprintf "circuit has %d clbits (exact limit %d)"
         circuit.Quantum.Circuit.num_clbits config.max_clbits)
  else begin
    let gates = circuit.Quantum.Circuit.gates in
    let n = Array.length gates in
    let dist = Array.make (1 lsl circuit.Quantum.Circuit.num_clbits) 0. in
    let branches = ref 1 in
    (* suffix_final.(i): every gate from i on is a measurement or barrier,
       so the remaining circuit can be read off the state vector at once. *)
    let suffix_final = Array.make (n + 1) true in
    for i = n - 1 downto 0 do
      suffix_final.(i) <-
        suffix_final.(i + 1)
        &&
        match gates.(i).Quantum.Gate.kind with
        | Quantum.Gate.Measure _ | Quantum.Gate.Barrier _ -> true
        | _ -> false
    done;
    let read_off st creg weight i =
      let wiring = ref [] in
      for j = n - 1 downto i do
        match gates.(j).Quantum.Gate.kind with
        | Quantum.Gate.Measure (q, c) -> wiring := (q, c) :: !wiring
        | _ -> ()
      done;
      (* Later measurements overwrite earlier ones on the same clbit;
         [wiring] is in execution order, so a left fold gets that right. *)
      let probs = Sim.State.probabilities st in
      Array.iteri
        (fun basis p ->
          if p > prune then begin
            let outcome =
              List.fold_left
                (fun acc (q, c) ->
                  let acc = acc land lnot (1 lsl c) in
                  if basis land (1 lsl q) <> 0 then acc lor (1 lsl c) else acc)
                creg !wiring
            in
            dist.(outcome) <- dist.(outcome) +. (weight *. p)
          end)
        probs
    in
    let rec go st creg weight i =
      if weight <= prune then ()
      else if i >= n then dist.(creg) <- dist.(creg) +. weight
      else if suffix_final.(i) then read_off st creg weight i
      else begin
        match gates.(i).Quantum.Gate.kind with
        | Quantum.Gate.Barrier _ -> go st creg weight (i + 1)
        | Quantum.Gate.If_x (c, q) ->
          if creg land (1 lsl c) <> 0 then Sim.State.apply_one_q st Quantum.Gate.X q;
          go st creg weight (i + 1)
        | Quantum.Gate.Measure (q, c) ->
          branch st q weight (fun st outcome w ->
              let creg' =
                let cleared = creg land lnot (1 lsl c) in
                if outcome = 1 then cleared lor (1 lsl c) else cleared
              in
              go st creg' w (i + 1))
        | Quantum.Gate.Reset q ->
          branch st q weight (fun st outcome w ->
              if outcome = 1 then Sim.State.apply_one_q st Quantum.Gate.X q;
              go st creg w (i + 1))
        | kind ->
          apply_unitary st kind;
          go st creg weight (i + 1)
      end
    and branch st q weight k =
      let p1 = Sim.State.prob_one st q in
      let p0 = 1. -. p1 in
      if p1 *. weight <= prune then begin
        Sim.State.collapse st q 0;
        k st 0 (weight *. p0)
      end
      else if p0 *. weight <= prune then begin
        Sim.State.collapse st q 1;
        k st 1 (weight *. p1)
      end
      else begin
        incr branches;
        if !branches > config.max_branches then
          raise
            (Budget
               (Printf.sprintf "more than %d measurement branches"
                  config.max_branches));
        let st1 = Sim.State.copy st in
        Sim.State.collapse st q 0;
        k st 0 (weight *. p0);
        Sim.State.collapse st1 q 1;
        k st1 1 (weight *. p1)
      end
    in
    match go (Sim.State.init circuit.Quantum.Circuit.num_qubits) 0 1. 0 with
    | () -> Ok dist
    | exception Budget why -> Error why
  end

(* Scratch clbits above the compared range only need distinct names, so
   renumber the used ones densely. SR artifacts declare one scratch per
   physical qubit and would otherwise blow the clbit budget for no
   reason. *)
let compact_scratch_clbits ~keep (c : Quantum.Circuit.t) =
  let map = Hashtbl.create 8 in
  let next = ref keep in
  let remap cb =
    if cb < keep then cb
    else
      match Hashtbl.find_opt map cb with
      | Some v -> v
      | None ->
        let v = !next in
        incr next;
        Hashtbl.add map cb v;
        v
  in
  let kinds =
    List.map
      (fun (g : Quantum.Gate.t) ->
        match g.Quantum.Gate.kind with
        | Quantum.Gate.Measure (q, cb) -> Quantum.Gate.Measure (q, remap cb)
        | Quantum.Gate.If_x (cb, q) -> Quantum.Gate.If_x (remap cb, q)
        | k -> k)
      (Array.to_list c.Quantum.Circuit.gates)
  in
  Quantum.Circuit.of_kinds ~num_qubits:c.Quantum.Circuit.num_qubits
    ~num_clbits:(max 1 !next) kinds

(* Marginalize a distribution over [c] clbits down to the low [shared]. *)
let marginalize dist shared =
  let out = Array.make (1 lsl shared) 0. in
  let mask = (1 lsl shared) - 1 in
  Array.iteri (fun i p -> out.(i land mask) <- out.(i land mask) +. p) dist;
  out

let check ?(config = default) ~(original : Quantum.Circuit.t)
    ~(transformed : Quantum.Circuit.t) () =
  let shared =
    min original.Quantum.Circuit.num_clbits transformed.Quantum.Circuit.num_clbits
  in
  if shared = 0 then
    Verdict.Inconclusive "no classical output to compare (0 shared clbits)"
  else begin
    let original = compact_scratch_clbits ~keep:shared original in
    let transformed = compact_scratch_clbits ~keep:shared transformed in
    match (distribution ~config original, distribution ~config transformed) with
    | Error why, _ -> Verdict.inconclusivef "original: %s" why
    | _, Error why -> Verdict.inconclusivef "transformed: %s" why
    | Ok d_o, Ok d_t ->
      let d_o = marginalize d_o shared and d_t = marginalize d_t shared in
      let l1 = ref 0. in
      let worst = ref (-1) in
      let worst_diff = ref 0. in
      Array.iteri
        (fun i p ->
          let diff = Float.abs (p -. d_t.(i)) in
          l1 := !l1 +. diff;
          if diff > !worst_diff then begin
            worst_diff := diff;
            worst := i
          end)
        d_o;
      if !l1 <= config.tolerance then Verdict.Equivalent
      else
        Verdict.Inequivalent
          {
            Verdict.outcome = !worst;
            p_left = d_o.(!worst);
            p_right = d_t.(!worst);
            detail =
              Printf.sprintf
                "exact distributions differ (L1 distance %.3e over %d shared \
                 clbits)"
                !l1 shared;
          }
  end
