(** The shared result type of every checker in the translation-validation
    subsystem. A verdict is deliberately three-valued: checkers are sound
    ([Inequivalent] always means a real discrepancy in what they model)
    but not complete, and they say so with [Inconclusive] instead of
    guessing. *)

type counterexample = {
  outcome : int;
      (** Classical outcome (shared-clbit value) where the distributions
          disagree, or [-1] when the witness is structural rather than a
          distribution point. *)
  p_left : float;  (** probability under the original circuit *)
  p_right : float;  (** probability under the transformed circuit *)
  detail : string;  (** human-readable description of the violation *)
}

type t =
  | Equivalent
  | Inequivalent of counterexample
  | Inconclusive of string

(** Structural witness: no distribution point, just an explanation. *)
val violation : string -> t

(** Printf-style [violation]. *)
val violationf : ('a, unit, string, t) format4 -> 'a

val inconclusivef : ('a, unit, string, t) format4 -> 'a

val is_equivalent : t -> bool
val is_inequivalent : t -> bool

(** Fold verdicts: any [Inequivalent] dominates (the first one is kept),
    then any [Inconclusive], else [Equivalent]. *)
val combine : t list -> t

val pp : Format.formatter -> t -> unit

(** One-line rendering, e.g. for CLI tables. *)
val to_string : t -> string
