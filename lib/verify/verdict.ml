type counterexample = {
  outcome : int;
  p_left : float;
  p_right : float;
  detail : string;
}

type t =
  | Equivalent
  | Inequivalent of counterexample
  | Inconclusive of string

let violation detail =
  Inequivalent { outcome = -1; p_left = 0.; p_right = 0.; detail }

let violationf fmt = Printf.ksprintf violation fmt
let inconclusivef fmt = Printf.ksprintf (fun s -> Inconclusive s) fmt
let is_equivalent = function Equivalent -> true | _ -> false
let is_inequivalent = function Inequivalent _ -> true | _ -> false

let combine verdicts =
  let ineq = List.find_opt is_inequivalent verdicts in
  match ineq with
  | Some v -> v
  | None ->
    (match
       List.find_opt (function Inconclusive _ -> true | _ -> false) verdicts
     with
     | Some v -> v
     | None -> Equivalent)

let pp ppf = function
  | Equivalent -> Format.fprintf ppf "equivalent"
  | Inequivalent cx ->
    if cx.outcome >= 0 then
      Format.fprintf ppf "INEQUIVALENT: outcome %d has p=%.6f vs p=%.6f (%s)"
        cx.outcome cx.p_left cx.p_right cx.detail
    else Format.fprintf ppf "INEQUIVALENT: %s" cx.detail
  | Inconclusive why -> Format.fprintf ppf "inconclusive: %s" why

let to_string v = Format.asprintf "%a" pp v
