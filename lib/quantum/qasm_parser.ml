let stage = "quantum.qasm_parser"

(* Positioned parse failure: every diagnostic carries the 1-based line
   and column of the statement (or token) it refers to. *)
let fail (line, col) msg =
  raise
    (Guard.Error.Guard_error
       (Guard.Error.v ~stage ~site:"parse.stmt"
          (Printf.sprintf "line %d, col %d: %s" line col msg)))

(* Single streaming pass over the raw text: strip [//] comments, split
   on ';', and hand each statement to [f] together with the 1-based line
   and column of its first non-blank character. Nothing is materialized
   beyond the one statement currently being assembled, so a megabyte
   program costs one buffer, not a statement list. *)
let iter_statements text f =
  let n = String.length text in
  let buf = Buffer.create 64 in
  let start = ref None in
  let line = ref 1 and col = ref 0 in
  let in_comment = ref false in
  let flush () =
    (match (String.trim (Buffer.contents buf), !start) with
     | "", _ | _, None -> ()
     | stmt, Some p -> f p stmt);
    Buffer.clear buf;
    start := None
  in
  for i = 0 to n - 1 do
    let ch = text.[i] in
    incr col;
    if ch = '\n' then begin
      in_comment := false;
      incr line;
      col := 0;
      Buffer.add_char buf ' '
    end
    else if !in_comment then ()
    else if ch = '/' && i + 1 < n && text.[i + 1] = '/' then in_comment := true
    else if ch = ';' then flush ()
    else begin
      if ch <> ' ' && ch <> '\t' && !start = None then
        start := Some (!line, !col);
      Buffer.add_char buf ch
    end
  done;
  flush ()

(* "pi", "pi/2", "2*pi", "-pi", "1.5708", "-0.5" ... *)
let parse_angle pos s =
  let s = String.trim s in
  let parse_atom a =
    let a = String.trim a in
    if a = "pi" then Float.pi
    else
      match float_of_string_opt a with
      | Some f -> f
      | None -> fail pos (Printf.sprintf "bad angle %S" a)
  in
  let signed, body =
    if String.length s > 0 && s.[0] = '-' then
      (-1., String.sub s 1 (String.length s - 1))
    else (1., s)
  in
  let v =
    match String.index_opt body '*' with
    | Some i ->
      parse_atom (String.sub body 0 i)
      *. parse_atom (String.sub body (i + 1) (String.length body - i - 1))
    | None -> (
      match String.index_opt body '/' with
      | Some i ->
        parse_atom (String.sub body 0 i)
        /. parse_atom (String.sub body (i + 1) (String.length body - i - 1))
      | None -> parse_atom body)
  in
  signed *. v

(* "q[3]" -> 3 (register name is checked by the caller). *)
let parse_index pos ~reg s =
  let s = String.trim s in
  match (String.index_opt s '[', String.index_opt s ']') with
  | Some i, Some j when j > i ->
    let name = String.sub s 0 i in
    if name <> reg then
      fail pos (Printf.sprintf "expected register %S, got %S" reg name);
    (match int_of_string_opt (String.sub s (i + 1) (j - i - 1)) with
     | Some k ->
       if k < 0 then fail pos (Printf.sprintf "negative index in %S" s) else k
     | None -> fail pos (Printf.sprintf "bad index in %S" s))
  | _ -> fail pos (Printf.sprintf "expected %s[<n>], got %S" reg s)

let split_args s = String.split_on_char ',' s |> List.map String.trim

(* "rx(pi/2)" -> ("rx", Some "pi/2"); "h" -> ("h", None) *)
let split_head tok =
  match String.index_opt tok '(' with
  | Some i ->
    let close =
      match String.rindex_opt tok ')' with
      | Some j when j > i -> j
      | _ -> String.length tok
    in
    ( String.sub tok 0 i,
      Some (String.sub tok (i + 1) (close - i - 1)) )
  | None -> (tok, None)

(* Dispatch one statement. Declarations report their widths through
   [decl_qubits]/[decl_clbits]; every parsed gate kind flows through
   [add], in program order. Shared by the materializing and the
   streaming entry points. *)
let handle_stmt ~decl_qubits ~decl_clbits ~add (pos, stmt) =
  let one_q pos name angle q =
    let g =
      match (name, angle) with
      | "h", None -> Gate.H
      | "x", None -> Gate.X
      | "y", None -> Gate.Y
      | "z", None -> Gate.Z
      | "s", None -> Gate.S
      | "sdg", None -> Gate.Sdg
      | "t", None -> Gate.T
      | "tdg", None -> Gate.Tdg
      | "sx", None -> Gate.Sx
      | "rx", Some a -> Gate.Rx (parse_angle pos a)
      | "ry", Some a -> Gate.Ry (parse_angle pos a)
      | "rz", Some a -> Gate.Rz (parse_angle pos a)
      | "p", Some a -> Gate.Phase (parse_angle pos a)
      | _ -> fail pos (Printf.sprintf "unsupported gate %S" name)
    in
    add (Gate.One_q (g, q))
  in
  Guard.Inject.hit "parse.stmt";
  (* Normalize interior whitespace to single spaces. *)
  begin
      let words =
        String.split_on_char ' ' stmt |> List.filter (fun w -> w <> "")
      in
      let stmt = String.concat " " words in
      match words with
      | [] -> ()
      | first :: _ when first = "OPENQASM" || first = "include" -> ()
      | _ ->
        (* Handle declarations and operations uniformly below. *)
        let starts_with p =
          String.length stmt >= String.length p
          && String.sub stmt 0 (String.length p) = p
        in
        if starts_with "qubit[" || starts_with "qreg " then begin
          let s = if starts_with "qreg " then String.sub stmt 5 (String.length stmt - 5) else stmt in
          match (String.index_opt s '[', String.index_opt s ']') with
          | Some i, Some j when j > i ->
            (match int_of_string_opt (String.sub s (i + 1) (j - i - 1)) with
             | Some n when n >= 0 -> decl_qubits n
             | _ -> fail pos "bad qubit count")
          | _ -> fail pos "bad qubit declaration"
        end
        else if starts_with "bit[" || starts_with "creg " then begin
          let s = if starts_with "creg " then String.sub stmt 5 (String.length stmt - 5) else stmt in
          match (String.index_opt s '[', String.index_opt s ']') with
          | Some i, Some j when j > i ->
            (match int_of_string_opt (String.sub s (i + 1) (j - i - 1)) with
             | Some n when n >= 0 -> decl_clbits n
             | _ -> fail pos "bad bit count")
          | _ -> fail pos "bad bit declaration"
        end
        else if starts_with "barrier" then begin
          let args = String.sub stmt 7 (String.length stmt - 7) in
          add (Gate.Barrier (List.map (parse_index pos ~reg:"q") (split_args args)))
        end
        else if starts_with "reset " then
          add (Gate.Reset (parse_index pos ~reg:"q" (String.sub stmt 6 (String.length stmt - 6))))
        else if starts_with "if" then begin
          (* if (c[i]) x q[j] *)
          match (String.index_opt stmt '(', String.index_opt stmt ')') with
          | Some open_p, Some close_p when close_p > open_p ->
            let cond = String.sub stmt (open_p + 1) (close_p - open_p - 1) in
            let cb = parse_index pos ~reg:"c" cond in
            let rest = String.trim (String.sub stmt (close_p + 1) (String.length stmt - close_p - 1)) in
            (match String.split_on_char ' ' rest |> List.filter (fun w -> w <> "") with
             | [ "x"; qarg ] -> add (Gate.If_x (cb, parse_index pos ~reg:"q" qarg))
             | _ -> fail pos "only `if (c[i]) x q[j]` is supported")
          | _ -> fail pos "malformed if condition"
        end
        else if starts_with "measure " then begin
          (* OpenQASM 2: measure q[j] -> c[i] *)
          let body = String.sub stmt 8 (String.length stmt - 8) in
          let split_arrow s =
            let n = String.length s in
            let rec go i =
              if i + 1 >= n then None
              else if s.[i] = '-' && s.[i + 1] = '>' then
                Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))
              else go (i + 1)
            in
            go 0
          in
          match split_arrow body with
          | Some (qarg, carg) ->
            add
              (Gate.Measure
                 (parse_index pos ~reg:"q" qarg, parse_index pos ~reg:"c" carg))
          | None -> fail pos "measure needs `-> c[i]`"
        end
        else if String.contains stmt '=' && not (String.contains stmt '(') then begin
          (* OpenQASM 3: c[i] = measure q[j] *)
          let eq = String.index stmt '=' in
          let lhs = String.trim (String.sub stmt 0 eq) in
          let rhs = String.trim (String.sub stmt (eq + 1) (String.length stmt - eq - 1)) in
          let cb = parse_index pos ~reg:"c" lhs in
          match String.split_on_char ' ' rhs |> List.filter (fun w -> w <> "") with
          | [ "measure"; qarg ] ->
            add (Gate.Measure (parse_index pos ~reg:"q" qarg, cb))
          | _ -> fail pos "only `c[i] = measure q[j]` assignments are supported"
        end
        else begin
          (* gate applications *)
          match words with
          | head :: args ->
            let name, angle = split_head head in
            let operands = split_args (String.concat " " args) in
            (match (name, operands) with
             | ("cx" | "cz" | "swap" | "rzz"), [ a; b ] ->
               let qa = parse_index pos ~reg:"q" a
               and qb = parse_index pos ~reg:"q" b in
               (match (name, angle) with
                | "cx", None -> add (Gate.Cx (qa, qb))
                | "cz", None -> add (Gate.Cz (qa, qb))
                | "swap", None -> add (Gate.Swap (qa, qb))
                | "rzz", Some th -> add (Gate.Rzz (parse_angle pos th, qa, qb))
                | _ -> fail pos (Printf.sprintf "bad 2-qubit gate %S" name))
             | _, [ qarg ] -> one_q pos name angle (parse_index pos ~reg:"q" qarg)
             | _ -> fail pos (Printf.sprintf "unsupported statement %S" stmt))
          | [] -> ()
        end
  end

(* Streaming import: the gate kinds land in a doubling array, so a
   1000-qubit program costs one growable buffer plus the final circuit
   instead of two intermediate lists. *)
let parse_exn text =
  let num_qubits = ref 0 and num_clbits = ref 0 in
  let kinds = ref (Array.make 64 (Gate.Reset 0)) in
  let len = ref 0 in
  let add k =
    if !len = Array.length !kinds then begin
      let bigger = Array.make (2 * !len) k in
      Array.blit !kinds 0 bigger 0 !len;
      kinds := bigger
    end;
    !kinds.(!len) <- k;
    incr len
  in
  iter_statements text (fun pos stmt ->
      handle_stmt
        ~decl_qubits:(fun n -> num_qubits := max !num_qubits n)
        ~decl_clbits:(fun n -> num_clbits := max !num_clbits n)
        ~add (pos, stmt));
  Circuit.of_kind_array ~num_qubits:!num_qubits ~num_clbits:!num_clbits
    (Array.sub !kinds 0 !len)

let fold_gates text ~init ~gate =
  Guard.Error.protect ~stage ~site:"parse.stmt" (fun () ->
      let num_qubits = ref 0 and num_clbits = ref 0 in
      let acc = ref init in
      iter_statements text (fun pos stmt ->
          handle_stmt
            ~decl_qubits:(fun n -> num_qubits := max !num_qubits n)
            ~decl_clbits:(fun n -> num_clbits := max !num_clbits n)
            ~add:(fun k -> acc := gate !acc k)
            (pos, stmt));
      (!acc, !num_qubits, !num_clbits))

(* [Circuit.of_kind_array] validates operand ranges, so the boundary
   also converts its [Invalid_argument] (e.g. a gate on an undeclared
   wire) into the structured diagnostic. *)
let parse text = Guard.Error.protect ~stage ~site:"parse.stmt" (fun () -> parse_exn text)

let of_string text =
  match parse text with
  | Ok c -> c
  | Error e -> failwith ("Qasm_parser: " ^ e.Guard.Error.detail)
