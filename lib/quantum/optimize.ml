let two_pi = 2. *. Float.pi

(* Rotations are 4*pi periodic; anything that lands on a multiple of
   4*pi (or 2*pi, which differs by a global phase only) is an identity
   for measurement statistics. *)
let trivial_angle th =
  let m = Float.rem th two_pi in
  Float.abs m < 1e-12 || Float.abs (Float.abs m -. two_pi) < 1e-12

let inverse_pair a b =
  match (a, b) with
  | Gate.One_q (ga, q), Gate.One_q (gb, q') when q = q' -> (
    match (ga, gb) with
    | Gate.H, Gate.H | Gate.X, Gate.X | Gate.Y, Gate.Y | Gate.Z, Gate.Z -> true
    | Gate.S, Gate.Sdg | Gate.Sdg, Gate.S -> true
    | Gate.T, Gate.Tdg | Gate.Tdg, Gate.T -> true
    | _ -> false)
  | Gate.Cx (c1, t1), Gate.Cx (c2, t2) -> c1 = c2 && t1 = t2
  | Gate.Cz (a1, b1), Gate.Cz (a2, b2) ->
    (a1, b1) = (a2, b2) || (a1, b1) = (b2, a2)
  | Gate.Swap (a1, b1), Gate.Swap (a2, b2) ->
    (a1, b1) = (a2, b2) || (a1, b1) = (b2, a2)
  | _ -> false

(* [fuse a b] is [Some kind] when b absorbs into a as a same-axis
   rotation; the result may itself be trivial (checked by the caller). *)
let fuse a b =
  match (a, b) with
  | Gate.One_q (Gate.Rz t1, q), Gate.One_q (Gate.Rz t2, q') when q = q' ->
    Some (Gate.One_q (Gate.Rz (t1 +. t2), q))
  | Gate.One_q (Gate.Rx t1, q), Gate.One_q (Gate.Rx t2, q') when q = q' ->
    Some (Gate.One_q (Gate.Rx (t1 +. t2), q))
  | Gate.One_q (Gate.Ry t1, q), Gate.One_q (Gate.Ry t2, q') when q = q' ->
    Some (Gate.One_q (Gate.Ry (t1 +. t2), q))
  | Gate.One_q (Gate.Phase t1, q), Gate.One_q (Gate.Phase t2, q') when q = q' ->
    Some (Gate.One_q (Gate.Phase (t1 +. t2), q))
  | Gate.Rzz (t1, a1, b1), Gate.Rzz (t2, a2, b2)
    when (a1, b1) = (a2, b2) || (a1, b1) = (b2, a2) ->
    Some (Gate.Rzz (t1 +. t2, a1, b1))
  | _ -> None

let is_trivial = function
  | Gate.One_q ((Gate.Rz th | Gate.Rx th | Gate.Ry th | Gate.Phase th), _)
  | Gate.Rzz (th, _, _) ->
    trivial_angle th
  | _ -> false

let peephole_once (c : Circuit.t) =
  let n = Array.length c.Circuit.gates in
  let kept : Gate.kind option array =
    Array.map (fun g -> Some g.Gate.kind) c.Circuit.gates
  in
  (* Per-wire top-of-stack gate index, with per-gate saved predecessors so
     a cancellation can restore the previous top. -2 marks a dynamic/
     barrier block (no cancellation across it). *)
  let top = Array.make (max 1 c.Circuit.num_qubits) (-1) in
  let prevs = Array.make n [] in
  let changed = ref false in
  for i = 0 to n - 1 do
    match kept.(i) with
    | None -> ()
    | Some kind ->
      let qs = Gate.qubits kind in
      if Gate.is_barrier kind || Gate.is_dynamic kind then
        List.iter (fun q -> top.(q) <- -2) qs
      else begin
        (* The candidate predecessor must be the top on every wire. *)
        let j =
          match qs with
          | [] -> -1
          | q :: rest ->
            let t = top.(q) in
            if t >= 0 && List.for_all (fun q' -> top.(q') = t) rest then t
            else -1
        in
        let cancel_with j =
          (* Drop both gates and restore j's saved predecessors. *)
          kept.(j) <- None;
          kept.(i) <- None;
          changed := true;
          List.iter (fun (q, p) -> top.(q) <- p) prevs.(j)
        in
        let push () =
          prevs.(i) <- List.map (fun q -> (q, top.(q))) qs;
          List.iter (fun q -> top.(q) <- i) qs
        in
        let predecessor_kind j =
          match kept.(j) with Some k -> k | None -> assert false
        in
        if j >= 0 && inverse_pair (predecessor_kind j) kind then cancel_with j
        else if j >= 0 then begin
          match fuse (predecessor_kind j) kind with
          | Some fused ->
            changed := true;
            if is_trivial fused then cancel_with j
            else begin
              kept.(j) <- Some fused;
              kept.(i) <- None
            end
          | None -> if is_trivial kind then begin
              kept.(i) <- None;
              changed := true
            end
            else push ()
        end
        else if is_trivial kind then begin
          kept.(i) <- None;
          changed := true
        end
        else push ()
      end
  done;
  let kinds = List.filter_map Fun.id (Array.to_list kept) in
  ( Circuit.of_kinds ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_clbits kinds,
    !changed )

let rec peephole c =
  let c', changed = peephole_once c in
  if changed then peephole c' else c'

let removed c = Circuit.gate_count c - Circuit.gate_count (peephole c)

(* loc.(w) is where wire w's state lives once SWAPs are dropped. After
   Swap (a, b) the original wire a holds what b held, so the elided
   location of a becomes the old location of b and vice versa. *)
let elide_swaps (c : Circuit.t) =
  let loc = Array.init (max 1 c.Circuit.num_qubits) Fun.id in
  let kinds =
    List.filter_map
      (fun (g : Gate.t) ->
        match g.Gate.kind with
        | Gate.Swap (a, b) ->
          let t = loc.(a) in
          loc.(a) <- loc.(b);
          loc.(b) <- t;
          None
        | k -> Some (Gate.map_qubits (fun q -> loc.(q)) k))
      (Array.to_list c.Circuit.gates)
  in
  Circuit.of_kinds ~num_qubits:c.Circuit.num_qubits
    ~num_clbits:c.Circuit.num_clbits kinds
