(** Parser for the OpenQASM 3 subset that {!Qasm} emits (plus the common
    OpenQASM 2 measurement spelling), so circuits survive a round trip
    through their textual form and external tools can feed circuits in:

    - [qubit[n] q;] / [bit[n] c;] declarations (also [qreg]/[creg]),
    - gates [h x y z s sdg t tdg sx], [rx(a) ry(a) rz(a) p(a)],
      [cx cz swap], [rzz(a)],
    - [c[i] = measure q[j];] and [measure q[j] -> c[i];],
    - [reset q[i];], [if (c[i]) x q[j];], [barrier q[...], ...;],
    - [OPENQASM ...;] and [include ...;] headers (ignored), [//] comments.

    Angles accept float literals and [pi] expressions ([pi/2], [2*pi],
    [-pi]). *)

(** [parse text] parses a program. On unsupported or malformed input the
    structured error's [detail] pinpoints the statement with a 1-based
    ["line L, col C"] prefix (the column of the statement's first
    non-blank character); gate-operand range violations detected at
    circuit construction are converted too, so [parse] never raises on
    bad input. *)
val parse : string -> (Circuit.t, Guard.Error.t) result

(** [fold_gates text ~init ~gate] streams the program without building
    a circuit: statements are scanned in one pass, each parsed gate
    kind is folded through [gate] in program order, and the result is
    [(acc, num_qubits, num_clbits)] with the declared register widths.
    Use it to size-check or summarize a large import before paying for
    circuit construction — nothing beyond the current statement is
    materialized. Diagnostics are the same positioned errors as
    {!parse}; operand ranges are {e not} checked against the declared
    widths (that validation happens at circuit construction). *)
val fold_gates :
  string ->
  init:'a ->
  gate:('a -> Gate.kind -> 'a) ->
  ('a * int * int, Guard.Error.t) result

(** Thin raising wrapper over {!parse} for legacy callers: raises
    [Failure] with the same line/column-numbered message. *)
val of_string : string -> Circuit.t
