(** Peephole circuit optimization, the gate-level cleanup a production
    transpiler (e.g. Qiskit at optimization level 3) performs before
    routing:

    - adjacent self-inverse pairs cancel (H·H, X·X, Y·Y, Z·Z, CX·CX,
      CZ·CZ, SWAP·SWAP on identical operands, S·Sdg, T·Tdg),
    - consecutive rotations about the same axis on the same qubit fuse
      (Rz·Rz, Rx·Rx, Ry·Ry, Phase·Phase, Rzz·Rzz on the same pair),
    - rotations by (multiples of) 2*pi and empty fusions are dropped.

    Two gates are "adjacent" when no other gate touches any of their
    wires in between, so the pass is semantics-preserving by
    construction. Dynamic operations (measure, reset, conditional X) are
    barriers for their wires. Runs to a fixpoint. *)

(** [peephole circuit] returns the optimized circuit; gate count never
    increases and the output distribution is unchanged. *)
val peephole : Circuit.t -> Circuit.t

(** Number of gates removed by [peephole]. *)
val removed : Circuit.t -> int

(** [elide_swaps circuit] removes every SWAP by relabeling all later
    references to its two wires — the virtual-swap trick. The result has
    the same outcome distribution over clbits (a SWAP only permutes
    which wire carries which state) but wires that carried nothing but
    routing traffic fall idle, so a routed circuit compacts back toward
    its logical width. Meant for simulation and verification, not for
    execution: the output ignores device connectivity. *)
val elide_swaps : Circuit.t -> Circuit.t
