type t = { num_qubits : int; num_clbits : int; gates : Gate.t array }

let check_kind ~num_qubits ~num_clbits kind =
  let ok_q q = q >= 0 && q < num_qubits in
  let ok_c c = c >= 0 && c < num_clbits in
  if not (List.for_all ok_q (Gate.qubits kind)) then
    invalid_arg
      (Format.asprintf "Circuit: qubit out of range in %a" Gate.pp
         { Gate.id = -1; kind });
  if not (List.for_all ok_c (Gate.clbits kind)) then
    invalid_arg "Circuit: classical bit out of range"

let empty ~num_qubits ~num_clbits =
  if num_qubits < 0 || num_clbits < 0 then invalid_arg "Circuit.empty";
  { num_qubits; num_clbits; gates = [||] }

let of_kinds ~num_qubits ~num_clbits kinds =
  List.iter (check_kind ~num_qubits ~num_clbits) kinds;
  let gates =
    Array.of_list (List.mapi (fun id kind -> { Gate.id; kind }) kinds)
  in
  { num_qubits; num_clbits; gates }

let of_kind_array ~num_qubits ~num_clbits kinds =
  Array.iter (check_kind ~num_qubits ~num_clbits) kinds;
  { num_qubits;
    num_clbits;
    gates = Array.mapi (fun id kind -> { Gate.id; kind }) kinds }

let gate_count c = Array.length c.gates

let count p c =
  Array.fold_left (fun n g -> if p g.Gate.kind then n + 1 else n) 0 c.gates

let two_q_count c = count Gate.is_two_q c

let swap_count c =
  count (function Gate.Swap _ -> true | _ -> false) c

let mid_circuit_measurements c =
  let n = ref 0 in
  let last_op = Array.make c.num_qubits (-1) in
  Array.iter
    (fun g ->
      if not (Gate.is_barrier g.Gate.kind) then
        List.iter (fun q -> last_op.(q) <- g.Gate.id) (Gate.qubits g.Gate.kind))
    c.gates;
  Array.iter
    (fun g ->
      match g.Gate.kind with
      | Gate.Measure (q, _) when last_op.(q) <> g.Gate.id -> incr n
      | _ -> ())
    c.gates;
  !n

let active_qubits c =
  let used = Array.make c.num_qubits false in
  Array.iter
    (fun g ->
      if not (Gate.is_barrier g.Gate.kind) then
        List.iter (fun q -> used.(q) <- true) (Gate.qubits g.Gate.kind))
    c.gates;
  let acc = ref [] in
  for q = c.num_qubits - 1 downto 0 do
    if used.(q) then acc := q :: !acc
  done;
  !acc

(* Per-wire front times; a gate starts at the max front over its wires. *)
let schedule weight c =
  let qfront = Array.make (max 1 c.num_qubits) 0 in
  let cfront = Array.make (max 1 c.num_clbits) 0 in
  let total = ref 0 in
  Array.iter
    (fun g ->
      let k = g.Gate.kind in
      if not (Gate.is_barrier k) then begin
        let qs = Gate.qubits k and cs = Gate.clbits k in
        let start =
          List.fold_left
            (fun acc c -> max acc cfront.(c))
            (List.fold_left (fun acc q -> max acc qfront.(q)) 0 qs)
            cs
        in
        let finish = start + weight k in
        List.iter (fun q -> qfront.(q) <- finish) qs;
        List.iter (fun c -> cfront.(c) <- finish) cs;
        if finish > !total then total := finish
      end)
    c.gates;
  !total

let depth c = schedule (fun _ -> 1) c
let duration model c = schedule (Duration.of_kind model) c

let interaction_graph c =
  let g = Galg.Graph.create c.num_qubits in
  Array.iter
    (fun gate ->
      if Gate.is_two_q gate.Gate.kind then
        match Gate.qubits gate.Gate.kind with
        | [ a; b ] -> Galg.Graph.add_edge g a b
        | _ -> ())
    c.gates;
  g

let of_gate_kinds ~num_qubits ~num_clbits kinds =
  of_kinds ~num_qubits ~num_clbits kinds

let map_qubits ~num_qubits f c =
  of_gate_kinds ~num_qubits ~num_clbits:c.num_clbits
    (Array.to_list (Array.map (fun g -> Gate.map_qubits f g.Gate.kind) c.gates))

let append a b =
  if a.num_qubits <> b.num_qubits || a.num_clbits <> b.num_clbits then
    invalid_arg "Circuit.append: width mismatch";
  of_gate_kinds ~num_qubits:a.num_qubits ~num_clbits:a.num_clbits
    (Array.to_list (Array.map (fun g -> g.Gate.kind) a.gates)
    @ Array.to_list (Array.map (fun g -> g.Gate.kind) b.gates))

let compact_qubits c =
  let used = Array.make c.num_qubits false in
  Array.iter
    (fun g -> List.iter (fun q -> used.(q) <- true) (Gate.qubits g.Gate.kind))
    c.gates;
  let remap = Array.make c.num_qubits (-1) in
  let next = ref 0 in
  Array.iteri
    (fun q u ->
      if u then begin
        remap.(q) <- !next;
        incr next
      end)
    used;
  let c' = map_qubits ~num_qubits:!next (fun q -> remap.(q)) c in
  (c', remap)

let measure_all c =
  let nc = max c.num_clbits c.num_qubits in
  let kinds =
    Array.to_list (Array.map (fun g -> g.Gate.kind) c.gates)
    @ List.map (fun q -> Gate.Measure (q, q)) (active_qubits c)
  in
  of_gate_kinds ~num_qubits:c.num_qubits ~num_clbits:nc kinds

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit %d qubits, %d clbits, %d gates:" c.num_qubits
    c.num_clbits (Array.length c.gates);
  Array.iter (fun g -> Format.fprintf ppf "@,  %a" Gate.pp g) c.gates;
  Format.fprintf ppf "@]"

(* ---- content digest ----

   The serialization below is the circuit's semantic content and nothing
   else: widths plus the ordered gate kinds, with rotation angles
   rendered as their exact IEEE-754 bit pattern (a decimal rendering
   would either lose bits or depend on printf rounding). Gate ids, array
   identity and construction history are invisible, so any two physical
   representations of the same circuit — built gate by gate, rebuilt by
   a transformation, or re-parsed from the canonical QASM-3 emission —
   digest identically. The "circuit/1" tag versions the serialization
   itself. *)
let canon_buf b c =
  Buffer.add_string b
    (Printf.sprintf "circuit/1 q=%d c=%d\n" c.num_qubits c.num_clbits);
  let angle th = Printf.sprintf "%Lx" (Int64.bits_of_float th) in
  let one_q : Gate.one_q -> string = function
    | H -> "h" | X -> "x" | Y -> "y" | Z -> "z" | S -> "s" | Sdg -> "sdg"
    | T -> "t" | Tdg -> "tdg" | Sx -> "sx"
    | Rx th -> "rx " ^ angle th
    | Ry th -> "ry " ^ angle th
    | Rz th -> "rz " ^ angle th
    | Phase th -> "p " ^ angle th
  in
  Array.iter
    (fun (g : Gate.t) ->
      (match g.Gate.kind with
       | Gate.One_q (u, q) -> Buffer.add_string b (Printf.sprintf "%s %d" (one_q u) q)
       | Gate.Cx (a, q) -> Buffer.add_string b (Printf.sprintf "cx %d %d" a q)
       | Gate.Cz (a, q) -> Buffer.add_string b (Printf.sprintf "cz %d %d" a q)
       | Gate.Rzz (th, a, q) ->
         Buffer.add_string b (Printf.sprintf "rzz %s %d %d" (angle th) a q)
       | Gate.Swap (a, q) -> Buffer.add_string b (Printf.sprintf "swap %d %d" a q)
       | Gate.Measure (q, cb) ->
         Buffer.add_string b (Printf.sprintf "measure %d %d" q cb)
       | Gate.Reset q -> Buffer.add_string b (Printf.sprintf "reset %d" q)
       | Gate.If_x (cb, q) ->
         Buffer.add_string b (Printf.sprintf "if_x %d %d" cb q)
       | Gate.Barrier qs ->
         Buffer.add_string b
           ("barrier " ^ String.concat " " (List.map string_of_int qs)));
      Buffer.add_char b '\n')
    c.gates

let digest c =
  let b = Buffer.create (64 + (16 * Array.length c.gates)) in
  canon_buf b c;
  Digest.to_hex (Digest.string (Buffer.contents b))

module Builder = struct
  type circuit = t
  type nonrec t = {
    num_qubits : int;
    num_clbits : int;
    mutable rev_kinds : Gate.kind list;
  }

  let create ~num_qubits ~num_clbits = { num_qubits; num_clbits; rev_kinds = [] }

  let add b kind =
    check_kind ~num_qubits:b.num_qubits ~num_clbits:b.num_clbits kind;
    b.rev_kinds <- kind :: b.rev_kinds

  let h b q = add b (Gate.One_q (Gate.H, q))
  let x b q = add b (Gate.One_q (Gate.X, q))
  let z b q = add b (Gate.One_q (Gate.Z, q))
  let rx b th q = add b (Gate.One_q (Gate.Rx th, q))
  let rz b th q = add b (Gate.One_q (Gate.Rz th, q))
  let cx b a q = add b (Gate.Cx (a, q))
  let cz b a q = add b (Gate.Cz (a, q))
  let rzz b th a q = add b (Gate.Rzz (th, a, q))
  let swap b a q = add b (Gate.Swap (a, q))
  let measure b q c = add b (Gate.Measure (q, c))
  let reset b q = add b (Gate.Reset q)
  let if_x b c q = add b (Gate.If_x (c, q))
  let barrier b qs = add b (Gate.Barrier qs)

  let build b : circuit =
    of_gate_kinds ~num_qubits:b.num_qubits ~num_clbits:b.num_clbits
      (List.rev b.rev_kinds)
end
