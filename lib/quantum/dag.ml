type t = {
  circuit : Circuit.t;
  preds : int list array;
  succs : int list array;
  on_qubit : int list array;  (* reversed during build, stored in order *)
}

let build (c : Circuit.t) =
  let n = Array.length c.gates in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let on_qubit = Array.make (max 1 c.num_qubits) [] in
  let last_q = Array.make (max 1 c.num_qubits) (-1) in
  let last_c = Array.make (max 1 c.num_clbits) (-1) in
  let add_dep src dst =
    if src >= 0 && src <> dst && not (List.mem src preds.(dst)) then begin
      preds.(dst) <- src :: preds.(dst);
      succs.(src) <- dst :: succs.(src)
    end
  in
  Array.iter
    (fun g ->
      let i = g.Gate.id in
      let k = g.Gate.kind in
      if Gate.is_barrier k then
        (* Barriers order every wire they span but are not nodes we weight:
           model them as ordinary nodes with zero cost downstream. *)
        List.iter
          (fun q ->
            add_dep last_q.(q) i;
            last_q.(q) <- i)
          (Gate.qubits k)
      else begin
        List.iter
          (fun q ->
            add_dep last_q.(q) i;
            last_q.(q) <- i;
            on_qubit.(q) <- i :: on_qubit.(q))
          (Gate.qubits k);
        List.iter
          (fun cb ->
            add_dep last_c.(cb) i;
            last_c.(cb) <- i)
          (Gate.clbits k)
      end)
    c.gates;
  let on_qubit = Array.map List.rev on_qubit in
  { circuit = c; preds; succs; on_qubit }

(* [of_parts] trusts its caller for *content* (that the adjacency is the
   one [build] would derive) but not for *shape*: a relabelling bug shows
   up as an out-of-range id, a duplicate, a backward edge, or a wire list
   that disagrees with the circuit — all cheap to detect here and
   miserable to debug downstream where they surface as phantom cycles.
   The length checks are free and unconditional; the per-edge checks are
   O(edges) and can be skipped with [~check:false] by a hot caller whose
   output is independently cross-validated (the incremental engine, whose
   analyses the property suites and the fuzz [engines] oracle compare
   byte-for-byte against fresh ones). *)
let of_parts ?(check = true) circuit ~preds ~succs ~on_qubit =
  let fail fmt = Format.kasprintf invalid_arg ("Dag.of_parts: " ^^ fmt) in
  let n = Array.length circuit.Circuit.gates in
  if Array.length preds <> n then
    fail "preds has %d entries for %d gates" (Array.length preds) n;
  if Array.length succs <> n then
    fail "succs has %d entries for %d gates" (Array.length succs) n;
  let expected_wires = max 1 circuit.Circuit.num_qubits in
  if Array.length on_qubit <> expected_wires then
    fail "on_qubit has %d wires for %d qubits" (Array.length on_qubit)
      circuit.Circuit.num_qubits;
  if not check then { circuit; preds; succs; on_qubit }
  else begin
  (* Allocation-free: adjacency lists are short (wire degree), so a list
     scan beats building any set. *)
  let check_adj what forward i ids =
    let rec go = function
      | [] -> ()
      | j :: rest ->
        if j < 0 || j >= n then
          fail "%s.(%d) mentions dangling gate %d" what i j;
        if List.memq j rest then fail "%s.(%d) lists gate %d twice" what i j;
        (* Gates are stored in execution order, so every dependence must
           point forward — a backward edge breaks [topo_order]. *)
        if forward && j <= i then
          fail "%s.(%d) edge from %d is not topological" what i j;
        if (not forward) && j >= i then
          fail "%s.(%d) edge from %d is not topological" what i j;
        go rest
    in
    go ids
  in
  Array.iteri (fun i ids -> check_adj "preds" false i ids) preds;
  Array.iteri (fun i ids -> check_adj "succs" true i ids) succs;
  Array.iteri
    (fun i ids ->
      List.iter
        (fun j ->
          if not (List.memq i succs.(j)) then
            fail "preds.(%d) lists %d but succs.(%d) does not mirror it" i j j)
        ids)
    preds;
  Array.iteri
    (fun i ids ->
      List.iter
        (fun j ->
          if not (List.memq i preds.(j)) then
            fail "succs.(%d) lists %d but preds.(%d) does not mirror it" i j j)
        ids)
    succs;
  (* Non-allocating [Gate.qubits] membership — on the same hot path. *)
  let acts_on q = function
    | Gate.One_q (_, a) | Gate.Reset a | Gate.Measure (a, _) | Gate.If_x (_, a)
      ->
      a = q
    | Gate.Cx (a, b) | Gate.Cz (a, b) | Gate.Rzz (_, a, b) | Gate.Swap (a, b)
      ->
      a = q || b = q
    | Gate.Barrier _ -> false
  in
  Array.iteri
    (fun q ids ->
      let last = ref (-1) in
      List.iter
        (fun g ->
          if g < 0 || g >= n then fail "on_qubit.(%d) mentions dangling gate %d" q g;
          if g <= !last then
            fail "on_qubit.(%d) is not in execution order at gate %d" q g;
          last := g;
          let k = circuit.Circuit.gates.(g).Gate.kind in
          if Gate.is_barrier k then
            fail "on_qubit.(%d) lists barrier %d" q g;
          if not (acts_on q k) then
            fail "on_qubit.(%d) lists gate %d which does not act on it" q g)
        ids)
    on_qubit;
  { circuit; preds; succs; on_qubit }
  end

let circuit t = t.circuit
let num_nodes t = Array.length t.preds
let preds t i = t.preds.(i)
let succs t i = t.succs.(i)
let in_degree t i = List.length t.preds.(i)
let topo_order t = List.init (num_nodes t) Fun.id

let frontier t =
  List.filter (fun i -> t.preds.(i) = []) (topo_order t)

let longest_path ~weight t =
  let n = num_nodes t in
  let finish = Array.make n 0 in
  let best = ref 0 in
  for i = 0 to n - 1 do
    let start = List.fold_left (fun acc p -> max acc finish.(p)) 0 t.preds.(i) in
    finish.(i) <- start + weight i;
    if finish.(i) > !best then best := finish.(i)
  done;
  !best

let critical_nodes ~weight t =
  let n = num_nodes t in
  let finish = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let start = List.fold_left (fun acc p -> max acc finish.(p)) 0 t.preds.(i) in
    finish.(i) <- start + weight i;
    if finish.(i) > !total then total := finish.(i)
  done;
  (* Latest finish allowed without stretching the schedule. *)
  let late = Array.make n max_int in
  for i = n - 1 downto 0 do
    if late.(i) = max_int then late.(i) <- !total;
    let start = late.(i) - weight i in
    List.iter (fun p -> if start < late.(p) then late.(p) <- start) t.preds.(i)
  done;
  Array.init n (fun i -> finish.(i) = late.(i))

let gates_on_qubit t q = t.on_qubit.(q)
