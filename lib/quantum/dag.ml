type t = {
  circuit : Circuit.t;
  preds : int list array;
  succs : int list array;
  on_qubit : int list array;  (* reversed during build, stored in order *)
}

let build (c : Circuit.t) =
  let n = Array.length c.gates in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let on_qubit = Array.make (max 1 c.num_qubits) [] in
  let last_q = Array.make (max 1 c.num_qubits) (-1) in
  let last_c = Array.make (max 1 c.num_clbits) (-1) in
  let add_dep src dst =
    if src >= 0 && not (List.mem src preds.(dst)) then begin
      preds.(dst) <- src :: preds.(dst);
      succs.(src) <- dst :: succs.(src)
    end
  in
  Array.iter
    (fun g ->
      let i = g.Gate.id in
      let k = g.Gate.kind in
      if Gate.is_barrier k then
        (* Barriers order every wire they span but are not nodes we weight:
           model them as ordinary nodes with zero cost downstream. *)
        List.iter
          (fun q ->
            add_dep last_q.(q) i;
            last_q.(q) <- i)
          (Gate.qubits k)
      else begin
        List.iter
          (fun q ->
            add_dep last_q.(q) i;
            last_q.(q) <- i;
            on_qubit.(q) <- i :: on_qubit.(q))
          (Gate.qubits k);
        List.iter
          (fun cb ->
            add_dep last_c.(cb) i;
            last_c.(cb) <- i)
          (Gate.clbits k)
      end)
    c.gates;
  let on_qubit = Array.map List.rev on_qubit in
  { circuit = c; preds; succs; on_qubit }

let of_parts circuit ~preds ~succs ~on_qubit = { circuit; preds; succs; on_qubit }
let circuit t = t.circuit
let num_nodes t = Array.length t.preds
let preds t i = t.preds.(i)
let succs t i = t.succs.(i)
let in_degree t i = List.length t.preds.(i)
let topo_order t = List.init (num_nodes t) Fun.id

let frontier t =
  List.filter (fun i -> t.preds.(i) = []) (topo_order t)

let longest_path ~weight t =
  let n = num_nodes t in
  let finish = Array.make n 0 in
  let best = ref 0 in
  for i = 0 to n - 1 do
    let start = List.fold_left (fun acc p -> max acc finish.(p)) 0 t.preds.(i) in
    finish.(i) <- start + weight i;
    if finish.(i) > !best then best := finish.(i)
  done;
  !best

let critical_nodes ~weight t =
  let n = num_nodes t in
  let finish = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let start = List.fold_left (fun acc p -> max acc finish.(p)) 0 t.preds.(i) in
    finish.(i) <- start + weight i;
    if finish.(i) > !total then total := finish.(i)
  done;
  (* Latest finish allowed without stretching the schedule. *)
  let late = Array.make n max_int in
  for i = n - 1 downto 0 do
    if late.(i) = max_int then late.(i) <- !total;
    let start = late.(i) - weight i in
    List.iter (fun p -> if start < late.(p) then late.(p) <- start) t.preds.(i)
  done;
  Array.init n (fun i -> finish.(i) = late.(i))

let gates_on_qubit t q = t.on_qubit.(q)
