type one_q =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float

type kind =
  | One_q of one_q * int
  | Cx of int * int
  | Cz of int * int
  | Rzz of float * int * int
  | Swap of int * int
  | Measure of int * int
  | Reset of int
  | If_x of int * int
  | Barrier of int list

type t = { id : int; kind : kind }

let qubits = function
  | One_q (_, q) | Reset q -> [ q ]
  | Cx (a, b) | Cz (a, b) | Rzz (_, a, b) | Swap (a, b) -> [ a; b ]
  | Measure (q, _) | If_x (_, q) -> [ q ]
  | Barrier qs -> qs

let clbits = function
  | Measure (_, c) | If_x (c, _) -> [ c ]
  | One_q _ | Cx _ | Cz _ | Rzz _ | Swap _ | Reset _ | Barrier _ -> []

let is_two_q = function
  | Cx _ | Cz _ | Rzz _ | Swap _ -> true
  | One_q _ | Measure _ | Reset _ | If_x _ | Barrier _ -> false

let is_dynamic = function
  | Measure _ | Reset _ | If_x _ -> true
  | One_q _ | Cx _ | Cz _ | Rzz _ | Swap _ | Barrier _ -> false

let is_barrier = function
  | Barrier _ -> true
  | One_q _ | Cx _ | Cz _ | Rzz _ | Swap _ | Measure _ | Reset _ | If_x _ ->
    false

let map_qubits f = function
  | One_q (g, q) -> One_q (g, f q)
  | Cx (a, b) -> Cx (f a, f b)
  | Cz (a, b) -> Cz (f a, f b)
  | Rzz (th, a, b) -> Rzz (th, f a, f b)
  | Swap (a, b) -> Swap (f a, f b)
  | Measure (q, c) -> Measure (f q, c)
  | Reset q -> Reset (f q)
  | If_x (c, q) -> If_x (c, f q)
  | Barrier qs ->
    (* A barrier's wire list is a set: a non-injective rename (e.g. the
       reuse transform rewiring dst onto src) must not leave duplicates
       behind — a duplicated wire reads as a self-dependence downstream. *)
    Barrier (List.sort_uniq compare (List.map f qs))

let map_clbits f = function
  | Measure (q, c) -> Measure (q, f c)
  | If_x (c, q) -> If_x (f c, q)
  | (One_q _ | Cx _ | Cz _ | Rzz _ | Swap _ | Reset _ | Barrier _) as k -> k

let diagonal_one_q = function
  | Z | S | Sdg | T | Tdg | Rz _ | Phase _ -> true
  | H | X | Y | Sx | Rx _ | Ry _ -> false

(* Is the operator diagonal in the computational basis? *)
let diagonal = function
  | One_q (g, _) -> diagonal_one_q g
  | Cz _ | Rzz _ -> true
  | Cx _ | Swap _ | Measure _ | Reset _ | If_x _ | Barrier _ -> false

let same_axis a b =
  match (a, b) with
  | (X | Rx _), (X | Rx _) -> true
  | (Y | Ry _), (Y | Ry _) -> true
  | (Z | S | Sdg | T | Tdg | Rz _ | Phase _), (Z | S | Sdg | T | Tdg | Rz _ | Phase _)
    ->
    true
  | _ -> false

let disjoint k1 k2 =
  let q1 = qubits k1 and q2 = qubits k2 in
  let c1 = clbits k1 and c2 = clbits k2 in
  (not (List.exists (fun q -> List.mem q q2) q1))
  && not (List.exists (fun c -> List.mem c c2) c1)

let commutes k1 k2 =
  if is_barrier k1 || is_barrier k2 then false
  else if disjoint k1 k2 then true
  else if diagonal k1 && diagonal k2 then true
  else
    match (k1, k2) with
    | One_q (a, q), One_q (b, q') -> q = q' && same_axis a b
    | Cx (c1, t1), Cx (c2, t2) ->
      (* Shared control or shared target commutes; control-meets-target
         does not. *)
      (c1 = c2 && t1 <> c2 && t2 <> c1) || (t1 = t2 && c1 <> t2 && c2 <> t1)
    | _ -> false

let pp_one_q ppf = function
  | H -> Format.pp_print_string ppf "h"
  | X -> Format.pp_print_string ppf "x"
  | Y -> Format.pp_print_string ppf "y"
  | Z -> Format.pp_print_string ppf "z"
  | S -> Format.pp_print_string ppf "s"
  | Sdg -> Format.pp_print_string ppf "sdg"
  | T -> Format.pp_print_string ppf "t"
  | Tdg -> Format.pp_print_string ppf "tdg"
  | Sx -> Format.pp_print_string ppf "sx"
  | Rx th -> Format.fprintf ppf "rx(%.4f)" th
  | Ry th -> Format.fprintf ppf "ry(%.4f)" th
  | Rz th -> Format.fprintf ppf "rz(%.4f)" th
  | Phase th -> Format.fprintf ppf "p(%.4f)" th

let pp ppf { id = _; kind } =
  match kind with
  | One_q (g, q) -> Format.fprintf ppf "%a q[%d]" pp_one_q g q
  | Cx (a, b) -> Format.fprintf ppf "cx q[%d], q[%d]" a b
  | Cz (a, b) -> Format.fprintf ppf "cz q[%d], q[%d]" a b
  | Rzz (th, a, b) -> Format.fprintf ppf "rzz(%.4f) q[%d], q[%d]" th a b
  | Swap (a, b) -> Format.fprintf ppf "swap q[%d], q[%d]" a b
  | Measure (q, c) -> Format.fprintf ppf "measure q[%d] -> c[%d]" q c
  | Reset q -> Format.fprintf ppf "reset q[%d]" q
  | If_x (c, q) -> Format.fprintf ppf "if (c[%d]) x q[%d]" c q
  | Barrier qs ->
    Format.fprintf ppf "barrier %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf q -> Format.fprintf ppf "q[%d]" q))
      qs

let to_string g = Format.asprintf "%a" pp g
