(** Gate-dependence DAG of a circuit (paper §3.2.1).

    Node [i] is gate [i] of the circuit; there is an edge [i -> j] when
    gate [j] must run after gate [i] because they share a qubit wire or a
    classical bit. Only direct (adjacent-on-wire) dependencies are stored;
    transitive closure is available via {!Reachability}. *)

type t

val build : Circuit.t -> t

(** [of_parts circuit ~preds ~succs ~on_qubit] assembles a DAG from
    precomputed adjacency, for callers that can derive it cheaper than
    {!build} (e.g. by relabelling a parent DAG). The arrays must describe
    exactly what [build circuit] would produce, up to neighbour-list
    order. Shape invariants are checked — array lengths matching the
    circuit, ids in range and listed once, edges pointing forward in
    emission order with [preds]/[succs] mirrored, and [on_qubit] listing
    non-barrier gates of that wire in execution order — and a violation
    raises [Invalid_argument]; semantic agreement with [build] is the
    caller's burden. [~check:false] skips the per-edge checks (the array
    length checks always run) — reserve it for hot callers whose output
    is cross-validated elsewhere. *)
val of_parts :
  ?check:bool ->
  Circuit.t ->
  preds:int list array ->
  succs:int list array ->
  on_qubit:int list array ->
  t
val circuit : t -> Circuit.t
val num_nodes : t -> int
val preds : t -> int -> int list
val succs : t -> int -> int list
val in_degree : t -> int -> int

(** A topological order of the gate ids (gates are stored in execution
    order, so this is [0 .. n-1], kept explicit for clarity). *)
val topo_order : t -> int list

(** Gate ids with in-degree 0. *)
val frontier : t -> int list

(** [longest_path ~weight dag] is the critical-path length where node [i]
    costs [weight i]. With [weight = fun _ -> 1] this equals circuit depth
    over non-barrier gates. *)
val longest_path : weight:(int -> int) -> t -> int

(** [critical_nodes ~weight dag] marks nodes lying on some critical path —
    SR-CaQR only forces gates on the critical path (paper §3.3.1 Step 2). *)
val critical_nodes : weight:(int -> int) -> t -> bool array

(** Gate ids (in execution order) acting on a given qubit. *)
val gates_on_qubit : t -> int -> int list
