(** Quantum circuits: an ordered gate list over [num_qubits] wires and
    [num_clbits] classical bits.

    Circuits are immutable values; [Builder] offers an imperative
    construction surface. Gate ids are the position at construction time and
    are re-assigned by transformations, so they are always dense. *)

type t = private {
  num_qubits : int;
  num_clbits : int;
  gates : Gate.t array;
}

val empty : num_qubits:int -> num_clbits:int -> t

(** [of_kinds ~num_qubits ~num_clbits kinds] numbers the gates 0.. in
    order. Raises [Invalid_argument] if an operand is out of range. *)
val of_kinds : num_qubits:int -> num_clbits:int -> Gate.kind list -> t

(** Array-based variant of {!of_kinds} for callers that accumulate
    kinds into a buffer (e.g. the streaming QASM importer): same
    numbering and validation without an intermediate list. The input
    array is not retained. *)
val of_kind_array : num_qubits:int -> num_clbits:int -> Gate.kind array -> t

val gate_count : t -> int

(** Number of two-qubit unitaries (Swap counts as one gate here). *)
val two_q_count : t -> int

(** SWAP gates present. *)
val swap_count : t -> int

(** Number of mid-circuit measurements, i.e. measurements followed by more
    operations on the same qubit. *)
val mid_circuit_measurements : t -> int

(** Qubits that carry at least one gate. *)
val active_qubits : t -> int list

(** Circuit depth counting every non-barrier gate as one time step on each
    of its wires (classical bits are wires too, so an [If_x] serializes
    after its [Measure]). *)
val depth : t -> int

(** ASAP-scheduled total duration in dt under a duration model. *)
val duration : Duration.t -> t -> int

(** Gate-dependence-respecting qubit interaction graph: vertex per qubit,
    edge when some two-qubit gate couples them (paper Fig. 5). *)
val interaction_graph : t -> Galg.Graph.t

(** [map_qubits ~num_qubits f c] renames qubit wires. *)
val map_qubits : num_qubits:int -> (int -> int) -> t -> t

(** Append circuits (same widths required). *)
val append : t -> t -> t

(** Remove wires that carry no gate, compacting indices downward. Returns
    the compacted circuit and the old-to-new qubit index map ([-1] for
    dropped wires). *)
val compact_qubits : t -> t * int array

(** Append measurement of every active qubit [q] into classical bit [q]. *)
val measure_all : t -> t

val pp : Format.formatter -> t -> unit

(** Canonical content digest (hex): a hash of the widths and the ordered
    gate kinds — the same information the canonical QASM-3 emission
    carries — with rotation angles taken bit-exact. Equal iff the
    circuits have equal [num_qubits], [num_clbits] and gate-kind
    sequences; invariant under the gate list's physical representation
    (gate ids, array identity, builder vs. [of_kinds] construction,
    QASM-3 round-trip). The compilation service uses it as the
    circuit-identity third of its cache key. *)
val digest : t -> string

module Builder : sig
  type circuit := t
  type t

  val create : num_qubits:int -> num_clbits:int -> t
  val add : t -> Gate.kind -> unit
  val h : t -> int -> unit
  val x : t -> int -> unit
  val z : t -> int -> unit
  val rx : t -> float -> int -> unit
  val rz : t -> float -> int -> unit
  val cx : t -> int -> int -> unit
  val cz : t -> int -> int -> unit
  val rzz : t -> float -> int -> int -> unit
  val swap : t -> int -> int -> unit
  val measure : t -> int -> int -> unit
  val reset : t -> int -> unit
  val if_x : t -> int -> int -> unit
  val barrier : t -> int list -> unit
  val build : t -> circuit
end
