type result = {
  physical : Quantum.Circuit.t;
  swaps_added : int;
  qubits_used : int;
  reuses : int;
}

module B = Quantum.Circuit.Builder

type state = {
  device : Hardware.Device.t;
  circuit : Quantum.Circuit.t;
  dag : Quantum.Dag.t;
  critical : bool array;
  indeg : int array;
  mutable frontier : int list;
  l2p : int array;
  p2l : int array;
  used_before : bool array;  (* physical qubit has hosted gates *)
  last_clbit : int array;  (* physical -> clbit of its latest measurement *)
  remaining : int array;  (* logical -> gates left *)
  scratch : int array;  (* physical -> scratch clbit for blind resets *)
  out : B.t;
  mutable swaps : int;
  mutable last_swap : int * int;
  mutable reuses : int;
}

let init device circuit =
  let dag = Quantum.Dag.build circuit in
  let n = Quantum.Dag.num_nodes dag in
  let np = Hardware.Device.num_qubits device in
  let weight i =
    Quantum.Duration.of_kind Quantum.Duration.default
      circuit.Quantum.Circuit.gates.(i).Quantum.Gate.kind
  in
  let remaining = Array.make (max 1 circuit.Quantum.Circuit.num_qubits) 0 in
  Array.iter
    (fun g ->
      if not (Quantum.Gate.is_barrier g.Quantum.Gate.kind) then
        List.iter
          (fun q -> remaining.(q) <- remaining.(q) + 1)
          (Quantum.Gate.qubits g.Quantum.Gate.kind))
    circuit.Quantum.Circuit.gates;
  let base_clbits = circuit.Quantum.Circuit.num_clbits in
  {
    device;
    circuit;
    dag;
    critical = Quantum.Dag.critical_nodes ~weight dag;
    indeg = Array.init n (Quantum.Dag.in_degree dag);
    frontier = List.filter (fun i -> Quantum.Dag.in_degree dag i = 0) (List.init n Fun.id);
    l2p = Array.make (max 1 circuit.Quantum.Circuit.num_qubits) (-1);
    p2l = Array.make np (-1);
    used_before = Array.make np false;
    last_clbit = Array.make np (-1);
    remaining;
    scratch = Array.init np (fun p -> base_clbits + p);
    out = B.create ~num_qubits:np ~num_clbits:(base_clbits + np);
    swaps = 0;
    last_swap = (-1, -1);
    reuses = 0;
  }

let kind_of st i = st.circuit.Quantum.Circuit.gates.(i).Quantum.Gate.kind

(* Reclaim-then-reuse: map logical [l] onto physical [ph]; a previously
   used physical gets a conditional reset first (Fig. 2 (b): its own last
   measurement drives the X; a blind reclaim measures into scratch). *)
let place st l ph =
  Guard.Inject.hit "sr.place";
  if st.p2l.(ph) >= 0 then invalid_arg "Sr_caqr.place: occupied";
  if st.used_before.(ph) then begin
    st.reuses <- st.reuses + 1;
    Obs.Metrics.incr "sr.reuses";
    if st.last_clbit.(ph) >= 0 then B.if_x st.out st.last_clbit.(ph) ph
    else begin
      B.measure st.out ph st.scratch.(ph);
      B.if_x st.out st.scratch.(ph) ph
    end;
    st.last_clbit.(ph) <- -1
  end;
  st.l2p.(l) <- ph;
  st.p2l.(ph) <- l

let free_physicals st =
  let acc = ref [] in
  for p = Hardware.Device.num_qubits st.device - 1 downto 0 do
    if st.p2l.(p) = -1 then acc := p :: !acc
  done;
  !acc

(* Future partners of logical [l] that are already mapped (lookahead). *)
let mapped_partners st l =
  let acc = ref [] in
  Array.iter
    (fun g ->
      let k = g.Quantum.Gate.kind in
      if Quantum.Gate.is_two_q k then
        match Quantum.Gate.qubits k with
        | [ a; b ] ->
          if a = l && st.l2p.(b) >= 0 then acc := st.l2p.(b) :: !acc
          else if b = l && st.l2p.(a) >= 0 then acc := st.l2p.(a) :: !acc
        | _ -> ())
    st.circuit.Quantum.Circuit.gates;
  !acc

let best_by score = function
  | [] -> None
  | x :: rest ->
    Some
      (fst
         (List.fold_left
            (fun (bx, bs) y ->
              let s = score y in
              if s < bs then (y, s) else (bx, bs))
            (x, score x) rest))

(* Map an unmapped logical with no mapped partner: prefer well-connected,
   low-error physicals close to the qubits its future gates will touch. *)
let map_fresh st l =
  let partners = mapped_partners st l in
  let score p =
    let look =
      List.fold_left (fun acc q -> acc + Hardware.Device.distance st.device p q) 0 partners
    in
    (10. *. float_of_int look) -. Hardware.Device.qubit_quality st.device p
  in
  match best_by score (free_physicals st) with
  | Some p -> place st l p
  | None ->
    Guard.Error.fail ~stage:"core.sr" ~site:"sr.place"
      "no free physical qubit for logical %d" l

(* Map an unmapped logical next to its already-mapped gate partner,
   nudged toward its future mapped partners (lookahead) and breaking
   ties by readout/link error (§3.3.1 Step 2). *)
let map_near st l partner_phys =
  let partners = mapped_partners st l in
  let score p =
    let d = Hardware.Device.distance st.device p partner_phys in
    let look =
      List.fold_left
        (fun acc q -> acc + Hardware.Device.distance st.device p q)
        0 partners
    in
    let link_err =
      if Hardware.Device.adjacent st.device p partner_phys then
        Hardware.Device.cx_error st.device p partner_phys
      else 0.05
    in
    (100. *. float_of_int d)
    +. (10. *. float_of_int look)
    +. Hardware.Device.readout_error st.device p
    +. link_err
  in
  match best_by score (free_physicals st) with
  | Some p -> place st l p
  | None ->
    Guard.Error.fail ~stage:"core.sr" ~site:"sr.place"
      "no free physical qubit near physical %d for logical %d" partner_phys l

let map_gate_qubits st i =
  match Quantum.Gate.qubits (kind_of st i) with
  | [ q ] -> if st.l2p.(q) < 0 then map_fresh st q
  | [ a; b ] ->
    let ma = st.l2p.(a) >= 0 and mb = st.l2p.(b) >= 0 in
    if (not ma) && not mb then begin
      (* Paper: map the qubit with more gates first. *)
      let first, second =
        if st.remaining.(a) >= st.remaining.(b) then (a, b) else (b, a)
      in
      map_fresh st first;
      map_near st second st.l2p.(first)
    end
    else if not ma then map_near st a st.l2p.(b)
    else if not mb then map_near st b st.l2p.(a)
  | qs ->
    (* Barriers span any number of wires; each unmapped operand still
       needs a home or the gate never becomes executable. *)
    List.iter (fun q -> if st.l2p.(q) < 0 then map_fresh st q) qs

let complete st i =
  List.iter
    (fun j ->
      st.indeg.(j) <- st.indeg.(j) - 1;
      if st.indeg.(j) = 0 then st.frontier <- j :: st.frontier)
    (Quantum.Dag.succs st.dag i)

(* Emit gate [i] (operands mapped and, for 2q, adjacent). *)
let emit st i =
  let kind = kind_of st i in
  let mapped = Quantum.Gate.map_qubits (fun q -> st.l2p.(q)) kind in
  B.add st.out mapped;
  (match mapped with
   | Quantum.Gate.Measure (p, c) -> st.last_clbit.(p) <- c
   | k -> List.iter (fun p -> st.last_clbit.(p) <- -1) (Quantum.Gate.qubits k));
  List.iter (fun p -> st.used_before.(p) <- true) (Quantum.Gate.qubits mapped);
  if not (Quantum.Gate.is_barrier kind) then
    List.iter
      (fun l ->
        st.remaining.(l) <- st.remaining.(l) - 1;
        if st.remaining.(l) = 0 then begin
          (* Step 4: reclaim the physical qubit. *)
          st.p2l.(st.l2p.(l)) <- -1
        end)
      (Quantum.Gate.qubits kind);
  st.last_swap <- (-1, -1);
  complete st i

let executable st i =
  let k = kind_of st i in
  let qs = Quantum.Gate.qubits k in
  List.for_all (fun q -> st.l2p.(q) >= 0) qs
  &&
  if Quantum.Gate.is_two_q k then
    match qs with
    | [ a; b ] -> Hardware.Device.adjacent st.device st.l2p.(a) st.l2p.(b)
    | _ -> true
  else true

let all_mapped st i =
  List.for_all (fun q -> st.l2p.(q) >= 0) (Quantum.Gate.qubits (kind_of st i))

(* One heuristic SWAP, scored against every mapped-but-distant frontier
   gate plus a lookahead window (the "side-effect on the following
   gates" of §3.3.1 Step 3), preferring low-error links; the displaced
   free qubit is reset if its state is stale. *)
let lookahead_window = 12
let lookahead_weight = 0.5

let mapped_two_q_pairs st ids =
  List.filter_map
    (fun i ->
      match Quantum.Gate.qubits (kind_of st i) with
      | [ a; b ]
        when Quantum.Gate.is_two_q (kind_of st i)
             && st.l2p.(a) >= 0
             && st.l2p.(b) >= 0 ->
        Some (a, b)
      | _ -> None)
    ids

let extended_set st =
  let acc = ref [] and count = ref 0 in
  let seen = Hashtbl.create 32 in
  let q = Queue.create () in
  List.iter (fun i -> Queue.add i q) st.frontier;
  while (not (Queue.is_empty q)) && !count < lookahead_window do
    let i = Queue.pop q in
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      (match mapped_two_q_pairs st [ i ] with
       | [ pair ] ->
         acc := pair :: !acc;
         incr count
       | _ -> ());
      List.iter (fun j -> Queue.add j q) (Quantum.Dag.succs st.dag i)
    end
  done;
  !acc

let insert_swap st i =
  match Quantum.Gate.qubits (kind_of st i) with
  | [ a; b ] ->
    let pa = st.l2p.(a) and pb = st.l2p.(b) in
    let front = mapped_two_q_pairs st st.frontier in
    let ext = extended_set st in
    let candidates =
      List.map (fun n -> (pa, n)) (Hardware.Device.neighbors st.device pa)
      @ List.map (fun n -> (pb, n)) (Hardware.Device.neighbors st.device pb)
    in
    (* Progress guarantee: only swaps that strictly shrink THIS gate's
       distance are considered; the frontier/lookahead sums just rank
       them. Otherwise help for other pairs can dominate and the router
       wanders without ever unblocking the stuck gate. *)
    let gate_dist (p, n) =
      let phys q =
        let ph = st.l2p.(q) in
        if ph = p then n else if ph = n then p else ph
      in
      Hardware.Device.distance st.device (phys a) (phys b)
    in
    let d0 = Hardware.Device.distance st.device pa pb in
    let candidates =
      List.filter (fun cand -> gate_dist cand < d0) candidates
    in
    let score (p, n) =
      let phys q =
        let ph = st.l2p.(q) in
        if ph = p then n else if ph = n then p else ph
      in
      let dist_sum pairs =
        List.fold_left
          (fun acc (x, y) ->
            acc + Hardware.Device.distance st.device (phys x) (phys y))
          0 pairs
      in
      (100. *. float_of_int (dist_sum front))
      +. (100. *. lookahead_weight *. float_of_int (dist_sum ext))
      +. Hardware.Device.cx_error st.device p n
      (* Anti-oscillation: undoing the previous swap is a last resort. *)
      +. (if (p, n) = st.last_swap || (n, p) = st.last_swap then 10000. else 0.)
    in
    (match best_by score candidates with
     | Some (p, n) ->
       (* Swapping garbage state into the computation would corrupt it:
          reset a stale free qubit first. *)
       let clean q =
         if st.p2l.(q) = -1 && st.used_before.(q) then begin
           if st.last_clbit.(q) >= 0 then B.if_x st.out st.last_clbit.(q) q
           else begin
             B.measure st.out q st.scratch.(q);
             B.if_x st.out st.scratch.(q) q
           end;
           st.last_clbit.(q) <- -1
         end
       in
       clean p;
       clean n;
       B.swap st.out p n;
       st.used_before.(p) <- true;
       st.used_before.(n) <- true;
       st.last_clbit.(p) <- -1;
       st.last_clbit.(n) <- -1;
       st.swaps <- st.swaps + 1;
       Obs.Metrics.incr "sr.swaps";
       st.last_swap <- (p, n);
       (* Update occupancy. *)
       let lp = st.p2l.(p) and ln = st.p2l.(n) in
       st.p2l.(p) <- ln;
       st.p2l.(n) <- lp;
       if lp >= 0 then st.l2p.(lp) <- n;
       if ln >= 0 then st.l2p.(ln) <- p
     | None ->
       Guard.Error.fail ~stage:"core.sr" ~site:"sr.place"
         "insert_swap: isolated qubit (no distance-reducing swap for %d-%d)"
         pa pb)
  | _ -> invalid_arg "Sr_caqr.insert_swap: not a 2-qubit gate"

let run st =
  Obs.Metrics.incr "sr.runs";
  Obs.Metrics.time "time.sr" @@ fun () ->
  let max_iters = (Quantum.Dag.num_nodes st.dag * 50) + 1000 in
  let tick =
    Guard.Budget.ticker ~stage:"core.sr" ~site:"sr.place" ~limit:max_iters ()
  in
  while st.frontier <> [] do
    tick ();
    let emitted = ref false in
    (* Emit everything executable (Step 3). *)
    let rec drain () =
      let ready, rest = List.partition (executable st) st.frontier in
      if ready <> [] then begin
        emitted := true;
        st.frontier <- rest;
        List.iter (emit st) (List.sort compare ready);
        drain ()
      end
    in
    drain ();
    (* Map qubits of critical frontier gates (Step 2); delayed gates keep
       waiting. *)
    let to_map =
      List.filter
        (fun i -> st.critical.(i) && not (all_mapped st i))
        st.frontier
    in
    if to_map <> [] then begin
      List.iter (map_gate_qubits st) (List.sort compare to_map);
      emitted := true
    end;
    if not !emitted && st.frontier <> [] then begin
      (* No critical work: route a mapped-but-distant pair, else force-map
         the oldest delayed gate (its slack is spent). *)
      let blocked = List.filter (all_mapped st) st.frontier in
      match List.sort compare blocked with
      | i :: _ -> insert_swap st i
      | [] ->
        (match List.sort compare st.frontier with
         | i :: _ -> map_gate_qubits st i
         | [] -> ())
    end
  done;
  let physical = B.build st.out in
  {
    physical;
    swaps_added = st.swaps;
    qubits_used = List.length (Quantum.Circuit.active_qubits physical);
    reuses = st.reuses;
  }

let regular device circuit = run (init device circuit)

let commutable ?gamma ?beta device problem_graph =
  (* Paper §3.3.2 Step 1: let QS-CaQR propose reuse sweet spots, then
     compile each with the lazy mapper and keep the cheapest result. *)
  let steps = Commute.sweep ?gamma ?beta ~mode:`Auto problem_graph in
  if steps = [] then invalid_arg "Sr_caqr.commutable: empty sweep";
  let arr = Array.of_list steps in
  let min_depth =
    Array.fold_left
      (fun best (s : Commute.step) ->
        match best with
        | Some (b : Commute.step) when b.Commute.depth <= s.Commute.depth -> best
        | _ -> Some s)
      None arr
    |> Option.get
  in
  let candidates =
    List.sort_uniq compare
      [ 0; Array.length arr / 2; Array.length arr - 1 ]
    |> List.map (fun i -> arr.(i))
  in
  let candidates =
    if List.memq min_depth candidates then candidates
    else min_depth :: candidates
  in
  let compiled =
    List.map
      (fun (s : Commute.step) ->
        regular device (Commute.emit ?gamma ?beta s.Commute.plan))
      candidates
  in
  List.fold_left
    (fun best r ->
      match best with
      | Some b
        when (b.swaps_added, b.qubits_used) <= (r.swaps_added, r.qubits_used) ->
        best
      | _ -> Some r)
    None compiled
  |> Option.get
