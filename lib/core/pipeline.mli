(** The user-facing CaQR entry points: pick a strategy, get a compiled
    circuit plus the metrics the paper's evaluation reports. *)

(** Input classification: regular circuits carry their dependence in the
    gate order; commutable instances carry the problem graph whose edges
    are freely reorderable phase gates (QAOA). *)
type input =
  | Regular of Quantum.Circuit.t
  | Commutable of Galg.Graph.t

type strategy =
  | Baseline  (** no reuse: layout + SABRE routing ("Qiskit O3" stand-in) *)
  | Qs_max_reuse  (** QS-CaQR driven to the fewest qubits *)
  | Qs_min_depth  (** QS-CaQR version with the best compiled depth *)
  | Qs_best_fidelity
      (** QS-CaQR version maximizing estimated success probability
          (the paper's fidelity-tuned objective) *)
  | Qs_target of int  (** QS-CaQR at a user qubit budget *)
  | Sr  (** SR-CaQR lazy mapping *)
  | Cone
      (** causal-cone reuse ({!Cone_caqr}): cone-size measurement
          ordering with lazy allocation and wire recycling *)
  | Gidnet
      (** GidNET reuse ({!Gidnet_caqr}): global chain extraction over
          the candidate-pair graph *)

(** Compilation options, replacing the optional-argument list that
    [compile] used to grow. Build variations with functional update:
    [{ Pipeline.default with verify = Some Verify.Auto }]. *)
type options = {
  verify : Verify.level option;
      (** translation-validate the artifact at this level *)
  seed : int;  (** drives the verification probes (default 1) *)
  collect_metrics : bool;
      (** reset {!Obs.Metrics} before compiling and attach a snapshot to
          the report *)
  search : Qs_caqr.search_opts;  (** QS-CaQR search configuration *)
  jobs : int;
      (** domains for the candidate fan-out via {!Exec.Pool}
          (default 1). The report is byte-identical for every value;
          [jobs > 1] only changes wall-clock time. *)
  fallback : bool;
      (** supervise the compile with the degradation ladder
          (default false): a strategy that raises demotes one rung —
          [Sr] → [Qs_max_reuse] → [Baseline]; [Qs_target _], [Cone] and
          [Gidnet] → [Qs_max_reuse] → [Baseline]; other QS strategies →
          [Baseline]
          — so [compile] returns SOME valid physical circuit, or raises
          a single {!Guard.Error.Guard_error} naming every rung it
          tried. Each demotion is recorded in [report.degraded] and
          bumps the ["guard.ladder.demotions"] counter. A crashing
          validator degrades the verdict to [Inconclusive] instead of
          aborting. Without [fallback], failures propagate exactly as
          before. *)
  deadline_ms : int option;
      (** cooperative wall-clock budget for the whole compile (default
          [None]): hot loops poll it via {!Guard.Budget} and trip a
          typed [Budget_exceeded], which the ladder (when [fallback])
          treats like any other rung failure *)
}

val default : options

(** Stable, human-readable fingerprint of every option field that can
    affect the compiled artifact or report body. [jobs] and
    [collect_metrics] are excluded (byte-identity contract / snapshot
    only), as is [deadline_ms] (execution policy — a cached result
    trivially meets any deadline; degraded reports are never cached).
    The compilation service combines this with {!Quantum.Circuit.digest}
    and {!Version.engine} to form its content-addressed cache key. *)
val options_fingerprint : options -> string

(** One rung of the degradation ladder that failed before the strategy
    in [report.strategy] succeeded. *)
type degraded = {
  from_strategy : strategy;
  error : Guard.Error.t;
  backtrace : string;  (** empty when backtrace recording is off *)
}

type report = {
  strategy : strategy;
  logical : Quantum.Circuit.t;  (** after reuse transformation *)
  physical : Quantum.Circuit.t;
  stats : Transpiler.Transpile.stats;
  reuse_pairs : int;
  quality : Quality.t;
      (** {!Quality.Exact} when the reuse engine ran to natural
          completion (always the case for [Baseline] and [Sr]);
          {!Quality.Anytime} when the wall-clock budget (or the QS node
          cap) cut the engine short and the report carries its best
          incumbent instead. Anytime artifacts are fully routed and
          verifiable — only their reuse count may be short of what an
          unbounded run would find. *)
  verification : Verify.verdict option;
      (** translation-validation verdict, present when [compile] was
          asked to verify *)
  metrics : Obs.Metrics.snapshot option;
      (** counters and per-phase wall times, present when
          [options.collect_metrics] was set *)
  degraded : degraded list;
      (** the failures that demoted the compile here, oldest first;
          [[]] unless [options.fallback] kicked in. [strategy] is the
          rung that actually produced the artifact. *)
}

(** [compile ?options device strategy input]. [Qs_target] raises
    [Failure] when the budget is unreachable.

    The reuse-engine phase runs under a scoped share (60%) of the
    remaining wall budget, reserving headroom for routing and
    verification. An engine-phase budget trip is not a failure: the
    anytime engines ([Qs_max_reuse], [Qs_target], [Cone], [Gidnet])
    commit their best-so-far result and the report is tagged
    [quality = Anytime _] — the ladder only demotes on hard errors. A
    trip during routing or verification still raises (and rides the
    ladder when [options.fallback] is set).

    With [options.verify], the compiled artifact is independently
    validated at the requested {!Verify.level} (structural reuse
    conditions, device legality, and — at semantic levels — exact or
    probe-based distribution equivalence against the untransformed
    input); the verdict lands in [report.verification]. [options.seed]
    drives the probe checker so verification is reproducible. *)
val compile :
  ?options:options ->
  Hardware.Device.t ->
  strategy ->
  input ->
  report

(** [compile_all ?options device strategies input] compiles (and, when
    [options.verify] is set, translation-validates) every strategy,
    fanning the strategies out over [options.jobs] domains. The reports
    come back in [strategies] order and are byte-identical to compiling
    each strategy sequentially. *)
val compile_all :
  ?options:options ->
  Hardware.Device.t ->
  strategy list ->
  input ->
  report list

(** One reuse level of the qubit/depth tradeoff sweep, transpiled. *)
type sweep_row = {
  usage : int;  (** logical wires at this reuse level *)
  logical_depth : int;
  stats : Transpiler.Transpile.stats;
}

(** [sweep_stats ?jobs ?search device input] — the full tradeoff table
    (paper Figs. 3/13/14), with the per-point transpile work spread over
    [jobs] domains. Rows keep sweep order. *)
val sweep_stats :
  ?jobs:int ->
  ?search:Qs_caqr.search_opts ->
  Hardware.Device.t ->
  input ->
  sweep_row list

(** The paper's applicability test: does reuse help this input at all?
    Returns a human-readable verdict along with the boolean. *)
val beneficial : Hardware.Device.t -> input -> bool * string

val strategy_name : strategy -> string

(** The named strategies, in display order — the single source of truth
    for the CLI [--strategy] grammar and the service protocol.
    [Qs_target] is the one unnamed family; {!strategy_of_name} parses
    it from ["qs-target-<n>"] or a bare integer budget. *)
val all_strategies : (string * strategy) list

(** Parses {!strategy_name} output (and bare integer budgets) back to a
    strategy: a total round-trip over every variant, pinned by test so a
    future engine cannot be added without wiring both directions. *)
val strategy_of_name : string -> (strategy, string) result
