type t = Exact | Anytime of { steps_done : int; frontier_left : int }

let is_exact = function Exact -> true | Anytime _ -> false
let name = function Exact -> "exact" | Anytime _ -> "anytime"

let to_string = function
  | Exact -> "exact"
  | Anytime { steps_done; frontier_left } ->
    Printf.sprintf "anytime (steps=%d, frontier=%d)" steps_done frontier_left
