type objective = Depth | Duration
type order = Score | Chain | Both
type engine = Incremental | Fresh

type search_opts = {
  objective : objective;
  budget : int;
  order : order;
  engine : engine;
}

let default_opts =
  { objective = Depth; budget = 400; order = Both; engine = Incremental }

type step = {
  usage : int;
  circuit : Quantum.Circuit.t;
  pairs : Reuse.pair list;
  logical_depth : int;
  logical_duration : int;
}

let score objective analysis pair =
  match objective with
  | Depth -> Reuse.predict_depth analysis pair
  | Duration -> Reuse.predict_duration analysis pair

let best_pair objective circuit =
  let analysis = Reuse.analyze circuit in
  let candidates = Reuse.valid_pairs analysis in
  List.fold_left
    (fun best pair ->
      let s = score objective analysis pair in
      (* Tie-break on the other metric to keep choices deterministic and
         sensible. *)
      let s2 =
        match objective with
        | Depth -> Reuse.predict_duration analysis pair
        | Duration -> Reuse.predict_depth analysis pair
      in
      match best with
      | Some (_, s', s2') when (s', s2') <= (s, s2) -> best
      | _ -> Some (pair, s, s2))
    None candidates
  |> Option.map (fun (pair, _, _) -> pair)

let reduce_once ?(opts = default_opts) circuit =
  match best_pair opts.objective circuit with
  | None -> None
  | Some pair -> Some (pair, Reuse.apply circuit pair)

let model = Quantum.Duration.default

let make_step circuit pairs =
  {
    usage = Reuse.qubit_usage circuit;
    circuit;
    pairs;
    logical_depth = Quantum.Circuit.depth circuit;
    logical_duration = Quantum.Circuit.duration model circuit;
  }

(* Greedy-by-score reduction can paint itself into a corner (e.g. two
   parallel reuse chains whose gates interleave on a shared partner can
   never merge afterwards), so budget-bounded DFS backtracking is used
   when a hard qubit target must be reached. Candidates are still tried
   best-score-first, so the first solution found is the greedy one
   whenever greedy succeeds. *)
(* Candidate orderings for the backtracking search. [Score] is the
   greedy objective order; [Chain] reuses the earliest-finishing wire
   first, which builds serial chains (the paper's Fig. 1 construction)
   and keeps merge options open for deep reductions. *)
let ordered_candidates order objective analysis =
  let key p =
    match order with
    | Score | Both -> (score objective analysis p, 0)
    | Chain ->
      (Reuse.src_finish_depth analysis p, Reuse.dst_start_depth analysis p)
  in
  (* Decorate-sort-undecorate with a stable sort: same order as sorting
     with [key] in the comparator (ties keep [valid_pairs] order), but
     each key is computed once — the candidate lists of 100-1000 qubit
     circuits run to ~k^2 entries, where comparator-side key evaluation
     dominated the whole search. *)
  let decorated =
    Array.of_list
      (List.map (fun p -> (key p, p)) (Reuse.valid_pairs analysis))
  in
  Array.stable_sort (fun (ka, _) (kb, _) -> compare ka kb) decorated;
  Array.fold_right (fun (_, p) acc -> p :: acc) decorated []

(* ---- The memoizing incremental engine ----

   One cache outlives every search of a sweep: DFS prefixes are keyed by
   the applied-pair sequence, so when the sweep restarts the search for a
   deeper qubit target, the shared prefix (the greedy spine plus every
   backtracked branch already explored) replays from the cache instead of
   re-deriving analyses and re-sorting candidates. *)
type cache = {
  analyses : (string, Reuse.analysis) Hashtbl.t;
  candidates : (string, Reuse.pair list) Hashtbl.t;
}

(* Caps the tables on degenerate inputs (enormous sweeps); entries past
   the cap are simply recomputed on demand. *)
let cache_capacity = 20_000

let new_cache () =
  { analyses = Hashtbl.create 256; candidates = Hashtbl.create 256 }

let key_of_rev_pairs rev_pairs =
  String.concat ";"
    (List.rev_map
       (fun (p : Reuse.pair) -> Printf.sprintf "%d>%d" p.Reuse.src p.Reuse.dst)
       rev_pairs)

let cached tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some v ->
    Obs.Metrics.incr "qs.cache.hit";
    v
  | None ->
    Obs.Metrics.incr "qs.cache.miss";
    let v = compute () in
    if Hashtbl.length tbl < cache_capacity then Hashtbl.add tbl key v;
    v

let root_analysis cache circuit =
  cached cache.analyses "" (fun () -> Reuse.analyze circuit)

let child_analysis cache parent pair rev_pairs =
  cached cache.analyses (key_of_rev_pairs rev_pairs) (fun () ->
      Reuse.apply_incremental parent pair)

let candidates_for cache order objective analysis rev_pairs =
  let tag = match order with Score | Both -> "s" | Chain -> "c" in
  let obj = match objective with Depth -> "d" | Duration -> "t" in
  let key = tag ^ obj ^ "|" ^ key_of_rev_pairs rev_pairs in
  cached cache.candidates key (fun () ->
      ordered_candidates order objective analysis)

(* The anytime layer watches the DFS through this hook: [note] fires on
   every node (usage, transformed circuit, reversed pair prefix) so an
   incumbent can be maintained, and [frontier] tracks how many counted
   candidate branches were never tried — positive deltas when a node's
   candidate list is generated, -1 as each is attempted. *)
type observer = {
  note : int -> Quantum.Circuit.t -> Reuse.pair list -> unit;
  frontier : int -> unit;
}

(* A search ends one of three ways, and the quality marker needs to tell
   the last two apart: [Exhausted] means the whole space (under this
   candidate ordering) was explored, [Cut] means the node cap ended it
   early — more budget could still find a solution. *)
type outcome =
  | Found of Quantum.Circuit.t * Reuse.pair list
  | Exhausted
  | Cut

let search_incremental ?observer ~cache order objective budget target circuit =
  let nodes = ref 0 in
  let note u c rp = match observer with Some o -> o.note u c rp | None -> () in
  let frontier d =
    match observer with Some o -> o.frontier d | None -> ()
  in
  let rec go analysis rev_pairs =
    if Reuse.usage analysis <= target then
      Found (Reuse.circuit analysis, List.rev rev_pairs)
    else if !nodes > budget then Cut
    else begin
      let cands = candidates_for cache order objective analysis rev_pairs in
      frontier (List.length cands);
      let rec attempt = function
        | [] -> Exhausted
        | p :: rest ->
          incr nodes;
          Obs.Metrics.incr "qs.search.nodes";
          Guard.Inject.hit "qs.search";
          Guard.Budget.checkpoint ~stage:"core.qs" ~site:"qs.search";
          if !nodes > budget then Cut
          else begin
            frontier (-1);
            let rev_pairs' = p :: rev_pairs in
            let child = child_analysis cache analysis p rev_pairs' in
            note (Reuse.usage child) (Reuse.circuit child) rev_pairs';
            match go child rev_pairs' with
            | Found _ as r -> r
            | Cut -> Cut
            | Exhausted -> attempt rest
          end
      in
      attempt cands
    end
  in
  go (root_analysis cache circuit) []

(* Reference engine: rebuild circuit + closure from scratch at every DFS
   node, exactly as the pre-incremental implementation did. Kept for
   differential testing and for the perf baseline in bench/main.ml. *)
let search_fresh ?observer order objective budget target circuit =
  let nodes = ref 0 in
  let note c rp =
    match observer with
    | Some o -> o.note (Reuse.qubit_usage c) c rp
    | None -> ()
  in
  let frontier d =
    match observer with Some o -> o.frontier d | None -> ()
  in
  let rec go circuit pairs =
    if Reuse.qubit_usage circuit <= target then Found (circuit, List.rev pairs)
    else if !nodes > budget then Cut
    else begin
      let analysis = Reuse.analyze circuit in
      let cands = ordered_candidates order objective analysis in
      frontier (List.length cands);
      let rec attempt = function
        | [] -> Exhausted
        | p :: rest ->
          incr nodes;
          Obs.Metrics.incr "qs.search.nodes";
          Guard.Inject.hit "qs.search";
          Guard.Budget.checkpoint ~stage:"core.qs" ~site:"qs.search";
          if !nodes > budget then Cut
          else begin
            frontier (-1);
            let child = Reuse.apply circuit p in
            let pairs' = p :: pairs in
            note child pairs';
            match go child pairs' with
            | Found _ as r -> r
            | Cut -> Cut
            | Exhausted -> attempt rest
          end
      in
      attempt cands
    end
  in
  go circuit []

let search_with ?observer ~cache opts order target circuit =
  match opts.engine with
  | Incremental ->
    search_incremental ?observer ~cache order opts.objective opts.budget
      target circuit
  | Fresh -> search_fresh ?observer order opts.objective opts.budget target circuit

let search_out ?observer ~cache opts target circuit =
  Obs.Metrics.incr "qs.searches";
  Obs.Metrics.time "time.search" @@ fun () ->
  match opts.order with
  | (Score | Chain) as order ->
    search_with ?observer ~cache opts order target circuit
  | Both -> (
    match search_with ?observer ~cache opts Score target circuit with
    | Found _ as r -> r
    | first -> (
      match search_with ?observer ~cache opts Chain target circuit with
      | Found _ as r -> r
      | Exhausted -> first (* Cut on the Score pass still means "cut" *)
      | Cut -> Cut))

let found = function Found (c, pairs) -> Some (c, pairs) | Exhausted | Cut -> None

let search_in ~cache opts target circuit =
  found (search_out ~cache opts target circuit)

let search ?(opts = default_opts) ~target circuit =
  search_in ~cache:(new_cache ()) opts target circuit

(* The tradeoff sweep re-searches from the original circuit for every
   qubit limit (the paper: "for each application, we tried different qubit
   limit numbers, and generate different compiled circuits"). A fresh
   search per target avoids greedy dead ends polluting deeper points:
   reaching k - 1 always passes through some k-qubit circuit, so the sweep
   stops at the first unreachable target. The searches share one memo
   cache, so each restart replays its predecessor's prefix for free. *)
let sweep ?(opts = default_opts) ?(stop_at = 1) circuit =
  let cache = new_cache () in
  let base = make_step circuit [] in
  let rec go target acc =
    if target < stop_at then List.rev acc
    else
      match search_in ~cache opts target circuit with
      | Some (c, pairs) ->
        let step = make_step c pairs in
        go (step.usage - 1) (step :: acc)
      | None -> List.rev acc
  in
  go (base.usage - 1) [ base ]

let reduce_to ?(opts = default_opts) ~target circuit =
  Option.map fst (search ~opts ~target circuit)

let min_qubits ?(opts = default_opts) circuit =
  match List.rev (sweep ~opts circuit) with
  | last :: _ -> last.usage
  | [] -> Reuse.qubit_usage circuit

let max_reuse ?(opts = default_opts) circuit =
  match reduce_to ~opts ~target:(min_qubits ~opts circuit) circuit with
  | Some c -> c
  | None -> circuit

let opportunity circuit =
  let analysis = Reuse.analyze circuit in
  match Reuse.valid_pairs analysis with
  | [] -> None
  | p :: _ -> Some p

(* ---- Anytime search: the quality/time dial ----

   The same per-target restart descent as [min_qubits] + [search]
   (identical outputs when nothing trips — pinned by the golden suite),
   instrumented with a best-so-far incumbent: every DFS node with fewer
   active qubits than the incumbent snapshots (circuit, pairs). A
   wall-clock [Guard.Budget] trip returns the incumbent tagged
   [Anytime] instead of letting the failure escape, so the degradation
   ladder never has to throw partial work away.

   Only the wall clock makes a result [Anytime]. The DFS node cap
   ([opts.budget]) ending the final search is the configured engine
   running to its deterministic completion — same options, same result,
   every run — so it stays [Exact]: callers (the serve cache in
   particular) rely on [Exact] meaning deadline-independent. *)

type anytime = {
  circuit : Quantum.Circuit.t;
  pairs : Reuse.pair list;
  width : int;
  quality : Quality.t;
}

let incumbent_observer circuit =
  let best = ref (circuit, [], Reuse.qubit_usage circuit) in
  let steps = ref 0 and frontier = ref 0 in
  let observer =
    {
      note =
        (fun usage c rev_pairs ->
          incr steps;
          let _, _, bu = !best in
          if usage < bu then best := (c, List.rev rev_pairs, usage));
      frontier = (fun d -> frontier := !frontier + d);
    }
  in
  (best, steps, frontier, observer)

let anytime_return best steps frontier =
  Obs.Metrics.incr "qs.anytime.returns";
  let circuit, pairs, width = best in
  {
    circuit;
    pairs;
    width;
    quality =
      Quality.Anytime { steps_done = steps; frontier_left = max 0 frontier };
  }

let max_reuse_anytime ?(opts = default_opts) circuit =
  let cache = new_cache () in
  let best, steps, frontier, observer = incumbent_observer circuit in
  let rec descend target =
    if target < 1 then Exhausted
    else
      match search_out ~observer ~cache opts target circuit with
      | Found (c, _) ->
        (* Leftover branch counts from a solved search are not "space
           left unexplored" — the descent moves on to a deeper target. *)
        frontier := 0;
        descend (Reuse.qubit_usage c - 1)
      | (Exhausted | Cut) as ending -> ending
  in
  match descend (Reuse.qubit_usage circuit - 1) with
  | Found _ | Exhausted | Cut ->
    let circuit, pairs, width = !best in
    { circuit; pairs; width; quality = Quality.Exact }
  | exception Guard.Error.Budget_exceeded _ ->
    anytime_return !best !steps !frontier

let search_anytime ?(opts = default_opts) ~target circuit =
  let cache = new_cache () in
  let best, steps, frontier, observer = incumbent_observer circuit in
  match search_out ~observer ~cache opts target circuit with
  | Found (c, pairs) ->
    Some
      {
        circuit = c;
        pairs;
        width = Reuse.qubit_usage c;
        quality = Quality.Exact;
      }
  | Exhausted | Cut -> None
  | exception Guard.Error.Budget_exceeded _ ->
    Some (anytime_return !best !steps !frontier)
