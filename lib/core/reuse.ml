type pair = { src : int; dst : int }

type analysis = {
  circuit : Quantum.Circuit.t;
  dag : Quantum.Dag.t;
  (* qreach.(a).(b): some gate on qubit a reaches (reflexively) some gate
     on qubit b. This qubit-level projection of the O(n^2) gate closure is
     all Condition 2 ever consults, and — unlike the gate-level closure —
     it admits an exact O(k^2) update under a reuse application. *)
  qreach : bool array array;
  inter : Galg.Graph.t;
  active : bool array;
  (* Does the circuit contain barrier pseudo-gates? Barriers chain on
     their wires without appearing in [active]/[inter]/[on_qubit], so the
     incremental algebra cannot track them; their presence forces
     {!apply_incremental} onto the fresh-rebuild path. *)
  barriers : bool;
  (* earliest finish / longest tail per gate, in unit depth and in dt *)
  ef_depth : int array;
  tail_depth : int array;
  ef_dur : int array;
  tail_dur : int array;
  cp_depth : int;
  cp_dur : int;
  model : Quantum.Duration.t;
  (* Gates touching each clbit, for the reset splice's sole-user test.
     Lazy: predictions consult it on every candidate pair, but only wires
     ending in a measurement ever force it. *)
  clbit_users : int array Lazy.t;
  (* Per-qubit prediction summaries (max/min over the wire's gates of the
     gate-level schedules above). Scoring a candidate pair is then O(1),
     which is what makes sorting the ~k^2 candidate lists of 100-1000
     qubit circuits affordable; one O(gates) pass amortizes over every
     pair scored against this analysis. Lazy: [valid]/[valid_pairs]
     never force it. *)
  q_summary : qsummary Lazy.t;
}

and qsummary = {
  fin_depth : int array;  (* max ef_depth over gates on q; 0 if none *)
  fin_dur : int array;
  tail_d : int array;  (* max tail_depth over gates on q; 0 if none *)
  tail_u : int array;
  start_d : int array;  (* min ef_depth over gates on q; 0 if none *)
  ends_meas : bool array;  (* wire ends in a sole-user measurement *)
}

(* Earliest-finish and longest-tail schedules in unit depth and in dt,
   one forward and one backward sweep over the DAG for both weightings. *)
let schedules circuit dag model =
  let gates = circuit.Quantum.Circuit.gates in
  let n = Quantum.Dag.num_nodes dag in
  let wd i =
    if Quantum.Gate.is_barrier gates.(i).Quantum.Gate.kind then 0 else 1
  in
  let wu i = Quantum.Duration.of_kind model gates.(i).Quantum.Gate.kind in
  let ef_depth = Array.make n 0 and ef_dur = Array.make n 0 in
  let cp_depth = ref 0 and cp_dur = ref 0 in
  (* unboxed accumulator loops: this runs once per search node, so the
     per-node ref cells and iterator closures show up in profiles *)
  let rec fwd sd su = function
    | [] -> (sd, su)
    | p :: tl ->
      fwd
        (if ef_depth.(p) > sd then ef_depth.(p) else sd)
        (if ef_dur.(p) > su then ef_dur.(p) else su)
        tl
  in
  for i = 0 to n - 1 do
    let sd, su = fwd 0 0 (Quantum.Dag.preds dag i) in
    ef_depth.(i) <- sd + wd i;
    ef_dur.(i) <- su + wu i;
    if ef_depth.(i) > !cp_depth then cp_depth := ef_depth.(i);
    if ef_dur.(i) > !cp_dur then cp_dur := ef_dur.(i)
  done;
  let tail_depth = Array.make n 0 and tail_dur = Array.make n 0 in
  let rec bwd sd su = function
    | [] -> (sd, su)
    | s :: tl ->
      bwd
        (if tail_depth.(s) > sd then tail_depth.(s) else sd)
        (if tail_dur.(s) > su then tail_dur.(s) else su)
        tl
  in
  for i = n - 1 downto 0 do
    let sd, su = bwd 0 0 (Quantum.Dag.succs dag i) in
    tail_depth.(i) <- sd + wd i;
    tail_dur.(i) <- su + wu i
  done;
  (ef_depth, ef_dur, tail_depth, tail_dur, !cp_depth, !cp_dur)

(* Assemble an analysis from its precomputed set-level parts plus the
   O(n+e) schedules, shared by the fresh and incremental constructions. *)
let finish_analysis circuit dag qreach ~inter ~active ~barriers =
  let model = Quantum.Duration.default in
  let ef_depth, ef_dur, tail_depth, tail_dur, cp_depth, cp_dur =
    schedules circuit dag model
  in
  let clbit_users =
    lazy
      (let users = Array.make circuit.Quantum.Circuit.num_clbits 0 in
       Array.iter
         (fun g ->
           List.iter
             (fun c -> users.(c) <- users.(c) + 1)
             (Quantum.Gate.clbits g.Quantum.Gate.kind))
         circuit.Quantum.Circuit.gates;
       users);
  in
  let q_summary =
    lazy
      (let k = circuit.Quantum.Circuit.num_qubits in
       let fin_depth = Array.make k 0
       and fin_dur = Array.make k 0
       and tail_d = Array.make k 0
       and tail_u = Array.make k 0
       and start_d = Array.make k 0
       and ends_meas = Array.make k false in
       for q = 0 to k - 1 do
         match Quantum.Dag.gates_on_qubit dag q with
         | [] -> ()
         | gates ->
           let fd = ref 0
           and fu = ref 0
           and td = ref 0
           and tu = ref 0
           and sd = ref max_int in
           List.iter
             (fun g ->
               if ef_depth.(g) > !fd then fd := ef_depth.(g);
               if ef_dur.(g) > !fu then fu := ef_dur.(g);
               if tail_depth.(g) > !td then td := tail_depth.(g);
               if tail_dur.(g) > !tu then tu := tail_dur.(g);
               if ef_depth.(g) < !sd then sd := ef_depth.(g))
             gates;
           fin_depth.(q) <- !fd;
           fin_dur.(q) <- !fu;
           tail_d.(q) <- !td;
           tail_u.(q) <- !tu;
           start_d.(q) <- !sd;
           (match List.rev gates with
            | last :: _ ->
              (match circuit.Quantum.Circuit.gates.(last).Quantum.Gate.kind with
               | Quantum.Gate.Measure (_, c) ->
                 ends_meas.(q) <- (Lazy.force clbit_users).(c) = 1
               | _ -> ())
            | [] -> ())
       done;
       { fin_depth; fin_dur; tail_d; tail_u; start_d; ends_meas })
  in
  {
    circuit;
    dag;
    qreach;
    inter;
    active;
    barriers;
    ef_depth;
    tail_depth;
    ef_dur;
    tail_dur;
    cp_depth;
    cp_dur;
    model;
    clbit_users;
    q_summary;
  }

let analyze circuit =
  Obs.Metrics.incr "reuse.analyze.fresh";
  Obs.Metrics.time "time.analyze" @@ fun () ->
  let dag = Quantum.Dag.build circuit in
  let reach = Quantum.Reachability.build dag in
  let k = circuit.Quantum.Circuit.num_qubits in
  let qreach = Array.make_matrix k k false in
  for a = 0 to k - 1 do
    let a_gates = Quantum.Dag.gates_on_qubit dag a in
    for b = 0 to k - 1 do
      qreach.(a).(b) <-
        Quantum.Reachability.any_path reach a_gates
          (Quantum.Dag.gates_on_qubit dag b)
    done
  done;
  let active = Array.make k false in
  List.iter (fun q -> active.(q) <- true) (Quantum.Circuit.active_qubits circuit);
  finish_analysis circuit dag qreach
    ~inter:(Quantum.Circuit.interaction_graph circuit)
    ~active
    ~barriers:
      (Array.exists
         (fun g -> Quantum.Gate.is_barrier g.Quantum.Gate.kind)
         circuit.Quantum.Circuit.gates)

let active_qubits a =
  let acc = ref [] in
  for q = Array.length a.active - 1 downto 0 do
    if a.active.(q) then acc := q :: !acc
  done;
  !acc

let reaches a p q = a.qreach.(p).(q)

let condition1 a { src; dst } = not (Galg.Graph.has_edge a.inter src dst)

(* No gate on dst may reach a gate on src. *)
let condition2 a { src; dst } = not a.qreach.(dst).(src)

let valid a ({ src; dst } as p) =
  src <> dst
  && src >= 0
  && dst >= 0
  && src < Array.length a.active
  && dst < Array.length a.active
  && a.active.(src)
  && a.active.(dst)
  && condition1 a p
  && condition2 a p

let valid_pairs a =
  let k = Array.length a.active in
  let acc = ref [] in
  for src = k - 1 downto 0 do
    for dst = k - 1 downto 0 do
      let p = { src; dst } in
      if valid a p then acc := p :: !acc
    done
  done;
  !acc

(* When the wire already ends in a measurement, the reset can be a single
   conditional X driven by that measure's clbit — but only if that measure
   is the clbit's sole user. Emission orders the splice after every src
   gate and before every dst gate and nothing else, so another writer of a
   shared clbit can land between the measure and the conditional X, which
   would then read the wrong value. With no reusable clbit a fresh
   measure + X pair is spliced onto a fresh clbit instead. *)
let reusable_final_clbit a src =
  match List.rev (Quantum.Dag.gates_on_qubit a.dag src) with
  | [] -> None
  | last :: _ ->
    (match a.circuit.Quantum.Circuit.gates.(last).Quantum.Gate.kind with
     | Quantum.Gate.Measure (_, c) ->
       if (Lazy.force a.clbit_users).(c) = 1 then Some c else None
     | _ -> None)

let src_finish_depth a { src; dst = _ } =
  (Lazy.force a.q_summary).fin_depth.(src)

let dst_start_depth a { src = _; dst } = (Lazy.force a.q_summary).start_d.(dst)

let predict_depth a { src; dst } =
  let s = Lazy.force a.q_summary in
  (* A measured wire only needs the conditional X (1 layer); otherwise the
     spliced measure + conditional X costs 2. *)
  let reset_cost = if s.ends_meas.(src) then 1 else 2 in
  max a.cp_depth (s.fin_depth.(src) + reset_cost + s.tail_d.(dst))

let predict_duration ?model a { src; dst } =
  let model = Option.value ~default:a.model model in
  let s = Lazy.force a.q_summary in
  let reset_cost =
    if s.ends_meas.(src) then model.Quantum.Duration.if_x
    else Quantum.Duration.measure_cond_x model
  in
  max a.cp_dur (s.fin_dur.(src) + reset_cost + s.tail_u.(dst))

(* An emitted transform, together with the relabelling data the
   incremental engine needs to derive the child DAG without rebuilding:
   where each parent gate landed, and where the reset splice landed. *)
type emission = {
  em_circuit : Quantum.Circuit.t;
  em_pos : int array;      (* parent gate id -> id in the emitted circuit *)
  em_measure : int option; (* spliced measure's id, when a clbit was added *)
  em_if_x : int;           (* conditional X's id *)
}

(* Kahn topological emission with min-gate-id priority, honoring the extra
   [src gates -> reset node -> dst gates] constraints. *)
let emit (a : analysis) ({ src; dst } as p) =
  let circuit = a.circuit in
  if not (valid a p) then invalid_arg "Reuse.apply: invalid pair";
  let n = Quantum.Dag.num_nodes a.dag in
  let dummy = n in
  let s_gates = Quantum.Dag.gates_on_qubit a.dag src in
  let d_gates = Quantum.Dag.gates_on_qubit a.dag dst in
  (* Does src end in a measurement whose clbit the reset may safely
     drive? Then no new measure (or clbit) is needed. *)
  let existing_clbit = reusable_final_clbit a src in
  let num_clbits =
    match existing_clbit with
    | Some _ -> circuit.Quantum.Circuit.num_clbits
    | None -> circuit.Quantum.Circuit.num_clbits + 1
  in
  let reset_clbit =
    match existing_clbit with
    | Some c -> c
    | None -> circuit.Quantum.Circuit.num_clbits
  in
  (* Successor lists including the dummy node. *)
  let succs = Array.make (n + 1) [] in
  let indeg = Array.make (n + 1) 0 in
  let add_edge u v =
    succs.(u) <- v :: succs.(u);
    indeg.(v) <- indeg.(v) + 1
  in
  for i = 0 to n - 1 do
    List.iter (fun j -> add_edge i j) (Quantum.Dag.succs a.dag i)
  done;
  List.iter (fun g -> add_edge g dummy) s_gates;
  List.iter (fun g -> add_edge dummy g) d_gates;
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  for i = 0 to n do
    if indeg.(i) = 0 then ready := Iset.add i !ready
  done;
  let rename q = if q = dst then src else q in
  let rev_kinds = ref [] in
  let emitted = ref 0 in
  let pos = Array.make n (-1) in
  let measure_id = ref None in
  let if_x_id = ref (-1) in
  let next = ref 0 in
  while not (Iset.is_empty !ready) do
    let i = Iset.min_elt !ready in
    ready := Iset.remove i !ready;
    incr emitted;
    if i = dummy then begin
      (match existing_clbit with
       | Some _ -> ()
       | None ->
         rev_kinds := Quantum.Gate.Measure (src, reset_clbit) :: !rev_kinds;
         measure_id := Some !next;
         incr next);
      rev_kinds := Quantum.Gate.If_x (reset_clbit, src) :: !rev_kinds;
      if_x_id := !next;
      incr next
    end
    else begin
      let kind = circuit.Quantum.Circuit.gates.(i).Quantum.Gate.kind in
      rev_kinds := Quantum.Gate.map_qubits rename kind :: !rev_kinds;
      pos.(i) <- !next;
      incr next
    end;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then ready := Iset.add j !ready)
      succs.(i)
  done;
  if !emitted <> n + 1 then
    invalid_arg "Reuse.apply: reuse would create a dependence cycle";
  {
    em_circuit =
      Quantum.Circuit.of_kinds ~num_qubits:circuit.Quantum.Circuit.num_qubits
        ~num_clbits
        (List.rev !rev_kinds);
    em_pos = pos;
    em_measure = !measure_id;
    em_if_x = !if_x_id;
  }

let apply_circuit a p = (emit a p).em_circuit
let apply circuit p = apply_circuit (analyze circuit) p

(* Chain DAG of an emitted circuit, derived from the parent's without a
   rebuild: emission preserves each wire's (and clbit's) gate order, so
   every parent chain edge relabels through [em_pos], and the only new
   edges are the reset splice's on wire src. Exact only when the splice
   is local (see {!splice_is_local}) — callers must check first. *)
let derived_dag (a : analysis) ~src ~dst em =
  let n = Quantum.Dag.num_nodes a.dag in
  let pos = em.em_pos in
  let m = Array.length em.em_circuit.Quantum.Circuit.gates in
  let preds = Array.make m [] and succs = Array.make m [] in
  let add u v =
    preds.(v) <- u :: preds.(v);
    succs.(u) <- v :: succs.(u)
  in
  for i = 0 to n - 1 do
    List.iter (fun j -> add pos.(i) pos.(j)) (Quantum.Dag.succs a.dag i)
  done;
  let s_gates = Quantum.Dag.gates_on_qubit a.dag src in
  let d_gates = Quantum.Dag.gates_on_qubit a.dag dst in
  let last_s = pos.(List.fold_left max (-1) s_gates) in
  let first_d = pos.(List.hd d_gates) in
  (match em.em_measure with
   | Some d1 ->
     add last_s d1;
     add d1 em.em_if_x
   | None -> add last_s em.em_if_x);
  add em.em_if_x first_d;
  let k = em.em_circuit.Quantum.Circuit.num_qubits in
  let on_qubit = Array.make (max 1 k) [] in
  for q = 0 to k - 1 do
    if q <> src && q <> dst then
      on_qubit.(q) <-
        List.map (fun g -> pos.(g)) (Quantum.Dag.gates_on_qubit a.dag q)
  done;
  on_qubit.(src) <-
    List.map (fun g -> pos.(g)) s_gates
    @ (match em.em_measure with Some d1 -> [ d1 ] | None -> [])
    @ em.em_if_x :: List.map (fun g -> pos.(g)) d_gates;
  (* [~check:false]: this is the per-apply hot path of the incremental
     engine, and its analyses are cross-validated byte-for-byte against
     fresh ones by the property suites and the fuzz [engines] oracle, so
     the deep shape checks would only re-verify what those already pin. *)
  Quantum.Dag.of_parts ~check:false em.em_circuit ~preds ~succs ~on_qubit

(* The incremental algebra models the reset splice as nodes wired only to
   src's and dst's gates. That is the whole story exactly when the
   circuit has no barriers (they chain on wires without appearing in the
   analysis sets). Clbits no longer threaten locality: the reset only
   reuses src's final-measure clbit when that measure is its sole user
   (see {!reusable_final_clbit}), and otherwise the splice runs on a
   fresh clbit nothing else touches. *)
let splice_is_local a _src = not a.barriers

(* The incremental engine. The reset node D sits (transitively) after
   every src gate and before every dst gate, and — when the splice is
   local — it is the only new dependence, so the new gate-level closure
   is

     reach'(g, h) = reach(g, h) \/ (reach(g, D) /\ reach(D, h))

   where reach(g, D) iff g reaches some src gate and reach(D, h) iff some
   dst gate reaches h. Projected to qubits:

     R'(a, b) = R(a, b) \/ (R(a, src) /\ R(dst, b)).

   Rewiring dst's gates onto src then merges dst's row and column into
   src's; dst keeps no gates, so its row and column go empty — exactly
   what a fresh projection of the transformed circuit yields.

   The interaction graph updates the same way: the reset adds no
   two-qubit gate, and Condition 1 guarantees no gate couples src with
   dst, so renaming dst to src in the edge set is exact (no self-loops
   can appear). The active set just retires dst, and the chain DAG is
   relabelled via {!derived_dag}. Only the O(n+e) schedules are
   recomputed. When the splice is not local the whole derivation falls
   back to a fresh analysis of the transformed circuit.

   [time.analyze] covers the analysis derivation only — the circuit
   emission is transform work that {!apply} does not time either, so the
   timer draws the same boundary for both engines. *)
let apply_incremental a ({ src; dst } as p) =
  if not (splice_is_local a src) then
    analyze (apply_circuit a p)
  else begin
    Obs.Metrics.incr "reuse.analyze.incremental";
    let em = emit a p in
    Obs.Metrics.time "time.analyze" @@ fun () ->
    let dag = derived_dag a ~src ~dst em in
    let k = Array.length a.active in
    let q = Array.make_matrix k k false in
    for x = 0 to k - 1 do
      let row = a.qreach.(x) and out = q.(x) in
      let via_d = row.(src) in
      let d_row = a.qreach.(dst) in
      for y = 0 to k - 1 do
        out.(y) <- row.(y) || (via_d && d_row.(y))
      done
    done;
    for y = 0 to k - 1 do
      q.(src).(y) <- q.(src).(y) || q.(dst).(y)
    done;
    for x = 0 to k - 1 do
      q.(x).(src) <- q.(x).(src) || q.(x).(dst)
    done;
    for i = 0 to k - 1 do
      q.(dst).(i) <- false;
      q.(i).(dst) <- false
    done;
    (* Renaming dst to src in the edge set is exactly a contraction of
       the pair (paper Fig. 5): O(deg dst) set updates on a copy instead
       of reifying and rebuilding the whole edge list. *)
    let inter = Galg.Graph.copy a.inter in
    Galg.Graph.contract inter src dst;
    let active = Array.copy a.active in
    active.(dst) <- false;
    (* the fast path is only taken on barrier-free circuits, and the
       emission adds no barriers *)
    finish_analysis em.em_circuit dag q ~inter ~active ~barriers:false
  end

let circuit a = a.circuit

let usage a =
  Array.fold_left (fun n active -> if active then n + 1 else n) 0 a.active

let qubit_usage circuit = List.length (Quantum.Circuit.active_qubits circuit)
