(** How complete a reuse-search result is — the service's quality/time
    dial.

    [Exact] means the engine ran to its deterministic completion under
    its configured options (search-space exhaustion or the configured
    DFS node cap): the same request reproduces the same result, so the
    artifact is deadline-independent and safe to cache. [Anytime] means
    a wall-clock {!Guard.Budget} trip cut the engine short and the
    result is the best incumbent found up to that point: still a valid,
    certificate-carrying artifact, just possibly wider than what the
    same configuration would reach with more time — and dependent on
    how much wall clock this particular run happened to get. *)

type t =
  | Exact
  | Anytime of {
      steps_done : int;
          (** search nodes explored before the budget ended the run *)
      frontier_left : int;
          (** candidate branches counted but never tried — a rough
              measure of how much space was left unexplored *)
    }

val is_exact : t -> bool

(** ["exact"] or ["anytime"] — the wire spelling used by the serve
    protocol's [quality] response field. *)
val name : t -> string

(** One-line rendering with the anytime counters, for CLI output. *)
val to_string : t -> string
