type input = Regular of Quantum.Circuit.t | Commutable of Galg.Graph.t

type strategy =
  | Baseline
  | Qs_max_reuse
  | Qs_min_depth
  | Qs_best_fidelity
  | Qs_target of int
  | Sr
  | Cone
  | Gidnet

type options = {
  verify : Verify.level option;
  seed : int;
  collect_metrics : bool;
  search : Qs_caqr.search_opts;
  jobs : int;
      (* Domains for the candidate fan-out (Exec.Pool). Any value
         produces byte-identical reports; >1 only changes wall clock. *)
  fallback : bool;
      (* Supervise the compile with the degradation ladder: a failing
         strategy demotes toward Baseline instead of raising. *)
  deadline_ms : int option;
      (* Cooperative wall-clock budget for the whole compile. *)
}

let default =
  {
    verify = None;
    seed = 1;
    collect_metrics = false;
    search = Qs_caqr.default_opts;
    jobs = 1;
    fallback = false;
    deadline_ms = None;
  }

type degraded = {
  from_strategy : strategy;
  error : Guard.Error.t;
  backtrace : string;
}

type report = {
  strategy : strategy;
  logical : Quantum.Circuit.t;
  physical : Quantum.Circuit.t;
  stats : Transpiler.Transpile.stats;
  reuse_pairs : int;
  quality : Quality.t;
  verification : Verify.verdict option;
  metrics : Obs.Metrics.snapshot option;
  degraded : degraded list;
}

let strategy_name = function
  | Baseline -> "baseline"
  | Qs_max_reuse -> "qs-max-reuse"
  | Qs_min_depth -> "qs-min-depth"
  | Qs_best_fidelity -> "qs-best-fidelity"
  | Qs_target n -> Printf.sprintf "qs-target-%d" n
  | Sr -> "sr"
  | Cone -> "cone"
  | Gidnet -> "gidnet"

(* The one strategy grammar. The CLI --strategy flag and the service
   protocol both delegate here, so a future engine cannot be wired into
   one front end and silently missing from the other; the exhaustive
   round-trip with {!strategy_name} is pinned in test_strategy_names. *)
let all_strategies =
  [
    ("baseline", Baseline);
    ("qs-max-reuse", Qs_max_reuse);
    ("qs-min-depth", Qs_min_depth);
    ("qs-best-fidelity", Qs_best_fidelity);
    ("sr", Sr);
    ("cone", Cone);
    ("gidnet", Gidnet);
  ]

let strategy_of_name s =
  match List.assoc_opt s all_strategies with
  | Some st -> Ok st
  | None ->
    let budget =
      match int_of_string_opt s with
      | Some n -> Some n
      | None ->
        (* [strategy_name (Qs_target n)] prints "qs-target-<n>"; parsing
           it back keeps the name map a bijection on every variant. *)
        let prefix = "qs-target-" in
        let pl = String.length prefix in
        if String.length s > pl && String.sub s 0 pl = prefix then
          int_of_string_opt (String.sub s pl (String.length s - pl))
        else None
    in
    (match budget with
     | Some n -> Ok (Qs_target n)
     | None ->
       Error
         (Printf.sprintf "unknown strategy %S (expected %s | qs-target-<n> | <qubit budget>)"
            s
            (String.concat " | " (List.map fst all_strategies))))

(* Every field that can change the compiled artifact or the report body
   lands in the fingerprint; fields that by contract only change
   wall-clock ([jobs] — the pool is byte-identical for any value — and
   [collect_metrics], which only attaches a snapshot) are deliberately
   excluded, so a warm cache survives a [--jobs] change. [deadline_ms]
   is execution policy, not semantics: a cached artifact trivially meets
   any deadline, and results that only exist by grace of the degradation
   ladder are never cached (the service skips storing degraded
   reports). *)
let options_fingerprint o =
  let objective =
    match o.search.Qs_caqr.objective with
    | Qs_caqr.Depth -> "depth"
    | Qs_caqr.Duration -> "duration"
  in
  let order =
    match o.search.Qs_caqr.order with
    | Qs_caqr.Score -> "score"
    | Qs_caqr.Chain -> "chain"
    | Qs_caqr.Both -> "both"
  in
  let engine =
    match o.search.Qs_caqr.engine with
    | Qs_caqr.Incremental -> "incremental"
    | Qs_caqr.Fresh -> "fresh"
  in
  Printf.sprintf
    "opts/1;verify=%s;seed=%d;objective=%s;budget=%d;order=%s;engine=%s;fallback=%b"
    (match o.verify with
     | None -> "none"
     | Some l -> Verify.level_name l)
    o.seed objective o.search.Qs_caqr.budget order engine o.fallback

let logical_of_input = function
  | Regular c -> c
  | Commutable g -> Commute.emit (Commute.make g)

(* Route a (possibly reuse-transformed) logical circuit with the baseline
   mapper and collect stats. *)
let finish device strategy logical reuse_pairs =
  let compacted, _ = Quantum.Circuit.compact_qubits logical in
  let routed = Transpiler.Transpile.run device compacted in
  {
    strategy;
    logical;
    physical = routed.Transpiler.Transpile.physical;
    stats = routed.Transpiler.Transpile.stats;
    reuse_pairs;
    quality = Quality.Exact;
    verification = None;
    metrics = None;
    degraded = [];
  }

(* Reduction trajectories with the applied pairs kept — the pairs feed
   the structural translation validator. *)
let qs_steps ~search input =
  match input with
  | Regular c ->
    List.map
      (fun (s : Qs_caqr.step) -> (s.Qs_caqr.circuit, s.Qs_caqr.pairs))
      (Qs_caqr.sweep ~opts:search c)
  | Commutable g ->
    List.map
      (fun (s : Commute.step) ->
        (Commute.emit s.Commute.plan, Commute.pairs s.Commute.plan))
      (Commute.sweep g)

(* The sweep candidates are independent (transpile + stats each), so
   they fan out across the pool; the candidate list keeps submission
   order, which keeps the downstream sorts and picks deterministic. *)
let finish_candidates ~jobs device strategy steps =
  Exec.Pool.map ~jobs:(max 1 jobs)
    (fun (c, pairs) ->
      (finish device strategy c (List.length pairs), Some pairs))
    steps

(* Share of the remaining wall budget granted to the reuse engine; the
   rest is reserved for routing and verification, which must complete
   even on an anytime (partial) engine result — a budget trip *after*
   the engine is a hard error and rides the ladder as before. *)
let engine_share = 0.6

let scoped_engine f = Guard.Budget.scoped (Guard.Budget.fraction engine_share) f

let compile_unverified ~search ~jobs device strategy input ~original =
  match strategy with
  | Baseline -> (finish device strategy original 0, Some [])
  | Sr ->
    let r =
      match input with
      | Regular c -> Sr_caqr.regular device c
      | Commutable g -> Sr_caqr.commutable device g
    in
    ( {
        strategy;
        logical = original;
        physical = r.Sr_caqr.physical;
        stats = Transpiler.Transpile.stats_of device r.Sr_caqr.physical;
        reuse_pairs = r.Sr_caqr.reuses;
        quality = Quality.Exact;
        verification = None;
        metrics = None;
        degraded = [];
      },
      (* SR's lazy mapper reuses physical qubits as a side effect and
         never names logical pairs. *)
      None )
  | Qs_max_reuse ->
    (match input with
     | Regular c ->
       let a = scoped_engine (fun () -> Qs_caqr.max_reuse_anytime ~opts:search c) in
       let reused = a.Qs_caqr.circuit in
       ( {
           (finish device strategy reused
              (Quantum.Circuit.mid_circuit_measurements reused))
           with
           quality = a.Qs_caqr.quality;
         },
         Some a.Qs_caqr.pairs )
     | Commutable _ ->
       (match List.rev (qs_steps ~search input) with
        | (c, pairs) :: _ ->
          (finish device strategy c (List.length pairs), Some pairs)
        | [] -> invalid_arg "Pipeline.compile: empty sweep"))
  | Qs_min_depth ->
    let candidates = finish_candidates ~jobs device strategy (qs_steps ~search input) in
    (match
       List.sort
         (fun (a, _) (b, _) ->
           compare a.stats.Transpiler.Transpile.depth b.stats.Transpiler.Transpile.depth)
         candidates
     with
     | best :: _ -> best
     | [] -> invalid_arg "Pipeline.compile: empty sweep")
  | Qs_best_fidelity ->
    (* The paper's tunable objective: pick the reuse level whose compiled
       circuit maximizes estimated success probability. *)
    let candidates = finish_candidates ~jobs device strategy (qs_steps ~search input) in
    (match
       List.sort
         (fun (a, _) (b, _) ->
           compare
             (Transpiler.Esp.of_circuit device b.physical)
             (Transpiler.Esp.of_circuit device a.physical))
         candidates
     with
     | best :: _ -> best
     | [] -> invalid_arg "Pipeline.compile: empty sweep")
  | Cone ->
    let r = scoped_engine (fun () -> Cone_caqr.run original) in
    ( {
        (finish device strategy r.Cone_caqr.circuit
           (List.length r.Cone_caqr.pairs))
        with
        quality = r.Cone_caqr.quality;
      },
      (* On commutable inputs the pairs transform the *emitted* circuit,
         not the problem graph — the commutable structural checker would
         misread them, so only regular inputs surface pairs. *)
      match input with
      | Regular _ -> Some r.Cone_caqr.pairs
      | Commutable _ -> None )
  | Gidnet ->
    let r = scoped_engine (fun () -> Gidnet_caqr.run original) in
    ( {
        (finish device strategy r.Gidnet_caqr.circuit
           (List.length r.Gidnet_caqr.pairs))
        with
        quality = r.Gidnet_caqr.quality;
      },
      match input with
      | Regular _ -> Some r.Gidnet_caqr.pairs
      | Commutable _ -> None )
  | Qs_target target ->
    (match input with
     | Regular c ->
       (match
          scoped_engine (fun () -> Qs_caqr.search_anytime ~opts:search ~target c)
        with
        | Some a ->
          ( {
              (finish device strategy a.Qs_caqr.circuit
                 (List.length a.Qs_caqr.pairs))
              with
              quality = a.Qs_caqr.quality;
            },
            Some a.Qs_caqr.pairs )
        | None ->
          failwith
            (Printf.sprintf "Pipeline.compile: cannot reach %d qubits" target))
     | Commutable _ ->
       (match
          List.find_opt
            (fun (c, _) -> Reuse.qubit_usage c <= target)
            (qs_steps ~search input)
        with
        | Some (c, pairs) ->
          (finish device strategy c (List.length pairs), Some pairs)
        | None ->
          failwith
            (Printf.sprintf "Pipeline.compile: cannot reach %d qubits" target)))

(* The degradation ladder (most capable first): a reuse strategy that
   blows up demotes to the cheaper reuse search, which demotes to plain
   layout-and-route. The last rung is always Baseline — under [fallback]
   a compile either returns SOME valid physical circuit or dies with one
   structured error naming every rung it tried. *)
let ladder = function
  | Sr -> [ Sr; Qs_max_reuse; Baseline ]
  | Qs_target n -> [ Qs_target n; Qs_max_reuse; Baseline ]
  | (Cone | Gidnet) as s -> [ s; Qs_max_reuse; Baseline ]
  | (Qs_max_reuse | Qs_min_depth | Qs_best_fidelity) as s -> [ s; Baseline ]
  | Baseline -> [ Baseline ]

let verify_report ~options ~original device input pairs report =
  match options.verify with
  | None -> report
  | Some level ->
    let subject =
      {
        Verify.original;
        logical = report.logical;
        physical = report.physical;
        device;
        pairs =
          Option.map
            (List.map (fun (p : Reuse.pair) ->
                 { Verify.Structural.src = p.Reuse.src; dst = p.Reuse.dst }))
            pairs;
        commutable =
          (match input with Commutable g -> Some g | Regular _ -> None);
      }
    in
    let verdict =
      if not options.fallback then Verify.run ~seed:options.seed level subject
      else
        (* A crashing validator must not take down a compile that already
           produced an artifact; an unverified artifact is [Inconclusive],
           never silently "equivalent". *)
        match
          Guard.Error.protect ~stage:"pipeline.verify" (fun () ->
              Verify.run ~seed:options.seed level subject)
        with
        | Ok v -> v
        | Error e -> Verify.Inconclusive (Guard.Error.to_string e)
    in
    { report with verification = Some verdict }

(* Walk the ladder: first rung that compiles wins; each failure is
   captured (error + backtrace) into the report's [degraded] trail. *)
let compile_ladder ~options device strategy input ~original =
  let rec walk trail = function
    | [] ->
      let detail =
        String.concat "; "
          (List.rev_map
             (fun d ->
               Printf.sprintf "%s: %s" (strategy_name d.from_strategy)
                 (Guard.Error.to_string d.error))
             trail)
      in
      raise
        (Guard.Error.Guard_error
           (Guard.Error.v ~stage:"pipeline" ~site:"ladder"
              ("every ladder rung failed: " ^ detail)))
    | s :: rest ->
      if trail <> [] then Obs.Metrics.incr "guard.ladder.demotions";
      (match
         Guard.Error.protect_bt ~stage:("pipeline." ^ strategy_name s)
           (fun () ->
             compile_unverified ~search:options.search ~jobs:options.jobs
               device s input ~original)
       with
       | Ok (report, pairs) ->
         ({ report with degraded = List.rev trail }, pairs)
       | Error (e, bt) ->
         walk ({ from_strategy = s; error = e; backtrace = bt } :: trail) rest)
  in
  walk [] (ladder strategy)

let compile ?(options = default) device strategy input =
  if options.collect_metrics then Obs.Metrics.reset ();
  (* A scoped (domain-local) budget, not the process-global deadline:
     concurrent compiles — e.g. batched service requests fanned out over
     the pool — each keep their own deadline. The pool re-installs the
     scope in its worker domains, so the candidate fan-out below is
     bounded too. *)
  Guard.Budget.scoped (Guard.Budget.make ?ms:options.deadline_ms ())
  @@ fun () ->
  let original =
    if not options.fallback then logical_of_input input
    else
      (* No circuit, no passthrough: a failure this early still leaves
         the pipeline with one structured error instead of a raw exn. *)
      match
        Guard.Error.protect ~stage:"pipeline.input" (fun () ->
            logical_of_input input)
      with
      | Ok c -> c
      | Error e -> raise (Guard.Error.Guard_error e)
  in
  let report, pairs =
    if options.fallback then compile_ladder ~options device strategy input ~original
    else
      compile_unverified ~search:options.search ~jobs:options.jobs device
        strategy input ~original
  in
  let report = verify_report ~options ~original device input pairs report in
  if options.collect_metrics then
    { report with metrics = Some (Obs.Metrics.snapshot ()) }
  else report

(* Strategy fan-out: each strategy's compile (and its verification, when
   enabled) is an independent task. The inner compiles run with jobs=1 —
   the outer fan-out already owns the domains, and nested pools would
   oversubscribe without changing any result. *)
let compile_all ?(options = default) device strategies input =
  let inner = { options with jobs = 1 } in
  Exec.Pool.map ~jobs:(max 1 options.jobs)
    (fun strategy -> compile ~options:inner device strategy input)
    strategies

(* One row per reuse level of the tradeoff sweep, with the per-point
   transpile work spread over the pool. *)
type sweep_row = {
  usage : int;
  logical_depth : int;
  stats : Transpiler.Transpile.stats;
}

let sweep_stats ?(jobs = 1) ?(search = Qs_caqr.default_opts) device input =
  let points =
    match input with
    | Regular c ->
      List.map
        (fun (s : Qs_caqr.step) ->
          (s.Qs_caqr.usage, s.Qs_caqr.logical_depth, s.Qs_caqr.circuit))
        (Qs_caqr.sweep ~opts:search c)
    | Commutable g ->
      List.map
        (fun (s : Commute.step) ->
          (s.Commute.usage, s.Commute.depth, Commute.emit s.Commute.plan))
        (Commute.sweep g)
  in
  Exec.Pool.map ~jobs:(max 1 jobs)
    (fun (usage, logical_depth, circuit) ->
      let compacted, _ = Quantum.Circuit.compact_qubits circuit in
      let stats =
        (Transpiler.Transpile.run device compacted).Transpiler.Transpile.stats
      in
      { usage; logical_depth; stats })
    points

let beneficial device input =
  match input with
  | Commutable g ->
    let n = Galg.Graph.order g in
    let k = Commute.min_qubits g in
    if k < n then
      (true, Printf.sprintf "graph coloring: %d qubits suffice for %d vertices" k n)
    else (false, "interaction graph is complete: no reuse possible")
  | Regular c ->
    (match Qs_caqr.opportunity c with
     | None -> (false, "no valid reuse pair (conditions 1-2 fail everywhere)")
     | Some p ->
       let baseline = compile device Baseline input in
       let sr = compile device Sr input in
       let better =
         sr.stats.Transpiler.Transpile.swaps <= baseline.stats.Transpiler.Transpile.swaps
       in
       ( true,
         Printf.sprintf
           "reuse pair q%d->q%d exists; SR-CaQR swaps %d vs baseline %d%s"
           p.Reuse.src p.Reuse.dst sr.stats.Transpiler.Transpile.swaps
           baseline.stats.Transpiler.Transpile.swaps
           (if better then " (wins or ties)" else "") ))
