(** Cone-CaQR: causal-cone qubit reuse, after DeCross et al.
    (arxiv 2210.08039).

    A fundamentally different algorithm from the QS-CaQR pair search:
    instead of retiring one qubit at a time by best predicted depth, it
    orders the program's terminal measurements by the size of their
    causal cones (the set of qubits whose gates can influence the
    measured qubit) and walks that order, lazily allocating a wire for
    each cone member the first time it is needed and recycling the
    measured-then-reset wire as soon as its measurement's cone is
    complete. Small cones first means wires retire early and the free
    pool stays warm — on many circuits this reaches the true minimum
    width directly.

    The engine speaks the same IR contract as {!Qs_caqr}: the result is
    a logical circuit derived from the input by a sequence of
    {!Reuse.pair} applications (measure + conditional-X splices), so
    [lib/verify]'s structural checker and the simulation-TVD oracle
    apply unchanged. *)

type result = {
  circuit : Quantum.Circuit.t;
      (** the reuse-transformed logical circuit (retired wires left
          empty; callers compact) *)
  pairs : Reuse.pair list;  (** applied splices, oldest first *)
  width : int;  (** active qubits of [circuit] *)
  order : int list;
      (** the cone-size measurement order the walk followed *)
  quality : Quality.t;
      (** {!Quality.Exact} when the walk completed; {!Quality.Anytime}
          when a wall-clock budget trip cut it short and the committed
          prefix is returned instead *)
}

(** [run circuit] — deterministic: the result is a pure function of the
    input circuit (ties broken by qubit id). Hot loops poll
    {!Guard.Budget} at stage ["core.cone"]; a budget trip is {e not} an
    error — the walk commits pair by pair, so the pairs applied before
    the trip are returned as an anytime partial result (metric
    ["cone.anytime.returns"]). *)
val run : Quantum.Circuit.t -> result
