(* GidNET: graph-based identification of reuse networks (arxiv
   2410.08817), adapted to CaQR's pair IR.

   Each round materializes the full candidate-pair digraph from
   [Reuse.valid_pairs] — edge p -> q iff (src = p, dst = q) satisfies
   Conditions 1-2 on the *current* analysis — and extracts one maximal
   reuse chain from it: a greedy longest-path walk started from every
   vertex, successors chosen by highest onward out-degree (a chain that
   can keep going beats one that dead-ends), all ties broken by lowest
   qubit id so the run is deterministic. The winning chain is committed
   link by link onto its head wire; every link is revalidated against
   the incrementally updated analysis (folding earlier links can
   invalidate later ones — invalid links are skipped, never forced).
   The first link comes straight out of [valid_pairs], so every round
   commits at least one pair and the loop terminates.

   Global chains are the point: QS-CaQR's pair-at-a-time greedy can
   trap itself by burning a wire that a longer chain needed, while a
   chain of length m retires m - 1 qubits as one decision. *)

type result = {
  circuit : Quantum.Circuit.t;
  pairs : Reuse.pair list;
  width : int;
  chains : int list list;
  quality : Quality.t;
}

(* Longest greedy path from [s] over successor lists [succs]. *)
let walk_from ~k ~succs ~out_deg s =
  let visited = Array.make k false in
  visited.(s) <- true;
  let rec go t acc =
    let next =
      List.fold_left
        (fun best q ->
          if visited.(q) then best
          else
            match best with
            | Some b when (out_deg.(b), -b) >= (out_deg.(q), -q) -> best
            | _ -> Some q)
        None succs.(t)
    in
    match next with
    | None -> List.rev acc
    | Some q ->
      visited.(q) <- true;
      go q (q :: acc)
  in
  go s [ s ]

let best_chain ~k cands =
  let succs = Array.make k [] and out_deg = Array.make k 0 in
  List.iter
    (fun { Reuse.src; dst } ->
      succs.(src) <- dst :: succs.(src);
      out_deg.(src) <- out_deg.(src) + 1)
    cands;
  (* [valid_pairs] enumerates ascending; keep successor lists ascending
     so the fold's ties resolve to the lowest id. *)
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  let starts =
    List.sort_uniq compare (List.map (fun p -> p.Reuse.src) cands)
  in
  List.fold_left
    (fun best s ->
      let chain = walk_from ~k ~succs ~out_deg s in
      match best with
      | Some b when List.length b >= List.length chain -> best
      | _ -> Some chain)
    None starts
  |> Option.get

let run c =
  Obs.Metrics.incr "gidnet.runs";
  Obs.Metrics.time "time.gidnet" @@ fun () ->
  let k = max 1 c.Quantum.Circuit.num_qubits in
  let analysis = ref (Reuse.analyze c) in
  let pairs = ref [] and chains = ref [] in
  let tick = Guard.Budget.ticker ~stage:"core.gidnet" ~site:"gidnet.chain" () in
  let pending = ref 0 in
  let rec rounds () =
    let cands = Reuse.valid_pairs !analysis in
    if cands <> [] then begin
      pending := List.length cands;
      tick ();
      match best_chain ~k cands with
      | host :: rest ->
        let committed = ref [ host ] in
        List.iter
          (fun x ->
            let pr = { Reuse.src = host; dst = x } in
            if Reuse.valid !analysis pr then begin
              analysis := Reuse.apply_incremental !analysis pr;
              pairs := pr :: !pairs;
              committed := x :: !committed;
              Obs.Metrics.incr "gidnet.reuses"
            end)
          rest;
        chains := List.rev !committed :: !chains;
        rounds ()
      | [] -> ()
    end
  in
  (* Commit-so-far: the budget is only polled between rounds, and every
     committed link already updated [analysis], so a trip surfaces the
     chains extracted so far as an [Anytime] partial result. *)
  let quality =
    match rounds () with
    | () -> Quality.Exact
    | exception Guard.Error.Budget_exceeded _ ->
      Obs.Metrics.incr "gidnet.anytime.returns";
      Quality.Anytime
        { steps_done = List.length !pairs; frontier_left = !pending }
  in
  {
    circuit = Reuse.circuit !analysis;
    pairs = List.rev !pairs;
    width = Reuse.usage !analysis;
    chains = List.rev !chains;
    quality;
  }
