(** The engine version, in one place.

    [caqr_cli --version] prints {!string}; the compilation service folds
    {!engine} into every cache key, so on-disk entries written by an
    older build are never served — their keys simply no longer match.
    Bump on any change that can alter a compiled artifact or report. *)

(** Semantic version of the compiler engine, e.g. ["1.6.0"]. *)
val string : string

(** Cache-key form: ["caqr-" ^ string]. *)
val engine : string
