(** QS-CaQR: qubit-saving qubit reuse for regular circuits (paper §3.2.1).

    Strategy: start from the original qubit count and retire one qubit per
    step by applying the valid reuse pair whose predicted critical path is
    smallest, until the user's budget is met or no valid pair remains.
    A full sweep keeps every intermediate version so callers can pick the
    maximal-reuse or minimal-depth point (Table 1) or plot the
    qubit-vs-depth tradeoff (Figs. 3, 13, 14).

    Every entry point takes one {!search_opts} value, so a sweep, a
    targeted search, and a reduction query can share a configuration. *)

type objective = Depth | Duration

(** Candidate ordering for the backtracking search. [Score] is pure
    greedy on the objective; [Chain] pairs the earliest-finishing wire
    with the earliest-starting qubit (the paper's Fig. 1 serial
    construction); [Both] falls back from the first to the second —
    exposed separately so the ablation bench can compare them. *)
type order = Score | Chain | Both

(** Which analysis engine drives the search. [Incremental] (the default)
    derives each DFS child's analysis from its parent via
    {!Reuse.apply_incremental} and memoizes per-prefix candidate
    orderings across a sweep's restarted searches. [Fresh] rebuilds the
    circuit and the O(n^2) closure at every node — the pre-incremental
    behavior, kept for differential testing and as the perf baseline.
    Both produce identical results (regression-tested). *)
type engine = Incremental | Fresh

(** One options value shared by {!search}, {!sweep}, {!reduce_to},
    {!min_qubits}, {!max_reuse} and {!reduce_once}. Build variations with
    functional update: [{ default_opts with objective = Duration }]. *)
type search_opts = {
  objective : objective;
  budget : int;  (** DFS node budget per search (default 400) *)
  order : order;
  engine : engine;
}

val default_opts : search_opts

(** One point of the reduction sweep. *)
type step = {
  usage : int;  (** active qubits after the reuses so far *)
  circuit : Quantum.Circuit.t;
  pairs : Reuse.pair list;  (** applied so far, oldest first *)
  logical_depth : int;
  logical_duration : int;
}

(** [reduce_once ?opts circuit] applies the best single reuse, or [None]
    when no valid pair exists. Only [opts.objective] is consulted. *)
val reduce_once :
  ?opts:search_opts -> Quantum.Circuit.t -> (Reuse.pair * Quantum.Circuit.t) option

(** [sweep ?opts ?stop_at circuit] returns the full reduction trajectory,
    starting with the untouched circuit and ending at [stop_at] (default:
    as low as possible). The per-target searches share one memo cache, so
    each restart replays the previously explored prefix from cache. *)
val sweep : ?opts:search_opts -> ?stop_at:int -> Quantum.Circuit.t -> step list

(** [search ?opts ~target circuit] finds a reuse sequence reaching
    [target] qubits, trying candidates best-score-first with budgeted DFS
    backtracking — greedy alone can trap itself (two parallel chains
    interleaved on a shared partner can never merge later). Returns the
    transformed circuit and the applied pairs. *)
val search :
  ?opts:search_opts ->
  target:int ->
  Quantum.Circuit.t ->
  (Quantum.Circuit.t * Reuse.pair list) option

(** [reduce_to ?opts ~target circuit] answers the paper's user query:
    "can this circuit run on [target] qubits?" — [Some circuit'] or [None]. *)
val reduce_to :
  ?opts:search_opts -> target:int -> Quantum.Circuit.t -> Quantum.Circuit.t option

(** Fewest qubits reachable (greedy tightened by backtracking search). *)
val min_qubits : ?opts:search_opts -> Quantum.Circuit.t -> int

(** The maximal-reuse version of the circuit ([min_qubits] wires). *)
val max_reuse : ?opts:search_opts -> Quantum.Circuit.t -> Quantum.Circuit.t

(** Is there any reuse opportunity at all? (The paper's applicability
    test: tools report "no benefit" when this is [None].) *)
val opportunity : Quantum.Circuit.t -> Reuse.pair option

(** An anytime search result: the best (pairs, width) incumbent the
    search had committed when it ended, plus how it ended. [pairs] is a
    valid reuse certificate for [circuit] regardless of [quality] —
    partial results revalidate through [Verify.Structural.check_pairs]
    exactly like complete ones. *)
type anytime = {
  circuit : Quantum.Circuit.t;
  pairs : Reuse.pair list;  (** applied splices, oldest first *)
  width : int;  (** active qubits of [circuit] *)
  quality : Quality.t;
}

(** [max_reuse_anytime ?opts circuit] — {!max_reuse} with the anytime
    contract. Identical output to [max_reuse] when the wall clock does
    not intervene (quality {!Quality.Exact} — this includes the DFS
    node cap [opts.budget] ending the final search, which is the
    configured engine's deterministic completion, not a deadline
    artifact); on a wall-clock {!Guard.Budget} trip it returns the
    deepest incumbent found so far tagged {!Quality.Anytime} and bumps
    the ["qs.anytime.returns"] counter. The returned width is
    monotonically non-increasing in both the wall budget and
    [opts.budget]: a bigger budget explores a superset of the same
    deterministic DFS order. *)
val max_reuse_anytime : ?opts:search_opts -> Quantum.Circuit.t -> anytime

(** [search_anytime ?opts ~target circuit] — {!search} with the anytime
    contract: [Some {quality = Exact; _}] when [target] is reached,
    [None] when the search space (or node cap) is exhausted without
    reaching it — exactly like [search] — and, on a wall-clock budget
    trip, [Some {quality = Anytime _; _}] carrying the best incumbent
    (whose width may still be above [target]). *)
val search_anytime :
  ?opts:search_opts -> target:int -> Quantum.Circuit.t -> anytime option
