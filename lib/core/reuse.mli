(** Qubit-reuse conditions and the measure-and-reset circuit transform —
    the heart of CaQR (paper §3.1, §3.2.1).

    A reuse pair [(src -> dst)] means logical qubit [src] finishes all of
    its gates, is measured and conditionally reset, and then hosts every
    gate of logical qubit [dst]. Valid iff:

    - Condition 1: no gate couples [src] and [dst];
    - Condition 2: no gate on [src] transitively depends on a gate on
      [dst] (otherwise inserting the reset node closes a cycle). *)

type pair = { src : int; dst : int }

(** Everything the analyses need. Built from scratch by {!analyze} —
    paying the paper's §3.4 O(n^2) dependence-closure cost once — or
    derived from a previous analysis by {!apply_incremental}, which
    updates the closure in O(k^2) for k qubits instead of rebuilding it. *)
type analysis

val analyze : Quantum.Circuit.t -> analysis

(** The circuit an analysis describes. *)
val circuit : analysis -> Quantum.Circuit.t

(** Number of active qubits, read off the analysis. Equals
    [qubit_usage (circuit a)]. *)
val usage : analysis -> int

(** Active qubits (wires carrying at least one gate), ascending. *)
val active_qubits : analysis -> int list

(** [reaches a p q]: some gate on qubit [p] reaches (reflexively) some
    gate on qubit [q]. This is the qubit-level projection of the gate
    closure that Condition 2 consults; the causal-cone and GidNET
    engines read it directly — the causal cone of a measurement on [q]
    is exactly [{ p | reaches a p q }]. *)
val reaches : analysis -> int -> int -> bool

(** Condition 1 for a pair. *)
val condition1 : analysis -> pair -> bool

(** Condition 2 for a pair. *)
val condition2 : analysis -> pair -> bool

(** [valid analysis pair]: both qubits active, distinct, Conditions 1–2. *)
val valid : analysis -> pair -> bool

(** All valid pairs over active qubits. O(k^2) validity checks backed by
    the O(n^2) reachability closure, matching the paper's §3.4 analysis. *)
val valid_pairs : analysis -> pair list

(** [predict_depth analysis pair] is the circuit depth after applying
    [pair], computed exactly on the DAG (the spliced reset node only adds
    paths through itself, so the new critical path is
    [max original (max EF(src gates) + reset + max tail(dst gates))])
    without rebuilding the circuit. *)
val predict_depth : analysis -> pair -> int

(** Same, weighted by gate durations in dt. *)
val predict_duration : ?model:Quantum.Duration.t -> analysis -> pair -> int

(** Depth layer at which [pair.src]'s last gate completes — chains built
    by always retiring the earliest-finishing wire stay serial. *)
val src_finish_depth : analysis -> pair -> int

(** Depth layer at which [pair.dst]'s first gate completes. Serial chains
    pair the earliest finisher with the earliest starter. *)
val dst_start_depth : analysis -> pair -> int

(** [apply circuit pair] rebuilds the circuit with the reuse applied:
    [dst]'s gates are rewired onto [src] after a measure + conditional-X
    reset (a fresh scratch clbit is allocated unless [src] already ends in
    a measurement, in which case its existing clbit drives the reset —
    Fig. 2 (b)). The [dst] wire is left empty; callers compact when done.
    Raises [Invalid_argument] on an invalid pair. *)
val apply : Quantum.Circuit.t -> pair -> Quantum.Circuit.t

(** [apply_incremental analysis pair] is the analysis of
    [apply (circuit analysis) pair], but derived incrementally: the reset
    node is the only new dependence, so the qubit-level closure update is

    [R'(a,b) = R(a,b) or (R(a,src) and R(dst,b))]

    followed by merging [dst]'s row and column into [src]'s — O(k^2)
    instead of the O(n^2) gate-closure rebuild. The linear-cost parts
    (DAG, depth/duration schedules, interaction graph) are recomputed
    exactly, so the result is observably identical to a fresh {!analyze}
    of the transformed circuit (property-tested in
    [test/test_incremental.ml]). Raises [Invalid_argument] on an invalid
    pair. *)
val apply_incremental : analysis -> pair -> analysis

(** Number of active qubits (the "qubit usage" the paper reports). *)
val qubit_usage : Quantum.Circuit.t -> int
