(* Single source of truth for the engine version. Bump [string] whenever
   a change can alter any compiled artifact or report: the service cache
   folds [engine] into every key, so entries written by an older build
   become unreachable instead of being served stale. *)

let string = "1.7.0"
let engine = "caqr-" ^ string
