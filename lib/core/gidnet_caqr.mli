(** GidNET-CaQR: graph-based identification of reuse networks, after
    arxiv 2410.08817.

    Where QS-CaQR commits one reuse pair at a time by local score,
    GidNET looks at the whole candidate-pair graph at once: vertices are
    active qubits, an edge [p -> q] means the pair [(src = p, dst = q)]
    satisfies CaQR's Conditions 1-2, and a *reuse chain*
    [q1 -> q2 -> ... -> qm] folds all of [q2..qm] onto [q1]'s wire —
    saving [m - 1] qubits in one decision. The engine repeatedly
    extracts the longest chain it can find (greedy longest-path over the
    candidate graph, deterministic tie-breaks), commits it link by link
    with per-link revalidation against the incrementally updated
    analysis, and rebuilds the candidate graph, until no candidate pair
    remains.

    Same IR contract as {!Qs_caqr}/{!Cone_caqr}: the output is the input
    circuit transformed by a sequence of {!Reuse.pair} splices, so
    [lib/verify] and the fuzz oracles apply unchanged. *)

type result = {
  circuit : Quantum.Circuit.t;
      (** the reuse-transformed logical circuit (retired wires left
          empty; callers compact) *)
  pairs : Reuse.pair list;  (** applied splices, oldest first *)
  width : int;  (** active qubits of [circuit] *)
  chains : int list list;
      (** the committed chains, oldest first; each starts with its host
          wire followed by the qubits folded onto it *)
  quality : Quality.t;
      (** {!Quality.Exact} when every round ran to quiescence;
          {!Quality.Anytime} when a wall-clock budget trip ended the
          chain extraction early — the chains committed so far stand *)
}

(** [run circuit] — deterministic: a pure function of the input circuit.
    Hot loops poll {!Guard.Budget} at stage ["core.gidnet"]; a budget
    trip between rounds returns the chains committed so far as an
    anytime partial result (metric ["gidnet.anytime.returns"]) rather
    than raising. *)
val run : Quantum.Circuit.t -> result
