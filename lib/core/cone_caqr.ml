(* Causal-cone qubit reuse (DeCross et al., arxiv 2210.08039).

   The causal cone of a qubit q is the set of qubits whose gates can
   influence q's final measurement — exactly the qubit-level
   reachability projection [Reuse.reaches] already maintains for
   Condition 2. The algorithm:

     1. compute every active qubit's cone on the input analysis;
     2. order qubits ascending by (cone size, id) — the measurement
        whose cone is smallest completes first;
     3. walk the order; for each measurement, lazily allocate every
        not-yet-allocated cone member, preferring to recycle a retired
        (measured-then-reset) wire from the free pool over opening a
        fresh one; then retire the measured qubit's wire into the pool.

   "Recycling wire h for qubit p" is precisely a CaQR reuse pair
   (src = h, dst = p): validity is delegated to [Reuse.valid] (the
   paper's Conditions 1-2 on the *current*, incrementally-updated
   analysis), so the heuristic can never commit an unsound splice. Among
   the valid free wires the one with the smallest predicted depth wins,
   ties to the lowest wire id — the whole run is a pure function of the
   input circuit. *)

type result = {
  circuit : Quantum.Circuit.t;
  pairs : Reuse.pair list;
  width : int;
  order : int list;
  quality : Quality.t;
}

let cone_of analysis active q =
  List.filter (fun p -> Reuse.reaches analysis p q) active

let run c =
  Obs.Metrics.incr "cone.runs";
  Obs.Metrics.time "time.cone" @@ fun () ->
  let a0 = Reuse.analyze c in
  let active = Reuse.active_qubits a0 in
  let k = c.Quantum.Circuit.num_qubits in
  (* Cones are a property of the *input* dependence structure; computing
     them once up front keeps the measurement order stable while the
     walk rewrites the circuit underneath. *)
  let cones = Array.make (max 1 k) [] in
  List.iter (fun q -> cones.(q) <- cone_of a0 active q) active;
  let order =
    List.sort
      (fun a b -> compare (List.length cones.(a), a) (List.length cones.(b), b))
      active
  in
  (* Rank in the measurement order: cone members allocate in the order
     their own measurements will complete, so the earliest retirees
     claim recycled wires first. *)
  let rank = Array.make (max 1 k) max_int in
  List.iteri (fun i q -> rank.(q) <- i) order;
  let analysis = ref a0 in
  let allocated = Array.make (max 1 k) false in
  let host = Array.init (max 1 k) Fun.id in
  let free = ref [] (* retired wires, oldest retiree first *) in
  let pairs = ref [] in
  let tick = Guard.Budget.ticker ~stage:"core.cone" ~site:"cone.alloc" () in
  let allocate p =
    if not allocated.(p) then begin
      tick ();
      allocated.(p) <- true;
      let best =
        List.fold_left
          (fun best h ->
            let pr = { Reuse.src = h; dst = p } in
            if not (Reuse.valid !analysis pr) then best
            else
              let key = (Reuse.predict_depth !analysis pr, h) in
              match best with
              | Some (k0, _) when k0 <= key -> best
              | _ -> Some (key, h))
          None !free
      in
      match best with
      | Some (_, h) ->
        free := List.filter (fun x -> x <> h) !free;
        let pr = { Reuse.src = h; dst = p } in
        analysis := Reuse.apply_incremental !analysis pr;
        pairs := pr :: !pairs;
        host.(p) <- h;
        Obs.Metrics.incr "cone.reuses"
      | None -> host.(p) <- p
    end
  in
  (* Commit-so-far: every pair in [pairs] was applied to [analysis]
     before the next budget poll, so a wall-clock trip mid-walk leaves a
     consistent (circuit, pairs) prefix — returned as an [Anytime]
     partial result instead of thrown away. *)
  let quality =
    match
      List.iter
        (fun q ->
          let members =
            List.sort (fun a b -> compare (rank.(a), a) (rank.(b), b)) cones.(q)
          in
          List.iter allocate members;
          (* [q]'s cone is complete: its wire is measured-then-reset and
             rejoins the pool for the next allocation. *)
          free := !free @ [ host.(q) ])
        order
    with
    | () -> Quality.Exact
    | exception Guard.Error.Budget_exceeded _ ->
      Obs.Metrics.incr "cone.anytime.returns";
      let unallocated =
        List.length (List.filter (fun q -> not allocated.(q)) active)
      in
      Quality.Anytime
        {
          steps_done = List.length !pairs;
          frontier_left = unallocated;
        }
  in
  {
    circuit = Reuse.circuit !analysis;
    pairs = List.rev !pairs;
    width = Reuse.usage !analysis;
    order;
    quality;
  }
