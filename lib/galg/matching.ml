type t = int array

(* Edmonds' blossom algorithm for maximum-cardinality matching, the classic
   O(V^3) formulation: repeated BFS for augmenting paths with blossom
   contraction tracked through a [base] array. *)

let blossom g =
  let n = Graph.order g in
  (* Cooperative budget: one tick per augmenting-path search, so an
     armed deadline bounds the O(V^3) worst case instead of hanging. *)
  let tick =
    Guard.Budget.ticker ~stage:"galg.matching" ~site:"match.augment" ()
  in
  let mate = Array.make n (-1) in
  let p = Array.make n (-1) in
  let base = Array.init n Fun.id in
  let used = Array.make n false in
  let in_blossom = Array.make n false in

  let lca a b =
    let seen = Array.make n false in
    let rec mark_up v =
      let b = base.(v) in
      seen.(b) <- true;
      if mate.(b) >= 0 && p.(mate.(b)) >= 0 then mark_up p.(mate.(b))
    in
    mark_up a;
    let rec find v =
      let b = base.(v) in
      if seen.(b) then b
      else find p.(mate.(b))
    in
    find b
  in

  let mark_path v b child =
    let v = ref v and child = ref child in
    while base.(!v) <> b do
      in_blossom.(base.(!v)) <- true;
      in_blossom.(base.(mate.(!v))) <- true;
      p.(!v) <- !child;
      child := mate.(!v);
      v := p.(mate.(!v))
    done
  in

  let find_path root =
    tick ();
    Guard.Inject.hit "match.augment";
    Array.fill used 0 n false;
    Array.fill p 0 n (-1);
    Array.iteri (fun i _ -> base.(i) <- i) base;
    used.(root) <- true;
    let q = Queue.create () in
    Queue.add root q;
    let result = ref (-1) in
    (try
       while not (Queue.is_empty q) do
         let v = Queue.pop q in
         List.iter
           (fun to_ ->
             if !result < 0 then
               if base.(v) <> base.(to_) && mate.(v) <> to_ then
                 if to_ = root || (mate.(to_) >= 0 && p.(mate.(to_)) >= 0)
                 then begin
                   (* Odd cycle: contract the blossom. *)
                   let curbase = lca v to_ in
                   Array.fill in_blossom 0 n false;
                   mark_path v curbase to_;
                   mark_path to_ curbase v;
                   for i = 0 to n - 1 do
                     if in_blossom.(base.(i)) then begin
                       base.(i) <- curbase;
                       if not used.(i) then begin
                         used.(i) <- true;
                         Queue.add i q
                       end
                     end
                   done
                 end
                 else if p.(to_) < 0 then begin
                   p.(to_) <- v;
                   if mate.(to_) < 0 then begin
                     result := to_;
                     raise Exit
                   end
                   else begin
                     used.(mate.(to_)) <- true;
                     Queue.add mate.(to_) q
                   end
                 end)
           (Graph.neighbors g v)
       done
     with Exit -> ());
    !result
  in

  for v = 0 to n - 1 do
    if mate.(v) < 0 then begin
      let u = find_path v in
      (* Flip matched/unmatched along the augmenting path ending at [u]. *)
      let u = ref u in
      while !u >= 0 do
        let pv = p.(!u) in
        let ppv = mate.(pv) in
        mate.(!u) <- pv;
        mate.(pv) <- !u;
        u := ppv
      done
    end
  done;
  mate

let greedy ~weight g =
  let n = Graph.order g in
  let mate = Array.make n (-1) in
  let es =
    List.sort
      (fun (u1, v1) (u2, v2) ->
        let c = compare (weight u2 v2) (weight u1 v1) in
        if c <> 0 then c else compare (u1, v1) (u2, v2))
      (Graph.edges g)
  in
  List.iter
    (fun (u, v) ->
      if mate.(u) < 0 && mate.(v) < 0 then begin
        mate.(u) <- v;
        mate.(v) <- u
      end)
    es;
  mate

let priority_matching ~priority g =
  let n = Graph.order g in
  let prio = Graph.create n in
  let rest = Graph.create n in
  List.iter
    (fun (u, v) ->
      if priority u v then Graph.add_edge prio u v
      else Graph.add_edge rest u v)
    (Graph.edges g);
  let m1 = blossom prio in
  (* Restrict the non-priority edges to vertices still free after phase 1,
     then match those at maximum cardinality too. *)
  let rest' = Graph.create n in
  List.iter
    (fun (u, v) -> if m1.(u) < 0 && m1.(v) < 0 then Graph.add_edge rest' u v)
    (Graph.edges rest);
  let m2 = blossom rest' in
  Array.init n (fun v -> if m1.(v) >= 0 then m1.(v) else m2.(v))

let edges mate =
  let acc = ref [] in
  for v = Array.length mate - 1 downto 0 do
    let w = mate.(v) in
    if w > v then acc := (v, w) :: !acc
  done;
  !acc

let cardinality mate = List.length (edges mate)

let is_valid g mate =
  let n = Graph.order g in
  Array.length mate = n
  && begin
       let ok = ref true in
       Array.iteri
         (fun v w ->
           if w >= 0 then
             if w >= n || mate.(w) <> v || not (Graph.has_edge g v w) then
               ok := false)
         mate;
       !ok
     end

let is_maximal g mate =
  List.for_all
    (fun (u, v) -> mate.(u) >= 0 || mate.(v) >= 0)
    (Graph.edges g)
