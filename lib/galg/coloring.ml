type result = { colors : int array; count : int }

let smallest_available g colors v =
  let used = Array.make (Graph.degree g v + 1) false in
  List.iter
    (fun w ->
      let c = colors.(w) in
      if c >= 0 && c < Array.length used then used.(c) <- true)
    (Graph.neighbors g v);
  let rec find c = if c < Array.length used && used.(c) then find (c + 1) else c in
  find 0

let greedy ~order g =
  let n = Graph.order g in
  let colors = Array.make n (-1) in
  let count = ref 0 in
  List.iter
    (fun v ->
      let c = smallest_available g colors v in
      colors.(v) <- c;
      if c + 1 > !count then count := c + 1)
    order;
  (* Vertices omitted from [order] default to color 0. *)
  Array.iteri
    (fun v c ->
      if c < 0 then begin
        colors.(v) <- smallest_available g colors v;
        if colors.(v) + 1 > !count then count := colors.(v) + 1
      end)
    colors;
  if n > 0 && !count = 0 then count := 1;
  { colors; count = !count }

let dsatur g =
  let n = Graph.order g in
  let colors = Array.make n (-1) in
  let count = ref 0 in
  if n > 0 then begin
    let tick =
      Guard.Budget.ticker ~stage:"galg.coloring" ~site:"color.dsatur" ()
    in
    let saturation = Array.make n 0 in
    let module Iset = Set.Make (Int) in
    let neighbor_colors = Array.make n Iset.empty in
    for _ = 1 to n do
      tick ();
      Guard.Inject.hit "color.dsatur";
      (* Pick the uncolored vertex with max saturation, ties by degree. *)
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if colors.(v) < 0 then
          if
            !best < 0
            || saturation.(v) > saturation.(!best)
            || (saturation.(v) = saturation.(!best)
               && Graph.degree g v > Graph.degree g !best)
          then best := v
      done;
      let v = !best in
      let c = smallest_available g colors v in
      colors.(v) <- c;
      if c + 1 > !count then count := c + 1;
      List.iter
        (fun w ->
          if colors.(w) < 0 && not (Iset.mem c neighbor_colors.(w)) then begin
            neighbor_colors.(w) <- Iset.add c neighbor_colors.(w);
            saturation.(w) <- saturation.(w) + 1
          end)
        (Graph.neighbors g v)
    done;
    if !count = 0 then count := 1
  end;
  { colors; count = !count }

let by_decreasing_degree g =
  let vs = List.init (Graph.order g) Fun.id in
  List.sort (fun a b -> compare (Graph.degree g b) (Graph.degree g a)) vs

let best g =
  let a = dsatur g in
  let b = greedy ~order:(by_decreasing_degree g) g in
  if a.count <= b.count then a else b

let is_proper g r =
  let ok = ref (Array.length r.colors = Graph.order g) in
  Array.iter (fun c -> if c < 0 || c >= r.count then ok := false) r.colors;
  List.iter
    (fun (u, v) -> if r.colors.(u) = r.colors.(v) then ok := false)
    (Graph.edges g);
  !ok

let color_classes r =
  let groups = Array.make r.count [] in
  for v = Array.length r.colors - 1 downto 0 do
    let c = r.colors.(v) in
    groups.(c) <- v :: groups.(c)
  done;
  groups
