(* Deterministic work pool on OCaml 5 domains.

   The contract every caller relies on: for a fixed input the result is
   byte-identical for ANY [jobs] value, including 1. Three rules enforce
   it:

   - static partition: task [i]'s slot is fixed by its submission index,
     and each domain owns one contiguous block of indices — there is no
     shared queue, so which domain runs a task never depends on timing;
   - ordered merge: results come back in submission order, and the
     first raising task (in submission order, not completion order)
     determines the exception the caller sees;
   - seed independence: [map_seeded] derives task [i]'s PRNG as
     [Prng.split root i], a pure function of the master seed and the
     index, never of the executing domain or of sibling tasks.

   Domain-per-batch beats a shared work queue here because the tasks the
   compiler fans out (transpiling sweep candidates, fuzz cases, shot
   batches) are uniform enough that static slicing loses little to
   imbalance, and it needs no locks, no channels, and no domain-local
   state to reason about. *)

(* More domains than this buys nothing for our task sizes and makes
   spawn overhead visible. *)
let max_jobs = 16

let default_jobs () = max 1 (min max_jobs (Domain.recommended_domain_count ()))

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let clamp_jobs jobs n =
  let requested = match jobs with Some j -> j | None -> default_jobs () in
  max 1 (min max_jobs (min requested n))

(* Transient faults (a recoverable [Guard.Error], e.g. an injected
   [sim.shot] or [pool.task] fault) get a bounded retry. Determinism
   holds because tasks are pure functions of their inputs and an armed
   injection fires exactly once: the retry re-executes the same work
   with the fault already spent, so the retried result is the result
   the fault preempted. *)
let max_transient_retries = 2

let run_task f x =
  let rec attempt k =
    match
      Guard.Inject.hit "pool.task";
      f x
    with
    | v -> Done v
    | exception (Guard.Error.Guard_error e) when e.Guard.Error.recoverable && k < max_transient_retries ->
      Obs.Metrics.incr "guard.retries";
      attempt (k + 1)
    | exception e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  attempt 0

(* Each slot is written by exactly one domain and only read after
   [Domain.join], so the plain (non-atomic) array is race-free. *)
let run_array ?jobs f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let jobs = clamp_jobs jobs n in
    Obs.Metrics.incr "exec.pool.runs";
    Obs.Metrics.incr ~by:n "exec.pool.tasks";
    Obs.Metrics.incr ~by:jobs "exec.pool.domains";
    let results = Array.make n Pending in
    let elapsed = Array.make jobs 0. in
    (* Worker domains start with a fresh (disarmed) budget scope, so the
       caller's scoped deadline is captured here and re-installed in each
       spawned domain: a per-request budget bounds the request's fan-out
       too, without touching the process-global deadline. *)
    let budget = Guard.Budget.current () in
    let work d =
      let t0 = Unix.gettimeofday () in
      for i = d * n / jobs to ((d + 1) * n / jobs) - 1 do
        results.(i) <- run_task f arr.(i)
      done;
      Unix.gettimeofday () -. t0
    in
    if jobs = 1 then elapsed.(0) <- work 0
    else begin
      let spawned =
        Array.init (jobs - 1) (fun d ->
            Domain.spawn (fun () ->
                Guard.Budget.scoped budget (fun () -> work (d + 1))))
      in
      elapsed.(0) <- work 0;
      Array.iteri (fun d h -> elapsed.(d + 1) <- Domain.join h) spawned
    end;
    (* Metrics are recorded from the calling domain only; the workers
       touched nothing but their own slots and their own clock. *)
    Array.iteri
      (fun d dt -> Obs.Metrics.add_time (Printf.sprintf "exec.domain%d.time" d) dt)
      elapsed;
    (* Submission-order merge: the first Failed slot (by index, not by
       completion time) wins. The re-raise is structured — it names the
       failing task's index and, for guard faults, keeps the inner
       stage/site so the supervisor can see which site actually blew
       up. [recoverable] is cleared: the bounded retry above is the
       only retry; an outer pool must not replay a whole batch. *)
    Array.mapi
      (fun i -> function
        | Done v -> v
        | Failed (e, bt) ->
          let base = Guard.Error.of_exn ~stage:"exec.pool" ~site:"pool.task" e in
          let err =
            {
              base with
              Guard.Error.detail =
                Printf.sprintf "task %d: %s" i base.Guard.Error.detail;
              recoverable = false;
            }
          in
          let wrapped =
            match e with
            | Guard.Error.Budget_exceeded _ -> Guard.Error.Budget_exceeded err
            | _ -> Guard.Error.Guard_error err
          in
          Printexc.raise_with_backtrace wrapped bt
        | Pending -> assert false)
      results
  end

let map ?jobs f xs = Array.to_list (run_array ?jobs f (Array.of_list xs))

let mapi ?jobs f xs =
  Array.to_list
    (run_array ?jobs
       (fun (i, x) -> f i x)
       (Array.of_list (List.mapi (fun i x -> (i, x)) xs)))

(* [Prng.split] reads only the immutable origin of the root, so handing
   the same root to every domain is safe. *)
let map_seeded ?jobs ~seed f xs =
  let root = Prng.make seed in
  mapi ?jobs (fun i x -> f (Prng.split root i) x) xs
