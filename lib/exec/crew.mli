(** A fixed crew of long-running worker domains over a closable shared
    queue.

    {!Pool} is a deterministic [map]: one batch of known tasks, results
    merged in submission order. A crew is the complement — an
    open-ended stream of jobs (accepted connections, background work)
    consumed by [domains] workers for the crew's whole lifetime, with
    no result channel: the handler performs its own effects. Which
    worker runs which job is timing-dependent by nature; callers needing
    determinism must make the handler order-insensitive (the compilation
    service does: every request computes or replays a content-addressed
    response).

    Workers inherit the creator's scoped {!Guard.Budget} (captured at
    {!create}), matching {!Pool}'s propagation rule. A handler exception
    is contained: it is counted (["exec.crew.task.errors"]) and the
    worker moves to the next job — one bad connection cannot take a
    worker down. [Sys.Break] is re-raised.

    Counters: ["exec.crew.domains"] (workers spawned),
    ["exec.crew.jobs"] (jobs accepted),
    ["exec.crew.task.errors"]. *)

type 'a t

(** [create ?domains handler] spawns the workers immediately
    ([domains] clamped to [\[1, Pool.max_jobs\]], default 1). *)
val create : ?domains:int -> ('a -> unit) -> 'a t

(** [submit t job] enqueues [job], or answers [false] (dropping it)
    after {!close}. Never blocks. *)
val submit : 'a t -> 'a -> bool

(** Stop accepting jobs. Idempotent; already-queued jobs still run. *)
val close : 'a t -> unit

(** [join t] closes the crew and waits until every queued job has been
    handled and all workers have exited. *)
val join : 'a t -> unit
