(** A fixed crew of long-running worker domains over a closable shared
    queue, with supervised respawn.

    {!Pool} is a deterministic [map]: one batch of known tasks, results
    merged in submission order. A crew is the complement — an
    open-ended stream of jobs (accepted connections, background work)
    consumed by [domains] workers for the crew's whole lifetime, with
    no result channel: the handler performs its own effects. Which
    worker runs which job is timing-dependent by nature; callers needing
    determinism must make the handler order-insensitive (the compilation
    service does: every request computes or replays a content-addressed
    response).

    Workers inherit the creator's scoped {!Guard.Budget} (captured at
    {!create}), matching {!Pool}'s propagation rule — and so do
    respawned workers, so supervision never weakens the budget
    contract.

    {b Supervision.} A handler exception kills its worker (the job it
    was running is lost and counted); the dying worker spawns its own
    replacement while the bounded respawn budget lasts (default
    [2 * domains]). Once the budget is spent, workers die without
    replacement — a crash loop degrades capacity instead of spinning
    forever. [Sys.Break] is re-raised, never supervised.

    Counters: ["exec.crew.domains"] (initial workers),
    ["exec.crew.jobs"] (jobs accepted), ["exec.crew.task.errors"]
    (handler exceptions), ["exec.crew.deaths"] (workers lost),
    ["exec.crew.respawns"] (replacements spawned). *)

type 'a t

(** [create ?domains ?respawns handler] spawns the workers immediately
    ([domains] clamped to [\[1, Pool.max_jobs\]], default 1).
    [respawns] bounds replacement workers over the crew's lifetime
    (default [2 * domains]; 0 disables supervision). *)
val create : ?domains:int -> ?respawns:int -> ('a -> unit) -> 'a t

(** Remaining respawn budget — decremented each time a dead worker is
    replaced. *)
val respawns_left : 'a t -> int

(** [submit t job] enqueues [job], or answers [false] (dropping it)
    after {!close}. Never blocks. *)
val submit : 'a t -> 'a -> bool

(** Stop accepting jobs. Idempotent; already-queued jobs still run.
    Also stops supervision: workers dying after [close] are not
    replaced. *)
val close : 'a t -> unit

(** [join t] closes the crew and waits until every queued job has been
    handled and all workers — respawned ones included — have exited. *)
val join : 'a t -> unit
