(** Deterministic parallel work pool on OCaml 5 domains.

    The contract: for a fixed input, every function returns a result
    byte-identical to the sequential ([jobs = 1]) run, for ANY [jobs]
    value. Tasks are assigned to domains by a static partition of their
    submission indices (domain-per-batch, no shared queue), results are
    merged back in submission order, and {!map_seeded} derives task
    [i]'s PRNG purely from [(seed, i)] via {!Prng.split}. Determinism
    therefore never depends on scheduling, core count, or [jobs].

    Exceptions: if tasks raise, the FIRST failing task in submission
    order determines the error after all domains have joined — again
    independent of timing. The re-raise is a structured
    {!Guard.Error.Guard_error} (or [Budget_exceeded], matching the
    task's exception) whose detail is prefixed with the failing task's
    submission index ["task <i>: ..."]; a guard fault keeps its inner
    stage and site name, any other exception is wrapped under stage
    ["exec.pool"], site ["pool.task"]. The original backtrace is
    preserved.

    Budgets: the caller's scoped deadline ({!Guard.Budget.current}) is
    captured at submission and installed in every worker domain, so a
    per-request budget bounds the request's fan-out too. The
    process-global deadline is shared by construction.

    Resilience: a task failing with a RECOVERABLE guard error (a
    transient fault — see {!Guard.Inject}) is retried in place, at most
    twice, before the failure is recorded; retries bump the
    ["guard.retries"] counter. Each task dispatch passes the
    ["pool.task"] injection site.

    Observability: each run bumps the ["exec.pool.runs"],
    ["exec.pool.tasks"] and ["exec.pool.domains"] counters and records a
    per-domain ["exec.domain<d>.time"] timer in {!Obs.Metrics}, all from
    the calling domain. *)

(** Hard cap on worker domains (16). *)
val max_jobs : int

(** [Domain.recommended_domain_count] clamped to [\[1, max_jobs\]] —
    the default when [?jobs] is omitted, and the CLI's [--jobs]
    default. *)
val default_jobs : unit -> int

(** [map ?jobs f xs] is [List.map f xs] computed on up to [jobs]
    domains. [jobs] is clamped to [\[1, min max_jobs (length xs)\]]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [mapi ?jobs f xs] is [List.mapi f xs], parallel as {!map}. *)
val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

(** [map_seeded ?jobs ~seed f xs] runs [f prng_i x_i] where
    [prng_i = Prng.split (Prng.make seed) i] — each task gets its own
    stream, a pure function of [(seed, i)]. *)
val map_seeded :
  ?jobs:int -> seed:int -> (Prng.t -> 'a -> 'b) -> 'a list -> 'b list
