(* SplitMix64 (Steele, Lea & Flood 2014): a 64-bit counter stepped by the
   golden-ratio increment, finalized by a xor-shift-multiply mix. Trivially
   splittable — a child stream is just a different origin — and identical
   on every OCaml version, unlike [Stdlib.Random]. *)

type t = { origin : int64; mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_origin o = { origin = o; state = o }
let make seed = of_origin (mix (Int64.add (Int64.of_int seed) golden))

let split t i =
  (* A distinct odd multiplier keeps child origins off the parent's own
     golden-ratio orbit. *)
  of_origin
    (mix (Int64.logxor t.origin (Int64.mul (Int64.of_int (i + 1)) 0xD1B54A32D192ED03L)))

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* 63 uniform bits modulo the bound; the bias is < bound / 2^63. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let float t hi =
  hi *. Int64.to_float (Int64.shift_right_logical (bits64 t) 11) /. 9007199254740992.

let bool t = Int64.logand (bits64 t) 1L = 1L

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Prng.weighted: no positive weight";
  let k = int t total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.weighted: unreachable"
    | (w, v) :: rest ->
      let acc = acc + max 0 w in
      if k < acc then v else pick acc rest
  in
  pick 0 choices
