(* A fixed crew of long-running worker domains draining one shared
   queue. Where Pool is a deterministic map over a known task list (one
   batch, static partition, ordered merge), Crew is for open-ended
   streams whose arrival order IS timing-dependent — accepted
   connections, background jobs — and whose handler owns any
   determinism story (the service handler is order-insensitive by
   construction: every request computes or replays a content-addressed
   result).

   One mutex + condition around a queue is deliberately boring: the
   jobs a crew carries (whole connections) are seconds-long, so queue
   contention is unmeasurable, and a closable queue with broadcast
   shutdown is easy to prove drain-correct. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let worker_loop t handler =
  let rec next () =
    let job =
      Mutex.protect t.lock (fun () ->
          while Queue.is_empty t.queue && not t.closed do
            Condition.wait t.nonempty t.lock
          done;
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
    in
    match job with
    | None -> () (* closed and drained *)
    | Some job ->
      (try handler job with
      | Sys.Break as e -> raise e
      | _ -> Obs.Metrics.incr "exec.crew.task.errors");
      next ()
  in
  next ()

let create ?(domains = 1) handler =
  let domains = max 1 (min Pool.max_jobs domains) in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  (* Workers inherit the creator's scoped budget, mirroring Pool: work
     handed to the crew stays under whatever deadline the creator was
     running with (typically none for a server; each request then
     installs its own scope). *)
  let budget = Guard.Budget.current () in
  Obs.Metrics.incr ~by:domains "exec.crew.domains";
  t.workers <-
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            Guard.Budget.scoped budget (fun () -> worker_loop t handler)));
  t

let submit t job =
  Mutex.protect t.lock (fun () ->
      if t.closed then false
      else begin
        Queue.add job t.queue;
        Obs.Metrics.incr "exec.crew.jobs";
        Condition.signal t.nonempty;
        true
      end)

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let join t =
  close t;
  List.iter Domain.join t.workers;
  t.workers <- []
