(* A fixed crew of long-running worker domains draining one shared
   queue. Where Pool is a deterministic map over a known task list (one
   batch, static partition, ordered merge), Crew is for open-ended
   streams whose arrival order IS timing-dependent — accepted
   connections, background jobs — and whose handler owns any
   determinism story (the service handler is order-insensitive by
   construction: every request computes or replays a content-addressed
   result).

   One mutex + condition around a queue is deliberately boring: the
   jobs a crew carries (whole connections) are seconds-long, so queue
   contention is unmeasurable, and a closable queue with broadcast
   shutdown is easy to prove drain-correct.

   Supervision: a handler exception kills its worker domain — the job
   it was running is lost (counted in exec.crew.task.errors), but the
   queue is not — and the dying worker respawns its own replacement
   while a bounded respawn budget remains (exec.crew.respawns). The
   budget is what separates "one hostile job" from a crash loop: once
   it is spent, workers die without replacement and the crew winds
   down to whatever capacity survives. Respawned workers inherit the
   creator's Guard.Budget scope exactly like the originals. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  mutable respawns_left : int;
  budget : Guard.Budget.t;
  handler : 'a -> unit;
}

let worker_loop t =
  let rec next () =
    let job =
      Mutex.protect t.lock (fun () ->
          while Queue.is_empty t.queue && not t.closed do
            Condition.wait t.nonempty t.lock
          done;
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
    in
    match job with
    | None -> () (* closed and drained *)
    | Some job ->
      t.handler job;
      next ()
  in
  next ()

(* The worker body never lets an exception escape to Domain.join: a
   death is recorded, a successor is spawned under the lock (so join
   cannot miss it), and the domain exits cleanly. *)
let rec worker_body t () =
  Guard.Budget.scoped t.budget (fun () ->
      try worker_loop t
      with
      | Sys.Break as e -> raise e
      | _ ->
        Obs.Metrics.incr "exec.crew.task.errors";
        Obs.Metrics.incr "exec.crew.deaths";
        Mutex.protect t.lock (fun () ->
            if (not t.closed) && t.respawns_left > 0 then begin
              t.respawns_left <- t.respawns_left - 1;
              Obs.Metrics.incr "exec.crew.respawns";
              t.workers <- Domain.spawn (worker_body t) :: t.workers
            end))

let create ?(domains = 1) ?respawns handler =
  let domains = max 1 (min Pool.max_jobs domains) in
  (* Default budget: each worker slot may be replaced twice before the
     crew accepts the capacity loss — generous for stray faults, finite
     for a job stream that kills every handler it touches. *)
  let respawns =
    match respawns with Some r -> max 0 r | None -> 2 * domains
  in
  (* Workers inherit the creator's scoped budget, mirroring Pool: work
     handed to the crew stays under whatever deadline the creator was
     running with (typically none for a server; each request then
     installs its own scope). *)
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      respawns_left = respawns;
      budget = Guard.Budget.current ();
      handler;
    }
  in
  Obs.Metrics.declare "exec.crew.respawns";
  Obs.Metrics.declare "exec.crew.deaths";
  Obs.Metrics.declare "exec.crew.task.errors";
  Obs.Metrics.incr ~by:domains "exec.crew.domains";
  t.workers <- List.init domains (fun _ -> Domain.spawn (worker_body t));
  t

let respawns_left t = Mutex.protect t.lock (fun () -> t.respawns_left)

let submit t job =
  Mutex.protect t.lock (fun () ->
      if t.closed then false
      else begin
        Queue.add job t.queue;
        Obs.Metrics.incr "exec.crew.jobs";
        Condition.signal t.nonempty;
        true
      end)

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

(* A dying worker may have appended its successor after we snapshot, so
   joining loops until the list is observed empty. Once [closed] is
   set no further respawns occur, so the loop terminates. *)
let join t =
  close t;
  let rec drain () =
    let batch =
      Mutex.protect t.lock (fun () ->
          let ws = t.workers in
          t.workers <- [];
          ws)
    in
    if batch <> [] then begin
      List.iter Domain.join batch;
      drain ()
    end
  in
  drain ()
