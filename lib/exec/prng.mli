(** Splittable deterministic pseudo-random stream (SplitMix64).

    The fuzzer and the execution pool need two things [Stdlib.Random]
    does not give them: a stream that can be forked per task so every
    task is replayable from [(seed, index)] alone — independent of how
    many draws earlier tasks consumed and of which domain runs it — and
    bit-for-bit stability across OCaml versions (the stdlib generator
    changed algorithms in 5.0). *)

type t

(** [make seed] starts a stream. Equal seeds yield equal streams. *)
val make : int -> t

(** [split t i] is child stream [i] of [t], derived from [t]'s origin
    only: it is unaffected by (and does not affect) draws on [t], so
    case [i] replays identically whatever ran before it. *)
val split : t -> int -> t

(** The raw 64-bit draw the other samplers are built on. *)
val bits64 : t -> int64

(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] when [bound <= 0]. *)
val int : t -> int -> int

(** [float t hi] draws uniformly from [0, hi). *)
val float : t -> float -> float

val bool : t -> bool

(** [weighted t choices] picks among [(weight, value)] pairs with
    probability proportional to [weight]; non-positive weights never
    win. Raises [Invalid_argument] on an empty or all-zero list. *)
val weighted : t -> (int * 'a) list -> 'a
