(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md experiment index and EXPERIMENTS.md for the
   recorded outcomes).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only fig3  # one experiment
     dune exec bench/main.exe -- --list       # experiment ids
     dune exec bench/main.exe -- --fast       # skip the micro-benchmarks

   Absolute numbers are simulator-relative; the shapes (who wins, by what
   factor, where crossovers sit) are the reproduction target. *)

let mumbai = Hardware.Device.mumbai

let section id title =
  Printf.printf "\n======================================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "======================================================================\n%!"

(* Every artifact the harness compiles passes the structural validator;
   a violation prints loudly instead of silently contributing a bogus
   number to a table. *)
let structural_violations = ref 0

let check_artifact device ~logical ~physical =
  match Verify.Structural.check_artifact device ~logical ~physical with
  | Verify.Verdict.Inequivalent cex ->
    incr structural_violations;
    Printf.printf "!! STRUCTURAL VIOLATION: %s\n%!" cex.Verify.Verdict.detail
  | _ -> ()

let compiled_stats device circuit =
  let compacted, _ = Quantum.Circuit.compact_qubits circuit in
  let routed = Transpiler.Transpile.run device compacted in
  check_artifact device ~logical:compacted
    ~physical:routed.Transpiler.Transpile.physical;
  routed.Transpiler.Transpile.stats

(* ---------------------------------------------------------------- fig1 *)

let fig1 () =
  section "fig1" "BV qubit-reuse walkthrough (paper Fig. 1)";
  let original = Benchmarks.Bv.circuit 5 in
  let one =
    match Caqr.Qs_caqr.reduce_once original with
    | Some (_, c) -> c
    | None -> assert false
  in
  let minimal = Caqr.Qs_caqr.max_reuse original in
  Printf.printf "%-22s %-8s %-8s %s\n" "version" "qubits" "depth" "mid-circuit measures";
  List.iter
    (fun (name, c) ->
      Printf.printf "%-22s %-8d %-8d %d\n" name (Caqr.Reuse.qubit_usage c)
        (Quantum.Circuit.depth c)
        (Quantum.Circuit.mid_circuit_measurements c))
    [ ("(a) original", original); ("(b) one reuse", one); ("(c) maximal reuse", minimal) ];
  let secret = Benchmarks.Bv.expected_output 5 in
  let ok c = Sim.Counts.get (Sim.Executor.run ~seed:1 ~shots:64 c) secret = 64 in
  Printf.printf "all versions compute the secret: %b\n"
    (ok original && ok one && ok minimal)

(* ---------------------------------------------------------------- fig2 *)

let fig2 () =
  section "fig2" "measure+reset vs measure+conditional-X (paper Fig. 2)";
  let m = Quantum.Duration.default in
  let builtin = Quantum.Duration.measure_reset_builtin m in
  let ours = Quantum.Duration.measure_cond_x m in
  Printf.printf "built-in measure + reset   : %6d dt (%8.1f ns)\n" builtin
    (float_of_int builtin *. Quantum.Duration.ns_per_dt);
  Printf.printf "measure + conditional X    : %6d dt (%8.1f ns)\n" ours
    (float_of_int ours *. Quantum.Duration.ns_per_dt);
  Printf.printf "reduction                  : %5.1f%%  (paper: ~50%%)\n"
    (100. *. (1. -. (float_of_int ours /. float_of_int builtin)))

(* ------------------------------------------------------------ fig3/14 *)

let qaoa_tradeoff_series ~label g =
  Printf.printf "\n[%s] n=%d edges=%d coloring-bound=%d\n" label
    (Galg.Graph.order g) (Galg.Graph.size g) (Caqr.Commute.min_qubits g);
  Printf.printf "%-8s %-10s %-14s %-10s\n" "qubits" "depth" "duration(dt)" "2q-gates";
  let steps = Caqr.Commute.sweep ~mode:`Heuristic g in
  List.iter
    (fun (s : Caqr.Commute.step) ->
      Printf.printf "%-8d %-10d %-14d %-10d\n" s.Caqr.Commute.usage s.Caqr.Commute.depth
        s.Caqr.Commute.duration s.Caqr.Commute.two_q)
    steps;
  (* Headline summary: qubit saving at <= 25% duration growth. *)
  match steps with
  | base :: _ ->
    let within =
      List.filter
        (fun (s : Caqr.Commute.step) ->
          float_of_int s.Caqr.Commute.duration
          <= 1.25 *. float_of_int base.Caqr.Commute.duration)
        steps
    in
    let best =
      List.fold_left
        (fun acc (s : Caqr.Commute.step) -> min acc s.Caqr.Commute.usage)
        base.Caqr.Commute.usage within
    in
    Printf.printf
      "=> within +25%% duration: %d -> %d qubits (%.0f%% saving)\n" base.Caqr.Commute.usage
      best
      (100. *. (1. -. (float_of_int best /. float_of_int base.Caqr.Commute.usage)))
  | [] -> ()

(* "Density 30%" is ambiguous in the paper. Read as 30% of all vertex
   pairs, a 64-vertex instance carries 605 edges and *no* algorithm can
   go below ~12 qubits (m <= pw*n - pw(pw+1)/2 forces pathwidth >= 11;
   minimum wires = pathwidth + 1) — yet the paper reports "as few as 5",
   which is only possible on much sparser inputs. Both readings are
   reproduced; see EXPERIMENTS.md. *)
let sparse_density n = 0.3 *. float_of_int n /. float_of_int (n * (n - 1) / 2)

let fig3 () =
  section "fig3" "qubit-saving potential, QAOA-64 (paper Fig. 3)";
  qaoa_tradeoff_series ~label:"power-law, dense reading (m = 0.3 C(64,2))"
    (Galg.Gen.power_law ~seed:64 64 ~density:0.3);
  qaoa_tradeoff_series ~label:"random, dense reading"
    (Galg.Gen.random ~seed:64 64 ~density:0.3);
  qaoa_tradeoff_series ~label:"power-law, sparse reading (m = 0.3 n)"
    (Galg.Gen.power_law ~seed:64 64 ~density:(sparse_density 64));
  qaoa_tradeoff_series ~label:"random, sparse reading"
    (Galg.Gen.random ~seed:64 64 ~density:(sparse_density 64))

let fig14 () =
  section "fig14" "QAOA tradeoff across sizes (paper Fig. 14)";
  List.iter
    (fun n ->
      qaoa_tradeoff_series
        ~label:(Printf.sprintf "power-law n=%d d=0.30" n)
        (Galg.Gen.power_law ~seed:n n ~density:0.3);
      qaoa_tradeoff_series
        ~label:(Printf.sprintf "random n=%d d=0.30" n)
        (Galg.Gen.random ~seed:n n ~density:0.3))
    [ 16; 32; 128 ]

(* ---------------------------------------------------------------- fig13 *)

let fig13 () =
  section "fig13" "regular-application tradeoff (paper Fig. 13)";
  List.iter
    (fun name ->
      let e = Benchmarks.Suite.find name in
      Printf.printf "\n[%s]\n" name;
      Printf.printf "%-8s %-12s %-14s %-14s %-8s\n" "qubits" "log.depth"
        "compiled.depth" "duration(dt)" "swaps";
      List.iter
        (fun (s : Caqr.Qs_caqr.step) ->
          let st = compiled_stats mumbai s.Caqr.Qs_caqr.circuit in
          Printf.printf "%-8d %-12d %-14d %-14d %-8d\n" s.Caqr.Qs_caqr.usage
            s.Caqr.Qs_caqr.logical_depth st.Transpiler.Transpile.depth
            st.Transpiler.Transpile.duration_dt st.Transpiler.Transpile.swaps)
        (Caqr.Qs_caqr.sweep e.Benchmarks.Suite.circuit))
    [ "Multiply_13"; "System_9"; "BV_10" ]

(* --------------------------------------------------------------- table1 *)

type t1_row = {
  name : string;
  qubit : int;
  depth : int;
  duration : int;
  swap : int;
}

(* Qubit column = logical wires of the program (the paper's metric);
   [stats.qubits_used] would also count physical qubits touched only by
   routing SWAPs. *)
let t1_row name (usage, (st : Transpiler.Transpile.stats)) =
  {
    name;
    qubit = usage;
    depth = st.Transpiler.Transpile.depth;
    duration = st.Transpiler.Transpile.duration_dt;
    swap = st.Transpiler.Transpile.swaps;
  }

let print_t1_block title rows =
  Printf.printf "\n-- %s --\n" title;
  Printf.printf "%-14s %-7s %-7s %-13s %-5s\n" "Benchmark" "Qubit" "Depth" "Duration(dt)" "SWAP";
  List.iter
    (fun r ->
      Printf.printf "%-14s %-7d %-7d %-13d %-5d\n" r.name r.qubit r.depth r.duration r.swap)
    rows

(* Every reuse level of a benchmark, compiled onto Mumbai. *)
let table1_versions (e : Benchmarks.Suite.entry) =
  match e.Benchmarks.Suite.kind with
  | Benchmarks.Suite.Regular ->
    List.map
      (fun (s : Caqr.Qs_caqr.step) ->
        (s.Caqr.Qs_caqr.usage, compiled_stats mumbai s.Caqr.Qs_caqr.circuit))
      (Caqr.Qs_caqr.sweep e.Benchmarks.Suite.circuit)
  | Benchmarks.Suite.Commutable g ->
    List.map
      (fun (s : Caqr.Commute.step) ->
        (s.Caqr.Commute.usage, compiled_stats mumbai (Caqr.Commute.emit s.Caqr.Commute.plan)))
      (Caqr.Commute.sweep g)

let table1 () =
  section "table1" "QS-CaQR versions vs baseline (paper Table 1)";
  let entries = Benchmarks.Suite.table1 () in
  let per_entry =
    List.map
      (fun (e : Benchmarks.Suite.entry) ->
        let versions = table1_versions e in
        let baseline = List.hd versions in
        let max_reuse = List.nth versions (List.length versions - 1) in
        let min_depth =
          List.fold_left
            (fun acc ((_, (st : Transpiler.Transpile.stats)) as v) ->
              match acc with
              | Some (_, (b : Transpiler.Transpile.stats))
                when b.Transpiler.Transpile.depth <= st.Transpiler.Transpile.depth ->
                acc
              | _ -> Some v)
            None versions
          |> Option.get
        in
        (e.Benchmarks.Suite.name, baseline, max_reuse, min_depth))
      entries
  in
  print_t1_block "Baseline (No Reuse)"
    (List.map (fun (n, b, _, _) -> t1_row n b) per_entry);
  print_t1_block "Ours with Maximal Reuse"
    (List.map (fun (n, _, m, _) -> t1_row n m) per_entry);
  print_t1_block "Ours with Minimal Depth"
    (List.map (fun (n, _, _, d) -> t1_row n d) per_entry);
  (* Headline: average duration overhead of maximal reuse vs baseline. *)
  let overheads =
    List.map
      (fun (_, (_, (b : Transpiler.Transpile.stats)), (_, (m : Transpiler.Transpile.stats)), _) ->
        float_of_int m.Transpiler.Transpile.duration_dt
        /. float_of_int (max 1 b.Transpiler.Transpile.duration_dt))
      per_entry
  in
  let avg = List.fold_left ( +. ) 0. overheads /. float_of_int (List.length overheads) in
  Printf.printf
    "\n=> maximal-reuse duration vs baseline: %+.1f%% average change (paper: +9.9%%)\n"
    (100. *. (avg -. 1.))

(* --------------------------------------------------------------- table2 *)

let table2 () =
  section "table2" "SR-CaQR vs QS-CaQR(min-SWAP) on Mumbai (paper Table 2)";
  Printf.printf "%-14s | %-22s | %-22s\n" "" "QS-CaQR (MIN-SWAP)" "SR-CaQR";
  Printf.printf "%-14s | %-7s %-6s %-7s | %-7s %-6s %-7s\n" "Benchmark" "Qubit" "SWAP"
    "Dur(K)" "Qubit" "SWAP" "Dur(K)";
  let wins = ref 0 and total = ref 0 in
  List.iter
    (fun (e : Benchmarks.Suite.entry) ->
      let versions = table1_versions e in
      let qs_usage, qs_min_swap =
        List.fold_left
          (fun acc (u, (st : Transpiler.Transpile.stats)) ->
            match acc with
            | Some (_, (b : Transpiler.Transpile.stats))
              when (b.Transpiler.Transpile.swaps, b.Transpiler.Transpile.duration_dt)
                   <= (st.Transpiler.Transpile.swaps, st.Transpiler.Transpile.duration_dt)
              ->
              acc
            | _ -> Some (u, st))
          None versions
        |> Option.get
      in
      let sr =
        match e.Benchmarks.Suite.kind with
        | Benchmarks.Suite.Regular -> Caqr.Sr_caqr.regular mumbai e.Benchmarks.Suite.circuit
        | Benchmarks.Suite.Commutable g -> Caqr.Sr_caqr.commutable mumbai g
      in
      let sr_stats = Transpiler.Transpile.stats_of mumbai sr.Caqr.Sr_caqr.physical in
      incr total;
      if sr_stats.Transpiler.Transpile.swaps <= qs_min_swap.Transpiler.Transpile.swaps
      then incr wins;
      Printf.printf "%-14s | %-7d %-6d %-7.0f | %-7d %-6d %-7.0f\n"
        e.Benchmarks.Suite.name qs_usage qs_min_swap.Transpiler.Transpile.swaps
        (float_of_int qs_min_swap.Transpiler.Transpile.duration_dt /. 1000.)
        sr.Caqr.Sr_caqr.qubits_used sr_stats.Transpiler.Transpile.swaps
        (float_of_int sr_stats.Transpiler.Transpile.duration_dt /. 1000.))
    (Benchmarks.Suite.table1 ());
  Printf.printf "\n=> SR-CaQR matches or beats QS(min-SWAP) swaps on %d/%d benchmarks\n"
    !wins !total

(* --------------------------------------------------------------- table3 *)

let table3 () =
  section "table3" "TVD on the noisy device (paper Table 3)";
  Printf.printf "%-14s %-16s %-16s %-12s\n" "Benchmark" "TVD(Baseline)" "TVD(SR-CaQR)"
    "improved?";
  let shots = 256 in
  List.iter
    (fun name ->
      let e = Benchmarks.Suite.find name in
      let c = e.Benchmarks.Suite.circuit in
      let base = (Transpiler.Transpile.run mumbai c).Transpiler.Transpile.physical in
      let sr = (Caqr.Sr_caqr.regular mumbai c).Caqr.Sr_caqr.physical in
      let tvd p seed = Sim.Noise.tvd_vs_ideal ~device:mumbai ~seed ~shots p in
      let t_base = tvd base 101 in
      let t_sr = tvd sr 102 in
      Printf.printf "%-14s %-16.3f %-16.3f %s\n%!" name t_base t_sr
        (if t_sr < t_base then "yes" else "no"))
    [ "Multiply_13"; "BV_10"; "CC_10" ]

(* ------------------------------------------------------------ fig15/16 *)

let qaoa_convergence ~id ~density () =
  section id
    (Printf.sprintf "QAOA-10 convergence, density %.1f (paper Fig. %s)" density
       (if density < 0.4 then "15" else "16"));
  let problem = Qaoa.Maxcut.random ~seed:10 10 ~density in
  let g = problem.Qaoa.Maxcut.graph in
  let optimum = Qaoa.Maxcut.brute_force_optimum problem in
  Printf.printf "optimum cut = %.0f\n" optimum;
  let shots = 256 and rounds = 25 in
  (* Baseline: plain ansatz routed by the baseline transpiler. *)
  let baseline_emit gamma beta =
    let c = Qaoa.Ansatz.circuit problem ~gammas:[| gamma |] ~betas:[| beta |] in
    (Transpiler.Transpile.run mumbai c).Transpiler.Transpile.physical
  in
  (* SR-CaQR: reuse sweet spot + lazy mapping, swap-optimized candidate
     selection (same path as Sr_caqr.commutable). *)
  let sr_qubits = ref 0 in
  let sr_emit gamma beta =
    let r = Caqr.Sr_caqr.commutable ~gamma ~beta mumbai g in
    sr_qubits := r.Caqr.Sr_caqr.qubits_used;
    r.Caqr.Sr_caqr.physical
  in
  let optimize emit seed0 =
    let seed = ref seed0 in
    Qaoa.Optimizer.cobyla_lite ~max_evals:rounds ~init:[| -0.7; 0.9 |] ~rho_start:0.4
      ~rho_end:1e-3 (fun x ->
        incr seed;
        Qaoa.Maxcut.neg_expected_cut problem
          (Sim.Noise.run ~device:mumbai ~seed:!seed ~shots (emit x.(0) x.(1))))
  in
  let t_base = optimize baseline_emit 200 in
  let t_sr = optimize sr_emit 300 in
  Printf.printf "SR-CaQR uses %d qubits (baseline uses 10)\n" !sr_qubits;
  Printf.printf "%-6s %-12s %-12s   (-E[cut], lower is better)\n" "round" "baseline"
    "sr-caqr";
  let rec zip i a b =
    match (a, b) with
    | x :: xs, y :: ys ->
      Printf.printf "%-6d %-12.3f %-12.3f\n" i x y;
      zip (i + 1) xs ys
    | x :: xs, [] ->
      Printf.printf "%-6d %-12.3f %-12s\n" i x "-";
      zip (i + 1) xs []
    | [], y :: ys ->
      Printf.printf "%-6d %-12s %-12.3f\n" i "-" y;
      zip (i + 1) [] ys
    | [], [] -> ()
  in
  zip 1 t_base.Qaoa.Optimizer.history t_sr.Qaoa.Optimizer.history;
  Printf.printf "=> final: baseline %.3f, sr-caqr %.3f (optimum -%.0f)\n"
    t_base.Qaoa.Optimizer.best_value t_sr.Qaoa.Optimizer.best_value optimum

let fig15 () = qaoa_convergence ~id:"fig15" ~density:0.3 ()
let fig16 () = qaoa_convergence ~id:"fig16" ~density:0.5 ()

(* ---------------------------------------------------------------- micro *)

let micro () =
  section "micro" "compiler-pass micro-benchmarks (Bechamel)";
  let open Bechamel in
  let bv10 = Benchmarks.Bv.circuit 10 in
  let qaoa16 = Galg.Gen.random ~seed:16 16 ~density:0.3 in
  let rnd40 = Galg.Gen.random ~seed:40 40 ~density:0.2 in
  let tests =
    [
      Test.make ~name:"reuse.analyze+valid_pairs(BV10)"
        (Staged.stage (fun () ->
             ignore (Caqr.Reuse.valid_pairs (Caqr.Reuse.analyze bv10))));
      Test.make ~name:"qs.search(BV10->2)"
        (Staged.stage (fun () -> ignore (Caqr.Qs_caqr.search ~target:2 bv10)));
      Test.make ~name:"commute.sweep(QAOA16)"
        (Staged.stage (fun () -> ignore (Caqr.Commute.sweep ~mode:`Heuristic qaoa16)));
      Test.make ~name:"matching.blossom(n=40,d=0.2)"
        (Staged.stage (fun () -> ignore (Galg.Matching.blossom rnd40)));
      Test.make ~name:"router.route(BV10@mumbai)"
        (Staged.stage (fun () -> ignore (Transpiler.Transpile.run mumbai bv10)));
      Test.make ~name:"sr_caqr.regular(BV10@mumbai)"
        (Staged.stage (fun () -> ignore (Caqr.Sr_caqr.regular mumbai bv10)));
      Test.make ~name:"sim.run(BV10,32shots)"
        (Staged.stage (fun () -> ignore (Sim.Executor.run ~seed:1 ~shots:32 bv10)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "%-36s %s\n" "pass" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let est = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            let pretty =
              if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
              else Printf.sprintf "%8.0f ns" ns
            in
            Printf.printf "%-36s %s\n%!" name pretty
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        est)
    tests

(* ------------------------------------------------------------------ esp *)

(* The paper's claim (c): reuse improves fidelity. ESP is the analytic
   proxy (§3.2.1); the noisy-simulation success rate of the ideal
   bitstring validates it on the deterministic benchmarks. *)
let esp () =
  section "esp" "estimated success probability: baseline vs SR-CaQR";
  Printf.printf "%-14s %-12s %-12s %-14s %-14s\n" "Benchmark" "ESP(base)"
    "ESP(SR)" "succ(base)" "succ(SR)";
  List.iter
    (fun name ->
      let e = Benchmarks.Suite.find name in
      let c = e.Benchmarks.Suite.circuit in
      let base = (Transpiler.Transpile.run mumbai c).Transpiler.Transpile.physical in
      let sr = (Caqr.Sr_caqr.regular mumbai c).Caqr.Sr_caqr.physical in
      let succ p seed =
        let noisy = Sim.Noise.run ~device:mumbai ~seed ~shots:256 p in
        let ideal = Sim.Executor.distribution ~seed c in
        match Sim.Counts.top ideal with
        | Some k -> Sim.Counts.success_rate noisy k
        | None -> 0.
      in
      Printf.printf "%-14s %-12.4f %-12.4f %-14.3f %-14.3f\n%!" name
        (Transpiler.Esp.of_circuit mumbai base)
        (Transpiler.Esp.of_circuit mumbai sr)
        (succ base 55) (succ sr 56))
    [ "BV_10"; "CC_10"; "XOR_5"; "RD-32" ]

(* ------------------------------------------------------------- ablations *)

(* Fig. 2 end-to-end: what if CaQR used the hardware's built-in reset
   (with its redundant measurement pulse) instead of measure +
   conditional X? Same reuse structure, worse duration and fidelity. *)
let ablation_reset () =
  section "ablation:reset" "built-in reset vs measure + conditional X";
  let reused = Caqr.Qs_caqr.max_reuse (Benchmarks.Bv.circuit 8) in
  let with_builtin_reset (c : Quantum.Circuit.t) =
    Quantum.Circuit.of_kinds ~num_qubits:c.Quantum.Circuit.num_qubits
      ~num_clbits:c.Quantum.Circuit.num_clbits
      (Array.to_list
         (Array.map
            (fun g ->
              match g.Quantum.Gate.kind with
              | Quantum.Gate.If_x (_, q) -> Quantum.Gate.Reset q
              | k -> k)
            c.Quantum.Circuit.gates))
  in
  let builtin = with_builtin_reset reused in
  let model = Quantum.Duration.default in
  Printf.printf "%-28s %-14s %-10s\n" "variant" "duration(dt)" "TVD(noisy)";
  List.iter
    (fun (name, c) ->
      let tvd = Sim.Noise.tvd_vs_ideal ~device:mumbai ~seed:77 ~shots:400 c in
      Printf.printf "%-28s %-14d %-10.3f\n" name (Quantum.Circuit.duration model c) tvd)
    [ ("measure + conditional X", reused); ("built-in reset", builtin) ]

(* QS-CaQR search orderings: pure greedy-by-depth stalls above the true
   minimum on star-shaped circuits; the serial-chain ordering reaches it. *)
let ablation_search () =
  section "ablation:search" "QS-CaQR candidate orderings (greedy vs chain)";
  Printf.printf "%-14s %-14s %-14s %-14s\n" "benchmark" "greedy floor" "chain floor"
    "combined";
  List.iter
    (fun name ->
      let c = (Benchmarks.Suite.find name).Benchmarks.Suite.circuit in
      let floor order =
        let opts = { Caqr.Qs_caqr.default_opts with Caqr.Qs_caqr.order } in
        let rec go target =
          if target < 1 then target + 1
          else
            match Caqr.Qs_caqr.search ~opts ~target c with
            | Some _ -> go (target - 1)
            | None -> target + 1
        in
        go (Caqr.Reuse.qubit_usage c - 1)
      in
      Printf.printf "%-14s %-14d %-14d %-14d\n" name
        (floor Caqr.Qs_caqr.Score) (floor Caqr.Qs_caqr.Chain)
        (floor Caqr.Qs_caqr.Both))
    [ "BV_10"; "CC_10"; "System_9"; "Multiply_13" ]

(* How robust is the reuse advantage to the noise level? Sweep a global
   error-rate scale and watch the TVD gap between baseline and SR-CaQR. *)
let ablation_noise () =
  section "ablation:noise" "reuse advantage vs noise scale (BV_8)";
  let c = Benchmarks.Bv.circuit 8 in
  let base = (Transpiler.Transpile.run mumbai c).Transpiler.Transpile.physical in
  let sr = (Caqr.Sr_caqr.regular mumbai c).Caqr.Sr_caqr.physical in
  Printf.printf "%-12s %-14s %-14s %-10s\n" "noise scale" "TVD(base)" "TVD(SR)" "gap";
  List.iter
    (fun factor ->
      let device = Hardware.Device.with_noise_scale factor mumbai in
      let tvd p seed = Sim.Noise.tvd_vs_ideal ~device ~seed ~shots:300 p in
      let tb = tvd base 61 and ts = tvd sr 62 in
      Printf.printf "%-12.2f %-14.3f %-14.3f %+-10.3f\n%!" factor tb ts (tb -. ts))
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

(* The paper's proposed future work: replace Edmonds blossom with a
   greedy maximal matching in the commutable scheduler. *)
let ablation_matching () =
  section "ablation:matching" "scheduler matching: blossom vs greedy";
  Printf.printf "%-22s %-16s %-16s\n" "instance" "blossom rounds" "greedy rounds";
  List.iter
    (fun (n, seed) ->
      let g = Galg.Gen.random ~seed n ~density:0.3 in
      let plan =
        match Caqr.Commute.plan_with_budget g ~budget:(max 2 (n - n / 4)) with
        | Some p -> p
        | None -> Caqr.Commute.make g
      in
      let exact = Caqr.Commute.schedule_rounds ~exact:true plan in
      let greedy = Caqr.Commute.schedule_rounds ~exact:false plan in
      Printf.printf "%-22s %-16d %-16d\n"
        (Printf.sprintf "QAOA%d-0.3 (reuse)" n)
        exact greedy)
    [ (10, 1); (16, 2); (20, 3); (24, 4) ]

(* ---------------------------------------------------------------- verify *)

(* Translation validation over the whole registry: semantic (exact or
   probe-based) for everything the simulator affords, structural-only
   for the widest instances. Keeps the evaluation honest — every number
   in the tables above comes from a circuit the validator accepts. *)
let verify_exp () =
  section "verify" "translation validation of every strategy's output";
  let strategies =
    [
      ("baseline", Caqr.Pipeline.Baseline);
      ("qs-max-reuse", Caqr.Pipeline.Qs_max_reuse);
      ("qs-min-depth", Caqr.Pipeline.Qs_min_depth);
      ("qs-best-fidelity", Caqr.Pipeline.Qs_best_fidelity);
      ("sr", Caqr.Pipeline.Sr);
      ("cone", Caqr.Pipeline.Cone);
      ("gidnet", Caqr.Pipeline.Gidnet);
    ]
  in
  Printf.printf "%-14s %-18s %-8s %s\n" "benchmark" "strategy" "level" "verdict";
  let bad = ref 0 in
  List.iter
    (fun (e : Benchmarks.Suite.entry) ->
      let input =
        match e.Benchmarks.Suite.kind with
        | Benchmarks.Suite.Regular -> Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit
        | Benchmarks.Suite.Commutable g -> Caqr.Pipeline.Commutable g
      in
      (* Semantic probing of a 2^20+ state vector costs minutes per
         strategy; past 16 program qubits the structural pass carries
         the experiment. *)
      let level =
        if e.Benchmarks.Suite.circuit.Quantum.Circuit.num_qubits > 16 then
          Verify.Static
        else Verify.Auto
      in
      List.iter
        (fun (name, strategy) ->
          let options =
            { Caqr.Pipeline.default with verify = Some level; seed = 7 }
          in
          let r = Caqr.Pipeline.compile ~options mumbai strategy input in
          let verdict =
            match r.Caqr.Pipeline.verification with
            | Some v -> v
            | None -> Verify.Inconclusive "verification was not run"
          in
          if Verify.Verdict.is_inequivalent verdict then incr bad;
          Printf.printf "%-14s %-18s %-8s %s\n%!" e.Benchmarks.Suite.name name
            (Verify.level_name level)
            (Verify.Verdict.to_string verdict))
        strategies)
    (Benchmarks.Suite.table1 ());
  Printf.printf "\n=> inequivalent artifacts: %d (target 0)\n" !bad

(* ------------------------------------------------------------- parallel *)

(* The execution-pool experiment: the same work at jobs in {1, 2, 4}
   must produce byte-identical artifacts (the pool's determinism
   contract) while the wall clock drops on multicore hosts. Two loads on
   the perf experiment's largest circuit: the Qs_best_fidelity candidate
   fan-out (transpile per sweep point) and ideal shot sampling (256-shot
   batches). Speedups are relative to jobs=1 and bounded by the host's
   core count — a single-core container reports ~1.0x and that is the
   honest number. *)

type parallel_point = {
  pp_jobs : int;
  pp_compile_s : float;
  pp_sample_s : float;
  pp_identical : bool;
}

type parallel_result = {
  pr_benchmark : string;
  pr_cores : int;
  pr_points : parallel_point list;  (* jobs 1, 2, 4 *)
  pr_compile_speedup_j4 : float;
  pr_sample_speedup_j4 : float;
}

let parallel_cache : parallel_result option ref = ref None

let largest_regular () =
  List.fold_left
    (fun acc (e : Benchmarks.Suite.entry) ->
      match acc with
      | Some (b : Benchmarks.Suite.entry)
        when Quantum.Circuit.gate_count b.Benchmarks.Suite.circuit
             >= Quantum.Circuit.gate_count e.Benchmarks.Suite.circuit ->
        acc
      | _ -> Some e)
    None (Benchmarks.Suite.regular ())
  |> Option.get

let parallel_measurements () =
  match !parallel_cache with
  | Some r -> r
  | None ->
    let e = largest_regular () in
    let input = Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit in
    let sample_shots = 8192 in
    let measure jobs =
      (* Compile: best of 3 repetitions (the candidate fan-out is fast
         enough for scheduler noise to matter). Sampling runs once: at
         ~seconds per run the minimum would triple the experiment for a
         margin it does not need. *)
      let best_compile = ref infinity and report = ref None in
      for _ = 1 to 3 do
        let t0 = Unix.gettimeofday () in
        let r =
          Caqr.Pipeline.compile
            ~options:{ Caqr.Pipeline.default with jobs }
            mumbai Caqr.Pipeline.Qs_best_fidelity input
        in
        best_compile := Float.min !best_compile (Unix.gettimeofday () -. t0);
        report := Some r
      done;
      let r = Option.get !report in
      let qasm =
        Quantum.Qasm.to_string
          (fst (Quantum.Circuit.compact_qubits r.Caqr.Pipeline.physical))
      in
      let t0 = Unix.gettimeofday () in
      let counts =
        Sim.Executor.run ~jobs ~seed:11 ~shots:sample_shots
          r.Caqr.Pipeline.physical
      in
      let sample_s = Unix.gettimeofday () -. t0 in
      (jobs, !best_compile, sample_s, qasm, Sim.Counts.to_list counts)
    in
    let runs = List.map measure [ 1; 2; 4 ] in
    let _, c1, s1, qasm1, counts1 = List.hd runs in
    let points =
      List.map
        (fun (jobs, c, s, qasm, counts) ->
          {
            pp_jobs = jobs;
            pp_compile_s = c;
            pp_sample_s = s;
            pp_identical = qasm = qasm1 && counts = counts1;
          })
        runs
    in
    let speedup_at f j =
      match List.find_opt (fun (jobs, _, _, _, _) -> jobs = j) runs with
      | Some (_, c, s, _, _) -> (c1 /. Float.max 1e-9 c, s1 /. Float.max 1e-9 s) |> f
      | None -> 1.
    in
    let r =
      {
        pr_benchmark = e.Benchmarks.Suite.name;
        pr_cores = Domain.recommended_domain_count ();
        pr_points = points;
        pr_compile_speedup_j4 = speedup_at fst 4;
        pr_sample_speedup_j4 = speedup_at snd 4;
      }
    in
    if not (List.for_all (fun p -> p.pp_identical) points) then begin
      incr structural_violations;
      Printf.printf "!! DETERMINISM VIOLATION: jobs>1 changed the artifact\n%!"
    end;
    parallel_cache := Some r;
    r

let parallel_exp () =
  section "parallel" "deterministic execution pool: jobs 1/2/4 (lib/exec)";
  let r = parallel_measurements () in
  Printf.printf "benchmark %s, %d core(s) recommended by the runtime\n"
    r.pr_benchmark r.pr_cores;
  Printf.printf "%-6s %-14s %-14s %s\n" "jobs" "compile(s)" "sample(s)"
    "identical to jobs=1";
  List.iter
    (fun p ->
      Printf.printf "%-6d %-14.4f %-14.4f %b\n" p.pp_jobs p.pp_compile_s
        p.pp_sample_s p.pp_identical)
    r.pr_points;
  Printf.printf
    "=> jobs=4 speedup: compile %.2fx, sampling %.2fx (bounded by cores)\n"
    r.pr_compile_speedup_j4 r.pr_sample_speedup_j4

(* -------------------------------------------------------------- engines *)

(* Engine-vs-engine matrix: every Table-1 benchmark compiled under each
   of the four reuse engines (QS, SR, Cone, GidNET) plus the no-reuse
   baseline. Cached in a ref so the one measurement feeds both the
   printed table and the BENCH_caqr.json "engines" section. *)

type engines_cell = {
  ec_strategy : string;
  ec_width : int;
  ec_depth : int;
  ec_duration : int;
  ec_swaps : int;
  ec_wall_s : float;
}

type engines_row = { eng_benchmark : string; eng_cells : engines_cell list }

let engines_cache : engines_row list option ref = ref None

let engines_strategies =
  [
    Caqr.Pipeline.Baseline;
    Caqr.Pipeline.Qs_max_reuse;
    Caqr.Pipeline.Sr;
    Caqr.Pipeline.Cone;
    Caqr.Pipeline.Gidnet;
  ]

let engines_measurements () =
  match !engines_cache with
  | Some rows -> rows
  | None ->
    let rows =
      List.map
        (fun (e : Benchmarks.Suite.entry) ->
          let input =
            match e.Benchmarks.Suite.kind with
            | Benchmarks.Suite.Regular ->
              Caqr.Pipeline.Regular e.Benchmarks.Suite.circuit
            | Benchmarks.Suite.Commutable g -> Caqr.Pipeline.Commutable g
          in
          let cells =
            List.map
              (fun strategy ->
                let t0 = Unix.gettimeofday () in
                let r = Caqr.Pipeline.compile mumbai strategy input in
                let wall = Unix.gettimeofday () -. t0 in
                check_artifact mumbai
                  ~logical:(fst (Quantum.Circuit.compact_qubits r.Caqr.Pipeline.logical))
                  ~physical:r.Caqr.Pipeline.physical;
                {
                  ec_strategy = Caqr.Pipeline.strategy_name strategy;
                  ec_width = r.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used;
                  ec_depth = r.Caqr.Pipeline.stats.Transpiler.Transpile.depth;
                  ec_duration =
                    r.Caqr.Pipeline.stats.Transpiler.Transpile.duration_dt;
                  ec_swaps = r.Caqr.Pipeline.stats.Transpiler.Transpile.swaps;
                  ec_wall_s = wall;
                })
              engines_strategies
          in
          { eng_benchmark = e.Benchmarks.Suite.name; eng_cells = cells })
        (Benchmarks.Suite.table1 ())
    in
    engines_cache := Some rows;
    rows

let engines_exp () =
  section "engines" "engine-vs-engine width/depth/duration matrix";
  let rows = engines_measurements () in
  Printf.printf "%-14s %-18s %-7s %-7s %-13s %-6s %s\n" "benchmark" "engine"
    "width" "depth" "duration(dt)" "swaps" "wall(s)";
  List.iter
    (fun row ->
      List.iter
        (fun c ->
          Printf.printf "%-14s %-18s %-7d %-7d %-13d %-6d %.3f\n"
            row.eng_benchmark c.ec_strategy c.ec_width c.ec_depth c.ec_duration
            c.ec_swaps c.ec_wall_s)
        row.eng_cells;
      print_newline ())
    rows;
  (* The differential headline: on how many benchmarks do the new
     engines match or beat the QS search's width? *)
  let width_of name row =
    (List.find (fun c -> c.ec_strategy = name) row.eng_cells).ec_width
  in
  let count name =
    List.length
      (List.filter (fun row -> width_of name row <= width_of "qs-max-reuse" row) rows)
  in
  Printf.printf
    "=> width <= qs-max-reuse on %d/%d benchmarks (cone), %d/%d (gidnet)\n"
    (count "cone") (List.length rows) (count "gidnet") (List.length rows)

(* ----------------------------------------------------------------- perf *)

(* The incremental analysis engine must reproduce the fresh engine's
   sweep exactly while doing a fraction of the analysis work.  The
   comparison runs both engines over every regular benchmark and writes
   BENCH_caqr.json (schema caqr-bench/4) for CI to archive. *)

type engine_run = {
  er_steps : Caqr.Qs_caqr.step list;
  er_wall_s : float;
  er_analyze_s : float;
  er_analyze_fresh : int;
  er_analyze_incremental : int;
  er_search_nodes : int;
  er_cache_hits : int;
  er_cache_misses : int;
}

(* Each engine runs three times and the timings keep the fastest
   repetition: scheduler noise on a shared machine easily exceeds the
   margin being measured, and the minimum is the usual robust estimator
   for CPU-bound work. Steps and counters are deterministic, so they
   come out identical in every repetition. *)
let run_engine engine c =
  let once () =
    Obs.Metrics.reset ();
    let steps =
      Obs.Metrics.time "perf.wall" @@ fun () ->
      Caqr.Qs_caqr.sweep
        ~opts:{ Caqr.Qs_caqr.default_opts with Caqr.Qs_caqr.engine }
        c
    in
    {
      er_steps = steps;
      er_wall_s = Obs.Metrics.timing "perf.wall";
      er_analyze_s = Obs.Metrics.timing "time.analyze";
      er_analyze_fresh = Obs.Metrics.count "reuse.analyze.fresh";
      er_analyze_incremental = Obs.Metrics.count "reuse.analyze.incremental";
      er_search_nodes = Obs.Metrics.count "qs.search.nodes";
      er_cache_hits = Obs.Metrics.count "qs.cache.hit";
      er_cache_misses = Obs.Metrics.count "qs.cache.miss";
    }
  in
  let r = ref (once ()) in
  for _ = 2 to 3 do
    let n = once () in
    r :=
      {
        n with
        er_wall_s = Float.min !r.er_wall_s n.er_wall_s;
        er_analyze_s = Float.min !r.er_analyze_s n.er_analyze_s;
      }
  done;
  !r

let engine_json b r =
  Buffer.add_string b
    (Printf.sprintf
       "{\"wall_s\":%.6f,\"analyze_s\":%.6f,\"analyze_fresh\":%d,\"analyze_incremental\":%d,\"search_nodes\":%d,\"cache_hits\":%d,\"cache_misses\":%d}"
       r.er_wall_s r.er_analyze_s r.er_analyze_fresh r.er_analyze_incremental
       r.er_search_nodes r.er_cache_hits r.er_cache_misses)

(* -------------------------------------------------------------- anytime *)

(* The quality/time dial: the QS engine under shrinking wall-clock
   budgets on the large corpus. Each point runs the full anytime search
   inside a scoped budget and records the incumbent's width — the curve
   these rows trace is the contract the ISSUE's dial sells: more time,
   never a wider circuit. *)

type any_point = {
  ap_budget_ms : int;
  ap_width : int;
  ap_pairs : int;
  ap_quality : string;
  ap_wall_s : float;
}

type any_row = {
  ar_benchmark : string;
  ar_qubits : int;
  ar_points : any_point list;
}

let anytime_budgets_ms = [ 150; 400; 1000; 2500 ]

let anytime_benchmarks =
  [
    "qaoa-powerlaw-100";
    "qaoa-powerlaw-250";
    "cuccaro-128";
    "qft-layered-100";
    "rand-dyn-100";
  ]

let anytime_measurements () =
  List.map
    (fun name ->
      let g = Option.get (Benchmarks.Large.find_opt name) in
      let c = g.Benchmarks.Large.build () in
      let points =
        List.map
          (fun ms ->
            Obs.Metrics.reset ();
            let a =
              Obs.Metrics.time "perf.anytime" @@ fun () ->
              Guard.Budget.scoped (Guard.Budget.make ~ms ()) (fun () ->
                  Caqr.Qs_caqr.max_reuse_anytime c)
            in
            {
              ap_budget_ms = ms;
              ap_width = a.Caqr.Qs_caqr.width;
              ap_pairs = List.length a.Caqr.Qs_caqr.pairs;
              ap_quality = Caqr.Quality.name a.Caqr.Qs_caqr.quality;
              ap_wall_s = Obs.Metrics.timing "perf.anytime";
            })
          anytime_budgets_ms
      in
      {
        ar_benchmark = name;
        ar_qubits = c.Quantum.Circuit.num_qubits;
        ar_points = points;
      })
    anytime_benchmarks

let anytime_exp () =
  section "anytime" "QS width vs wall-clock budget on the large corpus";
  Printf.printf "%-18s %-7s" "benchmark" "qubits";
  List.iter
    (fun ms -> Printf.printf " %9s" (Printf.sprintf "%dms" ms))
    anytime_budgets_ms;
  print_newline ();
  List.iter
    (fun r ->
      Printf.printf "%-18s %-7d" r.ar_benchmark r.ar_qubits;
      List.iter
        (fun p ->
          Printf.printf " %9s"
            (Printf.sprintf "%d%s" p.ap_width
               (if p.ap_quality = "exact" then "*" else "")))
        r.ar_points;
      print_newline ())
    (anytime_measurements ());
  Printf.printf "   (* = exact: the search completed inside the budget)\n"

let perf () =
  section "perf" "incremental vs fresh analysis engine (BENCH_caqr.json)";
  let ratio num den = num /. Float.max 1e-9 den in
  Printf.printf "%-14s %-7s %-11s %-11s %-11s %-9s %s\n" "benchmark" "gates"
    "inc wall(s)" "frs wall(s)" "work ratio" "speedup" "identical";
  let rows =
    List.map
      (fun (e : Benchmarks.Suite.entry) ->
        let c = e.Benchmarks.Suite.circuit in
        let inc = run_engine Caqr.Qs_caqr.Incremental c in
        let fresh = run_engine Caqr.Qs_caqr.Fresh c in
        let identical = inc.er_steps = fresh.er_steps in
        let work = ratio fresh.er_analyze_s inc.er_analyze_s in
        let speedup = ratio fresh.er_wall_s inc.er_wall_s in
        Printf.printf "%-14s %-7d %-11.4f %-11.4f %-11.2f %-9.2f %b\n%!"
          e.Benchmarks.Suite.name
          (Quantum.Circuit.gate_count c)
          inc.er_wall_s fresh.er_wall_s work speedup identical;
        (e, inc, fresh, identical, work, speedup))
      (Benchmarks.Suite.regular ())
  in
  let largest =
    List.fold_left
      (fun acc ((e, _, _, _, _, _) as row) ->
        match acc with
        | Some ((b, _, _, _, _, _) : Benchmarks.Suite.entry * _ * _ * _ * _ * _)
          when Quantum.Circuit.gate_count b.Benchmarks.Suite.circuit
               >= Quantum.Circuit.gate_count e.Benchmarks.Suite.circuit ->
          acc
        | _ -> Some row)
      None rows
    |> Option.get
  in
  let le, _, _, _, lwork, lspeed = largest in
  Printf.printf
    "\n=> largest benchmark %s: %.1fx less analyze time, %.1fx wall speedup (target >= 3x)\n"
    le.Benchmarks.Suite.name lwork lspeed;
  let all_identical = List.for_all (fun (_, _, _, id, _, _) -> id) rows in
  Printf.printf "=> engines agree on every sweep: %b\n" all_identical;
  if not all_identical then incr structural_violations;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"caqr-bench/4\",\"suite\":[";
  List.iteri
    (fun i (e, inc, fresh, identical, work, speedup) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"benchmark\":%S,\"gates\":%d,\"incremental\":"
           e.Benchmarks.Suite.name
           (Quantum.Circuit.gate_count e.Benchmarks.Suite.circuit));
      engine_json b inc;
      Buffer.add_string b ",\"fresh\":";
      engine_json b fresh;
      Buffer.add_string b
        (Printf.sprintf
           ",\"identical_output\":%b,\"analyze_work_ratio\":%.3f,\"wall_speedup\":%.3f}"
           identical work speedup))
    rows;
  Buffer.add_string b
    (Printf.sprintf
       "],\"headline\":{\"largest_benchmark\":%S,\"analyze_work_ratio\":%.3f,\"wall_speedup\":%.3f}"
       le.Benchmarks.Suite.name lwork lspeed);
  (* caqr-bench/2: the execution-pool section (jobs sweep on the largest
     circuit, byte-identity check, speedups vs jobs=1). *)
  let par = parallel_measurements () in
  Buffer.add_string b
    (Printf.sprintf ",\"parallel\":{\"benchmark\":%S,\"cores\":%d,\"points\":["
       par.pr_benchmark par.pr_cores);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"jobs\":%d,\"compile_s\":%.6f,\"sample_s\":%.6f,\"identical\":%b}"
           p.pp_jobs p.pp_compile_s p.pp_sample_s p.pp_identical))
    par.pr_points;
  Buffer.add_string b
    (Printf.sprintf
       "],\"compile_speedup_j4\":%.3f,\"sample_speedup_j4\":%.3f}"
       par.pr_compile_speedup_j4 par.pr_sample_speedup_j4);
  (* caqr-bench/3: the cross-engine matrix (every Table-1 benchmark under
     baseline/qs/sr/cone/gidnet). *)
  let eng = engines_measurements () in
  Buffer.add_string b ",\"engines\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"benchmark\":%S,\"strategies\":[" row.eng_benchmark);
      List.iteri
        (fun j c ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"strategy\":%S,\"width\":%d,\"depth\":%d,\"duration_dt\":%d,\"swaps\":%d,\"wall_s\":%.6f}"
               c.ec_strategy c.ec_width c.ec_depth c.ec_duration c.ec_swaps
               c.ec_wall_s))
        row.eng_cells;
      Buffer.add_string b "]}")
    eng;
  Buffer.add_string b "]";
  (* caqr-bench/4: the anytime quality/time dial (QS width vs wall
     budget on the large corpus). *)
  let any = anytime_measurements () in
  Buffer.add_string b ",\"anytime\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"benchmark\":%S,\"qubits\":%d,\"points\":["
           r.ar_benchmark r.ar_qubits);
      List.iteri
        (fun j p ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"budget_ms\":%d,\"width\":%d,\"pairs\":%d,\"quality\":%S,\"wall_s\":%.6f}"
               p.ap_budget_ms p.ap_width p.ap_pairs p.ap_quality p.ap_wall_s))
        r.ar_points;
      Buffer.add_string b "]}")
    any;
  Buffer.add_string b "]}";
  Buffer.add_char b '\n';
  let oc = open_out "BENCH_caqr.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "=> wrote BENCH_caqr.json\n"

(* ---------------------------------------------------------------- serve *)

(* The compilation service (lib/serve): the same request handled cold
   (full compile, cache miss) and warm (content-addressed hit replaying
   the stored bytes). The interesting numbers are the warm latency —
   the floor a daemon can answer repeat compiles at — and the identity
   of the two result objects, which is the cache's correctness
   contract. Uses handle_line directly, so no socket noise. *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let serve_result_part line =
  let needle = "\"result\":" in
  let nh = String.length line and nn = String.length needle in
  let rec go i =
    if i + nn > nh then line
    else if String.sub line i nn = needle then String.sub line i (nh - i)
    else go (i + 1)
  in
  go 0

let serve_exp () =
  section "serve" "compilation service: cold vs warm request latency (lib/serve)";
  let t = Serve.Server.create Serve.Server.default_config in
  Printf.printf "%-14s %12s %12s %10s %10s\n" "benchmark" "cold (ms)"
    "warm (ms)" "speedup" "identical";
  let total_cold = ref 0.0 and total_warm = ref 0.0 in
  List.iter
    (fun name ->
      let req =
        Printf.sprintf {|{"op":"compile","bench":%S,"strategy":"qs-max-reuse"}|}
          name
      in
      let probe () =
        let t0 = Unix.gettimeofday () in
        let r, _ = Serve.Server.handle_line t req in
        (Unix.gettimeofday () -. t0, r)
      in
      let cold_s, cold = probe () in
      (* Warm: best of 3, the replay path has no variance worth keeping. *)
      let best = ref (probe ()) in
      for _ = 1 to 2 do
        let m = probe () in
        if fst m < fst !best then best := m
      done;
      let warm_s, warm = !best in
      let identical =
        serve_result_part cold = serve_result_part warm
        && contains_sub warm "\"cache\":\"hit\""
      in
      if not identical then incr structural_violations;
      total_cold := !total_cold +. cold_s;
      total_warm := !total_warm +. warm_s;
      Printf.printf "%-14s %12.3f %12.3f %9.0fx %10b\n" name (1000. *. cold_s)
        (1000. *. warm_s)
        (cold_s /. warm_s)
        identical)
    [ "BV_10"; "CC_10"; "Multiply_13"; "RD-32" ];
  Printf.printf "=> aggregate warm speedup: %.0fx (cold %.1f ms, warm %.2f ms)\n"
    (!total_cold /. !total_warm)
    (1000. *. !total_cold) (1000. *. !total_warm);

  (* Back-pressure: a max_inflight=1 daemon whose one slot is held must
     shed further work instantly with a structured overload rejection —
     the latency of saying no is part of the service's contract. *)
  let counter name =
    let s = Obs.Metrics.snapshot () in
    try List.assoc name s.Obs.Metrics.counters with Not_found -> 0
  in
  let t1 =
    Serve.Server.create
      { Serve.Server.default_config with Serve.Server.max_inflight = 1 }
  in
  let before = counter "serve.rejected.overload" in
  assert (Guard.Gate.try_enter (Serve.Server.gate t1));
  let n_shed = 50 in
  let t0 = Unix.gettimeofday () in
  let rejected = ref 0 in
  for i = 1 to n_shed do
    let r, _ =
      Serve.Server.handle_line t1
        (Printf.sprintf {|{"id":%d,"op":"compile","bench":"BV_10"}|} i)
    in
    if contains_sub r "\"site\":\"request.overload\"" then incr rejected
  done;
  let shed_s = Unix.gettimeofday () -. t0 in
  Guard.Gate.leave (Serve.Server.gate t1);
  let overload_metric = counter "serve.rejected.overload" - before in
  Printf.printf
    "=> back-pressure: %d/%d requests shed in %.2f ms (%.1f us/rejection), \
     serve.rejected.overload +%d\n"
    !rejected n_shed (1000. *. shed_s)
    (1_000_000. *. shed_s /. float_of_int n_shed)
    overload_metric;
  if !rejected <> n_shed || overload_metric < n_shed then
    incr structural_violations;

  (* Disk budget: warm compiles under a deliberately tiny byte budget
     must evict (serve.cache.disk.evict > 0) while staying under it. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "caqr-bench-cache-%d" (Unix.getpid ()))
  in
  let t2 =
    Serve.Server.create
      {
        Serve.Server.default_config with
        Serve.Server.cache_dir = Some dir;
        disk_budget_bytes = Some 600;
      }
  in
  let evict_before = counter "serve.cache.disk.evict" in
  List.iter
    (fun name ->
      ignore
        (Serve.Server.handle_line t2
           (Printf.sprintf {|{"op":"compile","bench":%S}|} name)))
    [ "BV_10"; "CC_10"; "Multiply_13"; "RD-32"; "XOR_5" ];
  let evictions = counter "serve.cache.disk.evict" - evict_before in
  let disk_bytes =
    try List.assoc "disk_bytes" (Serve.Cache.stats (Serve.Server.cache t2))
    with Not_found -> -1
  in
  Printf.printf
    "=> disk budget: 600 bytes forced %d eviction(s), tier now %d bytes\n"
    evictions disk_bytes;
  if evictions < 1 || disk_bytes > 600 then incr structural_violations;
  (try
     Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());

  (* Concurrency over TCP: 4 clients against a 4-handler daemon on an
     ephemeral loopback port; every response must be byte-identical to
     the sequential handler. *)
  let t3 =
    Serve.Server.create
      {
        Serve.Server.default_config with
        Serve.Server.addr = Serve.Transport.Tcp ("127.0.0.1", 0);
        handler_domains = 4;
      }
  in
  let bound = Atomic.make None in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Server.run t3 ~ready:(fun a -> Atomic.set bound (Some a)))
  in
  let rec await k =
    match Atomic.get bound with
    | Some a -> a
    | None when k > 0 ->
      Unix.sleepf 0.01;
      await (k - 1)
    | None -> failwith "bench serve: daemon never became ready"
  in
  let addr = await 500 in
  let reqs k =
    [
      Printf.sprintf {|{"id":%d,"op":"compile","bench":"BV_10"}|} (10 * k);
      Printf.sprintf {|{"id":%d,"op":"compile","bench":"XOR_5"}|}
        ((10 * k) + 1);
      Printf.sprintf
        {|{"id":%d,"op":"simulate","bench":"BV_10","shots":64,"seed":3}|}
        ((10 * k) + 2);
    ]
  in
  let t0 = Unix.gettimeofday () in
  let clients =
    List.init 4 (fun k ->
        Domain.spawn (fun () -> Serve.Client.call_retry ~addr (reqs k)))
  in
  let answers = List.map Domain.join clients in
  let wall_s = Unix.gettimeofday () -. t0 in
  ignore (Serve.Client.call ~addr [ {|{"op":"shutdown"}|} ]);
  Domain.join daemon;
  let baseline = Serve.Server.create Serve.Server.default_config in
  let mismatches = ref 0 in
  List.iteri
    (fun k responses ->
      List.iter2
        (fun req resp ->
          let seq, _ = Serve.Server.handle_line baseline req in
          if serve_result_part seq <> serve_result_part resp then
            incr mismatches)
        (reqs k) responses)
    answers;
  Printf.printf
    "=> tcp concurrency: 4 clients x 3 requests in %.1f ms over %s, %d \
     mismatch(es) vs sequential\n"
    (1000. *. wall_s)
    (Serve.Transport.addr_to_string addr)
    !mismatches;
  if !mismatches > 0 then incr structural_violations

(* ------------------------------------------------------------ wirechaos *)

(* Wire-level survival: the seeded attack campaign from lib/wirefuzz
   against an in-process daemon on each transport. Structural check:
   zero broken promises — the daemon never crashes, never hangs past
   its connection deadline, and still answers a well-formed follow-up
   byte-identically to the pre-attack reference. *)
let wirechaos_exp () =
  section "wirechaos"
    "wire-level fault injection: daemon survival under hostile bytes \
     (lib/wirefuzz)";
  List.iter
    (fun transport ->
      let t0 = Unix.gettimeofday () in
      let s = Wirefuzz.selftest ~seed:7 ~cases:25 ~transport () in
      let wall_s = Unix.gettimeofday () -. t0 in
      Printf.printf
        "=> %s: %d attack cases in %.1f ms, %d timeout rejection(s), %d \
         broken promise(s)\n"
        s.Wirefuzz.addr s.Wirefuzz.cases (1000. *. wall_s)
        s.Wirefuzz.timeouts_seen
        (List.length s.Wirefuzz.failures);
      List.iter
        (fun (f : Wirefuzz.failure) ->
          Printf.printf "   case %d (%s): %s\n" f.Wirefuzz.case_index
            (Wirefuzz.attack_name f.Wirefuzz.attack)
            f.Wirefuzz.message)
        s.Wirefuzz.failures;
      if s.Wirefuzz.failures <> [] then incr structural_violations)
    [ `Unix; `Tcp ]

(* ----------------------------------------------------------------- main *)

let experiments =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig13", fig13);
    ("fig14", fig14);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig15", fig15);
    ("fig16", fig16);
    ("esp", esp);
    ("ablation:reset", ablation_reset);
    ("ablation:search", ablation_search);
    ("ablation:matching", ablation_matching);
    ("ablation:noise", ablation_noise);
    ("verify", verify_exp);
    ("serve", serve_exp);
    ("wirechaos", wirechaos_exp);
    ("parallel", parallel_exp);
    ("engines", engines_exp);
    ("perf", perf);
    ("anytime", anytime_exp);
    ("micro", micro);
  ]

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--list" args then
    List.iter (fun (id, _) -> print_endline id) experiments
  else begin
    let only =
      let rec find = function
        | "--only" :: id :: _ -> Some id
        | _ :: rest -> find rest
        | [] -> None
      in
      find args
    in
    let fast = List.mem "--fast" args in
    let t0 = Sys.time () in
    List.iter
      (fun (id, f) ->
        let skip =
          (match only with Some o -> o <> id | None -> false)
          || (fast && id = "micro")
        in
        if not skip then f ())
      experiments;
    if !structural_violations > 0 then
      Printf.printf "\n!! %d structural violation(s) — see above\n"
        !structural_violations;
    Printf.printf "\n(total cpu: %.1f s)\n" (Sys.time () -. t0)
  end
