(* VQE for a transverse-field Ising chain — the other commutable-gate
   application family the paper cites (§1, §5: "applications with gate
   commutativity such as QAOA and VQE").

   H = -J sum_i Z_i Z_{i+1} - g sum_i X_i      (open chain)

   The hardware-efficient ansatz is Ry walls + a CX ladder; the energy is
   estimated with Sim.Observable, which measures each Pauli-term group in
   its own basis exactly like hardware does. The chain-shaped interaction
   graph then lets CaQR compile the Z-basis measurement circuit with
   qubit reuse.

   Run with: dune exec examples/vqe_ising.exe *)

let n = 6
let coupling_j = 1.0
let field_g = 0.8

module B = Quantum.Circuit.Builder
module O = Sim.Observable

let hamiltonian = O.ising_chain ~n ~j:coupling_j ~g:field_g

(* Hardware-efficient ansatz: depth-2 Ry + CX-ladder. 2n parameters. *)
let ansatz params =
  let b = B.create ~num_qubits:n ~num_clbits:n in
  for q = 0 to n - 1 do
    B.add b (Quantum.Gate.One_q (Quantum.Gate.Ry params.(q), q))
  done;
  for q = 0 to n - 2 do
    B.cx b q (q + 1)
  done;
  for q = 0 to n - 1 do
    B.add b (Quantum.Gate.One_q (Quantum.Gate.Ry params.(n + q), q))
  done;
  B.build b

let () =
  Printf.printf "VQE, transverse-field Ising chain: n=%d J=%.1f g=%.1f\n" n
    coupling_j field_g;
  Printf.printf "measurement bases needed: %d\n\n"
    (List.length (O.measurement_bases hamiltonian));

  (* Classical optimization of the 2n-parameter ansatz. *)
  let evals = ref 0 in
  let objective params =
    incr evals;
    O.expectation ~seed:(100 + (2 * !evals)) ~shots:2048
      ~prepare:(ansatz params) hamiltonian
  in
  let trace =
    Qaoa.Optimizer.cobyla_lite ~max_evals:60
      ~init:(Array.make (2 * n) 0.4)
      ~rho_start:0.5 ~rho_end:1e-3 objective
  in
  let best = trace.Qaoa.Optimizer.best_params in
  Printf.printf "best variational energy after %d evaluations: %.4f\n" !evals
    trace.Qaoa.Optimizer.best_value;
  Printf.printf "exact energy of that state (no sampling noise): %.4f\n"
    (O.expectation_exact ~prepare:(ansatz best) hamiltonian);
  Printf.printf "classical (g = 0) bound: %.4f\n"
    (-.coupling_j *. float_of_int (n - 1));

  (* Can CaQR compile the measurement circuit with reuse? The chain
     interaction graph is sparse, so it should. *)
  let measured = Quantum.Circuit.measure_all (ansatz best) in
  let device = Hardware.Device.mumbai in
  let baseline = Transpiler.Transpile.run device measured in
  let sr = Caqr.Sr_caqr.regular device measured in
  Printf.printf "\nZ-basis measurement circuit on Mumbai:\n";
  Printf.printf "  baseline: %d qubits, %d swaps\n"
    baseline.Transpiler.Transpile.stats.Transpiler.Transpile.qubits_used
    baseline.Transpiler.Transpile.stats.Transpiler.Transpile.swaps;
  Printf.printf "  SR-CaQR : %d qubits, %d swaps (%d reuses)\n"
    sr.Caqr.Sr_caqr.qubits_used sr.Caqr.Sr_caqr.swaps_added
    sr.Caqr.Sr_caqr.reuses;

  (* The reused circuit reports the same distribution (hence energy). *)
  let zc0 = Sim.Executor.run ~seed:900 ~shots:4096 measured in
  let zc1 = Sim.Executor.run ~seed:901 ~shots:4096 sr.Caqr.Sr_caqr.physical in
  Printf.printf "  Z-basis distribution drift (TVD, statistical): %.3f\n"
    (Sim.Counts.tvd zc0 zc1)
