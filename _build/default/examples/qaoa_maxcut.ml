(* QAOA max-cut with commutable-gate qubit reuse: plan reuse chains on the
   problem graph (graph coloring bound, matching scheduler), emit the
   transformed dynamic circuit, and run the hybrid optimization loop on
   both the plain and the reused circuit under device noise.

   Run with: dune exec examples/qaoa_maxcut.exe *)

let () =
  let n = 8 in
  let problem = Qaoa.Maxcut.random ~seed:19 n ~density:0.35 in
  let g = problem.Qaoa.Maxcut.graph in
  Printf.printf "Problem: %s, %d vertices, %d edges, optimum cut = %.0f\n"
    problem.Qaoa.Maxcut.name n (Galg.Graph.size g)
    (Qaoa.Maxcut.brute_force_optimum problem);
  Printf.printf "Graph-coloring qubit bound: %d\n\n" (Caqr.Commute.min_qubits g);

  (* Reuse sweep: qubits vs depth tradeoff for this instance. *)
  Printf.printf "%-8s %-8s %-10s %s\n" "qubits" "depth" "duration" "2q-gates";
  let steps = Caqr.Commute.sweep g in
  List.iter
    (fun (s : Caqr.Commute.step) ->
      Printf.printf "%-8d %-8d %-10d %d\n" s.Caqr.Commute.usage s.Caqr.Commute.depth
        s.Caqr.Commute.duration s.Caqr.Commute.two_q)
    steps;

  (* Pick the last (fewest qubits) plan and compare optimization runs. *)
  let last = List.nth steps (List.length steps - 1) in
  let device = Hardware.Device.mumbai in
  let compile circuit =
    (Transpiler.Transpile.run device circuit).Transpiler.Transpile.physical
  in
  let noisy_energy seed circuit =
    Qaoa.Maxcut.neg_expected_cut problem
      (Sim.Noise.run ~device ~seed ~shots:1024 (compile circuit))
  in
  Printf.printf "\nOptimizing (COBYLA-style, noisy device, 30 rounds each)...\n";
  let optimize name emit =
    let seed = ref 0 in
    let evaluate_params gammas betas =
      incr seed;
      noisy_energy !seed (emit gammas betas)
    in
    (* Drive the optimizer directly over (gamma, beta). *)
    let trace =
      Qaoa.Optimizer.cobyla_lite ~max_evals:30 ~init:[| -0.7; 0.9 |]
        ~rho_start:0.4 ~rho_end:1e-3
        (fun x -> evaluate_params x.(0) x.(1))
    in
    Printf.printf "%-12s best energy %.3f (cut %.3f of optimum %.0f)\n" name
      trace.Qaoa.Optimizer.best_value
      (-.trace.Qaoa.Optimizer.best_value)
      (Qaoa.Maxcut.brute_force_optimum problem);
    trace
  in
  let plain_emit gamma beta =
    Qaoa.Ansatz.circuit problem ~gammas:[| gamma |] ~betas:[| beta |]
  in
  let reused_emit gamma beta =
    Caqr.Commute.emit ~gamma ~beta last.Caqr.Commute.plan
  in
  let t_plain = optimize "plain" plain_emit in
  let t_reused =
    optimize
      (Printf.sprintf "reused(%dq)" last.Caqr.Commute.usage)
      reused_emit
  in
  Printf.printf "\nConvergence (best-so-far energy per round):\n";
  Printf.printf "%-6s %-10s %s\n" "round" "plain" "reused";
  let rec zip i a b =
    match (a, b) with
    | x :: xs, y :: ys ->
      Printf.printf "%-6d %-10.3f %.3f\n" i x y;
      zip (i + 1) xs ys
    | _ -> ()
  in
  zip 1 t_plain.Qaoa.Optimizer.history t_reused.Qaoa.Optimizer.history
