examples/quickstart.mli:
