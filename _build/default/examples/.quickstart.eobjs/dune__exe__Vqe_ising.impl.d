examples/vqe_ising.ml: Array Caqr Hardware List Printf Qaoa Quantum Sim Transpiler
