examples/fidelity_study.mli:
