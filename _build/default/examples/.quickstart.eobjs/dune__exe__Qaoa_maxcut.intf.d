examples/qaoa_maxcut.mli:
