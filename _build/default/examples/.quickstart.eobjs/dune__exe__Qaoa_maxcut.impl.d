examples/qaoa_maxcut.ml: Array Caqr Galg Hardware List Printf Qaoa Sim Transpiler
