examples/fidelity_study.ml: Array Benchmarks Caqr Float Hardware List Printf Sim Sys Transpiler
