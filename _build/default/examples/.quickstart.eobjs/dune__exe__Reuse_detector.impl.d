examples/reuse_detector.ml: Benchmarks Caqr Hardware List Printf String
