examples/vqe_ising.mli:
