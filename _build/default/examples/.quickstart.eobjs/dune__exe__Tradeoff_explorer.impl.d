examples/tradeoff_explorer.ml: Array Benchmarks Caqr Hardware List Printf Quantum Sys Transpiler
