examples/reuse_detector.mli:
