examples/bv_reuse.mli:
