examples/quickstart.ml: Benchmarks Caqr Format Hardware List Printf Quantum Sim Transpiler
