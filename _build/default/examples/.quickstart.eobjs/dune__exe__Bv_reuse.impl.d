examples/bv_reuse.ml: Array Benchmarks Caqr List Printf Quantum Sim
