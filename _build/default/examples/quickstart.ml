(* Quickstart: take a circuit, ask CaQR whether qubit reuse helps, compile
   it three ways, and check on the simulator that all versions agree.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 6-qubit Bernstein-Vazirani circuit: 5 data qubits + 1 ancilla. *)
  let circuit = Benchmarks.Bv.circuit 6 in
  let device = Hardware.Device.mumbai in
  Printf.printf "Original circuit: %d qubits, %d gates, depth %d\n"
    (Caqr.Reuse.qubit_usage circuit)
    (Quantum.Circuit.gate_count circuit)
    (Quantum.Circuit.depth circuit);

  (* 1. Is reuse even applicable? *)
  let ok, why = Caqr.Pipeline.beneficial device (Caqr.Pipeline.Regular circuit) in
  Printf.printf "Reuse beneficial? %b — %s\n\n" ok why;

  (* 2. Compile three ways. *)
  let input = Caqr.Pipeline.Regular circuit in
  List.iter
    (fun strategy ->
      let r = Caqr.Pipeline.compile device strategy input in
      Format.printf "%-14s %a@." (Caqr.Pipeline.strategy_name strategy)
        Transpiler.Transpile.pp_stats r.Caqr.Pipeline.stats)
    [ Caqr.Pipeline.Baseline; Caqr.Pipeline.Qs_max_reuse; Caqr.Pipeline.Sr ];

  (* 3. All strategies must recover the BV secret. *)
  let secret = Benchmarks.Bv.expected_output 6 in
  Printf.printf "\nExpected secret: %d\n" secret;
  List.iter
    (fun strategy ->
      let r = Caqr.Pipeline.compile device strategy input in
      let counts = Sim.Executor.run ~seed:1 ~shots:256 r.Caqr.Pipeline.physical in
      Printf.printf "%-14s measured %s (%d/256 shots correct)\n"
        (Caqr.Pipeline.strategy_name strategy)
        (match Sim.Counts.top counts with
         | Some k -> string_of_int k
         | None -> "-")
        (Sim.Counts.get counts secret))
    [ Caqr.Pipeline.Baseline; Caqr.Pipeline.Qs_max_reuse; Caqr.Pipeline.Sr ]
