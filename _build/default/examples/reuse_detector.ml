(* The paper's applicability question: "we also developed a method for
   identifying whether qubit reuse will be beneficial for a given
   application". This example sweeps circuits across the reuse spectrum —
   from the star-shaped BV (maximal reuse) to the QFT (provably none,
   its interaction graph is complete) — and prints the verdicts.

   Run with: dune exec examples/reuse_detector.exe *)

let () =
  let device = Hardware.Device.mumbai in
  let circuits =
    [
      ("BV_10 (star)", Benchmarks.Bv.circuit 10);
      ("CC_10 (star)", Benchmarks.Revlib.cc 10);
      ("W-star_8", Benchmarks.Extra.w_state_star 8);
      ("XOR_5 (star)", Benchmarks.Revlib.xor5 ());
      ("Multiply_13", Benchmarks.Revlib.multiply_13 ());
      ("System_9 (layered)", Benchmarks.Extra.ghz 2 |> fun _ -> Benchmarks.Revlib.system_9 ());
      ("Adder_3 (Cuccaro)", Benchmarks.Extra.ripple_adder 3);
      ("GHZ_8 (chain)", Benchmarks.Extra.ghz 8);
      ("QFT_6 (complete)", Benchmarks.Extra.qft 6);
    ]
  in
  Printf.printf "%-22s %-8s %-8s %-10s %s\n" "circuit" "qubits" "min" "verdict" "why";
  List.iter
    (fun (name, c) ->
      let usage = Caqr.Reuse.qubit_usage c in
      let minq = Caqr.Qs_caqr.min_qubits c in
      let yes, why = Caqr.Pipeline.beneficial device (Caqr.Pipeline.Regular c) in
      let short_why =
        if String.length why > 58 then String.sub why 0 55 ^ "..." else why
      in
      Printf.printf "%-22s %-8d %-8d %-10s %s\n" name usage minq
        (if yes then "reuse" else "no-reuse")
        short_why)
    circuits;
  Printf.printf
    "\nReading: star interaction graphs compress to 2 wires; layered\n\
     arithmetic saves some; the QFT's complete interaction graph admits\n\
     no reuse at all (Condition 1 fails for every pair).\n"
