(* Claim (c) of the paper: qubit reuse improves fidelity. This example
   compiles one benchmark under every strategy, computes the analytic
   estimated success probability (ESP) from the device calibration, and
   validates it against the success rate measured on the noisy simulator.

   Run with: dune exec examples/fidelity_study.exe [-- <benchmark>] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BV_10" in
  let entry =
    try Benchmarks.Suite.find name
    with Not_found ->
      Printf.eprintf "unknown benchmark %s (see `caqr_cli list`)\n" name;
      exit 1
  in
  let circuit = entry.Benchmarks.Suite.circuit in
  let device = Hardware.Device.mumbai in
  let input =
    match entry.Benchmarks.Suite.kind with
    | Benchmarks.Suite.Regular -> Caqr.Pipeline.Regular circuit
    | Benchmarks.Suite.Commutable g -> Caqr.Pipeline.Commutable g
  in
  (* The ideal outcome, for success-rate scoring. *)
  let ideal = Sim.Executor.distribution ~seed:1 circuit in
  let target = Sim.Counts.top ideal in
  Printf.printf "%s — ESP vs measured success rate (2048 noisy shots)\n\n"
    entry.Benchmarks.Suite.name;
  Printf.printf "%-18s %-8s %-8s %-10s %-10s %s\n" "strategy" "qubits" "swaps"
    "ESP" "success" "duration(dt)";
  List.iter
    (fun strategy ->
      let r = Caqr.Pipeline.compile device strategy input in
      let esp = Transpiler.Esp.of_circuit device r.Caqr.Pipeline.physical in
      let counts =
        Sim.Noise.run ~device ~seed:11 ~shots:2048 r.Caqr.Pipeline.physical
      in
      let success =
        match target with
        | Some k -> Sim.Counts.success_rate counts k
        | None -> Float.nan
      in
      Printf.printf "%-18s %-8d %-8d %-10.4f %-10.3f %d\n"
        (Caqr.Pipeline.strategy_name strategy)
        r.Caqr.Pipeline.stats.Transpiler.Transpile.qubits_used
        r.Caqr.Pipeline.stats.Transpiler.Transpile.swaps esp success
        r.Caqr.Pipeline.stats.Transpiler.Transpile.duration_dt)
    [
      Caqr.Pipeline.Baseline;
      Caqr.Pipeline.Qs_max_reuse;
      Caqr.Pipeline.Qs_min_depth;
      Caqr.Pipeline.Qs_best_fidelity;
      Caqr.Pipeline.Sr;
    ];
  Printf.printf
    "\nESP multiplies per-gate survival probabilities and per-qubit\n\
     decoherence over the schedule; it should rank strategies the same\n\
     way the measured success rate does.\n"
