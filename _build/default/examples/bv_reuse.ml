(* The paper's Fig. 1 walkthrough: shrink a 5-qubit Bernstein-Vazirani
   circuit to 2 qubits with measure-and-reset reuse, drawing each stage.

   Run with: dune exec examples/bv_reuse.exe *)

let banner title =
  Printf.printf "\n=== %s ===\n" title

let show name circuit =
  banner name;
  Printf.printf "qubits in use: %d, depth: %d, mid-circuit measurements: %d\n\n"
    (Caqr.Reuse.qubit_usage circuit)
    (Quantum.Circuit.depth circuit)
    (Quantum.Circuit.mid_circuit_measurements circuit);
  print_string (Quantum.Draw.to_string (fst (Quantum.Circuit.compact_qubits circuit)))

let () =
  let original = Benchmarks.Bv.circuit 5 in
  show "Fig. 1 (a): original 5-qubit BV" original;

  (* One reuse: q0 hosts q1 after a measure + conditional X. *)
  let one =
    match Caqr.Qs_caqr.reduce_once original with
    | Some (pair, c) ->
      Printf.printf "\napplied reuse pair: q%d -> q%d\n" pair.Caqr.Reuse.src
        pair.Caqr.Reuse.dst;
      c
    | None -> failwith "BV always has reuse opportunities"
  in
  show "Fig. 1 (b): one reuse (4 qubits)" one;

  (* Maximal reuse: the serial chain from the paper, down to 2 qubits. *)
  let minimal = Caqr.Qs_caqr.max_reuse original in
  show "Fig. 1 (c): maximal reuse (2 qubits)" minimal;

  (* Check every version computes the same secret. *)
  banner "verification";
  let secret = Benchmarks.Bv.expected_output 5 in
  List.iter
    (fun (name, c) ->
      let counts = Sim.Executor.run ~seed:7 ~shots:128 c in
      Printf.printf "%-10s -> secret %d measured in %d/128 shots\n" name secret
        (Sim.Counts.get counts secret))
    [ ("original", original); ("one-reuse", one); ("minimal", minimal) ];

  (* Timeline: where the reused wire spends its time. *)
  banner "ASAP timeline of the 2-qubit version (M = measure, ? = cond-X)";
  let compact_minimal = fst (Quantum.Circuit.compact_qubits minimal) in
  let schedule = Quantum.Schedule.asap compact_minimal in
  print_string (Quantum.Schedule.to_string ~width:72 ~num_qubits:2 schedule);
  let idle = Quantum.Schedule.idle_fraction schedule ~num_qubits:2 in
  Printf.printf "idle fractions: q0 %.0f%%, q1 %.0f%%\n" (100. *. idle.(0))
    (100. *. idle.(1));

  (* And export the dynamic circuit as OpenQASM 3. *)
  banner "OpenQASM 3 export of the 2-qubit version";
  print_string (Quantum.Qasm.to_string compact_minimal)
