(* Tradeoff explorer: sweep every reachable qubit count for a benchmark and
   print the logical-depth / compiled-depth / SWAP tradeoff curve — the
   interactive version of the paper's Figs. 3, 13, 14.

   Run with: dune exec examples/tradeoff_explorer.exe [-- <benchmark>]
   where <benchmark> is a Table 1 name (default: Multiply_13), e.g.
   BV_10, CC_10, System_9, QAOA10-0.3. *)

let explore_regular device (circuit : Quantum.Circuit.t) =
  Printf.printf "%-8s %-12s %-14s %-14s %-8s\n" "qubits" "log.depth"
    "compiled.depth" "duration(dt)" "swaps";
  List.iter
    (fun (s : Caqr.Qs_caqr.step) ->
      let compacted, _ = Quantum.Circuit.compact_qubits s.Caqr.Qs_caqr.circuit in
      let routed = Transpiler.Transpile.run device compacted in
      let st = routed.Transpiler.Transpile.stats in
      Printf.printf "%-8d %-12d %-14d %-14d %-8d\n" s.Caqr.Qs_caqr.usage
        s.Caqr.Qs_caqr.logical_depth st.Transpiler.Transpile.depth
        st.Transpiler.Transpile.duration_dt st.Transpiler.Transpile.swaps)
    (Caqr.Qs_caqr.sweep circuit)

let explore_commutable device g =
  Printf.printf "coloring bound: %d qubits\n" (Caqr.Commute.min_qubits g);
  Printf.printf "%-8s %-12s %-14s %-14s %-8s\n" "qubits" "log.depth"
    "compiled.depth" "duration(dt)" "swaps";
  List.iter
    (fun (s : Caqr.Commute.step) ->
      let emitted = Caqr.Commute.emit s.Caqr.Commute.plan in
      let compacted, _ = Quantum.Circuit.compact_qubits emitted in
      let routed = Transpiler.Transpile.run device compacted in
      let st = routed.Transpiler.Transpile.stats in
      Printf.printf "%-8d %-12d %-14d %-14d %-8d\n" s.Caqr.Commute.usage
        s.Caqr.Commute.depth st.Transpiler.Transpile.depth
        st.Transpiler.Transpile.duration_dt st.Transpiler.Transpile.swaps)
    (Caqr.Commute.sweep g)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "Multiply_13" in
  let entry =
    try Benchmarks.Suite.find name
    with Not_found ->
      Printf.eprintf "unknown benchmark %s; try one of:\n" name;
      List.iter
        (fun e -> Printf.eprintf "  %s\n" e.Benchmarks.Suite.name)
        (Benchmarks.Suite.table1 ());
      exit 1
  in
  let device = Hardware.Device.mumbai in
  Printf.printf "Tradeoff sweep for %s (%s)\n\n" entry.Benchmarks.Suite.name
    entry.Benchmarks.Suite.description;
  (match entry.Benchmarks.Suite.kind with
   | Benchmarks.Suite.Regular -> explore_regular device entry.Benchmarks.Suite.circuit
   | Benchmarks.Suite.Commutable g -> explore_commutable device g);
  Printf.printf
    "\nReading the table: the sweet spot (paper §4.2.1) is usually a middle\n\
     row — moderate qubit saving with the lowest compiled depth.\n"
