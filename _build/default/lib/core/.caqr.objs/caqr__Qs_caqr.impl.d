lib/core/qs_caqr.ml: List Option Quantum Reuse
