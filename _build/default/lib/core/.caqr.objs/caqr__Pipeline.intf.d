lib/core/pipeline.mli: Galg Hardware Quantum Transpiler Verify
