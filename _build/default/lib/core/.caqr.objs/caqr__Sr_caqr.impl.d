lib/core/sr_caqr.ml: Array Commute Fun Hardware Hashtbl List Option Quantum Queue
