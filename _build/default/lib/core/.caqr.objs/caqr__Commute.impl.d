lib/core/commute.ml: Array Fun Galg List Option Quantum Reuse
