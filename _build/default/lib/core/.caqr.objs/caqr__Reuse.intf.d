lib/core/reuse.mli: Quantum
