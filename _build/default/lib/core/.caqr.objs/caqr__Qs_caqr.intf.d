lib/core/qs_caqr.mli: Quantum Reuse
