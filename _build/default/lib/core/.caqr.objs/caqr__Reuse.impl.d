lib/core/reuse.ml: Array Galg Int List Option Quantum Set
