lib/core/sr_caqr.mli: Galg Hardware Quantum
