lib/core/pipeline.ml: Commute Galg List Option Printf Qs_caqr Quantum Reuse Sr_caqr Transpiler Verify
