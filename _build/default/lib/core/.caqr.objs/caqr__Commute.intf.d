lib/core/commute.mli: Galg Quantum Reuse
