(** QS-CaQR: qubit-saving qubit reuse for regular circuits (paper §3.2.1).

    Strategy: start from the original qubit count and retire one qubit per
    step by applying the valid reuse pair whose predicted critical path is
    smallest, until the user's budget is met or no valid pair remains.
    A full sweep keeps every intermediate version so callers can pick the
    maximal-reuse or minimal-depth point (Table 1) or plot the
    qubit-vs-depth tradeoff (Figs. 3, 13, 14). *)

type objective = Depth | Duration

(** One point of the reduction sweep. *)
type step = {
  usage : int;  (** active qubits after the reuses so far *)
  circuit : Quantum.Circuit.t;
  pairs : Reuse.pair list;  (** applied so far, oldest first *)
  logical_depth : int;
  logical_duration : int;
}

(** [reduce_once ?objective circuit] applies the best single reuse, or
    [None] when no valid pair exists. *)
val reduce_once :
  ?objective:objective -> Quantum.Circuit.t -> (Reuse.pair * Quantum.Circuit.t) option

(** [sweep ?objective ?stop_at circuit] returns the full reduction
    trajectory, starting with the untouched circuit and ending at
    [stop_at] (default: as low as possible). *)
val sweep : ?objective:objective -> ?stop_at:int -> Quantum.Circuit.t -> step list

(** [search ?objective ?budget ~target circuit] finds a reuse sequence
    reaching [target] qubits, trying candidates best-score-first with
    budgeted DFS backtracking — greedy alone can trap itself (two parallel
    chains interleaved on a shared partner can never merge later). Returns
    the transformed circuit and the applied pairs.
    [order] restricts the candidate ordering: [`Score] is pure greedy on
    the objective, [`Chain] pairs the earliest-finishing wire with the
    earliest-starting qubit (the Fig. 1 serial construction), [`Both]
    (default) falls back from the first to the second — exposed
    separately so the ablation bench can compare them. *)
val search :
  ?objective:objective ->
  ?budget:int ->
  ?order:[ `Score | `Chain | `Both ] ->
  target:int ->
  Quantum.Circuit.t ->
  (Quantum.Circuit.t * Reuse.pair list) option

(** [reduce_to ?objective ~target circuit] answers the paper's user query:
    "can this circuit run on [target] qubits?" — [Some circuit'] or [None]. *)
val reduce_to :
  ?objective:objective -> target:int -> Quantum.Circuit.t -> Quantum.Circuit.t option

(** Fewest qubits reachable (greedy tightened by backtracking search). *)
val min_qubits : ?objective:objective -> Quantum.Circuit.t -> int

(** The maximal-reuse version of the circuit ([min_qubits] wires). *)
val max_reuse : ?objective:objective -> Quantum.Circuit.t -> Quantum.Circuit.t

(** Is there any reuse opportunity at all? (The paper's applicability
    test: tools report "no benefit" when this is [None].) *)
val opportunity : Quantum.Circuit.t -> Reuse.pair option
