(** The user-facing CaQR entry points: pick a strategy, get a compiled
    circuit plus the metrics the paper's evaluation reports. *)

(** Input classification: regular circuits carry their dependence in the
    gate order; commutable instances carry the problem graph whose edges
    are freely reorderable phase gates (QAOA). *)
type input =
  | Regular of Quantum.Circuit.t
  | Commutable of Galg.Graph.t

type strategy =
  | Baseline  (** no reuse: layout + SABRE routing ("Qiskit O3" stand-in) *)
  | Qs_max_reuse  (** QS-CaQR driven to the fewest qubits *)
  | Qs_min_depth  (** QS-CaQR version with the best compiled depth *)
  | Qs_best_fidelity
      (** QS-CaQR version maximizing estimated success probability
          (the paper's fidelity-tuned objective) *)
  | Qs_target of int  (** QS-CaQR at a user qubit budget *)
  | Sr  (** SR-CaQR lazy mapping *)

type report = {
  strategy : strategy;
  logical : Quantum.Circuit.t;  (** after reuse transformation *)
  physical : Quantum.Circuit.t;
  stats : Transpiler.Transpile.stats;
  reuse_pairs : int;
  verification : Verify.verdict option;
      (** translation-validation verdict, present when [compile] was
          asked to verify *)
}

(** [compile ?verify ?seed device strategy input]. [Qs_target] raises
    [Failure] when the budget is unreachable.

    With [?verify], the compiled artifact is independently validated at
    the requested {!Verify.level} (structural reuse conditions, device
    legality, and — at semantic levels — exact or probe-based
    distribution equivalence against the untransformed input); the
    verdict lands in [report.verification]. [seed] (default 1) drives the
    probe checker so verification is reproducible. *)
val compile :
  ?verify:Verify.level ->
  ?seed:int ->
  Hardware.Device.t ->
  strategy ->
  input ->
  report

(** The paper's applicability test: does reuse help this input at all?
    Returns a human-readable verdict along with the boolean. *)
val beneficial : Hardware.Device.t -> input -> bool * string

val strategy_name : strategy -> string
