(** SR-CaQR: SWAP-reduction-first compilation (paper §3.3).

    Unlike QS-CaQR (transform first, then map), SR-CaQR compiles layer by
    layer and maps logical qubits lazily: a gate off the critical path
    whose qubits are unmapped is delayed, so when its qubit finally must
    be placed the mapper can choose among fresh physical qubits *and*
    physical qubits already retired by earlier logical qubits (qubit
    reuse as a side effect). Placement minimizes distance to the mapped
    partner with readout/CNOT-error tie-breaks; non-adjacent mapped pairs
    get heuristic SWAPs. *)

type result = {
  physical : Quantum.Circuit.t;
  swaps_added : int;
  qubits_used : int;  (** distinct physical qubits touched *)
  reuses : int;  (** logical qubits placed onto reclaimed physical qubits *)
}

(** Compile a regular circuit onto a device. *)
val regular : Hardware.Device.t -> Quantum.Circuit.t -> result

(** Compile a commutable (QAOA) instance: pick the reuse sweet spot with
    QS-CaQR's commutable path ([Commute.sweep], minimal-depth point up to
    [max_reuse] merges), emit the partially-ordered circuit, then run the
    same lazy mapper (paper §3.3.2). *)
val commutable :
  ?gamma:float -> ?beta:float -> Hardware.Device.t -> Galg.Graph.t -> result
