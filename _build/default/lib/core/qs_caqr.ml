type objective = Depth | Duration

type step = {
  usage : int;
  circuit : Quantum.Circuit.t;
  pairs : Reuse.pair list;
  logical_depth : int;
  logical_duration : int;
}

let score objective analysis pair =
  match objective with
  | Depth -> Reuse.predict_depth analysis pair
  | Duration -> Reuse.predict_duration analysis pair

let best_pair objective circuit =
  let analysis = Reuse.analyze circuit in
  let candidates = Reuse.valid_pairs analysis in
  List.fold_left
    (fun best pair ->
      let s = score objective analysis pair in
      (* Tie-break on the other metric to keep choices deterministic and
         sensible. *)
      let s2 =
        match objective with
        | Depth -> Reuse.predict_duration analysis pair
        | Duration -> Reuse.predict_depth analysis pair
      in
      match best with
      | Some (_, s', s2') when (s', s2') <= (s, s2) -> best
      | _ -> Some (pair, s, s2))
    None candidates
  |> Option.map (fun (pair, _, _) -> pair)

let reduce_once ?(objective = Depth) circuit =
  match best_pair objective circuit with
  | None -> None
  | Some pair -> Some (pair, Reuse.apply circuit pair)

let model = Quantum.Duration.default

let make_step circuit pairs =
  {
    usage = Reuse.qubit_usage circuit;
    circuit;
    pairs;
    logical_depth = Quantum.Circuit.depth circuit;
    logical_duration = Quantum.Circuit.duration model circuit;
  }

(* Greedy-by-score reduction can paint itself into a corner (e.g. two
   parallel reuse chains whose gates interleave on a shared partner can
   never merge afterwards), so budget-bounded DFS backtracking is used
   when a hard qubit target must be reached. Candidates are still tried
   best-score-first, so the first solution found is the greedy one
   whenever greedy succeeds. *)
(* Candidate orderings for the backtracking search. [`Score] is the
   greedy objective order; [`Chain] reuses the earliest-finishing wire
   first, which builds serial chains (the paper's Fig. 1 construction)
   and keeps merge options open for deep reductions. *)
let ordered_candidates order objective analysis =
  let key p =
    match order with
    | `Score -> (score objective analysis p, 0)
    | `Chain ->
      (Reuse.src_finish_depth analysis p, Reuse.dst_start_depth analysis p)
  in
  List.sort
    (fun a b -> compare (key a) (key b))
    (Reuse.valid_pairs analysis)

let search_with order objective budget target circuit =
  let nodes = ref 0 in
  let rec go circuit pairs =
    if Reuse.qubit_usage circuit <= target then Some (circuit, List.rev pairs)
    else if !nodes > budget then None
    else begin
      let analysis = Reuse.analyze circuit in
      let rec attempt = function
        | [] -> None
        | p :: rest ->
          incr nodes;
          if !nodes > budget then None
          else begin
            match go (Reuse.apply circuit p) (p :: pairs) with
            | Some r -> Some r
            | None -> attempt rest
          end
      in
      attempt (ordered_candidates order objective analysis)
    end
  in
  go circuit []

let search ?(objective = Depth) ?(budget = 400) ?(order = `Both) ~target circuit
    =
  match order with
  | `Score -> search_with `Score objective budget target circuit
  | `Chain -> search_with `Chain objective budget target circuit
  | `Both -> (
    match search_with `Score objective budget target circuit with
    | Some r -> Some r
    | None -> search_with `Chain objective budget target circuit)

(* The tradeoff sweep re-searches from the original circuit for every
   qubit limit (the paper: "for each application, we tried different qubit
   limit numbers, and generate different compiled circuits"). A fresh
   search per target avoids greedy dead ends polluting deeper points:
   reaching k - 1 always passes through some k-qubit circuit, so the sweep
   stops at the first unreachable target. *)
let sweep ?(objective = Depth) ?(stop_at = 1) circuit =
  let base = make_step circuit [] in
  let rec go target acc =
    if target < stop_at then List.rev acc
    else
      match search ~objective ~target circuit with
      | Some (c, pairs) ->
        let step = make_step c pairs in
        go (step.usage - 1) (step :: acc)
      | None -> List.rev acc
  in
  go (base.usage - 1) [ base ]

let reduce_to ?(objective = Depth) ~target circuit =
  Option.map fst (search ~objective ~target circuit)

let min_qubits ?(objective = Depth) circuit =
  match List.rev (sweep ~objective circuit) with
  | last :: _ -> last.usage
  | [] -> Reuse.qubit_usage circuit

let max_reuse ?(objective = Depth) circuit =
  match reduce_to ~objective ~target:(min_qubits ~objective circuit) circuit with
  | Some c -> c
  | None -> circuit

let opportunity circuit =
  let analysis = Reuse.analyze circuit in
  match Reuse.valid_pairs analysis with
  | [] -> None
  | p :: _ -> Some p
