let min_qubits g = (Galg.Coloring.best g).Galg.Coloring.count

type plan = {
  g : Galg.Graph.t;
  pairs_rev : Reuse.pair list;
  next : int array;  (* chain successor, -1 at tail *)
  prev : int array;  (* chain predecessor, -1 at head *)
}

let make g =
  let n = Galg.Graph.order g in
  { g; pairs_rev = []; next = Array.make n (-1); prev = Array.make n (-1) }

let graph p = p.g
let pairs p = List.rev p.pairs_rev

let usage p =
  let c = ref 0 in
  Array.iter (fun pr -> if pr < 0 then incr c) p.prev;
  !c

let chain p head =
  let rec go q acc = if q < 0 then List.rev acc else go p.next.(q) (q :: acc) in
  go head []

let wires p =
  let acc = ref [] in
  for q = Galg.Graph.order p.g - 1 downto 0 do
    if p.prev.(q) < 0 then acc := q :: !acc
  done;
  !acc

let rec head_of p q = if p.prev.(q) < 0 then q else head_of p p.prev.(q)

(* Pair digraph acyclicity (paper Condition 2 for commuting circuits):
   pair p1 = (s1, d1) must precede p2 = (s2, d2) when d1 = s2 or d1
   interacts with s2 — then a gate carries the dependence across. A cycle
   means no gate order satisfies all reuses. *)
let pairs_acyclic g pair_list =
  let pairs = Array.of_list pair_list in
  let np = Array.length pairs in
  let links d s = d = s || Galg.Graph.has_edge g d s in
  let succ i =
    let d = pairs.(i).Reuse.dst in
    let acc = ref [] in
    for j = 0 to np - 1 do
      if j <> i && links d pairs.(j).Reuse.src then acc := j :: !acc
    done;
    !acc
  in
  (* Standard three-color DFS. *)
  let color = Array.make np 0 in
  let rec dfs i =
    if color.(i) = 1 then false
    else if color.(i) = 2 then true
    else begin
      color.(i) <- 1;
      let ok = List.for_all dfs (succ i) in
      color.(i) <- 2;
      ok
    end
  in
  let ok = ref true in
  for i = 0 to np - 1 do
    if !ok && color.(i) = 0 then ok := dfs i
  done;
  !ok

let independent p members_a members_b =
  not
    (List.exists
       (fun a -> List.exists (fun b -> Galg.Graph.has_edge p.g a b) members_b)
       members_a)

let valid_merge p ~src ~dst =
  src >= 0 && dst >= 0
  && src < Galg.Graph.order p.g
  && dst < Galg.Graph.order p.g
  && p.next.(src) < 0 (* src is a tail *)
  && p.prev.(dst) < 0 (* dst is a head *)
  && head_of p src <> dst
  &&
  let a = chain p (head_of p src) and b = chain p dst in
  independent p a b
  && pairs_acyclic p.g ({ Reuse.src; dst } :: p.pairs_rev)

let merge p ~src ~dst =
  if not (valid_merge p ~src ~dst) then invalid_arg "Commute.merge: invalid pair";
  let next = Array.copy p.next and prev = Array.copy p.prev in
  next.(src) <- dst;
  prev.(dst) <- src;
  { p with pairs_rev = { Reuse.src; dst } :: p.pairs_rev; next; prev }

(* ---- The 3-step matching scheduler (paper §3.2.2) ---- *)

(* Runs the round-by-round schedule, invoking [on_round] with each round's
   matched edges and [on_finish] whenever a vertex completes its gates.
   Returns the number of rounds. *)
let run_schedule ?(exact = false) p ~on_round ~on_finish =
  let g = p.g in
  let n = Galg.Graph.order g in
  let remaining = Galg.Graph.copy g in
  let rem_deg = Array.init n (Galg.Graph.degree g) in
  let src_of = Array.make n (-1) in
  let has_dependent = Array.make n false in
  List.iter
    (fun { Reuse.src; dst } ->
      src_of.(dst) <- src;
      has_dependent.(src) <- true)
    p.pairs_rev;
  (* Vertices with no gates at all finish immediately. *)
  for q = 0 to n - 1 do
    if rem_deg.(q) = 0 then on_finish q
  done;
  let blocked q =
    let s = src_of.(q) in
    s >= 0 && rem_deg.(s) > 0
  in
  let rounds = ref 0 in
  let stuck = ref 0 in
  while Galg.Graph.size remaining > 0 && !stuck < 3 do
    (* Step 2: drop gates whose reuse dependence is unresolved. *)
    let eligible = Galg.Graph.create n in
    List.iter
      (fun (u, v) ->
        if (not (blocked u)) && not (blocked v) then Galg.Graph.add_edge eligible u v)
      (Galg.Graph.edges remaining);
    (* Step 3: maximum-weight matching; edges touching a pending reuse
       source carry priority weight, and among those the longest queues
       go first (LPT) — the heaviest wire bounds the makespan, so letting
       a hub idle for a round directly stretches the circuit. *)
    let priority u v = has_dependent.(u) || has_dependent.(v) in
    let mate =
      if exact then Galg.Matching.priority_matching ~priority eligible
      else
        Galg.Matching.greedy
          ~weight:(fun u v ->
            (if priority u v then 10000. else 0.)
            +. float_of_int (rem_deg.(u) + rem_deg.(v)))
          eligible
    in
    let matched = Galg.Matching.edges mate in
    if matched = [] then incr stuck
    else begin
      stuck := 0;
      incr rounds;
      on_round matched;
      List.iter
        (fun (u, v) ->
          Galg.Graph.remove_edge remaining u v;
          rem_deg.(u) <- rem_deg.(u) - 1;
          rem_deg.(v) <- rem_deg.(v) - 1;
          if rem_deg.(u) = 0 then on_finish u;
          if rem_deg.(v) = 0 then on_finish v)
        matched
    end
  done;
  if Galg.Graph.size remaining > 0 then
    failwith "Commute.run_schedule: stuck (invalid reuse plan)";
  !rounds

let schedule_rounds ?exact p =
  let exact =
    match exact with Some e -> e | None -> Galg.Graph.order p.g <= 32
  in
  run_schedule ~exact p ~on_round:(fun _ -> ()) ~on_finish:(fun _ -> ())

let emit ?(gamma = 0.7) ?(beta = 0.3) p =
  let n = Galg.Graph.order p.g in
  let b = Quantum.Circuit.Builder.create ~num_qubits:n ~num_clbits:n in
  let started = Array.make n false in
  let start q =
    if not started.(q) then begin
      started.(q) <- true;
      Quantum.Circuit.Builder.h b q
    end
  in
  let finish q =
    start q;
    Quantum.Circuit.Builder.rx b (2. *. beta) q;
    Quantum.Circuit.Builder.measure b q q;
    (* Hand the wire to the next chain occupant with a conditional reset
       driven by the measurement just taken (Fig. 2 (b)). *)
    if p.next.(q) >= 0 then Quantum.Circuit.Builder.if_x b q q
  in
  let on_round matched =
    List.iter
      (fun (u, v) ->
        start u;
        start v;
        Quantum.Circuit.Builder.rzz b gamma u v)
      matched
  in
  let _rounds = run_schedule ~exact:false p ~on_round ~on_finish:finish in
  let circuit = Quantum.Circuit.Builder.build b in
  (* Collapse each chain onto its head wire. *)
  let wire = Array.init n (fun q -> head_of p q) in
  Quantum.Circuit.map_qubits ~num_qubits:n (fun q -> wire.(q)) circuit

(* ---- Greedy reduction ---- *)

let candidates p =
  let heads = wires p in
  let tail_of h = List.nth (chain p h) (List.length (chain p h) - 1) in
  List.concat_map
    (fun ha ->
      let s = tail_of ha in
      List.filter_map
        (fun hb -> if hb <> ha then Some (s, hb) else None)
        heads)
    heads

(* Gate load a wire must run serially: the degrees of every hosted vertex
   plus the per-handoff reset overhead. The schedule can never beat the
   max wire load, so merges are ranked by the load of the merged wire —
   this builds many balanced chains instead of one ever-growing chain. *)
let chain_load p head =
  List.fold_left
    (fun acc v -> acc + Galg.Graph.degree p.g v + 2)
    0 (chain p head)

let merge_cost p (s, d_head) = chain_load p (head_of p s) + chain_load p d_head

let reduce_once ?(mode = `Auto) p =
  let mode =
    match mode with
    | `Auto -> if Galg.Graph.order p.g <= 30 then `Exact else `Heuristic
    | m -> m
  in
  let cands =
    List.sort (fun a b -> compare (merge_cost p a) (merge_cost p b)) (candidates p)
  in
  match mode with
  | `Heuristic | `Auto ->
    (* First valid candidate in ascending combined-degree order: low-degree
       qubits are the ones reusable without hurting depth (§4.2.2). *)
    let rec first = function
      | [] -> None
      | (src, dst) :: rest ->
        if valid_merge p ~src ~dst then Some (merge p ~src ~dst) else first rest
    in
    first cands
  | `Exact ->
    (* Evaluate up to 48 valid candidates by scheduler rounds. *)
    let rec eval best budget = function
      | [] -> best
      | _ when budget = 0 -> best
      | (src, dst) :: rest ->
        if valid_merge p ~src ~dst then begin
          let p' = merge p ~src ~dst in
          let r = schedule_rounds p' in
          match best with
          | Some (_, r') when r' <= r -> eval best (budget - 1) rest
          | _ -> eval (Some (p', r)) (budget - 1) rest
        end
        else eval best budget rest
    in
    eval None 48 cands |> Option.map fst

(* ---- Capacity-constrained planning ----

   Incremental tail/head merging freezes chain orders too early: on dense
   hub cores every later merge closes a dependence cycle long before the
   coloring bound. Planning for a hard wire budget instead runs a
   list scheduler with [budget] wires as a resource: a qubit is bound to
   a wire when its first gate is scheduled and the wire is recycled when
   it finishes, so the resulting chains are feasible by construction
   (their order IS a valid schedule). This matches the paper's §2.2 tool:
   "generate transformed circuit ... for any qubit reuse count". *)

let plan_of_wires g wires =
  let n = Galg.Graph.order g in
  let next = Array.make n (-1) and prev = Array.make n (-1) in
  let pairs_rev = ref [] in
  List.iter
    (fun hosts ->
      let rec link = function
        | s :: (d :: _ as rest) ->
          next.(s) <- d;
          prev.(d) <- s;
          pairs_rev := { Reuse.src = s; dst = d } :: !pairs_rev;
          link rest
        | _ -> ()
      in
      link hosts)
    wires;
  { g; pairs_rev = !pairs_rev; next; prev }

(* Wire demand is a vertex-separation problem: once an activation order
   sigma is fixed, qubit [q] must hold a wire from its activation until
   its last neighbor activates (their shared gate needs both alive), so
   the wires needed by sigma are exactly its separation width and the
   optimum over orders is pathwidth + 1. Greedy width-minimizing ordering
   with a budget cap replaces round-based scheduling: feasibility is a
   simple width check, so there is nothing to deadlock. *)
let order_for_budget g ~budget =
  let n = Galg.Graph.order g in
  let opened = Array.make n false in
  (* Unopened-neighbor count: a vertex closes when this hits 0. *)
  let pending = Array.init n (Galg.Graph.degree g) in
  let open_now = Array.make n false in
  let width = ref 0 and max_width = ref 0 in
  let sigma = ref [] in
  let closes_after v =
    (* How many currently-open vertices (v included) close once v opens? *)
    let closed = ref 0 in
    if pending.(v) = 0 then incr closed;
    List.iter
      (fun w -> if open_now.(w) && pending.(w) = 1 then incr closed)
      (Galg.Graph.neighbors g v);
    !closed
  in
  let edges_to_open v =
    List.length (List.filter (fun w -> open_now.(w)) (Galg.Graph.neighbors g v))
  in
  let do_open v =
    opened.(v) <- true;
    open_now.(v) <- true;
    incr width;
    sigma := v :: !sigma;
    (* Peak overlap is measured before the closures triggered by this
       opening: a vertex closing right now still holds its wire at this
       instant, and so does a vertex whose whole life is this instant. *)
    if !width > !max_width then max_width := !width;
    List.iter
      (fun w ->
        pending.(w) <- pending.(w) - 1;
        if open_now.(w) && pending.(w) = 0 then begin
          open_now.(w) <- false;
          decr width
        end)
      (Galg.Graph.neighbors g v);
    if pending.(v) = 0 then begin
      open_now.(v) <- false;
      decr width
    end
  in
  for _ = 1 to n do
    (* Next vertex: stay within budget if possible; keep the open set as
       large as the budget allows (a big open set is what gives the
       matching scheduler parallel work, hence depth); tie-break toward
       vertices with more runnable gates. When nothing fits the budget,
       take the width-minimizing choice and let the final check fail. *)
    let best = ref (-1) in
    let best_key = ref (max_int, max_int, max_int) in
    for v = 0 to n - 1 do
      if not opened.(v) then begin
        let closes = closes_after v in
        let new_width = !width + 1 - closes in
        (* A handoff instant needs both wires live, so the peak must stay
           within budget AND the settled width must leave one wire of
           headroom for the next opening. *)
        let over =
          if !width + 1 > budget || new_width > budget - 1 then 1 else 0
        in
        let key =
          if over = 1 then (1, new_width, -edges_to_open v)
          else (0, closes, -edges_to_open v)
        in
        if key < !best_key then begin
          best_key := key;
          best := v
        end
      end
    done;
    do_open !best
  done;
  (List.rev !sigma, !max_width)

let plan_with_budget g ~budget =
  if budget < 1 then None
  else begin
    let n = Galg.Graph.order g in
    let sigma, width = order_for_budget g ~budget in
    if width > budget || n = 0 then None
    else begin
      (* Replay sigma, binding wires first-fit on open and recycling on
         close; chain = host sequence per wire. *)
      let rank = Array.make n 0 in
      List.iteri (fun i v -> rank.(v) <- i) sigma;
      let close_rank =
        Array.init n (fun v ->
            List.fold_left
              (fun acc w -> max acc rank.(w))
              rank.(v) (Galg.Graph.neighbors g v))
      in
      let hosts = Array.make (max 1 budget) [] in
      let wire_free_at = Array.make (max 1 budget) (-1) in
      let wire_load = Array.make (max 1 budget) 0 in
      List.iter
        (fun v ->
          (* Among wires free before v opens, pick the least loaded: a
             wire's hosted gates run serially, so balance decides depth. *)
          let best = ref (-1) in
          for w = 0 to budget - 1 do
            if
              wire_free_at.(w) < rank.(v)
              && (!best < 0 || wire_load.(w) < wire_load.(!best))
            then best := w
          done;
          if !best < 0 then invalid_arg "plan_with_budget: width check lied";
          let w = !best in
          hosts.(w) <- v :: hosts.(w);
          wire_load.(w) <- wire_load.(w) + Galg.Graph.degree g v + 4;
          wire_free_at.(w) <- close_rank.(v))
        sigma;
      let wires =
        List.filter (fun l -> l <> []) (Array.to_list (Array.map List.rev hosts))
      in
      Some (plan_of_wires g wires)
    end
  end

type step = {
  usage : int;
  plan : plan;
  depth : int;
  duration : int;
  two_q : int;
}

let model = Quantum.Duration.default

let make_step ?gamma ?beta plan =
  let c = emit ?gamma ?beta plan in
  {
    usage = usage plan;
    plan;
    depth = Quantum.Circuit.depth c;
    duration = Quantum.Circuit.duration model c;
    two_q = Quantum.Circuit.two_q_count c;
  }

(* One plan per qubit limit, exactly the paper's per-limit query. Two
   generators compete at every limit and the shallower emitted circuit
   wins: the incremental pair-merge path (the paper's §3.2.2 greedy,
   strong for gentle savings because it picks the least-harmful pair)
   and the budget-constrained separation planner (strong for deep
   savings, where incremental merging dead-ends on frozen chain
   orders). Duplicate usages are dropped. *)
let sweep ?(mode = `Auto) ?(stop_at = 1) ?gamma ?beta g =
  let base = make_step ?gamma ?beta (make g) in
  (* Merge trajectory, indexed by usage. *)
  let merge_path =
    let rec go plan acc =
      match reduce_once ~mode plan with
      | Some plan' -> go plan' ((usage plan', plan') :: acc)
      | None -> acc
    in
    go (make g) []
  in
  let merge_at k =
    (* Deepest merge-path plan with usage <= k (list is deepest-first). *)
    List.find_opt (fun (u, _) -> u <= k) merge_path |> Option.map snd
  in
  let rec go budget last_usage acc =
    if budget < stop_at || budget < 1 then List.rev acc
    else begin
      let candidates =
        List.filter_map Fun.id [ plan_with_budget g ~budget; merge_at budget ]
      in
      let steps = List.map (make_step ?gamma ?beta) candidates in
      let best =
        List.fold_left
          (fun best s ->
            match best with
            | Some b when (b.depth, b.usage) <= (s.depth, s.usage) -> best
            | _ -> Some s)
          None steps
      in
      match best with
      | None -> List.rev acc
      | Some step ->
        if step.usage < last_usage then
          go (min (budget - 1) (step.usage - 1)) step.usage (step :: acc)
        else go (budget - 1) last_usage acc
    end
  in
  go (base.usage - 1) base.usage [ base ]
