type pair = { src : int; dst : int }

type analysis = {
  circuit : Quantum.Circuit.t;
  dag : Quantum.Dag.t;
  reach : Quantum.Reachability.t;
  inter : Galg.Graph.t;
  active : bool array;
  (* earliest finish / longest tail per gate, in unit depth and in dt *)
  ef_depth : int array;
  tail_depth : int array;
  ef_dur : int array;
  tail_dur : int array;
  cp_depth : int;
  cp_dur : int;
  model : Quantum.Duration.t;
}

let forward_times dag weight =
  let n = Quantum.Dag.num_nodes dag in
  let finish = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let start =
      List.fold_left (fun acc p -> max acc finish.(p)) 0 (Quantum.Dag.preds dag i)
    in
    finish.(i) <- start + weight i;
    if finish.(i) > !total then total := finish.(i)
  done;
  (finish, !total)

let backward_times dag weight =
  let n = Quantum.Dag.num_nodes dag in
  (* tail.(i): longest weighted path starting at (and including) gate i *)
  let tail = Array.make n 0 in
  for i = n - 1 downto 0 do
    let after =
      List.fold_left (fun acc s -> max acc tail.(s)) 0 (Quantum.Dag.succs dag i)
    in
    tail.(i) <- after + weight i
  done;
  tail

let analyze circuit =
  let dag = Quantum.Dag.build circuit in
  let model = Quantum.Duration.default in
  let weight_depth i =
    if Quantum.Gate.is_barrier circuit.Quantum.Circuit.gates.(i).Quantum.Gate.kind
    then 0
    else 1
  in
  let weight_dur i =
    Quantum.Duration.of_kind model circuit.Quantum.Circuit.gates.(i).Quantum.Gate.kind
  in
  let ef_depth, cp_depth = forward_times dag weight_depth in
  let ef_dur, cp_dur = forward_times dag weight_dur in
  let tail_depth = backward_times dag weight_depth in
  let tail_dur = backward_times dag weight_dur in
  let active = Array.make circuit.Quantum.Circuit.num_qubits false in
  List.iter (fun q -> active.(q) <- true) (Quantum.Circuit.active_qubits circuit);
  {
    circuit;
    dag;
    reach = Quantum.Reachability.build dag;
    inter = Quantum.Circuit.interaction_graph circuit;
    active;
    ef_depth;
    tail_depth;
    ef_dur;
    tail_dur;
    cp_depth;
    cp_dur;
    model;
  }

let condition1 a { src; dst } = not (Galg.Graph.has_edge a.inter src dst)

let condition2 a { src; dst } =
  (* No gate on dst may reach a gate on src. *)
  not
    (Quantum.Reachability.any_path a.reach
       (Quantum.Dag.gates_on_qubit a.dag dst)
       (Quantum.Dag.gates_on_qubit a.dag src))

let valid a ({ src; dst } as p) =
  src <> dst
  && src >= 0
  && dst >= 0
  && src < Array.length a.active
  && dst < Array.length a.active
  && a.active.(src)
  && a.active.(dst)
  && condition1 a p
  && condition2 a p

let valid_pairs a =
  let k = Array.length a.active in
  let acc = ref [] in
  for src = k - 1 downto 0 do
    for dst = k - 1 downto 0 do
      let p = { src; dst } in
      if valid a p then acc := p :: !acc
    done
  done;
  !acc

(* Does the wire already end in a measurement? Then the reset is a single
   conditional X driven by that clbit; otherwise a fresh measure + X pair
   is spliced in. *)
let src_ends_measured a src =
  match List.rev (Quantum.Dag.gates_on_qubit a.dag src) with
  | last :: _ ->
    (match a.circuit.Quantum.Circuit.gates.(last).Quantum.Gate.kind with
     | Quantum.Gate.Measure _ -> true
     | _ -> false)
  | [] -> false

let predict ~ef ~tail ~cp ~reset_cost a { src; dst } =
  let s_gates = Quantum.Dag.gates_on_qubit a.dag src in
  let d_gates = Quantum.Dag.gates_on_qubit a.dag dst in
  let max_ef = List.fold_left (fun acc g -> max acc ef.(g)) 0 s_gates in
  let max_tail = List.fold_left (fun acc g -> max acc tail.(g)) 0 d_gates in
  max cp (max_ef + reset_cost + max_tail)

let src_finish_depth a { src; dst = _ } =
  List.fold_left
    (fun acc g -> max acc a.ef_depth.(g))
    0
    (Quantum.Dag.gates_on_qubit a.dag src)

let dst_start_depth a { src = _; dst } =
  match Quantum.Dag.gates_on_qubit a.dag dst with
  | [] -> 0
  | gates -> List.fold_left (fun acc g -> min acc a.ef_depth.(g)) max_int gates

let predict_depth a p =
  (* A measured wire only needs the conditional X (1 layer); otherwise the
     spliced measure + conditional X costs 2. *)
  let reset_cost = if src_ends_measured a p.src then 1 else 2 in
  predict ~ef:a.ef_depth ~tail:a.tail_depth ~cp:a.cp_depth ~reset_cost a p

let predict_duration ?model a p =
  let model = Option.value ~default:a.model model in
  let reset_cost =
    if src_ends_measured a p.src then model.Quantum.Duration.if_x
    else Quantum.Duration.measure_cond_x model
  in
  predict ~ef:a.ef_dur ~tail:a.tail_dur ~cp:a.cp_dur ~reset_cost a p

(* Kahn topological emission with min-gate-id priority, honoring the extra
   [src gates -> reset node -> dst gates] constraints. *)
let apply (circuit : Quantum.Circuit.t) ({ src; dst } as p) =
  let a = analyze circuit in
  if not (valid a p) then invalid_arg "Reuse.apply: invalid pair";
  let n = Quantum.Dag.num_nodes a.dag in
  let dummy = n in
  let s_gates = Quantum.Dag.gates_on_qubit a.dag src in
  let d_gates = Quantum.Dag.gates_on_qubit a.dag dst in
  (* Does src already end in a measurement? Then its clbit drives the
     conditional reset and no new measure (or clbit) is needed. *)
  let last_src = List.fold_left max (-1) s_gates in
  let existing_clbit =
    match circuit.Quantum.Circuit.gates.(last_src).Quantum.Gate.kind with
    | Quantum.Gate.Measure (_, c) -> Some c
    | _ -> None
  in
  let num_clbits =
    match existing_clbit with
    | Some _ -> circuit.Quantum.Circuit.num_clbits
    | None -> circuit.Quantum.Circuit.num_clbits + 1
  in
  let reset_clbit =
    match existing_clbit with
    | Some c -> c
    | None -> circuit.Quantum.Circuit.num_clbits
  in
  (* Successor lists including the dummy node. *)
  let succs = Array.make (n + 1) [] in
  let indeg = Array.make (n + 1) 0 in
  let add_edge u v =
    succs.(u) <- v :: succs.(u);
    indeg.(v) <- indeg.(v) + 1
  in
  for i = 0 to n - 1 do
    List.iter (fun j -> add_edge i j) (Quantum.Dag.succs a.dag i)
  done;
  List.iter (fun g -> add_edge g dummy) s_gates;
  List.iter (fun g -> add_edge dummy g) d_gates;
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  for i = 0 to n do
    if indeg.(i) = 0 then ready := Iset.add i !ready
  done;
  let rename q = if q = dst then src else q in
  let rev_kinds = ref [] in
  let emitted = ref 0 in
  while not (Iset.is_empty !ready) do
    let i = Iset.min_elt !ready in
    ready := Iset.remove i !ready;
    incr emitted;
    if i = dummy then begin
      (match existing_clbit with
       | Some _ -> ()
       | None ->
         rev_kinds := Quantum.Gate.Measure (src, reset_clbit) :: !rev_kinds);
      rev_kinds := Quantum.Gate.If_x (reset_clbit, src) :: !rev_kinds
    end
    else begin
      let kind = circuit.Quantum.Circuit.gates.(i).Quantum.Gate.kind in
      rev_kinds := Quantum.Gate.map_qubits rename kind :: !rev_kinds
    end;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then ready := Iset.add j !ready)
      succs.(i)
  done;
  if !emitted <> n + 1 then
    invalid_arg "Reuse.apply: reuse would create a dependence cycle";
  Quantum.Circuit.of_kinds ~num_qubits:circuit.Quantum.Circuit.num_qubits
    ~num_clbits
    (List.rev !rev_kinds)

let qubit_usage circuit = List.length (Quantum.Circuit.active_qubits circuit)
