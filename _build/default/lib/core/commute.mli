(** QS-CaQR for commutable-gate circuits (paper §3.2.2), e.g. the QAOA
    phase layer: gates are the edges of a problem graph and may be freely
    reordered, so reuse planning works on the interaction graph directly.

    Qubits sharing a wire must be pairwise non-interacting, so the minimum
    qubit count is bounded by graph coloring. Reuse pairs impose
    "all gates of [src] before all gates of [dst]"; validity reduces to
    acyclicity of the pair digraph (pair [p1] precedes [p2] when [p1]'s
    dst equals or interacts with [p2]'s src). Candidate impact is
    evaluated by the paper's 3-step scheduler: per round, a
    maximum-weight matching of unblocked edges, gates touching
    reuse sources prioritized. *)

(** Minimum wires by graph coloring (paper's bound for commutable
    circuits). *)
val min_qubits : Galg.Graph.t -> int

(** A reuse plan: an ordered chain partition of the vertices. Chains are
    grown pair by pair; every chain's vertex set is independent in the
    problem graph and the pair digraph stays acyclic. *)
type plan

val make : Galg.Graph.t -> plan

val graph : plan -> Galg.Graph.t

(** Applied pairs, oldest first. *)
val pairs : plan -> Reuse.pair list

(** Wires in use = number of chain heads. *)
val usage : plan -> int

(** [chain plan head] is the hosted vertex sequence of a wire. *)
val chain : plan -> int -> int list

(** Chain heads, ascending. *)
val wires : plan -> int list

(** [valid_merge plan ~src ~dst]: [src] is a chain tail, [dst] a chain
    head of a different chain, the union stays independent, and the pair
    digraph stays acyclic. *)
val valid_merge : plan -> src:int -> dst:int -> bool

(** [merge plan ~src ~dst] applies the pair (copy-on-write; the original
    plan is untouched). Raises [Invalid_argument] if invalid. *)
val merge : plan -> src:int -> dst:int -> plan

(** Number of scheduler rounds (parallel two-qubit-gate layers) the plan
    needs — the paper's pair-impact metric. [exact] (default when the
    graph has at most 32 vertices) uses blossom matching; otherwise a
    two-pass greedy. *)
val schedule_rounds : ?exact:bool -> plan -> int

(** Emit the transformed single-layer QAOA circuit: H walls, scheduled
    [Rzz gamma] gates, [Rx (2 beta)] mixers, per-vertex measurement into
    clbit = vertex, and measure + conditional-X resets between chain
    occupants. Wires are renamed onto chain heads; clbits keep vertex
    identity so max-cut scoring is unchanged. *)
val emit : ?gamma:float -> ?beta:float -> plan -> Quantum.Circuit.t

(** One greedy reduction step: merge the candidate with the best score
    ([`Exact] = scheduler rounds, used for small graphs; [`Heuristic] =
    lowest combined wire load). [None] when no valid merge exists. *)
val reduce_once : ?mode:[ `Exact | `Heuristic | `Auto ] -> plan -> plan option

(** [plan_with_budget g ~budget] builds a reuse plan that fits in
    [budget] wires by capacity-constrained list scheduling: qubits bind
    to a wire at their first gate and recycle it after their last, so
    chain orders are feasible by construction — incremental merging
    cannot reach deep reductions because it freezes chain orders too
    early. [None] when the greedy schedule deadlocks at this budget. *)
val plan_with_budget : Galg.Graph.t -> budget:int -> plan option

type step = {
  usage : int;
  plan : plan;
  depth : int;
  duration : int;
  two_q : int;
}

(** Full reduction trajectory from [n] wires down to [stop_at] (or the
    minimum reachable), with emitted-circuit metrics at each point —
    the data behind Figs. 3 and 14. *)
val sweep :
  ?mode:[ `Exact | `Heuristic | `Auto ] ->
  ?stop_at:int ->
  ?gamma:float ->
  ?beta:float ->
  Galg.Graph.t ->
  step list
