type ctx = {
  device : Hardware.Device.t;
  phys_of : int array;  (* compacted wire -> physical qubit *)
  rng : Random.State.t;
}

let depolarize_1q ctx st q p =
  if Random.State.float ctx.rng 1. < p then
    State.apply_pauli st (1 + Random.State.int ctx.rng 3) q

let depolarize_2q ctx st a b p =
  if Random.State.float ctx.rng 1. < p then begin
    (* One of the 15 non-identity two-qubit Paulis. *)
    let k = 1 + Random.State.int ctx.rng 15 in
    State.apply_pauli st (k land 3) a;
    State.apply_pauli st ((k lsr 2) land 3) b
  end

(* Pauli-twirled thermal relaxation over an idle window of [dt] cycles. *)
let relax ctx st q ~idle_dt =
  if idle_dt > 0 then begin
    let cal = Hardware.Calibration.qubit ctx.device.Hardware.Device.calibration
        ctx.phys_of.(q)
    in
    let t1 = cal.Hardware.Calibration.t1_dt in
    let t2 = cal.Hardware.Calibration.t2_dt in
    if t1 < infinity then begin
      let t = float_of_int idle_dt in
      let p_relax = 1. -. exp (-.t /. t1) in
      let p_dephase = 1. -. exp (-.t /. t2) in
      let px = p_relax /. 4. in
      let pz = Float.max 0. ((p_dephase /. 2.) -. (p_relax /. 4.)) in
      let r = Random.State.float ctx.rng 1. in
      if r < px then State.apply_pauli st 1 q
      else if r < 2. *. px then State.apply_pauli st 2 q
      else if r < (2. *. px) +. pz then State.apply_pauli st 3 q
    end
  end

let gate_duration ctx kind =
  match kind with
  | Quantum.Gate.Cx (a, b) | Quantum.Gate.Cz (a, b) | Quantum.Gate.Rzz (_, a, b) ->
    Hardware.Device.cx_duration ctx.device ctx.phys_of.(a) ctx.phys_of.(b)
  | Quantum.Gate.Swap (a, b) ->
    3 * Hardware.Device.cx_duration ctx.device ctx.phys_of.(a) ctx.phys_of.(b)
  | k -> Quantum.Duration.of_kind Quantum.Duration.default k

let run_shot ctx (c : Quantum.Circuit.t) =
  let st = State.init c.num_qubits in
  let creg = ref 0 in
  let qfront = Array.make (max 1 c.num_qubits) 0 in
  let cfront = Array.make (max 1 c.num_clbits) 0 in
  Array.iter
    (fun g ->
      let kind = g.Quantum.Gate.kind in
      if not (Quantum.Gate.is_barrier kind) then begin
        let qs = Quantum.Gate.qubits kind and cs = Quantum.Gate.clbits kind in
        let start =
          List.fold_left
            (fun acc cb -> max acc cfront.(cb))
            (List.fold_left (fun acc q -> max acc qfront.(q)) 0 qs)
            cs
        in
        (* Idle relaxation on each operand between its last op and now. *)
        List.iter (fun q -> relax ctx st q ~idle_dt:(start - qfront.(q))) qs;
        let dur = gate_duration ctx kind in
        let finish = start + dur in
        (match kind with
         | Quantum.Gate.One_q (gq, q) ->
           State.apply_one_q st gq q;
           let p =
             (Hardware.Calibration.qubit
                ctx.device.Hardware.Device.calibration ctx.phys_of.(q))
               .Hardware.Calibration.one_q_error
           in
           depolarize_1q ctx st q p
         | Quantum.Gate.Cx (a, b) | Quantum.Gate.Cz (a, b) | Quantum.Gate.Rzz (_, a, b) | Quantum.Gate.Swap (a, b)
           ->
           (match kind with
            | Quantum.Gate.Cx (a, b) -> State.apply_cx st a b
            | Quantum.Gate.Cz (a, b) -> State.apply_cz st a b
            | Quantum.Gate.Rzz (th, a, b) -> State.apply_rzz st th a b
            | Quantum.Gate.Swap (a, b) -> State.apply_swap st a b
            | _ -> ());
           let p =
             Hardware.Device.cx_error ctx.device ctx.phys_of.(a) ctx.phys_of.(b)
           in
           let p =
             match kind with
             | Quantum.Gate.Swap _ -> 1. -. ((1. -. p) ** 3.)
             | _ -> p
           in
           (* Non-adjacent operands mean the caller skipped routing; fall
              back to a generic error rather than the sentinel 1.0. *)
           let p = if p >= 1. then 0.02 else p in
           depolarize_2q ctx st a b p
         | Quantum.Gate.Measure (q, cb) ->
           let outcome = State.measure ctx.rng st q in
           let ro =
             Hardware.Device.readout_error ctx.device ctx.phys_of.(q)
           in
           let outcome =
             if Random.State.float ctx.rng 1. < ro then 1 - outcome else outcome
           in
           creg := (!creg land lnot (1 lsl cb)) lor (outcome lsl cb)
         | Quantum.Gate.Reset q -> State.reset ctx.rng st q
         | Quantum.Gate.If_x (cb, q) ->
           if !creg land (1 lsl cb) <> 0 then State.apply_one_q st Quantum.Gate.X q
         | Quantum.Gate.Barrier _ -> ());
        List.iter (fun q -> qfront.(q) <- finish) qs;
        List.iter (fun cb -> cfront.(cb) <- finish) cs
      end)
    c.gates;
  !creg

let prepare circuit =
  let compacted, remap = Quantum.Circuit.compact_qubits circuit in
  let phys_of = Array.make (max 1 compacted.Quantum.Circuit.num_qubits) 0 in
  Array.iteri (fun old_q new_q -> if new_q >= 0 then phys_of.(new_q) <- old_q) remap;
  (compacted, phys_of)

let run ~device ~seed ~shots circuit =
  let compacted, phys_of = prepare circuit in
  let ctx = { device; phys_of; rng = Random.State.make [| seed; 0x401 |] } in
  let counts = Counts.create ~num_clbits:compacted.Quantum.Circuit.num_clbits in
  for _ = 1 to shots do
    Counts.add counts (run_shot ctx compacted)
  done;
  counts

let tvd_vs_ideal ~device ~seed ~shots circuit =
  let noisy = run ~device ~seed ~shots circuit in
  let ideal = Executor.distribution ~seed circuit in
  Counts.tvd noisy ideal
