lib/sim/counts.ml: Float Format Hashtbl List Option String
