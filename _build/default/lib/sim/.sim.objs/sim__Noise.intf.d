lib/sim/noise.mli: Counts Hardware Quantum
