lib/sim/observable.mli: Quantum
