lib/sim/observable.ml: Array Counts Executor List Quantum Random State
