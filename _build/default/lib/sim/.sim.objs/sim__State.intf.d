lib/sim/state.mli: Quantum Random
