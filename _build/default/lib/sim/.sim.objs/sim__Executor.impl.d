lib/sim/executor.ml: Array Counts Hashtbl List Option Quantum Random State
