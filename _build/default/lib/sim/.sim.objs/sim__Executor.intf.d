lib/sim/executor.mli: Counts Quantum
