lib/sim/counts.mli: Format
