lib/sim/noise.ml: Array Counts Executor Float Hardware List Quantum Random State
