lib/sim/state.ml: Array Float Quantum Random
