(** Dense state-vector over [n] qubits (little-endian: qubit [q] is bit [q]
    of the basis index). Supports the dynamic-circuit primitives the paper
    relies on: projective mid-circuit measurement with collapse, reset, and
    X conditioned on a classical bit. Mutable: gates update in place. *)

type t

(** [init n] is |0...0> on [n] qubits. [n <= 24] enforced (dense vector). *)
val init : int -> t

val num_qubits : t -> int

(** Squared norm (should stay 1 up to rounding). *)
val norm2 : t -> float

(** Amplitude of basis state [i] as [(re, im)]. *)
val amplitude : t -> int -> float * float

(** Probability of measuring basis state [i]. *)
val probability : t -> int -> float

(** Full probability vector, length [2^n]. *)
val probabilities : t -> float array

val apply_one_q : t -> Quantum.Gate.one_q -> int -> unit
val apply_cx : t -> int -> int -> unit
val apply_cz : t -> int -> int -> unit
val apply_rzz : t -> float -> int -> int -> unit
val apply_swap : t -> int -> int -> unit

(** Apply a Pauli (for noise injection): 0 = I, 1 = X, 2 = Y, 3 = Z. *)
val apply_pauli : t -> int -> int -> unit

(** Deep copy — branch-enumeration checkers fork the state at each
    measurement instead of sampling it. *)
val copy : t -> t

(** [collapse st q outcome] projects qubit [q] onto [outcome] and
    renormalizes, regardless of how unlikely the outcome was (callers
    weigh branches by {!prob_one} themselves). *)
val collapse : t -> int -> int -> unit

(** [measure rng st q] samples an outcome, collapses, renormalizes. *)
val measure : Random.State.t -> t -> int -> int

(** Measure-and-discard: force the qubit to |0> (measure, X if 1). *)
val reset : Random.State.t -> t -> int -> unit

(** Probability that qubit [q] reads 1. *)
val prob_one : t -> int -> float
