(** Monte-Carlo noisy execution standing in for the paper's IBM Mumbai runs
    (Table 3, Figs 15–16).

    Error channels, all driven by the device calibration:
    - depolarizing Pauli noise after every 1q/2q gate (per-link CNOT error;
      SWAP counts as three CNOTs),
    - readout bit-flips at measurement,
    - Pauli-twirled thermal relaxation (T1/T2) on idle qubits, accumulated
      from the same ASAP schedule used for duration reporting — this is the
      mechanism that makes longer circuits and more SWAPs lose fidelity,
      which is exactly the tradeoff CaQR exploits. *)

(** [run ~device ~seed ~shots circuit] executes the physical circuit
    (wires = device qubits) with noise. *)
val run :
  device:Hardware.Device.t -> seed:int -> shots:int -> Quantum.Circuit.t -> Counts.t

(** TVD between the noisy distribution and the ideal (noise-free) one. *)
val tvd_vs_ideal :
  device:Hardware.Device.t -> seed:int -> shots:int -> Quantum.Circuit.t -> float
