type pauli = I | X | Y | Z
type term = { coeff : float; paulis : (int * pauli) list }
type t = term list

let zz ?(coeff = 1.) a b = { coeff; paulis = [ (a, Z); (b, Z) ] }
let x_ ?(coeff = 1.) q = { coeff; paulis = [ (q, X) ] }
let z_ ?(coeff = 1.) q = { coeff; paulis = [ (q, Z) ] }

let ising_chain ~n ~j ~g =
  List.init (n - 1) (fun i -> zz ~coeff:(-.j) i (i + 1))
  @ List.init n (fun i -> x_ ~coeff:(-.g) i)

(* Non-identity requirements of a term. *)
let requirements term =
  List.filter (fun (_, p) -> p <> I) term.paulis

let compatible basis term =
  List.for_all
    (fun (q, p) ->
      match List.assoc_opt q basis with None -> true | Some p' -> p = p')
    (requirements term)

let extend basis term =
  List.fold_left
    (fun acc (q, p) -> if List.mem_assoc q acc then acc else (q, p) :: acc)
    basis (requirements term)

let measurement_bases obs =
  (* Greedy first-fit grouping. *)
  List.fold_left
    (fun groups term ->
      let rec place = function
        | [] -> [ (extend [] term, [ term ]) ]
        | (basis, members) :: rest when compatible basis term ->
          (extend basis term, term :: members) :: rest
        | g :: rest -> g :: place rest
      in
      place groups)
    [] obs

(* Append basis rotations + measurements to the preparation circuit. *)
let measured_circuit (prepare : Quantum.Circuit.t) basis =
  let nq = prepare.Quantum.Circuit.num_qubits in
  let kinds =
    Array.to_list (Array.map (fun g -> g.Quantum.Gate.kind) prepare.Quantum.Circuit.gates)
    @ List.concat_map
        (fun (q, p) ->
          let rot =
            match p with
            | X -> [ Quantum.Gate.One_q (Quantum.Gate.H, q) ]
            | Y ->
              [
                Quantum.Gate.One_q (Quantum.Gate.Sdg, q);
                Quantum.Gate.One_q (Quantum.Gate.H, q);
              ]
            | Z | I -> []
          in
          rot @ [ Quantum.Gate.Measure (q, q) ])
        basis
  in
  Quantum.Circuit.of_kinds ~num_qubits:nq
    ~num_clbits:(max nq prepare.Quantum.Circuit.num_clbits)
    kinds

let term_parity term k =
  List.fold_left
    (fun acc (q, p) ->
      if p = I then acc
      else if (k lsr q) land 1 = 1 then -.acc
      else acc)
    1. term.paulis

let expectation ~seed ~shots ~prepare obs =
  List.fold_left
    (fun acc (basis, members) ->
      let counts = Executor.run ~seed ~shots (measured_circuit prepare basis) in
      acc
      +. List.fold_left
           (fun acc term ->
             acc
             +. (term.coeff *. Counts.expectation counts (term_parity term)))
           0. members)
    0. (measurement_bases obs)

let expectation_exact ~prepare obs =
  if
    Array.exists
      (fun g -> Quantum.Gate.is_dynamic g.Quantum.Gate.kind)
      prepare.Quantum.Circuit.gates
  then invalid_arg "Observable.expectation_exact: dynamic preparation";
  let rng = Random.State.make [| 0 |] in
  List.fold_left
    (fun acc (basis, members) ->
      (* Rebuild the rotated state and read the full distribution. *)
      let st = State.init prepare.Quantum.Circuit.num_qubits in
      let apply kind =
        match kind with
        | Quantum.Gate.One_q (g, q) -> State.apply_one_q st g q
        | Quantum.Gate.Cx (a, b) -> State.apply_cx st a b
        | Quantum.Gate.Cz (a, b) -> State.apply_cz st a b
        | Quantum.Gate.Rzz (th, a, b) -> State.apply_rzz st th a b
        | Quantum.Gate.Swap (a, b) -> State.apply_swap st a b
        | Quantum.Gate.Barrier _ -> ()
        | Quantum.Gate.Measure _ | Quantum.Gate.Reset _ | Quantum.Gate.If_x _ ->
          ignore (State.measure rng st 0)
      in
      Array.iter (fun g -> apply g.Quantum.Gate.kind) prepare.Quantum.Circuit.gates;
      List.iter
        (fun (q, p) ->
          match p with
          | X -> State.apply_one_q st Quantum.Gate.H q
          | Y ->
            State.apply_one_q st Quantum.Gate.Sdg q;
            State.apply_one_q st Quantum.Gate.H q
          | Z | I -> ())
        basis;
      let probs = State.probabilities st in
      acc
      +. List.fold_left
           (fun acc term ->
             let e = ref 0. in
             Array.iteri (fun k p -> e := !e +. (p *. term_parity term k)) probs;
             acc +. (term.coeff *. !e))
           0. members)
    0. (measurement_bases obs)
