(** Pauli-string observables measured the way hardware measures them:
    rotate each qubit into the Z basis, sample bitstrings, average parity
    — the machinery behind VQE-style energy estimation on top of any
    compiled (possibly qubit-reused) circuit.

    An observable is a real-weighted sum of Pauli terms. Terms are grouped
    by measurement basis: all-Z terms share one circuit; terms that agree
    on every qubit's basis (X/Y/Z or identity) share one too. *)

type pauli = I | X | Y | Z

(** One term: coefficient and per-qubit Pauli (index = qubit). Identities
    may be omitted. *)
type term = { coeff : float; paulis : (int * pauli) list }

type t = term list

(** Convenience constructors. *)
val zz : ?coeff:float -> int -> int -> term

val x_ : ?coeff:float -> int -> term
val z_ : ?coeff:float -> int -> term

(** Transverse-field Ising chain on [n] qubits:
    [- j * sum ZZ - g * sum X]. *)
val ising_chain : n:int -> j:float -> g:float -> t

(** [measurement_bases obs] groups terms into as few shared measurement
    bases as possible (greedy): each group is a per-qubit basis choice
    plus the member terms. *)
val measurement_bases : t -> ((int * pauli) list * term list) list

(** [expectation ~seed ~shots ~prepare obs] estimates [<obs>] on the
    state produced by [prepare]: a function giving the state-preparation
    circuit *without* measurements (on however many qubits the observable
    touches). One circuit is sampled per measurement basis. *)
val expectation :
  seed:int -> shots:int -> prepare:Quantum.Circuit.t -> t -> float

(** Exact expectation from the state vector (no sampling noise); the
    preparation circuit must be unitary (no dynamic operations). *)
val expectation_exact : prepare:Quantum.Circuit.t -> t -> float
