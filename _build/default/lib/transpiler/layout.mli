(** Initial placement of logical qubits onto device qubits.

    Heuristic in the spirit of Qiskit's dense/SABRE layouts: logical qubits
    are placed in decreasing interaction-degree order; each goes to the
    free physical qubit minimizing distance to its already-placed
    interaction neighbors, with device quality (connectivity, readout and
    CNOT fidelity) breaking ties. *)

type t = {
  l2p : int array;  (** logical -> physical *)
  p2l : int array;  (** physical -> logical, [-1] when free *)
}

(** [initial device circuit] places every logical wire of [circuit].
    Raises [Invalid_argument] if the device is too small. *)
val initial : Hardware.Device.t -> Quantum.Circuit.t -> t

(** Identity layout on the first [n] physical qubits. *)
val trivial : Hardware.Device.t -> int -> t

val copy : t -> t

(** Swap the logical occupants of two physical qubits (either may be free). *)
val apply_swap : t -> int -> int -> unit
