lib/transpiler/esp.mli: Hardware Quantum
