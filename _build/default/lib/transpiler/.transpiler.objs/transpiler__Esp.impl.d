lib/transpiler/esp.ml: Array Float Hardware List Quantum Transpile
