lib/transpiler/router.ml: Array Fun Hardware Hashtbl Layout List Quantum Queue
