lib/transpiler/transpile.ml: Array Format Hardware Layout List Quantum Router
