lib/transpiler/transpile.mli: Format Hardware Quantum
