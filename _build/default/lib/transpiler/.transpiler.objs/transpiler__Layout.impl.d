lib/transpiler/layout.ml: Array Fun Galg Hardware List Quantum
