lib/transpiler/router.mli: Hardware Layout Quantum
