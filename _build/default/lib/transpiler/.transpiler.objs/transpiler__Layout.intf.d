lib/transpiler/layout.mli: Hardware Quantum
