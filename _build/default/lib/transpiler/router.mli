(** SWAP-insertion routing, SABRE-flavoured: schedule every dependence-free
    gate that is hardware-compliant; when blocked, insert the SWAP that
    most reduces the summed front-layer distance, with a lookahead window
    and an error-aware tie-break. This is the baseline Qiskit-O3 stand-in
    (DESIGN.md substitutions). *)

type result = {
  physical : Quantum.Circuit.t;  (** wires are device qubits *)
  swaps_added : int;
  final_layout : Layout.t;
}

(** [route device layout circuit] routes a logical circuit. The layout is
    not mutated. All logical wires must be mapped. *)
val route : Hardware.Device.t -> Layout.t -> Quantum.Circuit.t -> result
