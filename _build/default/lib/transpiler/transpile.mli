(** End-to-end baseline compilation (the paper's "Qiskit optimization
    level 3" baseline): initial layout, SABRE-style routing, and the
    metrics the evaluation reports — qubit usage, depth, duration in dt,
    SWAP count, two-qubit gate count. *)

type stats = {
  qubits_used : int;
  depth : int;
  duration_dt : int;
  swaps : int;
  two_q : int;
  gate_count : int;
}

type result = { physical : Quantum.Circuit.t; stats : stats }

(** Device-aware ASAP duration of a physical circuit (per-link CNOT
    durations from calibration; SWAP = 3 CNOTs). *)
val physical_duration : Hardware.Device.t -> Quantum.Circuit.t -> int

(** Stats of an already-physical circuit. *)
val stats_of : Hardware.Device.t -> Quantum.Circuit.t -> stats

(** [run device circuit] lays out and routes a logical circuit. *)
val run : Hardware.Device.t -> Quantum.Circuit.t -> result

val pp_stats : Format.formatter -> stats -> unit
