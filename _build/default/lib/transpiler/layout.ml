type t = { l2p : int array; p2l : int array }

let trivial device n =
  if n > Hardware.Device.num_qubits device then
    invalid_arg "Layout.trivial: device too small";
  let np = Hardware.Device.num_qubits device in
  let p2l = Array.make np (-1) in
  for l = 0 to n - 1 do
    p2l.(l) <- l
  done;
  { l2p = Array.init n Fun.id; p2l }

let initial device (circuit : Quantum.Circuit.t) =
  let nl = circuit.num_qubits in
  let np = Hardware.Device.num_qubits device in
  if nl > np then invalid_arg "Layout.initial: device too small";
  let inter = Quantum.Circuit.interaction_graph circuit in
  let l2p = Array.make nl (-1) in
  let p2l = Array.make np (-1) in
  let order =
    List.sort
      (fun a b -> compare (Galg.Graph.degree inter b) (Galg.Graph.degree inter a))
      (List.init nl Fun.id)
  in
  let place l p =
    l2p.(l) <- p;
    p2l.(p) <- l
  in
  let free p = p2l.(p) = -1 in
  let best_free score =
    let best = ref (-1) and best_score = ref neg_infinity in
    for p = 0 to np - 1 do
      if free p then begin
        let s = score p in
        if s > !best_score then begin
          best := p;
          best_score := s
        end
      end
    done;
    !best
  in
  List.iter
    (fun l ->
      if l2p.(l) < 0 then begin
        let placed_neighbors =
          List.filter (fun m -> l2p.(m) >= 0) (Galg.Graph.neighbors inter l)
        in
        let score p =
          let dist_penalty =
            List.fold_left
              (fun acc m ->
                acc + Hardware.Device.distance device p l2p.(m))
              0 placed_neighbors
          in
          Hardware.Device.qubit_quality device p
          -. (10. *. float_of_int dist_penalty)
        in
        place l (best_free score)
      end)
    order;
  { l2p; p2l }

let copy t = { l2p = Array.copy t.l2p; p2l = Array.copy t.p2l }

let apply_swap t p1 p2 =
  let l1 = t.p2l.(p1) and l2 = t.p2l.(p2) in
  t.p2l.(p1) <- l2;
  t.p2l.(p2) <- l1;
  if l1 >= 0 then t.l2p.(l1) <- p2;
  if l2 >= 0 then t.l2p.(l2) <- p1
