let gate_factor device (c : Quantum.Circuit.t) =
  Array.fold_left
    (fun acc g ->
      match g.Quantum.Gate.kind with
      | Quantum.Gate.One_q (_, q) | Quantum.Gate.If_x (_, q) ->
        let cal =
          Hardware.Calibration.qubit device.Hardware.Device.calibration q
        in
        acc *. (1. -. cal.Hardware.Calibration.one_q_error)
      | Quantum.Gate.Cx (a, b) | Quantum.Gate.Cz (a, b) | Quantum.Gate.Rzz (_, a, b)
        ->
        acc *. (1. -. Float.min 0.5 (Hardware.Device.cx_error device a b))
      | Quantum.Gate.Swap (a, b) ->
        let e = Float.min 0.5 (Hardware.Device.cx_error device a b) in
        acc *. ((1. -. e) ** 3.)
      | Quantum.Gate.Measure (q, _) | Quantum.Gate.Reset q ->
        acc *. (1. -. Hardware.Device.readout_error device q)
      | Quantum.Gate.Barrier _ -> acc)
    1. c.Quantum.Circuit.gates

let decoherence_factor device (c : Quantum.Circuit.t) =
  (* Per-wire busy spans under the device-aware ASAP schedule; each active
     qubit damps over the total circuit duration (a qubit idles exposed
     even after its gates finish until it is measured or the circuit
     ends — conservative but monotone in duration, which is what version
     ranking needs). *)
  let duration = float_of_int (Transpile.physical_duration device c) in
  List.fold_left
    (fun acc q ->
      let cal = Hardware.Calibration.qubit device.Hardware.Device.calibration q in
      let t1 = cal.Hardware.Calibration.t1_dt in
      let t2 = cal.Hardware.Calibration.t2_dt in
      if t1 = infinity then acc
      else acc *. exp (-.duration /. t1) *. exp (-.duration /. t2))
    1.
    (Quantum.Circuit.active_qubits c)

let of_circuit device c = gate_factor device c *. decoherence_factor device c
