(** Estimated success probability (ESP) — the analytic fidelity metric the
    paper uses to rank compiled versions ("depending on the fidelity
    metric, for instance, estimated success probability", §3.2.1; and the
    abstract's "improved estimated success probability").

    ESP multiplies per-operation survival probabilities from the device
    calibration:

    - each one-qubit gate survives with [1 - one_q_error],
    - each CNOT-class gate with [1 - cx_error(link)] (SWAP counts thrice),
    - each measurement with [1 - readout_error],
    - and every qubit decoheres over the scheduled duration [T] of its
      wire with [exp (-T / T1) * exp (-T / T2)]-style damping, folded in
      as [exp (-T/T1) * exp (-T/T2)] per active qubit.

    Wires must be physical (device) qubits. *)

(** [of_circuit device circuit] in [0, 1]; 1 for an empty circuit on an
    ideal device. *)
val of_circuit : Hardware.Device.t -> Quantum.Circuit.t -> float

(** Gate-error-only factor (no decoherence term): useful to separate the
    two contributions in ablations. *)
val gate_factor : Hardware.Device.t -> Quantum.Circuit.t -> float

(** Decoherence-only factor. *)
val decoherence_factor : Hardware.Device.t -> Quantum.Circuit.t -> float
