module B = Quantum.Circuit.Builder

let measure_all b n =
  for q = 0 to n - 1 do
    B.measure b q q
  done

let ghz n =
  if n < 2 then invalid_arg "Extra.ghz: need at least 2 qubits";
  let b = B.create ~num_qubits:n ~num_clbits:n in
  B.h b 0;
  for q = 0 to n - 2 do
    B.cx b q (q + 1)
  done;
  measure_all b n;
  B.build b

let qft n =
  if n < 1 then invalid_arg "Extra.qft: need at least 1 qubit";
  let b = B.create ~num_qubits:n ~num_clbits:n in
  (* Prepare a nontrivial input so the output is not flat. *)
  B.x b 0;
  if n > 2 then B.x b (n - 1);
  for i = 0 to n - 1 do
    B.h b i;
    for j = i + 1 to n - 1 do
      (* Controlled phase 2pi / 2^(j-i+1); Rzz + local Rz realize the
         diagonal part (global-phase equivalent of CPhase). *)
      let theta = Float.pi /. float_of_int (1 lsl (j - i)) in
      B.rz b (theta /. 2.) i;
      B.rz b (theta /. 2.) j;
      B.rzz b (-.theta /. 2.) i j
    done
  done;
  measure_all b n;
  B.build b

let w_state_star n =
  if n < 2 then invalid_arg "Extra.w_state_star: need at least 2 qubits";
  let b = B.create ~num_qubits:n ~num_clbits:n in
  (* Hub q0 spreads amplitude to the leaves; not a true W state but the
     same star interaction shape, which is what reuse cares about. *)
  B.h b 0;
  for q = 1 to n - 1 do
    B.cx b 0 q
  done;
  measure_all b n;
  B.build b

(* Cuccaro ripple-carry adder: wires [c0; a0..a(n-1); b0..b(n-1); z].
   Inputs fixed to a = 2^n - 1 and b = 1, so b reads 0 and z reads 1. *)
let ripple_adder n =
  if n < 1 then invalid_arg "Extra.ripple_adder: need at least 1 bit";
  let total = (2 * n) + 2 in
  let b = B.create ~num_qubits:total ~num_clbits:total in
  let a_q i = 1 + i in
  let b_q i = 1 + n + i in
  let z = (2 * n) + 1 in
  let maj c y x =
    B.cx b x y;
    B.cx b x c;
    Revlib.ccx b c y x
  in
  let uma c y x =
    Revlib.ccx b c y x;
    B.cx b x c;
    B.cx b c y
  in
  for i = 0 to n - 1 do
    B.x b (a_q i)
  done;
  B.x b (b_q 0);
  maj 0 (b_q 0) (a_q 0);
  for i = 1 to n - 1 do
    maj (a_q (i - 1)) (b_q i) (a_q i)
  done;
  B.cx b (a_q (n - 1)) z;
  for i = n - 1 downto 1 do
    uma (a_q (i - 1)) (b_q i) (a_q i)
  done;
  uma 0 (b_q 0) (a_q 0);
  measure_all b total;
  B.build b
