(** Benchmarks beyond the paper's Table 1, exercising the edges of the
    reuse spectrum:

    - {!ghz}: chain-shaped entangler — entanglement blocks mid-chain
      reuse (every qubit's fate is correlated), a useful stress for
      Condition 2;
    - {!qft}: the quantum Fourier transform — its interaction graph is
      complete, so Condition 1 fails for every pair and the applicability
      detector must answer "no reuse possible";
    - {!w_state_star}: star-shaped W-state preparation, reusable like BV;
    - {!ripple_adder}: a small ripple-carry adder on 2n+2 qubits with
      Toffoli chains, a deeper regular workload. *)

(** [ghz n]: H + CX chain, all qubits measured. *)
val ghz : int -> Quantum.Circuit.t

(** [qft n]: Hadamards + controlled-phase ladder (as Cz/phase pairs),
    all-to-all interaction, measured. *)
val qft : int -> Quantum.Circuit.t

(** [w_state_star n]: hub-and-leaves circuit distributing excitation
    from a center qubit, measured. *)
val w_state_star : int -> Quantum.Circuit.t

(** [ripple_adder n]: adds two [n]-bit registers (inputs fixed to
    a = 2^n - 1, b = 1, so the ideal output is deterministic). Uses
    [2 n + 2] qubits. *)
val ripple_adder : int -> Quantum.Circuit.t
