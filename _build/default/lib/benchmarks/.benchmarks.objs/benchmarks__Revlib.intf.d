lib/benchmarks/revlib.mli: Quantum
