lib/benchmarks/extra.mli: Quantum
