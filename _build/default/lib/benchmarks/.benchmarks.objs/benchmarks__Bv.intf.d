lib/benchmarks/bv.mli: Quantum
