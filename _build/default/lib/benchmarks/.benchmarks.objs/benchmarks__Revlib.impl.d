lib/benchmarks/revlib.ml: Quantum
