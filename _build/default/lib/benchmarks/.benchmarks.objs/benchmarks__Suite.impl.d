lib/benchmarks/suite.ml: Bv Galg List Printf Qaoa Quantum Revlib
