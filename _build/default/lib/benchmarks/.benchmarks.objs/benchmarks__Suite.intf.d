lib/benchmarks/suite.mli: Galg Quantum
