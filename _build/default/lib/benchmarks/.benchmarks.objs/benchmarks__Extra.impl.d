lib/benchmarks/extra.ml: Float Quantum Revlib
