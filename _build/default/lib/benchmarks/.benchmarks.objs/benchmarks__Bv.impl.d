lib/benchmarks/bv.ml: Option Quantum
