(** Reconstructions of the paper's regular (non-commutable) benchmarks
    (§4.1): Rd_32, 4mod5, Multiply_13, System_9, CC_10, XOR_5.

    The original RevLib/QASMBench netlists are not redistributable here;
    these reconstructions keep each benchmark's qubit count, two-qubit
    interaction topology, and dependence shape (see DESIGN.md
    substitutions). Toffolis use the standard 6-CX + T decomposition. All
    circuits are computational-basis-deterministic, so the ideal output is
    a single bitstring — matching how the paper scores TVD and success
    rate on hardware. *)

val rd32 : unit -> Quantum.Circuit.t

val four_mod5 : unit -> Quantum.Circuit.t

(** 3x3-bit shift-and-add multiplier sketch on 13 qubits. *)
val multiply_13 : unit -> Quantum.Circuit.t

(** 9-qubit layered reversible system benchmark. *)
val system_9 : unit -> Quantum.Circuit.t

(** [cc n] — counterfeit-coin-style circuit: star interaction graph like
    BV but with an extra CX echo per data qubit. *)
val cc : int -> Quantum.Circuit.t

val xor5 : unit -> Quantum.Circuit.t

(** Standard 6-CX Toffoli decomposition appended onto a builder. *)
val ccx : Quantum.Circuit.Builder.t -> int -> int -> int -> unit
