(** Bernstein–Vazirani circuits — the paper's running example (Fig. 1).

    An [n]-qubit BV instance uses [n - 1] data qubits plus one ancilla
    (wire [n - 1]); the interaction graph is a star centered on the
    ancilla, which is why reuse compresses BV to 2 qubits regardless of
    size. *)

(** [circuit ?secret n] builds the [n]-qubit BV circuit. [secret] is a
    bitmask over the [n - 1] data qubits (default: all ones — every data
    qubit gets a CX to the ancilla). Data qubits are measured into clbits
    [0 .. n-2]. *)
val circuit : ?secret:int -> int -> Quantum.Circuit.t

(** The outcome an ideal run produces (the secret), as a classical
    register value. *)
val expected_output : ?secret:int -> int -> int
