module B = Quantum.Circuit.Builder

let t_gate b q = B.add b (Quantum.Gate.One_q (Quantum.Gate.T, q))
let tdg_gate b q = B.add b (Quantum.Gate.One_q (Quantum.Gate.Tdg, q))

(* Standard 6-CX Toffoli decomposition. *)
let ccx b a c t =
  B.h b t;
  B.cx b c t;
  tdg_gate b t;
  B.cx b a t;
  t_gate b t;
  B.cx b c t;
  tdg_gate b t;
  B.cx b a t;
  t_gate b c;
  t_gate b t;
  B.h b t;
  B.cx b a c;
  t_gate b a;
  tdg_gate b c;
  B.cx b a c

let measure_all b n =
  for q = 0 to n - 1 do
    B.measure b q q
  done

(* rd32: full adder over inputs q0-q2 (set to 1,0,1); sum on q3, majority
   carry on q4. *)
let rd32 () =
  let n = 5 in
  let b = B.create ~num_qubits:n ~num_clbits:n in
  B.x b 0;
  B.x b 2;
  B.cx b 0 3;
  B.cx b 1 3;
  B.cx b 2 3;
  ccx b 0 1 4;
  ccx b 0 2 4;
  ccx b 1 2 4;
  measure_all b n;
  B.build b

(* 4mod5: marks whether the 4-bit input (q0-q3, set to 9) is divisible by
   5; result on q4. *)
let four_mod5 () =
  let n = 5 in
  let b = B.create ~num_qubits:n ~num_clbits:n in
  B.x b 0;
  B.x b 3;
  B.cx b 3 4;
  B.cx b 0 4;
  ccx b 0 1 4;
  B.cx b 2 4;
  ccx b 1 2 4;
  B.cx b 1 4;
  measure_all b n;
  B.build b

(* multiply_13: carry-less 3x3-bit multiplier, a = q0-q2 (=3), b = q3-q5
   (=5), partial products XOR-accumulated into p = q6-q11, one carry
   Toffoli into q12. *)
let multiply_13 () =
  let n = 13 in
  let b = B.create ~num_qubits:n ~num_clbits:n in
  B.x b 0;
  B.x b 1;
  B.x b 3;
  B.x b 5;
  for i = 0 to 2 do
    for j = 0 to 2 do
      ccx b i (3 + j) (6 + i + j)
    done
  done;
  ccx b 7 8 12;
  measure_all b n;
  B.build b

(* system_9: three Toffoli blocks chained by CX links, a layered
   reversible pipeline. *)
let system_9 () =
  let n = 9 in
  let b = B.create ~num_qubits:n ~num_clbits:n in
  B.x b 0;
  B.x b 1;
  B.x b 4;
  ccx b 0 1 2;
  B.cx b 2 3;
  ccx b 3 4 5;
  B.cx b 5 6;
  ccx b 6 7 8;
  B.cx b 1 4;
  B.cx b 4 7;
  measure_all b n;
  B.build b

(* cc: counterfeit-coin-style star circuit; data qubits interrogate the
   "balance" ancilla (wire n-1). *)
let cc n =
  if n < 2 then invalid_arg "Revlib.cc: need at least 2 qubits";
  let anc = n - 1 in
  let b = B.create ~num_qubits:n ~num_clbits:n in
  for q = 0 to n - 2 do
    B.h b q
  done;
  B.x b anc;
  B.h b anc;
  for q = 0 to n - 2 do
    if q mod 2 = 0 then B.cx b q anc
  done;
  for q = 0 to n - 2 do
    B.h b q
  done;
  B.h b anc;
  measure_all b n;
  B.build b

(* xor5: parity of four inputs (q0-q3, set to 1,0,1,0) onto q4. *)
let xor5 () =
  let n = 5 in
  let b = B.create ~num_qubits:n ~num_clbits:n in
  B.x b 0;
  B.x b 2;
  B.cx b 0 4;
  B.cx b 1 4;
  B.cx b 2 4;
  B.cx b 3 4;
  measure_all b n;
  B.build b
