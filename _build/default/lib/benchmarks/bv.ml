let default_secret n = (1 lsl (n - 1)) - 1

let circuit ?secret n =
  if n < 2 then invalid_arg "Bv.circuit: need at least 2 qubits";
  let secret = Option.value ~default:(default_secret n) secret in
  let anc = n - 1 in
  let b = Quantum.Circuit.Builder.create ~num_qubits:n ~num_clbits:(n - 1) in
  for q = 0 to n - 2 do
    Quantum.Circuit.Builder.h b q
  done;
  Quantum.Circuit.Builder.x b anc;
  Quantum.Circuit.Builder.h b anc;
  for q = 0 to n - 2 do
    if secret land (1 lsl q) <> 0 then Quantum.Circuit.Builder.cx b q anc
  done;
  for q = 0 to n - 2 do
    Quantum.Circuit.Builder.h b q;
    Quantum.Circuit.Builder.measure b q q
  done;
  Quantum.Circuit.Builder.build b

let expected_output ?secret n =
  Option.value ~default:(default_secret n) secret
