(** Matchings in general graphs.

    The QAOA scheduler (paper §3.2.2, Step 3) schedules one layer of
    commuting two-qubit gates per round by computing a maximum-weight
    matching of the remaining interaction graph, where edges touching
    qubits involved in a pending reuse get a large priority weight. *)

(** A matching as a partner array: [mate.(v)] is the vertex matched to [v],
    or [-1] if [v] is unmatched. *)
type t = int array

(** Maximum-cardinality matching via Edmonds' blossom algorithm
    (O(V^3)). Works on general (non-bipartite) graphs. *)
val blossom : Graph.t -> t

(** Greedy maximal matching: scan edges by decreasing weight (ties by
    lexicographic edge order) and take every edge whose endpoints are
    free. [weight u v] must be symmetric. *)
val greedy : weight:(int -> int -> float) -> Graph.t -> t

(** Two-level maximum-weight matching for the CaQR scheduler. Edges with
    [priority u v = true] carry weight [w >> 1]; others weight 1. Phase 1
    computes a maximum matching of the priority subgraph (blossom); phase 2
    extends it with a maximum matching of the non-priority edges induced on
    the still-free vertices. This keeps every priority match — exactly the
    bias the paper wants — while remaining polynomial. *)
val priority_matching : priority:(int -> int -> bool) -> Graph.t -> t

(** Matched edges [(u, v)], [u < v]. *)
val edges : t -> (int * int) list

val cardinality : t -> int

(** Check symmetry, range, and that matched pairs are actual edges. *)
val is_valid : Graph.t -> t -> bool

(** A maximal matching admits no free edge (both endpoints unmatched). *)
val is_maximal : Graph.t -> t -> bool
