(** Disjoint-set forest with path compression and union by rank. Used to
    track merged logical wires during repeated qubit-reuse contraction and
    for connectivity checks in graph generators. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

(** Number of disjoint classes. *)
val count : t -> int
