(** Simple undirected graphs on vertices [0 .. n-1].

    This is the substrate shared by the qubit interaction graphs (paper
    §3.2.2), the hardware coupling maps, and the QAOA problem graphs. The
    graphs involved are small (at most a few hundred vertices), so the
    representation favours clarity over asymptotic cleverness. *)

type t

(** [create n] is an edgeless graph with [n] vertices. *)
val create : int -> t

(** Number of vertices. *)
val order : t -> int

(** Number of edges. *)
val size : t -> int

(** [add_edge g u v] adds the undirected edge [{u, v}]. Adding an existing
    edge or a self loop is a no-op. Raises [Invalid_argument] if a vertex is
    out of range. *)
val add_edge : t -> int -> int -> unit

(** [remove_edge g u v] removes the edge if present. *)
val remove_edge : t -> int -> int -> unit

val has_edge : t -> int -> int -> bool

(** Neighbors of a vertex, in increasing order. *)
val neighbors : t -> int -> int list

val degree : t -> int -> int

(** Maximum degree over all vertices (0 for the empty graph). *)
val max_degree : t -> int

(** All edges as [(u, v)] pairs with [u < v], lexicographically sorted. *)
val edges : t -> (int * int) list

(** [of_edges n es] builds a graph from an edge list. *)
val of_edges : int -> (int * int) list -> t

(** Independent copy. *)
val copy : t -> t

(** Fold over vertices in increasing order. *)
val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [bfs_dist g src] is the array of BFS distances from [src];
    unreachable vertices get [max_int]. *)
val bfs_dist : t -> int -> int array

(** All-pairs BFS distances, [dist.(u).(v)]. *)
val all_pairs_dist : t -> int array array

val is_connected : t -> bool

(** Density [2m / (n (n - 1))]; 0 for graphs with fewer than 2 vertices. *)
val density : t -> float

(** Merge vertex [v] into vertex [u]: every neighbor of [v] becomes a
    neighbor of [u] (self loops dropped) and [v] becomes isolated. Models
    qubit-reuse pair contraction in the interaction graph (paper Fig. 5). *)
val contract : t -> int -> int -> unit

val pp : Format.formatter -> t -> unit
