module Iset = Set.Make (Int)

type t = { n : int; adj : Iset.t array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative order";
  { n; adj = Array.make n Iset.empty; m = 0 }

let order g = g.n
let size g = g.m

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let has_edge g u v =
  check g u;
  check g v;
  Iset.mem v g.adj.(u)

let add_edge g u v =
  check g u;
  check g v;
  if u <> v && not (Iset.mem v g.adj.(u)) then begin
    g.adj.(u) <- Iset.add v g.adj.(u);
    g.adj.(v) <- Iset.add u g.adj.(v);
    g.m <- g.m + 1
  end

let remove_edge g u v =
  check g u;
  check g v;
  if Iset.mem v g.adj.(u) then begin
    g.adj.(u) <- Iset.remove v g.adj.(u);
    g.adj.(v) <- Iset.remove u g.adj.(v);
    g.m <- g.m - 1
  end

let neighbors g v =
  check g v;
  Iset.elements g.adj.(v)

let degree g v =
  check g v;
  Iset.cardinal g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc s -> max acc (Iset.cardinal s)) 0 g.adj

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter
      (fun v -> if u < v then acc := (u, v) :: !acc)
      (List.rev (Iset.elements g.adj.(u)))
  done;
  !acc

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g = { g with adj = Array.copy g.adj }

let fold_vertices f g init =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f v !acc
  done;
  !acc

let bfs_dist g src =
  check g src;
  let dist = Array.make g.n max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Iset.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      g.adj.(u)
  done;
  dist

let all_pairs_dist g = Array.init g.n (bfs_dist g)

let is_connected g =
  if g.n = 0 then true
  else
    let dist = bfs_dist g 0 in
    Array.for_all (fun d -> d < max_int) dist

let density g =
  if g.n < 2 then 0.
  else 2. *. float_of_int g.m /. (float_of_int g.n *. float_of_int (g.n - 1))

let contract g u v =
  check g u;
  check g v;
  if u <> v then begin
    let nv = Iset.elements g.adj.(v) in
    List.iter (fun w -> remove_edge g v w) nv;
    List.iter (fun w -> if w <> u then add_edge g u w) nv
  end

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>graph(n=%d, m=%d:" g.n g.m;
  List.iter (fun (u, v) -> Format.fprintf ppf "@ %d-%d" u v) (edges g);
  Format.fprintf ppf ")@]"
