lib/galg/graph.mli: Format
