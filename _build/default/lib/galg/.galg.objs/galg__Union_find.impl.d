lib/galg/union_find.ml: Array Fun
