lib/galg/matching.ml: Array Fun Graph List Queue
