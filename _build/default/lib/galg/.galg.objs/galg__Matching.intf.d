lib/galg/matching.mli: Graph
