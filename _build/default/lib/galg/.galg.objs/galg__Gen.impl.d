lib/galg/gen.ml: Array Float Graph List Random
