lib/galg/coloring.ml: Array Fun Graph Int List Set
