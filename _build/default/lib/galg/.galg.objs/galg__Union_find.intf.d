lib/galg/union_find.mli:
