lib/galg/graph.ml: Array Format Int List Queue Set
