lib/galg/coloring.mli: Graph
