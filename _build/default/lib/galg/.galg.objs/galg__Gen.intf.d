lib/galg/gen.mli: Graph
