(** Problem-graph generators for the QAOA evaluation (paper §2.2, §4.2.2).

    The paper evaluates QAOA max-cut on two graph families, both at a given
    edge density: Erdos–Renyi-style random graphs and power-law graphs. All
    generators are deterministic given [seed]. *)

(** [random ~seed n ~density] samples a graph on [n] vertices with exactly
    [round (density * n * (n-1) / 2)] distinct edges, uniformly. *)
val random : seed:int -> int -> density:float -> Graph.t

(** [power_law ~seed n ~density] grows a graph by preferential attachment
    (Barabasi–Albert style) and then adds or removes random edges to hit the
    same edge budget as [random], yielding a heavy-tailed degree
    distribution: a few hubs, many low-degree vertices. *)
val power_law : seed:int -> int -> density:float -> Graph.t

(** Degree histogram: [hist.(d)] is the number of vertices with degree [d]. *)
val degree_histogram : Graph.t -> int array

(** Target edge count for a density, [round (d * n * (n-1) / 2)]. *)
val edge_budget : int -> density:float -> int
