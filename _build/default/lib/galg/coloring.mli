(** Graph coloring.

    The paper (§3.2.2) uses graph coloring of the qubit interaction graph to
    lower-bound the number of qubits a commutable-gate circuit needs: qubits
    sharing a color never interact, so one physical wire can serve all of
    them sequentially. *)

(** A proper coloring: [colors.(v)] is the color of vertex [v], and
    [count] is the number of distinct colors used. *)
type result = { colors : int array; count : int }

(** Greedy coloring scanning vertices in the given order (smallest available
    color). *)
val greedy : order:int list -> Graph.t -> result

(** DSATUR heuristic (saturation-degree order); typically uses no more
    colors than [greedy] with the natural order. *)
val dsatur : Graph.t -> result

(** Best of DSATUR and greedy-by-decreasing-degree; the qubit bound used by
    QS-CaQR for commutable circuits. *)
val best : Graph.t -> result

(** [is_proper g r] checks that no edge is monochromatic and every color is
    in [0 .. count - 1]. *)
val is_proper : Graph.t -> result -> bool

(** Vertices grouped by color, [groups.(c)] in increasing vertex order. *)
val color_classes : result -> int list array
