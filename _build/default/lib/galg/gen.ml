let edge_budget n ~density =
  let pairs = n * (n - 1) / 2 in
  int_of_float (Float.round (density *. float_of_int pairs))

let random ~seed n ~density =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let target = edge_budget n ~density in
  let g = Graph.create n in
  (* Rejection sampling is fine: density is well below 1 in all workloads. *)
  let guard = ref 0 in
  while Graph.size g < target && !guard < 1000 * (target + 1) do
    incr guard;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then Graph.add_edge g u v
  done;
  g

let power_law ~seed n ~density =
  let rng = Random.State.make [| seed; 0xba5e |] in
  let target = edge_budget n ~density in
  let g = Graph.create n in
  if n >= 2 then begin
    Graph.add_edge g 0 1;
    (* Sample a vertex of [0 .. bound-1] proportional to degree + 1. *)
    let preferential bound =
      let total = ref 0 in
      for u = 0 to bound - 1 do
        total := !total + Graph.degree g u + 1
      done;
      let r = Random.State.int rng (max 1 !total) in
      let pick = ref 0 and acc = ref 0 and found = ref false in
      for u = 0 to bound - 1 do
        if not !found then begin
          acc := !acc + Graph.degree g u + 1;
          if r < !acc then begin
            pick := u;
            found := true
          end
        end
      done;
      !pick
    in
    (* Phase 1: every vertex joins with a single preferential edge, so the
       degree distribution keeps a fat population of leaves — the paper's
       "more vertices with low degrees" (§4.2.2). *)
    for v = 2 to n - 1 do
      let guard = ref 0 in
      let attached = ref false in
      while (not !attached) && !guard < 200 do
        incr guard;
        let u = preferential v in
        if u <> v && not (Graph.has_edge g u v) then begin
          Graph.add_edge g u v;
          attached := true
        end
      done
    done;
    (* Phase 2: the remaining edge budget densifies the hub core. Sampling
       is proportional to degree^2 so the extra edges concentrate on the
       hubs and the leaf population survives — plain degree-proportional
       sampling flattens the tail at the densities the paper uses. *)
    let preferential_sq () =
      let total = ref 0 in
      for u = 0 to n - 1 do
        let d = Graph.degree g u in
        total := !total + (d * d)
      done;
      let r = Random.State.int rng (max 1 !total) in
      let pick = ref 0 and acc = ref 0 and found = ref false in
      for u = 0 to n - 1 do
        if not !found then begin
          let d = Graph.degree g u in
          acc := !acc + (d * d);
          if r < !acc then begin
            pick := u;
            found := true
          end
        end
      done;
      !pick
    in
    let guard = ref 0 in
    while Graph.size g < target && !guard < 2000 * (target + 1) do
      incr guard;
      let u = preferential_sq () and v = preferential_sq () in
      if u <> v then Graph.add_edge g u v
    done;
    while Graph.size g > target do
      let es = Graph.edges g in
      let low (u, v) = Graph.degree g u + Graph.degree g v in
      let e =
        List.fold_left (fun best e -> if low e < low best then e else best)
          (List.hd es) es
      in
      let u, v = e in
      Graph.remove_edge g u v
    done
  end;
  g

let degree_histogram g =
  let hist = Array.make (Graph.max_degree g + 1) 0 in
  for v = 0 to Graph.order g - 1 do
    let d = Graph.degree g v in
    hist.(d) <- hist.(d) + 1
  done;
  hist
