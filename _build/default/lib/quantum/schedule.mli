(** ASAP gate scheduling: start/finish times for every gate under a
    duration model — the timing view behind the duration numbers reported
    everywhere, plus an ASCII timeline for inspection.

    Uses the same wire-front semantics as {!Circuit.duration}: a gate
    starts when all its qubit wires and classical bits are free, so
    [makespan] always equals [Circuit.duration]. *)

type entry = {
  gate : Gate.t;
  start_dt : int;
  finish_dt : int;
}

type t = private { entries : entry array; makespan : int }

(** [asap ?model circuit] (default model: {!Duration.default}).
    Barriers get zero-length entries at their wires' front. *)
val asap : ?model:Duration.t -> Circuit.t -> t

(** Per-qubit busy time in dt (sum of gate durations on that wire). *)
val busy : t -> num_qubits:int -> int array

(** Fraction of the makespan each wire spends idle, [0, 1]. *)
val idle_fraction : t -> num_qubits:int -> float array

(** ASCII Gantt chart, one row per qubit, [width] characters across the
    makespan (default 64). Gate cells are marked with the gate's initial,
    idle time with '.'. *)
val to_string : ?width:int -> num_qubits:int -> t -> string
