(** Quantum gates, including the dynamic-circuit operations the paper builds
    on: mid-circuit measurement, reset, and the classically-controlled X
    that implements CaQR's cheap conditional reset (paper Fig. 2). *)

(** Single-qubit operations. *)
type one_q =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float

type kind =
  | One_q of one_q * int  (** gate, qubit *)
  | Cx of int * int  (** control, target *)
  | Cz of int * int
  | Rzz of float * int * int
      (** exp(-i theta/2 Z.Z): the commuting QAOA phase-separation gate *)
  | Swap of int * int
  | Measure of int * int  (** qubit, classical bit *)
  | Reset of int  (** built-in reset (contains an implicit measurement) *)
  | If_x of int * int
      (** classical bit, qubit: X applied iff the bit read 1 — CaQR's
          optimized conditional reset *)
  | Barrier of int list

type t = { id : int; kind : kind }

(** Qubits the gate acts on, in occurrence order. *)
val qubits : kind -> int list

(** Classical bits the gate reads or writes. *)
val clbits : kind -> int list

(** True for two-qubit unitaries (Cx, Cz, Rzz, Swap). *)
val is_two_q : kind -> bool

(** True for Measure, Reset and If_x — the dynamic-circuit operations. *)
val is_dynamic : kind -> bool

val is_barrier : kind -> bool

(** [map_qubits f kind] renames qubit operands. *)
val map_qubits : (int -> int) -> kind -> kind

(** [map_clbits f kind] renames classical bit operands. *)
val map_clbits : (int -> int) -> kind -> kind

(** Do two gate kinds commute as operators? Conservative: true only for
    structurally evident cases — disjoint supports, diagonal gates (Rz,
    Phase, Z, S, T, Cz, Rzz) sharing qubits, equal-axis rotations. This is
    what lets CaQR reorder the QAOA phase layer (paper §3.2.2). *)
val commutes : kind -> kind -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
