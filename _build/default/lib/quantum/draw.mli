(** ASCII circuit drawing for small circuits — used by the examples to
    render the paper's Fig. 1 walkthrough. One row per qubit wire, one
    column per scheduling layer. *)

val to_string : Circuit.t -> string
val pp : Format.formatter -> Circuit.t -> unit
