lib/quantum/qasm.mli: Circuit Format
