lib/quantum/draw.ml: Array Buffer Circuit Format Gate Hashtbl List Printf String
