lib/quantum/circuit.mli: Duration Format Galg Gate
