lib/quantum/dag.mli: Circuit
