lib/quantum/dag.ml: Array Circuit Fun Gate List
