lib/quantum/optimize.ml: Array Circuit Float Fun Gate List
