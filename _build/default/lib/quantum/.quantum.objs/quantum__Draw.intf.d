lib/quantum/draw.mli: Circuit Format
