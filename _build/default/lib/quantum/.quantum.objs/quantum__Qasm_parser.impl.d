lib/quantum/qasm_parser.ml: Buffer Circuit Float Gate List Printf String
