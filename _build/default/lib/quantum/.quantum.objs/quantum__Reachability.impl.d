lib/quantum/reachability.ml: Array Bytes Char Dag List
