lib/quantum/schedule.ml: Array Buffer Bytes Circuit Duration Gate List Printf
