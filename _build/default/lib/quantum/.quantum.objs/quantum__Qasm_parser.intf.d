lib/quantum/qasm_parser.mli: Circuit
