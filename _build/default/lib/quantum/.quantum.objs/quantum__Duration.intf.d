lib/quantum/duration.mli: Gate
