lib/quantum/reachability.mli: Dag
