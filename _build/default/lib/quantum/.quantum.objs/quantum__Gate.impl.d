lib/quantum/gate.ml: Format List
