lib/quantum/duration.ml: Gate
