lib/quantum/circuit.ml: Array Duration Format Galg Gate List
