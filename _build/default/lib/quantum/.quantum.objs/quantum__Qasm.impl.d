lib/quantum/qasm.ml: Array Circuit Format Gate List Printf String
