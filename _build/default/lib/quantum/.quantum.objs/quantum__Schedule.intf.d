lib/quantum/schedule.mli: Circuit Duration Gate
