(** Parser for the OpenQASM 3 subset that {!Qasm} emits (plus the common
    OpenQASM 2 measurement spelling), so circuits survive a round trip
    through their textual form and external tools can feed circuits in:

    - [qubit[n] q;] / [bit[n] c;] declarations (also [qreg]/[creg]),
    - gates [h x y z s sdg t tdg sx], [rx(a) ry(a) rz(a) p(a)],
      [cx cz swap], [rzz(a)],
    - [c[i] = measure q[j];] and [measure q[j] -> c[i];],
    - [reset q[i];], [if (c[i]) x q[j];], [barrier q[...], ...;],
    - [OPENQASM ...;] and [include ...;] headers (ignored), [//] comments.

    Angles accept float literals and [pi] expressions ([pi/2], [2*pi],
    [-pi]). *)

(** [of_string text] parses a program. Raises [Failure] with a
    line-numbered message on unsupported or malformed input. *)
val of_string : string -> Circuit.t
