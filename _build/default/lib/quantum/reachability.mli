(** Transitive reachability over a gate DAG, the engine behind Condition 2
    (paper §3.1): a reuse pair [(q_i -> q_j)] is invalid when some gate on
    [q_i] transitively depends on a gate on [q_j], because inserting the
    measure-and-reset node would then close a cycle.

    Stored as one bitset per node; building is O(n^2 / word) which matches
    the paper's O(n^2) dependence-tracking overhead analysis (§3.4). *)

type t

val build : Dag.t -> t

(** [reaches t i j] is true iff there is a directed path [i ->* j]
    (including [i = j]). *)
val reaches : t -> int -> int -> bool

(** [any_path t srcs dsts] is true iff some [s] in [srcs] reaches some [d]
    in [dsts]. *)
val any_path : t -> int list -> int list -> bool
