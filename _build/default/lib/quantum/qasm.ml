let pp ppf (c : Circuit.t) =
  Format.fprintf ppf "OPENQASM 3.0;@.include \"stdgates.inc\";@.";
  Format.fprintf ppf "qubit[%d] q;@.bit[%d] c;@." c.num_qubits c.num_clbits;
  Array.iter
    (fun g ->
      match g.Gate.kind with
      | Gate.Measure (q, cb) -> Format.fprintf ppf "c[%d] = measure q[%d];@." cb q
      | Gate.If_x (cb, q) -> Format.fprintf ppf "if (c[%d]) x q[%d];@." cb q
      | Gate.Reset q -> Format.fprintf ppf "reset q[%d];@." q
      | Gate.Rzz (th, a, b) ->
        (* Not in stdgates, but round-trips through Qasm_parser; external
           consumers can macro-expand to cx-rz-cx. *)
        Format.fprintf ppf "rzz(%.6f) q[%d], q[%d];@." th a b
      | Gate.Barrier qs ->
        Format.fprintf ppf "barrier %s;@."
          (String.concat ", " (List.map (Printf.sprintf "q[%d]") qs))
      | _ -> Format.fprintf ppf "%a;@." Gate.pp g)
    c.gates

let to_string c = Format.asprintf "%a" pp c
