(* Layered ASCII rendering. Each gate is placed in the earliest layer after
   all gates on its wires; cells are fixed-width. The measure+conditional-X
   reuse idiom renders as the paper's double bar. *)

let cell_width = 7

let label_of kind ~q =
  match kind with
  | Gate.One_q (g, _) ->
    (match g with
     | Gate.H -> "H"
     | Gate.X -> "X"
     | Gate.Y -> "Y"
     | Gate.Z -> "Z"
     | Gate.S -> "S"
     | Gate.Sdg -> "Sdg"
     | Gate.T -> "T"
     | Gate.Tdg -> "Tdg"
     | Gate.Sx -> "SX"
     | Gate.Rx _ -> "RX"
     | Gate.Ry _ -> "RY"
     | Gate.Rz _ -> "RZ"
     | Gate.Phase _ -> "P")
  | Gate.Cx (c, _) -> if q = c then "*" else "+"
  | Gate.Cz _ -> "*"
  | Gate.Rzz _ -> "ZZ"
  | Gate.Swap _ -> "x"
  | Gate.Measure _ -> "M"
  | Gate.Reset _ -> "|0>"
  | Gate.If_x _ -> "||"
  | Gate.Barrier _ -> "|"

let to_string (c : Circuit.t) =
  let nq = c.num_qubits in
  let front = Array.make (max 1 nq) 0 in
  (* (layer, qubit) -> label *)
  let cells = Hashtbl.create 64 in
  let depth = ref 0 in
  Array.iter
    (fun g ->
      let k = g.Gate.kind in
      let qs = Gate.qubits k in
      match qs with
      | [] -> ()
      | _ ->
        let layer = List.fold_left (fun acc q -> max acc front.(q)) 0 qs in
        List.iter
          (fun q ->
            Hashtbl.replace cells (layer, q) (label_of k ~q);
            front.(q) <- layer + 1)
          qs;
        (* Vertical link for two-qubit gates. *)
        (match qs with
         | [ a; b ] when not (Gate.is_barrier k) ->
           let lo = min a b and hi = max a b in
           for q = lo + 1 to hi - 1 do
             if not (Hashtbl.mem cells (layer, q)) then
               Hashtbl.replace cells (layer, q) "|";
             front.(q) <- max front.(q) (layer + 1)
           done
         | _ -> ());
        if layer + 1 > !depth then depth := layer + 1)
    c.gates;
  let buf = Buffer.create 256 in
  for q = 0 to nq - 1 do
    Buffer.add_string buf (Printf.sprintf "q%-2d: " q);
    for layer = 0 to !depth - 1 do
      let s =
        match Hashtbl.find_opt cells (layer, q) with
        | Some s -> Printf.sprintf "[%s]" s
        | None -> "--"
      in
      let pad = cell_width - String.length s in
      let left = pad / 2 and right = pad - (pad / 2) in
      Buffer.add_string buf (String.make left '-');
      Buffer.add_string buf s;
      Buffer.add_string buf (String.make right '-')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let pp ppf c = Format.pp_print_string ppf (to_string c)
