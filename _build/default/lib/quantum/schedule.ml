type entry = { gate : Gate.t; start_dt : int; finish_dt : int }
type t = { entries : entry array; makespan : int }

let asap ?(model = Duration.default) (c : Circuit.t) =
  let qfront = Array.make (max 1 c.Circuit.num_qubits) 0 in
  let cfront = Array.make (max 1 c.Circuit.num_clbits) 0 in
  let makespan = ref 0 in
  let entries =
    Array.map
      (fun g ->
        let k = g.Gate.kind in
        let qs = Gate.qubits k and cs = Gate.clbits k in
        let start =
          List.fold_left
            (fun acc cb -> max acc cfront.(cb))
            (List.fold_left (fun acc q -> max acc qfront.(q)) 0 qs)
            cs
        in
        let dur = if Gate.is_barrier k then 0 else Duration.of_kind model k in
        let finish = start + dur in
        if not (Gate.is_barrier k) then begin
          List.iter (fun q -> qfront.(q) <- finish) qs;
          List.iter (fun cb -> cfront.(cb) <- finish) cs;
          if finish > !makespan then makespan := finish
        end;
        { gate = g; start_dt = start; finish_dt = finish })
      c.Circuit.gates
  in
  { entries; makespan = !makespan }

let busy t ~num_qubits =
  let acc = Array.make (max 1 num_qubits) 0 in
  Array.iter
    (fun e ->
      if not (Gate.is_barrier e.gate.Gate.kind) then
        List.iter
          (fun q -> acc.(q) <- acc.(q) + (e.finish_dt - e.start_dt))
          (Gate.qubits e.gate.Gate.kind))
    t.entries;
  acc

let idle_fraction t ~num_qubits =
  let b = busy t ~num_qubits in
  Array.map
    (fun busy_dt ->
      if t.makespan = 0 then 0.
      else 1. -. (float_of_int busy_dt /. float_of_int t.makespan))
    b

let initial kind =
  match kind with
  | Gate.One_q (g, _) ->
    (match g with
     | Gate.H -> 'H'
     | Gate.X -> 'X'
     | Gate.Y -> 'Y'
     | Gate.Z -> 'Z'
     | Gate.S | Gate.Sdg -> 'S'
     | Gate.T | Gate.Tdg -> 'T'
     | Gate.Sx -> 'V'
     | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.Phase _ -> 'R')
  | Gate.Cx _ -> 'C'
  | Gate.Cz _ -> 'Z'
  | Gate.Rzz _ -> 'Z'
  | Gate.Swap _ -> 'W'
  | Gate.Measure _ -> 'M'
  | Gate.Reset _ -> '0'
  | Gate.If_x _ -> '?'
  | Gate.Barrier _ -> '|'

let to_string ?(width = 64) ~num_qubits t =
  if t.makespan = 0 then ""
  else begin
    let rows = Array.make num_qubits (Bytes.make width '.') in
    for q = 0 to num_qubits - 1 do
      rows.(q) <- Bytes.make width '.'
    done;
    let col dt = min (width - 1) (dt * width / max 1 t.makespan) in
    Array.iter
      (fun e ->
        let k = e.gate.Gate.kind in
        if not (Gate.is_barrier k) then
          List.iter
            (fun q ->
              if q < num_qubits then
                for x = col e.start_dt to max (col e.start_dt) (col (e.finish_dt - 1)) do
                  Bytes.set rows.(q) x (initial k)
                done)
            (Gate.qubits k))
      t.entries;
    let buf = Buffer.create (num_qubits * (width + 8)) in
    Array.iteri
      (fun q row ->
        Buffer.add_string buf (Printf.sprintf "q%-2d |" q);
        Buffer.add_bytes buf row;
        Buffer.add_string buf "|\n")
      rows;
    Buffer.add_string buf
      (Printf.sprintf "     0%*s\n" (width - 1)
         (Printf.sprintf "%d dt" t.makespan));
    Buffer.contents buf
  end
