(** OpenQASM 3-flavoured text export, so transformed circuits can be
    inspected or shipped to an external toolchain. Dynamic-circuit
    operations use the OpenQASM 3 [if (c) x q;] form. *)

val to_string : Circuit.t -> string
val pp : Format.formatter -> Circuit.t -> unit
