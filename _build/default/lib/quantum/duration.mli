(** Gate-duration model in [dt] system cycles (1 dt = 0.22 ns, paper
    Table 1 caption).

    The model reproduces the paper's Fig. 2 observation: IBM's built-in
    reset embeds a redundant measurement pulse, so CaQR's
    "measure + classically-controlled X" halves the reuse turnaround. *)

type t = {
  one_q : int;  (** any single-qubit gate *)
  cx : int;  (** default CNOT when no per-link calibration applies *)
  swap : int;  (** SWAP = 3 CNOTs *)
  measure : int;
  reset_builtin : int;  (** built-in reset: implicit measure + conditional pulse *)
  if_x : int;  (** classically-controlled X *)
}

(** Falcon-family-flavoured defaults (dt):
    one_q = 160, cx = 1760, swap = 5280, measure = 3520 (~774 ns),
    reset_builtin = 4000, if_x = 160 — so the built-in measure+reset
    costs 7520 dt and CaQR's measure+conditional-X 3680 dt (~2x). *)
val default : t

val ns_per_dt : float

(** Duration of a gate kind under this model. Barriers take 0. *)
val of_kind : t -> Gate.kind -> int

(** Duration of the paper's two reuse idioms: built-in measure+reset
    vs. CaQR's measure + conditional X (Fig. 2 (a) vs (b)). *)
val measure_reset_builtin : t -> int

val measure_cond_x : t -> int
