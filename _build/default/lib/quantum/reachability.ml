type t = { words : int; bits : Bytes.t array }

(* bits.(i) holds the set of nodes reachable from i, one bit per node. *)

let build dag =
  let n = Dag.num_nodes dag in
  let words = (n + 7) / 8 in
  let bits = Array.init n (fun _ -> Bytes.make (max 1 words) '\000') in
  let set b j =
    let byte = j lsr 3 and bit = j land 7 in
    Bytes.unsafe_set b byte
      (Char.chr (Char.code (Bytes.unsafe_get b byte) lor (1 lsl bit)))
  in
  let union dst src =
    for k = 0 to Bytes.length dst - 1 do
      Bytes.unsafe_set dst k
        (Char.chr
           (Char.code (Bytes.unsafe_get dst k)
           lor Char.code (Bytes.unsafe_get src k)))
    done
  in
  (* Gates are in topological (execution) order, so a reverse scan sees all
     successors before each node. *)
  for i = n - 1 downto 0 do
    set bits.(i) i;
    List.iter (fun j -> union bits.(i) bits.(j)) (Dag.succs dag i)
  done;
  { words; bits }

let reaches t i j =
  let b = t.bits.(i) in
  let byte = j lsr 3 and bit = j land 7 in
  byte < Bytes.length b && Char.code (Bytes.get b byte) land (1 lsl bit) <> 0

let any_path t srcs dsts =
  List.exists (fun s -> List.exists (fun d -> reaches t s d) dsts) srcs
