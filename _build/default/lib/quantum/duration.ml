type t = {
  one_q : int;
  cx : int;
  swap : int;
  measure : int;
  reset_builtin : int;
  if_x : int;
}

let default =
  {
    one_q = 160;
    cx = 1760;
    swap = 3 * 1760;
    measure = 3520;
    reset_builtin = 4000;
    if_x = 160;
  }

let ns_per_dt = 0.22

let of_kind t = function
  | Gate.One_q _ -> t.one_q
  | Gate.Cx _ | Gate.Cz _ | Gate.Rzz _ -> t.cx
  | Gate.Swap _ -> t.swap
  | Gate.Measure _ -> t.measure
  | Gate.Reset _ -> t.reset_builtin
  | Gate.If_x _ -> t.if_x
  | Gate.Barrier _ -> 0

(* Fig. 2 (a): the built-in reset re-measures internally, so the pair costs
   a full measurement on top of the reset pulse. *)
let measure_reset_builtin t = t.measure + t.reset_builtin

let measure_cond_x t = t.measure + t.if_x
