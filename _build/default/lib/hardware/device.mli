(** A device bundles a coupling map with calibration and distance data —
    everything SR-CaQR and the baseline transpiler query: adjacency,
    distances, per-link CNOT cost, per-qubit readout quality (paper
    §3.3.1 Step 2). *)

type t = private {
  coupling : Galg.Graph.t;
  calibration : Calibration.t;
  dist : int array array;
}

val make : Galg.Graph.t -> Calibration.t -> t

(** Synthetic IBM Mumbai: 27-qubit Falcon heavy-hex with seeded calibration. *)
val mumbai : t

(** Heavy-hex device with at least [n] qubits and synthetic calibration;
    [mumbai] when [n <= 27]. *)
val heavy_hex_for : int -> t

(** Ideal (noise-free) device over a coupling graph. *)
val ideal : Galg.Graph.t -> t

(** [with_noise_scale factor t] rescales every error rate (see
    {!Calibration.scale}); topology and durations are unchanged. *)
val with_noise_scale : float -> t -> t

val num_qubits : t -> int
val adjacent : t -> int -> int -> bool
val distance : t -> int -> int -> int
val neighbors : t -> int -> int list

(** CNOT duration in dt on a link (falls back to the default model when the
    qubits are not adjacent — callers route first). *)
val cx_duration : t -> int -> int -> int

val cx_error : t -> int -> int -> float
val readout_error : t -> int -> float

(** A quality score for mapping a fresh logical qubit onto physical [p]:
    higher is better — combines connectivity, readout fidelity, and the
    best incident CNOT fidelity. *)
val qubit_quality : t -> int -> float
