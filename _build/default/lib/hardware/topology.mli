(** Hardware coupling-map topologies.

    The paper evaluates on IBM heavy-hex devices (Falcon 27-qubit "Mumbai")
    and "scaled heavy-hex" when circuits need more qubits (§4.1). *)

(** The exact 27-qubit Falcon heavy-hex coupling map (ibmq_mumbai). *)
val falcon_27 : Galg.Graph.t

(** [heavy_hex ~rows ~cols] is a scaled heavy-hex lattice: [rows] horizontal
    qubit chains of length [4 * cols + 1] joined by vertical rung qubits at
    alternating offsets, the pattern of IBM's 65/127-qubit devices. *)
val heavy_hex : rows:int -> cols:int -> Galg.Graph.t

(** Smallest heavy-hex lattice with at least [n] qubits. *)
val heavy_hex_at_least : int -> Galg.Graph.t

val line : int -> Galg.Graph.t
val ring : int -> Galg.Graph.t
val grid : rows:int -> cols:int -> Galg.Graph.t

(** Star with center 0 — Fig. 4's interaction-graph example. *)
val star : int -> Galg.Graph.t

(** The 5-qubit T/bowtie layout of the paper's Fig. 4 (a):
    edges 0-1, 1-2, 1-3, 3-4. *)
val t_shape_5 : Galg.Graph.t

val fully_connected : int -> Galg.Graph.t
