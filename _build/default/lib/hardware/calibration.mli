(** Device calibration data: per-link CNOT error and duration, per-qubit
    readout error and coherence times. The paper exports these from IBM
    systems; we synthesize them from published Falcon-processor ranges with
    a seeded RNG (see DESIGN.md substitutions). *)

type link = { cx_error : float; cx_duration_dt : int }

type qubit = {
  readout_error : float;
  t1_dt : float;  (** amplitude-damping time in dt *)
  t2_dt : float;  (** dephasing time in dt *)
  one_q_error : float;
}

type t

(** [synthetic ~seed coupling] draws calibration for every qubit and link
    of the coupling graph: CNOT error 0.6–2.5%, CNOT duration 1200–2400 dt,
    readout error 1–5%, T1/T2 around 100 us (in dt), 1q error 0.02–0.06%. *)
val synthetic : seed:int -> Galg.Graph.t -> t

(** Uniform ideal calibration (zero error), for noise-free comparisons. *)
val ideal : Galg.Graph.t -> t

(** [scale ~factor t] multiplies every error rate by [factor] (clamped to
    [0, 0.5] for gate/readout errors) and divides T1/T2 by it — the knob
    behind noise-sensitivity ablations. [factor = 0] gives an ideal
    device; durations are unchanged. *)
val scale : factor:float -> t -> t

val link : t -> int -> int -> link
val qubit : t -> int -> qubit

(** Average CNOT error over all links. *)
val mean_cx_error : t -> float
