type link = { cx_error : float; cx_duration_dt : int }

type qubit = {
  readout_error : float;
  t1_dt : float;
  t2_dt : float;
  one_q_error : float;
}

type t = { links : (int * int, link) Hashtbl.t; qubits : qubit array }

let key u v = if u < v then (u, v) else (v, u)

let synthetic ~seed g =
  let rng = Random.State.make [| seed; 0xca1 |] in
  let uniform lo hi = lo +. Random.State.float rng (hi -. lo) in
  let n = Galg.Graph.order g in
  let qubits =
    Array.init n (fun _ ->
        let t1_us = uniform 60. 180. in
        {
          readout_error = uniform 0.01 0.05;
          (* 1 us = 1000 / 0.22 dt *)
          t1_dt = t1_us *. 1000. /. Quantum.Duration.ns_per_dt;
          t2_dt = uniform 0.5 1.2 *. t1_us *. 1000. /. Quantum.Duration.ns_per_dt;
          one_q_error = uniform 2e-4 6e-4;
        })
  in
  let links = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace links (key u v)
        {
          cx_error = uniform 0.006 0.025;
          cx_duration_dt = int_of_float (uniform 1200. 2400.);
        })
    (Galg.Graph.edges g);
  { links; qubits }

let ideal g =
  let n = Galg.Graph.order g in
  let qubits =
    Array.init n (fun _ ->
        { readout_error = 0.; t1_dt = infinity; t2_dt = infinity; one_q_error = 0. })
  in
  let links = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace links (key u v)
        { cx_error = 0.; cx_duration_dt = Quantum.Duration.default.Quantum.Duration.cx })
    (Galg.Graph.edges g);
  { links; qubits }

let scale ~factor t =
  if factor < 0. then invalid_arg "Calibration.scale: negative factor";
  let clamp e = Float.min 0.5 (e *. factor) in
  let qubits =
    Array.map
      (fun q ->
        {
          readout_error = clamp q.readout_error;
          t1_dt = (if factor = 0. then infinity else q.t1_dt /. factor);
          t2_dt = (if factor = 0. then infinity else q.t2_dt /. factor);
          one_q_error = clamp q.one_q_error;
        })
      t.qubits
  in
  let links = Hashtbl.create (Hashtbl.length t.links) in
  Hashtbl.iter
    (fun k l ->
      Hashtbl.replace links k
        { cx_error = clamp l.cx_error; cx_duration_dt = l.cx_duration_dt })
    t.links;
  { links; qubits }

let link t u v =
  match Hashtbl.find_opt t.links (key u v) with
  | Some l -> l
  | None -> invalid_arg "Calibration.link: not a coupling edge"

let qubit t q = t.qubits.(q)

let mean_cx_error t =
  let sum = Hashtbl.fold (fun _ l acc -> acc +. l.cx_error) t.links 0. in
  let n = Hashtbl.length t.links in
  if n = 0 then 0. else sum /. float_of_int n
