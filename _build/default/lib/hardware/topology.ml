let falcon_27 =
  Galg.Graph.of_edges 27
    [
      (0, 1); (1, 2); (1, 4); (2, 3); (3, 5); (4, 7); (5, 8); (6, 7); (7, 10);
      (8, 9); (8, 11); (10, 12); (11, 14); (12, 13); (12, 15); (13, 14);
      (14, 16); (15, 18); (16, 19); (17, 18); (18, 21); (19, 20); (19, 22);
      (21, 23); (22, 25); (23, 24); (24, 25); (25, 26);
    ]

(* Heavy-hex: horizontal rows of qubits, with rung qubits connecting
   consecutive rows every 4 columns, offset by 2 on odd rows. *)
let heavy_hex ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Topology.heavy_hex";
  let row_len = (4 * cols) + 1 in
  let n_row_qubits = rows * row_len in
  let rungs_per_gap = cols + 1 in
  let n = n_row_qubits + ((rows - 1) * rungs_per_gap) in
  let g = Galg.Graph.create n in
  let row_qubit r c = (r * row_len) + c in
  for r = 0 to rows - 1 do
    for c = 0 to row_len - 2 do
      Galg.Graph.add_edge g (row_qubit r c) (row_qubit r (c + 1))
    done
  done;
  for gap = 0 to rows - 2 do
    for k = 0 to rungs_per_gap - 1 do
      let rung = n_row_qubits + (gap * rungs_per_gap) + k in
      (* Even gaps anchor rungs at columns 0, 4, 8, ...; odd gaps at
         2, 6, 10, ... (clamped), producing the offset brick pattern. *)
      let col =
        if gap mod 2 = 0 then min (4 * k) (row_len - 1)
        else min ((4 * k) + 2) (row_len - 1)
      in
      Galg.Graph.add_edge g rung (row_qubit gap col);
      Galg.Graph.add_edge g rung (row_qubit (gap + 1) col)
    done
  done;
  g

let heavy_hex_at_least n =
  let rec grow k =
    let g = heavy_hex ~rows:k ~cols:k in
    if Galg.Graph.order g >= n then g else grow (k + 1)
  in
  if n <= 27 then falcon_27 else grow 2

let line n =
  Galg.Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let ring n =
  let g = line n in
  if n > 2 then Galg.Graph.add_edge g (n - 1) 0;
  g

let grid ~rows ~cols =
  let g = Galg.Graph.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c + 1 < cols then Galg.Graph.add_edge g v (v + 1);
      if r + 1 < rows then Galg.Graph.add_edge g v (v + cols)
    done
  done;
  g

let star n =
  Galg.Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let t_shape_5 = Galg.Graph.of_edges 5 [ (0, 1); (1, 2); (1, 3); (3, 4) ]

let fully_connected n =
  let g = Galg.Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Galg.Graph.add_edge g u v
    done
  done;
  g
