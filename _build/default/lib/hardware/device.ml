type t = {
  coupling : Galg.Graph.t;
  calibration : Calibration.t;
  dist : int array array;
}

let make coupling calibration =
  { coupling; calibration; dist = Galg.Graph.all_pairs_dist coupling }

let mumbai =
  make Topology.falcon_27 (Calibration.synthetic ~seed:27 Topology.falcon_27)

let heavy_hex_for n =
  if n <= 27 then mumbai
  else
    let g = Topology.heavy_hex_at_least n in
    make g (Calibration.synthetic ~seed:(1000 + n) g)

let ideal g = make g (Calibration.ideal g)

let with_noise_scale factor t =
  { t with calibration = Calibration.scale ~factor t.calibration }

let num_qubits t = Galg.Graph.order t.coupling
let adjacent t u v = Galg.Graph.has_edge t.coupling u v
let distance t u v = t.dist.(u).(v)
let neighbors t v = Galg.Graph.neighbors t.coupling v

let cx_duration t u v =
  if adjacent t u v then (Calibration.link t.calibration u v).Calibration.cx_duration_dt
  else Quantum.Duration.(default.cx)

let cx_error t u v =
  if adjacent t u v then (Calibration.link t.calibration u v).Calibration.cx_error
  else 1.

let readout_error t q = (Calibration.qubit t.calibration q).Calibration.readout_error

let qubit_quality t p =
  let best_link =
    List.fold_left
      (fun acc n -> Float.max acc (1. -. cx_error t p n))
      0. (neighbors t p)
  in
  let connectivity = float_of_int (Galg.Graph.degree t.coupling p) in
  (0.5 *. connectivity) +. (1. -. readout_error t p) +. best_link
