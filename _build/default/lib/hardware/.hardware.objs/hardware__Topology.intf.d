lib/hardware/topology.mli: Galg
