lib/hardware/device.mli: Calibration Galg
