lib/hardware/calibration.ml: Array Float Galg Hashtbl List Quantum Random
