lib/hardware/device.ml: Array Calibration Float Galg List Quantum Topology
