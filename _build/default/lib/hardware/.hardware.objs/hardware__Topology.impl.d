lib/hardware/topology.ml: Galg List
