lib/hardware/calibration.mli: Galg
