type t = { graph : Galg.Graph.t; name : string }

let random ~seed n ~density =
  {
    graph = Galg.Gen.random ~seed n ~density;
    name = Printf.sprintf "rand-%d-%.2f" n density;
  }

let power_law ~seed n ~density =
  {
    graph = Galg.Gen.power_law ~seed n ~density;
    name = Printf.sprintf "plaw-%d-%.2f" n density;
  }

let cut_value t mask =
  List.fold_left
    (fun acc (u, v) ->
      if (mask land (1 lsl u) <> 0) <> (mask land (1 lsl v) <> 0) then acc +. 1.
      else acc)
    0. (Galg.Graph.edges t.graph)

let brute_force_optimum t =
  let n = Galg.Graph.order t.graph in
  if n > 24 then invalid_arg "Maxcut.brute_force_optimum: too large";
  let best = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let c = cut_value t mask in
    if c > !best then best := c
  done;
  !best

let neg_expected_cut t counts =
  -.Sim.Counts.expectation counts (cut_value t)
