lib/qaoa/ansatz.mli: Maxcut Quantum
