lib/qaoa/optimizer.ml: Array Float Fun List
