lib/qaoa/maxcut.ml: Galg List Printf Sim
