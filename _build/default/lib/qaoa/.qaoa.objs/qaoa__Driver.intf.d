lib/qaoa/driver.mli: Maxcut Quantum
