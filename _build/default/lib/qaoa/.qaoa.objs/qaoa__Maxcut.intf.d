lib/qaoa/maxcut.mli: Galg Sim
