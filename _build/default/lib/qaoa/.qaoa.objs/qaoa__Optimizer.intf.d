lib/qaoa/optimizer.mli:
