lib/qaoa/ansatz.ml: Array Galg List Maxcut Quantum
