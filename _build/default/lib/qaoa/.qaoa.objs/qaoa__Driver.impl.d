lib/qaoa/driver.ml: Ansatz Array List Optimizer
