type round = { index : int; params : float array; energy : float }

type run = {
  rounds : round list;
  best_energy : float;
  best_params : float array;
}

type method_ = Cobyla | Nelder_mead

let optimize ?(method_ = Cobyla) ?(layers = 1) ?(max_rounds = 40) ~evaluate
    problem =
  let objective params =
    let gammas = Array.sub params 0 layers in
    let betas = Array.sub params layers layers in
    evaluate (Ansatz.circuit problem ~gammas ~betas)
  in
  (* Start near the good basin for the Rzz(theta) = exp(-i theta/2 ZZ)
     convention (empirically gamma < 0, beta near pi/4..3pi/8). *)
  let init =
    Array.init (2 * layers) (fun i -> if i < layers then -0.7 else 0.9)
  in
  let trace =
    match method_ with
    | Cobyla ->
      Optimizer.cobyla_lite ~max_evals:max_rounds ~init ~rho_start:0.4
        ~rho_end:1e-3 objective
    | Nelder_mead ->
      Optimizer.nelder_mead ~max_evals:max_rounds ~init ~step:0.4 objective
  in
  let rounds =
    List.mapi
      (fun i best -> { index = i + 1; params = [||]; energy = best })
      trace.Optimizer.history
  in
  {
    rounds;
    best_energy = trace.Optimizer.best_value;
    best_params = trace.Optimizer.best_params;
  }
