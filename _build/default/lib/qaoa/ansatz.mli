(** QAOA max-cut ansatz: per layer, a wall of commuting [Rzz(gamma)] gates
    (one per problem edge) followed by an [Rx(2 beta)] mixer wall. The
    phase-separation gates commute freely — the property QS-CaQR's
    commutable path exploits (paper §3.2.2). *)

(** [circuit ?measure problem ~gammas ~betas] builds a [p]-layer ansatz,
    [p = Array.length gammas = Array.length betas]. With [measure] (default
    true), every qubit is measured into its own classical bit. *)
val circuit :
  ?measure:bool ->
  Maxcut.t ->
  gammas:float array ->
  betas:float array ->
  Quantum.Circuit.t

(** Fixed reference parameters for depth/SWAP studies (p = 1,
    gamma = 0.7, beta = 0.3). *)
val reference : Maxcut.t -> Quantum.Circuit.t
