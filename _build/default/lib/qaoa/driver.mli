(** The full hybrid QAOA loop of Figs. 15–16: a classical optimizer tunes
    (gamma, beta) while each round's ansatz is compiled by a caller-supplied
    function and executed (possibly noisily). *)

type round = { index : int; params : float array; energy : float }

type run = {
  rounds : round list;  (** best-so-far negated expected cut per round *)
  best_energy : float;
  best_params : float array;
}

type method_ = Cobyla | Nelder_mead

(** [optimize ?method_ ?layers ?max_rounds ~evaluate problem] minimizes the
    negated expected cut. [evaluate circuit] must return the estimated
    energy of the (already measured) ansatz circuit — callers plug in ideal
    simulation, noisy simulation, or a compile-then-simulate pipeline. *)
val optimize :
  ?method_:method_ ->
  ?layers:int ->
  ?max_rounds:int ->
  evaluate:(Quantum.Circuit.t -> float) ->
  Maxcut.t ->
  run
