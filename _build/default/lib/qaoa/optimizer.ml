type trace = {
  best_params : float array;
  best_value : float;
  history : float list;
}

(* Shared bookkeeping: wrap the objective to record best-so-far. *)
let recorder f =
  let best = ref infinity in
  let best_x = ref [||] in
  let hist = ref [] in
  let evals = ref 0 in
  let call x =
    let v = f x in
    incr evals;
    if v < !best then begin
      best := v;
      best_x := Array.copy x
    end;
    hist := !best :: !hist;
    v
  in
  let result () =
    { best_params = !best_x; best_value = !best; history = List.rev !hist }
  in
  (call, evals, result)

let nelder_mead ~max_evals ~init ~step f =
  let n = Array.length init in
  let call, evals, result = recorder f in
  let alpha = 1.0 and gamma = 2.0 and rho = 0.5 and sigma = 0.5 in
  (* Initial simplex: init plus per-coordinate offsets. *)
  let pts =
    Array.init (n + 1) (fun i ->
        let p = Array.copy init in
        if i > 0 then p.(i - 1) <- p.(i - 1) +. step;
        p)
  in
  let vals = Array.map call pts in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun a b -> compare vals.(a) vals.(b)) idx;
    idx
  in
  (try
     while !evals < max_evals do
       let idx = order () in
       let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
       (* Centroid of all but the worst. *)
       let centroid = Array.make n 0. in
       Array.iteri
         (fun rank i ->
           if rank < n then
             for d = 0 to n - 1 do
               centroid.(d) <- centroid.(d) +. (pts.(i).(d) /. float_of_int n)
             done)
         idx;
       let combine a wa b wb =
         Array.init n (fun d -> (wa *. a.(d)) +. (wb *. b.(d)))
       in
       let reflected = combine centroid (1. +. alpha) pts.(worst) (-.alpha) in
       let fr = call reflected in
       if !evals >= max_evals then raise Exit;
       if fr < vals.(best) then begin
         let expanded = combine centroid (1. +. gamma) pts.(worst) (-.gamma) in
         let fe = call expanded in
         if fe < fr then begin
           pts.(worst) <- expanded;
           vals.(worst) <- fe
         end
         else begin
           pts.(worst) <- reflected;
           vals.(worst) <- fr
         end
       end
       else if fr < vals.(second_worst) then begin
         pts.(worst) <- reflected;
         vals.(worst) <- fr
       end
       else begin
         let contracted = combine centroid (1. -. rho) pts.(worst) rho in
         let fc = call contracted in
         if fc < vals.(worst) then begin
           pts.(worst) <- contracted;
           vals.(worst) <- fc
         end
         else
           (* Shrink toward the best point. *)
           Array.iteri
             (fun rank i ->
               if rank > 0 then begin
                 pts.(i) <-
                   combine pts.(idx.(0)) (1. -. sigma) pts.(i) sigma;
                 if !evals < max_evals then vals.(i) <- call pts.(i)
               end)
             idx
       end
     done
   with Exit -> ());
  result ()

(* Solve the n x n system [m] x = [b] by Gaussian elimination with partial
   pivoting; returns None on (near-)singularity. *)
let solve m b =
  let n = Array.length b in
  let a = Array.map Array.copy m in
  let b = Array.copy b in
  let ok = ref true in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    if Float.abs a.(!pivot).(col) < 1e-12 then ok := false
    else begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb;
      for r = col + 1 to n - 1 do
        let factor = a.(r).(col) /. a.(col).(col) in
        for c = col to n - 1 do
          a.(r).(c) <- a.(r).(c) -. (factor *. a.(col).(c))
        done;
        b.(r) <- b.(r) -. (factor *. b.(col))
      done
    end
  done;
  if not !ok then None
  else begin
    let x = Array.make n 0. in
    for r = n - 1 downto 0 do
      let s = ref b.(r) in
      for c = r + 1 to n - 1 do
        s := !s -. (a.(r).(c) *. x.(c))
      done;
      x.(r) <- !s /. a.(r).(r)
    done;
    Some x
  end

let cobyla_lite ~max_evals ~init ~rho_start ~rho_end f =
  let n = Array.length init in
  let call, evals, result = recorder f in
  let pts =
    Array.init (n + 1) (fun i ->
        let p = Array.copy init in
        if i > 0 then p.(i - 1) <- p.(i - 1) +. rho_start;
        p)
  in
  let vals = Array.map call pts in
  let rho = ref rho_start in
  (try
     while !evals < max_evals && !rho > rho_end do
       (* Fit f(x) ~ c + g . (x - x0) through the simplex (x0 = vertex 0):
          n equations in the n gradient components. *)
       let x0 = pts.(0) and f0 = vals.(0) in
       let m =
         Array.init n (fun i ->
             Array.init n (fun d -> pts.(i + 1).(d) -. x0.(d)))
       in
       let b = Array.init n (fun i -> vals.(i + 1) -. f0) in
       (match solve m b with
        | None ->
          (* Degenerate simplex: re-seed around the best vertex. *)
          let best = ref 0 in
          Array.iteri (fun i v -> if v < vals.(!best) then best := i) vals;
          let bx = pts.(!best) in
          Array.iteri
            (fun i _ ->
              if i > 0 then begin
                let p = Array.copy bx in
                p.(i - 1) <- p.(i - 1) +. !rho;
                pts.(i) <- p;
                if !evals < max_evals then vals.(i) <- call p
              end)
            pts;
          pts.(0) <- Array.copy bx
        | Some g ->
          let gnorm =
            sqrt (Array.fold_left (fun acc gi -> acc +. (gi *. gi)) 0. g)
          in
          if gnorm < 1e-12 then rho := !rho /. 2.
          else begin
            (* Step to the linear-model minimizer on the trust sphere. *)
            let worst = ref 0 in
            Array.iteri (fun i v -> if v > vals.(!worst) then worst := i) vals;
            let best = ref 0 in
            Array.iteri (fun i v -> if v < vals.(!best) then best := i) vals;
            let candidate =
              Array.init n (fun d ->
                  pts.(!best).(d) -. (!rho *. g.(d) /. gnorm))
            in
            let fc = call candidate in
            if fc < vals.(!worst) then begin
              pts.(!worst) <- candidate;
              vals.(!worst) <- fc
            end
            else rho := !rho /. 2.
          end)
     done
   with Exit -> ());
  result ()
