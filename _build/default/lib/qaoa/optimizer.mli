(** Derivative-free optimizers for the QAOA classical loop.

    The paper uses Qiskit's COBYLA; we provide [cobyla_lite], a
    linear-approximation trust-region method in the same family, and
    Nelder–Mead simplex as an alternative (DESIGN.md substitutions). Both
    report the best objective value seen after each evaluation round, which
    is what Figs. 15–16 plot. *)

type trace = {
  best_params : float array;
  best_value : float;
  history : float list;
      (** best-so-far objective after each function evaluation, oldest first *)
}

(** [nelder_mead ~max_evals ~init ~step f] minimizes [f]. *)
val nelder_mead :
  max_evals:int -> init:float array -> step:float -> (float array -> float) -> trace

(** [cobyla_lite ~max_evals ~init ~rho_start ~rho_end f]: keeps an [n+1]
    point simplex, fits a linear model through it, and steps to the model
    minimizer within the trust radius [rho], shrinking [rho] on failure —
    COBYLA's control structure without the (here unused) constraint
    machinery. *)
val cobyla_lite :
  max_evals:int ->
  init:float array ->
  rho_start:float ->
  rho_end:float ->
  (float array -> float) ->
  trace
