(** Max-cut problem instances for QAOA (paper §4.1: random and power-law
    graphs at a given density). *)

type t = { graph : Galg.Graph.t; name : string }

(** [random ~seed n ~density] / [power_law ~seed n ~density] wrap the
    {!Galg.Gen} generators with descriptive names like "rand-16-0.30". *)
val random : seed:int -> int -> density:float -> t

val power_law : seed:int -> int -> density:float -> t

(** Cut value of an assignment given as a bitmask over vertices. *)
val cut_value : t -> int -> float

(** Exact maximum cut by exhaustive search — only for [n <= 24]. *)
val brute_force_optimum : t -> float

(** The QAOA objective is to minimize [-E[cut]]; this is the expectation
    of the negated cut over a counts histogram (register bit [i] =
    vertex [i]). *)
val neg_expected_cut : t -> Sim.Counts.t -> float
