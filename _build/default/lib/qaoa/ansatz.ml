let circuit ?(measure = true) (problem : Maxcut.t) ~gammas ~betas =
  let p = Array.length gammas in
  if p <> Array.length betas then invalid_arg "Ansatz.circuit: layer mismatch";
  let n = Galg.Graph.order problem.Maxcut.graph in
  let b = Quantum.Circuit.Builder.create ~num_qubits:n ~num_clbits:n in
  for q = 0 to n - 1 do
    Quantum.Circuit.Builder.h b q
  done;
  for layer = 0 to p - 1 do
    List.iter
      (fun (u, v) -> Quantum.Circuit.Builder.rzz b gammas.(layer) u v)
      (Galg.Graph.edges problem.Maxcut.graph);
    for q = 0 to n - 1 do
      Quantum.Circuit.Builder.rx b (2. *. betas.(layer)) q
    done
  done;
  if measure then
    for q = 0 to n - 1 do
      Quantum.Circuit.Builder.measure b q q
    done;
  Quantum.Circuit.Builder.build b

let reference problem =
  circuit problem ~gammas:[| 0.7 |] ~betas:[| 0.3 |]
