(** Probabilistic equivalence for circuits too large to enumerate.

    Each probe runs both circuits from a seeded simulator and compares
    the outcome statistics on the shared clbits: per-bit marginals and
    all pairwise XOR correlations (which catch rewired-but-balanced bits
    that marginals alone cannot). A side whose only dynamic operations
    are final measurements is evaluated exactly (one state-vector pass);
    a dynamic side is sampled shot by shot.

    Probes beyond the first optionally perturb the input: qubits listed
    in [product_inputs] receive an identical random product-state prefix
    in both circuits. Callers must only list qubits whose wire hosts the
    same logical qubit first on both sides — for a reuse transform, the
    qubits that never appear as a pair's [dst] (a reused qubit must start
    in |0>, so probing it would test a statement the transform never
    claimed).

    Sound but incomplete: [Inequivalent] means a statistic diverged by
    more than the tolerance, [Equivalent] means every probe agreed. *)

type config = {
  probes : int;  (** number of probe rounds (default 4) *)
  shots : int;  (** shots per sampled side per probe (default 512) *)
  tolerance : float;
      (** statistic tolerance; [0.] picks [5/sqrt shots] (default 0.) *)
  max_qubits : int;  (** refuse wider sides after compaction (default 22) *)
  product_inputs : int list;  (** qubits eligible for input perturbation *)
}

val default : config

(** [check ?config ~seed ~original ~transformed ()]. The same [seed]
    always yields the same verdict. *)
val check :
  ?config:config ->
  seed:int ->
  original:Quantum.Circuit.t ->
  transformed:Quantum.Circuit.t ->
  unit ->
  Verdict.t
