lib/verify/equiv.mli: Quantum Verdict
