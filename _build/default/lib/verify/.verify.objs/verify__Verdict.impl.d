lib/verify/verdict.ml: Format List Printf
