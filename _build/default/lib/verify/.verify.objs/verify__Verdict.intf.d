lib/verify/verdict.mli: Format
