lib/verify/structural.ml: Array Galg Hardware Int List Printf Quantum Set Verdict
