lib/verify/verify.mli: Equiv Galg Hardware Probe Quantum Structural Verdict
