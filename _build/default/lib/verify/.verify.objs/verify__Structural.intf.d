lib/verify/structural.mli: Galg Hardware Quantum Verdict
