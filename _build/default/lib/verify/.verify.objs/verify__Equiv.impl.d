lib/verify/equiv.ml: Array Float Hashtbl List Printf Quantum Sim Verdict
