lib/verify/verify.ml: Equiv Galg Hardware List Printf Probe Quantum String Structural Verdict
