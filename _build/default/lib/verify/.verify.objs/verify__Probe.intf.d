lib/verify/probe.mli: Quantum Verdict
