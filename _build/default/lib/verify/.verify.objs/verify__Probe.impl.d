lib/verify/probe.ml: Array Float List Printf Quantum Random Sim Verdict
