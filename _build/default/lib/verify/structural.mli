(** Static translation validators — no simulation, so they run on any
    size and catch the cheap-to-catch bugs first (paper §3.1 conditions,
    device legality, classical-register accounting).

    Everything here re-derives its facts from the circuits and the raw
    gate DAG ({!Quantum.Dag} / {!Quantum.Reachability}); it deliberately
    does not call into the compiler's own [Reuse] analysis, so a bug in
    the compiler's condition checking cannot hide itself. *)

(** A claimed reuse pair, in the §3.1 sense: qubit [src] finishes, is
    measured and reset, and then hosts every gate of [dst]. Mirrors the
    compiler's pair type without depending on it. *)
type pair = { src : int; dst : int }

(** Classical well-formedness of a single circuit: every operand in
    range, two-qubit gates on distinct wires, and every conditional X
    reads a clbit that an earlier measurement wrote — a reuse reset whose
    measure/init order was swapped is caught here. *)
val check_wellformed : Quantum.Circuit.t -> Verdict.t

(** [check_pairs ~original pairs] validates a claimed reuse-pair sequence
    against the untransformed circuit: each pair, in application order,
    must satisfy Condition 1 (no gate couples [src] and [dst]) and
    Condition 2 (no gate on [src] transitively depends on a gate on
    [dst]) on the circuit with all earlier pairs applied. The re-derived
    transform used for stepping is local to this module. *)
val check_pairs : original:Quantum.Circuit.t -> pair list -> Verdict.t

(** [check_commutable_pairs ~graph pairs] validates a reuse plan for a
    commutable-gate (QAOA) instance: chains built by the pairs must be
    independent sets of the problem graph, each qubit is reused at most
    once in each direction, and the pair precedence digraph ([p1] before
    [p2] when [p1.dst] equals or interacts with [p2.src]) is acyclic. *)
val check_commutable_pairs : graph:Galg.Graph.t -> pair list -> Verdict.t

(** Every two-qubit unitary of a physical circuit must lie on a coupled
    edge of the device, and every wire must exist on the device. *)
val check_coupling : Hardware.Device.t -> Quantum.Circuit.t -> Verdict.t

(** Classical-register accounting between the logical circuit and its
    compiled form: the physical circuit keeps at least the logical
    clbits, and writes each program clbit exactly as often as the logical
    circuit does (reuse adds scratch clbits, never extra writes to
    program clbits). *)
val check_accounting :
  logical:Quantum.Circuit.t -> physical:Quantum.Circuit.t -> Verdict.t

(** Well-formedness + coupling + accounting for one compiled artifact —
    the everything-static bundle the bench harness runs on every compiled
    experiment circuit. *)
val check_artifact :
  Hardware.Device.t ->
  logical:Quantum.Circuit.t ->
  physical:Quantum.Circuit.t ->
  Verdict.t
