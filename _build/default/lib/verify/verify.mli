(** Translation validation for reuse-transformed dynamic circuits.

    CaQR's contract is that the transformed circuit computes the same
    outcome distribution as the original (paper §3.1); this library
    checks that claim per compiled artifact instead of trusting the
    compiler. Three complementary checkers:

    - {!Structural}: static validators (reuse-pair DAG conditions, device
      coupling, classical-register accounting) — any size, no simulation;
    - {!Equiv}: exact channel equivalence by measurement-branch
      enumeration — small circuits only, complete counterexamples;
    - {!Probe}: seeded statistical probing — sound, incomplete, scales to
      whatever the state-vector simulator fits.

    {!run} stacks them according to a {!level} and folds the verdicts. *)

module Verdict = Verdict
module Equiv = Equiv
module Probe = Probe
module Structural = Structural

type verdict = Verdict.t =
  | Equivalent
  | Inequivalent of Verdict.counterexample
  | Inconclusive of string

(** How much checking to buy. Every level includes the structural pass. *)
type level =
  | Static  (** structural checks only *)
  | Sampled  (** structural + seeded statistical probes *)
  | Exact
      (** structural + exact equivalence; [Inconclusive] when a side
          exceeds the exact budgets *)
  | Auto  (** exact when the circuits fit the exact budgets, else probes *)

val level_name : level -> string

(** Parses ["static" | "structural" | "sampled" | "probe" | "exact" | "auto"]. *)
val level_of_string : string -> (level, string) result

(** Everything one compiled artifact carries for validation. *)
type subject = {
  original : Quantum.Circuit.t;  (** pre-transform logical circuit *)
  logical : Quantum.Circuit.t;  (** post-transform logical circuit *)
  physical : Quantum.Circuit.t;  (** routed device circuit *)
  device : Hardware.Device.t;
  pairs : Structural.pair list option;
      (** claimed reuse pairs in application order; [None] when the
          strategy does not expose them (SR-CaQR's lazy mapper) *)
  commutable : Galg.Graph.t option;
      (** problem graph for commutable (QAOA) inputs — switches the pair
          validation to the commutable-reuse conditions *)
}

(** [run ~seed level subject] — the orchestrated validation. Semantic
    levels compare [original] against both [logical] and [physical]; when
    the original is too wide to simulate, the transformed pair
    [logical]/[physical] is still cross-checked and the verdict degrades
    to [Inconclusive] rather than overclaiming. *)
val run : ?seed:int -> level -> subject -> verdict
