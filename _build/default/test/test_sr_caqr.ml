(* Unit tests for SR-CaQR: the lazy, reclaim-aware mapper. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module G = Quantum.Gate

let mumbai = Hardware.Device.mumbai

let hardware_compliant device (c : Quantum.Circuit.t) =
  Array.for_all
    (fun g ->
      if G.is_two_q g.G.kind then
        match G.qubits g.G.kind with
        | [ a; b ] -> Hardware.Device.adjacent device a b
        | _ -> true
      else true)
    c.Quantum.Circuit.gates

let test_bv10_zero_swaps () =
  (* The paper's flagship SR result: the BV star compiles with reuse and
     no SWAPs at all. *)
  let r = Caqr.Sr_caqr.regular mumbai (Benchmarks.Bv.circuit 10) in
  check int "no swaps" 0 r.Caqr.Sr_caqr.swaps_added;
  check int "two qubits" 2 r.Caqr.Sr_caqr.qubits_used;
  check bool "reuses happened" true (r.Caqr.Sr_caqr.reuses >= 8);
  check bool "compliant" true (hardware_compliant mumbai r.Caqr.Sr_caqr.physical)

let test_bv10_semantics () =
  let r = Caqr.Sr_caqr.regular mumbai (Benchmarks.Bv.circuit 10) in
  let d = Sim.Executor.run ~seed:1 ~shots:64 r.Caqr.Sr_caqr.physical in
  check int "secret recovered" 64 (Sim.Counts.get d (Benchmarks.Bv.expected_output 10))

let test_all_regular_benchmarks_compile () =
  List.iter
    (fun e ->
      let r = Caqr.Sr_caqr.regular mumbai e.Benchmarks.Suite.circuit in
      check bool
        (e.Benchmarks.Suite.name ^ " compliant")
        true
        (hardware_compliant mumbai r.Caqr.Sr_caqr.physical))
    (Benchmarks.Suite.regular ())

let test_semantics_all_regular () =
  (* SR-compiled circuits reproduce the logical output distribution. *)
  List.iter
    (fun name ->
      let e = Benchmarks.Suite.find name in
      let r = Caqr.Sr_caqr.regular mumbai e.Benchmarks.Suite.circuit in
      let d0 = Sim.Executor.run ~seed:2 ~shots:48 e.Benchmarks.Suite.circuit in
      let d1 = Sim.Executor.run ~seed:3 ~shots:48 r.Caqr.Sr_caqr.physical in
      check (Alcotest.float 1e-9) (name ^ " identical") 0. (Sim.Counts.tvd d0 d1))
    [ "RD-32"; "XOR_5"; "CC_10"; "System_9" ]

let test_swaps_not_worse_than_baseline () =
  (* SR-CaQR's selling point (Table 2): it should beat or tie the no-reuse
     baseline on SWAPs for the star-like benchmarks. *)
  List.iter
    (fun name ->
      let e = Benchmarks.Suite.find name in
      let sr = Caqr.Sr_caqr.regular mumbai e.Benchmarks.Suite.circuit in
      let base = Transpiler.Transpile.run mumbai e.Benchmarks.Suite.circuit in
      check bool
        (Printf.sprintf "%s: sr %d <= base %d" name sr.Caqr.Sr_caqr.swaps_added
           base.Transpiler.Transpile.stats.Transpiler.Transpile.swaps)
        true
        (sr.Caqr.Sr_caqr.swaps_added
        <= base.Transpiler.Transpile.stats.Transpiler.Transpile.swaps))
    [ "BV_10"; "CC_10"; "XOR_5" ]

let test_qubit_usage_reduced () =
  let e = Benchmarks.Suite.find "CC_10" in
  let r = Caqr.Sr_caqr.regular mumbai e.Benchmarks.Suite.circuit in
  check bool "fewer than 10 qubits" true (r.Caqr.Sr_caqr.qubits_used < 10)

let test_commutable_compiles () =
  let g = Galg.Gen.random ~seed:42 8 ~density:0.3 in
  let r = Caqr.Sr_caqr.commutable mumbai g in
  check bool "compliant" true (hardware_compliant mumbai r.Caqr.Sr_caqr.physical);
  check bool "fits device" true (r.Caqr.Sr_caqr.qubits_used <= 27)

let test_commutable_energy_preserved () =
  let g = Galg.Gen.random ~seed:43 7 ~density:0.35 in
  let problem = { Qaoa.Maxcut.graph = g; name = "t" } in
  let r = Caqr.Sr_caqr.commutable mumbai g in
  let plain = Caqr.Commute.emit (Caqr.Commute.make g) in
  let e c seed =
    Qaoa.Maxcut.neg_expected_cut problem (Sim.Executor.run ~seed ~shots:6000 c)
  in
  check bool "energy close" true
    (Float.abs (e plain 1 -. e r.Caqr.Sr_caqr.physical 2) < 0.25)

let test_line_device_fallback () =
  (* On a line, SR must still produce a compliant circuit (swaps needed). *)
  let line = Hardware.Device.ideal (Hardware.Topology.line 8) in
  let r = Caqr.Sr_caqr.regular line (Benchmarks.Bv.circuit 6) in
  check bool "compliant" true (hardware_compliant line r.Caqr.Sr_caqr.physical);
  let d = Sim.Executor.run ~seed:4 ~shots:48 r.Caqr.Sr_caqr.physical in
  check int "secret" 48 (Sim.Counts.get d (Benchmarks.Bv.expected_output 6))

let () =
  Alcotest.run "sr_caqr"
    [
      ( "regular",
        [
          Alcotest.test_case "bv10 zero swaps" `Quick test_bv10_zero_swaps;
          Alcotest.test_case "bv10 semantics" `Quick test_bv10_semantics;
          Alcotest.test_case "all compile" `Quick test_all_regular_benchmarks_compile;
          Alcotest.test_case "semantics preserved" `Slow test_semantics_all_regular;
          Alcotest.test_case "swaps vs baseline" `Quick test_swaps_not_worse_than_baseline;
          Alcotest.test_case "usage reduced" `Quick test_qubit_usage_reduced;
          Alcotest.test_case "line device" `Quick test_line_device_fallback;
        ] );
      ( "commutable",
        [
          Alcotest.test_case "compiles" `Quick test_commutable_compiles;
          Alcotest.test_case "energy preserved" `Slow test_commutable_energy_preserved;
        ] );
    ]
