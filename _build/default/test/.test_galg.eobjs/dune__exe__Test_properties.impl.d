test/test_properties.ml: Alcotest Array Caqr Float Galg List Printf QCheck QCheck_alcotest Quantum Random Sim String
