test/test_hardware.ml: Alcotest Galg Hardware List
