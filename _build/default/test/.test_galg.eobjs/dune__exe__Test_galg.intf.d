test/test_galg.mli:
